package matprod_test

import (
	"fmt"

	"repro"
)

// The smallest end-to-end use: two parties estimate the number of
// intersecting set pairs without exchanging the sets.
func ExampleCompositionSize() {
	// Alice: three sets over the universe {0..7}, one per row.
	a := matprod.BoolMatrixFromSets([][]int{
		{0, 1, 2},
		{3},
		{5, 6},
	}, 8)
	// Bob: three sets, one per column of B.
	b := matprod.BoolMatrixFromSets([][]int{
		{0},    // intersects Alice's set 0
		{3, 5}, // intersects sets 1 and 2
		{7},    // intersects nothing
	}, 8).Transpose()

	size, _, err := matprod.CompositionSize(a, b, matprod.LpOptions{Eps: 0.5, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("intersecting pairs ≈ %.0f\n", size)
	// Output: intersecting pairs ≈ 3
}

// Exact natural-join size in one round and O(n log n) bits.
func ExampleNaturalJoinSize() {
	a := matprod.BoolMatrixFromSets([][]int{{0, 1}, {1, 2}}, 4)
	b := matprod.BoolMatrixFromSets([][]int{{1}, {2}}, 4).Transpose()
	size, cost, err := matprod.NaturalJoinSize(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("|A ⋈ B| = %d in %d round\n", size, cost.Rounds)
	// Output: |A ⋈ B| = 3 in 1 round
}

// Recovering a sparse product exactly with verification enabled.
func ExampleDistributedProduct() {
	a := matprod.NewIntMatrix(16, 16)
	b := matprod.NewIntMatrix(16, 16)
	a.Set(2, 5, 3)
	b.Set(5, 9, -4)
	ca, cb, _, err := matprod.DistributedProduct(a, b, matprod.MatMulOptions{
		Sparsity: 4, Verify: true, Seed: 2,
	})
	if err != nil {
		panic(err)
	}
	c := ca.Add(cb)
	fmt.Printf("C[2][9] = %d\n", c.Get(2, 9))
	// Output: C[2][9] = -12
}

// Finding the pair with the maximum intersection.
func ExampleMaxOverlapPair() {
	a := matprod.NewBoolMatrix(32, 32)
	b := matprod.NewBoolMatrix(32, 32)
	for k := 0; k < 20; k++ {
		a.Set(7, k, true) // Alice's set 7 is large...
		b.Set(k, 3, true) // ...and matches Bob's set 3.
	}
	est, pair, _, err := matprod.MaxOverlapPair(a, b, matprod.LinfOptions{Eps: 0.5, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("best pair (%d,%d), overlap ≥ %.0f\n", pair.I, pair.J, est)
	// Output: best pair (7,3), overlap ≥ 20
}
