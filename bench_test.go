// Benchmark harness: one benchmark per experiment in DESIGN.md's index
// (E1–E13), plus the end-to-end service benchmark. Each experiment
// benchmark reports, alongside time/op:
//
//	bits/op     — total communication of one protocol execution,
//	relerr      — measured relative error (where a point estimate exists),
//	ratio       — measured value of the bound's shape (e.g. bits/(n^1.5/κ)),
//
// so a bench run is a direct paper-vs-measured comparison. Run with
//
//	go test -bench=E -benchmem
package matprod

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"repro/gateway"
	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/lowerbound"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/service"
)

// reportCost attaches communication metrics to a benchmark.
func reportCost(b *testing.B, cost Cost) {
	b.ReportMetric(float64(cost.Bits), "bits/op")
	b.ReportMetric(float64(cost.Rounds), "rounds")
}

// BenchmarkE1_L0TwoRoundVsOneRound measures the Theorem 3.1 separation:
// the 2-round Õ(n/ε) protocol vs the 1-round Õ(n/ε²) baseline of [16],
// as ε shrinks. The paper predicts the bit ratio grows like 1/ε.
func BenchmarkE1_L0TwoRoundVsOneRound(b *testing.B) {
	n := 192
	a := workload.Binary(1, n, n, 0.08)
	bb := workload.Binary(2, n, n, 0.08)
	ai, bi := boolMat(a).ToInt(), boolMat(bb).ToInt()
	truth := float64(ai.Mul(bi).L0())
	for _, eps := range []float64{0.4, 0.2, 0.1, 0.05} {
		b.Run(fmt.Sprintf("tworound/eps=%.2f", eps), func(b *testing.B) {
			var cost Cost
			var est float64
			for i := 0; i < b.N; i++ {
				est, cost, _ = EstimateLp(ai, bi, 0, LpOptions{Eps: eps, Seed: uint64(i)})
			}
			reportCost(b, cost)
			b.ReportMetric(math.Abs(est-truth)/truth, "relerr")
		})
		b.Run(fmt.Sprintf("oneround/eps=%.2f", eps), func(b *testing.B) {
			var cost Cost
			var est float64
			for i := 0; i < b.N; i++ {
				est, cost, _ = EstimateLpOneRound(ai, bi, 0, LpOptions{Eps: eps, Seed: uint64(i)})
			}
			reportCost(b, cost)
			b.ReportMetric(math.Abs(est-truth)/truth, "relerr")
		})
	}
}

// BenchmarkE2_LpAccuracy measures Algorithm 1's (1±ε) accuracy across
// the p range it covers.
func BenchmarkE2_LpAccuracy(b *testing.B) {
	n := 128
	ai := workload.Integer(3, n, n, 0.1, 3, false)
	bi := workload.Integer(4, n, n, 0.1, 3, false)
	for _, p := range []float64{0, 0.5, 1, 1.5, 2} {
		truth := ai.Mul(bi).Lp(p)
		b.Run(fmt.Sprintf("p=%.1f", p), func(b *testing.B) {
			var cost core.Cost
			var est float64
			for i := 0; i < b.N; i++ {
				est, cost, _ = core.EstimateLp(ai, bi, p, core.LpOpts{Eps: 0.25, Seed: uint64(i)})
			}
			reportCost(b, cost)
			b.ReportMetric(math.Abs(est-truth)/math.Max(truth, 1), "relerr")
		})
	}
}

// BenchmarkE3_ExactL1 measures Remark 2: exact natural-join size in
// O(n log n) bits, one round. `bits-per-n` should stay near log n.
func BenchmarkE3_ExactL1(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		A := workload.Integer(uint64(n), n, n, 0.1, 3, true)
		B := workload.Integer(uint64(n)+1, n, n, 0.1, 3, true)
		A, B = absMatrix(A), absMatrix(B)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cost core.Cost
			for i := 0; i < b.N; i++ {
				_, cost, _ = core.ExactL1(A, B)
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)/float64(n), "bits-per-n")
		})
	}
}

// absMatrix returns the entrywise absolute value (non-negative
// workloads for the Remark 2/3 protocols).
func absMatrix(m *intmat.Dense) *intmat.Dense {
	out := intmat.NewDense(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j, v := range m.Row(i) {
			if v < 0 {
				v = -v
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// BenchmarkE4_L0Sampling measures Theorem 3.2: one-round ℓ0-sampling at
// Õ(n/ε²) bits.
func BenchmarkE4_L0Sampling(b *testing.B) {
	n := 128
	ai := workload.Binary(20, n, n, 0.05)
	bi := workload.Binary(21, n, n, 0.05)
	A, B := boolMat(ai).ToInt(), boolMat(bi).ToInt()
	for _, eps := range []float64{0.5, 0.25} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			var cost Cost
			for i := 0; i < b.N; i++ {
				_, _, cost, _ = SampleL0(A, B, L0SampleOptions{Eps: eps, Seed: uint64(i)})
			}
			reportCost(b, cost)
		})
	}
}

// BenchmarkE5_L1Sampling measures Remark 3: one-round ℓ1-sampling at
// O(n log n) bits.
func BenchmarkE5_L1Sampling(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		A := absMatrix(workload.Integer(uint64(30+n), n, n, 0.1, 3, false))
		B := absMatrix(workload.Integer(uint64(31+n), n, n, 0.1, 3, false))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cost core.Cost
			for i := 0; i < b.N; i++ {
				_, _, _, cost, _ = core.SampleL1(A, B, uint64(i))
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)/float64(n), "bits-per-n")
		})
	}
}

// BenchmarkE6_LinfBinary measures Algorithm 2: (2+ε)-approximation of
// ‖AB‖∞ with Õ(n^1.5/ε) bits — `shape` reports bits/(n^1.5/ε), which
// should stay roughly flat across n, and `vs-naive` the savings over
// shipping A.
func BenchmarkE6_LinfBinary(b *testing.B) {
	for _, n := range []int{96, 192, 384} {
		a, bb, _, _ := workload.PlantedPair(uint64(40+n), n, n/3, 0.05)
		truth, _, _ := a.Mul(bb).Linf()
		eps := 0.5
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cost core.Cost
			var est float64
			for i := 0; i < b.N; i++ {
				est, _, cost, _ = core.EstimateLinfBinary(a, bb, core.LinfOpts{Eps: eps, Seed: uint64(i)})
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)/(math.Pow(float64(n), 1.5)/eps), "shape")
			b.ReportMetric(float64(cost.Bits)/float64(n*n), "vs-naive")
			b.ReportMetric(est/float64(truth), "approx-ratio")
		})
	}
}

// BenchmarkE7_LinfKappa measures Algorithm 3: κ-approximation at
// Õ(n^1.5/κ) bits; `shape` reports bits·κ/n^1.5 (should stay flat) and
// the approximation ratio achieved.
func BenchmarkE7_LinfKappa(b *testing.B) {
	n := 256
	a, bb, _, _ := workload.PlantedPair(50, n, n/2, 0.1)
	truth, _, _ := a.Mul(bb).Linf()
	for _, kappa := range []float64{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("kappa=%.0f", kappa), func(b *testing.B) {
			var cost core.Cost
			var est float64
			for i := 0; i < b.N; i++ {
				est, _, cost, _ = core.EstimateLinfKappa(a, bb,
					core.LinfKappaOpts{Kappa: kappa, AlphaC: 1, Seed: uint64(i)})
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)*kappa/math.Pow(float64(n), 1.5), "shape")
			b.ReportMetric(est/float64(truth), "approx-ratio")
		})
	}
}

// BenchmarkE8_LinfGeneral measures Theorem 4.8(1): κ-approximation for
// integer matrices at Õ(n²/κ²) bits; `shape` reports bits·κ²/n².
func BenchmarkE8_LinfGeneral(b *testing.B) {
	n := 128
	A := workload.Integer(60, n, n, 0.2, 4, true)
	B := workload.Integer(61, n, n, 0.2, 4, true)
	A.Set(3, 0, 500)
	B.Set(0, 5, 500)
	truth, _, _ := A.Mul(B).Linf()
	for _, kappa := range []float64{2, 4, 8} {
		b.Run(fmt.Sprintf("kappa=%.0f", kappa), func(b *testing.B) {
			var cost core.Cost
			var est float64
			for i := 0; i < b.N; i++ {
				est, cost, _ = core.EstimateLinfGeneral(A, B,
					core.LinfGeneralOpts{Kappa: kappa, Seed: uint64(i)})
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)*kappa*kappa/float64(n*n), "shape")
			b.ReportMetric(est/float64(truth), "approx-ratio")
		})
	}
}

// BenchmarkE9_HHGeneral measures Algorithm 4: ℓ1-(ϕ,ε)-heavy-hitters for
// integer matrices at Õ(√ϕ/ε·n) bits.
func BenchmarkE9_HHGeneral(b *testing.B) {
	n := 128
	A, B := workload.PlantedHeavy(70, n, 1, 80, 0.01)
	for _, phi := range []float64{0.2, 0.1} {
		eps := phi / 2
		b.Run(fmt.Sprintf("phi=%.2f", phi), func(b *testing.B) {
			var cost core.Cost
			var found int
			for i := 0; i < b.N; i++ {
				out, c, _ := core.HeavyHitters(A, B, core.HHOpts{Phi: phi, Eps: eps, Seed: uint64(i)})
				cost = c
				found = len(out)
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)/(math.Sqrt(phi)/eps*float64(n)), "shape")
			b.ReportMetric(float64(found), "found")
		})
	}
}

// BenchmarkE10_HHBinary measures Theorem 5.3: binary heavy hitters at
// Õ(n + ϕ/ε²) bits — `bits-per-n` should stay bounded as n grows.
func BenchmarkE10_HHBinary(b *testing.B) {
	for _, n := range []int{96, 192} {
		Ai, Bi := workload.PlantedHeavy(uint64(80+n), n, 1, n*3/4, 0.01)
		a := NewBoolMatrix(n, n)
		bb := NewBoolMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if Ai.Get(i, j) != 0 {
					a.Set(i, j, true)
				}
				if Bi.Get(i, j) != 0 {
					bb.Set(i, j, true)
				}
			}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cost Cost
			var found int
			for i := 0; i < b.N; i++ {
				out, c, _ := HeavyHittersBinary(a, bb, HHBinaryOptions{Phi: 0.1, Eps: 0.05, Seed: uint64(i)})
				cost = c
				found = len(out)
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)/float64(n), "bits-per-n")
			b.ReportMetric(float64(found), "found")
		})
	}
}

// BenchmarkE11_LowerBoundGadgets generates and verifies the hard
// instances behind Theorems 4.4, 4.5 and 4.8(2): the reductions' ℓ∞ gaps
// must hold on every draw.
func BenchmarkE11_LowerBoundGadgets(b *testing.B) {
	b.Run("disj-embed", func(b *testing.B) {
		r := rng.New(90)
		n := 32
		for i := 0; i < b.N; i++ {
			intersect := i%2 == 0
			d := lowerbound.NewDISJ(r, (n/2)*(n/2), intersect)
			A, B := lowerbound.EmbedDISJ(d, n)
			max, _, _ := A.Mul(B).Linf()
			if (intersect && max != 2) || (!intersect && max > 1) {
				b.Fatalf("DISJ gap violated: intersect=%v max=%d", intersect, max)
			}
		}
	})
	b.Run("gaplinf-embed", func(b *testing.B) {
		r := rng.New(91)
		n := 32
		kappa := int64(16)
		for i := 0; i < b.N; i++ {
			far := i%2 == 0
			g := lowerbound.NewGapLinf(r, (n/2)*(n/2), kappa, far)
			A, B := lowerbound.EmbedGapLinf(g, n)
			max, _, _ := A.Mul(B).Linf()
			if (far && max < kappa) || (!far && max > 1) {
				b.Fatalf("Gap-ℓ∞ gap violated: far=%v max=%d", far, max)
			}
		}
	})
	b.Run("sum-structure", func(b *testing.B) {
		r := rng.New(92)
		for i := 0; i < b.N; i++ {
			inst := lowerbound.NewSUM(r, lowerbound.SUMParams{N: 128, Kappa: 2, BetaC: 2})
			sum := inst.Sum()
			if inst.Planted != (sum == 1) || sum > 1 {
				b.Fatalf("SUM structure violated: planted=%v sum=%d", inst.Planted, sum)
			}
		}
	})
}

// BenchmarkE12_DistributedMatMul measures Lemma 2.5: recovering AB with
// Õ(n·√‖AB‖0) bits; `shape` reports bits/(n·√s).
func BenchmarkE12_DistributedMatMul(b *testing.B) {
	n := 128
	for _, density := range []float64{0.01, 0.02, 0.04} {
		A := workload.Integer(uint64(100+int(density*1000)), n, n, density, 3, false)
		B := workload.Integer(uint64(101+int(density*1000)), n, n, density, 3, false)
		truth := A.Mul(B)
		s := truth.L0() + 1
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			var cost core.Cost
			exact := 0
			for i := 0; i < b.N; i++ {
				ca, cb, c, _ := core.DistributedProduct(A, B, core.MatMulOpts{Sparsity: s, Seed: uint64(i)})
				cost = c
				sum := ca.Clone()
				sum.AddMatrix(cb)
				if sum.Equal(truth) {
					exact++
				}
			}
			reportCost(b, cost)
			b.ReportMetric(float64(cost.Bits)/(float64(n)*math.Sqrt(float64(s))), "shape")
			// The recovery succeeds with high (not certain) probability;
			// report the observed rate across the sampled seeds.
			b.ReportMetric(float64(exact)/float64(b.N), "exact-rate")
		})
	}
}

// BenchmarkE13_Rectangular measures the Section 6 rectangular extension:
// ℓp stays Õ(n/ε) in the inner dimension n, and ℓ∞ scales with m^1.5.
func BenchmarkE13_Rectangular(b *testing.B) {
	b.Run("lp/m1=64-n=256-m2=128", func(b *testing.B) {
		A := workload.Integer(110, 64, 256, 0.08, 2, false)
		B := workload.Integer(111, 256, 128, 0.08, 2, false)
		truth := float64(A.Mul(B).L0())
		var cost core.Cost
		var est float64
		for i := 0; i < b.N; i++ {
			est, cost, _ = core.EstimateLp(A, B, 0, core.LpOpts{Eps: 0.25, Seed: uint64(i)})
		}
		reportCost(b, cost)
		b.ReportMetric(math.Abs(est-truth)/math.Max(truth, 1), "relerr")
	})
	b.Run("linf/m=128-n=64", func(b *testing.B) {
		a := workload.Binary(112, 128, 64, 0.1)
		bb := workload.Binary(113, 64, 128, 0.1)
		var cost core.Cost
		for i := 0; i < b.N; i++ {
			_, _, cost, _ = core.EstimateLinfBinary(a, bb, core.LinfOpts{Eps: 0.5, Seed: uint64(i)})
		}
		reportCost(b, cost)
	})
}

// BenchmarkServiceEstimateLp exercises the estimation service end to
// end over HTTP loopback: a served 256×256 matrix answering Algorithm 1
// queries through the engine's worker pool, with the full JSON
// marshal → admission → protocol-over-transport → response path on the
// measured critical path. Run against the in-process and loopback-TCP
// protocol transports to price the socket hop.
func BenchmarkServiceEstimateLp(b *testing.B) {
	n := 256
	served := service.MatrixFromBool(workload.Binary(200, n, n, 0.05))
	query := service.MatrixFromBool(workload.Binary(201, n, n, 0.05))
	for _, mode := range []struct {
		name    string
		factory service.TransportFactory
	}{
		{"inproc", service.InProcess},
		{"tcp", service.TCPLoopback},
	} {
		b.Run(mode.name, func(b *testing.B) {
			engine := service.NewEngine(service.Config{Workers: 4, Transport: mode.factory})
			defer engine.Close()
			srv := httptest.NewServer(service.NewHandler(engine))
			defer srv.Close()
			client := service.NewClient(srv.URL)
			ctx := context.Background()
			if _, err := client.UploadMatrix(ctx, "bench", served); err != nil {
				b.Fatal(err)
			}
			seed := uint64(202)
			req := service.Request{Matrix: "bench", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: query}
			b.ResetTimer()
			var bits int64
			for i := 0; i < b.N; i++ {
				res, err := client.Estimate(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				bits = res.Bits
			}
			b.ReportMetric(float64(bits), "bits/op")
		})
	}
}

// BenchmarkServiceLpCachedVsUncached prices the Bob-side sketch cache
// on the serving path: the same pinned-seed Algorithm 1 query against a
// served 256×256 matrix, answered by an engine that re-derives Bob's
// sketches per request (uncached) versus one serving them from the
// cache (cached — the first request warms it, every measured request
// hits). Transcripts are byte-identical either way — the parity tests
// pin that — so bits/op must agree; only time/op moves.
func BenchmarkServiceLpCachedVsUncached(b *testing.B) {
	// The serve-many shape: selective (sparse) queries against a denser
	// served relation — B's sketches are the bulk of the per-query work
	// the cache amortizes away.
	n := 256
	served := service.MatrixFromBool(workload.Binary(210, n, n, 0.3))
	query := service.MatrixFromBool(workload.Binary(211, n, n, 0.02))
	seed := uint64(212)
	req := service.Request{Matrix: "bench", Kind: "lp", P: 1, Eps: 0.25, Seed: &seed, A: query}
	for _, mode := range []struct {
		name string
		cfg  service.Config
	}{
		{"uncached", service.Config{Workers: 4, DisableCache: true}},
		{"cached", service.Config{Workers: 4}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			engine := service.NewEngine(mode.cfg)
			defer engine.Close()
			ctx := context.Background()
			if _, _, err := engine.PutMatrix("bench", served); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Estimate(ctx, req); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			var bits int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Estimate(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				bits = res.Bits
			}
			b.ReportMetric(float64(bits), "bits/op")
		})
	}
}

// BenchmarkServiceLpSharded prices the row-shard parallel serve path
// on the uncached lp pipeline: the same pinned-seed query against a
// served 512×512 matrix, answered by an engine that re-derives Bob's
// sketches every request (the cache is off, so each estimate pays the
// full precompute + serve cost) at 1 shard versus 4. Transcripts are
// byte-identical across shard counts — the core parity tests pin that —
// so bits/op must agree; only time/op moves. The 4-shard run is the
// headline number: ≥2× faster than 1 shard on a ≥4-core box.
func BenchmarkServiceLpSharded(b *testing.B) {
	n := 512
	served := service.MatrixFromBool(workload.Binary(230, n, n, 0.2))
	query := service.MatrixFromBool(workload.Binary(231, n, n, 0.02))
	seed := uint64(232)
	req := service.Request{Matrix: "bench", Kind: "lp", P: 1, Eps: 0.25, Seed: &seed, A: query}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			engine := service.NewEngine(service.Config{Workers: 4, DisableCache: true, Shards: shards})
			defer engine.Close()
			ctx := context.Background()
			if _, _, err := engine.PutMatrix("bench", served); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Estimate(ctx, req); err != nil { // warm allocators
				b.Fatal(err)
			}
			b.ResetTimer()
			var bits int64
			for i := 0; i < b.N; i++ {
				res, err := engine.Estimate(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				bits = res.Bits
			}
			b.ReportMetric(float64(bits), "bits/op")
		})
	}
}

// BenchmarkServiceLpUpdateVsReupload prices the dynamic-update path
// against the only alternative a fixed-matrix service offers: a full
// re-upload with a cold sketch cache. Both modes alternate the served
// 512×512 matrix between the same two states (row 0 original vs row 0
// replaced) and answer one pinned-seed lp query per iteration, so the
// transcripts — and therefore bits/op — are identical by construction
// (asserted below); only the ingest cost differs. The update path
// re-sketches 1 row of 512 and revalidates the cached state in place,
// so a single-row update is ≥5× faster than PUT + rebuild at this
// size.
func BenchmarkServiceLpUpdateVsReupload(b *testing.B) {
	n := 512
	base := service.MatrixFromBool(workload.Binary(240, n, n, 0.2))
	query := service.MatrixFromBool(workload.Binary(241, 8, n, 0.01))
	seed := uint64(242)
	req := service.Request{Matrix: "bench", Kind: "lp", P: 1, Eps: 0.25, Seed: &seed, A: query}

	// The two row-0 states the matrix alternates between: its original
	// entries and a fixed sparse replacement.
	var rowOrig [][2]int64
	for _, ent := range base.Entries {
		if ent[0] == 0 {
			rowOrig = append(rowOrig, [2]int64{ent[1], ent[2]})
		}
	}
	rowAlt := [][2]int64{{1, 1}, {7, 1}, {130, 1}, {244, 1}, {399, 1}}
	variants := [2][][2]int64{rowAlt, rowOrig} // iteration i installs variants[i%2]
	wires := [2]service.Matrix{{Rows: n, Cols: n}, base}
	for _, ent := range base.Entries {
		if ent[0] != 0 {
			wires[0].Entries = append(wires[0].Entries, ent)
		}
	}
	for _, e := range rowAlt {
		wires[0].Entries = append(wires[0].Entries, [3]int64{0, e[0], e[1]})
	}

	var bitsSeen [2][2]int64 // [mode][parity] for the cross-mode identity check
	for mode, name := range []string{"update", "reupload"} {
		b.Run(name, func(b *testing.B) {
			engine := service.NewEngine(service.Config{Workers: 4, Shards: 1})
			defer engine.Close()
			ctx := context.Background()
			if _, _, err := engine.PutMatrix("bench", base); err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Estimate(ctx, req); err != nil { // warm the cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == 0 {
					upd := service.UpdateRequest{Updates: []service.RowUpdate{{Row: 0, Entries: variants[i%2]}}}
					if _, err := engine.UpdateRows("bench", upd); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, _, err := engine.PutMatrix("bench", wires[i%2]); err != nil {
						b.Fatal(err)
					}
				}
				res, err := engine.Estimate(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				bitsSeen[mode][i%2] = res.Bits
			}
			b.StopTimer()
			b.ReportMetric(float64(bitsSeen[mode][(b.N-1)%2]), "bits/op")
			if mode == 0 {
				cs := engine.Stats().Cache
				b.ReportMetric(float64(cs.Misses), "cache-misses")
			}
		})
	}
	for parity := 0; parity < 2; parity++ {
		u, r := bitsSeen[0][parity], bitsSeen[1][parity]
		if u != 0 && r != 0 && u != r {
			b.Fatalf("bit counts diverged at parity %d: update %d, reupload %d", parity, u, r)
		}
	}
}

// BenchmarkServiceBatchEstimate prices the batched query API over the
// HTTP surface: 16 pinned-seed lp queries per POST /estimate/batch
// (one HTTP exchange, one admission slot, cache hits throughout)
// against 16 individual POST /estimate calls. Time is per 16-query
// group either way.
func BenchmarkServiceBatchEstimate(b *testing.B) {
	n := 256
	served := service.MatrixFromBool(workload.Binary(220, n, n, 0.2))
	query := service.MatrixFromBool(workload.Binary(221, n, n, 0.02))
	seed := uint64(222)
	req := service.Request{Matrix: "bench", Kind: "lp", P: 1, Eps: 0.25, Seed: &seed, A: query}
	const batch = 16
	engine := service.NewEngine(service.Config{Workers: 4})
	defer engine.Close()
	srv := httptest.NewServer(service.NewHandler(engine))
	defer srv.Close()
	client := service.NewClient(srv.URL)
	ctx := context.Background()
	if _, err := client.UploadMatrix(ctx, "bench", served); err != nil {
		b.Fatal(err)
	}
	if _, err := client.Estimate(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				if _, err := client.Estimate(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		reqs := make([]service.Request, batch)
		for i := range reqs {
			reqs[i] = req
		}
		for i := 0; i < b.N; i++ {
			items, err := client.EstimateBatch(ctx, reqs)
			if err != nil {
				b.Fatal(err)
			}
			for _, item := range items {
				if item.Error != "" {
					b.Fatal(item.Error)
				}
			}
		}
	})
}

// BenchmarkAblation_UniverseSampling isolates Algorithm 3's universe-
// sampling step: with it, communication is Õ(n^1.5/κ); without it, only
// Õ(n^1.5/√κ).
func BenchmarkAblation_UniverseSampling(b *testing.B) {
	n := 256
	a, bb, _, _ := workload.PlantedPair(120, n, n/2, 0.15)
	o := core.LinfKappaOpts{Kappa: 24, AlphaC: 1, Seed: 121}
	b.Run("with", func(b *testing.B) {
		var cost core.Cost
		for i := 0; i < b.N; i++ {
			_, _, cost, _ = core.EstimateLinfKappa(a, bb, o)
		}
		reportCost(b, cost)
	})
	b.Run("without", func(b *testing.B) {
		var cost core.Cost
		for i := 0; i < b.N; i++ {
			_, _, cost, _ = core.EstimateLinfKappaNoUniverse(a, bb, o)
		}
		reportCost(b, cost)
	})
}

// BenchmarkAblation_BetaSplit isolates Algorithm 1's β = √ε choice: the
// same pipeline with β = ε (all accuracy from the sketch, none from
// sampling) is exactly the [16] one-round protocol, and with β = √ε the
// sketch shrinks by 1/ε at the cost of one extra round.
func BenchmarkAblation_BetaSplit(b *testing.B) {
	n := 192
	A := boolMat(workload.Binary(130, n, n, 0.08)).ToInt()
	B := boolMat(workload.Binary(131, n, n, 0.08)).ToInt()
	eps := 0.1
	b.Run("beta=sqrt-eps(2-round)", func(b *testing.B) {
		var cost Cost
		for i := 0; i < b.N; i++ {
			_, cost, _ = EstimateLp(A, B, 0, LpOptions{Eps: eps, Seed: uint64(i)})
		}
		reportCost(b, cost)
	})
	b.Run("beta=eps(1-round)", func(b *testing.B) {
		var cost Cost
		for i := 0; i < b.N; i++ {
			_, cost, _ = EstimateLpOneRound(A, B, 0, LpOptions{Eps: eps, Seed: uint64(i)})
		}
		reportCost(b, cost)
	})
}

// BenchmarkWireLpEstimate prices the hot-path wire format for a cached
// single lp estimate over the real HTTP surface: the same pinned-seed
// query through a JSON client versus a binary-negotiating one. Before
// timing, it asserts the codec contract this format exists for — the
// binary encode+decode of the request/response pair allocates ≥10×
// less than the streaming encoding/json exchange the JSON tiers run,
// and puts ≥3× fewer bytes on the wire. The binary side's allocation
// count is flat in the payload (the bitset matrix form plus pooled
// buffers); JSON's grows with it, so the ratios only widen at scale.
func BenchmarkWireLpEstimate(b *testing.B) {
	n := 512
	served := service.MatrixFromBool(workload.Binary(230, n, n, 0.2))
	query := service.MatrixFromBool(workload.Binary(231, n, n, 0.10))
	seed := uint64(232)
	req := service.Request{Matrix: "bench", Kind: "lp", P: 1, Eps: 0.25, Seed: &seed, A: query}

	engine := service.NewEngine(service.Config{Workers: 4})
	defer engine.Close()
	srv := httptest.NewServer(service.NewHandler(engine))
	defer srv.Close()
	ctx := context.Background()
	jsonC := service.New(srv.URL)
	binC := service.New(srv.URL, service.WithAccept(service.MediaTypeBinary))
	if _, err := jsonC.UploadMatrix(ctx, "bench", served); err != nil {
		b.Fatal(err)
	}
	res, err := jsonC.Estimate(ctx, req) // warm the sketch cache, keep a real reply
	if err != nil {
		b.Fatal(err)
	}

	// Bytes on the wire for the exchange: request body + response body.
	binReq, err := service.AppendBinary(nil, req)
	if err != nil {
		b.Fatal(err)
	}
	binRes, err := service.AppendBinary(nil, res)
	if err != nil {
		b.Fatal(err)
	}
	jsonReq, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	jsonRes, err := json.Marshal(res)
	if err != nil {
		b.Fatal(err)
	}
	jsonBytes := len(jsonReq) + len(jsonRes)
	binBytes := len(binReq) + len(binRes)
	if binBytes*3 > jsonBytes {
		b.Fatalf("binary exchange is %d bytes vs JSON %d: want ≥3x smaller", binBytes, jsonBytes)
	}

	// Codec allocations for the same exchange, both directions, each
	// side doing what its wire tier actually does: JSON marshals the
	// request, stream-decodes it server-side (DisallowUnknownFields,
	// as DecodeJSON does), stream-encodes the reply, and decodes it
	// client-side; the binary side runs the framed codec over one
	// reused buffer, as the pooled server/client paths do.
	allocsJSON := testing.AllocsPerRun(50, func() {
		buf, _ := json.Marshal(req)
		dec := json.NewDecoder(bytes.NewReader(buf))
		dec.DisallowUnknownFields()
		var q service.Request
		_ = dec.Decode(&q)
		var sink bytes.Buffer
		_ = json.NewEncoder(&sink).Encode(res)
		dec = json.NewDecoder(bytes.NewReader(sink.Bytes()))
		var r service.Result
		_ = dec.Decode(&r)
	})
	scratch := make([]byte, 0, 1<<20)
	var reqAny, resAny any = req, res // hoisted like the clients' typed calls
	var q service.Request
	var r service.Result
	allocsBin := testing.AllocsPerRun(50, func() {
		scratch, _ = service.AppendBinary(scratch[:0], reqAny)
		q = service.Request{}
		_ = service.DecodeBinary(scratch, &q)
		scratch, _ = service.AppendBinary(scratch[:0], resAny)
		r = service.Result{}
		_ = service.DecodeBinary(scratch, &r)
	})
	if allocsBin*10 > allocsJSON {
		b.Fatalf("binary codec allocates %.0f/op vs JSON %.0f/op: want ≥10x fewer", allocsBin, allocsJSON)
	}

	for _, mode := range []struct {
		name   string
		client *service.Client
	}{
		{"json", jsonC},
		{"binary", binC},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mode.client.Estimate(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			wire := binBytes
			if mode.name == "json" {
				wire = jsonBytes
			}
			b.ReportMetric(float64(wire), "wirebytes/op")
		})
	}
	b.Logf("wire bytes: json %d, binary %d (%.1fx); codec allocs: json %.0f, binary %.0f (%.0fx)",
		jsonBytes, binBytes, float64(jsonBytes)/float64(binBytes),
		allocsJSON, allocsBin, allocsJSON/allocsBin)
}

// BenchmarkGatewayUpdateReplicated prices a replicated row update
// through the gateway front at R=3: "sync" commits only after every
// replica acks the PATCH, "async" commits on a single write-quorum ack
// and drains the remaining replicas through the background apply loop.
// The ns/op gap is the latency the quorum commit takes off the write
// path; ci/bench_baseline.json gates the async entry as the write-
// throughput baseline.
func BenchmarkGatewayUpdateReplicated(b *testing.B) {
	n := 256
	base := service.MatrixFromBool(workload.Binary(260, n, n, 0.1))
	var rowOrig [][2]int64
	for _, ent := range base.Entries {
		if ent[0] == 0 {
			rowOrig = append(rowOrig, [2]int64{ent[1], ent[2]})
		}
	}
	rowAlt := [][2]int64{{3, 1}, {59, 1}, {171, 1}, {238, 1}}
	variants := [2][][2]int64{rowAlt, rowOrig}

	var backends []string
	for i := 0; i < 3; i++ {
		engine := service.NewEngine(service.Config{Workers: 4, Shards: 1})
		defer engine.Close()
		srv := httptest.NewServer(service.NewHandler(engine))
		defer srv.Close()
		backends = append(backends, srv.URL)
	}

	for _, mode := range []string{"sync", "async"} {
		b.Run(mode, func(b *testing.B) {
			g := gateway.New(gateway.Config{
				Backends:         backends,
				Replication:      3,
				AsyncReplication: mode == "async",
				WriteQuorum:      1,
			})
			defer g.Close()
			ctx := context.Background()
			if _, err := g.PutMatrix(ctx, "bench-"+mode, base); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upd := service.UpdateRequest{Updates: []service.RowUpdate{{Row: 0, Entries: variants[i%2]}}}
				if _, err := g.UpdateRows(ctx, "bench-"+mode, upd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
