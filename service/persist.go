package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Durable persistence: when Config.Store is set, the engine snapshots
// every installed matrix (PutMatrix / CommitUpload) and appends one
// WAL record per row update, then recovers on boot by replaying the
// log over the latest snapshot. The write ordering is what makes a
// kill -9 at any filesystem operation safe:
//
//   - Install persists the snapshot BEFORE the registry insert, so an
//     acknowledged upload is always durable; a crash between the two
//     re-serves the upload on restart (at-least-once, never lost).
//   - A row update appends its WAL record BEFORE the copy-on-write
//     registry swap. A record whose swap then lost (a racing full
//     replacement) is harmless junk: replay filters records by the
//     snapshot's epoch (the upload generation), and the replacement
//     that won carries a fresh one.
//   - Delete (and LRU eviction) tombstones the durable state BEFORE
//     the registry removal, so a restart cannot resurrect a deleted
//     matrix.
//
// Snapshot payloads reuse the binary wire codec (the same bytes the
// hot path ships) under the store's own CRC-framed container; WAL
// payloads are binary-encoded UpdateRequests. A background compactor
// re-snapshots a matrix after Config.SnapshotEvery WAL records and
// truncates the covered log suffix, bounding replay time.

// ErrStore marks a durable-store failure surfaced by a write path
// (mapped to 500 store_error). The in-memory state is unchanged: an
// operation that cannot be made durable is not applied.
var ErrStore = errors.New("service: durable store failed")

// EncodeMatrixSnapshot renders a snapshot payload: the wire matrix in
// binary-codec form behind an 8-byte upload timestamp (Unix
// nanoseconds, little-endian), so recovery restores the catalog's
// Uploaded field too.
func EncodeMatrixSnapshot(m Matrix, uploaded time.Time) []byte {
	b := make([]byte, 0, 8+32+16*len(m.Entries))
	b = binary.LittleEndian.AppendUint64(b, uint64(uploaded.UnixNano()))
	b, _ = AppendBinary(b, m) // Matrix is always encodable
	return b
}

// DecodeMatrixSnapshot parses a snapshot payload.
func DecodeMatrixSnapshot(b []byte) (Matrix, time.Time, error) {
	if len(b) < 8 {
		return Matrix{}, time.Time{}, fmt.Errorf("snapshot payload of %d bytes", len(b))
	}
	var m Matrix
	if err := DecodeBinary(b[8:], &m); err != nil {
		return Matrix{}, time.Time{}, err
	}
	return m, time.Unix(0, int64(binary.LittleEndian.Uint64(b[:8]))), nil
}

// PersistStats is the /stats view of the persistence layer.
type PersistStats struct {
	// Enabled reports whether a durable store is configured.
	Enabled bool `json:"enabled"`
	// Snapshots counts matrix snapshots persisted (installs and
	// compactions).
	Snapshots int64 `json:"snapshots"`
	// WALAppends counts row-update records appended to the WAL.
	WALAppends int64 `json:"wal_appends"`
	// Compactions counts background snapshot compactions (snapshot plus
	// WAL truncation).
	Compactions int64 `json:"compactions"`
	// Tombstones counts durable states removed by DELETE and LRU
	// eviction.
	Tombstones int64 `json:"tombstones"`
	// Errors counts failed persistence operations (the paired request
	// fails with store_error; best-effort paths only count).
	Errors int64 `json:"errors"`
	// RecoveredMatrices counts matrices restored from durable state at
	// boot.
	RecoveredMatrices int64 `json:"recovered_matrices"`
	// ReplayedRecords counts WAL records replayed over snapshots at
	// boot.
	ReplayedRecords int64 `json:"replayed_records"`
	// RecoveryErrors counts matrices (or log suffixes) skipped at boot
	// because their durable state did not validate.
	RecoveryErrors int64 `json:"recovery_errors"`
	// Backend holds the store's own operation counters (fsyncs, torn
	// records, bytes).
	Backend store.Stats `json:"backend"`
}

// persister is the engine's persistence state. Its mutex serializes
// all persist I/O — including the compactor's — which is what keeps a
// compaction reading a stale registry entry from ever overwriting a
// newer snapshot: epochs only move forward under the lock, and the
// compactor re-checks lastEpoch inside it.
type persister struct {
	store store.Store
	every int // WAL records per matrix before compaction; <0 never

	mu        sync.Mutex
	walCount  map[string]int    // records since the matrix's last snapshot
	lastEpoch map[string]uint64 // newest persisted epoch per matrix

	compactCh chan string

	snapshots    atomic.Int64
	walAppends   atomic.Int64
	compactions  atomic.Int64
	tombstones   atomic.Int64
	errs         atomic.Int64
	recovered    atomic.Int64
	replayed     atomic.Int64
	recoveryErrs atomic.Int64
}

func newPersister(s store.Store, every int) *persister {
	return &persister{
		store:     s,
		every:     every,
		walCount:  make(map[string]int),
		lastEpoch: make(map[string]uint64),
		compactCh: make(chan string, 64),
	}
}

func (p *persister) snapshot() PersistStats {
	return PersistStats{
		Enabled:           true,
		Snapshots:         p.snapshots.Load(),
		WALAppends:        p.walAppends.Load(),
		Compactions:       p.compactions.Load(),
		Tombstones:        p.tombstones.Load(),
		Errors:            p.errs.Load(),
		RecoveredMatrices: p.recovered.Load(),
		ReplayedRecords:   p.replayed.Load(),
		RecoveryErrors:    p.recoveryErrs.Load(),
		Backend:           p.store.Stats(),
	}
}

// persistPut makes an install durable: snapshot at (gen, sub), then
// truncate the log records the snapshot covers. Called BEFORE the
// registry insert; a snapshot failure fails the install. A truncation
// failure does not — the snapshot landed, and any stale records it
// should have dropped are filtered by epoch on replay anyway.
func (e *Engine) persistPut(name string, sm *servedMatrix) error {
	p := e.persist
	if p == nil {
		return nil
	}
	payload := EncodeMatrixSnapshot(MatrixFromDense(sm.dense), sm.info.Uploaded)
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.SaveSnapshot(name, store.Snapshot{Epoch: sm.gen, Seq: sm.sub, Payload: payload}); err != nil {
		p.errs.Add(1)
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	p.snapshots.Add(1)
	if err := p.store.TruncateWAL(name, sm.gen, sm.sub); err != nil {
		p.errs.Add(1)
	}
	p.lastEpoch[name] = sm.gen
	p.walCount[name] = 0
	return nil
}

// persistUpdate appends one row update to the matrix's WAL. Called
// BEFORE the registry's copy-on-write swap; an append failure fails
// the update. Returns with the compaction trigger sent outside the
// persist lock.
func (e *Engine) persistUpdate(name string, epoch, seq uint64, ups []RowUpdate, delta bool) error {
	p := e.persist
	if p == nil {
		return nil
	}
	payload, _ := AppendBinary(nil, UpdateRequest{Updates: ups, Delta: delta})
	p.mu.Lock()
	if err := p.store.AppendWAL(name, store.Record{Epoch: epoch, Seq: seq, Payload: payload}); err != nil {
		p.errs.Add(1)
		p.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	p.walAppends.Add(1)
	p.walCount[name]++
	compact := p.every > 0 && p.walCount[name] >= p.every
	p.mu.Unlock()
	if compact {
		select {
		case p.compactCh <- name:
		default: // compactor busy; the next update re-triggers
		}
	}
	return nil
}

// persistDelete tombstones a matrix's durable state. Called BEFORE the
// registry removal; a failure fails the delete (leaving the matrix
// served) rather than risking resurrection on restart.
func (e *Engine) persistDelete(name string) error {
	p := e.persist
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.store.Delete(name); err != nil {
		p.errs.Add(1)
		return fmt.Errorf("%w: %v", ErrStore, err)
	}
	p.tombstones.Add(1)
	delete(p.walCount, name)
	delete(p.lastEpoch, name)
	return nil
}

// persistTombstones best-effort tombstones LRU-evicted matrices. The
// evictions already happened in memory, so failures only count — but
// without the attempt a restart would resurrect every evicted matrix
// into an over-capacity registry.
func (e *Engine) persistTombstones(names []string) {
	p := e.persist
	if p == nil || len(names) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, name := range names {
		if err := p.store.Delete(name); err != nil {
			p.errs.Add(1)
			continue
		}
		p.tombstones.Add(1)
		delete(p.walCount, name)
		delete(p.lastEpoch, name)
	}
}

// compactLoop is the background snapshot compactor: it re-snapshots a
// matrix whose WAL grew past Config.SnapshotEvery records and
// truncates the covered suffix, bounding recovery replay.
func (e *Engine) compactLoop() {
	for {
		select {
		case <-e.closed:
			return
		case name := <-e.persist.compactCh:
			e.compactOne(name)
		}
	}
}

// compactOne snapshots one matrix's current registry state. Everything
// happens under the persist lock, with the registry entry read inside
// it: an install that persisted a newer epoch either completed before
// (lastEpoch moved on, the stale trigger is skipped) or serializes
// after this compaction. Without that discipline a compactor holding a
// pre-replacement entry could overwrite a newer snapshot whose WAL
// truncation already dropped the old epoch's records — recovery would
// then serve the replaced matrix.
func (e *Engine) compactOne(name string) {
	p := e.persist
	p.mu.Lock()
	defer p.mu.Unlock()
	sm, ok := e.reg.peek(name)
	if !ok || p.lastEpoch[name] != sm.gen {
		return // deleted, or a replacement's snapshot is already newer
	}
	payload := EncodeMatrixSnapshot(MatrixFromDense(sm.dense), sm.info.Uploaded)
	if err := p.store.SaveSnapshot(name, store.Snapshot{Epoch: sm.gen, Seq: sm.sub, Payload: payload}); err != nil {
		p.errs.Add(1)
		return
	}
	p.snapshots.Add(1)
	if err := p.store.TruncateWAL(name, sm.gen, sm.sub); err != nil {
		p.errs.Add(1)
		return
	}
	p.walCount[name] = 0
	p.compactions.Add(1)
}

// recoverFromStore rebuilds the registry from durable state: for every
// stored matrix, decode the latest snapshot and replay its WAL records
// in sequence. Runs during NewEngine, before any request is admitted.
//
// Replay filters: a record applies only when its epoch matches the
// snapshot's and its sequence is the immediate successor of the
// current sub-version. Stale epochs (a replaced matrix's old records
// surviving a crash before truncation) and already-covered sequences
// skip silently — they are expected crash shapes, not corruption. A
// sequence gap or an undecodable record ends the matrix's replay at
// the valid prefix and counts a recovery error.
func (e *Engine) recoverFromStore() {
	p := e.persist
	names, err := p.store.Names()
	if err != nil {
		p.recoveryErrs.Add(1)
		return
	}
	var maxEpoch uint64
	for _, name := range names {
		snap, recs, err := p.store.Load(name)
		if err != nil {
			p.recoveryErrs.Add(1)
			continue
		}
		if snap == nil {
			// A WAL with no snapshot is the durable residue of an update
			// whose racing delete or replacement won: nothing servable.
			continue
		}
		m, uploaded, err := DecodeMatrixSnapshot(snap.Payload)
		if err != nil {
			p.recoveryErrs.Add(1)
			continue
		}
		dense, binary, nonNeg, err := m.toDense()
		if err != nil {
			p.recoveryErrs.Add(1)
			continue
		}
		sm := &servedMatrix{
			info: MatrixInfo{
				Name:     name,
				Rows:     dense.Rows(),
				Cols:     dense.Cols(),
				NNZ:      dense.L0(),
				Binary:   binary,
				NonNeg:   nonNeg,
				Uploaded: uploaded,
			},
			gen:   snap.Epoch,
			sub:   snap.Seq,
			dense: dense,
		}
		if binary {
			sm.bits = toBool(dense)
		}
		applied := 0
		for _, r := range recs {
			if r.Epoch != snap.Epoch || r.Seq <= sm.sub {
				continue
			}
			if r.Seq != sm.sub+1 {
				p.recoveryErrs.Add(1)
				break
			}
			var ur UpdateRequest
			if err := DecodeBinary(r.Payload, &ur); err != nil {
				p.recoveryErrs.Add(1)
				break
			}
			ups, err := ur.Normalized()
			if err != nil {
				p.recoveryErrs.Add(1)
				break
			}
			next, _, err := patchServed(sm, ups, ur.Delta)
			if err != nil {
				p.recoveryErrs.Add(1)
				break
			}
			sm = next
			applied++
			p.replayed.Add(1)
		}
		if snap.Epoch > maxEpoch {
			maxEpoch = snap.Epoch
		}
		evicted := e.reg.put(name, sm)
		e.stats.evict(len(evicted))
		p.walCount[name] = applied
		p.lastEpoch[name] = snap.Epoch
		p.recovered.Add(1)
		e.persistTombstones(evicted)
	}
	if maxEpoch > e.genSeq.Load() {
		e.genSeq.Store(maxEpoch)
	}
}
