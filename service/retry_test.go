package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// diagMatrix is an n×n diagonal wire matrix with value v per entry
// (sum = n·v against an identity query).
func diagMatrix(n int, v int64) Matrix {
	m := Matrix{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		m.Entries = append(m.Entries, [3]int64{int64(i), int64(i), v})
	}
	return m
}

func exactSum(t *testing.T, e *Engine, name string, n int) float64 {
	t.Helper()
	ident := diagMatrix(n, 1)
	res, err := e.Estimate(context.Background(), Request{Matrix: name, Kind: "exact", A: ident})
	if err != nil {
		t.Fatalf("exact estimate: %v", err)
	}
	return res.Estimate
}

// TestUpdateRowsRetrySurvivesLostReply is the regression test for the
// retry double-apply bug: the server applies a delta PATCH, then the
// connection dies before the reply is written. The retried request
// must be deduplicated by its idempotency key — applied once, answered
// from the remembered reply — not applied a second time.
func TestUpdateRowsRetrySurvivesLostReply(t *testing.T) {
	const n = 6
	e := newTestEngine(t, Config{Workers: 4, Shards: 1})
	if _, _, err := e.PutMatrix("m", diagMatrix(n, 2)); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(e)
	var killed atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPatch && killed.CompareAndSwap(false, true) {
			// Apply the update for real, then sever the connection
			// before a single response byte reaches the client.
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer is not a hijacker")
				return
			}
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	client := New(srv.URL, WithPathPrefix(""), WithRetry(2))
	rep, err := client.UpdateRows(context.Background(), "m", UpdateRequest{
		Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{0, 5}}}},
		Delta:   true,
	})
	if err != nil {
		t.Fatalf("retried update: %v", err)
	}
	if !killed.Load() {
		t.Fatal("the lost-reply injection never fired")
	}
	if rep.RowsApplied != 1 {
		t.Fatalf("update reply: %+v", rep)
	}
	// One application: 6·2 + 5. A double-applied delta would read 22.
	if got := exactSum(t, e, "m", n); got != 17 {
		t.Fatalf("sum after retried delta = %v, want 17 (applied %v times)", got, (got-12)/5)
	}
	if d := e.Stats().RowUpdates.Dedups; d != 1 {
		t.Fatalf("dedupe count = %d, want 1", d)
	}
}

// TestRetryGatedOnIdempotency checks the client-side half of the fix:
// a transport failure on a non-idempotent method is surfaced after one
// attempt, while idempotent methods still retry.
func TestRetryGatedOnIdempotency(t *testing.T) {
	var patches, gets atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPatch:
			patches.Add(1)
		case http.MethodGet:
			gets.Add(1)
		}
		// Sever every connection: each attempt is a transport failure.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
			}
		}
	}))
	t.Cleanup(srv.Close)

	client := New(srv.URL, WithPathPrefix(""), WithRetry(3))
	ctx := context.Background()

	// A raw PATCH has no idempotency key the server could dedupe on:
	// exactly one attempt.
	err := client.Do(ctx, http.MethodPatch, "/matrices/m/rows", UpdateRequest{
		Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{0, 1}}}},
		Delta:   true,
	}, nil)
	if err == nil {
		t.Fatal("severed PATCH reported success")
	}
	if got := patches.Load(); got != 1 {
		t.Fatalf("non-idempotent PATCH attempted %d times, want 1", got)
	}

	// A GET is safe to resend: 1 + 3 retries.
	if err := client.Do(ctx, http.MethodGet, "/matrices", nil, nil); err == nil {
		t.Fatal("severed GET reported success")
	}
	if got := gets.Load(); got != 4 {
		t.Fatalf("idempotent GET attempted %d times, want 4", got)
	}
}

// TestUpdateRowsAutoAssignsKey checks that a retry-enabled client stamps
// an idempotency key on unkeyed row updates (and only then), and never
// overwrites a caller-chosen key.
func TestUpdateRowsAutoAssignsKey(t *testing.T) {
	var lastKey atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req UpdateRequest
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &req); err != nil {
			t.Errorf("decode update body: %v", err)
		}
		lastKey.Store(req.Key)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte("{}"))
	}))
	t.Cleanup(srv.Close)
	ctx := context.Background()
	upd := UpdateRequest{Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{0, 1}}}}, Delta: true}

	retrying := New(srv.URL, WithPathPrefix(""), WithRetry(1))
	if _, err := retrying.UpdateRows(ctx, "m", upd); err != nil {
		t.Fatal(err)
	}
	first := lastKey.Load()
	if first == 0 {
		t.Fatal("retry-enabled client sent an unkeyed non-idempotent update")
	}
	if _, err := retrying.UpdateRows(ctx, "m", upd); err != nil {
		t.Fatal(err)
	}
	if second := lastKey.Load(); second == first {
		t.Fatalf("two updates share idempotency key %d", second)
	}

	plain := New(srv.URL, WithPathPrefix(""))
	if _, err := plain.UpdateRows(ctx, "m", upd); err != nil {
		t.Fatal(err)
	}
	if got := lastKey.Load(); got != 0 {
		t.Fatalf("non-retrying client invented key %d", got)
	}

	keyed := upd
	keyed.Key = 99
	if _, err := retrying.UpdateRows(ctx, "m", keyed); err != nil {
		t.Fatal(err)
	}
	if got := lastKey.Load(); got != 99 {
		t.Fatalf("caller key overwritten: %d", got)
	}
}

// TestEngineDedupeWindowEvicts checks the dedupe window's FIFO bound:
// a key replayed while remembered answers the cached reply; once
// evicted past the window it applies again.
func TestEngineDedupeWindowEvicts(t *testing.T) {
	const n = 4
	e := newTestEngine(t, Config{Workers: 2, Shards: 1})
	if _, _, err := e.PutMatrix("m", diagMatrix(n, 1)); err != nil {
		t.Fatal(err)
	}
	delta := func(key uint64) UpdateRequest {
		return UpdateRequest{
			Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{1, 1}}}},
			Delta:   true, Key: key,
		}
	}
	if _, err := e.UpdateRows("m", delta(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateRows("m", delta(1)); err != nil {
		t.Fatal(err)
	}
	if got := exactSum(t, e, "m", n); got != 5 {
		t.Fatalf("sum after deduped replay = %v, want 5", got)
	}
	if d := e.Stats().RowUpdates.Dedups; d != 1 {
		t.Fatalf("dedupe count = %d, want 1", d)
	}
	// Push key 1 out of the window, then replay it: it must apply.
	for k := uint64(2); k < updateDedupeWindow+2; k++ {
		if _, err := e.UpdateRows("m", delta(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.UpdateRows("m", delta(1)); err != nil {
		t.Fatal(err)
	}
	want := float64(4 + 1 + updateDedupeWindow + 1)
	if got := exactSum(t, e, "m", n); got != want {
		t.Fatalf("sum after eviction replay = %v, want %v", got, want)
	}
}

// TestOverloadShedCarriesRetryAfter fills the admission queue and
// checks that the shed reply is a 429 whose Retry-After the typed
// client surfaces — the pacing hint satellite of the retry pass.
func TestOverloadShedCarriesRetryAfter(t *testing.T) {
	const n = 4
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 1})
	if _, _, err := e.PutMatrix("m", diagMatrix(n, 1)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)

	// Occupy the single worker slot, then park a second admission in
	// the queue so the next arrival sheds.
	release, err := e.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		if rel, err := e.admit(ctx); err == nil {
			rel()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for len(e.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queued admission never parked")
		}
		time.Sleep(time.Millisecond)
	}
	defer func() { cancel(); <-parked }()

	client := New(srv.URL, WithPathPrefix(""))
	_, err = client.Estimate(context.Background(), Request{Matrix: "m", Kind: "exact", A: diagMatrix(n, 1)})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("saturated estimate error = %v, want a 429 APIError", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("shed Retry-After = %v, want ≥ 1s", apiErr.RetryAfter)
	}
}

// TestEngineRetryAfterFloor checks the hint derivation: with no queue
// history the pacing floor is one second.
func TestEngineRetryAfterFloor(t *testing.T) {
	e := newTestEngine(t, Config{})
	if got := e.RetryAfter(); got != time.Second {
		t.Fatalf("idle RetryAfter = %v, want 1s", got)
	}
}
