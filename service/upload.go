package service

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/intmat"
)

// Streaming matrix ingestion: matrices larger than the HTTP layer's
// single-body limit are admitted through a begin/append/commit chunk
// lifecycle. A begin stakes out the dimensions and returns a per-upload
// generation token; each append ships one row-range chunk of sparse
// entries, validated (bounds, declared row range, cell-level duplicates)
// as it lands; commit atomically installs the assembled matrix in the
// registry exactly as a single-body PutMatrix would — same NNZ
// accounting from the dense form, same cache invalidation, same upload
// generation discipline. Idle partial uploads are garbage-collected
// lazily on every upload operation (no background goroutine to leak).

// ErrUploadNotFound is returned for operations on unknown, expired, or
// already-committed upload tokens.
var ErrUploadNotFound = errors.New("service: upload not found")

// UploadInfo describes an in-progress chunked upload.
type UploadInfo struct {
	// Upload is the per-upload generation token; every append and the
	// commit must present it.
	Upload string `json:"upload"`
	// Name is the registry name the upload will commit to.
	Name string `json:"name"`
	// Rows is the declared row count of the staged matrix.
	Rows int `json:"rows"`
	// Cols is the declared column count of the staged matrix.
	Cols int `json:"cols"`
	// Entries counts wire entries accepted so far (explicit zeros
	// included).
	Entries int `json:"entries"`
	// NNZ counts the non-zero entries among Entries.
	NNZ int `json:"nnz"`
	// Chunks counts accepted append calls.
	Chunks int `json:"chunks"`
	// Expires is when the upload is garbage-collected unless another
	// chunk arrives or it commits.
	Expires time.Time `json:"expires"`
}

// stagingUpload is one in-progress chunked upload. Guarded by
// Engine.upMu.
type stagingUpload struct {
	info  UploadInfo
	dense *intmat.Dense
	// seen marks occupied cells for duplicate rejection — a bitset, not
	// a map: at the maxMatrixElems cap it is 2 MiB, where a per-cell map
	// on a dense upload would cost gigabytes held for the whole staging
	// lifetime.
	seen    []uint64
	binary  bool
	nonNeg  bool
	touched time.Time
}

func (u *stagingUpload) cellSeen(cell int64) bool {
	return u.seen[cell>>6]&(1<<(uint(cell)&63)) != 0
}

func (u *stagingUpload) markCell(cell int64) {
	u.seen[cell>>6] |= 1 << (uint(cell) & 63)
}

// uploadCounters accumulates lifecycle totals for Stats. Guarded by
// Engine.upMu.
type uploadCounters struct {
	begun     int64
	chunks    int64
	committed int64
	aborted   int64
	expired   int64
}

// UploadStats is a snapshot of the chunked-upload lifecycle counters.
type UploadStats struct {
	// Active is the number of currently staged (uncommitted) uploads.
	Active int `json:"active"`
	// StagedElems is the active uploads' total rows×cols against the
	// MaxStagedElems budget.
	StagedElems int64 `json:"staged_elems"`
	// Begun is the lifetime total of uploads started.
	Begun int64 `json:"begun"`
	// Chunks is the lifetime total of chunks accepted.
	Chunks int64 `json:"chunks"`
	// Committed is the lifetime total of uploads installed.
	Committed int64 `json:"committed"`
	// Aborted is the lifetime total of uploads explicitly discarded.
	Aborted int64 `json:"aborted"`
	// Expired counts partial uploads removed by the lazy TTL GC.
	Expired int64 `json:"expired"`
}

func (e *Engine) uploadStats() UploadStats {
	e.upMu.Lock()
	defer e.upMu.Unlock()
	e.gcUploadsLocked(time.Now())
	return UploadStats{
		Active:      len(e.uploads),
		StagedElems: e.stagedElems,
		Begun:       e.upStats.begun,
		Chunks:      e.upStats.chunks,
		Committed:   e.upStats.committed,
		Aborted:     e.upStats.aborted,
		Expired:     e.upStats.expired,
	}
}

// gcUploadsLocked drops staged uploads idle past the TTL, returning
// their elements to the staging budget. Callers hold e.upMu.
func (e *Engine) gcUploadsLocked(now time.Time) {
	for tok, up := range e.uploads {
		if now.Sub(up.touched) > e.cfg.UploadTTL {
			e.dropUploadLocked(tok, up)
			e.upStats.expired++
		}
	}
}

// dropUploadLocked removes a staged upload and credits its elements
// back to the staging budget. Callers hold e.upMu.
func (e *Engine) dropUploadLocked(token string, up *stagingUpload) {
	delete(e.uploads, token)
	e.stagedElems -= int64(up.info.Rows) * int64(up.info.Cols)
}

// BeginUpload starts a chunked upload of a rows×cols matrix destined
// for the named registry slot and returns its generation token. The
// staged matrix is not visible to queries until CommitUpload.
func (e *Engine) BeginUpload(name string, rows, cols int) (UploadInfo, error) {
	select {
	case <-e.closed:
		return UploadInfo{}, ErrClosed
	default:
	}
	if name == "" {
		return UploadInfo{}, fmt.Errorf("%w: empty matrix name", ErrBadRequest)
	}
	if !dimsInRange(rows, cols) {
		return UploadInfo{}, fmt.Errorf("%w: matrix dimensions %dx%d out of range", ErrBadRequest, rows, cols)
	}
	now := time.Now()
	e.upMu.Lock()
	defer e.upMu.Unlock()
	e.gcUploadsLocked(now)
	if len(e.uploads) >= e.cfg.MaxUploads {
		return UploadInfo{}, fmt.Errorf("%w: %d uploads already staged", ErrOverloaded, len(e.uploads))
	}
	// Staging allocates rows×cols up front, so the element budget — not
	// the upload count — is what bounds the memory a burst of cheap
	// begin requests can pin.
	elems := int64(rows) * int64(cols)
	if e.stagedElems+elems > e.cfg.MaxStagedElems {
		return UploadInfo{}, fmt.Errorf("%w: %d staged elements + %d requested exceeds budget %d",
			ErrOverloaded, e.stagedElems, elems, e.cfg.MaxStagedElems)
	}
	e.stagedElems += elems
	token := fmt.Sprintf("up-%d-%d", e.upSeq.Add(1), now.UnixNano())
	up := &stagingUpload{
		info: UploadInfo{
			Upload:  token,
			Name:    name,
			Rows:    rows,
			Cols:    cols,
			Expires: now.Add(e.cfg.UploadTTL),
		},
		dense:   intmat.NewDense(rows, cols),
		seen:    make([]uint64, (int64(rows)*int64(cols)+63)/64),
		binary:  true,
		nonNeg:  true,
		touched: now,
	}
	e.uploads[token] = up
	e.upStats.begun++
	return up.info, nil
}

// lookupUploadLocked resolves a token addressed at the named matrix.
// The token must have been begun for the same name: an upload staged
// for one registry slot can never be appended to, committed, or
// aborted through another slot's URL. Callers hold e.upMu.
func (e *Engine) lookupUploadLocked(name, token string) (*stagingUpload, error) {
	up, ok := e.uploads[token]
	if !ok || up.info.Name != name {
		return nil, fmt.Errorf("%w: %q for matrix %q", ErrUploadNotFound, token, name)
	}
	return up, nil
}

// AppendChunk validates and stages one row-range chunk of an upload:
// every entry must land inside [rowStart, rowEnd) × [0, cols), and a
// cell already populated by any earlier chunk (or this one) is a
// duplicate — the same cell-level discipline the single-body path's
// toDense applies, enforced chunk by chunk so a bad chunk is rejected
// without poisoning the rest of the upload.
func (e *Engine) AppendChunk(name, token string, rowStart, rowEnd int, entries [][3]int64) (UploadInfo, error) {
	now := time.Now()
	e.upMu.Lock()
	defer e.upMu.Unlock()
	e.gcUploadsLocked(now)
	up, err := e.lookupUploadLocked(name, token)
	if err != nil {
		return UploadInfo{}, err
	}
	if rowStart < 0 || rowEnd > up.info.Rows || rowStart >= rowEnd {
		return UploadInfo{}, fmt.Errorf("%w: chunk row range [%d, %d) outside matrix with %d rows",
			ErrBadRequest, rowStart, rowEnd, up.info.Rows)
	}
	// Validate the whole chunk before mutating the staged matrix, so a
	// rejected chunk can be corrected and resent.
	staged := make(map[int64]struct{}, len(entries))
	for _, ent := range entries {
		i, j := ent[0], ent[1]
		if i < int64(rowStart) || i >= int64(rowEnd) || j < 0 || j >= int64(up.info.Cols) {
			return UploadInfo{}, fmt.Errorf("%w: entry (%d, %d) outside chunk range [%d, %d)x[0, %d)",
				ErrBadRequest, i, j, rowStart, rowEnd, up.info.Cols)
		}
		cell := i*int64(up.info.Cols) + j
		if up.cellSeen(cell) {
			return UploadInfo{}, fmt.Errorf("%w: duplicate entry (%d, %d)", ErrBadRequest, i, j)
		}
		if _, dup := staged[cell]; dup {
			return UploadInfo{}, fmt.Errorf("%w: duplicate entry (%d, %d)", ErrBadRequest, i, j)
		}
		staged[cell] = struct{}{}
	}
	for _, ent := range entries {
		i, j, v := ent[0], ent[1], ent[2]
		up.markCell(i*int64(up.info.Cols) + j)
		if v != 0 && v != 1 {
			up.binary = false
		}
		if v < 0 {
			up.nonNeg = false
		}
		if v != 0 {
			up.info.NNZ++
		}
		up.dense.Set(int(i), int(j), v)
	}
	up.info.Entries += len(entries)
	up.info.Chunks++
	up.touched = now
	up.info.Expires = now.Add(e.cfg.UploadTTL)
	e.upStats.chunks++
	return up.info, nil
}

// CommitUpload atomically installs a staged upload in the registry,
// exactly as a single-body PutMatrix of the assembled matrix would:
// fresh upload generation, LRU insertion with evictions, sketch-cache
// invalidation for the replaced name. The token is consumed.
func (e *Engine) CommitUpload(name, token string) (MatrixInfo, []string, error) {
	select {
	case <-e.closed:
		return MatrixInfo{}, nil, ErrClosed
	default:
	}
	now := time.Now()
	e.upMu.Lock()
	e.gcUploadsLocked(now)
	up, err := e.lookupUploadLocked(name, token)
	if err == nil {
		e.dropUploadLocked(token, up)
		e.upStats.committed++
	}
	e.upMu.Unlock()
	if err != nil {
		return MatrixInfo{}, nil, err
	}
	sm := &servedMatrix{
		info: MatrixInfo{
			Name:     up.info.Name,
			Rows:     up.info.Rows,
			Cols:     up.info.Cols,
			NNZ:      up.dense.L0(),
			Binary:   up.binary,
			NonNeg:   up.nonNeg,
			Uploaded: now,
		},
		gen:   e.genSeq.Add(1),
		dense: up.dense,
	}
	if up.binary {
		sm.bits = toBool(up.dense)
	}
	// Same durability-before-visibility ordering as PutMatrix. The
	// staged upload is already consumed: a store failure loses the
	// staging, but never acknowledges an install that would vanish on
	// restart.
	if err := e.persistPut(up.info.Name, sm); err != nil {
		return MatrixInfo{}, nil, err
	}
	evicted := e.reg.put(up.info.Name, sm)
	e.stats.evict(len(evicted))
	e.persistTombstones(evicted)
	if e.cache != nil {
		e.cache.invalidateMatrix(append(evicted, up.info.Name)...)
	}
	return sm.info, evicted, nil
}

// AbortUpload discards a staged upload and consumes its token.
func (e *Engine) AbortUpload(name, token string) error {
	e.upMu.Lock()
	defer e.upMu.Unlock()
	e.gcUploadsLocked(time.Now())
	up, err := e.lookupUploadLocked(name, token)
	if err != nil {
		return err
	}
	e.dropUploadLocked(token, up)
	e.upStats.aborted++
	return nil
}
