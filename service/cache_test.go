package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// twinEngines returns a cache-enabled engine and a cache-disabled
// reference engine with otherwise identical configuration.
func twinEngines(t *testing.T, cfg Config) (cached, fresh *Engine) {
	t.Helper()
	cached = newTestEngine(t, cfg)
	ref := cfg
	ref.DisableCache = true
	fresh = newTestEngine(t, ref)
	return cached, fresh
}

// TestCacheHitMatchesFreshRun is the service-level half of the parity
// guarantee: for every kind, a cache-hit answer must be identical —
// estimate, witnesses, bits, rounds — to the uncached engine's answer
// for the same seed, and repeat queries must actually hit.
func TestCacheHitMatchesFreshRun(t *testing.T) {
	cached, fresh := twinEngines(t, Config{})
	served := testBinaryMatrix(70, 24, 0.3)
	for _, e := range []*Engine{cached, fresh} {
		if _, _, err := e.PutMatrix("b", served); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	seed := uint64(71)
	reqs := []Request{
		{Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testMatrix(72, 24, 0.3)},
		{Matrix: "b", Kind: "l0sample", Eps: 0.5, Seed: &seed, A: testBinaryMatrix(73, 24, 0.3)},
		{Matrix: "b", Kind: "l1sample", Seed: &seed, A: testBinaryMatrix(74, 24, 0.3)},
		{Matrix: "b", Kind: "exact", Seed: &seed, A: testBinaryMatrix(74, 24, 0.3)},
		{Matrix: "b", Kind: "linf", Eps: 0.5, Seed: &seed, A: testBinaryMatrix(75, 24, 0.3)},
		{Matrix: "b", Kind: "linfkappa", Kappa: 4, Seed: &seed, A: testBinaryMatrix(75, 24, 0.3)},
		{Matrix: "b", Kind: "hh", Phi: 0.3, Eps: 0.15, Seed: &seed, A: testMatrix(76, 24, 0.3)},
	}
	for _, req := range reqs {
		want, err := fresh.Estimate(ctx, req)
		if err != nil {
			t.Fatalf("%s fresh: %v", req.Kind, err)
		}
		first, err := cached.Estimate(ctx, req) // miss: builds the state
		if err != nil {
			t.Fatalf("%s miss: %v", req.Kind, err)
		}
		hit, err := cached.Estimate(ctx, req) // hit: serves the cached state
		if err != nil {
			t.Fatalf("%s hit: %v", req.Kind, err)
		}
		for _, got := range []*Result{first, hit} {
			if got.Estimate != want.Estimate || got.I != want.I || got.J != want.J ||
				got.Witness != want.Witness || got.Bits != want.Bits || got.Rounds != want.Rounds ||
				len(got.Entries) != len(want.Entries) {
				t.Fatalf("%s: cached answer %+v != fresh %+v", req.Kind, got, want)
			}
		}
	}
	cs := cached.Stats().Cache
	if cs.Hits < int64(len(reqs)) {
		t.Fatalf("cache hits = %d, want ≥ %d (%+v)", cs.Hits, len(reqs), cs)
	}
	if cs.Entries == 0 || cs.Bytes <= 0 {
		t.Fatalf("cache retained nothing: %+v", cs)
	}
	if fs := fresh.Stats().Cache; fs != (CacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v", fs)
	}
}

// TestCacheUnpinnedSeedsShareEpoch pins the epoch-seed policy: without
// a pinned seed, repeat queries on a cache-enabled engine share the
// epoch's seed (and therefore the cached transcript), while the
// uncached engine strides its per-job sequence.
func TestCacheUnpinnedSeedsShareEpoch(t *testing.T) {
	cached, fresh := twinEngines(t, Config{})
	for _, e := range []*Engine{cached, fresh} {
		if _, _, err := e.PutMatrix("b", testBinaryMatrix(80, 16, 0.4)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	req := Request{Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, A: testBinaryMatrix(81, 16, 0.4)}
	c1, _ := cached.Estimate(ctx, req)
	c2, _ := cached.Estimate(ctx, req)
	if c1 == nil || c2 == nil || c1.Seed != c2.Seed || c1.Estimate != c2.Estimate {
		t.Fatalf("cached unpinned queries diverged: %+v vs %+v", c1, c2)
	}
	f1, _ := fresh.Estimate(ctx, req)
	f2, _ := fresh.Estimate(ctx, req)
	if f1 == nil || f2 == nil || f1.Seed == f2.Seed {
		t.Fatalf("uncached unpinned queries shared a seed: %+v vs %+v", f1, f2)
	}
}

// TestSeedEpochRotation pins the rotation knob: after SeedRotateEvery
// cached-path lookups the epoch advances, unpinned queries draw fresh
// coins, and the cache flushes.
func TestSeedEpochRotation(t *testing.T) {
	e := newTestEngine(t, Config{SeedRotateEvery: 2})
	if _, _, err := e.PutMatrix("b", testBinaryMatrix(85, 16, 0.4)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, A: testBinaryMatrix(86, 16, 0.4)}
	r1, err := e.Estimate(ctx, req) // lookup 1 (miss), epoch 0
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Estimate(ctx, req) // lookup 2 (hit), rotation fires after it
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seed != r2.Seed {
		t.Fatalf("same-epoch seeds differ: %d vs %d", r1.Seed, r2.Seed)
	}
	st := e.Stats().Cache
	if st.SeedEpoch != 1 {
		t.Fatalf("epoch = %d after rotation, want 1", st.SeedEpoch)
	}
	if st.Entries != 0 {
		t.Fatalf("rotation left %d cache entries", st.Entries)
	}
	r3, err := e.Estimate(ctx, req) // epoch 1: fresh coins
	if err != nil {
		t.Fatal(err)
	}
	if r3.Seed == r1.Seed {
		t.Fatalf("post-rotation seed %d unchanged", r3.Seed)
	}
}

// TestCacheInvalidation pins the three invalidation paths: replacing a
// matrix, deleting it, and losing it to registry LRU eviction must all
// drop its cached states — and after a replace, answers must reflect
// the new matrix, never a cached sketch of the old one.
func TestCacheInvalidation(t *testing.T) {
	ctx := context.Background()
	seed := uint64(90)

	t.Run("replace", func(t *testing.T) {
		cached, fresh := twinEngines(t, Config{})
		old := testBinaryMatrix(91, 16, 0.4)
		next := testBinaryMatrix(92, 16, 0.6)
		req := Request{Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testBinaryMatrix(93, 16, 0.4)}

		if _, _, err := cached.PutMatrix("b", old); err != nil {
			t.Fatal(err)
		}
		if _, err := cached.Estimate(ctx, req); err != nil { // populate the cache
			t.Fatal(err)
		}
		if _, _, err := cached.PutMatrix("b", next); err != nil {
			t.Fatal(err)
		}
		if st := cached.Stats().Cache; st.Entries != 0 {
			t.Fatalf("replace left %d cache entries", st.Entries)
		}
		if _, _, err := fresh.PutMatrix("b", next); err != nil {
			t.Fatal(err)
		}
		got, err := cached.Estimate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Estimate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want.Estimate || got.Bits != want.Bits {
			t.Fatalf("post-replace answer %+v served stale state (fresh: %+v)", got, want)
		}
	})

	t.Run("delete", func(t *testing.T) {
		e := newTestEngine(t, Config{})
		if _, _, err := e.PutMatrix("b", testBinaryMatrix(94, 16, 0.4)); err != nil {
			t.Fatal(err)
		}
		req := Request{Matrix: "b", Kind: "exact", A: testBinaryMatrix(95, 16, 0.4)}
		if _, err := e.Estimate(ctx, req); err != nil {
			t.Fatal(err)
		}
		if err := e.DeleteMatrix("b"); err != nil {
			t.Fatal(err)
		}
		if st := e.Stats().Cache; st.Entries != 0 {
			t.Fatalf("delete left %d cache entries", st.Entries)
		}
		if _, err := e.Estimate(ctx, req); !errors.Is(err, ErrMatrixNotFound) {
			t.Fatalf("query after delete: %v", err)
		}
	})

	t.Run("lru-eviction", func(t *testing.T) {
		e := newTestEngine(t, Config{MaxMatrices: 1})
		if _, _, err := e.PutMatrix("a", testBinaryMatrix(96, 16, 0.4)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Estimate(ctx, Request{Matrix: "a", Kind: "exact", A: testBinaryMatrix(97, 16, 0.4)}); err != nil {
			t.Fatal(err)
		}
		if st := e.Stats().Cache; st.Entries == 0 {
			t.Fatal("expected a cached entry for a")
		}
		if _, evicted, err := e.PutMatrix("b", testBinaryMatrix(98, 16, 0.4)); err != nil || len(evicted) != 1 {
			t.Fatalf("evicted %v err=%v", evicted, err)
		}
		if st := e.Stats().Cache; st.Entries != 0 {
			t.Fatalf("eviction left %d cache entries", st.Entries)
		}
	})
}

// TestCacheCapacityEviction pins the cache's own LRU bound.
func TestCacheCapacityEviction(t *testing.T) {
	e := newTestEngine(t, Config{CacheCapacity: 2})
	if _, _, err := e.PutMatrix("b", testBinaryMatrix(100, 16, 0.4)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a := testBinaryMatrix(101, 16, 0.4)
	// Three distinct lp fingerprints (different seeds) against capacity 2.
	for i := uint64(0); i < 3; i++ {
		seed := 200 + i
		if _, err := e.Estimate(ctx, Request{Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: a}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats().Cache; st.Entries != 2 {
		t.Fatalf("cache holds %d entries, capacity 2 (%+v)", st.Entries, st)
	}
}

// TestCacheConcurrentMutation races cached queries against matrix
// replacement and deletion (run under -race). Afterwards a final
// reference comparison proves no stale cached state survived the
// churn.
func TestCacheConcurrentMutation(t *testing.T) {
	cached, fresh := twinEngines(t, Config{Workers: 8, QueueDepth: 1024, SeedRotateEvery: 16})
	ctx := context.Background()
	seed := uint64(110)
	kinds := []string{"lp", "exact", "l1sample", "l0sample"}
	query := func(e *Engine, name string, i int) (*Result, error) {
		req := Request{
			Matrix: name, Kind: kinds[i%len(kinds)], P: 1, Eps: 0.4,
			A: testBinaryMatrix(uint64(120+i%4), 16, 0.4),
		}
		if i%2 == 0 {
			req.Seed = &seed
		}
		return e.Estimate(ctx, req)
	}

	if _, _, err := cached.PutMatrix("a", testBinaryMatrix(111, 16, 0.4)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := query(cached, "a", w*40+i); err != nil &&
					!errors.Is(err, ErrMatrixNotFound) && !errors.Is(err, ErrOverloaded) {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if i%5 == 4 {
				_ = cached.DeleteMatrix("a")
			}
			if _, _, err := cached.PutMatrix("a", testBinaryMatrix(uint64(130+i%3), 16, 0.4)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Stale-state check: pin the final upload and compare every kind
	// against the uncached reference engine.
	final := testBinaryMatrix(140, 16, 0.4)
	if _, _, err := cached.PutMatrix("a", final); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fresh.PutMatrix("a", final); err != nil {
		t.Fatal(err)
	}
	for i := range kinds {
		got, err := query(cached, "a", i*2) // even i: pinned seed
		if err != nil {
			t.Fatal(err)
		}
		want, err := query(fresh, "a", i*2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want.Estimate || got.Bits != want.Bits {
			t.Fatalf("%s: post-churn answer %+v != reference %+v", kinds[i], got, want)
		}
	}
}
