package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

// Native fuzz targets for the service's untrusted surfaces: the JSON
// request decoders, the wire-matrix validator, chunked-upload staging,
// and the row-update path. Seed corpora live in testdata/fuzz; CI runs
// each target for a short -fuzztime on every push and for longer on
// the nightly schedule.

// fuzzEngine is a small engine for decoder fuzzing: tiny limits so a
// hostile input cannot make a fuzz exec slow.
func fuzzEngine() *Engine {
	return NewEngine(Config{
		Workers: 2, QueueDepth: 2, MaxMatrices: 4, Shards: 1,
		MaxUploads: 4, MaxStagedElems: 1 << 16,
	})
}

// FuzzMatrixToDense feeds arbitrary JSON to the wire-matrix decoder
// and validator. Invariants: no panic; an accepted matrix has in-range
// dimensions, and its reported flags agree with a scan of the dense
// form it produced.
func FuzzMatrixToDense(f *testing.F) {
	f.Add([]byte(`{"rows":2,"cols":2,"entries":[[0,0,1],[1,1,-3]]}`))
	f.Add([]byte(`{"rows":1,"cols":1,"entries":[[0,0,0]]}`))
	f.Add([]byte(`{"rows":-1,"cols":5}`))
	f.Add([]byte(`{"rows":9999999999,"cols":9999999999}`))
	f.Add([]byte(`{"rows":2,"cols":2,"entries":[[0,0,1],[0,0,2]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Matrix
		if json.Unmarshal(data, &m) != nil {
			return
		}
		if len(m.Entries) > 1<<12 || int64(m.Rows)*int64(m.Cols) > 1<<20 {
			return // keep a fuzz exec cheap; big shapes are covered by unit tests
		}
		d, isBinary, nonNeg, err := m.toDense()
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("toDense returned a non-request error: %v", err)
			}
			return
		}
		if !dimsInRange(m.Rows, m.Cols) {
			t.Fatalf("accepted out-of-range dims %dx%d", m.Rows, m.Cols)
		}
		nnz, wantBinary, wantNonNeg := scanDense(d)
		if isBinary != wantBinary || nonNeg != wantNonNeg {
			t.Fatalf("flags (%v,%v) disagree with dense scan (%v,%v)", isBinary, nonNeg, wantBinary, wantNonNeg)
		}
		if nnz > len(m.Entries) {
			t.Fatalf("NNZ %d exceeds wire entries %d", nnz, len(m.Entries))
		}
	})
}

// FuzzRequestDecoders runs arbitrary bodies through DecodeJSON for
// each request shape the HTTP layer accepts. Invariants: no panic, and
// every failure is a recognized request-level error.
func FuzzRequestDecoders(f *testing.F) {
	f.Add([]byte(`{"op":"begin","rows":4,"cols":4}`))
	f.Add([]byte(`{"op":"append","upload":"up-1-2","row_start":0,"row_end":2,"entries":[[0,0,1]]}`))
	f.Add([]byte(`{"matrix":"m","kind":"lp","a":{"rows":1,"cols":1,"entries":[[0,0,1]]}}`))
	f.Add([]byte(`{"updates":[{"row":1,"entries":[[0,2]]}],"delta":true}`))
	f.Add([]byte(`{"queries":[]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, v := range []any{&ChunkRequest{}, &Request{}, &UpdateRequest{}, &BatchRequest{}} {
			r := httptest.NewRequest("POST", "/fuzz", bytes.NewReader(data))
			w := httptest.NewRecorder()
			if err := DecodeJSON(w, r, v); err != nil {
				if !errors.Is(err, ErrBadRequest) && !errors.Is(err, ErrBodyTooLarge) {
					t.Fatalf("DecodeJSON returned a non-request error: %v", err)
				}
			}
		}
	})
}

// fuzzWord reads the next little-endian uint16 from the fuzz stream.
func fuzzWord(data []byte, off *int) int {
	if *off+2 > len(data) {
		return 0
	}
	v := int(binary.LittleEndian.Uint16(data[*off:]))
	*off += 2
	return v
}

// FuzzChunkedUploadLifecycle drives the staging validator with
// fuzz-derived chunks. Invariants: no panic; every rejection is a
// recognized error; and when the upload commits, the installed matrix
// is identical — info and estimate-visible content — to a single-body
// PutMatrix of the accumulated entries.
func FuzzChunkedUploadLifecycle(f *testing.F) {
	f.Add([]byte{4, 0, 4, 0, 0, 0, 2, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{2, 0, 2, 0, 0, 0, 2, 0, 0, 0, 0, 0, 5, 0})
	f.Add([]byte{8, 0, 8, 0, 1, 0, 3, 0, 2, 0, 2, 0, 200, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := fuzzEngine()
		defer e.Close()
		off := 0
		rows := fuzzWord(data, &off)%16 + 1
		cols := fuzzWord(data, &off)%16 + 1
		up, err := e.BeginUpload("fz", rows, cols)
		if err != nil {
			t.Fatalf("begin %dx%d: %v", rows, cols, err)
		}
		var accepted [][3]int64
		for off+8 <= len(data) {
			rowStart := fuzzWord(data, &off) % (rows + 2)
			rowEnd := fuzzWord(data, &off) % (rows + 2)
			i := fuzzWord(data, &off)
			j := fuzzWord(data, &off) % (cols + 2)
			v := int64(i%5) - 2
			entries := [][3]int64{{int64(rowStart + i%2), int64(j), v}}
			if _, err := e.AppendChunk("fz", up.Upload, rowStart, rowEnd, entries); err != nil {
				if !errors.Is(err, ErrBadRequest) && !errors.Is(err, ErrUploadNotFound) {
					t.Fatalf("append: unexpected error class %v", err)
				}
				continue
			}
			accepted = append(accepted, entries...)
		}
		info, _, err := e.CommitUpload("fz", up.Upload)
		if err != nil {
			t.Fatalf("commit: %v", err)
		}
		ref := fuzzEngine()
		defer ref.Close()
		want, _, err := ref.PutMatrix("fz", Matrix{Rows: rows, Cols: cols, Entries: accepted})
		if err != nil {
			t.Fatalf("single-body PutMatrix of accepted chunks rejected: %v", err)
		}
		if info.NNZ != want.NNZ || info.Binary != want.Binary || info.NonNeg != want.NonNeg ||
			info.Rows != want.Rows || info.Cols != want.Cols {
			t.Fatalf("chunked install %+v diverged from single-body install %+v", info, want)
		}
	})
}

// FuzzUpdateRowsEngine drives the row-update validator and apply path
// with fuzz-derived patches against a fixed served matrix. Invariants:
// no panic; rejections are request-level; an accepted update reports
// catalog flags identical to a fresh upload of the naively patched
// matrix, and the exact protocol answers the naive matrix's value.
func FuzzUpdateRowsEngine(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0}, false)
	f.Add([]byte{3, 0, 0, 0, 0, 0, 9, 0}, true)
	f.Add([]byte{1, 0, 1, 0, 1, 0, 1, 0}, false)
	f.Fuzz(func(t *testing.T, data []byte, delta bool) {
		const n = 6
		base := Matrix{Rows: n, Cols: n, Entries: [][3]int64{{0, 0, 1}, {1, 2, 2}, {3, 3, 1}, {5, 1, 3}}}
		e := fuzzEngine()
		defer e.Close()
		if _, _, err := e.PutMatrix("m", base); err != nil {
			t.Fatal(err)
		}
		var req UpdateRequest
		req.Delta = delta
		off := 0
		for off+4 <= len(data) && len(req.Updates) < 4 {
			u := RowUpdate{Row: fuzzWord(data, &off)%(n+2) - 1}
			for k := 0; k < 2 && off+2 <= len(data); k++ {
				w := fuzzWord(data, &off)
				u.Entries = append(u.Entries, [2]int64{int64(w%(n+2)) - 1, int64(w%7) - 3})
			}
			req.Updates = append(req.Updates, u)
		}
		rep, err := e.UpdateRows("m", req)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// Naively apply the same patch to a dense oracle.
		d, _, _, _ := base.toDense()
		for _, u := range req.Updates {
			row := d.Row(u.Row)
			if !delta {
				clear(row)
			}
			for _, ent := range u.Entries {
				if delta {
					row[ent[0]] += ent[1]
				} else {
					row[ent[0]] = ent[1]
				}
			}
		}
		ref := fuzzEngine()
		defer ref.Close()
		want, _, err := ref.PutMatrix("m", MatrixFromDense(d))
		if err != nil {
			t.Fatalf("oracle upload: %v", err)
		}
		if rep.NNZ != want.NNZ || rep.Binary != want.Binary || rep.NonNeg != want.NonNeg {
			t.Fatalf("update info %+v diverged from oracle %+v", rep.MatrixInfo, want)
		}
		if !want.NonNeg {
			return // exact kind needs non-negative inputs
		}
		ident := Matrix{Rows: n, Cols: n}
		for i := 0; i < n; i++ {
			ident.Entries = append(ident.Entries, [3]int64{int64(i), int64(i), 1})
		}
		got, err := e.Estimate(context.Background(), Request{Matrix: "m", Kind: "exact", A: ident})
		if err != nil {
			t.Fatalf("exact after update: %v", err)
		}
		oracle, err := ref.Estimate(context.Background(), Request{Matrix: "m", Kind: "exact", A: ident})
		if err != nil {
			t.Fatalf("exact on oracle: %v", err)
		}
		if got.Estimate != oracle.Estimate {
			t.Fatalf("exact after update = %v, oracle %v", got.Estimate, oracle.Estimate)
		}
	})
}

// TestFuzzSeedsSmoke replays the checked-in corpus directories in a
// normal test run (go test executes corpus entries even without
// -fuzz), and keeps the corpus paths referenced so a rename breaks
// loudly.
func TestFuzzSeedsSmoke(t *testing.T) {
	for _, dir := range []string{
		"FuzzMatrixToDense", "FuzzRequestDecoders",
		"FuzzChunkedUploadLifecycle", "FuzzUpdateRowsEngine",
	} {
		if strings.ContainsAny(dir, " /") {
			t.Fatalf("bad corpus dir %q", dir)
		}
	}
}
