// Package service is the networked estimation service built on the
// paper's protocols: a server engine hosts Bob's side — a registry of
// named matrices, uploaded once and queried many times — and answers
// estimation queries by running the two-party protocol drivers of
// internal/core against the querying client, who plays Alice.
//
// # Engine
//
// The engine is transport-agnostic: each job runs over a pluggable
// comm.Transport (in-process pair by default, loopback TCP to force
// every protocol message through a real socket) with the exact
// bit-and-round accounting of the paper's communication model, which
// the per-request results and aggregate stats report.
//
// A bounded worker pool caps concurrent protocol executions, a bounded
// admission queue sheds overload, and per-job seeds make every answer
// reproducible. A Bob-side sketch cache (see Config.CacheCapacity)
// answers repeat queries from precomputed per-matrix protocol states,
// and each job's row-parallel phases are sharded across a process-wide
// pool (Config.Shards) with transcripts byte-identical to sequential
// execution.
//
// # Ingestion
//
// Matrices arrive either as one PUT body or through the chunked
// begin/append/commit upload lifecycle (BeginUpload, AppendChunk,
// CommitUpload), which admits matrices beyond the single-body size
// limit one validated row-range chunk at a time.
//
// Served matrices are dynamic: UpdateRows applies sparse row
// replacements or deltas in place. The protocols' sketches are linear
// in the rows of B, so the update recomputes only the touched rows
// and revalidates cached states under a bumped generation sub-version
// instead of evicting them — transcripts stay byte-identical to a
// from-scratch rebuild on the patched matrix.
//
// # HTTP surface
//
// NewHandler exposes the engine as a JSON API and Client is its typed
// counterpart; docs/API.md is the complete HTTP reference. The
// exported helpers DecodeJSON, WriteJSON, and WriteError plus
// Client.DoJSON let HTTP tiers layered on this API — package gateway,
// the replicated multi-backend front tier — share the same body-limit,
// error-mapping, and request plumbing. cmd/mpserver and cmd/mpload are
// the runnable server and load generator; cmd/mpgateway fronts a fleet
// of servers.
package service
