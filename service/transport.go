package service

import (
	"net"

	"repro/internal/comm"
	"repro/internal/core"
)

// TransportFactory creates the transport one protocol execution runs
// over: Alice's endpoint (the querying client's side) and Bob's (the
// engine's side). The engine is transport-agnostic — any factory whose
// endpoints speak comm.Transport plugs in.
type TransportFactory func() (alice, bob core.Endpoint, cleanup func(), err error)

// InProcess connects the two party drivers through an in-process
// comm.Pair: no sockets, but the exact bit/round accounting of the
// paper's model. This is the default engine transport.
func InProcess() (core.Endpoint, core.Endpoint, func(), error) {
	at, bt := comm.Pair()
	return core.Endpoint{T: at, Finish: at.Finish},
		core.Endpoint{T: bt, Finish: bt.Finish},
		func() {}, nil
}

// TCPLoopback connects the two party drivers through a real TCP
// connection on 127.0.0.1: every protocol message crosses the kernel's
// network stack with length-prefixed framing. Payload accounting is
// identical to InProcess — the parity the transport tests pin down —
// making this the "prove it really is networked" engine mode.
func TCPLoopback() (core.Endpoint, core.Endpoint, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return core.Endpoint{}, core.Endpoint{}, nil, err
	}
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	ac, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close()
		return core.Endpoint{}, core.Endpoint{}, nil, err
	}
	got := <-ch
	ln.Close()
	if got.err != nil {
		ac.Close()
		return core.Endpoint{}, core.Endpoint{}, nil, got.err
	}
	bc := got.c
	cleanup := func() {
		ac.Close()
		bc.Close()
	}
	return core.Endpoint{T: comm.NewNetConn(comm.Alice, ac), Finish: func() { ac.Close() }},
		core.Endpoint{T: comm.NewNetConn(comm.Bob, bc), Finish: func() { bc.Close() }},
		cleanup, nil
}

// TransportByName resolves the -transport flag values of cmd/mpserver.
func TransportByName(name string) (TransportFactory, bool) {
	switch name {
	case "", "inproc":
		return InProcess, true
	case "tcp":
		return TCPLoopback, true
	}
	return nil, false
}
