package service

// Content negotiation between the JSON compatibility default and the
// binary hot-path wire format (binwire.go).
//
// Requests declare their body's encoding with Content-Type: an absent
// or application/json type takes the JSON path (as does curl's
// implicit form-urlencoded default, see mediaTypeForm), MediaTypeBinary
// the binary decoder, and anything else is rejected with 415 under the
// uniform error envelope. Responses are JSON unless the request's
// Accept header explicitly lists MediaTypeBinary *and* the reply type
// has a binary form — a wildcard Accept stays JSON on purpose, so
// only clients that opted in ever see binary frames. Error responses
// are always the JSON envelope regardless of Accept: a client that
// negotiated binary still parses failures with zero special cases.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
)

const (
	mediaTypeJSON = "application/json"
	// mediaTypeForm is what curl (and friends) silently attach to -d
	// bodies. No endpoint consumes actual form data, so the declaration
	// is always an artifact of the tool, not intent — it takes the JSON
	// path rather than breaking every hand-driven example with a 415.
	mediaTypeForm = "application/x-www-form-urlencoded"
)

// ErrUnsupportedMedia marks a request whose Content-Type is neither
// JSON nor the binary wire format the endpoint accepts (mapped to 415).
var ErrUnsupportedMedia = errors.New("service: unsupported media type")

// contentMediaType extracts the lowercased media type of a
// Content-Type or Accept element, dropping parameters.
func contentMediaType(v string) string {
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v = v[:i]
	}
	return strings.ToLower(strings.TrimSpace(v))
}

// AcceptsBinary reports whether the request's Accept header explicitly
// lists the binary wire format.
func AcceptsBinary(r *http.Request) bool {
	for _, hv := range r.Header.Values("Accept") {
		for _, part := range strings.Split(hv, ",") {
			if contentMediaType(part) == MediaTypeBinary {
				return true
			}
		}
	}
	return false
}

// DecodeRequest decodes a request body by its declared Content-Type:
// JSON (or no declaration) through DecodeJSON, the binary wire format
// through the pooled binary decoder, anything else (and binary aimed
// at an endpoint whose type has no binary form) → ErrUnsupportedMedia.
// Exported alongside DecodeJSON so HTTP tiers layered on the service
// API — the gateway — share one negotiation discipline.
func DecodeRequest(w http.ResponseWriter, r *http.Request, v any) error {
	switch mt := contentMediaType(r.Header.Get("Content-Type")); mt {
	case "", mediaTypeJSON, mediaTypeForm:
		return decodeJSONBody(w, r, v)
	case MediaTypeBinary:
		if !BinaryEncodable(v) {
			return fmt.Errorf("%w: %s has no binary form on this endpoint", ErrUnsupportedMedia, mt)
		}
		return decodeBinaryBody(w, r, v)
	default:
		return fmt.Errorf("%w: %q", ErrUnsupportedMedia, mt)
	}
}

// decodeBinaryBody reads the bounded body through a pooled buffer and
// decodes one binary frame.
func decodeBinaryBody(w http.ResponseWriter, r *http.Request, v any) error {
	lr := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	wb := getWireBuf()
	defer putWireBuf(wb)
	b, err := readAllInto(wb.b, lr)
	wb.b = b
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrBodyTooLarge, mbe.Limit)
		}
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := decodeBinary(b, v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// readAllInto reads r to EOF into buf (reusing its capacity),
// returning the filled buffer. The returned slice must be handed back
// to the caller's pool entry even on error so grown capacity is kept.
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = slices.Grow(buf, 4096)
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// WriteReply writes v with the negotiated encoding: the binary wire
// format when the request explicitly accepts it and v has a binary
// form, JSON otherwise. The JSON path is WriteJSON itself, so clients
// that never opt in get byte-identical responses.
func WriteReply(w http.ResponseWriter, r *http.Request, status int, v any) {
	if AcceptsBinary(r) {
		wb := getWireBuf()
		if b, ok := appendBinary(wb.b, v); ok {
			wb.b = b
			w.Header().Set("Content-Type", MediaTypeBinary)
			w.WriteHeader(status)
			w.Write(b) //mp:rawwire-ok this IS the sanctioned binary encode helper
			putWireBuf(wb)
			return
		}
		putWireBuf(wb)
	}
	WriteJSON(w, status, v)
}
