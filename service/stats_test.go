package service

import (
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	sorted := make([]time.Duration, 10)
	for i := range sorted {
		sorted[i] = ms(i + 1) // 1ms … 10ms
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, ms(5)},
		{0.90, ms(9)},
		// The regression this pins: truncating q·(n−1) returned the
		// 9th-smallest for P99 over 10 samples instead of the maximum.
		{0.99, ms(10)},
		{1.00, ms(10)},
		{0.01, ms(1)},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	if got := Percentile([]time.Duration{ms(7)}, 0.99); got != ms(7) {
		t.Errorf("percentile(single) = %v, want 7ms", got)
	}
}
