package service

import (
	"container/list"
	"sync"
)

// bobState is what the sketch cache stores: a precomputed Bob-side
// protocol state from internal/core (BobLpState, BobLinfState, …) that
// reports its retained size. States are immutable and safe for
// concurrent Serve calls, which is what lets one entry answer many
// queries at once.
type bobState interface{ Bytes() int64 }

// cacheKey identifies one cached Bob-side state.
//
// gen is the upload generation of the matrix name: every PutMatrix
// assigns a fresh generation, so a state built against a replaced
// matrix can never be returned for its successor even if an in-flight
// query inserts it after the replacement purged the name (the stale
// entry is simply unreachable and ages out of the LRU).
//
// sub is the generation's sub-version, advanced by one per row update.
// Unlike a generation change — which strands old entries to age out —
// a sub-version change migrates them: refreshMatrix advances each
// entry's state incrementally and re-keys it, so an update keeps the
// cache warm.
//
// fp is the kind-specific parameter fingerprint. It includes the job
// seed exactly when the precomputed state depends on it (lp, l0sample,
// hh — their sketches are drawn from the shared seed); for the
// seed-free Bob phases (exact, l1sample, linf, linfkappa) it does not,
// so those entries are shared across seeds.
type cacheKey struct {
	matrix string
	gen    uint64
	sub    uint64
	kind   string
	fp     string
	epoch  uint64
}

type cacheEntry struct {
	key   cacheKey
	state bobState
	elem  *list.Element
}

// sketchCache is the Bob-side sketch cache: precomputed protocol states
// keyed by (matrix name, generation, kind, parameter fingerprint, seed
// epoch), reused across queries so the matrix-dependent work — for lp,
// re-sketching every row of B — is paid once per matrix instead of once
// per request.
//
// Entries are invalidated when their matrix is replaced, deleted, or
// LRU-evicted from the registry, when the cache itself exceeds its
// capacity (LRU), and when the seed epoch rotates.
//
// The seed epoch makes coin reuse an explicit serving knob: queries
// that do not pin a seed are assigned the current epoch's seed, so
// repeated queries share one cached transcript; after rotateEvery
// lookups the epoch advances, fresh public coins are drawn, and the
// whole cache flushes. rotateEvery ≤ 0 never rotates.
type sketchCache struct {
	mu          sync.Mutex
	cap         int
	rotateEvery int64
	m           map[cacheKey]*cacheEntry
	lru         *list.List // front = most recently used; values are *cacheEntry

	hits    int64
	misses  int64
	epoch   uint64
	lookups int64 // lookups in the current epoch
}

func newSketchCache(capacity int, rotateEvery int64) *sketchCache {
	return &sketchCache{
		cap:         capacity,
		rotateEvery: rotateEvery,
		m:           make(map[cacheKey]*cacheEntry),
		lru:         list.New(),
	}
}

// epochNow returns the seed epoch new jobs should key against.
func (c *sketchCache) epochNow() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// tickAndGet advances the rotation clock by one lookup and returns the
// cached state for key, counting a hit or a miss.
//
//mp:hotpath
func (c *sketchCache) tickAndGet(key cacheKey) (bobState, bool) {
	c.mu.Lock() //mp:lock-ok audited allowed set: O(1) critical section (map probe + LRU splice), never blocks on I/O
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
	} else {
		c.misses++
	}
	c.lookups++
	if c.rotateEvery > 0 && c.lookups >= c.rotateEvery {
		c.rotateLocked()
	}
	if !ok {
		return nil, false
	}
	return e.state, true
}

// rotateLocked advances the seed epoch and flushes the cache (every
// entry is keyed to an older epoch). Callers hold c.mu.
func (c *sketchCache) rotateLocked() {
	c.epoch++
	c.lookups = 0
	c.m = make(map[cacheKey]*cacheEntry)
	c.lru.Init()
}

// put inserts a built state, evicting least-recently-used entries
// beyond capacity. An entry already present under key wins (a
// concurrent builder got there first); the loser is dropped.
func (c *sketchCache) put(key cacheKey, state bobState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	e := &cacheEntry{key: key, state: state}
	e.elem = c.lru.PushFront(e)
	c.m[key] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		victim := back.Value.(*cacheEntry)
		c.removeLocked(victim)
	}
}

func (c *sketchCache) removeLocked(e *cacheEntry) {
	c.lru.Remove(e.elem)
	delete(c.m, e.key)
}

// invalidateMatrix drops every entry of the named matrices (all
// generations, kinds, fingerprints, and epochs).
func (c *sketchCache) invalidateMatrix(names ...string) {
	if len(names) == 0 {
		return
	}
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if drop[e.key.matrix] {
			c.removeLocked(e)
		}
	}
}

// refreshMatrix migrates the named matrix's cached states across a row
// update: every entry keyed to (gen, oldSub) whose state advance
// succeeds is re-keyed to newSub in place (keeping its LRU position);
// entries that cannot advance — or that are keyed to a stale
// generation or sub-version — are dropped. advance runs under the
// cache lock: it recomputes only the update's touched rows, and
// holding the lock keeps a concurrent miss from rebuilding the same
// state redundantly while the migration is mid-flight.
func (c *sketchCache) refreshMatrix(matrix string, gen, oldSub, newSub uint64, advance func(bobState) (bobState, bool)) (refreshed, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.matrix != matrix {
			continue
		}
		if e.key.gen == gen && e.key.sub == newSub {
			// A concurrent miss already built this state against the new
			// sub-version (the registry entry is published before this
			// sweep runs): it is valid as-is — keep it.
			continue
		}
		if e.key.gen != gen || e.key.sub != oldSub {
			c.removeLocked(e)
			dropped++
			continue
		}
		st, ok := advance(e.state)
		if !ok {
			c.removeLocked(e)
			dropped++
			continue
		}
		nk := e.key
		nk.sub = newSub
		if _, taken := c.m[nk]; taken {
			// Lost the race to a concurrent fresh build under the new
			// sub-version; keeping both would orphan one of them, so the
			// already-installed entry wins and the migration is dropped.
			c.removeLocked(e)
			dropped++
			continue
		}
		delete(c.m, e.key)
		e.key = nk
		e.state = st
		c.m[nk] = e
		refreshed++
	}
	return refreshed, dropped
}

// CacheStats is a snapshot of the sketch cache's counters.
type CacheStats struct {
	// Hits counts lookups that found a precomputed Bob state.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to build the state fresh.
	Misses int64 `json:"misses"`
	// Entries is the number of currently retained states.
	Entries int `json:"entries"`
	// Bytes is the summed in-memory size of the retained states.
	Bytes int64 `json:"bytes"`
	// SeedEpoch is the current seed epoch (see Config.SeedRotateEvery).
	SeedEpoch uint64 `json:"seed_epoch"`
}

func (c *sketchCache) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Bytes are summed live: lazily built parts of a state (the nested
	// lp sketches of an hh entry) would make an insert-time figure go
	// stale.
	var bytes int64
	for _, e := range c.m {
		bytes += e.state.Bytes()
	}
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Entries:   len(c.m),
		Bytes:     bytes,
		SeedEpoch: c.epoch,
	}
}
