package service

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the percentile
// estimates are computed over.
const latencyWindow = 4096

// KindStats aggregates serving statistics for one job kind.
type KindStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Bits     int64 `json:"bits"`
	Rounds   int64 `json:"rounds"`
}

// Stats is a snapshot of the engine's aggregate serving statistics.
type Stats struct {
	Requests   int64                `json:"requests"`
	Errors     int64                `json:"errors"`
	Rejected   int64                `json:"rejected"` // overload admissions failures
	Evictions  int64                `json:"evictions"`
	Matrices   int                  `json:"matrices"`
	TotalBits  int64                `json:"total_bits"` // protocol payload bits on the wire
	PerKind    map[string]KindStats `json:"per_kind"`
	LatencyP50 time.Duration        `json:"latency_p50_ns"`
	LatencyP90 time.Duration        `json:"latency_p90_ns"`
	LatencyP99 time.Duration        `json:"latency_p99_ns"`
	Uptime     time.Duration        `json:"uptime_ns"`
}

// collector accumulates serving stats; latencies go into a fixed ring
// so percentile estimates track the recent window at O(1) memory.
type collector struct {
	mu        sync.Mutex
	start     time.Time
	requests  int64
	errors    int64
	rejected  int64
	evictions int64
	totalBits int64
	perKind   map[string]*KindStats
	ring      [latencyWindow]time.Duration
	ringN     int // total latencies ever recorded
}

func newCollector() *collector {
	return &collector{start: time.Now(), perKind: make(map[string]*KindStats)}
}

func (c *collector) record(kind string, bits int64, rounds int, lat time.Duration, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	c.totalBits += bits
	ks := c.perKind[kind]
	if ks == nil {
		ks = &KindStats{}
		c.perKind[kind] = ks
	}
	ks.Requests++
	ks.Bits += bits
	ks.Rounds += int64(rounds)
	if failed {
		c.errors++
		ks.Errors++
	}
	c.ring[c.ringN%latencyWindow] = lat
	c.ringN++
}

func (c *collector) reject() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *collector) evict(n int) {
	c.mu.Lock()
	c.evictions += int64(n)
	c.mu.Unlock()
}

// snapshot returns a consistent copy with latency percentiles over the
// recent window.
func (c *collector) snapshot(matrices int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Requests:  c.requests,
		Errors:    c.errors,
		Rejected:  c.rejected,
		Evictions: c.evictions,
		Matrices:  matrices,
		TotalBits: c.totalBits,
		PerKind:   make(map[string]KindStats, len(c.perKind)),
		Uptime:    time.Since(c.start),
	}
	for k, v := range c.perKind {
		s.PerKind[k] = *v
	}
	n := c.ringN
	if n > latencyWindow {
		n = latencyWindow
	}
	if n > 0 {
		lats := make([]time.Duration, n)
		copy(lats, c.ring[:n])
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.LatencyP50 = percentile(lats, 0.50)
		s.LatencyP90 = percentile(lats, 0.90)
		s.LatencyP99 = percentile(lats, 0.99)
	}
	return s
}

// percentile reads the q-quantile from a sorted slice (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
