package service

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// latencyWindow is how many recent request latencies the percentile
// estimates are computed over.
const latencyWindow = 4096

// KindStats aggregates serving statistics for one job kind.
type KindStats struct {
	// Requests counts queries of this kind, failed ones included.
	Requests int64 `json:"requests"`
	// Errors counts the failed queries among Requests.
	Errors int64 `json:"errors"`
	// Bits is the summed protocol payload of the kind's queries.
	Bits int64 `json:"bits"`
	// Rounds is the summed round count of the kind's queries.
	Rounds int64 `json:"rounds"`
}

// Stats is a snapshot of the engine's aggregate serving statistics.
type Stats struct {
	// Requests counts estimation queries run, failed ones included.
	Requests int64 `json:"requests"`
	// Errors counts the failed queries among Requests.
	Errors int64 `json:"errors"`
	// Rejected counts admissions shed with ErrOverloaded.
	Rejected int64 `json:"rejected"`
	// Evictions counts matrices LRU-evicted from the registry.
	Evictions int64 `json:"evictions"`
	// Matrices is the current registry size.
	Matrices int `json:"matrices"`
	// TotalBits is the summed protocol payload on the wire.
	TotalBits int64 `json:"total_bits"`
	// PerKind breaks the request counters down by job kind.
	PerKind map[string]KindStats `json:"per_kind"`
	// Cache holds the sketch-cache counters (zero when disabled).
	Cache CacheStats `json:"cache"`
	// Shard holds the row-shard serve-path counters.
	Shard ShardStats `json:"shard"`
	// Uploads holds the chunked-upload lifecycle counters.
	Uploads UploadStats `json:"uploads"`
	// RowUpdates holds the dynamic row-update counters.
	RowUpdates RowUpdateStats `json:"row_updates"`
	// Store holds the durable-persistence counters (Enabled false when
	// no store is configured).
	Store PersistStats `json:"store"`
	// LatencyP50 is the median protocol latency over the recent window.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	// LatencyP90 is the 90th-percentile latency over the recent window.
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	// LatencyP99 is the 99th-percentile latency over the recent window.
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// QueueWaitP50 is the median admission-slot wait over the recent
	// window — time between an Estimate/EstimateBatch call entering
	// admission and a worker slot being granted, reported separately
	// from the protocol latencies above so queueing delay (saturation)
	// is visible apart from service time.
	QueueWaitP50 time.Duration `json:"queue_wait_p50_ns"`
	// QueueWaitP90 is the 90th-percentile admission wait.
	QueueWaitP90 time.Duration `json:"queue_wait_p90_ns"`
	// QueueWaitP99 is the 99th-percentile admission wait.
	QueueWaitP99 time.Duration `json:"queue_wait_p99_ns"`
	// Uptime is how long the engine has been serving.
	Uptime time.Duration `json:"uptime_ns"`
}

// collector accumulates serving stats; latencies go into a fixed ring
// so percentile estimates track the recent window at O(1) memory.
type collector struct {
	mu        sync.Mutex
	start     time.Time
	requests  int64
	errors    int64
	rejected  int64
	evictions int64
	totalBits int64
	perKind   map[string]*KindStats
	ring      [latencyWindow]time.Duration
	ringN     int // total latencies ever recorded
	waitRing  [latencyWindow]time.Duration
	waitRingN int // total queue waits ever recorded
	// raP50/raAt cache the queue-wait median backing Retry-After hints:
	// sheds arrive exactly when the engine is saturated, so each one must
	// not pay an O(n log n) sort over the wait ring.
	raP50 time.Duration
	raAt  time.Time
}

func newCollector() *collector {
	return &collector{start: time.Now(), perKind: make(map[string]*KindStats)}
}

func (c *collector) record(kind string, bits int64, rounds int, lat time.Duration, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump(kind, bits, rounds, failed)
	c.ring[c.ringN%latencyWindow] = lat
	c.ringN++
}

// recordFailure counts a request that failed before any protocol ran
// (driver-state validation). No latency sample is written: a stream of
// invalid requests must not flood the percentile window with zeros.
func (c *collector) recordFailure(kind string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump(kind, 0, 0, true)
}

// bump updates the counters. Callers hold c.mu.
func (c *collector) bump(kind string, bits int64, rounds int, failed bool) {
	c.requests++
	c.totalBits += bits
	ks := c.perKind[kind]
	if ks == nil {
		ks = &KindStats{}
		c.perKind[kind] = ks
	}
	ks.Requests++
	ks.Bits += bits
	ks.Rounds += int64(rounds)
	if failed {
		c.errors++
		ks.Errors++
	}
}

// recordQueueWait records how long one admission waited for a worker
// slot. Kept in its own ring: queue waits and service times have very
// different distributions and mixing them would hide saturation.
func (c *collector) recordQueueWait(wait time.Duration) {
	c.mu.Lock()
	c.waitRing[c.waitRingN%latencyWindow] = wait
	c.waitRingN++
	c.mu.Unlock()
}

// retryAfterTTL is how long a computed queue-wait median is reused for
// Retry-After hints before being recomputed.
const retryAfterTTL = time.Second

// queueWaitP50Cached returns the recent median admission wait,
// recomputing it at most once per retryAfterTTL.
func (c *collector) queueWaitP50Cached() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.raAt.IsZero() && time.Since(c.raAt) < retryAfterTTL {
		return c.raP50
	}
	c.raP50, _, _ = ringPercentiles(&c.waitRing, c.waitRingN)
	c.raAt = time.Now()
	return c.raP50
}

func (c *collector) reject() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *collector) evict(n int) {
	c.mu.Lock()
	c.evictions += int64(n)
	c.mu.Unlock()
}

// countersSnapshot returns a consistent copy of the monotone counters
// without touching the latency rings — no sorting, so it is cheap
// enough for the /metrics func-backed families to call at scrape time.
func (c *collector) countersSnapshot(matrices int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.countersLocked(matrices)
}

// countersLocked builds the counter part of a Stats. Callers hold c.mu.
func (c *collector) countersLocked(matrices int) Stats {
	s := Stats{
		Requests:  c.requests,
		Errors:    c.errors,
		Rejected:  c.rejected,
		Evictions: c.evictions,
		Matrices:  matrices,
		TotalBits: c.totalBits,
		PerKind:   make(map[string]KindStats, len(c.perKind)),
		Uptime:    time.Since(c.start),
	}
	for k, v := range c.perKind {
		s.PerKind[k] = *v
	}
	return s
}

// snapshot returns a consistent copy with latency and queue-wait
// percentiles over the recent windows.
func (c *collector) snapshot(matrices int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.countersLocked(matrices)
	s.LatencyP50, s.LatencyP90, s.LatencyP99 = ringPercentiles(&c.ring, c.ringN)
	s.QueueWaitP50, s.QueueWaitP90, s.QueueWaitP99 = ringPercentiles(&c.waitRing, c.waitRingN)
	return s
}

// ringPercentiles reads the P50/P90/P99 of a latency ring holding
// min(n, latencyWindow) valid entries.
func ringPercentiles(ring *[latencyWindow]time.Duration, n int) (p50, p90, p99 time.Duration) {
	if n > latencyWindow {
		n = latencyWindow
	}
	if n == 0 {
		return 0, 0, 0
	}
	lats := make([]time.Duration, n)
	copy(lats, ring[:n])
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return Percentile(lats, 0.50), Percentile(lats, 0.90), Percentile(lats, 0.99)
}

// RetryAfter is the backoff hint attached to admission sheds (the
// Retry-After header on 429 responses): twice the recent median
// queue wait — long enough that a retry arriving after it has a real
// chance of finding a slot — floored at one second so an engine shedding
// from a cold window still spreads its retry wave.
func (e *Engine) RetryAfter() time.Duration {
	wait := 2 * e.stats.queueWaitP50Cached()
	if wait < time.Second {
		wait = time.Second
	}
	return wait
}

// ShardStats describes the row-shard parallel serve path: the engine's
// configured shard count plus the pool's execution counters. The pool —
// and therefore Jobs/Tasks/Busy — is process-wide (all engines' shard
// tasks share one GOMAXPROCS-bounded pool), so in a process hosting
// several engines the counters aggregate across them.
type ShardStats struct {
	// Shards is the engine's configured row-shard count per job.
	Shards int `json:"shards"`
	// Jobs counts sharded sections that actually ran in parallel;
	// sections coarsened to one range run inline and are not counted.
	Jobs int64 `json:"jobs"`
	// Tasks counts shard tasks executed by the pool.
	Tasks int64 `json:"tasks"`
	// Busy is the cumulative busy time per shard index (shard 0 first) —
	// a skew diagnostic: a healthy row distribution keeps the entries
	// near-equal.
	Busy []time.Duration `json:"busy_ns"`
}

// shardStatsSnapshot folds the engine's configured shard count with the
// process-wide pool counters.
func shardStatsSnapshot(shards int) ShardStats {
	info := core.ShardCounters()
	return ShardStats{Shards: shards, Jobs: info.Jobs, Tasks: info.Tasks, Busy: info.Busy}
}

// Percentile reads the q-quantile from a sorted slice by the
// nearest-rank definition: the smallest element whose rank r (1-based)
// satisfies r ≥ q·n. (Truncating q·(n−1) instead — a previous bug here
// and in cmd/mpload — biases high quantiles low on small windows: P99
// of 10 samples picked the 9th-smallest, not the maximum.) Exported so
// latency-reporting clients share one definition with the server.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
