package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// binClient is a client negotiating the binary wire format against the
// legacy (unprefixed) paths of srv.
func binClient(srv *httptest.Server) *Client {
	return New(srv.URL, WithPathPrefix(""), WithAccept(MediaTypeBinary))
}

func uploadDemo(t *testing.T, c *Client, name string, seed uint64, n int) {
	t.Helper()
	if _, err := c.UploadMatrix(context.Background(), name, testBinaryMatrix(seed, n, 0.3)); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryNegotiationEndToEnd drives the whole typed API through a
// binary-negotiating client and requires the exact answers the JSON
// client gets: the codec must be invisible in every result bit.
func TestBinaryNegotiationEndToEnd(t *testing.T) {
	srv, jsonC := newTestServer(t, Config{})
	binC := binClient(srv)
	ctx := context.Background()

	uploadDemo(t, binC, "m", 50, 24)
	seed := uint64(51)
	req := Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testBinaryMatrix(52, 24, 0.3)}

	viaBin, err := binC.Estimate(ctx, req)
	if err != nil {
		t.Fatalf("binary estimate: %v", err)
	}
	viaJSON, err := jsonC.Estimate(ctx, req)
	if err != nil {
		t.Fatalf("json estimate: %v", err)
	}
	if viaBin.Estimate != viaJSON.Estimate || viaBin.Bits != viaJSON.Bits || viaBin.Seed != viaJSON.Seed {
		t.Fatalf("binary result %+v != json result %+v", viaBin, viaJSON)
	}

	items, err := binC.EstimateBatch(ctx, []Request{req, {Matrix: "gone", Kind: "lp", A: req.A}})
	if err != nil {
		t.Fatalf("binary batch: %v", err)
	}
	if len(items) != 2 || items[0].Result == nil || items[0].Result.Estimate != viaJSON.Estimate || items[1].Error == "" {
		t.Fatalf("binary batch items %+v", items)
	}

	rep, err := binC.UpdateRows(ctx, "m", UpdateRequest{Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{1, 1}}}}})
	if err != nil {
		t.Fatalf("binary row update: %v", err)
	}
	if rep.RowsApplied != 1 || rep.Sub != 1 {
		t.Fatalf("binary row update reply %+v", rep)
	}

	// Typed errors survive the binary path: error bodies are always the
	// JSON envelope.
	_, err = binC.Estimate(ctx, Request{Matrix: "absent", Kind: "lp", A: req.A})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "matrix_not_found" {
		t.Fatalf("binary-path error %v, want 404 matrix_not_found", err)
	}
}

// TestContentNegotiationHeaders pins the negotiation rules at the raw
// HTTP level: binary replies require an explicit Accept, wildcard and
// absent Accepts stay JSON, and the request and response sides
// negotiate independently.
func TestContentNegotiationHeaders(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	uploadDemo(t, c, "m", 60, 16)
	seed := uint64(61)
	req := Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testBinaryMatrix(62, 16, 0.3)}
	binBody, err := AppendBinary(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	post := func(body []byte, contentType, accept string) *http.Response {
		t.Helper()
		hr, err := http.NewRequest("POST", srv.URL+"/estimate", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			hr.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			hr.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	cases := []struct {
		name        string
		body        []byte
		contentType string
		accept      string
		wantCT      string
	}{
		{"json_in_json_out", jsonBody, "application/json", "", "application/json"},
		{"json_in_wildcard_out", jsonBody, "application/json", "*/*", "application/json"},
		{"json_in_binary_out", jsonBody, "application/json", MediaTypeBinary, MediaTypeBinary},
		{"binary_in_json_out", binBody, MediaTypeBinary, "application/json", "application/json"},
		{"binary_in_binary_out", binBody, MediaTypeBinary, MediaTypeBinary + ", application/json", MediaTypeBinary},
		{"binary_with_params", binBody, MediaTypeBinary + "; v=1", MediaTypeBinary, MediaTypeBinary},
	}
	var want Result
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(tc.body, tc.contentType, tc.accept)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, tc.wantCT) {
				t.Fatalf("response Content-Type %q, want %q", ct, tc.wantCT)
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			var res Result
			if tc.wantCT == MediaTypeBinary {
				err = DecodeBinary(raw, &res)
			} else {
				err = json.Unmarshal(raw, &res)
			}
			if err != nil {
				t.Fatalf("decode %s reply: %v", tc.wantCT, err)
			}
			res.Elapsed = 0
			if i == 0 {
				want = res
			} else if !reflect.DeepEqual(res, want) {
				t.Fatalf("negotiated result %+v != baseline %+v", res, want)
			}
		})
	}
}

// TestUnsupportedMediaType415 pins satellite 3: any non-JSON,
// non-binary Content-Type is refused with 415 and the uniform
// error envelope.
func TestUnsupportedMediaType415(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	for _, ct := range []string{"text/csv", "application/xml", "multipart/form-data; boundary=x"} {
		resp, err := http.Post(srv.URL+"/estimate", ct, strings.NewReader("i,j,v"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q: status %d, want 415", ct, resp.StatusCode)
		}
		checkEnvelope(t, body, "unsupported_media_type")
	}
	// JSON with parameters and curl's implicit form-urlencoded default
	// (`curl -d` with no -H) both take the JSON path, not 415 — every
	// hand-driven example in docs/API.md depends on the latter.
	for _, ct := range []string{"application/json; charset=utf-16", "application/x-www-form-urlencoded"} {
		resp, err := http.Post(srv.URL+"/estimate", ct, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusUnsupportedMediaType {
			t.Fatalf("Content-Type %q rejected with 415", ct)
		}
	}
}

// TestBinaryClientJSONOnlyServer simulates a fleet mid-rollout: the
// backend answers 415 to the binary wire format. The negotiating
// client must transparently replay the call as JSON, then latch
// JSON-only so later calls skip the doomed binary attempt.
func TestBinaryClientJSONOnlyServer(t *testing.T) {
	e := NewEngine(Config{})
	t.Cleanup(e.Close)
	inner := NewHandler(e)
	var binaryHits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if contentMediaType(r.Header.Get("Content-Type")) == MediaTypeBinary {
			binaryHits.Add(1)
			WriteErrorEnvelope(w, http.StatusUnsupportedMediaType, "unsupported_media_type", "binary wire format not supported")
			return
		}
		r.Header.Del("Accept") // a JSON-only tier never returns binary
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	c := binClient(srv)
	ctx := context.Background()
	uploadDemo(t, c, "m", 70, 16)
	seed := uint64(71)
	req := Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testBinaryMatrix(72, 16, 0.3)}
	res1, err := c.Estimate(ctx, req)
	if err != nil {
		t.Fatalf("estimate against JSON-only server: %v", err)
	}
	if got := binaryHits.Load(); got != 1 {
		t.Fatalf("binary attempts before latch: %d, want 1", got)
	}
	// The latch is sticky: no further binary attempts, same answers.
	res2, err := c.Estimate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := binaryHits.Load(); got != 1 {
		t.Fatalf("binary attempts after latch: %d, want still 1", got)
	}
	if res1.Estimate != res2.Estimate || res1.Bits != res2.Bits {
		t.Fatalf("fallback changed answers: %+v vs %+v", res1, res2)
	}
}

// TestV1AliasByteIdentity pins the /v1 migration contract: a JSON
// client gets byte-identical success responses from the legacy and
// /v1 paths.
func TestV1AliasByteIdentity(t *testing.T) {
	srv, c := newTestServer(t, Config{})
	uploadDemo(t, c, "m", 80, 16)

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	if legacy, v1 := get("/matrices"), get("/v1/matrices"); !bytes.Equal(legacy, v1) {
		t.Fatalf("catalog bodies differ:\n legacy %s\n v1     %s", legacy, v1)
	}
	if legacy, v1 := get("/healthz"), get("/v1/healthz"); !bytes.Equal(legacy, v1) {
		t.Fatalf("health bodies differ: %q vs %q", legacy, v1)
	}

	// POST bodies: identical up to the elapsed_ns timing field.
	seed := uint64(81)
	req := Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testBinaryMatrix(82, 16, 0.3)}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	post := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		delete(m, "elapsed_ns")
		return m
	}
	legacy, v1 := post("/estimate"), post("/v1/estimate")
	lj, _ := json.Marshal(legacy)
	vj, _ := json.Marshal(v1)
	if !bytes.Equal(lj, vj) {
		t.Fatalf("estimate bodies differ:\n legacy %s\n v1     %s", lj, vj)
	}

	// The default client prefix is /v1; it must behave like the legacy
	// client in every answer.
	v1c := New(srv.URL)
	res, err := v1c.Estimate(context.Background(), req)
	if err != nil {
		t.Fatalf("/v1 client estimate: %v", err)
	}
	if res.Estimate != legacy["estimate"].(float64) {
		t.Fatalf("/v1 client estimate %v != legacy %v", res.Estimate, legacy["estimate"])
	}
}

// checkEnvelope requires body to be exactly the uniform error
// envelope — one "error" object holding exactly "code" and "message" —
// with the expected code.
func checkEnvelope(t *testing.T, body []byte, wantCode string) {
	t.Helper()
	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, body)
	}
	if len(top) != 1 || top["error"] == nil {
		t.Fatalf("error body keys %v, want exactly {error} (%s)", keysOf(top), body)
	}
	var inner map[string]json.RawMessage
	if err := json.Unmarshal(top["error"], &inner); err != nil {
		t.Fatalf("error value is not an object: %v (%s)", err, body)
	}
	if len(inner) != 2 || inner["code"] == nil || inner["message"] == nil {
		t.Fatalf("error object keys %v, want exactly {code, message} (%s)", keysOf(inner), body)
	}
	var code string
	if err := json.Unmarshal(inner["code"], &code); err != nil || code != wantCode {
		t.Fatalf("error code %q (err %v), want %q (%s)", code, err, wantCode, body)
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// TestErrorCodeTable pins the full error→(status, code) vocabulary.
func TestErrorCodeTable(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{ErrUnsupportedMedia, http.StatusUnsupportedMediaType, "unsupported_media_type"},
		{ErrBadRequest, http.StatusBadRequest, "bad_request"},
		{ErrBodyTooLarge, http.StatusRequestEntityTooLarge, "body_too_large"},
		{ErrMatrixNotFound, http.StatusNotFound, "matrix_not_found"},
		{ErrUploadNotFound, http.StatusNotFound, "upload_not_found"},
		{ErrConflict, http.StatusConflict, "conflict"},
		{ErrOverloaded, http.StatusTooManyRequests, "overloaded"},
		{ErrClosed, http.StatusServiceUnavailable, "unavailable"},
		{errors.New("anything else"), http.StatusInternalServerError, "internal"},
	}
	for _, tc := range cases {
		status, code := ErrorCode(tc.err)
		if status != tc.wantStatus || code != tc.wantCode {
			t.Errorf("ErrorCode(%v) = (%d, %q), want (%d, %q)", tc.err, status, code, tc.wantStatus, tc.wantCode)
		}
		// Wrapped errors map identically.
		status, code = ErrorCode(wrapErr(tc.err))
		if status != tc.wantStatus || code != tc.wantCode {
			t.Errorf("ErrorCode(wrapped %v) = (%d, %q), want (%d, %q)", tc.err, status, code, tc.wantStatus, tc.wantCode)
		}
	}
}

func wrapErr(err error) error { return &wrapped{err} }

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "ctx: " + w.inner.Error() }
func (w *wrapped) Unwrap() error { return w.inner }

// TestErrorEnvelopeOverHTTP drives each reachable failure through the
// real server and requires the envelope shape and code on the wire.
func TestErrorEnvelopeOverHTTP(t *testing.T) {
	old := maxBodyBytes
	maxBodyBytes = 1 << 10
	t.Cleanup(func() { maxBodyBytes = old })
	srv, c := newTestServer(t, Config{})
	uploadDemo(t, c, "m", 90, 8)

	do := func(method, path, contentType, body string) (int, []byte) {
		t.Helper()
		hr, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			hr.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	cases := []struct {
		name        string
		method      string
		path        string
		contentType string
		body        string
		wantStatus  int
		wantCode    string
	}{
		{"matrix_not_found", "POST", "/estimate", "application/json",
			`{"matrix":"absent","kind":"lp","a":{"rows":1,"cols":1,"entries":[[0,0,1]]}}`,
			http.StatusNotFound, "matrix_not_found"},
		{"bad_kind", "POST", "/estimate", "application/json",
			`{"matrix":"m","kind":"nope","a":{"rows":1,"cols":1,"entries":[[0,0,1]]}}`,
			http.StatusBadRequest, "bad_request"},
		{"malformed_json", "POST", "/estimate", "application/json", "{not json",
			http.StatusBadRequest, "bad_request"},
		{"unknown_field", "POST", "/estimate", "application/json", `{"bogus":1}`,
			http.StatusBadRequest, "bad_request"},
		{"unsupported_media", "POST", "/estimate", "text/csv", "i,j,v",
			http.StatusUnsupportedMediaType, "unsupported_media_type"},
		{"body_too_large", "POST", "/estimate", "application/json",
			`{"matrix":"m","kind":"lp","a":{"rows":1,"cols":1,"entries":[` +
				strings.Repeat("[0,0,1],", 200) + `[0,0,1]]}}`,
			http.StatusRequestEntityTooLarge, "body_too_large"},
		{"delete_absent", "DELETE", "/matrix/absent", "", "",
			http.StatusNotFound, "matrix_not_found"},
		{"upload_not_found", "POST", "/matrices/m/chunks", "application/json",
			`{"op":"commit","upload":"nope"}`,
			http.StatusNotFound, "upload_not_found"},
		{"v1_alias_envelope", "POST", "/v1/estimate", "application/json",
			`{"matrix":"absent","kind":"lp","a":{"rows":1,"cols":1,"entries":[[0,0,1]]}}`,
			http.StatusNotFound, "matrix_not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(tc.method, tc.path, tc.contentType, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", status, tc.wantStatus, body)
			}
			checkEnvelope(t, body, tc.wantCode)
		})
	}
}
