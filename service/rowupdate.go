package service

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/intmat"
)

// Dynamic row updates: PATCH /matrices/{name}/rows applies sparse
// row replacements (or deltas) to a served matrix in place of a full
// re-upload. The registry entry is replaced copy-on-write under the
// matrix's existing upload generation with a bumped sub-version, and
// every cached Bob state is *revalidated* — incrementally advanced to
// the new sub-version by the core layer's UpdateRows methods, which
// recompute only the touched rows — instead of evicted. In-flight
// queries keep serving the old immutable generation; new queries see
// the new sub-version with a warm cache. The core parity tests pin
// that a revalidated state is byte-identical to one rebuilt from
// scratch, so the update path changes latency, never answers.

// ErrConflict is returned when a row update raced a full replacement
// of the same matrix (the update loses; mapped to 409).
var ErrConflict = errors.New("service: matrix changed concurrently")

// RowUpdate is one sparse row patch: the row index and its (col,
// value) pairs. In replace mode the row becomes exactly the listed
// entries (unlisted cells zero); in delta mode each value is added to
// the existing cell.
type RowUpdate struct {
	// Row is the 0-based row index of the served matrix.
	Row int `json:"row"`
	// Entries are (col, value) pairs; duplicate columns are rejected.
	Entries [][2]int64 `json:"entries"`
}

// UpdateRequest is the body of PATCH /matrices/{name}/rows: a batch of
// row patches, or a single patch via the shorthand Row/Entries fields.
type UpdateRequest struct {
	// Updates is the batch form: one patch per row, applied atomically.
	Updates []RowUpdate `json:"updates,omitempty"`
	// Row is the single-patch shorthand (with Entries); it may be
	// combined with Updates.
	Row *int `json:"row,omitempty"`
	// Entries are the shorthand patch's (col, value) pairs.
	Entries [][2]int64 `json:"entries,omitempty"`
	// Delta selects delta mode: values are added to the existing cells
	// instead of replacing whole rows.
	Delta bool `json:"delta,omitempty"`
	// Key is an optional idempotency key (zero = none): the server
	// remembers recent keys per matrix generation and answers a
	// repeated key with the remembered reply instead of re-applying the
	// patch — what makes a retried non-idempotent PATCH safe after a
	// transport failure lost the reply, and what lets a replication
	// tier replay its update log exactly. Keys are not persisted: a
	// restart clears the window, which is fine because retries arrive
	// within a client timeout, not across server restarts.
	Key uint64 `json:"key,omitempty"`
}

// Normalized folds the shorthand form into the batch and rejects empty
// or ambiguous (duplicate-row) requests. Exported so tiers layered on
// the service API — the gateway — validate with the same rules.
func (r UpdateRequest) Normalized() ([]RowUpdate, error) {
	ups := r.Updates
	if r.Row != nil {
		ups = append(append([]RowUpdate(nil), ups...), RowUpdate{Row: *r.Row, Entries: r.Entries})
	}
	if len(ups) == 0 {
		return nil, fmt.Errorf("%w: empty row update", ErrBadRequest)
	}
	seen := make(map[int]bool, len(ups))
	for _, u := range ups {
		if seen[u.Row] {
			return nil, fmt.Errorf("%w: row %d updated twice in one request", ErrBadRequest, u.Row)
		}
		seen[u.Row] = true
	}
	return ups, nil
}

// UpdateReply is the reply of PATCH /matrices/{name}/rows.
type UpdateReply struct {
	MatrixInfo
	// Sub is the matrix's new generation sub-version: it advances by
	// one per applied update and scopes the sketch-cache keys, so
	// cached states revalidate across an update instead of evicting.
	Sub uint64 `json:"sub"`
	// RowsApplied is the number of distinct rows the update touched.
	RowsApplied int `json:"rows_applied"`
	// CacheRefreshed counts cached Bob states incrementally advanced to
	// the new sub-version.
	CacheRefreshed int `json:"cache_refreshed"`
	// CacheDropped counts cached states that could not be advanced
	// (e.g. a sign or binarity transition invalidated the kind) and
	// will rebuild on next use.
	CacheDropped int `json:"cache_dropped"`
}

// RowUpdateStats is a snapshot of the dynamic-update counters.
type RowUpdateStats struct {
	// Requests counts update requests, failed ones included.
	Requests int64 `json:"requests"`
	// Errors counts the failed requests among Requests.
	Errors int64 `json:"errors"`
	// Dedups counts requests answered from the idempotency window
	// without re-applying (a retried keyed update).
	Dedups int64 `json:"dedups"`
	// Rows is the total number of row patches applied.
	Rows int64 `json:"rows"`
	// StatesRefreshed counts cached Bob states incrementally advanced
	// across updates.
	StatesRefreshed int64 `json:"states_refreshed"`
	// StatesDropped counts cached states dropped because they could not
	// be advanced.
	StatesDropped int64 `json:"states_dropped"`
}

// rowUpdateCounters accumulates RowUpdateStats under its own lock.
type rowUpdateCounters struct {
	mu sync.Mutex
	s  RowUpdateStats
}

func (c *rowUpdateCounters) record(rows, refreshed, dropped int, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Requests++
	if failed {
		c.s.Errors++
		return
	}
	c.s.Rows += int64(rows)
	c.s.StatesRefreshed += int64(refreshed)
	c.s.StatesDropped += int64(dropped)
}

func (c *rowUpdateCounters) recordDedup() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Requests++
	c.s.Dedups++
}

func (c *rowUpdateCounters) snapshot() RowUpdateStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// scanDense derives the catalog flags of a dense matrix in one pass.
func scanDense(d *intmat.Dense) (nnz int, binary, nonNeg bool) {
	binary, nonNeg = true, true
	for i := 0; i < d.Rows(); i++ {
		for _, v := range d.Row(i) {
			if v == 0 {
				continue
			}
			nnz++
			if v != 1 {
				binary = false
			}
			if v < 0 {
				nonNeg = false
			}
		}
	}
	return nnz, binary, nonNeg
}

// UpdateRows applies a batch of sparse row patches to a served matrix:
// the dense form is cloned and patched, the registry entry replaced
// under the same upload generation with a bumped sub-version, and
// every cached Bob state revalidated in place by the core incremental
// layer. The whole batch is atomic — a validation failure on any patch
// applies nothing. Updates are serialized per engine; a concurrent
// full replacement of the name wins with ErrConflict.
func (e *Engine) UpdateRows(name string, req UpdateRequest) (UpdateReply, error) {
	select {
	case <-e.closed:
		return UpdateReply{}, ErrClosed
	default:
	}
	rep, deduped, err := e.updateRows(name, req)
	if err != nil {
		e.rowUpd.record(0, 0, 0, true)
		return UpdateReply{}, err
	}
	if deduped {
		e.rowUpd.recordDedup()
	} else {
		e.rowUpd.record(rep.RowsApplied, rep.CacheRefreshed, rep.CacheDropped, false)
	}
	return rep, nil
}

// updateDedupeWindow bounds the engine's remembered idempotency keys.
// It needs to cover the retry window of in-flight writers (a retry
// arrives within a client timeout), not history.
const updateDedupeWindow = 256

// updKey identifies one remembered update: the matrix, its upload
// generation (a wholesale replacement invalidates old keys — the
// entries they described are gone), and the client's key.
type updKey struct {
	name string
	gen  uint64
	key  uint64
}

func (e *Engine) updateRows(name string, req UpdateRequest) (UpdateReply, bool, error) {
	ups, err := req.Normalized()
	if err != nil {
		return UpdateReply{}, false, err
	}
	e.updMu.Lock()
	defer e.updMu.Unlock()
	sm, ok := e.reg.get(name)
	if !ok {
		return UpdateReply{}, false, fmt.Errorf("%w: %q", ErrMatrixNotFound, name)
	}
	// A repeated idempotency key is a retry (or a replication tier's
	// log replay) of an update that already committed: answer with the
	// remembered reply instead of applying the patch twice.
	if req.Key != 0 {
		if rep, hit := e.updRecent[updKey{name: name, gen: sm.gen, key: req.Key}]; hit {
			return rep, true, nil
		}
	}
	newSM, rows, err := patchServed(sm, ups, req.Delta)
	if err != nil {
		return UpdateReply{}, false, err
	}
	// Durability before visibility: the WAL record lands before the
	// swap. If the swap below loses to a racing replacement, the record
	// is junk a recovery skips — its epoch no longer matches the
	// snapshot that replacement persisted.
	if err := e.persistUpdate(name, sm.gen, newSM.sub, ups, req.Delta); err != nil {
		return UpdateReply{}, false, err
	}
	if !e.reg.replaceIf(name, sm, newSM) {
		// A PutMatrix (or delete) raced in: its wholesale replacement is
		// authoritative, and this update never becomes visible.
		return UpdateReply{}, false, fmt.Errorf("%w: %q", ErrConflict, name)
	}
	var refreshed, dropped int
	if e.cache != nil {
		refreshed, dropped = e.cache.refreshMatrix(name, sm.gen, sm.sub, newSM.sub,
			func(st bobState) (bobState, bool) {
				return advanceState(st, newSM, rows)
			})
	}
	rep := UpdateReply{
		MatrixInfo:     newSM.info,
		Sub:            newSM.sub,
		RowsApplied:    len(rows),
		CacheRefreshed: refreshed,
		CacheDropped:   dropped,
	}
	if req.Key != 0 {
		e.rememberUpdateLocked(updKey{name: name, gen: sm.gen, key: req.Key}, rep)
	}
	return rep, false, nil
}

// rememberUpdateLocked records a committed keyed update in the dedupe
// ring, evicting FIFO past the window. Callers hold e.updMu.
func (e *Engine) rememberUpdateLocked(k updKey, rep UpdateReply) {
	if e.updRecent == nil {
		e.updRecent = make(map[updKey]UpdateReply, updateDedupeWindow)
	}
	e.updRecent[k] = rep
	e.updRecentKeys = append(e.updRecentKeys, k)
	if len(e.updRecentKeys) > updateDedupeWindow {
		delete(e.updRecent, e.updRecentKeys[0])
		e.updRecentKeys = e.updRecentKeys[1:]
	}
}

// patchServed builds sm's copy-on-write successor with the validated
// row patches applied: dense clone patched, catalog flags rescanned,
// sub-version bumped, bit form patched incrementally when it stays
// binary. Returns the touched rows for cache revalidation. Shared by
// the live update path and WAL replay at recovery, so a replayed
// update reconstructs byte-identical served state.
func patchServed(sm *servedMatrix, ups []RowUpdate, delta bool) (*servedMatrix, []int, error) {
	rows := make([]int, 0, len(ups))
	for _, u := range ups {
		if u.Row < 0 || u.Row >= sm.info.Rows {
			return nil, nil, fmt.Errorf("%w: row %d outside %d-row matrix", ErrBadRequest, u.Row, sm.info.Rows)
		}
		cols := make(map[int64]bool, len(u.Entries))
		for _, ent := range u.Entries {
			j := ent[0]
			if j < 0 || j >= int64(sm.info.Cols) {
				return nil, nil, fmt.Errorf("%w: entry column %d outside %d-column matrix", ErrBadRequest, j, sm.info.Cols)
			}
			if cols[j] {
				return nil, nil, fmt.Errorf("%w: duplicate column %d in row %d update", ErrBadRequest, j, u.Row)
			}
			cols[j] = true
		}
		rows = append(rows, u.Row)
	}

	dense := sm.dense.Clone()
	for _, u := range ups {
		row := dense.Row(u.Row)
		if !delta {
			clear(row)
		}
		for _, ent := range u.Entries {
			if delta {
				row[ent[0]] += ent[1]
			} else {
				row[ent[0]] = ent[1]
			}
		}
	}
	nnz, binary, nonNeg := scanDense(dense)
	newSM := &servedMatrix{
		info: MatrixInfo{
			Name:     sm.info.Name,
			Rows:     sm.info.Rows,
			Cols:     sm.info.Cols,
			NNZ:      nnz,
			Binary:   binary,
			NonNeg:   nonNeg,
			Uploaded: sm.info.Uploaded,
		},
		gen:   sm.gen,
		sub:   sm.sub + 1,
		dense: dense,
	}
	if binary {
		if sm.bits != nil {
			// The bit form was valid before the update: patch only the
			// touched rows.
			bits := sm.bits.Clone()
			for _, k := range rows {
				for j, v := range dense.Row(k) {
					bits.Set(k, j, v != 0)
				}
			}
			newSM.bits = bits
		} else {
			newSM.bits = toBool(dense)
		}
	}
	return newSM, rows, nil
}

// advanceState incrementally advances one cached Bob state to the
// updated matrix, recomputing only the touched rows. A state that
// cannot be advanced — the update invalidated its kind's input
// contract (signedness for exact/l1sample, binarity for the ℓ∞ kinds)
// — reports false and is dropped from the cache; the next query of
// that kind rebuilds (and surfaces the contract error) exactly as a
// cold cache would.
func advanceState(st bobState, sm *servedMatrix, rows []int) (bobState, bool) {
	switch v := st.(type) {
	case *lpStates:
		nb, err := v.bob.UpdateRows(sm.dense, rows)
		if err != nil {
			return nil, false
		}
		return &lpStates{bob: nb, alice: v.alice}, true
	case *core.BobL0SampleState:
		nb, err := v.UpdateRows(sm.dense, rows)
		return nb, err == nil
	case *core.BobExactL1State:
		nb, err := v.UpdateRows(sm.dense, rows)
		return nb, err == nil
	case *core.BobL1SampleState:
		nb, err := v.UpdateRows(sm.dense, rows)
		return nb, err == nil
	case *core.BobLinfState:
		if sm.bits == nil {
			return nil, false
		}
		nb, err := v.UpdateRows(sm.bits, rows)
		return nb, err == nil
	case *core.BobLinfKappaState:
		if sm.bits == nil {
			return nil, false
		}
		nb, err := v.UpdateRows(sm.bits, rows)
		return nb, err == nil
	case *core.BobHHState:
		nb, err := v.UpdateRows(sm.dense, rows)
		return nb, err == nil
	default:
		return nil, false
	}
}
