package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/workload"
)

// nonNegMatrix is a non-negative integer matrix (valid for every kind
// but the Boolean-only ones).
func nonNegMatrix(seed uint64, n int, density float64) Matrix {
	return MatrixFromDense(workload.Integer(seed, n, n, density, 3, false))
}

// patchedWire applies a replace-mode row update to a wire matrix
// client-side — the oracle the re-upload comparison engine ingests.
func patchedWire(m Matrix, ups []RowUpdate) Matrix {
	replaced := make(map[int64][][2]int64, len(ups))
	for _, u := range ups {
		replaced[int64(u.Row)] = u.Entries
	}
	out := Matrix{Rows: m.Rows, Cols: m.Cols}
	for _, ent := range m.Entries {
		if _, hit := replaced[ent[0]]; !hit {
			out.Entries = append(out.Entries, ent)
		}
	}
	for _, u := range ups {
		for _, ent := range u.Entries {
			if ent[1] != 0 {
				out.Entries = append(out.Entries, [3]int64{int64(u.Row), ent[0], ent[1]})
			}
		}
	}
	return out
}

// randRowPatch builds a random replace-mode patch for one row.
func randRowPatch(rnd *rand.Rand, row, cols int, nonneg bool) RowUpdate {
	u := RowUpdate{Row: row}
	for j := 0; j < cols; j++ {
		if rnd.Float64() < 0.3 {
			v := rnd.Int63n(3) + 1
			if !nonneg && rnd.Intn(2) == 0 {
				v = -v
			}
			u.Entries = append(u.Entries, [2]int64{int64(j), v})
		}
	}
	return u
}

// TestUpdateRowsMatchesReupload is the engine-level parity test: after
// an incremental update, every kind's estimate — answered from the
// revalidated sketch cache — is identical (same value, same exact bit
// count) to a second engine that ingested the patched matrix through a
// full PutMatrix, for pinned seeds.
func TestUpdateRowsMatchesReupload(t *testing.T) {
	const n = 20
	wire := nonNegMatrix(50, n, 0.3)
	alice := nonNegMatrix(51, n, 0.3)
	seed := uint64(7)

	upd := newTestEngine(t, Config{Shards: 1})
	ref := newTestEngine(t, Config{Shards: 1})
	if _, _, err := upd.PutMatrix("m", wire); err != nil {
		t.Fatal(err)
	}

	kinds := []Request{
		{Matrix: "m", Kind: "lp", P: 1, Eps: 0.4, A: alice, Seed: &seed},
		{Matrix: "m", Kind: "l0sample", Eps: 0.5, A: alice, Seed: &seed},
		{Matrix: "m", Kind: "l1sample", A: alice, Seed: &seed},
		{Matrix: "m", Kind: "exact", A: alice, Seed: &seed},
		{Matrix: "m", Kind: "hh", Phi: 0.3, Eps: 0.15, A: alice, Seed: &seed},
	}
	// Warm the updating engine's cache on the pre-update matrix so the
	// post-update answers exercise the revalidation path, not a cold
	// rebuild.
	for _, req := range kinds {
		if _, err := upd.Estimate(context.Background(), req); err != nil {
			t.Fatalf("warm %s: %v", req.Kind, err)
		}
	}

	rnd := rand.New(rand.NewSource(52))
	ups := []RowUpdate{randRowPatch(rnd, 4, n, true), randRowPatch(rnd, 11, n, true)}
	rep, err := upd.UpdateRows("m", UpdateRequest{Updates: ups})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sub != 1 || rep.RowsApplied != 2 {
		t.Fatalf("update reply: sub %d rows %d, want 1 and 2", rep.Sub, rep.RowsApplied)
	}
	if rep.CacheRefreshed == 0 {
		t.Fatal("no cached states were revalidated")
	}
	if _, _, err := ref.PutMatrix("m", patchedWire(wire, ups)); err != nil {
		t.Fatal(err)
	}

	pre := upd.Stats().Cache
	for _, req := range kinds {
		got, err := upd.Estimate(context.Background(), req)
		if err != nil {
			t.Fatalf("updated %s: %v", req.Kind, err)
		}
		want, err := ref.Estimate(context.Background(), req)
		if err != nil {
			t.Fatalf("reuploaded %s: %v", req.Kind, err)
		}
		if got.Estimate != want.Estimate || got.I != want.I || got.J != want.J || got.Witness != want.Witness {
			t.Errorf("%s: updated answer %+v diverged from reupload %+v", req.Kind, got, want)
		}
		if got.Bits != want.Bits || got.Rounds != want.Rounds {
			t.Errorf("%s: updated cost %d bits/%d rounds, reupload %d/%d", req.Kind, got.Bits, got.Rounds, want.Bits, want.Rounds)
		}
	}
	post := upd.Stats().Cache
	if post.Misses != pre.Misses {
		t.Errorf("post-update queries missed the cache %d times; revalidation should have kept it warm", post.Misses-pre.Misses)
	}
	if post.Hits != pre.Hits+int64(len(kinds)) {
		t.Errorf("post-update hits %d, want %d", post.Hits-pre.Hits, len(kinds))
	}
	ru := upd.Stats().RowUpdates
	if ru.Requests != 1 || ru.Rows != 2 || ru.StatesRefreshed == 0 {
		t.Errorf("row-update stats %+v not recorded", ru)
	}
}

// TestUpdateRowsBinaryKinds covers the bit-form maintenance: a binary
// matrix stays binary across an update (patched bit rows, linf answers
// match a reupload) and loses its ℓ∞ eligibility when an update makes
// it non-binary.
func TestUpdateRowsBinaryKinds(t *testing.T) {
	const n = 20
	wire := MatrixFromBool(workload.Binary(60, n, n, 0.3))
	alice := MatrixFromBool(workload.Binary(61, n, n, 0.3))
	seed := uint64(9)

	upd := newTestEngine(t, Config{Shards: 1})
	ref := newTestEngine(t, Config{Shards: 1})
	if _, _, err := upd.PutMatrix("b", wire); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"linf", "linfkappa"} {
		req := Request{Matrix: "b", Kind: kind, Eps: 0.5, Kappa: 4, A: alice, Seed: &seed}
		if _, err := upd.Estimate(context.Background(), req); err != nil {
			t.Fatalf("warm %s: %v", kind, err)
		}
	}

	ups := []RowUpdate{{Row: 3, Entries: [][2]int64{{0, 1}, {5, 1}, {17, 1}}}}
	rep, err := upd.UpdateRows("b", UpdateRequest{Updates: ups})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Binary {
		t.Fatal("0/1 update lost the binary flag")
	}
	if rep.CacheRefreshed < 2 {
		t.Fatalf("ℓ∞ states not revalidated: %+v", rep)
	}
	if _, _, err := ref.PutMatrix("b", patchedWire(wire, ups)); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"linf", "linfkappa"} {
		req := Request{Matrix: "b", Kind: kind, Eps: 0.5, Kappa: 4, A: alice, Seed: &seed}
		got, err := upd.Estimate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Estimate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if got.Estimate != want.Estimate || got.Bits != want.Bits {
			t.Errorf("%s: updated %v/%d bits, reupload %v/%d bits", kind, got.Estimate, got.Bits, want.Estimate, want.Bits)
		}
	}

	// Now break binarity: the ℓ∞ states must be dropped and the kind
	// must start rejecting.
	rep, err = upd.UpdateRows("b", UpdateRequest{Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{0, 5}}}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Binary {
		t.Fatal("value-5 update kept the binary flag")
	}
	if rep.CacheDropped == 0 {
		t.Fatal("ℓ∞ states survived a binarity-breaking update")
	}
	req := Request{Matrix: "b", Kind: "linf", Eps: 0.5, A: alice, Seed: &seed}
	if _, err := upd.Estimate(context.Background(), req); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("linf against non-binary matrix: got %v, want ErrBadRequest", err)
	}
}

// TestUpdateRowsSignTransition pins the non-negative kinds across a
// sign-breaking update: their cached states are dropped and the kinds
// reject, exactly as they would against a fresh upload of the signed
// matrix.
func TestUpdateRowsSignTransition(t *testing.T) {
	const n = 16
	e := newTestEngine(t, Config{Shards: 1})
	if _, _, err := e.PutMatrix("m", nonNegMatrix(70, n, 0.3)); err != nil {
		t.Fatal(err)
	}
	alice := nonNegMatrix(71, n, 0.3)
	seed := uint64(3)
	if _, err := e.Estimate(context.Background(), Request{Matrix: "m", Kind: "exact", A: alice, Seed: &seed}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.UpdateRows("m", UpdateRequest{Updates: []RowUpdate{{Row: 2, Entries: [][2]int64{{1, -4}}}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonNeg {
		t.Fatal("negative update kept the non-negative flag")
	}
	if rep.CacheDropped == 0 {
		t.Fatal("exact state survived a sign-breaking update")
	}
	if _, err := e.Estimate(context.Background(), Request{Matrix: "m", Kind: "exact", A: alice, Seed: &seed}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("exact against signed matrix: got %v, want ErrBadRequest", err)
	}
}

// TestUpdateRowsDeltaAndShorthand covers delta mode and the
// single-patch shorthand body.
func TestUpdateRowsDeltaAndShorthand(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	wire := Matrix{Rows: 4, Cols: 4, Entries: [][3]int64{{0, 0, 2}, {1, 1, 3}, {2, 2, 1}}}
	if _, _, err := e.PutMatrix("m", wire); err != nil {
		t.Fatal(err)
	}
	row := 1
	// Delta: (1,1) 3 → 5, (1,2) 0 → 7.
	rep, err := e.UpdateRows("m", UpdateRequest{Row: &row, Entries: [][2]int64{{1, 2}, {2, 7}}, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NNZ != 4 {
		t.Fatalf("NNZ after delta = %d, want 4", rep.NNZ)
	}
	// Delta cancelling a cell to zero: (1,1) 5 → 0.
	rep, err = e.UpdateRows("m", UpdateRequest{Row: &row, Entries: [][2]int64{{1, -5}}, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NNZ != 3 {
		t.Fatalf("NNZ after cancelling delta = %d, want 3", rep.NNZ)
	}
	if rep.Sub != 2 {
		t.Fatalf("sub-version %d after two updates, want 2", rep.Sub)
	}
	// Exact check through the protocol: C = A·B with A = identity and
	// B's row 1 now (0, 0, 7, 0): ‖AB‖1 = 2+7+1 = 10.
	ident := Matrix{Rows: 4, Cols: 4, Entries: [][3]int64{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1}}}
	res, err := e.Estimate(context.Background(), Request{Matrix: "m", Kind: "exact", A: ident})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 10 {
		t.Fatalf("exact after deltas = %v, want 10", res.Estimate)
	}
}

// TestUpdateRowsValidationAndErrors covers the request-validation
// surface and the conflict primitive.
func TestUpdateRowsValidationAndErrors(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1})
	if _, _, err := e.PutMatrix("m", nonNegMatrix(80, 8, 0.3)); err != nil {
		t.Fatal(err)
	}
	row := 1
	cases := []struct {
		name string
		req  UpdateRequest
		want error
	}{
		{"empty", UpdateRequest{}, ErrBadRequest},
		{"dup-row", UpdateRequest{Updates: []RowUpdate{{Row: 1}, {Row: 1}}}, ErrBadRequest},
		{"dup-row-shorthand", UpdateRequest{Updates: []RowUpdate{{Row: 1}}, Row: &row}, ErrBadRequest},
		{"row-high", UpdateRequest{Updates: []RowUpdate{{Row: 8}}}, ErrBadRequest},
		{"row-negative", UpdateRequest{Updates: []RowUpdate{{Row: -1}}}, ErrBadRequest},
		{"col-high", UpdateRequest{Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{8, 1}}}}}, ErrBadRequest},
		{"col-negative", UpdateRequest{Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{-1, 1}}}}}, ErrBadRequest},
		{"dup-col", UpdateRequest{Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{2, 1}, {2, 2}}}}}, ErrBadRequest},
	}
	for _, tc := range cases {
		if _, err := e.UpdateRows("m", tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := e.UpdateRows("nope", UpdateRequest{Updates: []RowUpdate{{Row: 0}}}); !errors.Is(err, ErrMatrixNotFound) {
		t.Errorf("unknown matrix: got %v", err)
	}
	if got := e.Stats().RowUpdates; got.Errors != int64(len(cases))+1 {
		t.Errorf("error counter %d, want %d", got.Errors, len(cases)+1)
	}

	// The conflict primitive: replaceIf refuses once the entry changed.
	sm, _ := e.reg.get("m")
	if _, _, err := e.PutMatrix("m", nonNegMatrix(81, 8, 0.3)); err != nil {
		t.Fatal(err)
	}
	if e.reg.replaceIf("m", sm, sm) {
		t.Fatal("replaceIf accepted a stale predecessor")
	}

	e.Close()
	if _, err := e.UpdateRows("m", UpdateRequest{Updates: []RowUpdate{{Row: 0}}}); !errors.Is(err, ErrClosed) {
		t.Errorf("closed engine: got %v", err)
	}
}

// fakeState is a trivially sized bobState for cache-unit tests.
type fakeState struct{ n int64 }

func (f fakeState) Bytes() int64 { return f.n }

// TestSketchCacheRefreshMatrix unit-tests the revalidation sweep: only
// entries of the named matrix at the expected (gen, sub) are advanced;
// stale generations/sub-versions and failed advances are dropped;
// other matrices' entries are untouched.
func TestSketchCacheRefreshMatrix(t *testing.T) {
	c := newSketchCache(16, -1)
	k := func(m string, gen, sub uint64, kind string) cacheKey {
		return cacheKey{matrix: m, gen: gen, sub: sub, kind: kind}
	}
	c.put(k("m", 1, 0, "lp"), fakeState{1})
	c.put(k("m", 1, 0, "exact"), fakeState{2})
	c.put(k("m", 1, 0, "linf"), fakeState{3}) // advance will fail
	c.put(k("m", 0, 0, "lp"), fakeState{4})   // stale generation
	c.put(k("m", 1, 9, "lp"), fakeState{5})   // stale sub-version
	c.put(k("m", 1, 1, "hh"), fakeState{7})   // fresh build already at the new sub
	c.put(k("m", 1, 0, "hh"), fakeState{8})   // migration collides with it
	c.put(k("other", 1, 0, "lp"), fakeState{6})

	refreshed, dropped := c.refreshMatrix("m", 1, 0, 1, func(st bobState) (bobState, bool) {
		if st.(fakeState).n == 3 {
			return nil, false
		}
		return fakeState{st.(fakeState).n + 100}, true
	})
	if refreshed != 2 || dropped != 4 {
		t.Fatalf("refreshed %d dropped %d, want 2 and 4", refreshed, dropped)
	}
	// The concurrent fresh build at the new sub-version survives intact
	// and the colliding migration was dropped, not orphaned.
	if st, ok := c.tickAndGet(k("m", 1, 1, "hh")); !ok || st.(fakeState).n != 7 {
		t.Fatalf("fresh new-sub entry lost: %v %v", st, ok)
	}
	if c.lru.Len() != len(c.m) {
		t.Fatalf("LRU list (%d) and map (%d) diverged — orphaned element", c.lru.Len(), len(c.m))
	}
	if st, ok := c.tickAndGet(k("m", 1, 1, "lp")); !ok || st.(fakeState).n != 101 {
		t.Fatalf("lp entry not migrated: %v %v", st, ok)
	}
	if st, ok := c.tickAndGet(k("m", 1, 1, "exact")); !ok || st.(fakeState).n != 102 {
		t.Fatalf("exact entry not migrated: %v %v", st, ok)
	}
	for _, stale := range []cacheKey{
		k("m", 1, 0, "lp"), k("m", 1, 0, "linf"), k("m", 0, 0, "lp"), k("m", 1, 9, "lp"), k("m", 1, 1, "linf"),
	} {
		if _, ok := c.tickAndGet(stale); ok {
			t.Fatalf("stale entry survived: %+v", stale)
		}
	}
	if st, ok := c.tickAndGet(k("other", 1, 0, "lp")); !ok || st.(fakeState).n != 6 {
		t.Fatal("unrelated matrix's entry was touched")
	}
}

// TestUpdateRowsHTTP drives the PATCH route end to end through the
// typed client, including the error statuses.
func TestUpdateRowsHTTP(t *testing.T) {
	_, client := newTestServer(t, Config{Shards: 1})
	ctx := context.Background()
	if _, err := client.UploadMatrix(ctx, "m", nonNegMatrix(90, 8, 0.3)); err != nil {
		t.Fatal(err)
	}
	rep, err := client.ReplaceRow(ctx, "m", 2, [][2]int64{{0, 3}, {4, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sub != 1 || rep.RowsApplied != 1 {
		t.Fatalf("reply %+v", rep)
	}
	var apiErr *APIError
	if _, err := client.ReplaceRow(ctx, "m", 99, nil); !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("out-of-range row over HTTP: %v", err)
	}
	if _, err := client.ReplaceRow(ctx, "ghost", 0, nil); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("unknown matrix over HTTP: %v", err)
	}
}

// TestUpdateRowsConcurrentChurn hammers one matrix with concurrent
// updates, estimates, and full replacements under the race detector:
// every estimate must succeed or fail with a recognized condition
// (never a protocol corruption), and the engine must stay consistent.
func TestUpdateRowsConcurrentChurn(t *testing.T) {
	const n = 12
	e := newTestEngine(t, Config{Workers: 8, Shards: 2})
	if _, _, err := e.PutMatrix("m", nonNegMatrix(100, n, 0.3)); err != nil {
		t.Fatal(err)
	}
	alice := nonNegMatrix(101, n, 0.3)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < 30; i++ {
				_, err := e.UpdateRows("m", UpdateRequest{Updates: []RowUpdate{randRowPatch(rnd, rnd.Intn(n), n, true)}})
				if err != nil && !errors.Is(err, ErrConflict) {
					errCh <- fmt.Errorf("update: %w", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, _, err := e.PutMatrix("m", nonNegMatrix(uint64(300+i), n, 0.3)); err != nil {
				errCh <- fmt.Errorf("put: %w", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				kind := []string{"lp", "exact", "l0sample"}[i%3]
				_, err := e.Estimate(context.Background(), Request{Matrix: "m", Kind: kind, P: 1, Eps: 0.5, A: alice})
				if err != nil && !errors.Is(err, ErrOverloaded) {
					errCh <- fmt.Errorf("estimate %s: %w", kind, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
