package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/store/storetest"
)

// openPersistDisk opens a local-disk store for a test engine, failing
// the test on configuration errors.
func openPersistDisk(t *testing.T, dir string, fs store.FS) *store.Disk {
	t.Helper()
	d, err := store.OpenDisk(store.DiskConfig{Dir: dir, Fsync: store.FsyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// persistMutation is one logical state change of the crash-parity
// workload. Every mutation keeps matrix "m" binary and non-negative so
// all seven protocol kinds stay valid against it.
type persistMutation struct {
	name string
	run  func(e *Engine) error
}

func persistWorkload() []persistMutation {
	m0 := testBinaryMatrix(51, 8, 0.5)
	m1 := testBinaryMatrix(52, 8, 0.4)
	upd := func(row int, cols ...int64) UpdateRequest {
		ents := make([][2]int64, len(cols))
		for i, c := range cols {
			ents[i] = [2]int64{c, 1}
		}
		return UpdateRequest{Updates: []RowUpdate{{Row: row, Entries: ents}}}
	}
	return []persistMutation{
		{"put", func(e *Engine) error { _, _, err := e.PutMatrix("m", m0); return err }},
		{"update-1", func(e *Engine) error { _, err := e.UpdateRows("m", upd(1, 0, 3)); return err }},
		{"update-2", func(e *Engine) error { _, err := e.UpdateRows("m", upd(4, 2)); return err }},
		{"replace", func(e *Engine) error { _, _, err := e.PutMatrix("m", m1); return err }},
		{"update-3", func(e *Engine) error { _, err := e.UpdateRows("m", upd(6, 1, 5, 7)); return err }},
	}
}

// persistFingerprint runs every protocol kind against matrix "m" with
// a pinned seed and renders the full answers (sampled witnesses and
// exact costs included, wall-clock excluded) to a comparable string.
// Protocols are seed-deterministic, so two engines serving byte-equal
// Bob state produce equal fingerprints — and only then.
func persistFingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	seed := uint64(424242)
	a := testBinaryMatrix(60, 8, 0.5)
	reqs := []Request{
		{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: a},
		{Matrix: "m", Kind: "l0sample", Eps: 0.5, Seed: &seed, A: a},
		{Matrix: "m", Kind: "l1sample", Seed: &seed, A: a},
		{Matrix: "m", Kind: "exact", Seed: &seed, A: a},
		{Matrix: "m", Kind: "linf", Eps: 0.5, Seed: &seed, A: a},
		{Matrix: "m", Kind: "linfkappa", Kappa: 4, Seed: &seed, A: a},
		{Matrix: "m", Kind: "hh", Phi: 0.3, Eps: 0.15, Seed: &seed, A: a},
	}
	var out string
	for _, req := range reqs {
		res, err := e.Estimate(context.Background(), req)
		if err != nil {
			if errors.Is(err, ErrMatrixNotFound) {
				out += req.Kind + ":absent;"
				continue
			}
			t.Fatalf("%s: %v", req.Kind, err)
		}
		out += fmt.Sprintf("%s:%v/%d/%d/%d/%v/%d/%d;",
			req.Kind, res.Estimate, res.I, res.J, res.Witness, res.Entries, res.Bits, res.Rounds)
	}
	return out
}

// persistReferences fingerprints every prefix of the workload on a
// store-less engine: refs[k] is the observable state after the first k
// mutations. The crash sweep matches recovered engines against these.
func persistReferences(t *testing.T, shards int, muts []persistMutation) []string {
	t.Helper()
	e := NewEngine(Config{Shards: shards})
	defer e.Close()
	refs := make([]string, len(muts)+1)
	refs[0] = persistFingerprint(t, e)
	for i, m := range muts {
		if err := m.run(e); err != nil {
			t.Fatalf("reference %s: %v", m.name, err)
		}
		refs[i+1] = persistFingerprint(t, e)
	}
	return refs
}

// TestCrashRecoveryParity is the service-level crash sweep: the
// workload runs against a disk store whose filesystem is killed at
// every mutating operation (each failure kind), the engine restarts on
// the surviving files, and the recovered state must serve answers
// byte-identical — across all seven protocol kinds, sequential and
// sharded — to a never-crashed engine holding either the state after
// the last acknowledged mutation or, when the in-flight mutation's
// durable write landed before the crash, the state one past it.
func TestCrashRecoveryParity(t *testing.T) {
	for _, shards := range []int{1, 3} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			muts := persistWorkload()
			refs := persistReferences(t, shards, muts)

			// Probe run: count the workload's mutating store operations
			// with the fault point past reach.
			probeFS := storetest.Wrap(store.OSFS{}, storetest.Fault{At: 1 << 30, Kind: storetest.Fail})
			d := openPersistDisk(t, t.TempDir(), probeFS)
			e := NewEngine(Config{Store: d, Shards: shards})
			for _, m := range muts {
				if err := m.run(e); err != nil {
					t.Fatalf("probe %s: %v", m.name, err)
				}
			}
			e.Close()
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			total := probeFS.Ops()
			if total < 15 {
				t.Fatalf("probe counted only %d store ops; the sweep would be vacuous", total)
			}

			// The sequential config sweeps every op; the sharded one
			// re-proves the recovery path on a sparser grid (shard-count
			// parity of the protocols themselves is pinned elsewhere).
			step := 1
			if shards != 1 {
				step = 3
			}
			for _, kind := range []storetest.FaultKind{storetest.Fail, storetest.Torn, storetest.ShortSync} {
				for at := 1; at <= total; at += step {
					dir := t.TempDir()
					ffs := storetest.Wrap(store.OSFS{}, storetest.Fault{At: at, Kind: kind})
					fd := openPersistDisk(t, dir, ffs)
					fe := NewEngine(Config{Store: fd, Shards: shards})
					acked := 0
					for _, m := range muts {
						if err := m.run(fe); err != nil {
							break
						}
						acked++
					}
					fe.Close()
					_ = fd.Close() // the crashed store's final sync may error

					rd := openPersistDisk(t, dir, nil)
					re := NewEngine(Config{Store: rd, Shards: shards})
					got := persistFingerprint(t, re)
					re.Close()
					if err := rd.Close(); err != nil {
						t.Fatal(err)
					}
					ok := got == refs[acked]
					if !ok && acked < len(muts) {
						ok = got == refs[acked+1]
					}
					if !ok {
						t.Fatalf("%v at op %d (acked %d/%d): recovered state matches no reference\n got %s\nwant %s",
							kind, at, acked, len(muts), got, refs[acked])
					}
				}
			}
		})
	}
}

// TestPersistRestartRoundTrip pins the catalog side of recovery: the
// restarted engine re-serves the same matrices with identical info —
// NNZ and flags rescanned from the recovered bytes, upload time read
// back from the snapshot header — and the same estimates.
func TestPersistRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openPersistDisk(t, dir, nil)
	e := NewEngine(Config{Store: d})
	for _, m := range persistWorkload() {
		if err := m.run(e); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
	}
	if _, _, err := e.PutMatrix("other", testMatrix(53, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	want := persistFingerprint(t, e)
	wantInfos := e.Matrices()
	e.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openPersistDisk(t, dir, nil)
	defer d2.Close()
	e2 := NewEngine(Config{Store: d2})
	defer e2.Close()
	if got := persistFingerprint(t, e2); got != want {
		t.Fatalf("recovered fingerprint\n got %s\nwant %s", got, want)
	}
	gotInfos := e2.Matrices()
	if len(gotInfos) != len(wantInfos) {
		t.Fatalf("recovered %d matrices, want %d", len(gotInfos), len(wantInfos))
	}
	byName := make(map[string]MatrixInfo, len(wantInfos))
	for _, mi := range wantInfos {
		byName[mi.Name] = mi
	}
	for _, got := range gotInfos {
		w, ok := byName[got.Name]
		if !ok {
			t.Fatalf("recovered unexpected matrix %q", got.Name)
		}
		if got.Rows != w.Rows || got.Cols != w.Cols || got.NNZ != w.NNZ ||
			got.Binary != w.Binary || got.NonNeg != w.NonNeg ||
			!got.Uploaded.Equal(w.Uploaded) {
			t.Fatalf("recovered info %+v, want %+v", got, w)
		}
	}
	st := e2.Stats().Store
	if st.RecoveredMatrices != 2 || st.RecoveryErrors != 0 {
		t.Fatalf("recovery stats %+v", st)
	}
}

// TestDeleteThenRestartStaysDeleted pins the tombstone ordering: a
// DELETE removes the durable state before the registry entry, so a
// restart cannot resurrect the matrix — not even its WAL residue.
func TestDeleteThenRestartStaysDeleted(t *testing.T) {
	dir := t.TempDir()
	d := openPersistDisk(t, dir, nil)
	e := NewEngine(Config{Store: d})
	for _, m := range persistWorkload() {
		if err := m.run(e); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
	}
	if _, _, err := e.PutMatrix("keep", testBinaryMatrix(54, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteMatrix("m"); err != nil {
		t.Fatal(err)
	}
	if ts := e.Stats().Store.Tombstones; ts != 1 {
		t.Fatalf("tombstones = %d, want 1", ts)
	}
	e.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openPersistDisk(t, dir, nil)
	defer d2.Close()
	e2 := NewEngine(Config{Store: d2})
	defer e2.Close()
	infos := e2.Matrices()
	if len(infos) != 1 || infos[0].Name != "keep" {
		t.Fatalf("recovered %+v, want only \"keep\"", infos)
	}
}

// TestEvictThenRestartStaysEvicted pins the LRU-eviction tombstones: a
// matrix the registry evicted must not come back on restart, or a
// bounded registry would recover over capacity.
func TestEvictThenRestartStaysEvicted(t *testing.T) {
	dir := t.TempDir()
	d := openPersistDisk(t, dir, nil)
	e := NewEngine(Config{Store: d, MaxMatrices: 2})
	var evicted []string
	for i, name := range []string{"a", "b", "c"} {
		_, ev, err := e.PutMatrix(name, testBinaryMatrix(uint64(55+i), 8, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		evicted = append(evicted, ev...)
	}
	if len(evicted) != 1 {
		t.Fatalf("evicted %v, want one name", evicted)
	}
	if ts := e.Stats().Store.Tombstones; ts != 1 {
		t.Fatalf("tombstones = %d, want 1", ts)
	}
	survivors := make(map[string]bool)
	for _, mi := range e.Matrices() {
		survivors[mi.Name] = true
	}
	e.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openPersistDisk(t, dir, nil)
	defer d2.Close()
	e2 := NewEngine(Config{Store: d2, MaxMatrices: 2})
	defer e2.Close()
	infos := e2.Matrices()
	if len(infos) != 2 {
		t.Fatalf("recovered %d matrices, want 2", len(infos))
	}
	for _, mi := range infos {
		if mi.Name == evicted[0] {
			t.Fatalf("evicted matrix %q resurrected", evicted[0])
		}
		if !survivors[mi.Name] {
			t.Fatalf("recovered unexpected matrix %q", mi.Name)
		}
	}
}

// TestCompactionBoundsWAL exercises the background compactor: once the
// WAL passes SnapshotEvery records the matrix is re-snapshotted and
// the covered log truncated, so recovery replays a bounded suffix —
// and the compacted state still recovers byte-identical.
func TestCompactionBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	d := openPersistDisk(t, dir, nil)
	e := NewEngine(Config{Store: d, SnapshotEvery: 2})
	if _, _, err := e.PutMatrix("m", testBinaryMatrix(57, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		req := UpdateRequest{Updates: []RowUpdate{{Row: i, Entries: [][2]int64{{int64(i), 1}}}}}
		if _, err := e.UpdateRows("m", req); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.Stats().Store
		if st.Compactions >= 1 && st.Backend.WALTruncations >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never ran: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := persistFingerprint(t, e)
	e.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openPersistDisk(t, dir, nil)
	defer d2.Close()
	e2 := NewEngine(Config{Store: d2, SnapshotEvery: 2})
	defer e2.Close()
	if got := persistFingerprint(t, e2); got != want {
		t.Fatalf("compacted recovery\n got %s\nwant %s", got, want)
	}
	st := e2.Stats().Store
	if st.ReplayedRecords > 3 {
		t.Fatalf("replayed %d records after compaction, want ≤ 3", st.ReplayedRecords)
	}
	if st.RecoveredMatrices != 1 || st.RecoveryErrors != 0 {
		t.Fatalf("recovery stats %+v", st)
	}
}

// TestStoreMetricsEndpointE2E extends the /metrics-vs-/stats equality
// contract over the persistence families: every mp_store_* counter
// must equal the store counters the /stats snapshot reports.
func TestStoreMetricsEndpointE2E(t *testing.T) {
	d := openPersistDisk(t, t.TempDir(), nil)
	t.Cleanup(func() { d.Close() })
	srv, client := newTestServer(t, Config{Store: d, SnapshotEvery: 2})
	ctx := context.Background()

	if _, err := client.UploadMatrix(ctx, "m", testBinaryMatrix(58, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.UploadMatrix(ctx, "gone", testBinaryMatrix(59, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.ReplaceRow(ctx, "m", i, [][2]int64{{int64(i), 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.DeleteMatrix(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	// Three WAL records with SnapshotEvery=2 trigger exactly one
	// compaction; wait it out so the counters are quiescent before the
	// equality check.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := client.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Store.Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never ran: %+v", st.Store)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Store.Enabled || st.Store.Snapshots < 3 || st.Store.WALAppends != 3 || st.Store.Tombstones != 1 {
		t.Fatalf("store stats did not track the workload: %+v", st.Store)
	}
	got := scrapeMetrics(t, srv.URL)
	for series, want := range map[string]float64{
		"mp_store_snapshots_total":          float64(st.Store.Snapshots),
		"mp_store_wal_appends_total":        float64(st.Store.WALAppends),
		"mp_store_compactions_total":        float64(st.Store.Compactions),
		"mp_store_tombstones_total":         float64(st.Store.Tombstones),
		"mp_store_errors_total":             float64(st.Store.Errors),
		"mp_store_recovered_matrices_total": float64(st.Store.RecoveredMatrices),
		"mp_store_replayed_records_total":   float64(st.Store.ReplayedRecords),
		"mp_store_recovery_errors_total":    float64(st.Store.RecoveryErrors),
		"mp_store_fsyncs_total":             float64(st.Store.Backend.Fsyncs),
		"mp_store_torn_records_total":       float64(st.Store.Backend.TornRecords),
		"mp_store_snapshot_bytes_total":     float64(st.Store.Backend.SnapshotBytes),
		"mp_store_wal_bytes_total":          float64(st.Store.Backend.WALBytes),
	} {
		if got[series] != want {
			t.Errorf("%s = %v, want %v", series, got[series], want)
		}
	}
}

// TestStoreErrorMapsTo500 pins the error envelope: a write path whose
// durable store fails must answer 500 store_error, and the in-memory
// state must stay unchanged (the operation was not applied).
func TestStoreErrorMapsTo500(t *testing.T) {
	ffs := storetest.Wrap(store.OSFS{}, storetest.Fault{At: 1, Kind: storetest.Fail})
	d := openPersistDisk(t, t.TempDir(), ffs)
	t.Cleanup(func() { d.Close() })
	_, client := newTestServer(t, Config{Store: d})
	ctx := context.Background()

	_, err := client.UploadMatrix(ctx, "m", testBinaryMatrix(61, 8, 0.5))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 500 || apiErr.Code != "store_error" {
		t.Fatalf("upload with dead store: err=%v, want 500 store_error", err)
	}
	if infos, err := client.Matrices(ctx); err != nil || len(infos) != 0 {
		t.Fatalf("failed install leaked into the registry: %v %v", infos, err)
	}
}

// TestRecoverySkipsCorruptState: recovery serves every matrix whose
// durable state validates and skips (counting a recovery error) what
// does not — an undecodable snapshot loses only that matrix, a garbage
// or gapped WAL record ends only that matrix's replay at the valid
// prefix.
func TestRecoverySkipsCorruptState(t *testing.T) {
	dir := t.TempDir()
	d := openPersistDisk(t, dir, nil)
	e := NewEngine(Config{Store: d})
	if _, _, err := e.PutMatrix("good", testBinaryMatrix(70, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.PutMatrix("torn", testBinaryMatrix(71, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	d.Close()

	// Corrupt the durable state out-of-band: an undecodable snapshot for
	// a third matrix, a garbage WAL record on "torn", a sequence gap on
	// "good".
	d2 := openPersistDisk(t, dir, nil)
	if err := d2.SaveSnapshot("bad", store.Snapshot{Epoch: 1, Payload: []byte("not a snapshot")}); err != nil {
		t.Fatal(err)
	}
	tornSnap, _, err := d2.Load("torn")
	if err != nil || tornSnap == nil {
		t.Fatalf("load torn: %v, %v", tornSnap, err)
	}
	if err := d2.AppendWAL("torn", store.Record{Epoch: tornSnap.Epoch, Seq: tornSnap.Seq + 1, Payload: []byte("junk")}); err != nil {
		t.Fatal(err)
	}
	goodSnap, _, err := d2.Load("good")
	if err != nil || goodSnap == nil {
		t.Fatalf("load good: %v, %v", goodSnap, err)
	}
	if err := d2.AppendWAL("good", store.Record{Epoch: goodSnap.Epoch, Seq: goodSnap.Seq + 5, Payload: []byte("gap")}); err != nil {
		t.Fatal(err)
	}
	d2.Close()

	d3 := openPersistDisk(t, dir, nil)
	defer d3.Close()
	e2 := NewEngine(Config{Store: d3})
	defer e2.Close()
	st := e2.Stats().Store
	if st.RecoveredMatrices != 2 {
		t.Errorf("recovered %d matrices, want 2 (good, torn)", st.RecoveredMatrices)
	}
	if st.RecoveryErrors != 3 {
		t.Errorf("recovery errors = %d, want 3 (bad snapshot, junk record, gapped record)", st.RecoveryErrors)
	}
	var names []string
	for _, mi := range e2.Matrices() {
		names = append(names, mi.Name)
	}
	if len(names) != 2 {
		t.Fatalf("recovered set = %v, want good+torn only", names)
	}
	for _, name := range names {
		if name != "good" && name != "torn" {
			t.Fatalf("unexpected recovered matrix %q", name)
		}
	}
}

// TestDecodeMatrixSnapshotRejectsShort pins the decoder's framing
// check: a payload shorter than the timestamp header is corruption,
// not a zero matrix.
func TestDecodeMatrixSnapshotRejectsShort(t *testing.T) {
	if _, _, err := DecodeMatrixSnapshot([]byte("short")); err == nil {
		t.Fatal("DecodeMatrixSnapshot accepted a truncated payload")
	}
}

// TestCompactOneSkipsStaleTriggers drives the compactor directly at
// its guard branches: a trigger for an absent name is a no-op, a
// trigger for a live matrix compacts it, and a trigger surviving past
// the matrix's deletion is skipped rather than resurrecting state.
func TestCompactOneSkipsStaleTriggers(t *testing.T) {
	d := openPersistDisk(t, t.TempDir(), nil)
	defer d.Close()
	e := NewEngine(Config{Store: d, SnapshotEvery: -1})
	defer e.Close()
	if _, _, err := e.PutMatrix("m", testBinaryMatrix(72, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	e.compactOne("nope")
	if got := e.Stats().Store.Compactions; got != 0 {
		t.Fatalf("compacting an absent name did %d compactions", got)
	}
	e.compactOne("m")
	if got := e.Stats().Store.Compactions; got != 1 {
		t.Fatalf("compacting a live matrix did %d compactions, want 1", got)
	}
	if err := e.DeleteMatrix("m"); err != nil {
		t.Fatal(err)
	}
	e.compactOne("m")
	if got := e.Stats().Store.Compactions; got != 1 {
		t.Fatalf("a stale trigger after delete compacted (total %d)", got)
	}
}

// TestStoreErrorOnDeleteKeepsMatrix pins the tombstone-before-removal
// ordering's failure half: when the durable tombstone cannot be
// written, DELETE fails with ErrStore and the matrix stays served —
// the alternative (removed from memory, resurrected by the next
// restart) would un-delete data the client was told was gone. Evicted
// matrices' tombstones are best-effort by design (the eviction already
// happened), so those only count errors.
func TestStoreErrorOnDeleteKeepsMatrix(t *testing.T) {
	d := openPersistDisk(t, t.TempDir(), nil)
	e := NewEngine(Config{Store: d, MaxMatrices: 2})
	defer e.Close()
	if _, _, err := e.PutMatrix("a", testBinaryMatrix(73, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.PutMatrix("b", testBinaryMatrix(74, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	d.Close() // every store call from here on fails

	if err := e.DeleteMatrix("a"); !errors.Is(err, ErrStore) {
		t.Fatalf("delete with failing store = %v, want ErrStore", err)
	}
	if len(e.Matrices()) != 2 {
		t.Fatalf("failed delete removed the matrix anyway: %v", e.Matrices())
	}
	if got := e.Stats().Store.Errors; got == 0 {
		t.Fatal("failed tombstone not counted as a store error")
	}
}
