package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// gatedTransport blocks every Send until the gate closes — a stand-in
// for a protocol stalled on a slow peer.
type gatedTransport struct {
	comm.Transport
	gate <-chan struct{}
}

func (g *gatedTransport) Send(dir comm.Direction, msg *comm.Message) *comm.Message {
	<-g.gate
	return g.Transport.Send(dir, msg)
}

// gatedFactory wraps InProcess so Alice's first message stalls until
// the job is aborted (cleanup closes the gate).
func gatedFactory() (TransportFactory, chan struct{}) {
	gate := make(chan struct{})
	var once sync.Once
	factory := func() (core.Endpoint, core.Endpoint, func(), error) {
		alice, bob, cleanup, err := InProcess()
		if err != nil {
			return core.Endpoint{}, core.Endpoint{}, nil, err
		}
		alice.T = &gatedTransport{Transport: alice.T, gate: gate}
		return alice, bob, func() {
			once.Do(func() { close(gate) })
			cleanup()
		}, nil
	}
	return factory, gate
}

func TestEstimateHonorsContext(t *testing.T) {
	t.Run("pre-cancelled fast path", func(t *testing.T) {
		e := newTestEngine(t, Config{})
		if _, _, err := e.PutMatrix("b", testMatrix(150, 8, 0.5)); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		// Workers are all free, so the fast admission path is taken; it
		// must still honor the already-cancelled context.
		if _, err := e.Estimate(ctx, Request{Matrix: "b", Kind: "lp", P: 1, A: testMatrix(151, 8, 0.5)}); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-cancelled estimate: %v, want context.Canceled", err)
		}
		if got := e.Stats().Requests; got != 0 {
			t.Fatalf("cancelled-before-start query recorded %d requests", got)
		}
	})

	t.Run("mid-run cancellation aborts the job", func(t *testing.T) {
		factory, _ := gatedFactory()
		e := newTestEngine(t, Config{Workers: 1, Transport: factory})
		if _, _, err := e.PutMatrix("b", testMatrix(152, 8, 0.5)); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		done := make(chan error, 1)
		go func() {
			_, err := e.Estimate(ctx, Request{Matrix: "b", Kind: "lp", P: 1, A: testMatrix(153, 8, 0.5)})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-run cancel: %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled job never returned: worker still burning")
		}
		// The single worker slot must have been released: a follow-up
		// query (the gate is closed now, so it runs through) succeeds.
		if _, err := e.Estimate(context.Background(), Request{Matrix: "b", Kind: "lp", P: 1, A: testMatrix(153, 8, 0.5)}); err != nil {
			t.Fatalf("worker slot leaked after cancellation: %v", err)
		}
	})
}

func TestEstimateBatch(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, _, err := e.PutMatrix("b", testBinaryMatrix(160, 16, 0.4)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seed := uint64(161)
	a := testBinaryMatrix(162, 16, 0.4)
	reqs := []Request{
		{Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: a},
		{Matrix: "b", Kind: "exact", A: a},
		{Matrix: "nope", Kind: "lp", A: a}, // per-query failure
		{Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: a},
	}
	items, err := e.EstimateBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(reqs) {
		t.Fatalf("%d items for %d queries", len(items), len(reqs))
	}
	if items[0].Result == nil || items[1].Result == nil || items[3].Result == nil {
		t.Fatalf("successful queries missing results: %+v", items)
	}
	if items[2].Error == "" || items[2].Result != nil {
		t.Fatalf("failed query not reported: %+v", items[2])
	}
	// Batch answers match single-query answers for the same seed.
	single, err := e.Estimate(ctx, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Result.Estimate != single.Estimate || items[0].Result.Bits != single.Bits {
		t.Fatalf("batch result %+v != single %+v", items[0].Result, single)
	}
	if items[0].Result.Estimate != items[3].Result.Estimate {
		t.Fatalf("same-seed batch queries diverged: %+v vs %+v", items[0].Result, items[3].Result)
	}

	// Validation failures.
	if _, err := e.EstimateBatch(ctx, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch: %v", err)
	}
	big := make([]Request, e.cfg.MaxBatch+1)
	for i := range big {
		big[i] = reqs[0]
	}
	if _, err := e.EstimateBatch(ctx, big); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized batch: %v", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.EstimateBatch(cancelled, reqs[:1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: %v", err)
	}
}

func TestUploadNNZAndDuplicates(t *testing.T) {
	e := newTestEngine(t, Config{})
	// Explicit zeros are not non-zeros: NNZ comes from the dense form.
	info, _, err := e.PutMatrix("m", Matrix{Rows: 4, Cols: 4, Entries: [][3]int64{
		{0, 0, 2}, {1, 1, 0}, {2, 2, -3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if info.NNZ != 2 {
		t.Fatalf("NNZ = %d, want 2 (explicit zero must not count)", info.NNZ)
	}
	// Duplicate coordinates are rejected, whatever their values.
	for _, entries := range [][][3]int64{
		{{0, 0, 1}, {0, 0, 1}},
		{{1, 2, 0}, {1, 2, 5}},
	} {
		if _, _, err := e.PutMatrix("dup", Matrix{Rows: 4, Cols: 4, Entries: entries}); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("duplicate entries %v accepted: %v", entries, err)
		}
	}
}
