package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// scrapeMetrics fetches GET /metrics, asserts the content type and that
// the body lints clean against the text-format grammar, and returns the
// samples as a map from full series name (labels included) to value.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bad := metrics.LintText(string(body)); len(bad) != 0 {
		t.Fatalf("exposition does not parse: %q", bad)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsEndpointE2E drives traffic through a live HTTP server and
// asserts that GET /metrics reflects it: every counter matches the
// /stats snapshot it mirrors, histograms account for exactly the
// protocol runs, and a second scrape after more traffic moves every
// counter monotonically.
func TestMetricsEndpointE2E(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()

	if _, err := client.UploadMatrix(ctx, "m", testBinaryMatrix(1, 24, 0.3)); err != nil {
		t.Fatal(err)
	}
	estimates := 0
	for i := 0; i < 3; i++ {
		if _, err := client.Estimate(ctx, Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, A: testBinaryMatrix(2, 24, 0.3)}); err != nil {
			t.Fatal(err)
		}
		estimates++
	}
	// A missing-matrix query still passes admission (so it lands in the
	// queue-wait histogram) but runs no protocol.
	if _, err := client.Estimate(ctx, Request{Matrix: "nope", Kind: "lp", A: testBinaryMatrix(2, 24, 0.3)}); err == nil {
		t.Fatal("estimate against missing matrix succeeded")
	}
	estimates++
	// One batch = one admission slot, two protocol runs.
	if _, err := client.EstimateBatch(ctx, []Request{
		{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, A: testBinaryMatrix(3, 24, 0.3)},
		{Matrix: "m", Kind: "exact", A: testBinaryMatrix(3, 24, 0.3)},
	}); err != nil {
		t.Fatal(err)
	}
	admits := estimates + 1

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := scrapeMetrics(t, srv.URL)

	// Every mirrored counter must agree with /stats exactly.
	for kind, ks := range st.PerKind {
		if v := got[fmt.Sprintf(`mp_requests_total{kind=%q,outcome="ok"}`, kind)]; v != float64(ks.Requests-ks.Errors) {
			t.Errorf("requests_total{%s,ok} = %v, want %d", kind, v, ks.Requests-ks.Errors)
		}
		if v := got[fmt.Sprintf(`mp_requests_total{kind=%q,outcome="error"}`, kind)]; v != float64(ks.Errors) {
			t.Errorf("requests_total{%s,error} = %v, want %d", kind, v, ks.Errors)
		}
		if v := got[fmt.Sprintf(`mp_protocol_bits_total{kind=%q}`, kind)]; v != float64(ks.Bits) {
			t.Errorf("protocol_bits_total{%s} = %v, want %d", kind, v, ks.Bits)
		}
	}
	for series, want := range map[string]float64{
		"mp_rejected_total":                     float64(st.Rejected),
		"mp_evictions_total":                    float64(st.Evictions),
		"mp_matrices":                           float64(st.Matrices),
		`mp_cache_lookups_total{result="hit"}`:  float64(st.Cache.Hits),
		`mp_cache_lookups_total{result="miss"}`: float64(st.Cache.Misses),
		"mp_cache_entries":                      float64(st.Cache.Entries),
	} {
		if got[series] != want {
			t.Errorf("%s = %v, want %v", series, got[series], want)
		}
	}
	if got["mp_workers_capacity"] <= 0 || got["mp_queue_capacity"] <= 0 {
		t.Errorf("pool gauges missing: workers_capacity=%v queue_capacity=%v",
			got["mp_workers_capacity"], got["mp_queue_capacity"])
	}

	// The duration histogram holds exactly the protocol runs: every
	// /stats request minus the validation failure that ran no protocol.
	var durCount, durSum float64
	for kind := range Kinds {
		durCount += got[fmt.Sprintf(`mp_request_duration_seconds_count{kind=%q}`, kind)]
		durSum += got[fmt.Sprintf(`mp_request_duration_seconds_sum{kind=%q}`, kind)]
	}
	if want := float64(st.Requests - st.Errors); durCount != want {
		t.Errorf("duration histogram count = %v, want %v (stats requests=%d errors=%d)",
			durCount, want, st.Requests, st.Errors)
	}
	if durCount > 0 && durSum <= 0 {
		t.Errorf("duration histogram sum = %v with count %v", durSum, durCount)
	}
	if inf := got[`mp_request_duration_seconds_bucket{kind="lp",le="+Inf"}`]; inf != got[`mp_request_duration_seconds_count{kind="lp"}`] {
		t.Errorf("+Inf bucket %v != count %v", inf, got[`mp_request_duration_seconds_count{kind="lp"}`])
	}

	// Queue wait: one observation per successful admission — each
	// Estimate call (the missing-matrix one included) plus one batch.
	if v := got["mp_queue_wait_seconds_count"]; v != float64(admits) {
		t.Errorf("queue_wait count = %v, want %d", v, admits)
	}
	// The separate /stats queue-wait percentiles exist alongside (they
	// read as valid durations; near-zero on an idle pool).
	if st.QueueWaitP99 < 0 || st.QueueWaitP50 > st.QueueWaitP99 {
		t.Errorf("queue wait percentiles inconsistent: p50=%v p99=%v", st.QueueWaitP50, st.QueueWaitP99)
	}

	// More traffic, second scrape: counters move and stay monotone.
	if _, err := client.Estimate(ctx, Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, A: testBinaryMatrix(4, 24, 0.3)}); err != nil {
		t.Fatal(err)
	}
	got2 := scrapeMetrics(t, srv.URL)
	for _, series := range []string{
		`mp_requests_total{kind="lp",outcome="ok"}`,
		`mp_request_duration_seconds_count{kind="lp"}`,
		"mp_queue_wait_seconds_count",
	} {
		if got2[series] <= got[series] {
			t.Errorf("%s did not advance: %v -> %v", series, got[series], got2[series])
		}
	}
	for series, v := range got {
		if strings.Contains(series, "_total") || strings.Contains(series, "_count") {
			if got2[series] < v {
				t.Errorf("counter %s went backwards: %v -> %v", series, v, got2[series])
			}
		}
	}
}
