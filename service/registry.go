package service

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/bitmat"
	"repro/internal/intmat"
)

// MatrixInfo describes a served matrix in the registry.
type MatrixInfo struct {
	// Name is the registry name queries address the matrix by.
	Name string `json:"name"`
	// Rows is the matrix row count.
	Rows int `json:"rows"`
	// Cols is the matrix column count.
	Cols int `json:"cols"`
	// NNZ is the number of non-zero entries (computed from the dense
	// form, so explicit zeros in the upload do not count).
	NNZ int `json:"nnz"`
	// Binary reports whether every entry is 0/1, which qualifies the
	// matrix for the ℓ∞ protocols.
	Binary bool `json:"binary"`
	// NonNeg reports whether every entry is ≥ 0, which qualifies the
	// matrix for the exact/l1sample protocols (Remarks 2 and 3).
	NonNeg bool `json:"non_negative"`
	// Uploaded is when the matrix was (last) installed.
	Uploaded time.Time `json:"uploaded"`
}

// servedMatrix is one registry entry: Bob's matrix in the forms the
// protocols need, plus the catalog metadata Alice learns out of band.
// gen is the upload generation of the name — unique per PutMatrix, so
// sketch-cache entries built against a replaced matrix can never serve
// its successor. sub is the generation's sub-version: it advances by
// one per row update (UpdateRows), under which cached states are
// revalidated in place rather than evicted; a full replacement resets
// it with a fresh gen.
type servedMatrix struct {
	info  MatrixInfo
	gen   uint64
	sub   uint64
	dense *intmat.Dense
	bits  *bitmat.Matrix // non-nil iff the matrix is 0/1
	elem  *list.Element
}

// registry is the named-matrix store hosting Bob's side of the service:
// upload B once, query it many times. Capacity is bounded; inserting
// beyond it evicts the least-recently-used matrix (uploads and queries
// both count as use).
type registry struct {
	mu  sync.Mutex
	cap int
	m   map[string]*servedMatrix
	lru *list.List // front = most recently used; values are names
}

func newRegistry(capacity int) *registry {
	return &registry{cap: capacity, m: make(map[string]*servedMatrix), lru: list.New()}
}

// put inserts or replaces a matrix and returns the names evicted to
// make room.
func (r *registry) put(name string, sm *servedMatrix) (evicted []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.m[name]; ok {
		r.lru.Remove(old.elem)
	}
	sm.elem = r.lru.PushFront(name)
	r.m[name] = sm
	for r.lru.Len() > r.cap {
		back := r.lru.Back()
		victim := back.Value.(string)
		r.lru.Remove(back)
		delete(r.m, victim)
		evicted = append(evicted, victim)
	}
	return evicted
}

// get returns the named matrix and marks it most recently used.
func (r *registry) get(name string) (*servedMatrix, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sm, ok := r.m[name]
	if !ok {
		return nil, false
	}
	r.lru.MoveToFront(sm.elem)
	return sm, true
}

// replaceIf swaps the named entry for its updated successor iff the
// stored entry is still the one the update was derived from — the
// compare half of the row-update path's copy-on-write: a concurrent
// PutMatrix (fresh generation) wins and the stale update is discarded
// by the caller. The successor inherits the entry's LRU position and
// is marked most recently used.
func (r *registry) replaceIf(name string, old, repl *servedMatrix) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.m[name]
	if !ok || cur != old {
		return false
	}
	repl.elem = cur.elem
	r.m[name] = repl
	r.lru.MoveToFront(repl.elem)
	return true
}

// peek returns the named matrix without touching its LRU position —
// for background readers (the snapshot compactor) that must not count
// as use.
func (r *registry) peek(name string) (*servedMatrix, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sm, ok := r.m[name]
	return sm, ok
}

// delete removes the named matrix, reporting whether it existed.
func (r *registry) delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	sm, ok := r.m[name]
	if !ok {
		return false
	}
	r.lru.Remove(sm.elem)
	delete(r.m, name)
	return true
}

// infos lists the registry contents in most-recently-used order.
func (r *registry) infos() []MatrixInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MatrixInfo, 0, r.lru.Len())
	for e := r.lru.Front(); e != nil; e = e.Next() {
		out = append(out, r.m[e.Value.(string)].info)
	}
	return out
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}
