package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/workload"
)

// testMatrix is a signed integer matrix (valid for lp/l0sample/hh,
// rejected by the non-negative-only kinds).
func testMatrix(seed uint64, n int, density float64) Matrix {
	return MatrixFromDense(workload.Integer(seed, n, n, density, 3, true))
}

func testBinaryMatrix(seed uint64, n int, density float64) Matrix {
	return MatrixFromBool(workload.Binary(seed, n, n, density))
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	return e
}

func TestRegistryLRUEviction(t *testing.T) {
	e := newTestEngine(t, Config{MaxMatrices: 2})
	for _, name := range []string{"a", "b"} {
		if _, _, err := e.PutMatrix(name, testMatrix(1, 8, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" via a query so "b" becomes least recently used.
	if _, err := e.Estimate(context.Background(), Request{Matrix: "a", Kind: "lp", P: 1, A: testMatrix(2, 8, 0.5)}); err != nil {
		t.Fatal(err)
	}
	_, evicted, err := e.PutMatrix("c", testMatrix(3, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	names := func() []string {
		var out []string
		for _, mi := range e.Matrices() {
			out = append(out, mi.Name)
		}
		return out
	}()
	if len(names) != 2 || names[0] != "c" || names[1] != "a" {
		t.Fatalf("registry = %v, want [c a]", names)
	}
	if e.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", e.Stats().Evictions)
	}
	// Replacing an existing name must not evict.
	if _, evicted, err := e.PutMatrix("c", testMatrix(4, 8, 0.5)); err != nil || len(evicted) != 0 {
		t.Fatalf("replace: evicted=%v err=%v", evicted, err)
	}
}

func TestEstimateKindsEndToEnd(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, _, err := e.PutMatrix("int", testMatrix(10, 24, 0.3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.PutMatrix("bool", testBinaryMatrix(11, 24, 0.3)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []Request{
		{Matrix: "int", Kind: "lp", P: 1, Eps: 0.3, A: testMatrix(12, 24, 0.3)},
		{Matrix: "int", Kind: "lp", P: 0, Eps: 0.4, A: testBinaryMatrix(13, 24, 0.3)},
		{Matrix: "bool", Kind: "l0sample", Eps: 0.5, A: testBinaryMatrix(14, 24, 0.3)},
		{Matrix: "bool", Kind: "l1sample", A: testBinaryMatrix(15, 24, 0.3)},
		{Matrix: "bool", Kind: "exact", A: testBinaryMatrix(16, 24, 0.3)},
		{Matrix: "bool", Kind: "linf", Eps: 0.5, A: testBinaryMatrix(17, 24, 0.3)},
		{Matrix: "bool", Kind: "linfkappa", Kappa: 4, A: testBinaryMatrix(18, 24, 0.3)},
		{Matrix: "bool", Kind: "hh", Phi: 0.3, Eps: 0.15, A: testBinaryMatrix(19, 24, 0.3)},
	}
	for _, req := range cases {
		res, err := e.Estimate(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", req.Kind, err)
		}
		if res.Bits <= 0 || res.Rounds <= 0 {
			t.Fatalf("%s: cost not accounted: %+v", req.Kind, res)
		}
	}
	st := e.Stats()
	if st.Requests != int64(len(cases))+0 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.PerKind["lp"].Requests != 2 {
		t.Fatalf("per-kind lp = %+v", st.PerKind["lp"])
	}
	if st.LatencyP50 <= 0 || st.LatencyP99 < st.LatencyP50 {
		t.Fatalf("latency percentiles %v %v", st.LatencyP50, st.LatencyP99)
	}
}

func TestSeedReproducibilityAndTransportParity(t *testing.T) {
	seed := uint64(99)
	a := testMatrix(20, 32, 0.2)
	run := func(cfg Config) *Result {
		e := newTestEngine(t, cfg)
		if _, _, err := e.PutMatrix("b", testMatrix(21, 32, 0.2)); err != nil {
			t.Fatal(err)
		}
		res, err := e.Estimate(context.Background(), Request{
			Matrix: "b", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: a,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inproc1 := run(Config{Transport: InProcess})
	inproc2 := run(Config{Transport: InProcess})
	tcp := run(Config{Transport: TCPLoopback})
	if inproc1.Estimate != inproc2.Estimate || inproc1.Bits != inproc2.Bits {
		t.Fatalf("same seed, different answers: %+v vs %+v", inproc1, inproc2)
	}
	if tcp.Estimate != inproc1.Estimate {
		t.Fatalf("TCP estimate %v != in-process %v", tcp.Estimate, inproc1.Estimate)
	}
	if tcp.Bits != inproc1.Bits || tcp.Rounds != inproc1.Rounds {
		t.Fatalf("TCP cost (%d, %d) != in-process (%d, %d)",
			tcp.Bits, tcp.Rounds, inproc1.Bits, inproc1.Rounds)
	}
}

func TestConcurrentQueries(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4, QueueDepth: 256})
	if _, _, err := e.PutMatrix("b", testBinaryMatrix(30, 24, 0.3)); err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := testMatrix(uint64(100+i), 24, 0.3)
			for j := 0; j < 4; j++ {
				kind := []string{"lp", "l0sample", "exact", "l1sample"}[j%4]
				req := Request{Matrix: "b", Kind: kind, P: 1, Eps: 0.4, A: a}
				if kind == "exact" || kind == "l1sample" {
					req.A = testBinaryMatrix(uint64(100+i), 24, 0.3)
				}
				if _, err := e.Estimate(context.Background(), req); err != nil && !errors.Is(err, ErrOverloaded) {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.Stats().Requests; got == 0 {
		t.Fatal("no requests recorded")
	}
}

func TestBadRequests(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, _, err := e.PutMatrix("b", testMatrix(40, 16, 0.3)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"unknown matrix", Request{Matrix: "nope", Kind: "lp", A: testMatrix(41, 16, 0.3)}, ErrMatrixNotFound},
		{"unknown kind", Request{Matrix: "b", Kind: "median", A: testMatrix(41, 16, 0.3)}, ErrBadRequest},
		{"dimension mismatch", Request{Matrix: "b", Kind: "lp", A: testMatrix(41, 8, 0.3)}, ErrBadRequest},
		{"bad p", Request{Matrix: "b", Kind: "lp", P: 7, A: testMatrix(41, 16, 0.3)}, ErrBadRequest},
		{"linf on integer matrix", Request{Matrix: "b", Kind: "linf", A: testBinaryMatrix(41, 16, 0.3)}, ErrBadRequest},
		{"exact on signed matrix", Request{Matrix: "b", Kind: "exact", A: testBinaryMatrix(41, 16, 0.3)}, ErrBadRequest},
		{"out-of-range entry", Request{Matrix: "b", Kind: "lp", A: Matrix{Rows: 16, Cols: 16, Entries: [][3]int64{{20, 0, 1}}}}, ErrBadRequest},
		{"hh phi < eps", Request{Matrix: "b", Kind: "hh", Phi: 0.1, Eps: 0.5, A: testMatrix(41, 16, 0.3)}, ErrBadRequest},
	}
	for _, tc := range cases {
		if _, err := e.Estimate(ctx, tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: err=%v, want %v", tc.name, err, tc.want)
		}
	}
	// Bad uploads.
	if _, _, err := e.PutMatrix("", testMatrix(42, 4, 0.5)); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty name: %v", err)
	}
	if _, _, err := e.PutMatrix("x", Matrix{Rows: -1, Cols: 4}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative rows: %v", err)
	}
	// Errors are visible in stats (only the protocol-level ones count as
	// requests; admission/validation failures before dispatch do not).
	if st := e.Stats(); st.Errors == 0 {
		t.Errorf("stats should record protocol errors: %+v", st)
	}
}

func TestClosedEngineRejects(t *testing.T) {
	e := NewEngine(Config{})
	if _, _, err := e.PutMatrix("b", testMatrix(50, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Estimate(context.Background(), Request{Matrix: "b", Kind: "lp", A: testMatrix(51, 8, 0.5)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("estimate after close: %v", err)
	}
	if _, _, err := e.PutMatrix("c", testMatrix(52, 8, 0.5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("upload after close: %v", err)
	}
	e.Close() // idempotent
}

func TestDeleteMatrix(t *testing.T) {
	e := newTestEngine(t, Config{})
	if _, _, err := e.PutMatrix("b", testMatrix(60, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteMatrix("b"); err != nil {
		t.Fatal(err)
	}
	if err := e.DeleteMatrix("b"); !errors.Is(err, ErrMatrixNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}
