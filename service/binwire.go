package service

// Binary hot-path wire format. The protocol transcripts are already
// framed binary (comm.NetConn); this codec extends the same economy to
// the HTTP hop for the hot endpoints (/estimate, /estimate/batch,
// PATCH /matrices/{name}/rows, and the gateway's replica re-seed
// uploads), where the JSON envelope otherwise dominates both bytes and
// allocations around a sketch that is tiny by design.
//
// Frame layout (see docs/API.md "Wire format"):
//
//	'M' 'P' version(1) tag(1) payload…
//
// The payload is a field-by-field encoding using unsigned varints
// (encoding/binary Uvarint), zigzag varints for signed integers,
// fixed 8-byte little-endian IEEE 754 for floats, and length-prefixed
// strings. Slices encode nil-awareness as uvarint(len+1) with 0
// meaning a nil slice, so decode(encode(v)) reproduces v exactly —
// the property the fuzz oracle pins. Matrix entries get two payload
// forms selected by a flag byte: order-preserving delta-coded sparse
// triples, or a row-major bitset when the matrix is a canonical
// Boolean wire form (what MatrixFromBool emits) and the bitset is
// smaller — the join workloads ship 0/1 matrices whose triples waste
// ~24× the information content.
//
// Every encode and decode runs through sync.Pool-pooled buffers; the
// O(nnz) inner loops write into pre-sized spans and carry
// //mp:hotpath so mpvet enforces the zero-alloc contract mechanically.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
	"time"
)

// MediaTypeBinary is the content type of the binary hot-path wire
// format, negotiated via Content-Type (requests) and Accept
// (responses). JSON remains the compatibility default.
const MediaTypeBinary = "application/x-mp-binary"

const (
	binMagic0  = 'M'
	binMagic1  = 'P'
	binVersion = 1
)

// Type tags, one per binary-encodable API type. The tag byte makes a
// frame self-describing: a decoder handed the wrong type fails cleanly
// instead of misparsing.
const (
	tagMatrix byte = iota + 1
	tagRequest
	tagResult
	tagBatchRequest
	tagBatchResponse
	tagUpdateRequest
	tagUpdateReply
	tagUploadReply
)

// errBinWire is the generic malformed-frame error; decodeBinary wraps
// it with the frame's tag context.
var errBinWire = errors.New("malformed binary frame")

// wireBuf is a pooled encode/decode buffer. Both tiers (service
// handlers and the client, hence also the gateway's backend clients)
// draw from one pool, so steady-state hot-path traffic encodes and
// decodes without per-request buffer allocations.
type wireBuf struct{ b []byte }

// maxPooledWireBuf caps the capacity returned to the pool: a single
// huge upload body must not pin hundreds of megabytes forever.
const maxPooledWireBuf = 4 << 20

var wireBufPool = sync.Pool{New: func() any { return &wireBuf{b: make([]byte, 0, 4096)} }}

func getWireBuf() *wireBuf { return wireBufPool.Get().(*wireBuf) }

func putWireBuf(w *wireBuf) {
	if cap(w.b) > maxPooledWireBuf {
		return
	}
	w.b = w.b[:0]
	wireBufPool.Put(w)
}

// BinaryEncodable reports whether v (a value or pointer of an API
// type) has a binary wire form. Types without one fall back to JSON
// under content negotiation.
func BinaryEncodable(v any) bool {
	switch v.(type) {
	case Matrix, *Matrix, Request, *Request, Result, *Result,
		BatchRequest, *BatchRequest, BatchResponse, *BatchResponse,
		UpdateRequest, *UpdateRequest, UpdateReply, *UpdateReply,
		UploadReply, *UploadReply:
		return true
	}
	return false
}

// AppendBinary appends the framed binary encoding of v to dst,
// returning the extended slice. Types without a binary form (see
// BinaryEncodable) are an error. Encoding never fails for encodable
// types, so the append-style signature composes with pooled buffers.
func AppendBinary(dst []byte, v any) ([]byte, error) {
	b, ok := appendBinary(dst, v)
	if !ok {
		return dst, fmt.Errorf("%w: type %T has no binary form", errBinWire, v)
	}
	return b, nil
}

// DecodeBinary decodes one framed binary value into v, which must be a
// pointer to a binary-encodable type. The whole frame must be
// consumed; trailing bytes are an error.
func DecodeBinary(data []byte, v any) error { return decodeBinary(data, v) }

// appendBinary appends the framed binary encoding of v to b, reporting
// whether v's type has a binary form.
func appendBinary(b []byte, v any) ([]byte, bool) {
	switch v := v.(type) {
	case Matrix:
		return appendFrame(b, tagMatrix, v, appendMatrix), true
	case *Matrix:
		return appendFrame(b, tagMatrix, *v, appendMatrix), true
	case Request:
		return appendFrame(b, tagRequest, v, appendRequest), true
	case *Request:
		return appendFrame(b, tagRequest, *v, appendRequest), true
	case Result:
		return appendFrame(b, tagResult, v, appendResult), true
	case *Result:
		return appendFrame(b, tagResult, *v, appendResult), true
	case BatchRequest:
		return appendFrame(b, tagBatchRequest, v, appendBatchRequest), true
	case *BatchRequest:
		return appendFrame(b, tagBatchRequest, *v, appendBatchRequest), true
	case BatchResponse:
		return appendFrame(b, tagBatchResponse, v, appendBatchResponse), true
	case *BatchResponse:
		return appendFrame(b, tagBatchResponse, *v, appendBatchResponse), true
	case UpdateRequest:
		return appendFrame(b, tagUpdateRequest, v, appendUpdateRequest), true
	case *UpdateRequest:
		return appendFrame(b, tagUpdateRequest, *v, appendUpdateRequest), true
	case UpdateReply:
		return appendFrame(b, tagUpdateReply, v, appendUpdateReply), true
	case *UpdateReply:
		return appendFrame(b, tagUpdateReply, *v, appendUpdateReply), true
	case UploadReply:
		return appendFrame(b, tagUploadReply, v, appendUploadReply), true
	case *UploadReply:
		return appendFrame(b, tagUploadReply, *v, appendUploadReply), true
	}
	return b, false
}

func appendFrame[T any](b []byte, tag byte, v T, enc func([]byte, T) []byte) []byte {
	b = append(b, binMagic0, binMagic1, binVersion, tag)
	return enc(b, v)
}

// decodeBinary decodes one framed value into v (which must be a
// pointer to a binary-encodable type). The whole frame must be
// consumed: trailing garbage is an error, which keeps the decoder's
// accept set exactly the encoder's image.
func decodeBinary(data []byte, v any) error {
	if len(data) < 4 || data[0] != binMagic0 || data[1] != binMagic1 {
		return fmt.Errorf("%w: bad magic", errBinWire)
	}
	if data[2] != binVersion {
		return fmt.Errorf("%w: unsupported version %d", errBinWire, data[2])
	}
	tag := data[3]
	r := &binReader{b: data[4:]}
	var want byte
	switch v := v.(type) {
	case *Matrix:
		want = tagMatrix
		if tag == want {
			*v = r.matrix()
		}
	case *Request:
		want = tagRequest
		if tag == want {
			*v = r.request()
		}
	case *Result:
		want = tagResult
		if tag == want {
			*v = r.result()
		}
	case *BatchRequest:
		want = tagBatchRequest
		if tag == want {
			*v = r.batchRequest()
		}
	case *BatchResponse:
		want = tagBatchResponse
		if tag == want {
			*v = r.batchResponse()
		}
	case *UpdateRequest:
		want = tagUpdateRequest
		if tag == want {
			*v = r.updateRequest()
		}
	case *UpdateReply:
		want = tagUpdateReply
		if tag == want {
			*v = r.updateReply()
		}
	case *UploadReply:
		want = tagUploadReply
		if tag == want {
			*v = r.uploadReply()
		}
	default:
		return fmt.Errorf("%w: type %T has no binary form", errBinWire, v)
	}
	if tag != want {
		return fmt.Errorf("%w: tag %d, want %d for %T", errBinWire, tag, want, v)
	}
	if r.bad {
		return fmt.Errorf("%w: truncated or invalid payload (tag %d)", errBinWire, tag)
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes after payload (tag %d)", errBinWire, len(r.b)-r.off, tag)
	}
	return nil
}

// ---- primitive encoders (append-style; header-sized work) ----

func zigzag(x int64) uint64   { return uint64(x<<1) ^ uint64(x>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen is the encoded size of x in bytes.
//
//mp:hotpath
func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

func putUvar(b []byte, x uint64) []byte { return binary.AppendUvarint(b, x) }
func putZig(b []byte, x int64) []byte   { return binary.AppendUvarint(b, zigzag(x)) }

func putF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func putU64(b []byte, u uint64) []byte { return binary.LittleEndian.AppendUint64(b, u) }

func putStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ---- primitive decoder ----

// binReader is a sequential payload reader: the first malformed field
// marks the reader bad and every subsequent read returns zero values,
// so composite decoders need no per-field error plumbing.
type binReader struct {
	b   []byte
	off int
	bad bool
}

func (r *binReader) fail() {
	r.bad = true
}

func (r *binReader) rem() int { return len(r.b) - r.off }

func (r *binReader) uvar() uint64 {
	if r.bad {
		return 0
	}
	u, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return u
}

func (r *binReader) zig() int64 { return unzigzag(r.uvar()) }

// intv reads a zigzag varint that must fit the platform int.
func (r *binReader) intv() int {
	x := r.zig()
	if int64(int(x)) != x {
		r.fail()
		return 0
	}
	return int(x)
}

func (r *binReader) f64() float64 {
	if r.bad || r.rem() < 8 {
		r.fail()
		return 0
	}
	u := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return math.Float64frombits(u)
}

func (r *binReader) u64() uint64 {
	if r.bad || r.rem() < 8 {
		r.fail()
		return 0
	}
	u := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return u
}

func (r *binReader) str() string {
	n := r.uvar()
	if r.bad || n > uint64(r.rem()) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *binReader) boolv() bool {
	if r.bad || r.rem() < 1 {
		r.fail()
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		r.fail()
		return false
	}
	return v == 1
}

func (r *binReader) byte() byte {
	if r.bad || r.rem() < 1 {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// sliceLen reads a nil-aware slice length: 0 is a nil slice (ok
// false), u is a slice of u-1 elements. minElem bounds the allocation
// against hostile counts: a slice of n elements needs at least
// n*minElem payload bytes still unread.
func (r *binReader) sliceLen(minElem int) (n int, ok bool) {
	u := r.uvar()
	if r.bad || u == 0 {
		return 0, false
	}
	u--
	if u > uint64(r.rem())/uint64(minElem)+1 {
		r.fail()
		return 0, false
	}
	return int(u), true
}

// ---- Matrix ----

// canonicalBoolWire reports whether m is the canonical wire form of a
// Boolean matrix — in-bounds entries, strictly increasing in row-major
// order, every value exactly 1 — which is what MatrixFromBool emits.
// Only canonical matrices may take the bitset payload: decoding a
// bitset regenerates exactly the canonical triple sequence, so the
// round-trip is lossless.
func canonicalBoolWire(m Matrix) bool {
	if m.Rows <= 0 || m.Cols <= 0 || len(m.Entries) == 0 {
		return false
	}
	if int64(m.Rows)*int64(m.Cols) > maxMatrixElems {
		return false
	}
	return canonicalBoolEntries(m.Entries, int64(m.Rows), int64(m.Cols))
}

// canonicalBoolEntries is canonicalBoolWire's O(nnz) scan.
//
//mp:hotpath
func canonicalBoolEntries(entries [][3]int64, rows, cols int64) bool {
	prev := int64(-1)
	for _, e := range entries {
		if e[2] != 1 || e[0] < 0 || e[0] >= rows || e[1] < 0 || e[1] >= cols {
			return false
		}
		cell := e[0]*cols + e[1]
		if cell <= prev {
			return false
		}
		prev = cell
	}
	return true
}

const (
	matrixPayloadSparse byte = 0
	matrixPayloadBitset byte = 1
)

func appendMatrix(b []byte, m Matrix) []byte {
	b = putZig(b, int64(m.Rows))
	b = putZig(b, int64(m.Cols))
	if m.Entries == nil {
		b = append(b, matrixPayloadSparse)
		return putUvar(b, 0)
	}
	// A sparse triple costs at least 3 bytes; the bitset costs a fixed
	// rows·cols/8. Pick the bitset only when it is strictly smaller and
	// the matrix is canonical Boolean wire (lossless regeneration).
	bitsetBytes := (int64(m.Rows)*int64(m.Cols) + 7) / 8
	if bitsetBytes < int64(len(m.Entries))*3 && canonicalBoolWire(m) {
		b = append(b, matrixPayloadBitset)
		b = putUvar(b, uint64(len(m.Entries)))
		b = slices.Grow(b, int(bitsetBytes))
		dst := b[len(b) : len(b)+int(bitsetBytes)]
		clear(dst)
		packBitsetInto(dst, m.Entries, int64(m.Cols))
		return b[:len(b)+int(bitsetBytes)]
	}
	b = append(b, matrixPayloadSparse)
	b = putUvar(b, uint64(len(m.Entries))+1)
	n := sizeEntries(m.Entries)
	b = slices.Grow(b, n)
	encodeEntriesInto(b[len(b):len(b)+n], m.Entries)
	return b[:len(b)+n]
}

// sizeEntries is the exact encoded size of the delta-coded triples, so
// the encoder grows its buffer once and the hot loop never appends.
//
//mp:hotpath
func sizeEntries(entries [][3]int64) int {
	var prevI, prevJ int64
	n := 0
	for _, e := range entries {
		n += uvarintLen(zigzag(e[0]-prevI)) + uvarintLen(zigzag(e[1]-prevJ)) + uvarintLen(zigzag(e[2]))
		prevI, prevJ = e[0], e[1]
	}
	return n
}

// encodeEntriesInto writes the delta-coded triples into dst (exactly
// sizeEntries bytes). Rows and columns are delta-coded against the
// previous entry — row-sorted uploads then cost ~1 byte per index —
// and deltas are zigzag-coded so arbitrary entry orders still
// round-trip exactly.
//
//mp:hotpath
func encodeEntriesInto(dst []byte, entries [][3]int64) {
	var prevI, prevJ int64
	off := 0
	for _, e := range entries {
		off += binary.PutUvarint(dst[off:], zigzag(e[0]-prevI))
		off += binary.PutUvarint(dst[off:], zigzag(e[1]-prevJ))
		off += binary.PutUvarint(dst[off:], zigzag(e[2]))
		prevI, prevJ = e[0], e[1]
	}
}

// decodeEntriesInto fills dst from the delta-coded stream, returning
// the bytes consumed and whether the stream was well-formed.
//
//mp:hotpath
func decodeEntriesInto(dst [][3]int64, src []byte) (int, bool) {
	var prevI, prevJ int64
	off := 0
	for k := range dst {
		di, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		dj, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		v, n := binary.Uvarint(src[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		prevI += unzigzag(di)
		prevJ += unzigzag(dj)
		dst[k][0] = prevI
		dst[k][1] = prevJ
		dst[k][2] = unzigzag(v)
	}
	return off, true
}

// packBitsetInto sets one bit per entry in the row-major bitset dst
// (caller-zeroed, (rows·cols+7)/8 bytes). Entries are canonical
// Boolean wire: in bounds, so the index arithmetic cannot escape dst.
//
//mp:hotpath
func packBitsetInto(dst []byte, entries [][3]int64, cols int64) {
	for _, e := range entries {
		cell := e[0]*cols + e[1]
		dst[cell>>3] |= 1 << uint(cell&7)
	}
}

// unpackBitsetInto regenerates the canonical triples from the
// row-major bitset, reporting whether exactly len(dst) bits were set.
//
//mp:hotpath
func unpackBitsetInto(dst [][3]int64, src []byte, rows, cols int64) bool {
	k := 0
	total := rows * cols
	for bi, by := range src {
		if by == 0 {
			continue
		}
		base := int64(bi) * 8
		for bit := int64(0); bit < 8; bit++ {
			if by&(1<<uint(bit)) == 0 {
				continue
			}
			cell := base + bit
			if cell >= total || k >= len(dst) {
				return false
			}
			dst[k][0] = cell / cols
			dst[k][1] = cell % cols
			dst[k][2] = 1
			k++
		}
	}
	return k == len(dst)
}

func (r *binReader) matrix() Matrix {
	var m Matrix
	m.Rows = r.intv()
	m.Cols = r.intv()
	switch r.byte() {
	case matrixPayloadSparse:
		n, ok := r.sliceLen(3)
		if !ok {
			return m
		}
		m.Entries = make([][3]int64, n)
		used, ok := decodeEntriesInto(m.Entries, r.b[r.off:])
		if !ok {
			r.fail()
			return m
		}
		r.off += used
	case matrixPayloadBitset:
		nnz := r.uvar()
		if r.bad {
			return m
		}
		if m.Rows <= 0 || m.Cols <= 0 || int64(m.Rows)*int64(m.Cols) > maxMatrixElems {
			r.fail()
			return m
		}
		bitsetBytes := (int64(m.Rows)*int64(m.Cols) + 7) / 8
		if nnz > uint64(m.Rows)*uint64(m.Cols) || bitsetBytes > int64(r.rem()) {
			r.fail()
			return m
		}
		m.Entries = make([][3]int64, nnz)
		if !unpackBitsetInto(m.Entries, r.b[r.off:r.off+int(bitsetBytes)], int64(m.Rows), int64(m.Cols)) {
			r.fail()
			return m
		}
		r.off += int(bitsetBytes)
	default:
		r.fail()
	}
	return m
}

// ---- Request / Result ----

func appendRequest(b []byte, q Request) []byte {
	b = putStr(b, q.Matrix)
	b = putStr(b, q.Kind)
	b = appendMatrix(b, q.A)
	b = putF64(b, q.P)
	b = putF64(b, q.Eps)
	b = putF64(b, q.Phi)
	b = putF64(b, q.Kappa)
	if q.Seed == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return putU64(b, *q.Seed)
}

func (r *binReader) request() Request {
	var q Request
	q.Matrix = r.str()
	q.Kind = r.str()
	q.A = r.matrix()
	q.P = r.f64()
	q.Eps = r.f64()
	q.Phi = r.f64()
	q.Kappa = r.f64()
	if r.boolv() {
		s := r.u64()
		q.Seed = &s
	}
	return q
}

func appendResult(b []byte, res Result) []byte {
	b = putStr(b, res.Kind)
	b = putStr(b, res.Matrix)
	b = putF64(b, res.Estimate)
	b = putZig(b, int64(res.I))
	b = putZig(b, int64(res.J))
	b = putZig(b, int64(res.Witness))
	if res.Entries == nil {
		b = putUvar(b, 0)
	} else {
		b = putUvar(b, uint64(len(res.Entries))+1)
		for _, e := range res.Entries {
			b = putZig(b, int64(e.I))
			b = putZig(b, int64(e.J))
			b = putF64(b, e.Value)
		}
	}
	b = putZig(b, res.Bits)
	b = putZig(b, int64(res.Rounds))
	b = putU64(b, res.Seed)
	return putZig(b, int64(res.Elapsed))
}

func (r *binReader) result() Result {
	var res Result
	res.Kind = r.str()
	res.Matrix = r.str()
	res.Estimate = r.f64()
	res.I = r.intv()
	res.J = r.intv()
	res.Witness = r.intv()
	if n, ok := r.sliceLen(10); ok {
		res.Entries = make([]Entry, n)
		for k := range res.Entries {
			res.Entries[k].I = r.intv()
			res.Entries[k].J = r.intv()
			res.Entries[k].Value = r.f64()
		}
	}
	res.Bits = r.zig()
	res.Rounds = r.intv()
	res.Seed = r.u64()
	res.Elapsed = time.Duration(r.zig())
	return res
}

// ---- batches ----

func appendBatchRequest(b []byte, br BatchRequest) []byte {
	if br.Queries == nil {
		return putUvar(b, 0)
	}
	b = putUvar(b, uint64(len(br.Queries))+1)
	for _, q := range br.Queries {
		b = appendRequest(b, q)
	}
	return b
}

func (r *binReader) batchRequest() BatchRequest {
	var br BatchRequest
	if n, ok := r.sliceLen(16); ok {
		br.Queries = make([]Request, n)
		for k := range br.Queries {
			br.Queries[k] = r.request()
		}
	}
	return br
}

func appendBatchResponse(b []byte, br BatchResponse) []byte {
	if br.Results == nil {
		return putUvar(b, 0)
	}
	b = putUvar(b, uint64(len(br.Results))+1)
	for _, it := range br.Results {
		if it.Result == nil {
			b = append(b, 0)
		} else {
			b = append(b, 1)
			b = appendResult(b, *it.Result)
		}
		b = putStr(b, it.Error)
	}
	return b
}

func (r *binReader) batchResponse() BatchResponse {
	var br BatchResponse
	if n, ok := r.sliceLen(2); ok {
		br.Results = make([]BatchItem, n)
		for k := range br.Results {
			if r.boolv() {
				res := r.result()
				br.Results[k].Result = &res
			}
			br.Results[k].Error = r.str()
		}
	}
	return br
}

// ---- row updates ----

func appendRowEntries(b []byte, entries [][2]int64) []byte {
	if entries == nil {
		return putUvar(b, 0)
	}
	b = putUvar(b, uint64(len(entries))+1)
	for _, e := range entries {
		b = putZig(b, e[0])
		b = putZig(b, e[1])
	}
	return b
}

func (r *binReader) rowEntries() [][2]int64 {
	n, ok := r.sliceLen(2)
	if !ok {
		return nil
	}
	ents := make([][2]int64, n)
	for k := range ents {
		ents[k][0] = r.zig()
		ents[k][1] = r.zig()
	}
	return ents
}

func appendUpdateRequest(b []byte, u UpdateRequest) []byte {
	if u.Updates == nil {
		b = putUvar(b, 0)
	} else {
		b = putUvar(b, uint64(len(u.Updates))+1)
		for _, up := range u.Updates {
			b = putZig(b, int64(up.Row))
			b = appendRowEntries(b, up.Entries)
		}
	}
	if u.Row == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = putZig(b, int64(*u.Row))
	}
	b = appendRowEntries(b, u.Entries)
	b = putBool(b, u.Delta)
	return putUvar(b, u.Key)
}

func (r *binReader) updateRequest() UpdateRequest {
	var u UpdateRequest
	if n, ok := r.sliceLen(2); ok {
		u.Updates = make([]RowUpdate, n)
		for k := range u.Updates {
			u.Updates[k].Row = r.intv()
			u.Updates[k].Entries = r.rowEntries()
		}
	}
	if r.boolv() {
		row := r.intv()
		u.Row = &row
	}
	u.Entries = r.rowEntries()
	u.Delta = r.boolv()
	u.Key = r.uvar()
	return u
}

// ---- catalog replies ----

func appendMatrixInfo(b []byte, mi MatrixInfo) []byte {
	b = putStr(b, mi.Name)
	b = putZig(b, int64(mi.Rows))
	b = putZig(b, int64(mi.Cols))
	b = putZig(b, int64(mi.NNZ))
	b = putBool(b, mi.Binary)
	b = putBool(b, mi.NonNeg)
	// Seconds + nanoseconds: covers the full time.Time instant range
	// (UnixNano alone mangles the zero time). Decoded as UTC.
	b = putZig(b, mi.Uploaded.Unix())
	return putUvar(b, uint64(mi.Uploaded.Nanosecond()))
}

func (r *binReader) matrixInfo() MatrixInfo {
	var mi MatrixInfo
	mi.Name = r.str()
	mi.Rows = r.intv()
	mi.Cols = r.intv()
	mi.NNZ = r.intv()
	mi.Binary = r.boolv()
	mi.NonNeg = r.boolv()
	sec := r.zig()
	nsec := r.uvar()
	if nsec >= 1e9 {
		r.fail()
		return mi
	}
	mi.Uploaded = time.Unix(sec, int64(nsec)).UTC()
	return mi
}

func appendUpdateReply(b []byte, u UpdateReply) []byte {
	b = appendMatrixInfo(b, u.MatrixInfo)
	b = putUvar(b, u.Sub)
	b = putZig(b, int64(u.RowsApplied))
	b = putZig(b, int64(u.CacheRefreshed))
	return putZig(b, int64(u.CacheDropped))
}

func (r *binReader) updateReply() UpdateReply {
	var u UpdateReply
	u.MatrixInfo = r.matrixInfo()
	u.Sub = r.uvar()
	u.RowsApplied = r.intv()
	u.CacheRefreshed = r.intv()
	u.CacheDropped = r.intv()
	return u
}

func appendUploadReply(b []byte, u UploadReply) []byte {
	b = appendMatrixInfo(b, u.MatrixInfo)
	if u.Evicted == nil {
		return putUvar(b, 0)
	}
	b = putUvar(b, uint64(len(u.Evicted))+1)
	for _, s := range u.Evicted {
		b = putStr(b, s)
	}
	return b
}

func (r *binReader) uploadReply() UploadReply {
	var u UploadReply
	u.MatrixInfo = r.matrixInfo()
	if n, ok := r.sliceLen(1); ok {
		u.Evicted = make([]string, n)
		for k := range u.Evicted {
			u.Evicted[k] = r.str()
		}
	}
	return u
}
