package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitmat"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/intmat"
	"repro/internal/store"
)

// Service errors. Handlers map them to HTTP statuses.
var (
	// ErrBadRequest marks malformed or invalid query parameters.
	ErrBadRequest = errors.New("service: bad request")
	// ErrBodyTooLarge is returned for request bodies over the HTTP
	// layer's size limit (mapped to 413).
	ErrBodyTooLarge = errors.New("service: request body too large")
	// ErrMatrixNotFound is returned for queries against unknown names.
	ErrMatrixNotFound = errors.New("service: matrix not found")
	// ErrOverloaded is returned when the worker pool and its admission
	// queue are both full.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("service: engine closed")
)

// Kinds lists the supported job kinds with the protocol each runs.
var Kinds = map[string]string{
	"lp":        "Algorithm 1 (Theorem 3.1): (1±ε)·‖AB‖p^p, p ∈ [0,2]",
	"l0sample":  "Theorem 3.2: uniform non-zero entry of AB with exact value",
	"l1sample":  "Remark 3: entry (i,j) ∝ C[i][j] with join witness",
	"exact":     "Remark 2: exact ‖AB‖1 for non-negative matrices",
	"linf":      "Algorithm 2 (Theorem 4.1): (2+ε)·‖AB‖∞ for Boolean matrices",
	"linfkappa": "Algorithm 3 (Theorem 4.3): κ·‖AB‖∞ for Boolean matrices",
	"hh":        "Algorithm 4 (Theorem 5.1): ℓp-(ϕ,ε)-heavy hitters",
}

// Config parameterizes an Engine. Zero values select the defaults.
type Config struct {
	// Workers bounds concurrent protocol executions. Default 8.
	Workers int
	// QueueDepth bounds jobs waiting for a worker beyond the pool;
	// admissions past it fail with ErrOverloaded. Default 64.
	QueueDepth int
	// MaxMatrices bounds the registry; inserting beyond it evicts the
	// least-recently-used matrix. Default 16.
	MaxMatrices int
	// BaseSeed seeds the per-job seed sequence used when a request does
	// not pin its own seed, and the cache's epoch-seed schedule.
	// Default 1.
	BaseSeed uint64
	// Transport creates each job's transport. Default InProcess.
	Transport TransportFactory
	// CacheCapacity bounds the Bob-side sketch cache: precomputed
	// per-matrix protocol states (dominated by the lp row sketches of
	// B) reused across queries. Default 64 entries; see DisableCache to
	// turn the cache off.
	CacheCapacity int
	// DisableCache turns the sketch cache off: every query re-derives
	// Bob's matrix-dependent state from scratch and unpinned requests
	// draw a fresh seed from the per-job sequence.
	DisableCache bool
	// SeedRotateEvery rotates the cache's seed epoch after this many
	// cached-path lookups. Requests that do not pin a seed are assigned
	// the current epoch's seed (derived from BaseSeed), which is what
	// lets their repeat queries share one cached sketch transcript;
	// rotation bounds how long any one set of public coins is reused
	// and flushes the cache. Default 4096; negative never rotates.
	SeedRotateEvery int64
	// MaxBatch bounds the queries accepted in one EstimateBatch call.
	// Default 256.
	MaxBatch int
	// Shards splits each job's row-parallel phases (Bob's per-row
	// precompute and the row scans of every Serve) into this many
	// contiguous row ranges executed concurrently on the process-wide
	// bounded shard pool. Transcripts and outputs are byte-identical for
	// any value — the core parity tests pin this — so the knob trades
	// nothing but CPU for latency. Default min(GOMAXPROCS, 8); 1 runs
	// every job sequentially.
	Shards int
	// UploadTTL bounds how long an uncommitted chunked upload may sit
	// idle before it is garbage-collected (partial-upload GC runs lazily
	// on every upload operation). Default 2 minutes.
	UploadTTL time.Duration
	// MaxUploads bounds concurrently staged chunked uploads; beginning
	// one beyond it (after GC) fails with ErrOverloaded. Default 16.
	MaxUploads int
	// Store, when non-nil, makes served matrices durable: installs are
	// snapshotted, row updates write-ahead logged, and boot recovers by
	// replaying the log over the latest snapshot (see persist.go). The
	// engine does not close the store; its owner does.
	Store store.Store
	// SnapshotEvery is how many WAL records a matrix accumulates before
	// the background compactor re-snapshots it and truncates the covered
	// log. Default 64; negative never compacts.
	SnapshotEvery int
	// MaxStagedElems bounds the total rows×cols staged across all
	// in-progress chunked uploads. Staging allocates the dense buffer at
	// begin — proportional to the declared dimensions, not the data
	// shipped — so this, not MaxUploads, is what caps the memory a
	// client can pin with cheap begin requests (8 bytes per element:
	// the default 2·maxMatrixElems ≈ 256 MiB of staging). Begins beyond
	// the budget fail with ErrOverloaded. Default 1<<25.
	MaxStagedElems int64
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxMatrices <= 0 {
		c.MaxMatrices = 16
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Transport == nil {
		c.Transport = InProcess
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 64
	}
	if c.SeedRotateEvery == 0 {
		c.SeedRotateEvery = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.UploadTTL <= 0 {
		c.UploadTTL = 2 * time.Minute
	}
	if c.MaxUploads <= 0 {
		c.MaxUploads = 16
	}
	if c.MaxStagedElems <= 0 {
		c.MaxStagedElems = 2 * maxMatrixElems
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 64
	}
}

// Request is one estimation query: which served matrix to run against,
// which protocol, its parameters, and Alice's matrix.
type Request struct {
	// Matrix names the served (Bob's) matrix.
	Matrix string `json:"matrix"`
	// Kind selects the protocol; see Kinds.
	Kind string `json:"kind"`
	// A is the querying client's (Alice's) matrix; A·B is estimated.
	A Matrix `json:"a"`
	// P is the norm index for lp and hh. Defaults: lp p=1, hh p=1.
	P float64 `json:"p,omitempty"`
	// Eps is the accuracy/guarantee parameter for lp, l0sample, linf
	// and hh. Default 0.25 (0.1 for hh, where it must be ≤ Phi).
	Eps float64 `json:"eps,omitempty"`
	// Phi is the heavy-hitter threshold for hh. Default 0.2.
	Phi float64 `json:"phi,omitempty"`
	// Kappa is the approximation factor for linfkappa. Default 8.
	Kappa float64 `json:"kappa,omitempty"`
	// Seed pins the public-coin seed for reproducibility; when nil the
	// engine assigns one from its BaseSeed sequence (reported in the
	// Result).
	Seed *uint64 `json:"seed,omitempty"`
}

// Result is one estimation answer together with its exact
// communication cost and the seed that reproduces it.
type Result struct {
	// Kind echoes the request's protocol kind.
	Kind string `json:"kind"`
	// Matrix echoes the served matrix the query ran against.
	Matrix string `json:"matrix"`
	// Estimate is the protocol's answer (for hh, the output-set size).
	Estimate float64 `json:"estimate"`
	// I is the row of a sampled or witnessing entry (l0sample,
	// l1sample, linf, linfkappa).
	I int `json:"i,omitempty"`
	// J is the column of the sampled or witnessing entry.
	J int `json:"j,omitempty"`
	// Witness is the sampled join witness of l1sample.
	Witness int `json:"witness,omitempty"`
	// Entries is the hh output set.
	Entries []Entry `json:"entries,omitempty"`
	// Bits is the protocol's exact communication payload in bits.
	Bits int64 `json:"bits"`
	// Rounds is the protocol's exact round count.
	Rounds int `json:"rounds"`
	// Seed reproduces this answer bit-for-bit.
	Seed uint64 `json:"seed"`
	// Elapsed is the server-side wall-clock protocol time.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Engine hosts Bob's side of the estimation service.
type Engine struct {
	cfg     Config
	reg     *registry
	cache   *sketchCache // nil when Config.DisableCache
	stats   *collector
	met     *engineMetrics
	workers chan struct{} // worker slots
	queue   chan struct{} // bounded admission queue
	seedSeq chan uint64
	genSeq  atomic.Uint64 // upload generations (cache-key component)
	closed  chan struct{}

	upMu        sync.Mutex
	uploads     map[string]*stagingUpload // in-progress chunked uploads by token
	upSeq       atomic.Uint64             // upload-token sequence
	upStats     uploadCounters
	stagedElems int64 // Σ rows×cols across e.uploads, vs MaxStagedElems

	// updMu serializes row updates (UpdateRows): sub-version assignment
	// and cache revalidation must observe a stable predecessor entry.
	// It also guards the idempotency-dedupe ring below.
	updMu         sync.Mutex
	rowUpd        rowUpdateCounters
	updRecent     map[updKey]UpdateReply
	updRecentKeys []updKey

	persist *persister // nil without Config.Store
}

// NewEngine returns a ready engine.
func NewEngine(cfg Config) *Engine {
	cfg.setDefaults()
	e := &Engine{
		cfg:     cfg,
		reg:     newRegistry(cfg.MaxMatrices),
		stats:   newCollector(),
		workers: make(chan struct{}, cfg.Workers),
		queue:   make(chan struct{}, cfg.QueueDepth),
		seedSeq: make(chan uint64, 1),
		closed:  make(chan struct{}),
		uploads: make(map[string]*stagingUpload),
	}
	if !cfg.DisableCache {
		e.cache = newSketchCache(cfg.CacheCapacity, cfg.SeedRotateEvery)
	}
	if cfg.Store != nil {
		e.persist = newPersister(cfg.Store, cfg.SnapshotEvery)
		e.recoverFromStore() // before any request is admitted
		go e.compactLoop()
	}
	e.met = newEngineMetrics(e)
	e.seedSeq <- cfg.BaseSeed
	return e
}

// Close stops admitting work. In-flight jobs finish.
func (e *Engine) Close() {
	select {
	case <-e.closed:
	default:
		close(e.closed)
	}
}

// nextSeed draws the next job seed from the engine's reproducible
// sequence (a splitmix64-style stride over BaseSeed).
func (e *Engine) nextSeed() uint64 {
	s := <-e.seedSeq
	e.seedSeq <- s + 0x9E3779B97F4A7C15
	return s
}

// PutMatrix validates and stores a served matrix, returning its catalog
// info and any evicted names.
func (e *Engine) PutMatrix(name string, m Matrix) (MatrixInfo, []string, error) {
	select {
	case <-e.closed:
		return MatrixInfo{}, nil, ErrClosed
	default:
	}
	if name == "" {
		return MatrixInfo{}, nil, fmt.Errorf("%w: empty matrix name", ErrBadRequest)
	}
	dense, binary, nonNeg, err := m.toDense()
	if err != nil {
		return MatrixInfo{}, nil, err
	}
	sm := &servedMatrix{
		info: MatrixInfo{
			Name:     name,
			Rows:     dense.Rows(),
			Cols:     dense.Cols(),
			NNZ:      dense.L0(),
			Binary:   binary,
			NonNeg:   nonNeg,
			Uploaded: time.Now(),
		},
		gen:   e.genSeq.Add(1),
		dense: dense,
	}
	if binary {
		sm.bits = toBool(dense)
	}
	// Durability before visibility: once a client sees the install
	// acknowledged, a crash at any point must re-serve this matrix.
	if err := e.persistPut(name, sm); err != nil {
		return MatrixInfo{}, nil, err
	}
	evicted := e.reg.put(name, sm)
	e.stats.evict(len(evicted))
	e.persistTombstones(evicted)
	// A replaced name and any LRU-evicted ones lose their cached
	// states; the generation in the cache key keeps a racing in-flight
	// query from resurrecting a stale entry for the new upload.
	if e.cache != nil {
		e.cache.invalidateMatrix(append(evicted, name)...)
	}
	return sm.info, evicted, nil
}

// DeleteMatrix removes a served matrix, its cached states, and its
// durable state. The tombstone lands first: failing the delete (matrix
// still served) beats a restart resurrecting it.
func (e *Engine) DeleteMatrix(name string) error {
	if err := e.persistDelete(name); err != nil {
		return err
	}
	if !e.reg.delete(name) {
		return fmt.Errorf("%w: %q", ErrMatrixNotFound, name)
	}
	if e.cache != nil {
		e.cache.invalidateMatrix(name)
	}
	return nil
}

// Matrices lists the served matrices, most recently used first.
func (e *Engine) Matrices() []MatrixInfo { return e.reg.infos() }

// Stats snapshots the aggregate serving statistics.
func (e *Engine) Stats() Stats {
	s := e.stats.snapshot(e.reg.len())
	if e.cache != nil {
		s.Cache = e.cache.snapshot()
	}
	s.Shard = shardStatsSnapshot(e.cfg.Shards)
	s.Uploads = e.uploadStats()
	s.RowUpdates = e.rowUpd.snapshot()
	if e.persist != nil {
		s.Store = e.persist.snapshot()
	}
	return s
}

// admit takes one worker slot: immediately if one is free, otherwise
// through the bounded queue; a full queue sheds the request. The
// returned release function must be called exactly once.
func (e *Engine) admit(ctx context.Context) (release func(), err error) {
	release = func() { <-e.workers }
	select {
	case e.workers <- struct{}{}:
		return release, nil
	default:
	}
	select {
	case e.queue <- struct{}{}:
	default:
		e.stats.reject()
		return nil, ErrOverloaded
	}
	defer func() { <-e.queue }()
	select {
	case e.workers <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-e.closed:
		return nil, ErrClosed
	}
}

// admitTimed wraps admit and records the slot wait for admissions that
// succeed. Rejected or cancelled admissions record nothing: their wait
// is bounded by the caller, not the queue, and would skew the window.
func (e *Engine) admitTimed(ctx context.Context) (release func(), err error) {
	start := time.Now()
	release, err = e.admit(ctx)
	if err == nil {
		wait := time.Since(start)
		e.stats.recordQueueWait(wait)
		e.met.queueWait.Observe(wait.Seconds())
	}
	return release, err
}

// Estimate answers one query: it admits the job through the bounded
// pool, runs the requested protocol between Alice (the request's
// matrix) and Bob (the served matrix) over a fresh transport, and
// returns the estimate with its exact communication cost.
//
// Cancelling ctx before admission returns immediately; cancelling it
// mid-run aborts the job at its next transport operation (the
// transport's endpoints are shut down), so a disconnected client stops
// burning its worker.
func (e *Engine) Estimate(ctx context.Context, req Request) (*Result, error) {
	select {
	case <-e.closed:
		return nil, ErrClosed
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	release, err := e.admitTimed(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return e.runJob(ctx, req)
}

// EstimateBatch answers many queries against a single admission slot:
// the batch waits once for a worker and then runs its queries
// sequentially on it, which amortizes admission and transport-setup
// overhead for callers issuing repeat queries (typically cache-hitting
// ones against the same served matrix). Per-query failures are reported
// in the matching BatchItem; the call itself only fails when the batch
// cannot be admitted or validated, or when ctx is cancelled.
func (e *Engine) EstimateBatch(ctx context.Context, reqs []Request) ([]BatchItem, error) {
	select {
	case <-e.closed:
		return nil, ErrClosed
	default:
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if len(reqs) > e.cfg.MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d exceeds limit %d", ErrBadRequest, len(reqs), e.cfg.MaxBatch)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	release, err := e.admitTimed(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	items := make([]BatchItem, 0, len(reqs))
	for _, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := e.runJob(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			items = append(items, BatchItem{Error: err.Error()})
			continue
		}
		items = append(items, BatchItem{Result: res})
	}
	return items, nil
}

// BatchItem is one query's outcome within a batch: exactly one of
// Result and Error is set.
type BatchItem struct {
	// Result is the query's answer when it succeeded.
	Result *Result `json:"result,omitempty"`
	// Error is the query's failure message when it did not.
	Error string `json:"error,omitempty"`
}

// jobSeed picks the seed (and cache epoch) for a request: the pinned
// seed when the request carries one; otherwise the current epoch's
// seed when the cache is on — repeat queries then share one cached
// sketch transcript until the epoch rotates — or the engine's per-job
// sequence when it is off.
func (e *Engine) jobSeed(req Request) (seed, epoch uint64) {
	if e.cache != nil {
		epoch = e.cache.epochNow()
	}
	if req.Seed != nil {
		return *req.Seed, epoch
	}
	if e.cache != nil {
		return e.cfg.BaseSeed + epoch*0x9E3779B97F4A7C15, epoch
	}
	return e.nextSeed(), 0
}

// runJob validates the request, builds both parties' inputs (Bob's
// through the sketch cache), and drives the protocol over a fresh
// transport. Cancelling ctx aborts the run at its next transport
// operation.
func (e *Engine) runJob(ctx context.Context, req Request) (*Result, error) {
	sm, ok := e.reg.get(req.Matrix)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMatrixNotFound, req.Matrix)
	}
	a, aBinary, aNonNeg, err := req.A.toDense()
	if err != nil {
		return nil, err
	}
	if a.Cols() != sm.info.Rows {
		return nil, fmt.Errorf("%w: A is %dx%d but %q has %d rows",
			ErrBadRequest, a.Rows(), a.Cols(), req.Matrix, sm.info.Rows)
	}
	seed, epoch := e.jobSeed(req)

	job, err := e.buildJob(req, sm, a, aBinary, aNonNeg, seed, epoch)
	if err != nil {
		return nil, err
	}

	alice, bob, cleanup, err := e.cfg.Transport()
	if err != nil {
		return nil, fmt.Errorf("service: transport: %w", err)
	}
	defer cleanup()

	// Abort the transport when ctx is cancelled mid-run: finishing both
	// endpoints unblocks (and fails) any pending Send/Recv, and cleanup
	// closes socket-backed transports outright.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			if alice.Finish != nil {
				alice.Finish()
			}
			if bob.Finish != nil {
				bob.Finish()
			}
			cleanup()
		case <-watchDone:
		}
	}()

	start := time.Now()
	runErr := core.RunParties(alice, bob, job.alice, job.bob)
	elapsed := time.Since(start)
	stats := bob.T.Stats()

	e.stats.record(req.Kind, stats.TotalBits(), stats.Rounds, elapsed, runErr != nil || ctx.Err() != nil)
	e.met.observeRun(req.Kind, elapsed)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, fmt.Errorf("%w: %s", mapProtocolError(runErr), runErr)
	}
	res := job.result
	res.Kind = req.Kind
	res.Matrix = req.Matrix
	res.Bits = stats.TotalBits()
	res.Rounds = stats.Rounds
	res.Seed = seed
	res.Elapsed = elapsed
	return res, nil
}

// mapProtocolError folds core's validation errors into ErrBadRequest so
// the HTTP layer reports them as client faults; anything else is a
// protocol-level failure.
func mapProtocolError(err error) error {
	for _, bad := range []error{
		core.ErrBadP, core.ErrBadEps, core.ErrBadKappa, core.ErrBadPhi,
		core.ErrNeedNonNegative, core.ErrDimensionMismatch, core.ErrUpdateShape,
	} {
		if errors.Is(err, bad) {
			return ErrBadRequest
		}
	}
	return errors.New("service: protocol failed")
}

// lpStates is the lp cache entry: Bob's precomputed row sketches of B
// plus the shared Alice-side sketch families. The engine drives both
// parties of every job, so caching Alice's query-independent state
// (derived from the same (m2, p, eps, seed) fingerprint) is the same
// amortization as Bob's — a remote Alice, e.g. a real network client,
// simply does not use it.
type lpStates struct {
	bob   *core.BobLpState
	alice *core.AliceLpState
}

func newLpStates(b *intmat.Dense, m2 int, p float64, o core.LpOpts) (*lpStates, error) {
	bob, err := core.NewBobLpState(b, p, o)
	if err != nil {
		return nil, err
	}
	alice, err := core.NewAliceLpState(m2, p, o)
	if err != nil {
		return nil, err
	}
	return &lpStates{bob: bob, alice: alice}, nil
}

// Bytes is the entry's in-memory size, for the cache's Bytes stat.
func (s *lpStates) Bytes() int64 { return s.bob.Bytes() + s.alice.Bytes() }

// job packages one protocol execution: the two party drivers plus the
// result they fill in (Bob's driver writes the outputs — the estimate
// lives server-side for every kind).
type job struct {
	alice  func(comm.Transport) error
	bob    func(comm.Transport) error
	result *Result
}

// bobState fetches the cached Bob-side state for one (matrix, kind,
// fingerprint, epoch) key, building and inserting it on a miss. With
// the cache disabled every call builds fresh — the two-phase core API
// makes that path identical to the pre-cache drivers. Build failures
// are validation errors from core; they are recorded as failed requests
// (they surfaced mid-protocol before the two-phase split) and mapped to
// ErrBadRequest.
func (e *Engine) bobState(sm *servedMatrix, kind, fp string, epoch uint64, build func() (bobState, error)) (bobState, error) {
	if e.cache == nil {
		return build()
	}
	key := cacheKey{matrix: sm.info.Name, gen: sm.gen, sub: sm.sub, kind: kind, fp: fp, epoch: epoch}
	if st, ok := e.cache.tickAndGet(key); ok {
		return st, nil
	}
	st, err := build()
	if err != nil {
		return nil, err
	}
	e.cache.put(key, st)
	return st, nil
}

// buildJob wires the request to the matching protocol drivers, fetching
// Bob's matrix-dependent state through the sketch cache. Catalog
// metadata (dimensions, binarity, signedness) crosses as parameters,
// never as protocol payload, so costs match the paper's accounting.
//
// The fingerprint passed to bobState covers exactly the inputs the
// precomputed state depends on: the seed appears for lp/l0sample/hh
// (their states bake in sketches drawn from it) and is omitted for the
// seed-free Bob phases, whose entries therefore serve any seed.
func (e *Engine) buildJob(req Request, sm *servedMatrix, a *intmat.Dense, aBinary, aNonNeg bool, seed, epoch uint64) (*job, error) {
	res := &Result{}
	b := sm.dense
	m2 := sm.info.Cols
	eps := req.Eps
	if eps == 0 {
		eps = 0.25
	}
	state := func(fp string, build func() (bobState, error)) (bobState, error) {
		st, err := e.bobState(sm, req.Kind, fp, epoch, build)
		if err != nil {
			e.stats.recordFailure(req.Kind)
			return nil, fmt.Errorf("%w: %s", mapProtocolError(err), err)
		}
		return st, nil
	}
	switch req.Kind {
	case "lp":
		p := req.P // p = 0 is meaningful: ℓ0, the composition-size estimate
		o := core.LpOpts{Eps: eps, Seed: seed, Shards: e.cfg.Shards}
		st, err := state(fmt.Sprintf("p=%g eps=%g seed=%d", p, eps, seed),
			func() (bobState, error) { return newLpStates(b, m2, p, o) })
		if err != nil {
			return nil, err
		}
		lp := st.(*lpStates)
		return &job{
			alice: func(t comm.Transport) error { return lp.alice.Serve(t, a) },
			bob: func(t comm.Transport) (err error) {
				res.Estimate, err = lp.bob.Serve(t)
				return err
			},
			result: res,
		}, nil
	case "l0sample":
		o := core.L0SampleOpts{Eps: eps, Seed: seed, Shards: e.cfg.Shards}
		st, err := state(fmt.Sprintf("eps=%g seed=%d", eps, seed),
			func() (bobState, error) { return core.NewBobL0SampleState(b, o) })
		if err != nil {
			return nil, err
		}
		l0 := st.(*core.BobL0SampleState)
		m1 := a.Rows()
		return &job{
			alice: func(t comm.Transport) error { return core.AliceL0Sample(t, a, o) },
			bob: func(t comm.Transport) (err error) {
				pair, v, err := l0.Serve(t, m1)
				res.I, res.J, res.Estimate = pair.I, pair.J, float64(v)
				return err
			},
			result: res,
		}, nil
	case "l1sample":
		st, err := state("", func() (bobState, error) { return core.NewBobL1SampleState(b, e.cfg.Shards) })
		if err != nil {
			return nil, err
		}
		l1 := st.(*core.BobL1SampleState)
		return &job{
			alice: func(t comm.Transport) error { return core.AliceSampleL1(t, a, seed) },
			bob: func(t comm.Transport) (err error) {
				res.I, res.J, res.Witness, err = l1.Serve(t, seed)
				return err
			},
			result: res,
		}, nil
	case "exact":
		st, err := state("", func() (bobState, error) { return core.NewBobExactL1State(b, e.cfg.Shards) })
		if err != nil {
			return nil, err
		}
		ex := st.(*core.BobExactL1State)
		return &job{
			alice: func(t comm.Transport) error { return core.AliceExactL1(t, a) },
			bob: func(t comm.Transport) (err error) {
				v, err := ex.Serve(t)
				res.Estimate = float64(v)
				return err
			},
			result: res,
		}, nil
	case "linf":
		aBits, bBits, err := binaryPair(sm, a, aBinary)
		if err != nil {
			return nil, err
		}
		o := core.LinfOpts{Eps: eps, Seed: seed, Shards: e.cfg.Shards}
		st, err := state(fmt.Sprintf("eps=%g", eps),
			func() (bobState, error) { return core.NewBobLinfState(bBits, o) })
		if err != nil {
			return nil, err
		}
		lf := st.(*core.BobLinfState)
		m1 := a.Rows()
		return &job{
			alice: func(t comm.Transport) error { return core.AliceLinf(t, aBits, m2, o) },
			bob: func(t comm.Transport) (err error) {
				var arg core.Pair
				res.Estimate, arg, err = lf.Serve(t, m1)
				res.I, res.J = arg.I, arg.J
				return err
			},
			result: res,
		}, nil
	case "linfkappa":
		aBits, bBits, err := binaryPair(sm, a, aBinary)
		if err != nil {
			return nil, err
		}
		kappa := req.Kappa
		if kappa == 0 {
			kappa = 8
		}
		o := core.LinfKappaOpts{Kappa: kappa, Seed: seed, Shards: e.cfg.Shards}
		st, err := state(fmt.Sprintf("kappa=%g", kappa),
			func() (bobState, error) { return core.NewBobLinfKappaState(bBits, o) })
		if err != nil {
			return nil, err
		}
		lk := st.(*core.BobLinfKappaState)
		m1 := a.Rows()
		return &job{
			alice: func(t comm.Transport) error { return core.AliceLinfKappa(t, aBits, m2, o) },
			bob: func(t comm.Transport) (err error) {
				var arg core.Pair
				res.Estimate, arg, err = lk.Serve(t, m1)
				res.I, res.J = arg.I, arg.J
				return err
			},
			result: res,
		}, nil
	case "hh":
		phi := req.Phi
		if phi == 0 {
			phi = 0.2
		}
		hhEps := req.Eps
		if hhEps == 0 {
			hhEps = phi / 2
		}
		o := core.HHOpts{Phi: phi, Eps: hhEps, P: req.P, Seed: seed, Shards: e.cfg.Shards}
		st, err := state(fmt.Sprintf("p=%g phi=%g eps=%g seed=%d", req.P, phi, hhEps, seed),
			func() (bobState, error) { return core.NewBobHHState(b, o) })
		if err != nil {
			return nil, err
		}
		hh := st.(*core.BobHHState)
		m1 := a.Rows()
		bNonNeg := sm.info.NonNeg
		return &job{
			alice: func(t comm.Transport) error { return core.AliceHH(t, a, m2, bNonNeg, o) },
			bob: func(t comm.Transport) (err error) {
				out, err := hh.Serve(t, m1, aNonNeg)
				for _, wp := range out {
					res.Entries = append(res.Entries, Entry{I: wp.I, J: wp.J, Value: wp.Value})
				}
				res.Estimate = float64(len(out))
				return err
			},
			result: res,
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, req.Kind)
	}
}

// binaryPair checks both matrices qualify for the Boolean-matrix
// protocols and returns their bit forms.
func binaryPair(sm *servedMatrix, a *intmat.Dense, aBinary bool) (aBits, bBits *bitmat.Matrix, err error) {
	if sm.bits == nil {
		return nil, nil, fmt.Errorf("%w: matrix %q is not Boolean (required for ℓ∞ kinds)", ErrBadRequest, sm.info.Name)
	}
	if !aBinary {
		return nil, nil, fmt.Errorf("%w: query matrix must be Boolean for ℓ∞ kinds", ErrBadRequest)
	}
	return toBool(a), sm.bits, nil
}
