package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// chunkEntries builds the sparse entries of a small test matrix whose
// values identify their cells, split-friendly by row.
func chunkEntries(n int) [][3]int64 {
	var out [][3]int64
	for i := 0; i < n; i++ {
		out = append(out, [3]int64{int64(i), int64(i % n), int64(i + 1)})
		if i+1 < n {
			out = append(out, [3]int64{int64(i), int64((i + 1) % n), 1})
		}
	}
	return out
}

// TestChunkedUploadLifecycle drives the begin/append/commit path over
// the real HTTP surface and checks the committed matrix serves queries
// exactly like its single-body twin: same catalog info, same estimate
// and bits for a pinned seed.
func TestChunkedUploadLifecycle(t *testing.T) {
	e := newTestEngine(t, Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	const n = 24
	m := Matrix{Rows: n, Cols: n, Entries: chunkEntries(n)}

	// Single-body twin for reference.
	refInfo, _, err := e.PutMatrix("ref", m)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(99)
	query := Request{Matrix: "ref", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testMatrix(5, n, 0.4)}
	refRes, err := e.Estimate(ctx, query)
	if err != nil {
		t.Fatal(err)
	}

	info, err := client.UploadMatrixChunked(ctx, "chunked", m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != refInfo.Rows || info.Cols != refInfo.Cols || info.NNZ != refInfo.NNZ ||
		info.Binary != refInfo.Binary || info.NonNeg != refInfo.NonNeg {
		t.Fatalf("chunked catalog %+v differs from single-body %+v", info, refInfo)
	}
	query.Matrix = "chunked"
	res, err := client.Estimate(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != refRes.Estimate || res.Bits != refRes.Bits || res.Rounds != refRes.Rounds {
		t.Fatalf("chunked-upload answer (%v, %d bits) differs from single-body (%v, %d bits)",
			res.Estimate, res.Bits, refRes.Estimate, refRes.Bits)
	}

	st := e.Stats()
	if st.Uploads.Begun != 1 || st.Uploads.Committed != 1 || st.Uploads.Active != 0 {
		t.Fatalf("upload stats %+v, want one begun+committed, none active", st.Uploads)
	}
	if st.Uploads.Chunks == 0 {
		t.Fatalf("upload stats recorded no chunks: %+v", st.Uploads)
	}
	if st.Shard.Shards < 1 {
		t.Fatalf("shard stats missing configured count: %+v", st.Shard)
	}
}

// TestChunkedUploadValidation pins the per-chunk validation rules and
// the token lifecycle errors.
func TestChunkedUploadValidation(t *testing.T) {
	e := newTestEngine(t, Config{})
	up, err := e.BeginUpload("v", 10, 10)
	if err != nil {
		t.Fatal(err)
	}

	badRequest := func(what string, err error) {
		t.Helper()
		if !errors.Is(err, ErrBadRequest) {
			t.Fatalf("%s: got %v, want ErrBadRequest", what, err)
		}
	}
	// Entry outside the declared row range.
	_, err = e.AppendChunk("v", up.Upload, 0, 5, [][3]int64{{7, 0, 1}})
	badRequest("row outside chunk range", err)
	// Column out of bounds.
	_, err = e.AppendChunk("v", up.Upload, 0, 5, [][3]int64{{1, 10, 1}})
	badRequest("column out of bounds", err)
	// Inverted/overflowing ranges.
	_, err = e.AppendChunk("v", up.Upload, 5, 5, nil)
	badRequest("empty range", err)
	_, err = e.AppendChunk("v", up.Upload, 0, 11, nil)
	badRequest("range beyond matrix", err)
	// Duplicate inside one chunk.
	_, err = e.AppendChunk("v", up.Upload, 0, 5, [][3]int64{{1, 1, 1}, {1, 1, 2}})
	badRequest("duplicate within chunk", err)
	// A rejected chunk must not have staged anything: the same cell is
	// still free.
	if _, err := e.AppendChunk("v", up.Upload, 0, 5, [][3]int64{{1, 1, 3}}); err != nil {
		t.Fatalf("append after rejected chunk: %v", err)
	}
	// Duplicate across chunks.
	_, err = e.AppendChunk("v", up.Upload, 0, 5, [][3]int64{{1, 1, 4}})
	badRequest("duplicate across chunks", err)

	// Unknown and consumed tokens.
	if _, err := e.AppendChunk("v", "no-such-token", 0, 1, nil); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("unknown token: got %v, want ErrUploadNotFound", err)
	}
	if _, _, err := e.CommitUpload("v", up.Upload); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.CommitUpload("v", up.Upload); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("double commit: got %v, want ErrUploadNotFound", err)
	}
	if err := e.AbortUpload("v", up.Upload); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("abort after commit: got %v, want ErrUploadNotFound", err)
	}

	// NNZ is counted from the dense form: explicit zeros don't count.
	up2, err := e.BeginUpload("v2", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendChunk("v2", up2.Upload, 0, 4, [][3]int64{{0, 0, 5}, {1, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	info, _, err := e.CommitUpload("v2", up2.Upload)
	if err != nil {
		t.Fatal(err)
	}
	if info.NNZ != 1 {
		t.Fatalf("NNZ = %d, want 1 (explicit zeros excluded)", info.NNZ)
	}

	// Dimension and capacity validation at begin.
	if _, err := e.BeginUpload("v3", 0, 4); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero rows: got %v, want ErrBadRequest", err)
	}
	if _, err := e.BeginUpload("", 4, 4); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty name: got %v, want ErrBadRequest", err)
	}
	if _, err := e.BeginUpload("v4", 1<<13, 1<<13); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized matrix: got %v, want ErrBadRequest", err)
	}
	// Dimensions whose product wraps int64 must be rejected, not panic
	// the dense allocation.
	if _, err := e.BeginUpload("v5", 3037000500, 3037000500); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("overflowing dims: got %v, want ErrBadRequest", err)
	}

	// A token is bound to the name it was begun for: operating on it
	// through another matrix's URL is not-found, and the stage survives.
	up3, err := e.BeginUpload("v6", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AppendChunk("other", up3.Upload, 0, 4, [][3]int64{{0, 0, 1}}); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("append via wrong name: got %v, want ErrUploadNotFound", err)
	}
	if _, _, err := e.CommitUpload("other", up3.Upload); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("commit via wrong name: got %v, want ErrUploadNotFound", err)
	}
	if err := e.AbortUpload("other", up3.Upload); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("abort via wrong name: got %v, want ErrUploadNotFound", err)
	}
	if _, _, err := e.CommitUpload("v6", up3.Upload); err != nil {
		t.Fatalf("commit via right name after wrong-name attempts: %v", err)
	}
}

// TestChunkedUploadGC pins the partial-upload GC: an idle staged upload
// expires after the TTL and frees its MaxUploads slot, and its token is
// dead afterwards.
func TestChunkedUploadGC(t *testing.T) {
	e := newTestEngine(t, Config{UploadTTL: 20 * time.Millisecond, MaxUploads: 1})
	up, err := e.BeginUpload("gc", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The single slot is taken.
	if _, err := e.BeginUpload("gc2", 8, 8); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second begin: got %v, want ErrOverloaded", err)
	}
	time.Sleep(40 * time.Millisecond)
	// The lazy GC on the next operation reclaims the slot…
	if _, err := e.BeginUpload("gc3", 8, 8); err != nil {
		t.Fatalf("begin after TTL: %v", err)
	}
	// …and the expired token is gone.
	if _, err := e.AppendChunk("gc", up.Upload, 0, 1, nil); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("append on expired upload: got %v, want ErrUploadNotFound", err)
	}
	if got := e.Stats().Uploads.Expired; got != 1 {
		t.Fatalf("expired count = %d, want 1", got)
	}
}

// TestChunkedUploadStagingBudget pins the staged-element budget: begin
// allocates rows×cols up front, so cheap begin requests cannot pin
// memory past MaxStagedElems, and commits/aborts return their elements
// to the budget.
func TestChunkedUploadStagingBudget(t *testing.T) {
	e := newTestEngine(t, Config{MaxStagedElems: 300, MaxUploads: 8})
	up1, err := e.BeginUpload("b1", 16, 16) // 256 elems
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BeginUpload("b2", 8, 8); !errors.Is(err, ErrOverloaded) { // 256+64 > 300
		t.Fatalf("begin past budget: got %v, want ErrOverloaded", err)
	}
	if got := e.Stats().Uploads.StagedElems; got != 256 {
		t.Fatalf("staged elems = %d, want 256", got)
	}
	if err := e.AbortUpload("b1", up1.Upload); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Uploads.StagedElems; got != 0 {
		t.Fatalf("staged elems after abort = %d, want 0", got)
	}
	up3, err := e.BeginUpload("b3", 8, 8)
	if err != nil {
		t.Fatalf("begin after budget freed: %v", err)
	}
	if _, _, err := e.CommitUpload("b3", up3.Upload); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Uploads.StagedElems; got != 0 {
		t.Fatalf("staged elems after commit = %d, want 0", got)
	}
}

// TestChunkedUploadConcurrentChurn races chunked uploads of one name
// against estimates and deletes of the same name (run under -race in
// CI): uploads must stay isolated until commit, committed generations
// must never serve a stale cache entry, and every estimate must either
// succeed or fail with "matrix not found" — never a torn matrix.
func TestChunkedUploadConcurrentChurn(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 8, UploadTTL: time.Minute})
	ctx := context.Background()
	const n = 16
	m := Matrix{Rows: n, Cols: n, Entries: chunkEntries(n)}
	query := testMatrix(11, n, 0.4)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				up, err := e.BeginUpload("churn", n, n)
				if err != nil {
					continue // MaxUploads contention is fine
				}
				ok := true
				for lo := 0; lo < n; lo += 4 {
					var entries [][3]int64
					for _, ent := range m.Entries {
						if ent[0] >= int64(lo) && ent[0] < int64(lo+4) {
							entries = append(entries, ent)
						}
					}
					if _, err := e.AppendChunk("churn", up.Upload, lo, lo+4, entries); err != nil {
						ok = false
						break
					}
				}
				if !ok || it%5 == w {
					_ = e.AbortUpload("churn", up.Upload)
					continue
				}
				if _, _, err := e.CommitUpload("churn", up.Upload); err != nil {
					t.Errorf("worker %d: commit: %v", w, err)
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for it := 0; it < 60; it++ {
			seed := uint64(it)
			res, err := e.Estimate(ctx, Request{Matrix: "churn", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: query})
			if err != nil && !errors.Is(err, ErrMatrixNotFound) {
				t.Errorf("estimate: %v", err)
			}
			if err == nil && res.Estimate < 0 {
				t.Errorf("negative estimate %v", res.Estimate)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for it := 0; it < 15; it++ {
			_ = e.DeleteMatrix("churn")
		}
	}()
	wg.Wait()
}

// TestChunkedUploadsConcurrentSameName runs several complete chunked
// uploads of the same name concurrently: each upload stages privately
// under its own token, so all must commit cleanly and the survivor must
// be a complete, valid matrix.
func TestChunkedUploadsConcurrentSameName(t *testing.T) {
	e := newTestEngine(t, Config{MaxUploads: 8})
	ctx := context.Background()
	const n = 16
	m := Matrix{Rows: n, Cols: n, Entries: chunkEntries(n)}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			up, err := e.BeginUpload("same", n, n)
			if err != nil {
				t.Errorf("worker %d: begin: %v", w, err)
				return
			}
			for lo := 0; lo < n; lo += 8 {
				var entries [][3]int64
				for _, ent := range m.Entries {
					if ent[0] >= int64(lo) && ent[0] < int64(lo+8) {
						entries = append(entries, ent)
					}
				}
				if _, err := e.AppendChunk("same", up.Upload, lo, lo+8, entries); err != nil {
					t.Errorf("worker %d: append: %v", w, err)
					return
				}
			}
			if _, _, err := e.CommitUpload("same", up.Upload); err != nil {
				t.Errorf("worker %d: commit: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	infos := e.Matrices()
	if len(infos) != 1 || infos[0].Name != "same" {
		t.Fatalf("registry %v, want exactly [same]", infos)
	}
	wantNNZ := 0
	for _, ent := range m.Entries {
		if ent[2] != 0 {
			wantNNZ++
		}
	}
	if infos[0].NNZ != wantNNZ {
		t.Fatalf("NNZ = %d, want %d", infos[0].NNZ, wantNNZ)
	}
	seed := uint64(3)
	if _, err := e.Estimate(ctx, Request{Matrix: "same", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: testMatrix(7, n, 0.4)}); err != nil {
		t.Fatalf("estimate after concurrent commits: %v", err)
	}
}
