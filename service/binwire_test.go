package service

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// mustEncode is the test-side AppendBinary that fails instead of
// returning an error.
func mustEncode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := AppendBinary(nil, v)
	if err != nil {
		t.Fatalf("AppendBinary(%T): %v", v, err)
	}
	return b
}

// checkRoundTrip encodes in, decodes into out (a pointer to the zero
// value of in's type), and requires exact equality plus a stable
// second encoding.
func checkRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	enc := mustEncode(t, in)
	if err := DecodeBinary(enc, out); err != nil {
		t.Fatalf("DecodeBinary(%T): %v", in, err)
	}
	got := reflect.ValueOf(out).Elem().Interface()
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip changed the value:\n got %#v\nwant %#v", got, in)
	}
	enc2 := mustEncode(t, got)
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding is not stable: %x vs %x", enc, enc2)
	}
}

func seedPtr(s uint64) *uint64 { return &s }

func TestBinaryRoundTripAllTypes(t *testing.T) {
	sparse := Matrix{Rows: 4, Cols: 5, Entries: [][3]int64{{0, 1, -7}, {2, 0, 1 << 40}, {3, 4, 1}}}
	boolDense := testBinaryMatrix(31, 16, 0.6)
	up := time.Unix(1754600000, 123456789).UTC()

	t.Run("matrix_sparse", func(t *testing.T) { checkRoundTrip(t, sparse, &Matrix{}) })
	t.Run("matrix_bitset", func(t *testing.T) { checkRoundTrip(t, boolDense, &Matrix{}) })
	t.Run("matrix_nil_entries", func(t *testing.T) { checkRoundTrip(t, Matrix{Rows: 2, Cols: 2}, &Matrix{}) })
	t.Run("matrix_empty_entries", func(t *testing.T) {
		checkRoundTrip(t, Matrix{Rows: 2, Cols: 2, Entries: [][3]int64{}}, &Matrix{})
	})

	t.Run("request", func(t *testing.T) {
		checkRoundTrip(t, Request{
			Matrix: "m", Kind: "lp", A: sparse, P: 1.5, Eps: 0.25, Phi: 0.2,
			Kappa: 8, Seed: seedPtr(42),
		}, &Request{})
	})
	t.Run("request_nil_seed", func(t *testing.T) {
		checkRoundTrip(t, Request{Matrix: "m", Kind: "exact", A: boolDense}, &Request{})
	})

	t.Run("result", func(t *testing.T) {
		checkRoundTrip(t, Result{
			Kind: "hh", Matrix: "m", Estimate: 3.75, I: 7, J: -1, Witness: 2,
			Entries: []Entry{{I: 0, J: 1, Value: 2.5}, {I: 3, J: 4, Value: -0.125}},
			Bits:    123456, Rounds: 2, Seed: 99, Elapsed: 1530 * time.Microsecond,
		}, &Result{})
	})
	t.Run("result_no_entries", func(t *testing.T) {
		checkRoundTrip(t, Result{Kind: "lp", Matrix: "m", Estimate: 12, Bits: 64, Rounds: 2, Seed: 7}, &Result{})
	})

	t.Run("batch_request", func(t *testing.T) {
		checkRoundTrip(t, BatchRequest{Queries: []Request{
			{Matrix: "m", Kind: "lp", P: 1, A: sparse, Seed: seedPtr(1)},
			{Matrix: "m", Kind: "exact", A: boolDense},
		}}, &BatchRequest{})
	})
	t.Run("batch_response", func(t *testing.T) {
		checkRoundTrip(t, BatchResponse{Results: []BatchItem{
			{Result: &Result{Kind: "lp", Matrix: "m", Estimate: 1, Bits: 8, Rounds: 2, Seed: 3}},
			{Error: "service: matrix not found"},
		}}, &BatchResponse{})
	})

	t.Run("update_request", func(t *testing.T) {
		row := 3
		checkRoundTrip(t, UpdateRequest{
			Updates: []RowUpdate{{Row: 0, Entries: [][2]int64{{1, -4}, {2, 0}}}, {Row: 5}},
			Row:     &row, Entries: [][2]int64{{0, 9}}, Delta: true, Key: 77,
		}, &UpdateRequest{})
	})
	t.Run("update_reply", func(t *testing.T) {
		checkRoundTrip(t, UpdateReply{
			MatrixInfo: MatrixInfo{Name: "m", Rows: 4, Cols: 5, NNZ: 3, Binary: false, NonNeg: true, Uploaded: up},
			Sub:        9, RowsApplied: 2, CacheRefreshed: 1, CacheDropped: 1,
		}, &UpdateReply{})
	})
	t.Run("upload_reply", func(t *testing.T) {
		checkRoundTrip(t, UploadReply{
			MatrixInfo: MatrixInfo{Name: "m", Rows: 16, Cols: 16, NNZ: 140, Binary: true, NonNeg: true, Uploaded: up},
			Evicted:    []string{"old1", "old2"},
		}, &UploadReply{})
	})
	t.Run("upload_reply_zero_time", func(t *testing.T) {
		checkRoundTrip(t, UploadReply{MatrixInfo: MatrixInfo{Name: "m"}}, &UploadReply{})
	})
}

// TestBinaryMatrixBitsetPacking pins that a dense Boolean matrix takes
// the row-major bitset branch: the payload must come in near
// rows×cols/8 bytes, far below both the sparse-triple form and JSON.
func TestBinaryMatrixBitsetPacking(t *testing.T) {
	m := testBinaryMatrix(32, 64, 0.5)
	bin := mustEncode(t, m)
	js, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	bitsetBytes := (64*64 + 7) / 8
	if len(bin) > bitsetBytes+64 {
		t.Fatalf("dense Boolean matrix encoded to %d bytes, want ≈%d (bitset branch not taken?)", len(bin), bitsetBytes)
	}
	if len(bin)*10 > len(js) {
		t.Fatalf("bitset form %d bytes vs JSON %d bytes: want ≥10x smaller", len(bin), len(js))
	}
}

func TestBinaryDecodeRejectsHostileInput(t *testing.T) {
	valid := mustEncode(t, Matrix{Rows: 1, Cols: 1, Entries: [][3]int64{{0, 0, 1}}})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", valid[:3]},
		{"bad_magic", append([]byte{'X', 'P'}, valid[2:]...)},
		{"bad_version", append([]byte{'M', 'P', 99}, valid[3:]...)},
		{"wrong_tag", append([]byte{'M', 'P', 1, 77}, valid[4:]...)},
		{"truncated", valid[:len(valid)-2]},
		{"trailing", append(append([]byte(nil), valid...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m Matrix
			if err := DecodeBinary(tc.data, &m); err == nil {
				t.Fatalf("hostile input %x decoded", tc.data)
			}
		})
	}
	// A frame for one type must not decode into another.
	var q Request
	if err := DecodeBinary(valid, &q); err == nil {
		t.Fatal("matrix frame decoded into a Request")
	}
	// Types outside the codec are a clean error, not a panic.
	if _, err := AppendBinary(nil, MatrixInfo{}); err == nil {
		t.Fatal("MatrixInfo has no standalone frame but encoded anyway")
	}
}

// jsonOracle returns the canonical JSON bytes of v — the cross-codec
// equivalence oracle: two values that JSON-marshal identically are the
// same API value.
func jsonOracle(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal(%T): %v", v, err)
	}
	return b
}

// TestBinaryJSONEquivalence round-trips values through BOTH codecs and
// requires the same value back: decode(binary(v)) must JSON-marshal
// byte-identically to decode(json(v)).
func TestBinaryJSONEquivalence(t *testing.T) {
	sparse := Matrix{Rows: 3, Cols: 3, Entries: [][3]int64{{0, 0, -1}, {1, 2, 5}}}
	values := []any{
		sparse,
		testBinaryMatrix(7, 12, 0.4),
		Request{Matrix: "m", Kind: "lp", P: 2, Eps: 0.5, A: sparse, Seed: seedPtr(11)},
		Result{Kind: "lp", Matrix: "m", Estimate: 2.5, Bits: 99, Rounds: 2, Seed: 11},
		BatchRequest{Queries: []Request{{Matrix: "m", Kind: "exact", A: sparse}}},
		BatchResponse{Results: []BatchItem{{Error: "x"}, {Result: &Result{Kind: "lp"}}}},
		UpdateRequest{Updates: []RowUpdate{{Row: 1, Entries: [][2]int64{{0, 3}}}}, Delta: true},
	}
	for _, v := range values {
		enc := mustEncode(t, v)
		out := reflect.New(reflect.TypeOf(v))
		if err := DecodeBinary(enc, out.Interface()); err != nil {
			t.Fatalf("DecodeBinary(%T): %v", v, err)
		}
		viaBinary := jsonOracle(t, out.Elem().Interface())
		viaJSON := jsonOracle(t, v)
		if !bytes.Equal(viaBinary, viaJSON) {
			t.Fatalf("%T: binary round trip diverges from JSON:\n binary %s\n json   %s", v, viaBinary, viaJSON)
		}
	}
}

// FuzzBinaryDecode throws arbitrary bytes at the binary decoder: it
// must never panic, and anything it accepts must re-encode and
// re-decode to the same value, with JSON as the equivalence oracle
// (the fuzzed types are the time-free ones, where JSON equality is
// exact value equality).
func FuzzBinaryDecode(f *testing.F) {
	sparse := Matrix{Rows: 4, Cols: 5, Entries: [][3]int64{{0, 1, -7}, {2, 0, 1 << 40}}}
	seedValues := []any{
		sparse,
		testBinaryMatrix(5, 16, 0.5),
		Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.25, A: sparse, Seed: seedPtr(9)},
		Result{Kind: "hh", Matrix: "m", Estimate: 1.5, Entries: []Entry{{I: 1, J: 2, Value: 3}}, Bits: 10, Rounds: 2},
		BatchRequest{Queries: []Request{{Matrix: "m", Kind: "exact", A: sparse}}},
		BatchResponse{Results: []BatchItem{{Error: "x"}}},
		UpdateRequest{Updates: []RowUpdate{{Row: 1, Entries: [][2]int64{{0, 3}}}}},
	}
	for _, v := range seedValues {
		b, err := AppendBinary(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{'M', 'P', 1, 1})
	f.Add([]byte{'M', 'P', 1, 200})

	newByTag := func(tag byte) any {
		switch tag {
		case 1:
			return &Matrix{}
		case 2:
			return &Request{}
		case 3:
			return &Result{}
		case 4:
			return &BatchRequest{}
		case 5:
			return &BatchResponse{}
		case 6:
			return &UpdateRequest{}
		}
		// UpdateReply/UploadReply carry a time.Time, where JSON
		// (RFC 3339, truncated precision) is not an exact oracle;
		// their round trips are pinned by unit tests instead.
		return nil
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		v := newByTag(data[3])
		if v == nil {
			return
		}
		if err := DecodeBinary(data, v); err != nil {
			return
		}
		// Accepted: the decoded value must re-encode into a frame that
		// decodes back to the same value.
		enc, err := AppendBinary(nil, v)
		if err != nil {
			t.Fatalf("accepted value failed to re-encode: %v", err)
		}
		v2 := newByTag(data[3])
		if err := DecodeBinary(enc, v2); err != nil {
			t.Fatalf("re-encoded frame rejected: %v (frame %x)", err, enc)
		}
		j1, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		j2, err := json.Marshal(v2)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("re-decode diverged:\n first  %s\n second %s", j1, j2)
		}
	})
}
