package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Client is the typed counterpart of the HTTP API served by NewHandler.
// Construct it with New and functional options; the zero-option form
// speaks JSON against the versioned /v1 surface. WithAccept
// (MediaTypeBinary) switches the hot-path calls to the binary wire
// format with an automatic, sticky fallback to JSON when the server
// answers 415 — a binary-capable client against a JSON-only server
// degrades transparently.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	timeout time.Duration
	retries int
	accept  string
	prefix  string
	headers http.Header
	// jsonOnly latches after a 415 against a binary request: the server
	// does not speak the binary format, so every later call goes
	// straight to JSON instead of paying a rejected round trip each.
	jsonOnly atomic.Bool
}

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// WithTimeout bounds every call with a per-request deadline (layered
// under any caller context deadline).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithAccept selects the preferred response media type. Passing
// MediaTypeBinary opts the hot-path calls into the binary wire format
// for both request bodies and responses; anything else keeps JSON.
func WithAccept(mediaType string) ClientOption {
	return func(c *Client) { c.accept = contentMediaType(mediaType) }
}

// WithRetry retries a call up to n extra times on transport-level
// errors (connection refused, reset — calls that never reached a
// server). Answered errors (APIError) are never retried, and neither
// are calls that are unsafe to resend: a transport error only proves
// the *reply* was lost, not the request, so a non-idempotent call
// (chunked-upload ops, row updates without an idempotency key) may
// already have been applied. Reads, PUT/DELETE, estimates, and keyed
// row updates (UpdateRows auto-assigns a key when retries are on; the
// server dedupes on it) retry freely.
func WithRetry(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithHeader sets a static header on every request the client sends —
// how a caller pins per-client routing hints (the gateway's
// MP-Consistency SLA level and MP-Session token) without threading
// them through each call site.
func WithHeader(key, value string) ClientOption {
	return func(c *Client) {
		if c.headers == nil {
			c.headers = make(http.Header)
		}
		c.headers.Set(key, value)
	}
}

// WithHTTPClient sets the underlying *http.Client.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.HTTPClient = h }
}

// WithPathPrefix overrides the path prefix the typed methods call
// under. The default is "/v1"; an empty prefix addresses the legacy
// unprefixed aliases (what the deprecated NewClient constructor uses).
func WithPathPrefix(prefix string) ClientOption {
	return func(c *Client) { c.prefix = prefix }
}

// New returns a client for the given server root, addressing the
// versioned /v1 API surface by default.
func New(baseURL string, opts ...ClientOption) *Client {
	c := &Client{BaseURL: baseURL, prefix: "/v1"}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewClient returns a JSON client for the given server root against
// the legacy unprefixed paths.
//
// Deprecated: use New, which defaults to the versioned /v1 surface and
// takes functional options (WithTimeout, WithAccept, WithRetry).
func NewClient(baseURL string) *Client { return New(baseURL, WithPathPrefix("")) }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx server reply. A call that fails with an
// APIError reached a live server and was answered; any other client
// error (connection refused, reset, timeout) never got an answer —
// the distinction the gateway's failover logic routes on.
type APIError struct {
	// Status is the HTTP status code the server replied with.
	Status int
	// Code is the machine-matchable code of the error envelope
	// ({"error":{"code":…}}), empty when the server predates it.
	Code string
	// Message is the server's error string (the envelope's message, the
	// legacy {"error":"…"} string, or the raw body when neither).
	Message string
	// RetryAfter is the server's Retry-After hint on sheds (429/503),
	// zero when absent — callers pacing their retries should honor it.
	RetryAfter time.Duration
}

// Error formats the reply as "service: server returned <status>: <msg>".
func (e *APIError) Error() string {
	return fmt.Sprintf("service: server returned %d: %s", e.Status, e.Message)
}

// apiErrorFromBody parses an error body: the uniform envelope first,
// the legacy {"error":"…"} string second, the raw body as a fallback.
func apiErrorFromBody(status int, body []byte) *APIError {
	var env struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && len(env.Error) > 0 {
		var info ErrorInfo
		if json.Unmarshal(env.Error, &info) == nil && info.Message != "" {
			return &APIError{Status: status, Code: info.Code, Message: info.Message}
		}
		var msg string
		if json.Unmarshal(env.Error, &msg) == nil && msg != "" {
			return &APIError{Status: status, Message: msg}
		}
	}
	return &APIError{Status: status, Message: string(body)}
}

// DoJSON performs one JSON API call against the exact path given (no
// prefix, no negotiation): in (when non-nil) is marshaled as the
// request body, out (when non-nil) is filled from the response body,
// and a non-2xx reply is returned as an *APIError. Exported so
// clients layered on the service API — the gateway's admin client —
// reuse the same request plumbing and error discipline.
func (c *Client) DoJSON(ctx context.Context, method, path string, in, out any) error {
	return c.roundTrip(ctx, method, path, in, out, false, false, methodIdempotent(method))
}

// Do performs one API call under the client's configured path prefix
// and negotiated encoding: the binary wire format when the client was
// built WithAccept(MediaTypeBinary), the value has a binary form, and
// the server has not refused it; JSON otherwise. The typed methods
// all route through here — the codec seam tiers like the gateway
// inherit by construction.
func (c *Client) Do(ctx context.Context, method, path string, in, out any) error {
	return c.do(ctx, method, path, in, out, methodIdempotent(method))
}

// do is Do with an explicit retry-safety override for calls whose
// method alone understates their idempotency (estimates are read-only
// POSTs; keyed row updates are server-deduped PATCHes).
func (c *Client) do(ctx context.Context, method, path string, in, out any, retrySafe bool) error {
	binary := c.accept == MediaTypeBinary && !c.jsonOnly.Load()
	// Advertise binary Accept only when the reply can be decoded from
	// it; a JSON-shaped out (catalog listings, stats) keeps the reply
	// JSON while the request body may still go binary.
	acceptBinary := binary && out != nil && BinaryEncodable(out)
	return c.roundTrip(ctx, method, c.prefix+path, in, out, binary, acceptBinary, retrySafe)
}

// methodIdempotent reports whether a method is safe to resend after a
// transport failure that lost the reply (RFC 9110 §9.2.2): the call
// either has no side effects or replaces state wholesale, so a
// double-application is harmless.
func methodIdempotent(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any, binary, acceptBinary, retrySafe bool) error {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	wb := getWireBuf()
	defer putWireBuf(wb)
	var body []byte
	contentType := ""
	sentBinary := false
	if in != nil {
		if binary {
			if b, ok := appendBinary(wb.b, in); ok {
				wb.b = b
				body, contentType, sentBinary = b, MediaTypeBinary, true
			}
		}
		if body == nil {
			buf, err := json.Marshal(in)
			if err != nil {
				return err
			}
			body, contentType = buf, mediaTypeJSON
		}
	}
	resp, err := c.send(ctx, method, path, body, contentType, acceptBinary, retrySafe)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusUnsupportedMediaType && sentBinary {
		// The server does not speak the binary format (or not on this
		// endpoint). Latch JSON and replay the call once. The replay is
		// safe regardless of idempotency: a 415 was answered before the
		// request body was acted on.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		c.jsonOnly.Store(true)
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		resp, err = c.send(ctx, method, path, buf, mediaTypeJSON, false, retrySafe)
		if err != nil {
			return err
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		apiErr := apiErrorFromBody(resp.StatusCode, msg)
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if contentMediaType(resp.Header.Get("Content-Type")) == MediaTypeBinary {
		rb := getWireBuf()
		defer putWireBuf(rb)
		b, err := readAllInto(rb.b, resp.Body)
		rb.b = b
		if err != nil {
			return err
		}
		return decodeBinary(b, out)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// send issues one HTTP request, retrying transport-level failures up
// to the configured retry budget (the body is retained encoded, so a
// retry resends identical bytes). Retries apply only to retry-safe
// calls: a transport error proves the reply was lost, not the request,
// so resending a non-idempotent call could apply it twice — the
// double-apply bug the retrySafe gate closes.
func (c *Client) send(ctx context.Context, method, path string, body []byte, contentType string, acceptBinary, retrySafe bool) (*http.Response, error) {
	retries := c.retries
	if !retrySafe {
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return nil, err
		}
		for k, vs := range c.headers {
			req.Header[k] = vs
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if acceptBinary {
			req.Header.Set("Accept", MediaTypeBinary+", "+mediaTypeJSON)
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// UploadReply is the full reply of PUT /matrix/{name}: the installed
// catalog info plus any names the insert LRU-evicted to make room.
type UploadReply struct {
	MatrixInfo
	// Evicted lists the matrices evicted by this upload.
	Evicted []string `json:"evicted,omitempty"`
}

// UploadMatrix uploads (or replaces) a served matrix.
func (c *Client) UploadMatrix(ctx context.Context, name string, m Matrix) (MatrixInfo, error) {
	rep, err := c.UploadMatrixFull(ctx, name, m)
	return rep.MatrixInfo, err
}

// UploadMatrixFull uploads (or replaces) a served matrix and returns
// the full reply including LRU evictions — what a placement tier (the
// gateway) needs to keep its view of the backend's registry truthful.
func (c *Client) UploadMatrixFull(ctx context.Context, name string, m Matrix) (UploadReply, error) {
	var out UploadReply
	err := c.Do(ctx, http.MethodPut, "/matrix/"+name, m, &out)
	return out, err
}

// DeleteMatrix removes a served matrix.
func (c *Client) DeleteMatrix(ctx context.Context, name string) error {
	return c.Do(ctx, http.MethodDelete, "/matrix/"+name, nil, nil)
}

// BeginUpload starts a chunked upload of a rows×cols matrix and
// returns its state, including the upload token every subsequent step
// must present.
func (c *Client) BeginUpload(ctx context.Context, name string, rows, cols int) (UploadInfo, error) {
	var out UploadInfo
	err := c.Do(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "begin", Rows: rows, Cols: cols}, &out)
	return out, err
}

// AppendChunk ships one row-range chunk of a chunked upload.
func (c *Client) AppendChunk(ctx context.Context, name, token string, rowStart, rowEnd int, entries [][3]int64) (UploadInfo, error) {
	var out UploadInfo
	err := c.Do(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "append", Upload: token, RowStart: rowStart, RowEnd: rowEnd, Entries: entries}, &out)
	return out, err
}

// CommitUpload installs a completed chunked upload in the registry.
func (c *Client) CommitUpload(ctx context.Context, name, token string) (MatrixInfo, error) {
	var out MatrixInfo
	err := c.Do(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "commit", Upload: token}, &out)
	return out, err
}

// AbortUpload discards a staged chunked upload.
func (c *Client) AbortUpload(ctx context.Context, name, token string) error {
	return c.Do(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "abort", Upload: token}, nil)
}

// UploadMatrixChunked uploads a matrix through the chunked begin/
// append/commit lifecycle, shipping chunkRows rows per append — the
// path for matrices whose single-body JSON form would exceed the
// server's request size limit. On an append failure the staged upload
// is aborted (best effort) so it does not linger until the server GC.
func (c *Client) UploadMatrixChunked(ctx context.Context, name string, m Matrix, chunkRows int) (MatrixInfo, error) {
	if chunkRows <= 0 {
		chunkRows = 1024
	}
	info, err := c.BeginUpload(ctx, name, m.Rows, m.Cols)
	if err != nil {
		return MatrixInfo{}, err
	}
	// Bucket entries by chunk so each append carries exactly the
	// entries of its row range, in one pass over the wire form.
	chunks := (m.Rows + chunkRows - 1) / chunkRows
	byChunk := make([][][3]int64, chunks)
	for _, ent := range m.Entries {
		i := ent[0]
		if i < 0 || i >= int64(m.Rows) {
			// Out-of-range rows cannot be assigned to any chunk, so the
			// client rejects them itself (mirroring the server's bounds
			// rule) and aborts the stage rather than silently dropping
			// the entry.
			_ = c.AbortUpload(ctx, name, info.Upload)
			return MatrixInfo{}, &APIError{Status: 400, Message: fmt.Sprintf("entry row %d outside %d-row matrix", i, m.Rows)}
		}
		ci := int(i) / chunkRows
		byChunk[ci] = append(byChunk[ci], ent)
	}
	for ci, entries := range byChunk {
		if len(entries) == 0 {
			continue // sparse region: no chunk needed for empty row ranges
		}
		lo := ci * chunkRows
		hi := lo + chunkRows
		if hi > m.Rows {
			hi = m.Rows
		}
		if _, err := c.AppendChunk(ctx, name, info.Upload, lo, hi, entries); err != nil {
			_ = c.AbortUpload(ctx, name, info.Upload)
			return MatrixInfo{}, err
		}
	}
	return c.CommitUpload(ctx, name, info.Upload)
}

// UpdateRows applies a batch of sparse row patches to a served matrix
// in place — the dynamic-update path that keeps the server's sketch
// cache warm instead of forcing a full re-upload. A retrying client
// (WithRetry) auto-assigns an idempotency key when the request carries
// none: the server dedupes on it, so a retried PATCH whose first
// attempt committed before the connection died returns the original
// reply instead of applying the patch twice (fatal in delta mode).
func (c *Client) UpdateRows(ctx context.Context, name string, req UpdateRequest) (UpdateReply, error) {
	if req.Key == 0 && c.retries > 0 {
		req.Key = nextIdempotencyKey()
	}
	var out UpdateReply
	err := c.do(ctx, http.MethodPatch, "/matrices/"+name+"/rows", req, &out, req.Key != 0)
	return out, err
}

// idemSeed seeds process-unique idempotency keys: the high bits carry
// a once-per-process timestamp, the low 16 a counter — keys from
// different client processes (or restarts) occupy disjoint ranges.
var (
	idemOnce sync.Once
	idemSeed uint64
	idemCtr  atomic.Uint64
)

func nextIdempotencyKey() uint64 {
	idemOnce.Do(func() { idemSeed = uint64(time.Now().UnixNano()) << 16 })
	k := idemSeed + idemCtr.Add(1)
	if k == 0 { // zero means "no key" on the wire
		k = idemSeed + idemCtr.Add(1)
	}
	return k
}

// ReplaceRow replaces one row of a served matrix with the given
// (col, value) entries (unlisted cells become zero).
func (c *Client) ReplaceRow(ctx context.Context, name string, row int, entries [][2]int64) (UpdateReply, error) {
	return c.UpdateRows(ctx, name, UpdateRequest{Updates: []RowUpdate{{Row: row, Entries: entries}}})
}

// Matrices lists the served matrices.
func (c *Client) Matrices(ctx context.Context) ([]MatrixInfo, error) {
	var out []MatrixInfo
	err := c.Do(ctx, http.MethodGet, "/matrices", nil, &out)
	return out, err
}

// Estimate runs one estimation query. Estimates are read-only despite
// the POST, so a retrying client resends them freely.
func (c *Client) Estimate(ctx context.Context, req Request) (*Result, error) {
	var out Result
	if err := c.do(ctx, http.MethodPost, "/estimate", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// EstimateBatch runs many estimation queries against a single server
// admission slot. The returned items match the queries in order; a
// per-query failure is reported in its item, not as a call error.
// Read-only like Estimate, so retry-safe.
func (c *Client) EstimateBatch(ctx context.Context, reqs []Request) ([]BatchItem, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/estimate/batch", BatchRequest{Queries: reqs}, &out, true); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Stats fetches the aggregate serving statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.Do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Health checks the server's liveness endpoint. A nil error means the
// server answered GET /healthz with a 2xx.
func (c *Client) Health(ctx context.Context) error {
	return c.Do(ctx, http.MethodGet, "/healthz", nil, nil)
}
