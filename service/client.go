package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is the typed counterpart of the HTTP API served by NewHandler.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given server root.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx server reply.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: server returned %d: %s", e.Status, e.Message)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: apiErr.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: string(msg)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// UploadMatrix uploads (or replaces) a served matrix.
func (c *Client) UploadMatrix(ctx context.Context, name string, m Matrix) (MatrixInfo, error) {
	var out MatrixInfo
	err := c.do(ctx, http.MethodPut, "/matrix/"+name, m, &out)
	return out, err
}

// DeleteMatrix removes a served matrix.
func (c *Client) DeleteMatrix(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/matrix/"+name, nil, nil)
}

// Matrices lists the served matrices.
func (c *Client) Matrices(ctx context.Context) ([]MatrixInfo, error) {
	var out []MatrixInfo
	err := c.do(ctx, http.MethodGet, "/matrices", nil, &out)
	return out, err
}

// Estimate runs one estimation query.
func (c *Client) Estimate(ctx context.Context, req Request) (*Result, error) {
	var out Result
	if err := c.do(ctx, http.MethodPost, "/estimate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EstimateBatch runs many estimation queries against a single server
// admission slot. The returned items match the queries in order; a
// per-query failure is reported in its item, not as a call error.
func (c *Client) EstimateBatch(ctx context.Context, reqs []Request) ([]BatchItem, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/estimate/batch", BatchRequest{Queries: reqs}, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Stats fetches the aggregate serving statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}
