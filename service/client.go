package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is the typed counterpart of the HTTP API served by NewHandler.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given server root.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx server reply. A call that fails with an
// APIError reached a live server and was answered; any other client
// error (connection refused, reset, timeout) never got an answer —
// the distinction the gateway's failover logic routes on.
type APIError struct {
	// Status is the HTTP status code the server replied with.
	Status int
	// Message is the server's error string (the "error" field of the
	// JSON error body, or the raw body when it is not that shape).
	Message string
}

// Error formats the reply as "service: server returned <status>: <msg>".
func (e *APIError) Error() string {
	return fmt.Sprintf("service: server returned %d: %s", e.Status, e.Message)
}

// DoJSON performs one JSON API call: in (when non-nil) is marshaled as
// the request body, out (when non-nil) is filled from the response
// body, and a non-2xx reply is returned as an *APIError. Exported so
// clients layered on the service API — the gateway's admin client —
// reuse the same request plumbing and error discipline.
func (c *Client) DoJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: apiErr.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: string(msg)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// UploadReply is the full reply of PUT /matrix/{name}: the installed
// catalog info plus any names the insert LRU-evicted to make room.
type UploadReply struct {
	MatrixInfo
	// Evicted lists the matrices evicted by this upload.
	Evicted []string `json:"evicted,omitempty"`
}

// UploadMatrix uploads (or replaces) a served matrix.
func (c *Client) UploadMatrix(ctx context.Context, name string, m Matrix) (MatrixInfo, error) {
	rep, err := c.UploadMatrixFull(ctx, name, m)
	return rep.MatrixInfo, err
}

// UploadMatrixFull uploads (or replaces) a served matrix and returns
// the full reply including LRU evictions — what a placement tier (the
// gateway) needs to keep its view of the backend's registry truthful.
func (c *Client) UploadMatrixFull(ctx context.Context, name string, m Matrix) (UploadReply, error) {
	var out UploadReply
	err := c.DoJSON(ctx, http.MethodPut, "/matrix/"+name, m, &out)
	return out, err
}

// DeleteMatrix removes a served matrix.
func (c *Client) DeleteMatrix(ctx context.Context, name string) error {
	return c.DoJSON(ctx, http.MethodDelete, "/matrix/"+name, nil, nil)
}

// BeginUpload starts a chunked upload of a rows×cols matrix and
// returns its state, including the upload token every subsequent step
// must present.
func (c *Client) BeginUpload(ctx context.Context, name string, rows, cols int) (UploadInfo, error) {
	var out UploadInfo
	err := c.DoJSON(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "begin", Rows: rows, Cols: cols}, &out)
	return out, err
}

// AppendChunk ships one row-range chunk of a chunked upload.
func (c *Client) AppendChunk(ctx context.Context, name, token string, rowStart, rowEnd int, entries [][3]int64) (UploadInfo, error) {
	var out UploadInfo
	err := c.DoJSON(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "append", Upload: token, RowStart: rowStart, RowEnd: rowEnd, Entries: entries}, &out)
	return out, err
}

// CommitUpload installs a completed chunked upload in the registry.
func (c *Client) CommitUpload(ctx context.Context, name, token string) (MatrixInfo, error) {
	var out MatrixInfo
	err := c.DoJSON(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "commit", Upload: token}, &out)
	return out, err
}

// AbortUpload discards a staged chunked upload.
func (c *Client) AbortUpload(ctx context.Context, name, token string) error {
	return c.DoJSON(ctx, http.MethodPost, "/matrices/"+name+"/chunks",
		ChunkRequest{Op: "abort", Upload: token}, nil)
}

// UploadMatrixChunked uploads a matrix through the chunked begin/
// append/commit lifecycle, shipping chunkRows rows per append — the
// path for matrices whose single-body JSON form would exceed the
// server's request size limit. On an append failure the staged upload
// is aborted (best effort) so it does not linger until the server GC.
func (c *Client) UploadMatrixChunked(ctx context.Context, name string, m Matrix, chunkRows int) (MatrixInfo, error) {
	if chunkRows <= 0 {
		chunkRows = 1024
	}
	info, err := c.BeginUpload(ctx, name, m.Rows, m.Cols)
	if err != nil {
		return MatrixInfo{}, err
	}
	// Bucket entries by chunk so each append carries exactly the
	// entries of its row range, in one pass over the wire form.
	chunks := (m.Rows + chunkRows - 1) / chunkRows
	byChunk := make([][][3]int64, chunks)
	for _, ent := range m.Entries {
		i := ent[0]
		if i < 0 || i >= int64(m.Rows) {
			// Out-of-range rows cannot be assigned to any chunk, so the
			// client rejects them itself (mirroring the server's bounds
			// rule) and aborts the stage rather than silently dropping
			// the entry.
			_ = c.AbortUpload(ctx, name, info.Upload)
			return MatrixInfo{}, &APIError{Status: 400, Message: fmt.Sprintf("entry row %d outside %d-row matrix", i, m.Rows)}
		}
		ci := int(i) / chunkRows
		byChunk[ci] = append(byChunk[ci], ent)
	}
	for ci, entries := range byChunk {
		if len(entries) == 0 {
			continue // sparse region: no chunk needed for empty row ranges
		}
		lo := ci * chunkRows
		hi := lo + chunkRows
		if hi > m.Rows {
			hi = m.Rows
		}
		if _, err := c.AppendChunk(ctx, name, info.Upload, lo, hi, entries); err != nil {
			_ = c.AbortUpload(ctx, name, info.Upload)
			return MatrixInfo{}, err
		}
	}
	return c.CommitUpload(ctx, name, info.Upload)
}

// UpdateRows applies a batch of sparse row patches to a served matrix
// in place — the dynamic-update path that keeps the server's sketch
// cache warm instead of forcing a full re-upload.
func (c *Client) UpdateRows(ctx context.Context, name string, req UpdateRequest) (UpdateReply, error) {
	var out UpdateReply
	err := c.DoJSON(ctx, http.MethodPatch, "/matrices/"+name+"/rows", req, &out)
	return out, err
}

// ReplaceRow replaces one row of a served matrix with the given
// (col, value) entries (unlisted cells become zero).
func (c *Client) ReplaceRow(ctx context.Context, name string, row int, entries [][2]int64) (UpdateReply, error) {
	return c.UpdateRows(ctx, name, UpdateRequest{Updates: []RowUpdate{{Row: row, Entries: entries}}})
}

// Matrices lists the served matrices.
func (c *Client) Matrices(ctx context.Context) ([]MatrixInfo, error) {
	var out []MatrixInfo
	err := c.DoJSON(ctx, http.MethodGet, "/matrices", nil, &out)
	return out, err
}

// Estimate runs one estimation query.
func (c *Client) Estimate(ctx context.Context, req Request) (*Result, error) {
	var out Result
	if err := c.DoJSON(ctx, http.MethodPost, "/estimate", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EstimateBatch runs many estimation queries against a single server
// admission slot. The returned items match the queries in order; a
// per-query failure is reported in its item, not as a call error.
func (c *Client) EstimateBatch(ctx context.Context, reqs []Request) ([]BatchItem, error) {
	var out BatchResponse
	if err := c.DoJSON(ctx, http.MethodPost, "/estimate/batch", BatchRequest{Queries: reqs}, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Stats fetches the aggregate serving statistics.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var out Stats
	err := c.DoJSON(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Health checks the server's liveness endpoint. A nil error means the
// server answered GET /healthz with a 2xx.
func (c *Client) Health(ctx context.Context) error {
	return c.DoJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}
