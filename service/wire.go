package service

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/intmat"
)

// Matrix is the wire representation of an integer matrix: dimensions
// plus sparse (row, col, value) triples. It is what clients upload as
// Bob's served matrix and ship as Alice's query matrix.
type Matrix struct {
	// Rows is the matrix row count.
	Rows int `json:"rows"`
	// Cols is the matrix column count.
	Cols int `json:"cols"`
	// Entries are sparse (row, col, value) triples; unlisted cells are
	// zero. Duplicate (row, col) pairs are rejected on upload.
	Entries [][3]int64 `json:"entries"`
}

// MatrixFromDense builds the wire form of a dense integer matrix.
func MatrixFromDense(d *intmat.Dense) Matrix {
	m := Matrix{Rows: d.Rows(), Cols: d.Cols()}
	for _, e := range d.NonZeros() {
		m.Entries = append(m.Entries, [3]int64{int64(e.I), int64(e.J), e.V})
	}
	return m
}

// MatrixFromBool builds the wire form of a Boolean matrix.
func MatrixFromBool(b *bitmat.Matrix) Matrix {
	m := Matrix{Rows: b.Rows(), Cols: b.Cols()}
	for i := 0; i < b.Rows(); i++ {
		for _, j := range b.RowSupport(i) {
			m.Entries = append(m.Entries, [3]int64{int64(i), int64(j), 1})
		}
	}
	return m
}

// maxMatrixElems bounds rows×cols of an uploaded matrix (the dense
// form allocates one int64 per element — 1<<24 elements is 128 MiB) so
// a tiny hostile request cannot demand an enormous allocation.
const maxMatrixElems = 1 << 24

// dimsInRange validates matrix dimensions against maxMatrixElems. Each
// side is bounded before the product is formed, so hostile dimensions
// around 2^32 cannot wrap the int64 multiplication past the check and
// panic the dense allocation.
func dimsInRange(rows, cols int) bool {
	if rows <= 0 || cols <= 0 || rows > maxMatrixElems || cols > maxMatrixElems {
		return false
	}
	return int64(rows)*int64(cols) <= maxMatrixElems
}

// toDense validates the wire matrix and converts it, reporting whether
// every entry is 0/1 (binary, eligible for the ℓ∞ protocols) and
// whether all entries are non-negative (eligible for Remark 2/3).
// Duplicate (row, col) entries are rejected: silently letting the last
// one win (the previous behavior) also miscounted the catalog NNZ,
// which is computed from the dense form precisely because wire entries
// may carry explicit zeros.
func (m Matrix) toDense() (d *intmat.Dense, binary, nonNeg bool, err error) {
	if !dimsInRange(m.Rows, m.Cols) {
		return nil, false, false, fmt.Errorf("%w: matrix dimensions %dx%d out of range", ErrBadRequest, m.Rows, m.Cols)
	}
	d = intmat.NewDense(m.Rows, m.Cols)
	seen := make(map[int64]struct{}, len(m.Entries))
	binary, nonNeg = true, true
	for _, e := range m.Entries {
		i, j, v := e[0], e[1], e[2]
		if i < 0 || i >= int64(m.Rows) || j < 0 || j >= int64(m.Cols) {
			return nil, false, false, fmt.Errorf("%w: entry (%d, %d) outside %dx%d matrix", ErrBadRequest, i, j, m.Rows, m.Cols)
		}
		cell := i*int64(m.Cols) + j
		if _, dup := seen[cell]; dup {
			return nil, false, false, fmt.Errorf("%w: duplicate entry (%d, %d)", ErrBadRequest, i, j)
		}
		seen[cell] = struct{}{}
		if v != 0 && v != 1 {
			binary = false
		}
		if v < 0 {
			nonNeg = false
		}
		d.Set(int(i), int(j), v)
	}
	return d, binary, nonNeg, nil
}

// toBool converts a binary wire matrix for the Boolean-matrix
// protocols.
func toBool(d *intmat.Dense) *bitmat.Matrix {
	b := bitmat.New(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		for j, v := range d.Row(i) {
			if v != 0 {
				b.Set(i, j, true)
			}
		}
	}
	return b
}

// Entry is one heavy-hitter output entry: a matrix position with the
// protocol's estimate of its value.
type Entry struct {
	// I is the entry's row in the product C = A·B.
	I int `json:"i"`
	// J is the entry's column in the product.
	J int `json:"j"`
	// Value is the protocol's estimate of C[I][J].
	Value float64 `json:"value"`
}
