package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Client) {
	t.Helper()
	e := NewEngine(cfg)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return srv, NewClient(srv.URL)
}

func TestHTTPRoundTrip(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()

	info, err := client.UploadMatrix(ctx, "demo", testBinaryMatrix(1, 24, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "demo" || info.Rows != 24 || !info.Binary || !info.NonNeg {
		t.Fatalf("upload info %+v", info)
	}

	seed := uint64(7)
	res, err := client.Estimate(ctx, Request{
		Matrix: "demo", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed,
		A: testBinaryMatrix(2, 24, 0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate <= 0 || res.Bits <= 0 || res.Rounds != 2 || res.Seed != seed {
		t.Fatalf("estimate result %+v", res)
	}

	// The same request over HTTP must reproduce bit-for-bit.
	res2, err := client.Estimate(ctx, Request{
		Matrix: "demo", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed,
		A: testBinaryMatrix(2, 24, 0.3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Estimate != res.Estimate || res2.Bits != res.Bits {
		t.Fatalf("not reproducible: %+v vs %+v", res2, res)
	}

	list, err := client.Matrices(ctx)
	if err != nil || len(list) != 1 || list[0].Name != "demo" {
		t.Fatalf("matrices %v err=%v", list, err)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Errors != 0 || st.TotalBits != 2*res.Bits {
		t.Fatalf("stats %+v", st)
	}

	if err := client.DeleteMatrix(ctx, "demo"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Estimate(ctx, Request{Matrix: "demo", Kind: "lp", A: testBinaryMatrix(2, 24, 0.3)}); err == nil {
		t.Fatal("estimate against deleted matrix succeeded")
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := client.UploadMatrix(ctx, "m", testBinaryMatrix(3, 8, 0.5)); err != nil {
		t.Fatal(err)
	}

	wantStatus := func(err error, want int) {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("err %v, want APIError", err)
		}
		if apiErr.Status != want {
			t.Fatalf("status %d, want %d (%s)", apiErr.Status, want, apiErr.Message)
		}
	}

	_, err := client.Estimate(ctx, Request{Matrix: "absent", Kind: "lp", A: testBinaryMatrix(4, 8, 0.5)})
	wantStatus(err, http.StatusNotFound)

	_, err = client.Estimate(ctx, Request{Matrix: "m", Kind: "nope", A: testBinaryMatrix(4, 8, 0.5)})
	wantStatus(err, http.StatusBadRequest)

	err = client.DeleteMatrix(ctx, "absent")
	wantStatus(err, http.StatusNotFound)

	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/estimate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}

	// Unknown fields are rejected (catches client/server schema drift).
	resp, err = http.Post(srv.URL+"/estimate", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}

	// Health endpoint.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestHTTPBodyTooLarge(t *testing.T) {
	old := maxBodyBytes
	maxBodyBytes = 64
	t.Cleanup(func() { maxBodyBytes = old })
	srv, _ := newTestServer(t, Config{})

	body := `{"matrix":"m","kind":"lp","a":{"rows":1,"cols":1,"entries":[` +
		strings.Repeat("[0,0,1],", 64) + `[0,0,1]]}}`
	resp, err := http.Post(srv.URL+"/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-limit body: status %d, want 413", resp.StatusCode)
	}
}

func TestHTTPBatchRoundTrip(t *testing.T) {
	_, client := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := client.UploadMatrix(ctx, "m", testBinaryMatrix(170, 16, 0.4)); err != nil {
		t.Fatal(err)
	}
	seed := uint64(171)
	a := testBinaryMatrix(172, 16, 0.4)
	items, err := client.EstimateBatch(ctx, []Request{
		{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: a},
		{Matrix: "m", Kind: "exact", A: a},
		{Matrix: "gone", Kind: "lp", A: a},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || items[0].Result == nil || items[1].Result == nil || items[2].Error == "" {
		t.Fatalf("batch items %+v", items)
	}
	single, err := client.Estimate(ctx, Request{Matrix: "m", Kind: "lp", P: 1, Eps: 0.3, Seed: &seed, A: a})
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Result.Estimate != single.Estimate || items[0].Result.Bits != single.Bits {
		t.Fatalf("batch-over-HTTP result %+v != single %+v", items[0].Result, single)
	}
	// An invalid whole batch is a call error, not per-item.
	if _, err := client.EstimateBatch(ctx, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestClientAuxiliarySurfaces covers the client plumbing the typed
// call tests do not reach: liveness, the exported raw-path JSON
// entry point, explicit upload aborts, the per-request timeout
// option, and the APIError rendering.
func TestClientAuxiliarySurfaces(t *testing.T) {
	srv, client := newTestServer(t, Config{})
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	timed := New(srv.URL, WithTimeout(5*time.Second))
	if err := timed.Health(ctx); err != nil {
		t.Fatalf("Health with timeout: %v", err)
	}

	var st Stats
	if err := client.DoJSON(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		t.Fatalf("DoJSON stats: %v", err)
	}
	if st.Requests < 0 {
		t.Fatalf("DoJSON decoded nothing: %+v", st)
	}

	up, err := client.BeginUpload(ctx, "staged", 4, 4)
	if err != nil {
		t.Fatalf("BeginUpload: %v", err)
	}
	if err := client.AbortUpload(ctx, "staged", up.Upload); err != nil {
		t.Fatalf("AbortUpload: %v", err)
	}
	if _, err := client.CommitUpload(ctx, "staged", up.Upload); err == nil {
		t.Fatal("commit of an aborted upload succeeded")
	}

	apiErr := &APIError{Status: 404, Code: "matrix_not_found", Message: "no such matrix"}
	if got := apiErr.Error(); got != "service: server returned 404: no such matrix" {
		t.Fatalf("APIError.Error() = %q", got)
	}
}
