package service

import (
	"strconv"
	"time"

	"repro/internal/metrics"
)

// engineMetrics wires an Engine into a metrics.Registry served at
// GET /metrics.
//
// Two kinds of family, matching the metrics package's cost model:
//
//   - Hot-path histograms (request duration, queue wait) are the only
//     instruments the serving path touches, through handles resolved
//     once at engine construction — per observation the cost is one
//     read-only map access (the per-kind handle) plus lock-free atomic
//     adds, a few tens of nanoseconds against a millisecond-scale
//     protocol run. DESIGN.md states this contract.
//   - Everything the engine already counts (requests, cache, uploads,
//     row updates, shard pool, occupancy) exports as func-backed
//     families sampled from the live counters at scrape time: zero
//     hot-path cost, and /metrics can never disagree with /stats.
type engineMetrics struct {
	reg *metrics.Registry
	// reqDur holds the per-kind protocol-duration histograms,
	// pre-resolved for every kind in Kinds. Read-only after
	// construction, so runJob's lookup is safe without a lock.
	reqDur map[string]*metrics.Histogram
	// queueWait is the admission-slot wait histogram — kept separate
	// from request duration so saturation (queueing) is visible apart
	// from service time.
	queueWait *metrics.Histogram
}

// queueWaitBuckets spans 10µs (uncontended admit) to ~10s (a full
// queue draining multi-millisecond jobs).
func queueWaitBuckets() []float64 { return metrics.ExpBuckets(10e-6, 4, 11) }

func newEngineMetrics(e *Engine) *engineMetrics {
	reg := metrics.NewRegistry()
	m := &engineMetrics{reg: reg, reqDur: make(map[string]*metrics.Histogram, len(Kinds))}

	durVec := reg.NewHistogramVec("mp_request_duration_seconds",
		"Protocol execution time per estimate query by kind, queue wait excluded (see mp_queue_wait_seconds).",
		nil, "kind")
	for kind := range Kinds {
		m.reqDur[kind] = durVec.With(kind)
	}
	m.queueWait = reg.NewHistogram("mp_queue_wait_seconds",
		"Admission-slot wait before a query (or batch) starts executing, reported separately from service time.",
		queueWaitBuckets())

	perKind := func() (map[string]KindStats, Stats) {
		s := e.stats.countersSnapshot(e.reg.len())
		return s.PerKind, s
	}
	reg.CounterFunc("mp_requests_total",
		"Estimate queries by protocol kind and outcome.",
		[]string{"kind", "outcome"}, func() []metrics.Sample {
			pk, _ := perKind()
			out := make([]metrics.Sample, 0, 2*len(pk))
			for kind, ks := range pk {
				out = append(out,
					metrics.Sample{Labels: []string{kind, "ok"}, Value: float64(ks.Requests - ks.Errors)},
					metrics.Sample{Labels: []string{kind, "error"}, Value: float64(ks.Errors)})
			}
			return out
		})
	reg.CounterFunc("mp_protocol_bits_total",
		"Exact protocol communication payload shipped, by kind (bits).",
		[]string{"kind"}, func() []metrics.Sample {
			pk, _ := perKind()
			out := make([]metrics.Sample, 0, len(pk))
			for kind, ks := range pk {
				out = append(out, metrics.Sample{Labels: []string{kind}, Value: float64(ks.Bits)})
			}
			return out
		})
	reg.CounterFunc("mp_rejected_total",
		"Admissions shed with 429 because the worker pool and queue were full.",
		nil, func() []metrics.Sample {
			_, s := perKind()
			return []metrics.Sample{{Value: float64(s.Rejected)}}
		})
	reg.CounterFunc("mp_evictions_total",
		"Served matrices LRU-evicted from the registry.",
		nil, func() []metrics.Sample {
			_, s := perKind()
			return []metrics.Sample{{Value: float64(s.Evictions)}}
		})
	reg.GaugeFunc("mp_matrices",
		"Served matrices currently in the registry.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(e.reg.len())}}
		})
	reg.GaugeFunc("mp_uptime_seconds",
		"Time since the engine started serving.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: time.Since(e.stats.start).Seconds()}}
		})

	// Worker-pool occupancy: live channel fill levels, not counters —
	// a scrape sees the instantaneous saturation state.
	reg.GaugeFunc("mp_workers_busy",
		"Worker slots currently executing protocol jobs.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(len(e.workers))}}
		})
	reg.GaugeFunc("mp_workers_capacity",
		"Configured worker-pool size.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(cap(e.workers))}}
		})
	reg.GaugeFunc("mp_queue_depth",
		"Admissions currently waiting for a worker slot.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(len(e.queue))}}
		})
	reg.GaugeFunc("mp_queue_capacity",
		"Configured admission-queue depth.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(cap(e.queue))}}
		})

	if e.cache != nil {
		reg.CounterFunc("mp_cache_lookups_total",
			"Sketch-cache lookups by result.",
			[]string{"result"}, func() []metrics.Sample {
				cs := e.cache.snapshot()
				return []metrics.Sample{
					{Labels: []string{"hit"}, Value: float64(cs.Hits)},
					{Labels: []string{"miss"}, Value: float64(cs.Misses)},
				}
			})
		reg.GaugeFunc("mp_cache_entries",
			"Precomputed Bob-side states currently cached.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(e.cache.snapshot().Entries)}}
			})
		reg.GaugeFunc("mp_cache_bytes",
			"Summed in-memory size of the cached states.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(e.cache.snapshot().Bytes)}}
			})
		reg.GaugeFunc("mp_cache_seed_epoch",
			"Current seed epoch of the sketch cache.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(e.cache.snapshot().SeedEpoch)}}
			})
	}

	if e.persist != nil {
		persistStats := func() PersistStats { return e.persist.snapshot() }
		reg.CounterFunc("mp_store_snapshots_total",
			"Matrix snapshots persisted to the durable store (installs and compactions).",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Snapshots)}}
			})
		reg.CounterFunc("mp_store_wal_appends_total",
			"Row-update records appended to the write-ahead log.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().WALAppends)}}
			})
		reg.CounterFunc("mp_store_compactions_total",
			"Background snapshot compactions (snapshot plus WAL truncation).",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Compactions)}}
			})
		reg.CounterFunc("mp_store_tombstones_total",
			"Durable matrix states removed by DELETE and LRU eviction.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Tombstones)}}
			})
		reg.CounterFunc("mp_store_errors_total",
			"Failed durable-store operations.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Errors)}}
			})
		reg.CounterFunc("mp_store_recovered_matrices_total",
			"Matrices restored from durable state at boot.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().RecoveredMatrices)}}
			})
		reg.CounterFunc("mp_store_replayed_records_total",
			"WAL records replayed over snapshots at boot.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().ReplayedRecords)}}
			})
		reg.CounterFunc("mp_store_recovery_errors_total",
			"Matrices or log suffixes skipped at boot because their durable state did not validate.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().RecoveryErrors)}}
			})
		reg.CounterFunc("mp_store_fsyncs_total",
			"fsync calls issued by the durable store (files and directories).",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Backend.Fsyncs)}}
			})
		reg.CounterFunc("mp_store_torn_records_total",
			"Torn WAL tail records detected and truncated on open — the expected shape of a crash mid-append.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Backend.TornRecords)}}
			})
		reg.CounterFunc("mp_store_snapshot_bytes_total",
			"Summed payload bytes of persisted snapshots.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Backend.SnapshotBytes)}}
			})
		reg.CounterFunc("mp_store_wal_bytes_total",
			"Summed payload bytes of appended WAL records.",
			nil, func() []metrics.Sample {
				return []metrics.Sample{{Value: float64(persistStats().Backend.WALBytes)}}
			})
	}

	reg.CounterFunc("mp_uploads_total",
		"Chunked-upload lifecycle events.",
		[]string{"event"}, func() []metrics.Sample {
			us := e.uploadStats()
			return []metrics.Sample{
				{Labels: []string{"begun"}, Value: float64(us.Begun)},
				{Labels: []string{"committed"}, Value: float64(us.Committed)},
				{Labels: []string{"aborted"}, Value: float64(us.Aborted)},
				{Labels: []string{"expired"}, Value: float64(us.Expired)},
			}
		})
	reg.CounterFunc("mp_upload_chunks_total",
		"Chunks accepted across all chunked uploads.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(e.uploadStats().Chunks)}}
		})
	reg.GaugeFunc("mp_uploads_active",
		"Chunked uploads currently staged (begun, not yet committed).",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(e.uploadStats().Active)}}
		})
	reg.GaugeFunc("mp_upload_staged_elems",
		"Total rows*cols staged across active chunked uploads, against the MaxStagedElems budget.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(e.uploadStats().StagedElems)}}
		})

	reg.CounterFunc("mp_row_update_requests_total",
		"PATCH row-update requests by outcome.",
		[]string{"outcome"}, func() []metrics.Sample {
			ru := e.rowUpd.snapshot()
			return []metrics.Sample{
				{Labels: []string{"ok"}, Value: float64(ru.Requests - ru.Errors)},
				{Labels: []string{"error"}, Value: float64(ru.Errors)},
			}
		})
	reg.CounterFunc("mp_rows_updated_total",
		"Row patches applied to served matrices.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(e.rowUpd.snapshot().Rows)}}
		})
	reg.CounterFunc("mp_cache_state_migrations_total",
		"Cached Bob states migrated across row updates, by result.",
		[]string{"result"}, func() []metrics.Sample {
			ru := e.rowUpd.snapshot()
			return []metrics.Sample{
				{Labels: []string{"refreshed"}, Value: float64(ru.StatesRefreshed)},
				{Labels: []string{"dropped"}, Value: float64(ru.StatesDropped)},
			}
		})

	// Shard-pool occupancy. The pool is process-wide (see ShardStats),
	// so in a process hosting several engines these aggregate across
	// them — same caveat as /stats.
	reg.GaugeFunc("mp_shards",
		"Configured row shards per job on the parallel serve path.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(e.cfg.Shards)}}
		})
	reg.CounterFunc("mp_shard_jobs_total",
		"Sharded sections that ran in parallel on the process-wide pool.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(shardStatsSnapshot(e.cfg.Shards).Jobs)}}
		})
	reg.CounterFunc("mp_shard_tasks_total",
		"Shard tasks executed by the process-wide pool.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(shardStatsSnapshot(e.cfg.Shards).Tasks)}}
		})
	reg.CounterFunc("mp_shard_busy_seconds_total",
		"Cumulative busy time per shard index — near-equal values mean a healthy row distribution.",
		[]string{"shard"}, func() []metrics.Sample {
			busy := shardStatsSnapshot(e.cfg.Shards).Busy
			out := make([]metrics.Sample, len(busy))
			for i, d := range busy {
				out[i] = metrics.Sample{Labels: []string{strconv.Itoa(i)}, Value: d.Seconds()}
			}
			return out
		})
	return m
}

// observeRun records one executed protocol run's duration into the
// per-kind histogram. Unknown kinds never reach here (they fail
// validation before a protocol runs).
//
//mp:hotpath
func (m *engineMetrics) observeRun(kind string, elapsed time.Duration) {
	if h := m.reqDur[kind]; h != nil {
		h.Observe(elapsed.Seconds())
	}
}

// Metrics returns the engine's metrics registry — the families backing
// GET /metrics. Exposed so embedders can mount the exposition on their
// own mux or register additional families alongside the engine's.
func (e *Engine) Metrics() *metrics.Registry { return e.met.reg }
