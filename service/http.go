package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// maxBodyBytes bounds request bodies (a 512×512 dense upload is ~6 MB
// of JSON; leave generous headroom). A variable so tests can exercise
// the over-limit path without building a quarter-gigabyte body.
var maxBodyBytes int64 = 256 << 20

// NewHandler exposes the engine as an HTTP API under the versioned
// /v1 prefix, with the unprefixed legacy paths kept as thin aliases:
//
//	PUT    /v1/matrix/{name}           upload/replace a served matrix (single body)
//	DELETE /v1/matrix/{name}           remove a served matrix
//	GET    /v1/matrices                list served matrices (most recent first)
//	POST   /v1/matrices/{name}/chunks  chunked upload: begin/append/commit/abort
//	PATCH  /v1/matrices/{name}/rows    apply sparse row replacements/deltas in place
//	POST   /v1/estimate                run one estimation query
//	POST   /v1/estimate/batch          run many queries against one admission slot
//	GET    /v1/stats                   aggregate serving statistics
//	GET    /v1/metrics                 Prometheus text-format exposition
//	GET    /v1/healthz                 liveness
//
// Bodies are JSON by default; the hot endpoints (uploads, estimates,
// row updates) also negotiate the binary wire format via
// Content-Type/Accept (see DecodeRequest/WriteReply and docs/API.md).
//
// The chunks endpoint is the streaming ingestion path: each request is
// one lifecycle step ({"op":"begin","rows":…,"cols":…} →
// {"op":"append","upload":…,"row_start":…,"row_end":…,"entries":…} →
// {"op":"commit","upload":…}), so each request body holds only one
// row-range chunk and matrices far beyond the single-body size limit
// can be admitted.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		mux.Handle(pattern, h)
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("route pattern without method: " + pattern)
		}
		mux.Handle(method+" /v1"+path, h)
	}
	handleFunc := func(pattern string, h http.HandlerFunc) { handle(pattern, h) }
	handleFunc("PUT /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		var m Matrix
		if err := DecodeRequest(w, r, &m); err != nil {
			e.writeError(w, err)
			return
		}
		info, evicted, err := e.PutMatrix(r.PathValue("name"), m)
		if err != nil {
			e.writeError(w, err)
			return
		}
		WriteReply(w, r, http.StatusOK, UploadReply{MatrixInfo: info, Evicted: evicted})
	})
	handleFunc("DELETE /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := e.DeleteMatrix(r.PathValue("name")); err != nil {
			e.writeError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	})
	handleFunc("GET /matrices", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, e.Matrices())
	})
	handleFunc("POST /matrices/{name}/chunks", func(w http.ResponseWriter, r *http.Request) {
		var req ChunkRequest
		if err := DecodeRequest(w, r, &req); err != nil {
			e.writeError(w, err)
			return
		}
		name := r.PathValue("name")
		switch req.Op {
		case "begin":
			info, err := e.BeginUpload(name, req.Rows, req.Cols)
			if err != nil {
				e.writeError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, info)
		case "append":
			info, err := e.AppendChunk(name, req.Upload, req.RowStart, req.RowEnd, req.Entries)
			if err != nil {
				e.writeError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, info)
		case "commit":
			info, evicted, err := e.CommitUpload(name, req.Upload)
			if err != nil {
				e.writeError(w, err)
				return
			}
			WriteReply(w, r, http.StatusOK, UploadReply{MatrixInfo: info, Evicted: evicted})
		case "abort":
			if err := e.AbortUpload(name, req.Upload); err != nil {
				e.writeError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, map[string]string{"aborted": req.Upload})
		default:
			e.writeError(w, fmt.Errorf("%w: unknown chunk op %q", ErrBadRequest, req.Op))
		}
	})
	handleFunc("PATCH /matrices/{name}/rows", func(w http.ResponseWriter, r *http.Request) {
		var req UpdateRequest
		if err := DecodeRequest(w, r, &req); err != nil {
			e.writeError(w, err)
			return
		}
		rep, err := e.UpdateRows(r.PathValue("name"), req)
		if err != nil {
			e.writeError(w, err)
			return
		}
		WriteReply(w, r, http.StatusOK, rep)
	})
	handleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := DecodeRequest(w, r, &req); err != nil {
			e.writeError(w, err)
			return
		}
		res, err := e.Estimate(r.Context(), req)
		if err != nil {
			e.writeError(w, err)
			return
		}
		WriteReply(w, r, http.StatusOK, res)
	})
	handleFunc("POST /estimate/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := DecodeRequest(w, r, &req); err != nil {
			e.writeError(w, err)
			return
		}
		items, err := e.EstimateBatch(r.Context(), req.Queries)
		if err != nil {
			e.writeError(w, err)
			return
		}
		WriteReply(w, r, http.StatusOK, BatchResponse{Results: items})
	})
	handleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, e.Stats())
	})
	handle("GET /metrics", metrics.Handler(e.Metrics()))
	handleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// ChunkRequest is the body of POST /matrices/{name}/chunks: one
// lifecycle step of a chunked upload, selected by Op.
type ChunkRequest struct {
	// Op is "begin", "append", "commit", or "abort".
	Op string `json:"op"`
	// Upload is the generation token returned by begin; required for
	// append, commit, and abort.
	Upload string `json:"upload,omitempty"`
	// Rows declares the full matrix row count (begin only).
	Rows int `json:"rows,omitempty"`
	// Cols declares the full matrix column count (begin only).
	Cols int `json:"cols,omitempty"`
	// RowStart is the inclusive start of the chunk's row range; every
	// entry must land inside [RowStart, RowEnd) (append only).
	RowStart int `json:"row_start,omitempty"`
	// RowEnd is the exclusive end of the chunk's row range (append only).
	RowEnd int `json:"row_end,omitempty"`
	// Entries are the chunk's sparse (row, col, value) triples.
	Entries [][3]int64 `json:"entries,omitempty"`
}

// BatchRequest is the body of POST /estimate/batch.
type BatchRequest struct {
	// Queries are the estimation requests to run against one admission
	// slot, bounded by the engine's MaxBatch.
	Queries []Request `json:"queries"`
}

// BatchResponse is the reply of POST /estimate/batch: one item per
// query, in order.
type BatchResponse struct {
	// Results holds one BatchItem per request query, in request order.
	Results []BatchItem `json:"results"`
}

// DecodeJSON decodes a bounded JSON request body, rejecting unknown
// fields. A request that declares a non-JSON Content-Type is rejected
// with ErrUnsupportedMedia (a 415 under WriteError) — this helper only
// speaks JSON; endpoints that also accept the binary wire format go
// through DecodeRequest. The real ResponseWriter must reach
// MaxBytesReader (a nil writer panics inside net/http when the limit
// trips on some paths, and the writer is how it flags the connection
// to close), and an over-limit body is ErrBodyTooLarge (a 413 under
// WriteError), not a generic bad request. Exported so HTTP tiers
// layered on the service API — the gateway — share one body-limit and
// error discipline.
func DecodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	if mt := contentMediaType(r.Header.Get("Content-Type")); mt != "" && mt != mediaTypeJSON && mt != mediaTypeForm {
		return fmt.Errorf("%w: %q", ErrUnsupportedMedia, mt)
	}
	return decodeJSONBody(w, r, v)
}

func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)) //mp:rawwire-ok this IS the sanctioned decode helper
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrBodyTooLarge, mbe.Limit)
		}
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //mp:rawwire-ok this IS the sanctioned encode helper
}

// ErrorInfo is the machine-parseable payload of the uniform error
// envelope: a stable short code plus the human-readable message.
type ErrorInfo struct {
	// Code is the stable, machine-matchable error code (see ErrorCode).
	Code string `json:"code"`
	// Message is the human-readable error description.
	Message string `json:"message"`
}

// ErrorEnvelope is the one error body every service and gateway
// endpoint emits: {"error":{"code":…,"message":…}}. Error responses
// are always JSON, even on binary-negotiated requests, so failure
// parsing needs no content negotiation.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// WriteErrorEnvelope writes the uniform error envelope. It is the
// single emitter of error bodies in both tiers: WriteError (and the
// gateway's error mapping) route through it.
func WriteErrorEnvelope(w http.ResponseWriter, status int, code, message string) {
	WriteJSON(w, status, ErrorEnvelope{Error: ErrorInfo{Code: code, Message: message}})
}

// ErrorCode maps a service error to its HTTP status and stable
// envelope code. Exported so tiers layered on the service API — the
// gateway — extend the mapping without duplicating it.
func ErrorCode(err error) (status int, code string) {
	switch {
	case errors.Is(err, ErrUnsupportedMedia):
		return http.StatusUnsupportedMediaType, "unsupported_media_type"
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrBodyTooLarge):
		return http.StatusRequestEntityTooLarge, "body_too_large"
	case errors.Is(err, ErrMatrixNotFound):
		return http.StatusNotFound, "matrix_not_found"
	case errors.Is(err, ErrUploadNotFound):
		return http.StatusNotFound, "upload_not_found"
	case errors.Is(err, ErrConflict):
		return http.StatusConflict, "conflict"
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, "unavailable"
	case errors.Is(err, ErrStore):
		return http.StatusInternalServerError, "store_error"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeError is WriteError with the engine's backoff hint attached:
// admission sheds (ErrOverloaded → 429) carry a Retry-After header
// derived from the recent median queue wait, so open-loop clients and
// the gateway's failover stop hammering a saturated engine instead of
// retrying into the same full queue.
func (e *Engine) writeError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) {
		secs := int(math.Ceil(e.RetryAfter().Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	WriteError(w, err)
}

// WriteError maps a service error through ErrorCode (ErrBadRequest →
// 400, ErrUnsupportedMedia → 415, ErrBodyTooLarge → 413,
// ErrMatrixNotFound/ErrUploadNotFound → 404, ErrConflict → 409,
// ErrOverloaded → 429, ErrClosed → 503, anything else → 500) and
// writes the uniform {"error":{"code","message"}} envelope.
func WriteError(w http.ResponseWriter, err error) {
	status, code := ErrorCode(err)
	WriteErrorEnvelope(w, status, code, err.Error())
}
