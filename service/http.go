package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/metrics"
)

// maxBodyBytes bounds request bodies (a 512×512 dense upload is ~6 MB
// of JSON; leave generous headroom). A variable so tests can exercise
// the over-limit path without building a quarter-gigabyte body.
var maxBodyBytes int64 = 256 << 20

// NewHandler exposes the engine as a JSON API:
//
//	PUT    /matrix/{name}           upload/replace a served matrix (single body)
//	DELETE /matrix/{name}           remove a served matrix
//	GET    /matrices                list served matrices (most recent first)
//	POST   /matrices/{name}/chunks  chunked upload: begin/append/commit/abort
//	PATCH  /matrices/{name}/rows    apply sparse row replacements/deltas in place
//	POST   /estimate                run one estimation query
//	POST   /estimate/batch          run many queries against one admission slot
//	GET    /stats                   aggregate serving statistics
//	GET    /metrics                 Prometheus text-format exposition
//	GET    /healthz                 liveness
//
// The chunks endpoint is the streaming ingestion path: each request is
// one lifecycle step ({"op":"begin","rows":…,"cols":…} →
// {"op":"append","upload":…,"row_start":…,"row_end":…,"entries":…} →
// {"op":"commit","upload":…}), so each request body holds only one
// row-range chunk and matrices far beyond the single-body size limit
// can be admitted.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		var m Matrix
		if err := DecodeJSON(w, r, &m); err != nil {
			WriteError(w, err)
			return
		}
		info, evicted, err := e.PutMatrix(r.PathValue("name"), m)
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, UploadReply{MatrixInfo: info, Evicted: evicted})
	})
	mux.HandleFunc("DELETE /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := e.DeleteMatrix(r.PathValue("name")); err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	})
	mux.HandleFunc("GET /matrices", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, e.Matrices())
	})
	mux.HandleFunc("POST /matrices/{name}/chunks", func(w http.ResponseWriter, r *http.Request) {
		var req ChunkRequest
		if err := DecodeJSON(w, r, &req); err != nil {
			WriteError(w, err)
			return
		}
		name := r.PathValue("name")
		switch req.Op {
		case "begin":
			info, err := e.BeginUpload(name, req.Rows, req.Cols)
			if err != nil {
				WriteError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, info)
		case "append":
			info, err := e.AppendChunk(name, req.Upload, req.RowStart, req.RowEnd, req.Entries)
			if err != nil {
				WriteError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, info)
		case "commit":
			info, evicted, err := e.CommitUpload(name, req.Upload)
			if err != nil {
				WriteError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, UploadReply{MatrixInfo: info, Evicted: evicted})
		case "abort":
			if err := e.AbortUpload(name, req.Upload); err != nil {
				WriteError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, map[string]string{"aborted": req.Upload})
		default:
			WriteError(w, fmt.Errorf("%w: unknown chunk op %q", ErrBadRequest, req.Op))
		}
	})
	mux.HandleFunc("PATCH /matrices/{name}/rows", func(w http.ResponseWriter, r *http.Request) {
		var req UpdateRequest
		if err := DecodeJSON(w, r, &req); err != nil {
			WriteError(w, err)
			return
		}
		rep, err := e.UpdateRows(r.PathValue("name"), req)
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := DecodeJSON(w, r, &req); err != nil {
			WriteError(w, err)
			return
		}
		res, err := e.Estimate(r.Context(), req)
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /estimate/batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := DecodeJSON(w, r, &req); err != nil {
			WriteError(w, err)
			return
		}
		items, err := e.EstimateBatch(r.Context(), req.Queries)
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, BatchResponse{Results: items})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, e.Stats())
	})
	mux.Handle("GET /metrics", metrics.Handler(e.Metrics()))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// ChunkRequest is the body of POST /matrices/{name}/chunks: one
// lifecycle step of a chunked upload, selected by Op.
type ChunkRequest struct {
	// Op is "begin", "append", "commit", or "abort".
	Op string `json:"op"`
	// Upload is the generation token returned by begin; required for
	// append, commit, and abort.
	Upload string `json:"upload,omitempty"`
	// Rows declares the full matrix row count (begin only).
	Rows int `json:"rows,omitempty"`
	// Cols declares the full matrix column count (begin only).
	Cols int `json:"cols,omitempty"`
	// RowStart is the inclusive start of the chunk's row range; every
	// entry must land inside [RowStart, RowEnd) (append only).
	RowStart int `json:"row_start,omitempty"`
	// RowEnd is the exclusive end of the chunk's row range (append only).
	RowEnd int `json:"row_end,omitempty"`
	// Entries are the chunk's sparse (row, col, value) triples.
	Entries [][3]int64 `json:"entries,omitempty"`
}

// BatchRequest is the body of POST /estimate/batch.
type BatchRequest struct {
	// Queries are the estimation requests to run against one admission
	// slot, bounded by the engine's MaxBatch.
	Queries []Request `json:"queries"`
}

// BatchResponse is the reply of POST /estimate/batch: one item per
// query, in order.
type BatchResponse struct {
	// Results holds one BatchItem per request query, in request order.
	Results []BatchItem `json:"results"`
}

// DecodeJSON decodes a bounded request body, rejecting unknown fields.
// The real ResponseWriter must reach MaxBytesReader (a nil writer
// panics inside net/http when the limit trips on some paths, and the
// writer is how it flags the connection to close), and an over-limit
// body is ErrBodyTooLarge (a 413 under WriteError), not a generic bad
// request. Exported so HTTP tiers layered on the service API — the
// gateway — share one body-limit and error discipline.
func DecodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)) //mp:rawwire-ok this IS the sanctioned decode helper
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: body exceeds %d bytes", ErrBodyTooLarge, mbe.Limit)
		}
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //mp:rawwire-ok this IS the sanctioned encode helper
}

// WriteError maps a service error to its HTTP status (ErrBadRequest →
// 400, ErrBodyTooLarge → 413, ErrMatrixNotFound/ErrUploadNotFound →
// 404, ErrConflict → 409, ErrOverloaded → 429, ErrClosed → 503,
// anything else → 500) and writes the {"error": …} body every endpoint
// uses.
func WriteError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrBodyTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrMatrixNotFound), errors.Is(err, ErrUploadNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	WriteJSON(w, status, map[string]string{"error": err.Error()})
}
