package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxBodyBytes bounds request bodies (a 512×512 dense upload is ~6 MB
// of JSON; leave generous headroom).
const maxBodyBytes = 256 << 20

// NewHandler exposes the engine as a JSON API:
//
//	PUT    /matrix/{name}   upload/replace a served matrix
//	DELETE /matrix/{name}   remove a served matrix
//	GET    /matrices        list served matrices (most recent first)
//	POST   /estimate        run one estimation query
//	GET    /stats           aggregate serving statistics
//	GET    /healthz         liveness
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		var m Matrix
		if err := decodeJSON(r, &m); err != nil {
			writeError(w, err)
			return
		}
		info, evicted, err := e.PutMatrix(r.PathValue("name"), m)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			MatrixInfo
			Evicted []string `json:"evicted,omitempty"`
		}{info, evicted})
	})
	mux.HandleFunc("DELETE /matrix/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := e.DeleteMatrix(r.PathValue("name")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("name")})
	})
	mux.HandleFunc("GET /matrices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Matrices())
	})
	mux.HandleFunc("POST /estimate", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, err)
			return
		}
		res, err := e.Estimate(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrMatrixNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
