package matprod

import (
	"math"
	"testing"
)

func TestSimilarityJoinFindsAlignedPair(t *testing.T) {
	// Two vector families with one strongly aligned pair.
	n := 96
	a := NewIntMatrix(n, n)
	b := NewIntMatrix(n, n)
	state := uint64(99)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if next()%50 == 0 {
				a.Set(i, j, int64(next()%3)+1)
			}
			if next()%50 == 0 {
				b.Set(i, j, int64(next()%3)+1)
			}
		}
	}
	// Aligned pair: row 4 of A and column 9 of B.
	for k := 0; k < 40; k++ {
		a.Set(4, k, 2)
		b.Set(k, 9, 2)
	}
	c := a.Mul(b)
	share := float64(c.Get(4, 9)) / float64(c.L1())
	if share < 0.05 {
		t.Fatalf("workload share %.3f too small; adjust", share)
	}
	out, cost, err := SimilarityJoin(a, b, share*0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, wp := range out {
		if wp.I == 4 && wp.J == 9 {
			found = true
			if math.Abs(wp.Value-float64(c.Get(4, 9)))/float64(c.Get(4, 9)) > 0.5 {
				t.Errorf("aligned pair value %v, true %d", wp.Value, c.Get(4, 9))
			}
		}
	}
	if !found {
		t.Fatalf("aligned pair not found; got %v", out)
	}
	if cost.Bits <= 0 {
		t.Fatal("no communication recorded")
	}
}

func TestSimilarityJoinValidation(t *testing.T) {
	a := NewIntMatrix(4, 4)
	b := NewIntMatrix(4, 4)
	if _, _, err := SimilarityJoin(a, b, 0, 1); err != ErrBadPhi {
		t.Errorf("threshold 0: %v", err)
	}
	if _, _, err := SimilarityJoin(a, b, 1.5, 1); err != ErrBadPhi {
		t.Errorf("threshold 1.5: %v", err)
	}
}

func TestPublicEstimateLpMulti(t *testing.T) {
	a, b := testSets(64, 20)
	ai, bi := a.ToInt(), b.ToInt()
	c := ai.Mul(bi)
	ests, cost, err := EstimateLpMulti(ai, bi, []float64{0, 1}, LpOptions{Eps: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Rounds != 2 {
		t.Fatalf("rounds = %d", cost.Rounds)
	}
	if math.Abs(ests[0]-float64(c.L0()))/float64(c.L0()) > 0.4 {
		t.Errorf("ℓ0 estimate %v vs %d", ests[0], c.L0())
	}
	if math.Abs(ests[1]-float64(c.L1()))/float64(c.L1()) > 0.4 {
		t.Errorf("ℓ1 estimate %v vs %d", ests[1], c.L1())
	}
}

func TestPairsWithOverlapAtLeast(t *testing.T) {
	a, b := testSets(96, 21)
	for k := 0; k < 50; k++ {
		a.Set(3, k, true)
		b.Set(k, 8, true)
	}
	c := a.Mul(b)
	target := c.Get(3, 8) * 8 / 10
	out, cost, err := PairsWithOverlapAtLeast(a, b, target, 9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, wp := range out {
		if wp.I == 3 && wp.J == 8 {
			found = true
		}
		// Everything returned must clear at least half the target
		// (the ε = ϕ/2 slack).
		if got := c.Get(wp.I, wp.J); float64(got) < 0.4*float64(target) {
			t.Errorf("pair (%d,%d) with overlap %d far below target %d", wp.I, wp.J, got, target)
		}
	}
	if !found {
		t.Fatalf("planted pair above threshold not found; got %v", out)
	}
	if cost.Rounds < 2 {
		t.Fatal("cost missing the exact-ℓ1 round")
	}
}

func TestPairsWithOverlapValidation(t *testing.T) {
	a, b := testSets(16, 22)
	if _, _, err := PairsWithOverlapAtLeast(a, b, 0, 1); err != ErrBadPhi {
		t.Errorf("threshold 0: %v", err)
	}
	// Threshold above the total join size returns empty, no error.
	out, _, err := PairsWithOverlapAtLeast(a, b, 1<<40, 1)
	if err != nil || len(out) != 0 {
		t.Errorf("huge threshold: out=%v err=%v", out, err)
	}
}
