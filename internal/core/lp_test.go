package core

import (
	"math"
	"testing"
)

func TestEstimateLpL0Binary(t *testing.T) {
	a := randomBinary(10, 128, 128, 0.08).ToInt()
	b := randomBinary(11, 128, 128, 0.08).ToInt()
	truth := float64(a.Mul(b).L0())
	est, cost, err := EstimateLp(a, b, 0, LpOpts{Eps: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(est, truth); re > 0.35 {
		t.Fatalf("p=0 estimate %v vs truth %v (rel %.3f)", est, truth, re)
	}
	if cost.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", cost.Rounds)
	}
}

func TestEstimateLpL1NonNegative(t *testing.T) {
	a := randomInt(12, 100, 100, 0.1, 3, true)
	b := randomInt(13, 100, 100, 0.1, 3, true)
	truth := float64(a.Mul(b).L1())
	est, _, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(est, truth); re > 0.35 {
		t.Fatalf("p=1 estimate %v vs truth %v (rel %.3f)", est, truth, re)
	}
}

func TestEstimateLpL2(t *testing.T) {
	a := randomInt(14, 96, 96, 0.12, 4, false)
	b := randomInt(15, 96, 96, 0.12, 4, false)
	truth := a.Mul(b).Lp(2)
	est, _, err := EstimateLp(a, b, 2, LpOpts{Eps: 0.3, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(est, truth); re > 0.4 {
		t.Fatalf("p=2 estimate %v vs truth %v (rel %.3f)", est, truth, re)
	}
}

func TestEstimateLpFractionalP(t *testing.T) {
	a := randomInt(16, 80, 80, 0.12, 4, true)
	b := randomInt(17, 80, 80, 0.12, 4, true)
	for _, p := range []float64{0.5, 1.5} {
		truth := a.Mul(b).Lp(p)
		est, _, err := EstimateLp(a, b, p, LpOpts{Eps: 0.3, Seed: 45})
		if err != nil {
			t.Fatal(err)
		}
		// Stable-sketch constants are looser; allow a wider band.
		if re := relErr(est, truth); re > 0.5 {
			t.Errorf("p=%v estimate %v vs truth %v (rel %.3f)", p, est, truth, re)
		}
	}
}

func TestEstimateLpZeroProduct(t *testing.T) {
	// A has support only on items B never uses.
	a := randomInt(18, 32, 64, 0, 3, true) // empty
	b := randomInt(19, 64, 32, 0.2, 3, true)
	est, _, err := EstimateLp(a, b, 0, LpOpts{Eps: 0.5, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Fatalf("estimate of empty product = %v", est)
	}
}

func TestEstimateLpRectangular(t *testing.T) {
	// Section 6: A is 60×40, B is 40×90.
	a := randomInt(20, 60, 40, 0.15, 2, true)
	b := randomInt(21, 40, 90, 0.15, 2, true)
	truth := float64(a.Mul(b).L0())
	est, _, err := EstimateLp(a, b, 0, LpOpts{Eps: 0.3, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(est, truth); re > 0.4 {
		t.Fatalf("rectangular p=0 estimate %v vs %v (rel %.3f)", est, truth, re)
	}
}

func TestOneRoundLpAccuracyAndRounds(t *testing.T) {
	a := randomBinary(22, 128, 128, 0.08).ToInt()
	b := randomBinary(23, 128, 128, 0.08).ToInt()
	truth := float64(a.Mul(b).L0())
	est, cost, err := OneRoundLp(a, b, 0, LpOpts{Eps: 0.3, Seed: 48})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(est, truth); re > 0.35 {
		t.Fatalf("one-round estimate %v vs %v (rel %.3f)", est, truth, re)
	}
	if cost.Rounds != 1 {
		t.Fatalf("one-round protocol used %d rounds", cost.Rounds)
	}
}

func TestTwoRoundBeatsOneRoundCommunication(t *testing.T) {
	// The E1 separation: at small ε the 2-round Õ(n/ε) protocol must use
	// substantially fewer bits than the 1-round Õ(n/ε²) baseline.
	a := randomBinary(24, 128, 128, 0.1).ToInt()
	b := randomBinary(25, 128, 128, 0.1).ToInt()
	eps := 0.1
	_, cost2, err := EstimateLp(a, b, 0, LpOpts{Eps: eps, Seed: 49})
	if err != nil {
		t.Fatal(err)
	}
	_, cost1, err := OneRoundLp(a, b, 0, LpOpts{Eps: eps, Seed: 49})
	if err != nil {
		t.Fatal(err)
	}
	if cost2.Bits >= cost1.Bits {
		t.Fatalf("two-round %d bits not below one-round %d bits at eps=%v",
			cost2.Bits, cost1.Bits, eps)
	}
}

func TestEstimateLpCommunicationScalesWithEps(t *testing.T) {
	// Bits should grow roughly like 1/ε, not 1/ε²: going from ε=0.4 to
	// ε=0.1 (4×) must grow communication by well under 16×.
	a := randomBinary(26, 96, 96, 0.1).ToInt()
	b := randomBinary(27, 96, 96, 0.1).ToInt()
	_, costLoose, err := EstimateLp(a, b, 0, LpOpts{Eps: 0.4, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, costTight, err := EstimateLp(a, b, 0, LpOpts{Eps: 0.1, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(costTight.Bits) / float64(costLoose.Bits)
	if ratio > 10 {
		t.Fatalf("eps 0.4→0.1 grew bits by %.1f×, want ≲ 1/ε scaling", ratio)
	}
}

func TestEstimateLpDeterministicForSeed(t *testing.T) {
	a := randomInt(28, 50, 50, 0.15, 3, true)
	b := randomInt(29, 50, 50, 0.15, 3, true)
	e1, c1, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	e2, c2, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 || c1.Bits != c2.Bits {
		t.Fatal("same seed produced different executions")
	}
}

func TestEstimateLpRepsOption(t *testing.T) {
	a := randomInt(30, 40, 40, 0.2, 2, true)
	b := randomInt(31, 40, 40, 0.2, 2, true)
	_, c1, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.5, Reps: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, c3, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.5, Reps: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Bits <= c1.Bits {
		t.Fatal("more repetitions did not increase communication")
	}
	if c3.Rounds != 2 {
		t.Fatalf("parallel repetitions must stay in 2 rounds, got %d", c3.Rounds)
	}
}

func TestEstimateLpIdentityProduct(t *testing.T) {
	// A = I: C = B, so ‖C‖p^p is directly computable — a sharp edge case
	// for the grouping logic (every row norm differs).
	n := 64
	a := randomInt(0, n, n, 0, 1, true)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	b := randomInt(33, n, n, 0.2, 5, true)
	truth := b.Lp(1)
	est, _, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.3, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(est, truth); re > 0.35 {
		t.Fatalf("identity product estimate %v vs %v", est, truth)
	}
}

func TestLpPowMatchesNormDefinition(t *testing.T) {
	// Estimating ‖C‖p^p and the matrix Lp must agree on ground truth.
	a := randomInt(34, 20, 20, 0.3, 3, true)
	b := randomInt(35, 20, 20, 0.3, 3, true)
	c := a.Mul(b)
	var manual float64
	for i := 0; i < c.Rows(); i++ {
		manual += rowLpPow(c.Row(i), 1.5)
	}
	if math.Abs(manual-c.Lp(1.5)) > 1e-6 {
		t.Fatal("rowLpPow disagrees with intmat.Lp")
	}
}
