package core

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/comm"
	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// EstimateLpMulti runs Algorithm 1 for several norm indices in a single
// two-round execution: round 1 carries one sketch family per (p, rep)
// pair and round 2 one sample set per (p, rep). This amortizes the round
// cost when a caller (e.g. a query optimizer wanting both the
// composition size ‖AB‖0 and the join size ‖AB‖1) needs several
// statistics of the same product: total bits are the sum of the
// individual protocols' bits, but rounds stay at 2 instead of 2·len(ps).
//
// The returned slice is aligned with ps. Every p must lie in [0, 2].
func EstimateLpMulti(a, b *intmat.Dense, ps []float64, o LpOpts) ([]float64, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return nil, Cost{}, err
	}
	if len(ps) == 0 {
		return nil, Cost{}, ErrBadP
	}
	for _, p := range ps {
		if p < 0 || p > 2 {
			return nil, Cost{}, ErrBadP
		}
	}
	if err := o.setDefaults(); err != nil {
		return nil, Cost{}, err
	}
	beta := math.Sqrt(o.Eps)
	sizeWords := int(math.Ceil(o.SketchC / (beta * beta)))
	if sizeWords < 4 {
		sizeWords = 4
	}
	n := a.Cols()
	m1 := a.Rows()
	conn := comm.NewConn()
	shared := rng.New(o.Seed)

	// One sketch family per (p, rep).
	sketchers := make([][]rowSketcher, len(ps))
	for pi, p := range ps {
		sketchers[pi] = make([]rowSketcher, o.Reps)
		for rep := range sketchers[pi] {
			sketchers[pi][rep] = newRowSketcher(
				shared.Derive("lpmulti", strconv.Itoa(pi), strconv.Itoa(rep)), b.Cols(), p, sizeWords)
		}
	}

	// Round 1: Bob → Alice, all families batched.
	msg1 := comm.NewMessage()
	msg1.Label = "per-row ℓp sketches of B (all p, batched)"
	for _, fam := range sketchers {
		for _, rs := range fam {
			rs.encodeRows(msg1, b)
		}
	}
	recv1 := conn.Send(comm.BobToAlice, msg1)

	// Alice: per family, group and sample exactly as EstimateLp.
	alicePriv := rng.New(o.Seed).Derive("alice-private", "lpmulti")
	rho := o.RhoC / o.Eps
	rowCols := make([][]int, m1)
	rowVals := make([][]int64, m1)
	for i := 0; i < m1; i++ {
		rowCols[i], rowVals[i] = sparseRow(a, i)
	}
	msg2 := comm.NewMessage()
	msg2.Label = "sampled rows of A (all p, batched)"
	for _, fam := range sketchers {
		for _, rs := range fam {
			fieldSk, floatSk := rs.decodeRows(recv1, n)
			picks := sampleRowsByNorm(rs, rowCols, rowVals, fieldSk, floatSk, beta, rho, alicePriv, o.Shards)
			msg2.PutUvarint(uint64(len(picks)))
			for _, s := range picks {
				msg2.PutUvarint(uint64(s.i))
				msg2.PutFloat64(s.weight)
				putSparseRow(msg2, rowCols[s.i], rowVals[s.i])
			}
		}
	}
	recv2 := conn.Send(comm.AliceToBob, msg2)

	// Bob: exact norms of sampled rows, median per family. One scratch
	// row feeds the fused blocked kernel across every sample.
	out := make([]float64, len(ps))
	y := make([]int64, b.Cols())
	for pi, p := range ps {
		perRep := make([]float64, o.Reps)
		for rep := range perRep {
			count := int(recv2.Uvarint())
			var est float64
			for s := 0; s < count; s++ {
				_ = recv2.Uvarint()
				w := recv2.Float64()
				cols, vals := getSparseRow(recv2)
				est += w * mulRowLpPow(y, cols, vals, b, p)
			}
			perRep[rep] = est
		}
		out[pi] = median(perRep)
	}
	return out, costOf(conn), nil
}

// weightedPick is one sampled row with its inverse-probability weight.
type weightedPick struct {
	i      int
	weight float64
}

// sampleRowsByNorm performs Algorithm 1's group-and-sample step for one
// sketch family: estimate every row norm, partition into (1+β)-geometric
// groups, and sample each group at rate ∝ its share of the total.
//
// The row-norm estimation — the expensive sketch-combine per row — is
// sharded over contiguous row ranges (each shard owns a private scratch
// buffer and writes disjoint rowEst slots); the total is then re-summed
// in row order, matching the sequential float summation exactly, and the
// coin-consuming group-and-sample step runs sequentially so priv's
// stream is untouched by the shard count.
func sampleRowsByNorm(rs rowSketcher, rowCols [][]int, rowVals [][]int64, fieldSk [][]field.Elem, floatSk [][]float64, beta, rho float64, priv *rng.RNG, shards int) []weightedPick {
	m1 := len(rowCols)
	rowEst := make([]float64, m1)
	runShards(m1, shards, func(_, lo, hi int) {
		scratch := newRowScratch(rs)
		for i := lo; i < hi; i++ {
			if len(rowCols[i]) == 0 {
				continue
			}
			e := rs.estimateRowWith(scratch, rowCols[i], rowVals[i], fieldSk, floatSk)
			if e < 0 {
				e = 0
			}
			rowEst[i] = e
		}
	})
	total := 0.0
	for i := 0; i < m1; i++ {
		if len(rowCols[i]) == 0 {
			continue
		}
		total += rowEst[i]
	}
	type group struct {
		members []int
		sum     float64
	}
	groups := map[int]*group{}
	logBase := math.Log(1 + beta)
	for i, e := range rowEst {
		if e <= 0 {
			continue
		}
		ell := int(math.Floor(math.Log(math.Max(e, 1)) / logBase))
		g := groups[ell]
		if g == nil {
			g = &group{}
			groups[ell] = g
		}
		g.members = append(g.members, i)
		g.sum += e
	}
	keys := make([]int, 0, len(groups))
	for ell := range groups {
		keys = append(keys, ell)
	}
	sort.Ints(keys)
	var picks []weightedPick
	for _, key := range keys {
		g := groups[key]
		pl := 1.0
		if total > 0 {
			pl = math.Min(1, rho/float64(len(g.members))*(g.sum/total))
		}
		for _, i := range g.members {
			if priv.Bernoulli(pl) {
				picks = append(picks, weightedPick{i: i, weight: 1 / pl})
			}
		}
	}
	return picks
}
