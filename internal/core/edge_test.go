package core

import (
	"testing"

	"repro/internal/bitmat"
)

// Edge-case tests for protocol boundaries that the main accuracy tests
// do not reach.

func TestLinfGeneralKappaLargerThanMatrix(t *testing.T) {
	// κ² above the row count: the block size caps at m1 and the sketch
	// degenerates gracefully to a single block per column.
	a := randomInt(800, 16, 16, 0.3, 3, false)
	b := randomInt(801, 16, 16, 0.3, 3, false)
	truth, _, _ := a.Mul(b).Linf()
	est, _, err := EstimateLinfGeneral(a, b, LinfGeneralOpts{Kappa: 16, Seed: 802})
	if err != nil {
		t.Fatal(err)
	}
	if truth > 0 && (est <= 0 || est > 64*float64(truth)) {
		t.Fatalf("degenerate block estimate %v vs truth %d", est, truth)
	}
}

func TestHeavyHittersFractionalP(t *testing.T) {
	a, b, c := plantedHH(803, 64, 1, 50, 0.01)
	phi, eps := 0.1, 0.05
	must, may := hhSets(c, 0.5, phi, eps)
	out, _, err := HeavyHitters(a, b, HHOpts{Phi: phi, Eps: eps, P: 0.5, Seed: 804})
	if err != nil {
		t.Fatal(err)
	}
	checkHHOutput(t, out, must, may, "p=0.5")
}

func TestHeavyHittersBinaryCandidateWithEmptyRow(t *testing.T) {
	// A candidate entry whose row of A is empty must be skipped in
	// verification, not crash or emit garbage.
	a := bitmat.New(32, 32)
	b := bitmat.New(32, 32)
	// One real heavy pair plus an otherwise-empty matrix.
	for k := 0; k < 20; k++ {
		a.Set(2, k, true)
		b.Set(k, 5, true)
	}
	out, _, err := HeavyHittersBinary(a, b, HHBinaryOpts{Phi: 0.5, Eps: 0.25, Seed: 805})
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range out {
		if wp.I != 2 || wp.J != 5 {
			t.Fatalf("spurious output %v", wp)
		}
	}
	if len(out) != 1 {
		t.Fatalf("expected exactly the planted pair, got %v", out)
	}
}

func TestEstimateLinfBinarySingleEntry(t *testing.T) {
	a := bitmat.New(8, 8)
	b := bitmat.New(8, 8)
	a.Set(1, 3, true)
	b.Set(3, 6, true) // C[1][6] = 1, everything else zero
	est, pair, _, err := EstimateLinfBinary(a, b, LinfOpts{Eps: 0.5, Seed: 806})
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Fatalf("single-entry ℓ∞ = %v, want 1", est)
	}
	if pair != (Pair{I: 1, J: 6}) {
		t.Fatalf("pair = %v", pair)
	}
}

func TestExactL1EmptyMatrices(t *testing.T) {
	a := randomInt(807, 8, 8, 0, 1, true)
	b := randomInt(808, 8, 8, 0, 1, true)
	got, _, err := ExactL1(a, b)
	if err != nil || got != 0 {
		t.Fatalf("empty exact ℓ1 = %d, err %v", got, err)
	}
}

func TestEstimateLpTinyMatrices(t *testing.T) {
	// 1×1: degenerate shapes must flow through grouping and sampling.
	a := randomInt(809, 1, 1, 0, 1, true)
	a.Set(0, 0, 3)
	b := randomInt(810, 1, 1, 0, 1, true)
	b.Set(0, 0, 2)
	est, _, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.5, Seed: 811})
	if err != nil {
		t.Fatal(err)
	}
	if est != 6 {
		t.Fatalf("1×1 estimate %v, want exactly 6 (everything ships)", est)
	}
}

func TestSampleL1SingleEntry(t *testing.T) {
	a := randomInt(812, 4, 4, 0, 1, true)
	b := randomInt(813, 4, 4, 0, 1, true)
	a.Set(2, 1, 5)
	b.Set(1, 3, 2)
	i, j, w, _, err := SampleL1(a, b, 814)
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 || j != 3 || w != 1 {
		t.Fatalf("sample = (%d,%d,%d), want (2,3,1)", i, j, w)
	}
}
