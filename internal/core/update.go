package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/comm"
	"repro/internal/intmat"
)

// Incremental maintenance of Bob states under row updates.
//
// Every sketch and summary a Bob state precomputes is assembled from
// independent per-row contributions — fixed-size per-row ℓp sketch
// blocks (lp), per-column non-zero lists in row order (l0sample),
// per-row sums and weights (exact, l1sample, linf, linfkappa, hh).
// Replacing a row of B therefore replaces exactly that row's
// contribution, and because the shared sketch families are drawn from
// the seed before any row is touched, the incrementally updated state
// is *identical* to one rebuilt from scratch on the new matrix: same
// round-1 bytes, same Serve transcripts, same outputs, bit for bit.
// The update_test.go parity tests pin this for every state kind.
//
// Each UpdateRows method returns a NEW state and leaves the receiver
// untouched: states are immutable and may be serving concurrent
// queries while their successor is derived. Unchanged per-row data is
// shared between the generations where the representation allows it
// (the old state never mutates it).
//
// The caller contracts are uniform: nb is the post-update matrix,
// which must have the dimensions the state was built with and differ
// from the state's matrix only in the listed rows; rows need not be
// sorted or unique.

// ErrUpdateShape is returned when an incremental update's new matrix
// does not have the dimensions the state was built with (changing a
// served matrix's shape requires a full re-upload), or when an updated
// row index is out of range.
var ErrUpdateShape = errors.New("core: row update requires identical dimensions")

// normalizeRows sorts, dedupes, and bounds-checks an updated-row list.
func normalizeRows(rows []int, n int) ([]int, error) {
	out := make([]int, 0, len(rows))
	for _, k := range rows {
		if k < 0 || k >= n {
			return nil, fmt.Errorf("%w: row %d outside %d-row matrix", ErrUpdateShape, k, n)
		}
		out = append(out, k)
	}
	sort.Ints(out)
	uniq := out[:0]
	for i, k := range out {
		if i == 0 || k != out[i-1] {
			uniq = append(uniq, k)
		}
	}
	return uniq, nil
}

// rowNonNegative reports whether row k of m has no negative entry.
func rowNonNegative(m *intmat.Dense, k int) bool {
	for _, v := range m.Row(k) {
		if v < 0 {
			return false
		}
	}
	return true
}

// UpdateRows derives the BobLpState of nb from an existing state by
// re-sketching only the listed rows. The round-1 payload is a
// concatenation of fixed-size per-row sketch blocks (every row's
// sketch has the same word count within a repetition, and the same
// across repetitions), so the new rows' encodings are spliced into a
// copy of the retained bytes at their block offsets — the result is
// byte-identical to NewBobLpState(nb, p, opts).
func (s *BobLpState) UpdateRows(nb *intmat.Dense, rows []int) (*BobLpState, error) {
	n := s.b.Rows()
	if nb.Rows() != n || nb.Cols() != s.b.Cols() {
		return nil, ErrUpdateShape
	}
	rows, err := normalizeRows(rows, n)
	if err != nil {
		return nil, err
	}
	reps := s.opts.Reps
	if n == 0 || reps <= 0 || len(s.round1)%(reps*n) != 0 {
		// Degenerate shapes (no rows to splice into) fall back to a full
		// rebuild, which is just as cheap there.
		return NewBobLpState(nb, s.p, s.opts)
	}
	per := len(s.round1) / (reps * n)
	round1 := append([]byte(nil), s.round1...)
	for rep, rs := range lpSketchFamilies(s.opts, nb.Cols(), s.p) {
		for _, k := range rows {
			msg := comm.NewMessage()
			rs.encodeRowRange(msg, nb, k, k+1)
			blk := msg.Bytes()
			if len(blk) != per {
				return nil, fmt.Errorf("%w: row sketch block is %d bytes, state layout expects %d", ErrUpdateShape, len(blk), per)
			}
			copy(round1[(rep*n+k)*per:], blk)
		}
	}
	return &BobLpState{b: nb, p: s.p, opts: s.opts, round1: round1}, nil
}

// UpdateRows derives the BobL0SampleState of nb by re-indexing only
// the listed rows: each column's non-zero list drops its entries for
// the updated rows and merges the new rows' non-zeros back in row
// order, which is exactly the order the from-scratch row scan emits.
// Columns the update does not touch share their lists with the old
// state.
func (s *BobL0SampleState) UpdateRows(nb *intmat.Dense, rows []int) (*BobL0SampleState, error) {
	if nb.Rows() != s.rows || nb.Cols() != s.cols {
		return nil, ErrUpdateShape
	}
	rows, err := normalizeRows(rows, s.rows)
	if err != nil {
		return nil, err
	}
	inRow := make(map[int]bool, len(rows))
	for _, k := range rows {
		inRow[k] = true
	}
	ns := &BobL0SampleState{rows: s.rows, cols: s.cols, colNZ: make([][]colEntry, s.cols), opts: s.opts}
	for j := 0; j < s.cols; j++ {
		old := s.colNZ[j]
		changed := false
		for _, e := range old {
			if inRow[e.k] {
				changed = true
				break
			}
		}
		if !changed {
			for _, k := range rows {
				if nb.Get(k, j) != 0 {
					changed = true
					break
				}
			}
		}
		if !changed {
			ns.colNZ[j] = old // shared: the old state never mutates it
			continue
		}
		// Merge the surviving old entries with the updated rows' new
		// non-zeros, both streams ascending in row index.
		var merged []colEntry
		ri := 0
		emitNew := func(limit int) {
			for ri < len(rows) && rows[ri] < limit {
				if v := nb.Get(rows[ri], j); v != 0 {
					merged = append(merged, colEntry{k: rows[ri], v: v})
				}
				ri++
			}
		}
		for _, e := range old {
			if inRow[e.k] {
				continue
			}
			emitNew(e.k)
			merged = append(merged, e)
		}
		emitNew(s.rows)
		ns.colNZ[j] = merged
	}
	return ns, nil
}

// UpdateRows derives the BobExactL1State of nb by recomputing only the
// listed rows' sums. The updated rows must be non-negative (the rest
// of nb is unchanged from a matrix the constructor already validated).
func (s *BobExactL1State) UpdateRows(nb *intmat.Dense, rows []int) (*BobExactL1State, error) {
	if nb.Rows() != len(s.rowSums) {
		return nil, ErrUpdateShape
	}
	rows, err := normalizeRows(rows, nb.Rows())
	if err != nil {
		return nil, err
	}
	rowSums := append([]int64(nil), s.rowSums...)
	for _, k := range rows {
		if !rowNonNegative(nb, k) {
			return nil, ErrNeedNonNegative
		}
		var rs int64
		for _, v := range nb.Row(k) {
			rs += v
		}
		rowSums[k] = rs
	}
	return &BobExactL1State{rowSums: rowSums, shards: s.shards}, nil
}

// UpdateRows derives the BobL1SampleState of nb by recomputing only
// the listed rows' sums; the updated rows must be non-negative.
func (s *BobL1SampleState) UpdateRows(nb *intmat.Dense, rows []int) (*BobL1SampleState, error) {
	if nb.Rows() != s.b.Rows() || nb.Cols() != s.b.Cols() {
		return nil, ErrUpdateShape
	}
	rows, err := normalizeRows(rows, nb.Rows())
	if err != nil {
		return nil, err
	}
	rowSums := append([]int64(nil), s.rowSums...)
	for _, k := range rows {
		if !rowNonNegative(nb, k) {
			return nil, ErrNeedNonNegative
		}
		var rs int64
		for _, v := range nb.Row(k) {
			rs += v
		}
		rowSums[k] = rs
	}
	return &BobL1SampleState{b: nb, rowSums: rowSums, shards: s.shards}, nil
}

// UpdateRows derives the BobLinfState of nb by recomputing only the
// listed rows' bit weights.
func (s *BobLinfState) UpdateRows(nb *bitmat.Matrix, rows []int) (*BobLinfState, error) {
	if nb.Rows() != s.b.Rows() || nb.Cols() != s.b.Cols() {
		return nil, ErrUpdateShape
	}
	rows, err := normalizeRows(rows, nb.Rows())
	if err != nil {
		return nil, err
	}
	vk := append([]int64(nil), s.vk...)
	for _, k := range rows {
		vk[k] = int64(nb.RowWeight(k))
	}
	return &BobLinfState{b: nb, vk: vk, opts: s.opts}, nil
}

// UpdateRows derives the BobLinfKappaState of nb by recomputing only
// the listed rows' bit weights.
func (s *BobLinfKappaState) UpdateRows(nb *bitmat.Matrix, rows []int) (*BobLinfKappaState, error) {
	if nb.Rows() != s.b.Rows() || nb.Cols() != s.b.Cols() {
		return nil, ErrUpdateShape
	}
	rows, err := normalizeRows(rows, nb.Rows())
	if err != nil {
		return nil, err
	}
	vk := append([]int64(nil), s.vk...)
	for _, k := range rows {
		vk[k] = int64(nb.RowWeight(k))
	}
	return &BobLinfKappaState{b: nb, vk: vk, opts: s.opts}, nil
}

// UpdateRows derives the BobHHState of nb by recomputing only the
// listed rows' absolute sums, re-deriving the signedness flag (a full
// rescan is needed only when a previously signed matrix may have lost
// its last negative row), and incrementally updating the nested
// Algorithm 1 state when the old state had built it.
func (s *BobHHState) UpdateRows(nb *intmat.Dense, rows []int) (*BobHHState, error) {
	if nb.Rows() != s.b.Rows() || nb.Cols() != s.b.Cols() {
		return nil, ErrUpdateShape
	}
	rows, err := normalizeRows(rows, nb.Rows())
	if err != nil {
		return nil, err
	}
	ns := &BobHHState{b: nb, opts: s.opts}
	ns.absRowSums = append([]int64(nil), s.absRowSums...)
	patchNonNeg := true
	for _, k := range rows {
		var rs int64
		for _, v := range nb.Row(k) {
			if v < 0 {
				v = -v
				patchNonNeg = false
			}
			rs += v
		}
		ns.absRowSums[k] = rs
	}
	switch {
	case !patchNonNeg:
		ns.bNonNeg = false
	case s.bNonNeg:
		ns.bNonNeg = true
	default:
		// The old matrix was signed and every updated row is now
		// non-negative: the negative entry may have lived in a replaced
		// row, so re-derive the flag exactly as the constructor would.
		ns.bNonNeg = requireNonNegativeSharded(nb, s.opts.Shards) == nil
	}
	s.nestedMu.Lock()
	built, nested, nerr := s.nestedBuilt, s.nested, s.nestedErr
	s.nestedMu.Unlock()
	if built && nerr == nil && nested != nil {
		if nn, err := nested.UpdateRows(nb, rows); err == nil {
			ns.nested, ns.nestedBuilt = nn, true
		}
		// On failure the nested state is left unbuilt and re-derived
		// lazily, exactly as a fresh NewBobHHState would.
	}
	return ns, nil
}
