package core

import (
	"bytes"
	"io"
	"net"
	"testing"

	"repro/internal/comm"
)

// recordedRW wraps Bob's end of a byte stream and records the wire
// transcript in both directions.
type recordedRW struct {
	rw  io.ReadWriter
	in  bytes.Buffer // bytes Bob read (Alice→Bob)
	out bytes.Buffer // bytes Bob wrote (Bob→Alice)
}

func (r *recordedRW) Read(p []byte) (int, error) {
	n, err := r.rw.Read(p)
	r.in.Write(p[:n])
	return n, err
}

func (r *recordedRW) Write(p []byte) (int, error) {
	r.out.Write(p)
	return r.rw.Write(p)
}

// runRecorded executes the two drivers over an in-memory duplex stream
// and returns Bob's full wire transcript (received bytes, sent bytes).
func runRecorded(t *testing.T, alice, bob func(comm.Transport) error) (in, out []byte) {
	t.Helper()
	ac, bc := net.Pipe()
	rec := &recordedRW{rw: bc}
	at := comm.NewNetConn(comm.Alice, ac)
	bt := comm.NewNetConn(comm.Bob, rec)
	err := RunParties(
		Endpoint{T: at, Finish: func() { ac.Close() }},
		Endpoint{T: bt, Finish: func() { bc.Close() }},
		alice, bob,
	)
	if err != nil {
		t.Fatal(err)
	}
	return rec.in.Bytes(), rec.out.Bytes()
}

// TestBobStateServeTranscriptParity pins the two-phase API's core
// guarantee: serving a query from a precomputed Bob state — including
// re-serving from the same state, the sketch-cache hit path, and a
// state built and served with the row-shard parallel layer enabled —
// produces a wire transcript byte-identical to a fresh one-shot driver
// run with the same inputs and seed, and the same protocol output.
func TestBobStateServeTranscriptParity(t *testing.T) {
	aInt := randomInt(800, 24, 24, 0.2, 3, false) // signed
	bInt := randomInt(801, 24, 24, 0.2, 3, false)
	aPos := randomInt(802, 24, 24, 0.2, 3, true) // non-negative
	bPos := randomInt(803, 24, 24, 0.2, 3, true)
	aBit := randomBinary(804, 24, 24, 0.3)
	bBit := randomBinary(805, 24, 24, 0.3)

	// testShards is the shard count of the sharded parity variants: more
	// ranges than a 24-row input strictly supports, which also exercises
	// the coarsening in shardRanges.
	const testShards = 4

	type runs struct {
		alice   func(comm.Transport) error
		fresh   func(comm.Transport) error // one-shot BobXxx driver
		served  func(comm.Transport) error // Serve on one prebuilt state
		sharded func(comm.Transport) error // Serve on a shard-parallel state
		out     func() any                 // latest Bob output, any form
	}
	cases := map[string]func(t *testing.T) runs{
		"lp": func(t *testing.T) runs {
			o := LpOpts{Eps: 0.3, Seed: 810}
			st, err := NewBobLpState(bInt, 1, o)
			if err != nil {
				t.Fatal(err)
			}
			oSh := o
			oSh.Shards = testShards
			stSh, err := NewBobLpState(bInt, 1, oSh)
			if err != nil {
				t.Fatal(err)
			}
			var est float64
			return runs{
				alice:   func(tr comm.Transport) error { return AliceLp(tr, aInt, bInt.Cols(), 1, o) },
				fresh:   func(tr comm.Transport) (err error) { est, err = BobLp(tr, bInt, 1, o); return err },
				served:  func(tr comm.Transport) (err error) { est, err = st.Serve(tr); return err },
				sharded: func(tr comm.Transport) (err error) { est, err = stSh.Serve(tr); return err },
				out:     func() any { return est },
			}
		},
		"l0sample": func(t *testing.T) runs {
			o := L0SampleOpts{Eps: 0.5, Seed: 811}
			st, err := NewBobL0SampleState(bInt, o)
			if err != nil {
				t.Fatal(err)
			}
			oSh := o
			oSh.Shards = testShards
			stSh, err := NewBobL0SampleState(bInt, oSh)
			if err != nil {
				t.Fatal(err)
			}
			var pair Pair
			var val int64
			return runs{
				alice: func(tr comm.Transport) error { return AliceL0Sample(tr, aInt, o) },
				fresh: func(tr comm.Transport) (err error) {
					pair, val, err = BobL0Sample(tr, bInt, aInt.Rows(), o)
					return err
				},
				served: func(tr comm.Transport) (err error) {
					pair, val, err = st.Serve(tr, aInt.Rows())
					return err
				},
				sharded: func(tr comm.Transport) (err error) {
					pair, val, err = stSh.Serve(tr, aInt.Rows())
					return err
				},
				out: func() any { return [2]any{pair, val} },
			}
		},
		"l1sample": func(t *testing.T) runs {
			st, err := NewBobL1SampleState(bPos, 1)
			if err != nil {
				t.Fatal(err)
			}
			stSh, err := NewBobL1SampleState(bPos, testShards)
			if err != nil {
				t.Fatal(err)
			}
			var i, j, w int
			return runs{
				alice: func(tr comm.Transport) error { return AliceSampleL1(tr, aPos, 812) },
				fresh: func(tr comm.Transport) (err error) {
					i, j, w, err = BobSampleL1(tr, bPos, 812)
					return err
				},
				served: func(tr comm.Transport) (err error) {
					i, j, w, err = st.Serve(tr, 812)
					return err
				},
				sharded: func(tr comm.Transport) (err error) {
					i, j, w, err = stSh.Serve(tr, 812)
					return err
				},
				out: func() any { return [3]int{i, j, w} },
			}
		},
		"exact": func(t *testing.T) runs {
			st, err := NewBobExactL1State(bPos, 1)
			if err != nil {
				t.Fatal(err)
			}
			stSh, err := NewBobExactL1State(bPos, testShards)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			return runs{
				alice:   func(tr comm.Transport) error { return AliceExactL1(tr, aPos) },
				fresh:   func(tr comm.Transport) (err error) { total, err = BobExactL1(tr, bPos); return err },
				served:  func(tr comm.Transport) (err error) { total, err = st.Serve(tr); return err },
				sharded: func(tr comm.Transport) (err error) { total, err = stSh.Serve(tr); return err },
				out:     func() any { return total },
			}
		},
		"linf": func(t *testing.T) runs {
			o := LinfOpts{Eps: 0.5, Seed: 813}
			st, err := NewBobLinfState(bBit, o)
			if err != nil {
				t.Fatal(err)
			}
			oSh := o
			oSh.Shards = testShards
			stSh, err := NewBobLinfState(bBit, oSh)
			if err != nil {
				t.Fatal(err)
			}
			var est float64
			var arg Pair
			return runs{
				alice: func(tr comm.Transport) error { return AliceLinf(tr, aBit, bBit.Cols(), o) },
				fresh: func(tr comm.Transport) (err error) {
					est, arg, err = BobLinf(tr, bBit, aBit.Rows(), o)
					return err
				},
				served: func(tr comm.Transport) (err error) {
					est, arg, err = st.Serve(tr, aBit.Rows())
					return err
				},
				sharded: func(tr comm.Transport) (err error) {
					est, arg, err = stSh.Serve(tr, aBit.Rows())
					return err
				},
				out: func() any { return [2]any{est, arg} },
			}
		},
		"linfkappa": func(t *testing.T) runs {
			o := LinfKappaOpts{Kappa: 4, Seed: 814}
			st, err := NewBobLinfKappaState(bBit, o)
			if err != nil {
				t.Fatal(err)
			}
			oSh := o
			oSh.Shards = testShards
			stSh, err := NewBobLinfKappaState(bBit, oSh)
			if err != nil {
				t.Fatal(err)
			}
			var est float64
			var arg Pair
			return runs{
				alice: func(tr comm.Transport) error { return AliceLinfKappa(tr, aBit, bBit.Cols(), o) },
				fresh: func(tr comm.Transport) (err error) {
					est, arg, err = BobLinfKappa(tr, bBit, aBit.Rows(), o)
					return err
				},
				served: func(tr comm.Transport) (err error) {
					est, arg, err = st.Serve(tr, aBit.Rows())
					return err
				},
				sharded: func(tr comm.Transport) (err error) {
					est, arg, err = stSh.Serve(tr, aBit.Rows())
					return err
				},
				out: func() any { return [2]any{est, arg} },
			}
		},
		"hh-nested-lp": func(t *testing.T) runs {
			// Signed A forces the embedded Algorithm 1 scale estimation, so
			// the lazily built nested BobLpState is on the transcript.
			o := HHOpts{Phi: 0.3, Eps: 0.15, Seed: 815}
			st, err := NewBobHHState(bPos, o)
			if err != nil {
				t.Fatal(err)
			}
			oSh := o
			oSh.Shards = testShards
			stSh, err := NewBobHHState(bPos, oSh)
			if err != nil {
				t.Fatal(err)
			}
			var out []WeightedPair
			return runs{
				alice: func(tr comm.Transport) error { return AliceHH(tr, aInt, bPos.Cols(), true, o) },
				fresh: func(tr comm.Transport) (err error) {
					out, err = BobHH(tr, bPos, aInt.Rows(), false, o)
					return err
				},
				served: func(tr comm.Transport) (err error) {
					out, err = st.Serve(tr, aInt.Rows(), false)
					return err
				},
				sharded: func(tr comm.Transport) (err error) {
					out, err = stSh.Serve(tr, aInt.Rows(), false)
					return err
				},
				out: func() any { return out },
			}
		},
	}

	for name, setup := range cases {
		t.Run(name, func(t *testing.T) {
			r := setup(t)
			freshIn, freshOut := runRecorded(t, r.alice, r.fresh)
			freshResult := r.out()

			variants := []struct {
				name string
				bob  func(comm.Transport) error
			}{
				{"first serve", r.served},
				{"second serve (cache hit)", r.served},
				{"sharded serve", r.sharded},
				{"sharded re-serve", r.sharded},
			}
			for _, v := range variants {
				in, out := runRecorded(t, r.alice, v.bob)
				if !bytes.Equal(out, freshOut) {
					t.Fatalf("%s: Bob→Alice transcript differs from fresh run (%d vs %d bytes)",
						v.name, len(out), len(freshOut))
				}
				if !bytes.Equal(in, freshIn) {
					t.Fatalf("%s: Alice→Bob transcript differs from fresh run (%d vs %d bytes)",
						v.name, len(in), len(freshIn))
				}
				if got := r.out(); !equalAny(got, freshResult) {
					t.Fatalf("%s: output %v differs from fresh %v", v.name, got, freshResult)
				}
			}
		})
	}
}

func equalAny(a, b any) bool {
	switch x := a.(type) {
	case []WeightedPair:
		y, ok := b.([]WeightedPair)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
