// Package core implements the paper's protocols: two-party statistical
// estimation of a matrix product C = A·B where Alice holds A and Bob
// holds B.
//
// Protocols implemented (paper reference in parentheses):
//
//   - EstimateLp — (1+ε)-approximation of ‖AB‖p^p for p ∈ [0,2]
//     (Algorithm 1, Theorem 3.1; 2 rounds, Õ(n/ε) bits),
//   - OneRoundLp — the 1-round Õ(n/ε²) direct-sketching baseline of [16]
//     that Theorem 3.1 improves on,
//   - ExactL1 / SampleL1 — exact ‖AB‖1 and ℓ1-sampling in O(n log n) bits
//     (Remarks 2 and 3),
//   - SampleL0 — ℓ0-sampling of a non-zero entry of AB
//     (Theorem 3.2; 1 round, Õ(n/ε²) bits),
//   - EstimateLinfBinary — (2+ε)-approximation of ‖AB‖∞ for Boolean
//     matrices (Algorithm 2, Theorem 4.1; 3 rounds, Õ(n^1.5/ε) bits),
//   - EstimateLinfKappa — κ-approximation of ‖AB‖∞ for Boolean matrices
//     (Algorithm 3, Theorem 4.3; O(1) rounds, Õ(n^1.5/κ) bits),
//   - EstimateLinfGeneral — κ-approximation of ‖AB‖∞ for integer
//     matrices (Theorem 4.8(1); 1 round, Õ(n²/κ²) bits),
//   - DistributedProduct — recovery of a sparse product AB
//     (Lemma 2.5, from [16]; here via tensor CountSketch, Õ(n·√‖AB‖0)
//     bits),
//   - HeavyHitters — ℓp-(ϕ,ε)-heavy-hitters of AB for integer matrices
//     (Algorithm 4, Theorem 5.1 and Corollary 5.2; Õ(√ϕ/ε·n) bits),
//   - HeavyHittersBinary — ℓp-(ϕ,ε)-heavy-hitters for Boolean matrices
//     (Section 5.2, Theorem 5.3; Õ(n + ϕ/ε²) bits),
//   - Naive baselines that ship Alice's whole matrix.
//
// # Model
//
// Every protocol routes all exchanged bytes through a comm.Conn, which
// records exact bit counts and rounds. Shared randomness (the sketching
// matrices) is derived by both parties from the Seed option — the paper's
// public-coin model — and costs nothing; private randomness (sampling
// decisions) is derived from per-party labels so the other party provably
// never consumes it. Local computation is free.
//
// # Constants
//
// The paper's constants (10⁴ log n, …) target success probability
// 1 − 1/n¹⁰. The defaults here are scaled for constant success
// probability (≥ 0.9, boosted by median repetitions where the paper says
// to) so that the asymptotic communication shapes are visible at
// benchmarkable sizes; every constant is an exported knob on the option
// structs, and the ratio to the paper's choice is documented there.
//
// Rectangular matrices (A ∈ Z^{m1×n}, B ∈ Z^{n×m2}, Section 6 of the
// paper) are supported throughout: no protocol assumes squareness.
package core
