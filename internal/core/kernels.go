package core

import "repro/internal/intmat"

// Cache-blocked serve kernels. The lp serve path evaluates every
// sampled row of C as (sparse row of A) · B followed by an ℓp fold;
// the exact-ℓ1 serve path is one long int64 dot product. Both stream
// vectors far larger than L1 for big column counts, so the kernels
// here tile the column dimension: each output tile and the matching
// tile of every touched B row stay cache-resident across the whole
// sparse accumulation, and the ℓp fold consumes each tile while it is
// still hot instead of re-streaming the full row afterwards.
//
// Determinism contract: integer accumulation is reordered freely
// (int64 addition is exact and commutative, wraparound included), but
// the float ℓp fold visits elements in exactly the sequential column
// order with one running accumulator — rowLpPowAcc threads the
// partial sum through the tiles — so every blocked result is
// bit-identical to the unblocked kernel it replaced. The transcript
// parity tests pin this.

// mulBlockCols is the column-tile width: 2048 int64 elements is
// 16 KiB, so one output tile plus one B-row tile fit comfortably in a
// 32 KiB L1 data cache with room for the sparse row itself.
const mulBlockCols = 2048

// mulRowSparseSpanInto accumulates row · B into out[lo:hi) only — one
// column tile of the blocked kernel. Rows of B shorter than the span
// contribute their overlap, matching the unblocked kernel's defensive
// clamp. The inner loop is branchless so it vectorizes.
//
//mp:hotpath
func mulRowSparseSpanInto(out []int64, lo, hi int, cols []int, vals []int64, b *intmat.Dense) {
	for t, k := range cols {
		v := vals[t]
		if v == 0 {
			continue
		}
		rk := b.Row(k)
		end := hi
		if len(rk) < end {
			end = len(rk)
		}
		if end <= lo {
			continue
		}
		dst := out[lo:end]
		src := rk[lo:end]
		for j, bv := range dst {
			dst[j] = bv + v*src[j]
		}
	}
}

// mulRowLpPow computes ‖row · B‖p^p with the blocked kernel: each
// column tile is accumulated and folded while cache-hot, and the fold
// threads one accumulator through the tiles in column order, so the
// result is bit-identical to clear+mulRowSparseInto+rowLpPow. The
// scratch y must be b.Cols() long; its contents are overwritten.
func mulRowLpPow(y []int64, cols []int, vals []int64, b *intmat.Dense, p float64) float64 {
	if len(y) <= mulBlockCols || len(cols) < 2 {
		clear(y)
		mulRowSparseSpanInto(y, 0, len(y), cols, vals, b)
		return rowLpPowAcc(0, y, p)
	}
	var s float64
	for lo := 0; lo < len(y); lo += mulBlockCols {
		hi := min(lo+mulBlockCols, len(y))
		blk := y[lo:hi]
		clear(blk)
		mulRowSparseSpanInto(y, lo, hi, cols, vals, b)
		s = rowLpPowAcc(s, blk, p)
	}
	return s
}

// dotInt64 is the int64 dot product, 4-way unrolled so the four
// independent accumulator chains pipeline (exact: int64 addition is
// associative and commutative, wraparound included).
//
//mp:hotpath
func dotInt64(a, b []int64) int64 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// dotInt64Sharded is dotInt64 over contiguous shard ranges — the
// exact-ℓ1 serve kernel. Partial sums are recombined in shard order;
// exactness makes the shard count invisible in the answer.
func dotInt64Sharded(a, b []int64, shards int) int64 {
	n := len(a)
	if n < minShardCheapElems || shards <= 1 {
		return dotInt64(a, b)
	}
	ranges := shardRanges(n, shards)
	if len(ranges) == 1 {
		return dotInt64(a, b)
	}
	partial := make([]int64, len(ranges))
	runShards(n, shards, func(s, lo, hi int) {
		partial[s] = dotInt64(a[lo:hi], b[lo:hi])
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}
