package core

import (
	"net"
	"testing"

	"repro/internal/comm"
)

// tcpPair dials a loopback TCP connection and returns party-scoped
// transports for Alice and Bob.
func tcpPair(t *testing.T) (alice, bob *comm.NetConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	ac, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ac.Close() })
	got := <-ch
	if got.err != nil {
		t.Fatal(got.err)
	}
	t.Cleanup(func() { got.c.Close() })
	return comm.NewNetConn(comm.Alice, ac), comm.NewNetConn(comm.Bob, got.c)
}

// runTCP executes the two drivers concurrently over a loopback TCP
// connection and returns Bob's cost view.
func runTCP(t *testing.T, alice func(tr comm.Transport) error, bob func(tr comm.Transport) error) Cost {
	t.Helper()
	at, bt := tcpPair(t)
	errCh := make(chan error, 1)
	go func() { errCh <- alice(at) }()
	if err := bob(bt); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return costOf(bt)
}

func TestLpOverTCPMatchesInProcess(t *testing.T) {
	a := randomBinary(700, 64, 64, 0.1).ToInt()
	b := randomBinary(701, 64, 64, 0.1).ToInt()
	for _, p := range []float64{0, 1, 2} {
		o := LpOpts{Eps: 0.4, Seed: 702}
		want, wantCost, err := EstimateLp(a, b, p, o)
		if err != nil {
			t.Fatal(err)
		}
		var got float64
		gotCost := runTCP(t,
			func(tr comm.Transport) error { return AliceLp(tr, a, b.Cols(), p, o) },
			func(tr comm.Transport) (err error) { got, err = BobLp(tr, b, p, o); return err },
		)
		if got != want {
			t.Fatalf("p=%v: TCP estimate %v != in-process %v", p, got, want)
		}
		if gotCost.Bits != wantCost.Bits || gotCost.Rounds != wantCost.Rounds {
			t.Fatalf("p=%v: TCP cost (%d bits, %d rounds) != in-process (%d bits, %d rounds)",
				p, gotCost.Bits, gotCost.Rounds, wantCost.Bits, wantCost.Rounds)
		}
		if gotCost.Stats != wantCost.Stats {
			t.Fatalf("p=%v: TCP stats %+v != in-process %+v", p, gotCost.Stats, wantCost.Stats)
		}
	}
}

func TestL0SampleOverTCPMatchesInProcess(t *testing.T) {
	a := randomBinary(710, 48, 48, 0.15).ToInt()
	b := randomBinary(711, 48, 48, 0.15).ToInt()
	o := L0SampleOpts{Eps: 0.5, Seed: 712}
	wantPair, wantVal, wantCost, err := SampleL0(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	var gotPair Pair
	var gotVal int64
	gotCost := runTCP(t,
		func(tr comm.Transport) error { return AliceL0Sample(tr, a, o) },
		func(tr comm.Transport) (err error) {
			gotPair, gotVal, err = BobL0Sample(tr, b, a.Rows(), o)
			return err
		},
	)
	if gotPair != wantPair || gotVal != wantVal {
		t.Fatalf("TCP sample (%v, %d) != in-process (%v, %d)", gotPair, gotVal, wantPair, wantVal)
	}
	if gotCost.Bits != wantCost.Bits || gotCost.Rounds != wantCost.Rounds {
		t.Fatalf("TCP cost (%d bits, %d rounds) != in-process (%d bits, %d rounds)",
			gotCost.Bits, gotCost.Rounds, wantCost.Bits, wantCost.Rounds)
	}
}

func TestLinfBinaryOverTCPMatchesInProcess(t *testing.T) {
	a := randomBinary(720, 48, 32, 0.2)
	b := randomBinary(721, 32, 48, 0.2)
	o := LinfOpts{Eps: 0.5, Seed: 722}
	want, wantArg, wantCost, err := EstimateLinfBinary(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	var gotArg Pair
	gotCost := runTCP(t,
		func(tr comm.Transport) error { return AliceLinf(tr, a, b.Cols(), o) },
		func(tr comm.Transport) (err error) { got, gotArg, err = BobLinf(tr, b, a.Rows(), o); return err },
	)
	if got != want || gotArg != wantArg {
		t.Fatalf("TCP (%v, %v) != in-process (%v, %v)", got, gotArg, want, wantArg)
	}
	if gotCost.Stats != wantCost.Stats {
		t.Fatalf("TCP stats %+v != in-process %+v", gotCost.Stats, wantCost.Stats)
	}
}

func TestHeavyHittersOverTCPMatchesInProcess(t *testing.T) {
	a := randomInt(730, 48, 48, 0.1, 3, true)
	b := randomInt(731, 48, 48, 0.1, 3, true)
	for _, p := range []float64{1, 2} { // p=1 exact-scale path, p=2 nested-Lp path
		o := HHOpts{Phi: 0.2, Eps: 0.1, P: p, Seed: 732}
		want, wantCost, err := HeavyHitters(a, b, o)
		if err != nil {
			t.Fatal(err)
		}
		var got []WeightedPair
		gotCost := runTCP(t,
			func(tr comm.Transport) error { return AliceHH(tr, a, b.Cols(), true, o) },
			func(tr comm.Transport) (err error) { got, err = BobHH(tr, b, a.Rows(), true, o); return err },
		)
		if len(got) != len(want) {
			t.Fatalf("p=%v: TCP found %d pairs, in-process %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("p=%v: pair %d: %v != %v", p, i, got[i], want[i])
			}
		}
		if gotCost.Stats != wantCost.Stats {
			t.Fatalf("p=%v: TCP stats %+v != in-process %+v", p, gotCost.Stats, wantCost.Stats)
		}
	}
}

func TestExactAndL1SampleOverTCPMatchInProcess(t *testing.T) {
	a := randomBinary(740, 40, 40, 0.2).ToInt()
	b := randomBinary(741, 40, 40, 0.2).ToInt()

	want, wantCost, err := ExactL1(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	gotCost := runTCP(t,
		func(tr comm.Transport) error { return AliceExactL1(tr, a) },
		func(tr comm.Transport) (err error) { got, err = BobExactL1(tr, b); return err },
	)
	if got != want || gotCost.Stats != wantCost.Stats {
		t.Fatalf("exact: TCP (%d, %+v) != in-process (%d, %+v)", got, gotCost.Stats, want, wantCost.Stats)
	}

	wi, wj, wk, wCost, err := SampleL1(a, b, 742)
	if err != nil {
		t.Fatal(err)
	}
	var gi, gj, gk int
	gCost := runTCP(t,
		func(tr comm.Transport) error { return AliceSampleL1(tr, a, 742) },
		func(tr comm.Transport) (err error) { gi, gj, gk, err = BobSampleL1(tr, b, 742); return err },
	)
	if gi != wi || gj != wj || gk != wk || gCost.Stats != wCost.Stats {
		t.Fatalf("l1sample: TCP (%d,%d,%d) != in-process (%d,%d,%d)", gi, gj, gk, wi, wj, wk)
	}
}

func TestDriverValidation(t *testing.T) {
	b := randomInt(706, 8, 8, 0.3, 2, true)
	if _, err := BobLp(nil, b, 3, LpOpts{Eps: 0.5}); err != ErrBadP {
		t.Errorf("bad p: %v", err)
	}
	if err := AliceLp(nil, b, 8, 1, LpOpts{Eps: 0}); err != ErrBadEps {
		t.Errorf("bad eps: %v", err)
	}
	if err := AliceLp(nil, b, 0, 1, LpOpts{Eps: 0.5}); err != ErrDimensionMismatch {
		t.Errorf("bad m2: %v", err)
	}
}

func TestPairSurfacesOneSidedValidationError(t *testing.T) {
	// Only one party's matrix is signed: that driver dies before (or
	// after) the exchange and the peer must surface the real error, not
	// deadlock.
	a := randomInt(750, 12, 12, 0.4, 3, false) // signed
	b := randomInt(751, 12, 12, 0.4, 3, true)  // non-negative
	if _, _, err := ExactL1(a, b); err != ErrNeedNonNegative {
		t.Fatalf("signed Alice: %v, want ErrNeedNonNegative", err)
	}
	if _, _, err := ExactL1(b, a); err != ErrNeedNonNegative {
		t.Fatalf("signed Bob: %v, want ErrNeedNonNegative", err)
	}
}

func TestDriverPeerDeathIsError(t *testing.T) {
	// A Bob driver whose peer hangs up mid-protocol must fail with a
	// transport error, not hang or panic.
	ac, bc := net.Pipe()
	bob := comm.NewNetConn(comm.Bob, bc)
	go ac.Close()
	b := randomBinary(760, 16, 16, 0.2).ToInt()
	if _, err := BobExactL1(bob, b); err == nil {
		t.Fatal("peer death not surfaced")
	}
}
