package core

import (
	"errors"
	"fmt"

	"repro/internal/comm"
)

// This file is the runtime for transport-separated protocol execution.
//
// Every protocol in this package exists once, as a pair of party
// drivers (AliceLp/BobLp, AliceL0Sample/BobL0Sample, …) written against
// comm.Transport: each driver holds only its own party's matrix and
// exchanges messages through the transport seam. The interleaved
// reference functions (EstimateLp, SampleL0, …) run the two drivers
// over an in-process comm.Pair, which accounts bits and rounds exactly
// like the original single-threaded simulation — and the same driver
// code runs unchanged over a comm.NetConn when the parties are
// separated by a real socket, with identical transcripts and therefore
// identical costs.
//
// Cross-party facts a real deployment learns out of band — matrix
// dimensions and signedness, which a serving system publishes in its
// catalog — are driver parameters, not protocol payload, exactly as the
// in-process simulation treats them. This keeps the wire transcript of
// a distributed run byte-identical to the simulated one.

// Endpoint is one party's handle on a transport: the transport itself
// plus an optional hook signalling that this party's driver has
// returned, so a peer blocked mid-receive fails over instead of
// deadlocking (PairConn.Finish for in-process pairs, Close on the
// underlying connection for sockets).
type Endpoint struct {
	// T is the transport the party's driver runs over.
	T comm.Transport
	// Finish, when non-nil, signals that this party's driver returned.
	Finish func()
}

// RunParties executes an Alice driver and a Bob driver over the two
// endpoints of one transport. Drivers run concurrently (Bob on the
// calling goroutine); each endpoint's Finish hook fires when its driver
// returns, and protocol/validation errors take precedence over the
// transport errors they cause on the peer.
func RunParties(alice, bob Endpoint, aliceFn, bobFn func(comm.Transport) error) error {
	aliceDone := make(chan error, 1)
	go func() {
		err := aliceFn(alice.T)
		if alice.Finish != nil {
			alice.Finish()
		}
		aliceDone <- err
	}()
	bobErr := bobFn(bob.T)
	if bob.Finish != nil {
		bob.Finish()
	}
	aliceErr := <-aliceDone
	return firstRealError(bobErr, aliceErr)
}

// runPair executes the two party drivers of one protocol over an
// in-process transport pair and returns the merged cost.
func runPair(alice, bob func(comm.Transport) error) (Cost, error) {
	at, bt := comm.Pair()
	err := RunParties(
		Endpoint{T: at, Finish: at.Finish},
		Endpoint{T: bt, Finish: bt.Finish},
		alice, bob,
	)
	return costOf(bt), err
}

// firstRealError picks the most informative error of a pair run:
// protocol/validation errors beat the "peer terminated" transport
// errors they cause on the other side.
func firstRealError(errs ...error) error {
	var fallback error
	for _, e := range errs {
		if e == nil {
			continue
		}
		var te *comm.TransportError
		if errors.As(e, &te) {
			if fallback == nil {
				fallback = e
			}
			continue
		}
		return e
	}
	return fallback
}

// recoverDecodeError converts the panics of the message readers
// (malformed payload) and transports (I/O failure, peer termination)
// into errors at the party-driver boundary, where the peer is not
// trusted to frame correctly.
func recoverDecodeError(err *error) {
	if r := recover(); r != nil {
		if te, ok := r.(*comm.TransportError); ok {
			*err = te
			return
		}
		*err = fmt.Errorf("core: malformed protocol message: %v", r)
	}
}
