package core

import (
	"testing"
)

func TestEstimateLpMultiAccuracy(t *testing.T) {
	a := randomInt(500, 96, 96, 0.1, 3, true)
	b := randomInt(501, 96, 96, 0.1, 3, true)
	c := a.Mul(b)
	ps := []float64{0, 1, 2}
	ests, cost, err := EstimateLpMulti(a, b, ps, LpOpts{Eps: 0.3, Seed: 502})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != len(ps) {
		t.Fatalf("got %d estimates for %d norms", len(ests), len(ps))
	}
	for pi, p := range ps {
		truth := c.Lp(p)
		if re := relErr(ests[pi], truth); re > 0.4 {
			t.Errorf("p=%v: estimate %v vs truth %v (rel %.3f)", p, ests[pi], truth, re)
		}
	}
	if cost.Rounds != 2 {
		t.Fatalf("multi-norm protocol used %d rounds, want 2", cost.Rounds)
	}
}

func TestEstimateLpMultiRoundAmortization(t *testing.T) {
	// Three norms in one execution must cost 2 rounds, not 6, while the
	// bits are comparable to the sum of the singles.
	a := randomInt(503, 64, 64, 0.1, 2, true)
	b := randomInt(504, 64, 64, 0.1, 2, true)
	ps := []float64{0, 1, 2}
	_, multi, err := EstimateLpMulti(a, b, ps, LpOpts{Eps: 0.4, Seed: 505})
	if err != nil {
		t.Fatal(err)
	}
	var singleBits int64
	for _, p := range ps {
		_, c, err := EstimateLp(a, b, p, LpOpts{Eps: 0.4, Seed: 505})
		if err != nil {
			t.Fatal(err)
		}
		singleBits += c.Bits
	}
	if multi.Rounds != 2 {
		t.Fatalf("multi rounds = %d", multi.Rounds)
	}
	ratio := float64(multi.Bits) / float64(singleBits)
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("multi bits %d vs singles sum %d (ratio %.2f), want comparable", multi.Bits, singleBits, ratio)
	}
}

func TestEstimateLpMultiValidation(t *testing.T) {
	a := randomInt(506, 8, 8, 0.3, 2, true)
	b := randomInt(507, 8, 8, 0.3, 2, true)
	if _, _, err := EstimateLpMulti(a, b, nil, LpOpts{Eps: 0.5}); err != ErrBadP {
		t.Errorf("empty ps: %v", err)
	}
	if _, _, err := EstimateLpMulti(a, b, []float64{3}, LpOpts{Eps: 0.5}); err != ErrBadP {
		t.Errorf("p=3: %v", err)
	}
	if _, _, err := EstimateLpMulti(a, randomInt(1, 9, 9, 0.3, 2, true), []float64{1}, LpOpts{Eps: 0.5}); err != ErrDimensionMismatch {
		t.Errorf("dims: %v", err)
	}
}

func TestTraceRecordsLabelledMessages(t *testing.T) {
	a := randomInt(508, 48, 48, 0.1, 2, true)
	b := randomInt(509, 48, 48, 0.1, 2, true)
	_, cost, err := EstimateLp(a, b, 0, LpOpts{Eps: 0.4, Seed: 510})
	if err != nil {
		t.Fatal(err)
	}
	if len(cost.Trace) != 2 {
		t.Fatalf("trace has %d messages, want 2", len(cost.Trace))
	}
	if cost.Trace[0].Label == "" || cost.Trace[1].Label == "" {
		t.Fatal("unlabeled protocol messages")
	}
	if cost.Trace[0].Round != 1 || cost.Trace[1].Round != 2 {
		t.Fatalf("trace rounds = %d, %d", cost.Trace[0].Round, cost.Trace[1].Round)
	}
	var total int64
	for _, m := range cost.Trace {
		total += m.Bits
	}
	if total != cost.Bits {
		t.Fatalf("trace bits %d != total %d", total, cost.Bits)
	}
}
