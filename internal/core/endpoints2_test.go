package core

import (
	"net"
	"testing"

	"repro/internal/intmat"
)

func runLpOverPipe(t *testing.T, a, b *intmat.Dense, p float64, o LpOpts) float64 {
	t.Helper()
	aliceConn, bobConn := net.Pipe()
	aliceErr := make(chan error, 1)
	go func() {
		defer aliceConn.Close()
		aliceErr <- RunAliceLp(aliceConn, a, p, o)
	}()
	est, err := RunBobLp(bobConn, b, p, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-aliceErr; err != nil {
		t.Fatal(err)
	}
	return est
}

func TestTwoRoundEndpointsMatchInProcess(t *testing.T) {
	a := randomBinary(700, 64, 64, 0.1).ToInt()
	b := randomBinary(701, 64, 64, 0.1).ToInt()
	for _, p := range []float64{0, 1, 2} {
		o := LpOpts{Eps: 0.4, Seed: 702}
		want, _, err := EstimateLp(a, b, p, o)
		if err != nil {
			t.Fatal(err)
		}
		got := runLpOverPipe(t, a, b, p, o)
		if got != want {
			t.Fatalf("p=%v: endpoint estimate %v != in-process %v", p, got, want)
		}
	}
}

func TestTwoRoundEndpointsAccuracy(t *testing.T) {
	a := randomInt(703, 96, 96, 0.1, 3, true)
	b := randomInt(704, 96, 96, 0.1, 3, true)
	truth := float64(a.Mul(b).L1())
	est := runLpOverPipe(t, a, b, 1, LpOpts{Eps: 0.3, Seed: 705})
	if re := relErr(est, truth); re > 0.4 {
		t.Fatalf("pipe estimate %v vs truth %v (rel %.3f)", est, truth, re)
	}
}

func TestTwoRoundEndpointsValidation(t *testing.T) {
	b := randomInt(706, 8, 8, 0.3, 2, true)
	if _, err := RunBobLp(nil, b, 3, LpOpts{Eps: 0.5}); err != ErrBadP {
		t.Errorf("bad p: %v", err)
	}
	if err := RunAliceLp(nil, b, 1, LpOpts{Eps: 0}); err != ErrBadEps {
		t.Errorf("bad eps: %v", err)
	}
}
