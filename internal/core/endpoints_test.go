package core

import (
	"bytes"
	"net"
	"testing"
)

func TestEndpointsOverBuffer(t *testing.T) {
	a := randomBinary(600, 96, 96, 0.08).ToInt()
	b := randomBinary(601, 96, 96, 0.08).ToInt()
	opts := LpOpts{Eps: 0.3, Seed: 602}

	bob, err := NewBobL0Endpoint(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	alice, err := NewAliceL0Endpoint(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := bob.Run(&buf); err != nil {
		t.Fatal(err)
	}
	est, err := alice.Run(&buf)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(a.Mul(b).L0())
	if re := relErr(est, truth); re > 0.35 {
		t.Fatalf("endpoint estimate %v vs truth %v (rel %.3f)", est, truth, re)
	}
}

func TestEndpointsOverNetPipe(t *testing.T) {
	// The two parties run concurrently over a real byte-stream
	// connection — no shared memory beyond the seed.
	a := randomBinary(603, 64, 64, 0.1).ToInt()
	b := randomBinary(604, 64, 64, 0.1).ToInt()
	opts := LpOpts{Eps: 0.4, Seed: 605}

	bobConn, aliceConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		defer bobConn.Close()
		bob, err := NewBobL0Endpoint(b, opts)
		if err != nil {
			errCh <- err
			return
		}
		_, err = bob.Run(bobConn)
		errCh <- err
	}()
	alice, err := NewAliceL0Endpoint(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	est, err := alice.Run(aliceConn)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	truth := float64(a.Mul(b).L0())
	if re := relErr(est, truth); re > 0.45 {
		t.Fatalf("net.Pipe estimate %v vs truth %v (rel %.3f)", est, truth, re)
	}
}

func TestEndpointsMatchInProcessProtocol(t *testing.T) {
	// The endpoint pair must produce exactly the estimate of the
	// in-process OneRoundLp with the same options (identical shared
	// randomness path).
	a := randomBinary(606, 48, 48, 0.1).ToInt()
	b := randomBinary(607, 48, 48, 0.1).ToInt()
	opts := LpOpts{Eps: 0.4, Seed: 608}

	want, _, err := OneRoundLp(a, b, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	bob, _ := NewBobL0Endpoint(b, opts)
	alice, _ := NewAliceL0Endpoint(a, opts)
	var buf bytes.Buffer
	if _, err := bob.Run(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := alice.Run(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("endpoint estimate %v != in-process %v", got, want)
	}
}

func TestEndpointFrameErrors(t *testing.T) {
	a := randomBinary(609, 8, 8, 0.3).ToInt()
	alice, _ := NewAliceL0Endpoint(a, LpOpts{Eps: 0.5, Seed: 1})
	// Truncated header.
	if _, err := alice.Run(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header not reported")
	}
	// Oversized frame.
	if _, err := alice.Run(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized frame not reported")
	}
	// Truncated payload.
	if _, err := alice.Run(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2})); err == nil {
		t.Fatal("truncated payload not reported")
	}
}

func TestEndpointMalformedPayloadIsError(t *testing.T) {
	a := randomBinary(610, 8, 8, 0.3).ToInt()
	alice, _ := NewAliceL0Endpoint(a, LpOpts{Eps: 0.5, Seed: 1})
	// A well-framed but garbage payload: decode must error, not panic.
	payload := []byte{0, 0, 0, 3, 0xff, 0xff, 0x7f}
	if _, err := alice.Run(bytes.NewReader(payload)); err == nil {
		t.Fatal("garbage payload not reported as error")
	}
}
