package core

import (
	"testing"
)

func TestDistributedProductVerifyPasses(t *testing.T) {
	a := randomInt(200, 40, 40, 0.05, 3, false)
	b := randomInt(201, 40, 40, 0.05, 3, false)
	c := a.Mul(b)
	ca, cb, _, err := DistributedProduct(a, b, MatMulOpts{Sparsity: c.L0() + 1, Verify: true, Seed: 202})
	if err != nil {
		t.Fatalf("verification rejected a correct recovery: %v", err)
	}
	sum := ca.Clone()
	sum.AddMatrix(cb)
	if !sum.Equal(c) {
		t.Fatal("CA + CB != AB")
	}
}

func TestDistributedProductVerifyCatchesUndersizedSparsity(t *testing.T) {
	// Failure injection: a far-too-small sparsity bound makes the grid
	// collide everywhere; without Verify this silently returns garbage,
	// with Verify it must be flagged across every seed tried.
	a := randomInt(203, 64, 64, 0.2, 3, false)
	b := randomInt(204, 64, 64, 0.2, 3, false)
	c := a.Mul(b)
	if c.L0() < 500 {
		t.Fatalf("workload not dense enough (L0=%d)", c.L0())
	}
	caught := 0
	const trials = 5
	for s := 0; s < trials; s++ {
		_, _, _, err := DistributedProduct(a, b, MatMulOpts{Sparsity: 4, Reps: 3, Verify: true, Seed: uint64(300 + s)})
		if err == ErrRecoveryFailed {
			caught++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if caught != trials {
		t.Fatalf("verification caught only %d/%d corrupted recoveries", caught, trials)
	}
}

func TestDistributedProductVerifyCostIsSmall(t *testing.T) {
	a := randomInt(205, 48, 48, 0.05, 2, true)
	b := randomInt(206, 48, 48, 0.05, 2, true)
	s := a.Mul(b).L0() + 1
	_, _, plain, err := DistributedProduct(a, b, MatMulOpts{Sparsity: s, Seed: 207})
	if err != nil {
		t.Fatal(err)
	}
	_, _, verified, err := DistributedProduct(a, b, MatMulOpts{Sparsity: s, Verify: true, Seed: 207})
	if err != nil {
		t.Fatal(err)
	}
	extra := verified.Bits - plain.Bits
	// The witness is one field word per inner index plus framing.
	if extra <= 0 || extra > int64(48*64+128) {
		t.Fatalf("verification overhead %d bits, want ≈ n words", extra)
	}
}
