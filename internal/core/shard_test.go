package core

import (
	"sync/atomic"
	"testing"
)

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, shards int
		want      [][2]int
	}{
		{0, 4, [][2]int{{0, 0}}},
		{10, 1, [][2]int{{0, 10}}},
		{10, 0, [][2]int{{0, 10}}},
		{10, -3, [][2]int{{0, 10}}},
		// Coarsening: 10 rows cannot feed two ≥ minShardRows shards.
		{10, 4, [][2]int{{0, 10}}},
		{32, 2, [][2]int{{0, 16}, {16, 32}}},
		{33, 2, [][2]int{{0, 16}, {16, 33}}},
		{100, 3, [][2]int{{0, 33}, {33, 66}, {66, 100}}},
	}
	for _, c := range cases {
		got := shardRanges(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("shardRanges(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("shardRanges(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
			}
		}
	}
}

// TestShardRangesCoverExactly checks that for arbitrary (n, shards) the
// ranges partition [0, n) into contiguous ascending pieces, each at
// least minShardRows long when split at all.
func TestShardRangesCoverExactly(t *testing.T) {
	for n := 0; n <= 200; n += 7 {
		for shards := -1; shards <= 9; shards++ {
			ranges := shardRanges(n, shards)
			lo := 0
			for _, r := range ranges {
				if r[0] != lo {
					t.Fatalf("n=%d shards=%d: gap at %v (ranges %v)", n, shards, r, ranges)
				}
				if len(ranges) > 1 && r[1]-r[0] < minShardRows {
					t.Fatalf("n=%d shards=%d: undersized range %v", n, shards, r)
				}
				lo = r[1]
			}
			if lo != n {
				t.Fatalf("n=%d shards=%d: ranges %v do not cover [0, %d)", n, shards, ranges, n)
			}
		}
	}
}

func TestRunShardsExecutesEveryRange(t *testing.T) {
	const n = 64
	var hit [n]atomic.Int32
	runShards(n, 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			hit[i].Add(1)
		}
	})
	for i := range hit {
		if got := hit[i].Load(); got != 1 {
			t.Fatalf("row %d visited %d times, want 1", i, got)
		}
	}
}

func TestSumInt64ShardsMatchesSequential(t *testing.T) {
	term := func(k int) int64 { return int64(k*k - 17*k + 3) }
	// Spans both sides of minShardCheapElems: small n runs sequentially,
	// large n exercises the parallel per-shard partials.
	for _, n := range []int{0, 1, 15, 16, 64, 100, minShardCheapElems, minShardCheapElems + 13} {
		var want int64
		for k := 0; k < n; k++ {
			want += term(k)
		}
		for _, shards := range []int{0, 1, 2, 4, 64} {
			if got := sumInt64Shards(n, shards, term); got != want {
				t.Fatalf("sumInt64Shards(n=%d, shards=%d) = %d, want %d", n, shards, got, want)
			}
		}
	}
}

// TestShardCountersAdvance pins that parallel sections feed the pool
// counters the service surfaces in its stats.
func TestShardCountersAdvance(t *testing.T) {
	before := ShardCounters()
	runShards(64, 4, func(_, lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		_ = s
	})
	after := ShardCounters()
	if after.Jobs <= before.Jobs {
		t.Fatalf("shard jobs did not advance: %d -> %d", before.Jobs, after.Jobs)
	}
	if after.Tasks < before.Tasks+4 {
		t.Fatalf("shard tasks did not advance by the shard count: %d -> %d", before.Tasks, after.Tasks)
	}
}
