package core

import (
	"repro/internal/comm"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// ExactL1 is Remark 2: for non-negative matrices, ‖AB‖1 decomposes as
// Σ_k ‖A_{*,k}‖1·‖B_{k,*}‖1, so Alice ships her n column sums —
// O(n log n) bits, one round — and Bob computes the exact value.
//
// The identity needs non-negativity (for signed matrices cancellations
// make ‖AB‖1 genuinely hard, which is why the paper's Remark 2 is stated
// for the Boolean-matrix join setting); signed inputs return
// ErrNeedNonNegative.
func ExactL1(a, b *intmat.Dense) (int64, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, Cost{}, err
	}
	var total int64
	cost, err := runPair(
		func(t comm.Transport) error { return AliceExactL1(t, a) },
		func(t comm.Transport) (err error) { total, err = BobExactL1(t, b); return err },
	)
	if err != nil {
		return 0, cost, err
	}
	return total, cost, nil
}

// AliceExactL1 drives Alice's side of Remark 2: one message of column
// sums of A. The exact value is Bob's output.
func AliceExactL1(t comm.Transport, a *intmat.Dense) (err error) {
	defer recoverDecodeError(&err)
	if err := requireNonNegative(a); err != nil {
		return err
	}
	msg := comm.NewMessage()
	msg.Label = "column sums of A"
	for _, s := range columnSums(a) {
		msg.PutUvarint(uint64(s))
	}
	t.Send(comm.AliceToBob, msg)
	return nil
}

// BobExactL1 drives Bob's side of Remark 2 and returns the exact ‖AB‖1
// as Σ_k colSumA(k)·rowSumB(k).
func BobExactL1(t comm.Transport, b *intmat.Dense) (total int64, err error) {
	st, err := NewBobExactL1State(b, 1)
	if err != nil {
		return 0, err
	}
	return st.Serve(t)
}

// BobExactL1State is the matrix-dependent phase of Bob's side of
// Remark 2: the row sums of B (and its non-negativity check), computed
// once so each served query only multiplies them against Alice's column
// sums. Immutable after construction; safe for concurrent Serve calls.
type BobExactL1State struct {
	rowSums []int64
	shards  int
}

// NewBobExactL1State validates B and precomputes its row sums, sharding
// both row scans over contiguous ranges. shards ≤ 1 runs sequentially;
// the shard count never changes a transcript byte or an output bit.
func NewBobExactL1State(b *intmat.Dense, shards int) (*BobExactL1State, error) {
	if err := requireNonNegativeSharded(b, shards); err != nil {
		return nil, err
	}
	return &BobExactL1State{rowSums: rowSumsSharded(b, shards), shards: shards}, nil
}

// Bytes reports the memory retained by the precomputation.
func (s *BobExactL1State) Bytes() int64 { return int64(8 * len(s.rowSums)) }

// Serve runs the per-query phase of Bob's side of Remark 2 over t. The
// varint stream decodes sequentially; the dot product against the
// precomputed row sums then shards with exact int64 partials.
func (s *BobExactL1State) Serve(t comm.Transport) (total int64, err error) {
	defer recoverDecodeError(&err)
	recv := t.Recv(comm.AliceToBob)
	colSums := make([]int64, len(s.rowSums))
	for k := range colSums {
		colSums[k] = int64(recv.Uvarint())
	}
	total = dotInt64Sharded(colSums, s.rowSums, s.shards)
	return total, nil
}

// rowSumsSharded computes per-row sums of b over contiguous sharded row
// ranges (disjoint writes; exact integer arithmetic).
func rowSumsSharded(b *intmat.Dense, shards int) []int64 {
	rowSums := make([]int64, b.Rows())
	runShards(b.Rows(), shards, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			var rs int64
			for _, v := range b.Row(k) {
				rs += v
			}
			rowSums[k] = rs
		}
	})
	return rowSums
}

// SampleL1 is Remark 3: one-round ℓ1-sampling of C = AB for non-negative
// matrices in O(n log n) bits. Alice ships, for every item k, the column
// sum ‖A_{*,k}‖1 and one row index sampled from column k proportionally
// to its entries; Bob picks k proportionally to ‖A_{*,k}‖1·‖B_{k,*}‖1,
// then a column j from row B_{k,*} proportionally to its entries. The
// returned entry (i, j) is distributed exactly ∝ C[i][j]; k is the
// sampled join witness.
func SampleL1(a, b *intmat.Dense, seed uint64) (i, j, witness int, cost Cost, err error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, 0, 0, Cost{}, err
	}
	cost, err = runPair(
		func(t comm.Transport) error { return AliceSampleL1(t, a, seed) },
		func(t comm.Transport) (err error) { i, j, witness, err = BobSampleL1(t, b, seed); return err },
	)
	if err != nil {
		return 0, 0, 0, cost, err
	}
	return i, j, witness, cost, nil
}

// AliceSampleL1 drives Alice's side of Remark 3: per item k, the column
// sum of A and a value-weighted row sample from that column. The sample
// is Bob's output.
func AliceSampleL1(t comm.Transport, a *intmat.Dense, seed uint64) (err error) {
	defer recoverDecodeError(&err)
	if err := requireNonNegative(a); err != nil {
		return err
	}
	alicePriv := rng.New(seed).Derive("alice-private", "l1sample")
	msg := comm.NewMessage()
	msg.Label = "column sums and row samples of A"
	n := a.Cols()
	for k := 0; k < n; k++ {
		var sum int64
		for i := 0; i < a.Rows(); i++ {
			sum += a.Get(i, k)
		}
		msg.PutUvarint(uint64(sum))
		pick := -1
		if sum > 0 {
			target := alicePriv.Int63n(sum)
			var acc int64
			for i := 0; i < a.Rows(); i++ {
				acc += a.Get(i, k)
				if acc > target {
					pick = i
					break
				}
			}
		}
		msg.PutVarint(int64(pick))
	}
	t.Send(comm.AliceToBob, msg)
	return nil
}

// BobSampleL1 drives Bob's side of Remark 3: weight each item k by
// colSumA(k)·rowSumB(k), sample a witness, then a column of B_{k,*}
// proportionally to its entries.
func BobSampleL1(t comm.Transport, b *intmat.Dense, seed uint64) (i, j, witness int, err error) {
	st, err := NewBobL1SampleState(b, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	return st.Serve(t, seed)
}

// BobL1SampleState is the matrix-dependent phase of Bob's side of
// Remark 3: B with its row sums precomputed. The sampling seed is a
// per-query input of Serve (Bob's private coins are drawn fresh per
// query), so one state serves any seed. Immutable after construction;
// safe for concurrent Serve calls.
type BobL1SampleState struct {
	b       *intmat.Dense
	rowSums []int64
	shards  int
}

// NewBobL1SampleState validates B and precomputes its row sums over
// sharded row ranges. shards ≤ 1 runs sequentially; the shard count
// never changes a transcript byte or an output bit.
func NewBobL1SampleState(b *intmat.Dense, shards int) (*BobL1SampleState, error) {
	if err := requireNonNegativeSharded(b, shards); err != nil {
		return nil, err
	}
	return &BobL1SampleState{b: b, rowSums: rowSumsSharded(b, shards), shards: shards}, nil
}

// Bytes reports the memory retained by the precomputation.
func (s *BobL1SampleState) Bytes() int64 { return int64(8 * len(s.rowSums)) }

// Serve runs the per-query phase of Bob's side of Remark 3 over t with
// the given shared seed.
func (s *BobL1SampleState) Serve(t comm.Transport, seed uint64) (i, j, witness int, err error) {
	defer recoverDecodeError(&err)
	b := s.b
	bobPriv := rng.New(seed).Derive("bob-private", "l1sample")
	recv := t.Recv(comm.AliceToBob)
	n := b.Rows()
	colSums := make([]int64, n)
	rowPicks := make([]int, n)
	for k := 0; k < n; k++ {
		colSums[k] = int64(recv.Uvarint())
		rowPicks[k] = int(recv.Varint())
	}
	// Item weights shard with exact int64 arithmetic — only past the
	// cheap-reduction floor, where the O(1)-per-item fill outweighs pool
	// synchronization; the coin-consuming sampling below always stays
	// sequential so bobPriv's stream is untouched.
	weights := make([]int64, n)
	var total int64
	if n < minShardCheapElems {
		for k := 0; k < n; k++ {
			weights[k] = colSums[k] * s.rowSums[k]
			total += weights[k]
		}
	} else {
		runShards(n, s.shards, func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				weights[k] = colSums[k] * s.rowSums[k]
			}
		})
		total = sumInt64Shards(n, s.shards, func(k int) int64 { return weights[k] })
	}
	if total == 0 {
		return 0, 0, 0, ErrSampleFailed
	}
	target := bobPriv.Int63n(total)
	var acc int64
	k := 0
	for ; k < n; k++ {
		acc += weights[k]
		if acc > target {
			break
		}
	}
	// Column sample from row B_{k,*} proportional to values.
	jt := bobPriv.Int63n(s.rowSums[k])
	var jacc int64
	col := 0
	for jj, v := range b.Row(k) {
		jacc += v
		if jacc > jt {
			col = jj
			break
		}
	}
	return rowPicks[k], col, k, nil
}

func requireNonNegative(ms ...*intmat.Dense) error {
	for _, m := range ms {
		if err := requireNonNegativeSharded(m, 1); err != nil {
			return err
		}
	}
	return nil
}

// requireNonNegativeSharded is requireNonNegative with the row scan
// split over sharded ranges; the verdict is split-independent.
func requireNonNegativeSharded(m *intmat.Dense, shards int) error {
	ranges := shardRanges(m.Rows(), shards)
	neg := make([]bool, len(ranges))
	runShards(m.Rows(), shards, func(s, lo, hi int) {
		for i := lo; i < hi && !neg[s]; i++ {
			for _, v := range m.Row(i) {
				if v < 0 {
					neg[s] = true
					break
				}
			}
		}
	})
	for _, n := range neg {
		if n {
			return ErrNeedNonNegative
		}
	}
	return nil
}

func columnSums(m *intmat.Dense) []int64 {
	out := make([]int64, m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j, v := range m.Row(i) {
			out[j] += v
		}
	}
	return out
}
