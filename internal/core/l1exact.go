package core

import (
	"repro/internal/comm"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// ExactL1 is Remark 2: for non-negative matrices, ‖AB‖1 decomposes as
// Σ_k ‖A_{*,k}‖1·‖B_{k,*}‖1, so Alice ships her n column sums —
// O(n log n) bits, one round — and Bob computes the exact value.
//
// The identity needs non-negativity (for signed matrices cancellations
// make ‖AB‖1 genuinely hard, which is why the paper's Remark 2 is stated
// for the Boolean-matrix join setting); signed inputs return
// ErrNeedNonNegative.
func ExactL1(a, b *intmat.Dense) (int64, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, Cost{}, err
	}
	if err := requireNonNegative(a, b); err != nil {
		return 0, Cost{}, err
	}
	conn := comm.NewConn()

	// Alice: column sums of A.
	msg := comm.NewMessage()
	colSums := columnSums(a)
	for _, s := range colSums {
		msg.PutUvarint(uint64(s))
	}
	recv := conn.Send(comm.AliceToBob, msg)

	// Bob: Σ_k colSumA(k)·rowSumB(k).
	var total int64
	for k := 0; k < b.Rows(); k++ {
		cs := int64(recv.Uvarint())
		var rs int64
		for _, v := range b.Row(k) {
			rs += v
		}
		total += cs * rs
	}
	return total, costOf(conn), nil
}

// SampleL1 is Remark 3: one-round ℓ1-sampling of C = AB for non-negative
// matrices in O(n log n) bits. Alice ships, for every item k, the column
// sum ‖A_{*,k}‖1 and one row index sampled from column k proportionally
// to its entries; Bob picks k proportionally to ‖A_{*,k}‖1·‖B_{k,*}‖1,
// then a column j from row B_{k,*} proportionally to its entries. The
// returned entry (i, j) is distributed exactly ∝ C[i][j]; k is the
// sampled join witness.
func SampleL1(a, b *intmat.Dense, seed uint64) (i, j, witness int, cost Cost, err error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, 0, 0, Cost{}, err
	}
	if err := requireNonNegative(a, b); err != nil {
		return 0, 0, 0, Cost{}, err
	}
	conn := comm.NewConn()
	alicePriv := rng.New(seed).Derive("alice-private", "l1sample")
	bobPriv := rng.New(seed).Derive("bob-private", "l1sample")

	// Alice: per item k, column sum and a value-weighted row sample.
	msg := comm.NewMessage()
	n := a.Cols()
	for k := 0; k < n; k++ {
		var sum int64
		for i := 0; i < a.Rows(); i++ {
			sum += a.Get(i, k)
		}
		msg.PutUvarint(uint64(sum))
		pick := -1
		if sum > 0 {
			target := alicePriv.Int63n(sum)
			var acc int64
			for i := 0; i < a.Rows(); i++ {
				acc += a.Get(i, k)
				if acc > target {
					pick = i
					break
				}
			}
		}
		msg.PutVarint(int64(pick))
	}
	recv := conn.Send(comm.AliceToBob, msg)

	// Bob: weight each k by colSumA(k)·rowSumB(k) and sample.
	colSums := make([]int64, n)
	rowPicks := make([]int, n)
	weights := make([]int64, n)
	var total int64
	for k := 0; k < n; k++ {
		colSums[k] = int64(recv.Uvarint())
		rowPicks[k] = int(recv.Varint())
		var rs int64
		for _, v := range b.Row(k) {
			rs += v
		}
		weights[k] = colSums[k] * rs
		total += weights[k]
	}
	if total == 0 {
		return 0, 0, 0, costOf(conn), ErrSampleFailed
	}
	target := bobPriv.Int63n(total)
	var acc int64
	k := 0
	for ; k < n; k++ {
		acc += weights[k]
		if acc > target {
			break
		}
	}
	// Column sample from row B_{k,*} proportional to values.
	var rowSum int64
	for _, v := range b.Row(k) {
		rowSum += v
	}
	jt := bobPriv.Int63n(rowSum)
	var jacc int64
	col := 0
	for jj, v := range b.Row(k) {
		jacc += v
		if jacc > jt {
			col = jj
			break
		}
	}
	return rowPicks[k], col, k, costOf(conn), nil
}

func requireNonNegative(ms ...*intmat.Dense) error {
	for _, m := range ms {
		for i := 0; i < m.Rows(); i++ {
			for _, v := range m.Row(i) {
				if v < 0 {
					return ErrNeedNonNegative
				}
			}
		}
	}
	return nil
}

func columnSums(m *intmat.Dense) []int64 {
	out := make([]int64, m.Cols())
	for i := 0; i < m.Rows(); i++ {
		for j, v := range m.Row(i) {
			out[j] += v
		}
	}
	return out
}
