package core

import (
	"testing"

	"repro/internal/bitmat"
	"repro/internal/rng"
)

// plantedMaxPair builds Boolean matrices whose product has a planted
// dominant entry: row hotRow of A and column hotCol of B share `overlap`
// items, over background density bg.
func plantedMaxPair(seed uint64, n, overlap int, bg float64) (*bitmat.Matrix, *bitmat.Matrix, int, int) {
	r := rng.New(seed)
	a := bitmat.New(n, n)
	b := bitmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Bernoulli(bg) {
				a.Set(i, j, true)
			}
			if r.Bernoulli(bg) {
				b.Set(i, j, true)
			}
		}
	}
	hotRow, hotCol := n/3, 2*n/3
	perm := r.Perm(n)
	for t := 0; t < overlap; t++ {
		k := perm[t]
		a.Set(hotRow, k, true)
		b.Set(k, hotCol, true)
	}
	return a, b, hotRow, hotCol
}

func TestLinfBinaryPlantedPair(t *testing.T) {
	a, b, _, _ := plantedMaxPair(80, 96, 40, 0.05)
	truth, _, _ := a.Mul(b).Linf()
	est, _, cost, err := EstimateLinfBinary(a, b, LinfOpts{Eps: 0.5, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	lo := float64(truth) / 3.0 // (2+ε) factor with slack
	hi := float64(truth) * 2.0
	if est < lo || est > hi {
		t.Fatalf("ℓ∞ estimate %v outside [%v, %v] (truth %d)", est, lo, hi, truth)
	}
	if cost.Rounds > 3 {
		t.Fatalf("rounds = %d, want ≤ 3", cost.Rounds)
	}
}

func TestLinfBinaryUnsampledWithinFactor2(t *testing.T) {
	// Small, light inputs keep ‖C‖1 under the γn² threshold, so ℓ* = 0
	// and C splits exactly into CA + CB: the output is then within a
	// factor 2 of ‖C‖∞ deterministically (the factor the Ω(n²) lower
	// bound of Theorem 4.4 shows is unavoidable to beat).
	a := randomBinary(82, 32, 32, 0.15)
	b := randomBinary(83, 32, 32, 0.15)
	truth, _, _ := a.Mul(b).Linf()
	est, arg, _, err := EstimateLinfBinary(a, b, LinfOpts{Eps: 0.5, Seed: 84})
	if err != nil {
		t.Fatal(err)
	}
	if est < float64(truth)/2 || est > float64(truth) {
		t.Fatalf("unsampled ℓ∞ = %v, want in [%d/2, %d]", est, truth, truth)
	}
	// The reported pair's true value dominates the reported partial max.
	if got := a.Mul(b).Get(arg.I, arg.J); float64(got) < est {
		t.Fatalf("argmax (%d,%d) has value %d < reported %v", arg.I, arg.J, got, est)
	}
}

func TestLinfBinaryZeroMatrix(t *testing.T) {
	a := bitmat.New(16, 16)
	b := randomBinary(85, 16, 16, 0.3)
	est, _, _, err := EstimateLinfBinary(a, b, LinfOpts{Eps: 0.5, Seed: 86})
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Fatalf("ℓ∞ of zero product = %v", est)
	}
}

func TestLinfBinaryDenseTriggersSampling(t *testing.T) {
	// Dense inputs exceed the level-0 threshold, forcing ℓ* > 0; the
	// rescaled estimate must still track the truth within (2+ε)·slack.
	a, b, _, _ := plantedMaxPair(87, 128, 100, 0.35)
	truth, _, _ := a.Mul(b).Linf()
	est, _, _, err := EstimateLinfBinary(a, b, LinfOpts{Eps: 0.5, GammaC: 0.3, Seed: 88})
	if err != nil {
		t.Fatal(err)
	}
	if est < float64(truth)/4 || est > float64(truth)*2.5 {
		t.Fatalf("sampled ℓ∞ estimate %v vs truth %d", est, truth)
	}
}

func TestLinfKappaPlantedPair(t *testing.T) {
	a, b, _, _ := plantedMaxPair(89, 96, 50, 0.04)
	truth, _, _ := a.Mul(b).Linf()
	kappa := 6.0
	est, _, cost, err := EstimateLinfKappa(a, b, LinfKappaOpts{Kappa: kappa, Seed: 90})
	if err != nil {
		t.Fatal(err)
	}
	// κ-approximation: X ∈ [Y/β, γY] with βγ ≤ κ; allow 2× slack for
	// the scaled constants.
	if est < float64(truth)/(2*kappa) || est > 2*kappa*float64(truth) {
		t.Fatalf("κ=%v estimate %v vs truth %d", kappa, est, truth)
	}
	if cost.Rounds > 4 {
		t.Fatalf("rounds = %d, want O(1) (≤4)", cost.Rounds)
	}
}

func TestLinfKappaZeroProduct(t *testing.T) {
	a := bitmat.New(24, 24)
	b := randomBinary(91, 24, 24, 0.3)
	est, _, _, err := EstimateLinfKappa(a, b, LinfKappaOpts{Kappa: 4, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Fatalf("κ-approx of zero product = %v", est)
	}
}

func TestLinfKappaEmptySampleNonzeroC(t *testing.T) {
	// Force q extremely small via huge κ on a sparse C: when the sampled
	// D is empty but C is not, the protocol must output 1.
	a := bitmat.New(64, 64)
	b := bitmat.New(64, 64)
	a.Set(0, 0, true)
	b.Set(0, 0, true) // C[0][0] = 1
	est, _, _, err := EstimateLinfKappa(a, b, LinfKappaOpts{Kappa: 64, AlphaC: 0.0001, Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Fatalf("empty-sample fallback = %v, want 1", est)
	}
}

func TestLinfKappaUniverseSamplingSavesBits(t *testing.T) {
	// The ablation the paper motivates: with universe sampling the
	// exchange is cheaper than without, at large κ.
	a, b, _, _ := plantedMaxPair(94, 160, 60, 0.15)
	// AlphaC is lowered so q = α/κ is well below 1 at this size.
	o := LinfKappaOpts{Kappa: 16, AlphaC: 0.8, Seed: 95}
	_, _, with, err := EstimateLinfKappa(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	_, _, without, err := EstimateLinfKappaNoUniverse(a, b, o)
	if err != nil {
		t.Fatal(err)
	}
	if with.Bits >= without.Bits {
		t.Fatalf("universe sampling did not reduce bits: %d vs %d", with.Bits, without.Bits)
	}
}

func TestLinfGeneralPlanted(t *testing.T) {
	// Integer matrices with one dominant entry.
	a := randomInt(96, 80, 80, 0.1, 3, false)
	b := randomInt(97, 80, 80, 0.1, 3, false)
	a.Set(7, 0, 900)
	b.Set(0, 13, 1000) // C[7][13] ≈ 900000 dominates
	c := a.Mul(b)
	truth, _, _ := c.Linf()
	kappa := 4.0
	est, cost, err := EstimateLinfGeneral(a, b, LinfGeneralOpts{Kappa: kappa, Seed: 98})
	if err != nil {
		t.Fatal(err)
	}
	// Estimate ∈ [‖C‖∞, κ‖C‖∞] up to AMS error (2× slack).
	if est < float64(truth)/2 || est > 2*kappa*float64(truth) {
		t.Fatalf("general ℓ∞ estimate %v vs truth %d (κ=%v)", est, truth, kappa)
	}
	if cost.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", cost.Rounds)
	}
}

func TestLinfGeneralCommunicationShrinksWithKappa(t *testing.T) {
	a := randomInt(99, 64, 64, 0.2, 5, false)
	b := randomInt(100, 64, 64, 0.2, 5, false)
	_, c2, err := EstimateLinfGeneral(a, b, LinfGeneralOpts{Kappa: 2, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	_, c8, err := EstimateLinfGeneral(a, b, LinfGeneralOpts{Kappa: 8, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if c8.Bits >= c2.Bits {
		t.Fatalf("κ=8 used %d bits ≥ κ=2's %d — want ~n²/κ² scaling", c8.Bits, c2.Bits)
	}
}

func TestLinfGeneralZero(t *testing.T) {
	a := randomInt(102, 20, 20, 0, 1, true)
	b := randomInt(103, 20, 20, 0.3, 3, false)
	est, _, err := EstimateLinfGeneral(a, b, LinfGeneralOpts{Kappa: 2, Seed: 104})
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Fatalf("zero product estimate = %v", est)
	}
}
