package core

import (
	"io"
	"math"
	"strconv"

	"repro/internal/comm"
	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// This file provides transport-separable endpoints for the one-round
// ‖AB‖0 protocol: unlike the in-process simulation (which interleaves
// both parties in one function for exact accounting), BobL0Endpoint and
// AliceL0Endpoint each hold only their own party's data and exchange one
// length-framed byte message over any io.Writer/io.Reader — a TCP
// connection, a pipe, a file. They demonstrate that the protocol logic
// genuinely factors into two isolated parties; the in-process versions
// remain the reference for cost accounting.

// BobL0Endpoint is Bob's side of the one-round ℓ0 estimation: he holds
// B and emits one message of per-row ℓ0 sketches.
type BobL0Endpoint struct {
	b    *intmat.Dense
	opts LpOpts
}

// NewBobL0Endpoint wraps Bob's matrix. The options must match Alice's.
func NewBobL0Endpoint(b *intmat.Dense, opts LpOpts) (*BobL0Endpoint, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	return &BobL0Endpoint{b: b, opts: opts}, nil
}

// Run writes Bob's single message to w and returns the payload size in
// bytes (including framing).
func (e *BobL0Endpoint) Run(w io.Writer) (int, error) {
	sizeWords := oneRoundSketchWords(e.opts)
	shared := rng.New(e.opts.Seed)
	msg := comm.NewMessage()
	msg.PutUvarint(uint64(e.b.Cols())) // sketched dimension, so Alice rebuilds identical hashes
	for rep := 0; rep < e.opts.Reps; rep++ {
		rs := newRowSketcher(shared.Derive("lp1r", strconv.Itoa(rep)), e.b.Cols(), 0, sizeWords)
		rs.encodeRows(msg, e.b)
	}
	return comm.WriteFrame(w, msg)
}

// AliceL0Endpoint is Alice's side: she holds A, consumes Bob's message,
// and produces the ‖AB‖0 estimate.
type AliceL0Endpoint struct {
	a    *intmat.Dense
	opts LpOpts
}

// NewAliceL0Endpoint wraps Alice's matrix. The options must match Bob's.
func NewAliceL0Endpoint(a *intmat.Dense, opts LpOpts) (*AliceL0Endpoint, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	return &AliceL0Endpoint{a: a, opts: opts}, nil
}

// Run reads Bob's message from r and returns the estimate of ‖AB‖0.
// Malformed payloads surface as errors, not panics.
func (e *AliceL0Endpoint) Run(r io.Reader) (est float64, err error) {
	defer recoverDecodeError(&err)
	msg, err := comm.ReadFrame(r)
	if err != nil {
		return 0, err
	}
	sizeWords := oneRoundSketchWords(e.opts)
	shared := rng.New(e.opts.Seed)
	n := e.a.Cols()
	m2 := int(msg.Uvarint())

	rowCols := make([][]int, e.a.Rows())
	rowVals := make([][]int64, e.a.Rows())
	for i := range rowCols {
		rowCols[i], rowVals[i] = sparseRow(e.a, i)
	}
	perRep := make([]float64, e.opts.Reps)
	for rep := 0; rep < e.opts.Reps; rep++ {
		rs := newRowSketcher(shared.Derive("lp1r", strconv.Itoa(rep)), m2, 0, sizeWords)
		fieldSk := make([][]field.Elem, n)
		for k := 0; k < n; k++ {
			fieldSk[k] = msg.Uint64Slice()
		}
		total := 0.0
		for i := range rowCols {
			if len(rowCols[i]) == 0 {
				continue
			}
			if est := rs.estimateRow(rowCols[i], rowVals[i], fieldSk, nil); est > 0 {
				total += est
			}
		}
		perRep[rep] = total
	}
	return median(perRep), nil
}

func oneRoundSketchWords(o LpOpts) int {
	sizeWords := int(math.Ceil(o.SketchC / (o.Eps * o.Eps)))
	if sizeWords < 4 {
		sizeWords = 4
	}
	return sizeWords
}
