package core

import (
	"math"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/comm"
	"repro/internal/rng"
)

// HHBinaryOpts configures HeavyHittersBinary (Section 5.2, Theorem 5.3).
type HHBinaryOpts struct {
	// Phi and Eps define the ℓp-(ϕ,ε)-heavy-hitter guarantee,
	// 0 < Eps ≤ Phi ≤ 1.
	Phi, Eps float64
	// P is the norm index in (0, 2]. Default 1.
	P float64
	// AlphaC scales the item-sampling constant α = (AlphaC·ln n)^{1/p}
	// (the paper's (10⁴ log n)^{1/p}, scaled). Default 8.
	AlphaC float64
	// VerC scales the per-candidate verification sample count
	// t = VerC·(ϕ/ε)²·ln n. Default 12.
	VerC float64
	// Seed is the shared public-coin seed.
	Seed uint64
}

func (o *HHBinaryOpts) setDefaults() error {
	if o.Eps <= 0 || o.Phi < o.Eps || o.Phi > 1 {
		return ErrBadPhi
	}
	if o.P == 0 {
		o.P = 1
	}
	if o.P < 0 || o.P > 2 {
		return ErrBadP
	}
	if o.AlphaC <= 0 {
		o.AlphaC = 8
	}
	if o.VerC <= 0 {
		o.VerC = 12
	}
	return nil
}

// HeavyHittersBinary is the Section 5.2 protocol (Theorem 5.3): for
// Boolean matrices it computes the ℓp-(ϕ,ε)-heavy-hitters of C = A·B in
// O(1) rounds and Õ(n + ϕ/ε²) bits — substantially below the
// Õ(√ϕ/ε·n) needed for general integer matrices, mirroring the
// binary/general gap of the ℓ∞ problem.
//
// Step 1 estimates L′p = ‖C‖p within a constant factor (Algorithm 1,
// cost merged into the returned Cost). Step 2 downsamples the item
// universe at rate β = min(α/(ϕ^{1/p}·L′p), 1) and splits the sampled
// product C′ into CA + CB via the same per-item min(u_k, v_k) index
// exchange as Algorithm 2. Step 3 treats every entry with
// CA^p or CB^p ≥ β^p·ϕ·L′p^p/20 as a candidate (the /20 absorbs the
// worst-case CA/CB split) and verifies each by sampling coordinates of
// the inner product ⟨A_{i,*}, B_{*,j}⟩: Alice draws t = Õ((ϕ/ε)²)
// indices from the support of her row — importance sampling with the
// same communication shape as the paper's uniform sampling but lower
// variance — and Bob checks them against his column and thresholds the
// resulting (1 ± ε/2ϕ)-accurate estimates at (ϕ − ε/2)·‖C‖p^p.
func HeavyHittersBinary(a, b *bitmat.Matrix, o HHBinaryOpts) ([]WeightedPair, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return nil, Cost{}, err
	}
	if err := o.setDefaults(); err != nil {
		return nil, Cost{}, err
	}
	n := a.Cols()
	m1, m2 := a.Rows(), b.Cols()

	// Step 1: ‖C‖p^p within a constant factor (tighter when the final
	// thresholding needs it).
	lpAcc := math.Min(0.25, o.Eps/(4*o.Phi))
	tp, lpCost, err := EstimateLp(a.ToInt(), b.ToInt(), o.P, LpOpts{Eps: lpAcc, Seed: o.Seed + 1})
	if err != nil {
		return nil, Cost{}, err
	}
	if tp <= 0 {
		return nil, lpCost, nil
	}
	lPrime := math.Pow(tp, 1/o.P)

	conn := comm.NewConn()
	// Share the estimate (in the paper both parties hold it after the
	// sub-protocol; here Bob's output is forwarded in O(1) words).
	msg0 := comm.NewMessage()
	msg0.PutFloat64(tp)
	recv0 := conn.Send(comm.BobToAlice, msg0)
	tpAlice := recv0.Float64()
	_ = tpAlice

	// Step 2: item sampling at rate β.
	alpha := math.Pow(o.AlphaC*lnDim(n), 1/o.P)
	beta := math.Min(alpha/(math.Pow(o.Phi, 1/o.P)*lPrime), 1)
	alicePriv := rng.New(o.Seed).Derive("alice-private", "hhbinary")
	keep := make([]bool, n)
	var active []int
	for k := 0; k < n; k++ {
		if alicePriv.Bernoulli(beta) {
			keep[k] = true
			active = append(active, k)
		}
	}

	// Alice→Bob: survivor bitmap and per-survivor u_k.
	msg1 := comm.NewMessage()
	msg1.PutBitmap(keep)
	uk := make([]int, n)
	cols := make([][]itemEntry, n)
	for _, k := range active {
		for _, i := range a.ColSupport(k) {
			cols[k] = append(cols[k], itemEntry{row: int32(i), level: 0})
		}
		uk[k] = len(cols[k])
		msg1.PutUvarint(uint64(uk[k]))
	}
	recv1 := conn.Send(comm.AliceToBob, msg1)
	keepBob := recv1.Bitmap()
	ukBob := make([]int, n)
	var activeBob []int
	for k := 0; k < n; k++ {
		if keepBob[k] {
			activeBob = append(activeBob, k)
			ukBob[k] = int(recv1.Uvarint())
		}
	}
	_ = activeBob

	// Index exchange at level 0 of the sampled universe → CA + CB = C′.
	_, _, ca, cb := indexExchange(conn, cols, 0, uk, b, m1, m2, active)

	// Step 3: candidates from both sides.
	candThreshold := math.Pow(beta, o.P) * o.Phi * tp / 20
	type cand struct{ i, j int }
	seen := map[cand]bool{}
	var su []cand
	collect := func(m interface {
		Rows() int
		Cols() int
		Get(i, j int) int64
	}) {
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				v := float64(m.Get(i, j))
				if v > 0 && math.Pow(v, o.P) >= candThreshold {
					c := cand{i, j}
					if !seen[c] {
						seen[c] = true
						su = append(su, c)
					}
				}
			}
		}
	}

	// Alice→Bob: SA; Bob unions with SB; Bob→Alice: SU.
	collect(ca)
	msgSA := comm.NewMessage()
	msgSA.PutUvarint(uint64(len(su)))
	for _, c := range su {
		msgSA.PutUvarint(uint64(c.i))
		msgSA.PutUvarint(uint64(c.j))
	}
	recvSA := conn.Send(comm.AliceToBob, msgSA)
	nsa := int(recvSA.Uvarint())
	for t := 0; t < nsa; t++ {
		i := int(recvSA.Uvarint())
		j := int(recvSA.Uvarint())
		c := cand{i, j}
		if !seen[c] {
			seen[c] = true
			su = append(su, c)
		}
	}
	collect(cb)
	sort.Slice(su, func(x, y int) bool {
		if su[x].i != su[y].i {
			return su[x].i < su[y].i
		}
		return su[x].j < su[y].j
	})
	msgSU := comm.NewMessage()
	msgSU.PutUvarint(uint64(len(su)))
	for _, c := range su {
		msgSU.PutUvarint(uint64(c.i))
		msgSU.PutUvarint(uint64(c.j))
	}
	recvSU := conn.Send(comm.BobToAlice, msgSU)

	// Alice: per candidate, ship |A_i| and t sampled support indices.
	t := int(math.Ceil(o.VerC * (o.Phi / o.Eps) * (o.Phi / o.Eps) * lnDim(n)))
	nsu := int(recvSU.Uvarint())
	msgVer := comm.NewMessage()
	msgVer.PutUvarint(uint64(nsu))
	verPairs := make([]cand, nsu)
	for x := 0; x < nsu; x++ {
		i := int(recvSU.Uvarint())
		j := int(recvSU.Uvarint())
		verPairs[x] = cand{i, j}
		support := a.RowSupport(i)
		msgVer.PutUvarint(uint64(i))
		msgVer.PutUvarint(uint64(j))
		msgVer.PutUvarint(uint64(len(support)))
		if len(support) == 0 {
			continue
		}
		samples := t
		if samples > 4*len(support) {
			samples = 4 * len(support) // no point oversampling tiny rows
		}
		msgVer.PutUvarint(uint64(samples))
		for s := 0; s < samples; s++ {
			msgVer.PutUvarint(uint64(support[alicePriv.Intn(len(support))]))
		}
	}
	recvVer := conn.Send(comm.AliceToBob, msgVer)

	// Bob: estimate each candidate and threshold.
	finalCut := (o.Phi - o.Eps/2) * tp
	var out []WeightedPair
	nver := int(recvVer.Uvarint())
	for x := 0; x < nver; x++ {
		i := int(recvVer.Uvarint())
		j := int(recvVer.Uvarint())
		supSize := int(recvVer.Uvarint())
		if supSize == 0 {
			continue
		}
		samples := int(recvVer.Uvarint())
		hits := 0
		for s := 0; s < samples; s++ {
			k := int(recvVer.Uvarint())
			if b.Get(k, j) {
				hits++
			}
		}
		est := float64(supSize) * float64(hits) / float64(samples)
		if math.Pow(est, o.P) >= finalCut {
			out = append(out, WeightedPair{I: i, J: j, Value: est})
		}
	}
	sortPairs(out)
	return out, addCost(costOf(conn), lpCost), nil
}
