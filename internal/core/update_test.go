package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/comm"
	"repro/internal/intmat"
)

// patchIntRows returns a clone of m with the listed rows re-randomized
// (density ~0.3, values in [1, maxAbs] or [-maxAbs, maxAbs]).
func patchIntRows(seed uint64, m *intmat.Dense, rows []int, maxAbs int64, nonneg bool) *intmat.Dense {
	rnd := rand.New(rand.NewSource(int64(seed)))
	nm := m.Clone()
	for _, k := range rows {
		for j := 0; j < m.Cols(); j++ {
			var v int64
			if rnd.Float64() < 0.3 {
				v = rnd.Int63n(maxAbs) + 1
				if !nonneg && rnd.Intn(2) == 0 {
					v = -v
				}
			}
			nm.Set(k, j, v)
		}
	}
	return nm
}

// patchBitRows returns a clone of m with the listed rows re-randomized.
func patchBitRows(seed uint64, m *bitmat.Matrix, rows []int) *bitmat.Matrix {
	rnd := rand.New(rand.NewSource(int64(seed)))
	nm := m.Clone()
	for _, k := range rows {
		for j := 0; j < m.Cols(); j++ {
			nm.Set(k, j, rnd.Float64() < 0.3)
		}
	}
	return nm
}

// TestUpdateRowsTranscriptParity is the incremental-maintenance
// guarantee: for every Bob state kind, applying a row update to an
// existing state produces a state whose Serve transcript (both
// directions, every byte) and output are identical to a state rebuilt
// from scratch on the updated matrix — under the same seed epoch, for
// sequential and shard-parallel states alike, and after a chain of two
// updates.
func TestUpdateRowsTranscriptParity(t *testing.T) {
	const n = 24
	aInt := randomInt(900, n, n, 0.2, 3, false)
	aPos := randomInt(901, n, n, 0.2, 3, true)
	aBit := randomBinary(902, n, n, 0.3)

	bInt := randomInt(903, n, n, 0.2, 3, false)
	bPos := randomInt(904, n, n, 0.2, 3, true)
	bBit := randomBinary(905, n, n, 0.3)

	patch1 := []int{3, 17}
	patch2 := []int{17, 8, 8} // unsorted with a duplicate: normalization path
	bInt1 := patchIntRows(906, bInt, patch1, 3, false)
	bInt2 := patchIntRows(907, bInt1, patch2, 3, false)
	bPos1 := patchIntRows(908, bPos, patch1, 3, true)
	bPos2 := patchIntRows(909, bPos1, patch2, 3, true)
	bBit1 := patchBitRows(910, bBit, patch1)
	bBit2 := patchBitRows(911, bBit1, patch2)

	type variant struct {
		alice   func(comm.Transport) error
		updated func(comm.Transport) error // chained UpdateRows state on B2
		fresh   func(comm.Transport) error // from-scratch state on B2
		outU    func() any
		outF    func() any
	}
	for _, shards := range []int{0, 3} {
		cases := map[string]func(t *testing.T) variant{
			"lp-p1": func(t *testing.T) variant {
				o := LpOpts{Eps: 0.3, Seed: 920, Shards: shards}
				st0, err := NewBobLpState(bInt, 1, o)
				if err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bInt1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				st2, err := st1.UpdateRows(bInt2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobLpState(bInt2, 1, o)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(st2.round1, fr.round1) {
					t.Fatal("spliced round-1 payload differs from rebuilt payload")
				}
				var eu, ef float64
				return variant{
					alice:   func(tr comm.Transport) error { return AliceLp(tr, aInt, bInt.Cols(), 1, o) },
					updated: func(tr comm.Transport) (err error) { eu, err = st2.Serve(tr); return err },
					fresh:   func(tr comm.Transport) (err error) { ef, err = fr.Serve(tr); return err },
					outU:    func() any { return eu },
					outF:    func() any { return ef },
				}
			},
			"lp-p0": func(t *testing.T) variant {
				// p = 0 exercises the field-sketch (ℓ0) row blocks.
				o := LpOpts{Eps: 0.4, Seed: 921, Shards: shards}
				st0, err := NewBobLpState(bInt, 0, o)
				if err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bInt1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				st2, err := st1.UpdateRows(bInt2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobLpState(bInt2, 0, o)
				if err != nil {
					t.Fatal(err)
				}
				var eu, ef float64
				return variant{
					alice:   func(tr comm.Transport) error { return AliceLp(tr, aInt, bInt.Cols(), 0, o) },
					updated: func(tr comm.Transport) (err error) { eu, err = st2.Serve(tr); return err },
					fresh:   func(tr comm.Transport) (err error) { ef, err = fr.Serve(tr); return err },
					outU:    func() any { return eu },
					outF:    func() any { return ef },
				}
			},
			"l0sample": func(t *testing.T) variant {
				o := L0SampleOpts{Eps: 0.5, Seed: 922, Shards: shards}
				st0, err := NewBobL0SampleState(bInt, o)
				if err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bInt1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				st2, err := st1.UpdateRows(bInt2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobL0SampleState(bInt2, o)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(st2.colNZ, fr.colNZ) {
					t.Fatal("merged column index differs from rebuilt index")
				}
				var pu, pf Pair
				var vu, vf int64
				return variant{
					alice: func(tr comm.Transport) error { return AliceL0Sample(tr, aInt, o) },
					updated: func(tr comm.Transport) (err error) {
						pu, vu, err = st2.Serve(tr, aInt.Rows())
						return err
					},
					fresh: func(tr comm.Transport) (err error) {
						pf, vf, err = fr.Serve(tr, aInt.Rows())
						return err
					},
					outU: func() any { return [2]any{pu, vu} },
					outF: func() any { return [2]any{pf, vf} },
				}
			},
			"exact": func(t *testing.T) variant {
				st0, err := NewBobExactL1State(bPos, max(shards, 1))
				if err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bPos1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				st2, err := st1.UpdateRows(bPos2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobExactL1State(bPos2, max(shards, 1))
				if err != nil {
					t.Fatal(err)
				}
				var tu, tf int64
				return variant{
					alice:   func(tr comm.Transport) error { return AliceExactL1(tr, aPos) },
					updated: func(tr comm.Transport) (err error) { tu, err = st2.Serve(tr); return err },
					fresh:   func(tr comm.Transport) (err error) { tf, err = fr.Serve(tr); return err },
					outU:    func() any { return tu },
					outF:    func() any { return tf },
				}
			},
			"l1sample": func(t *testing.T) variant {
				st0, err := NewBobL1SampleState(bPos, max(shards, 1))
				if err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bPos1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				st2, err := st1.UpdateRows(bPos2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobL1SampleState(bPos2, max(shards, 1))
				if err != nil {
					t.Fatal(err)
				}
				var iu, ju, wu, ifr, jf, wf int
				return variant{
					alice: func(tr comm.Transport) error { return AliceSampleL1(tr, aPos, 923) },
					updated: func(tr comm.Transport) (err error) {
						iu, ju, wu, err = st2.Serve(tr, 923)
						return err
					},
					fresh: func(tr comm.Transport) (err error) {
						ifr, jf, wf, err = fr.Serve(tr, 923)
						return err
					},
					outU: func() any { return [3]int{iu, ju, wu} },
					outF: func() any { return [3]int{ifr, jf, wf} },
				}
			},
			"linf": func(t *testing.T) variant {
				o := LinfOpts{Eps: 0.5, Seed: 924, Shards: shards}
				st0, err := NewBobLinfState(bBit, o)
				if err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bBit1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				st2, err := st1.UpdateRows(bBit2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobLinfState(bBit2, o)
				if err != nil {
					t.Fatal(err)
				}
				var eu, ef float64
				var au, af Pair
				return variant{
					alice: func(tr comm.Transport) error { return AliceLinf(tr, aBit, bBit.Cols(), o) },
					updated: func(tr comm.Transport) (err error) {
						eu, au, err = st2.Serve(tr, aBit.Rows())
						return err
					},
					fresh: func(tr comm.Transport) (err error) {
						ef, af, err = fr.Serve(tr, aBit.Rows())
						return err
					},
					outU: func() any { return [2]any{eu, au} },
					outF: func() any { return [2]any{ef, af} },
				}
			},
			"linfkappa": func(t *testing.T) variant {
				o := LinfKappaOpts{Kappa: 4, Seed: 925, Shards: shards}
				st0, err := NewBobLinfKappaState(bBit, o)
				if err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bBit1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				st2, err := st1.UpdateRows(bBit2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobLinfKappaState(bBit2, o)
				if err != nil {
					t.Fatal(err)
				}
				var eu, ef float64
				var au, af Pair
				return variant{
					alice: func(tr comm.Transport) error { return AliceLinfKappa(tr, aBit, bBit.Cols(), o) },
					updated: func(tr comm.Transport) (err error) {
						eu, au, err = st2.Serve(tr, aBit.Rows())
						return err
					},
					fresh: func(tr comm.Transport) (err error) {
						ef, af, err = fr.Serve(tr, aBit.Rows())
						return err
					},
					outU: func() any { return [2]any{eu, au} },
					outF: func() any { return [2]any{ef, af} },
				}
			},
			"hh": func(t *testing.T) variant {
				// Signed Alice forces the embedded Algorithm 1, and the old
				// state has its nested lp state prebuilt, so the update's
				// nested incremental path is on the transcript too.
				o := HHOpts{Phi: 0.3, Eps: 0.15, Seed: 926, Shards: shards}
				st0, err := NewBobHHState(bPos, o)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := st0.nestedLp(); err != nil {
					t.Fatal(err)
				}
				st1, err := st0.UpdateRows(bPos1, patch1)
				if err != nil {
					t.Fatal(err)
				}
				if !st1.nestedBuilt {
					t.Fatal("nested lp state was not carried through the update")
				}
				st2, err := st1.UpdateRows(bPos2, patch2)
				if err != nil {
					t.Fatal(err)
				}
				fr, err := NewBobHHState(bPos2, o)
				if err != nil {
					t.Fatal(err)
				}
				var ou, of []WeightedPair
				return variant{
					alice: func(tr comm.Transport) error { return AliceHH(tr, aInt, bPos.Cols(), true, o) },
					updated: func(tr comm.Transport) (err error) {
						ou, err = st2.Serve(tr, aInt.Rows(), false)
						return err
					},
					fresh: func(tr comm.Transport) (err error) {
						of, err = fr.Serve(tr, aInt.Rows(), false)
						return err
					},
					outU: func() any { return ou },
					outF: func() any { return of },
				}
			},
		}
		for name, build := range cases {
			suffix := "seq"
			if shards > 1 {
				suffix = "sharded"
			}
			t.Run(name+"/"+suffix, func(t *testing.T) {
				v := build(t)
				inU, outU := runRecorded(t, v.alice, v.updated)
				inF, outF := runRecorded(t, v.alice, v.fresh)
				if !bytes.Equal(inU, inF) {
					t.Errorf("Alice→Bob transcript diverged: updated %d bytes, fresh %d bytes", len(inU), len(inF))
				}
				if !bytes.Equal(outU, outF) {
					t.Errorf("Bob→Alice transcript diverged: updated %d bytes, fresh %d bytes", len(outU), len(outF))
				}
				if !reflect.DeepEqual(v.outU(), v.outF()) {
					t.Errorf("outputs diverged: updated %v, fresh %v", v.outU(), v.outF())
				}
			})
		}
	}
}

// TestUpdateRowsValidation pins the error surface: dimension changes,
// out-of-range rows, and sign violations are rejected, and the
// receiver state is left fully usable.
func TestUpdateRowsValidation(t *testing.T) {
	b := randomInt(930, 12, 12, 0.3, 3, true)
	bBig := randomInt(931, 13, 12, 0.3, 3, true)

	lp, err := NewBobLpState(b, 1, LpOpts{Eps: 0.4, Seed: 932})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lp.UpdateRows(bBig, []int{0}); !errors.Is(err, ErrUpdateShape) {
		t.Fatalf("dimension change: got %v, want ErrUpdateShape", err)
	}
	if _, err := lp.UpdateRows(b, []int{12}); !errors.Is(err, ErrUpdateShape) {
		t.Fatalf("out-of-range row: got %v, want ErrUpdateShape", err)
	}
	if _, err := lp.UpdateRows(b, []int{-1}); !errors.Is(err, ErrUpdateShape) {
		t.Fatalf("negative row: got %v, want ErrUpdateShape", err)
	}

	ex, err := NewBobExactL1State(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	neg := b.Clone()
	neg.Set(4, 4, -7)
	if _, err := ex.UpdateRows(neg, []int{4}); !errors.Is(err, ErrNeedNonNegative) {
		t.Fatalf("negative exact update: got %v, want ErrNeedNonNegative", err)
	}
	l1s, err := NewBobL1SampleState(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l1s.UpdateRows(neg, []int{4}); !errors.Is(err, ErrNeedNonNegative) {
		t.Fatalf("negative l1sample update: got %v, want ErrNeedNonNegative", err)
	}

	// Empty patch: a new state is still returned (it must point at the
	// new matrix) and serves identically.
	same, err := lp.UpdateRows(b.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(same.round1, lp.round1) {
		t.Fatal("empty patch changed the round-1 payload")
	}

	// Every remaining kind rejects dimension changes and out-of-range
	// rows the same way.
	bb := randomBinary(933, 12, 12, 0.3)
	bbBig := randomBinary(934, 13, 12, 0.3)
	l0, _ := NewBobL0SampleState(b, L0SampleOpts{Eps: 0.5, Seed: 935})
	lf, _ := NewBobLinfState(bb, LinfOpts{Eps: 0.5, Seed: 936})
	lk, _ := NewBobLinfKappaState(bb, LinfKappaOpts{Kappa: 4, Seed: 937})
	hh, _ := NewBobHHState(b, HHOpts{Phi: 0.3, Eps: 0.15, Seed: 938})
	intKinds := map[string]func(*intmat.Dense, []int) error{
		"l0sample": func(m *intmat.Dense, r []int) error { _, err := l0.UpdateRows(m, r); return err },
		"exact":    func(m *intmat.Dense, r []int) error { _, err := ex.UpdateRows(m, r); return err },
		"l1sample": func(m *intmat.Dense, r []int) error { _, err := l1s.UpdateRows(m, r); return err },
		"hh":       func(m *intmat.Dense, r []int) error { _, err := hh.UpdateRows(m, r); return err },
	}
	for name, upd := range intKinds {
		if err := upd(bBig, []int{0}); !errors.Is(err, ErrUpdateShape) {
			t.Errorf("%s dimension change: got %v", name, err)
		}
		if err := upd(b, []int{12}); !errors.Is(err, ErrUpdateShape) {
			t.Errorf("%s out-of-range row: got %v", name, err)
		}
	}
	bitKinds := map[string]func(*bitmat.Matrix, []int) error{
		"linf":      func(m *bitmat.Matrix, r []int) error { _, err := lf.UpdateRows(m, r); return err },
		"linfkappa": func(m *bitmat.Matrix, r []int) error { _, err := lk.UpdateRows(m, r); return err },
	}
	for name, upd := range bitKinds {
		if err := upd(bbBig, []int{0}); !errors.Is(err, ErrUpdateShape) {
			t.Errorf("%s dimension change: got %v", name, err)
		}
		if err := upd(bb, []int{-3}); !errors.Is(err, ErrUpdateShape) {
			t.Errorf("%s out-of-range row: got %v", name, err)
		}
	}
}

// TestUpdateRowsHHSignTransitions pins the three signedness paths of
// the hh update: staying non-negative, turning signed, and losing the
// last negative row (the full-rescan case).
func TestUpdateRowsHHSignTransitions(t *testing.T) {
	b := randomInt(940, 10, 10, 0.4, 3, true)
	o := HHOpts{Phi: 0.3, Eps: 0.15, Seed: 941}
	st, err := NewBobHHState(b, o)
	if err != nil {
		t.Fatal(err)
	}
	if !st.bNonNeg {
		t.Fatal("seed matrix should be non-negative")
	}

	// Turn signed.
	neg := b.Clone()
	neg.Set(2, 3, -5)
	stNeg, err := st.UpdateRows(neg, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if stNeg.bNonNeg {
		t.Fatal("update introduced a negative entry but bNonNeg stayed true")
	}
	fr, err := NewBobHHState(neg, o)
	if err != nil {
		t.Fatal(err)
	}
	if fr.bNonNeg != stNeg.bNonNeg || fr.absRowSums[2] != stNeg.absRowSums[2] {
		t.Fatal("signed update diverged from rebuild")
	}

	// Lose the last negative row again: the flag must recover (full
	// rescan path).
	back, err := stNeg.UpdateRows(b, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !back.bNonNeg {
		t.Fatal("removing the only negative row did not restore bNonNeg")
	}
}

// TestUpdateRowsRandomizedParity is the property-based variant: random
// matrices, random patch sets, random shard counts — incremental and
// rebuilt lp/l0sample/exact states must agree on transcripts for every
// trial.
func TestUpdateRowsRandomizedParity(t *testing.T) {
	rnd := rand.New(rand.NewSource(950))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rnd.Intn(24)
		m := 8 + rnd.Intn(24)
		shards := rnd.Intn(4)
		b := randomInt(uint64(960+trial), n, m, 0.25, 4, false)
		nPatch := 1 + rnd.Intn(4)
		rows := make([]int, nPatch)
		for i := range rows {
			rows[i] = rnd.Intn(n)
		}
		b2 := patchIntRows(uint64(970+trial), b, rows, 4, false)
		a := randomInt(uint64(980+trial), 8, n, 0.3, 3, false)

		o := LpOpts{Eps: 0.4, Seed: uint64(990 + trial), Shards: shards}
		st, err := NewBobLpState(b, 1, o)
		if err != nil {
			t.Fatal(err)
		}
		up, err := st.UpdateRows(b2, rows)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := NewBobLpState(b2, 1, o)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(up.round1, fr.round1) {
			t.Fatalf("trial %d: lp round-1 payload diverged", trial)
		}
		alice := func(tr comm.Transport) error { return AliceLp(tr, a, m, 1, o) }
		inU, outU := runRecorded(t, alice, func(tr comm.Transport) error { _, err := up.Serve(tr); return err })
		inF, outF := runRecorded(t, alice, func(tr comm.Transport) error { _, err := fr.Serve(tr); return err })
		if !bytes.Equal(inU, inF) || !bytes.Equal(outU, outF) {
			t.Fatalf("trial %d: lp transcript diverged", trial)
		}

		so := L0SampleOpts{Eps: 0.5, Seed: uint64(1000 + trial), Shards: shards}
		l0, err := NewBobL0SampleState(b, so)
		if err != nil {
			t.Fatal(err)
		}
		l0up, err := l0.UpdateRows(b2, rows)
		if err != nil {
			t.Fatal(err)
		}
		l0fr, err := NewBobL0SampleState(b2, so)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(l0up.colNZ, l0fr.colNZ) {
			t.Fatalf("trial %d: l0sample column index diverged", trial)
		}
	}
}
