package core

import (
	"math"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// plantedHH builds non-negative integer matrices whose product carries a
// few heavy entries over light background noise. Returns the matrices and
// the exact product.
func plantedHH(seed uint64, n, heavies, weight int, bg float64) (*intmat.Dense, *intmat.Dense, *intmat.Dense) {
	r := rng.New(seed)
	a := intmat.NewDense(n, n)
	b := intmat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Bernoulli(bg) {
				a.Set(i, j, 1)
			}
			if r.Bernoulli(bg) {
				b.Set(i, j, 1)
			}
		}
	}
	for h := 0; h < heavies; h++ {
		i := r.Intn(n)
		j := r.Intn(n)
		for t := 0; t < weight; t++ {
			k := r.Intn(n)
			a.Set(i, k, 1)
			b.Set(k, j, 1)
		}
	}
	return a, b, a.Mul(b)
}

// hhSets computes the exact heavy-hitter sets HH_ϕ and HH_{ϕ-ε} of c.
func hhSets(c *intmat.Dense, p, phi, eps float64) (must, may map[Pair]bool) {
	norm := c.Lp(p)
	must = map[Pair]bool{}
	may = map[Pair]bool{}
	for _, e := range c.NonZeros() {
		pow := math.Pow(math.Abs(float64(e.V)), p)
		if pow >= phi*norm {
			must[Pair{I: e.I, J: e.J}] = true
		}
		if pow >= (phi-eps)*norm {
			may[Pair{I: e.I, J: e.J}] = true
		}
	}
	return must, may
}

func checkHHOutput(t *testing.T, out []WeightedPair, must, may map[Pair]bool, label string) {
	t.Helper()
	got := map[Pair]bool{}
	for _, wp := range out {
		pr := Pair{I: wp.I, J: wp.J}
		got[pr] = true
		if !may[pr] {
			t.Errorf("%s: output %v is not even (ϕ-ε)-heavy", label, pr)
		}
	}
	for pr := range must {
		if !got[pr] {
			t.Errorf("%s: missing ϕ-heavy entry %v", label, pr)
		}
	}
}

func TestHeavyHittersPlanted(t *testing.T) {
	a, b, c := plantedHH(120, 96, 1, 60, 0.01)
	phi, eps := 0.1, 0.05
	must, may := hhSets(c, 1, phi, eps)
	if len(must) == 0 {
		t.Fatal("workload has no heavy hitters; pick new seeds")
	}
	out, cost, err := HeavyHitters(a, b, HHOpts{Phi: phi, Eps: eps, Seed: 121})
	if err != nil {
		t.Fatal(err)
	}
	checkHHOutput(t, out, must, may, "general")
	if cost.Rounds > 8 {
		t.Fatalf("rounds = %d, want O(1)", cost.Rounds)
	}
}

func TestHeavyHittersValuesApproximate(t *testing.T) {
	a, b, c := plantedHH(122, 80, 1, 60, 0.01)
	phi, eps := 0.1, 0.05
	out, _, err := HeavyHitters(a, b, HHOpts{Phi: phi, Eps: eps, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range out {
		truth := float64(c.Get(wp.I, wp.J))
		if relErr(wp.Value, truth) > 0.5 {
			t.Errorf("entry (%d,%d): reported %v, true %v", wp.I, wp.J, wp.Value, truth)
		}
	}
}

func TestHeavyHittersEmptyProduct(t *testing.T) {
	a := intmat.NewDense(32, 32)
	b := randomInt(124, 32, 32, 0.2, 2, true)
	out, _, err := HeavyHitters(a, b, HHOpts{Phi: 0.2, Eps: 0.1, Seed: 125})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty product returned %d heavy hitters", len(out))
	}
}

func TestHeavyHittersSignedMatrices(t *testing.T) {
	// Signed inputs exercise the Algorithm-1-based scale estimation path.
	a := randomInt(126, 64, 64, 0.05, 2, false)
	b := randomInt(127, 64, 64, 0.05, 2, false)
	// Plant one dominant entry.
	for k := 0; k < 30; k++ {
		a.Set(5, k, 2)
		b.Set(k, 9, 2)
	}
	c := a.Mul(b)
	phi, eps := 0.3, 0.15
	must, may := hhSets(c, 1, phi, eps)
	out, _, err := HeavyHitters(a, b, HHOpts{Phi: phi, Eps: eps, Seed: 128})
	if err != nil {
		t.Fatal(err)
	}
	checkHHOutput(t, out, must, may, "signed")
	if len(must) > 0 && len(out) == 0 {
		t.Fatal("signed-path protocol found nothing")
	}
}

func TestHeavyHittersP2(t *testing.T) {
	a, b, c := plantedHH(129, 72, 2, 50, 0.01)
	phi, eps := 0.25, 0.12
	must, may := hhSets(c, 2, phi, eps)
	out, _, err := HeavyHitters(a, b, HHOpts{Phi: phi, Eps: eps, P: 2, Seed: 130})
	if err != nil {
		t.Fatal(err)
	}
	checkHHOutput(t, out, must, may, "p=2")
	_ = must
}

func TestHeavyHittersBinaryPlanted(t *testing.T) {
	ai, bi, c := plantedHH(131, 96, 1, 60, 0.01)
	// Convert to Boolean (planted entries are 0/1 already).
	a := bitmat.New(96, 96)
	b := bitmat.New(96, 96)
	for i := 0; i < 96; i++ {
		for j := 0; j < 96; j++ {
			if ai.Get(i, j) != 0 {
				a.Set(i, j, true)
			}
			if bi.Get(i, j) != 0 {
				b.Set(i, j, true)
			}
		}
	}
	phi, eps := 0.1, 0.05
	must, may := hhSets(c, 1, phi, eps)
	if len(must) == 0 {
		t.Fatal("workload has no heavy hitters; pick new seeds")
	}
	out, cost, err := HeavyHittersBinary(a, b, HHBinaryOpts{Phi: phi, Eps: eps, Seed: 132})
	if err != nil {
		t.Fatal(err)
	}
	checkHHOutput(t, out, must, may, "binary")
	if cost.Rounds > 12 {
		t.Fatalf("rounds = %d, want O(1)", cost.Rounds)
	}
}

func TestHeavyHittersBinaryEmpty(t *testing.T) {
	a := bitmat.New(32, 32)
	b := randomBinary(133, 32, 32, 0.2)
	out, _, err := HeavyHittersBinary(a, b, HHBinaryOpts{Phi: 0.2, Eps: 0.1, Seed: 134})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("empty product returned %d heavy hitters", len(out))
	}
}

func TestHeavyHittersBinaryValueEstimates(t *testing.T) {
	ai, bi, c := plantedHH(135, 80, 1, 60, 0.01)
	a := bitmat.New(80, 80)
	b := bitmat.New(80, 80)
	for i := 0; i < 80; i++ {
		for j := 0; j < 80; j++ {
			if ai.Get(i, j) != 0 {
				a.Set(i, j, true)
			}
			if bi.Get(i, j) != 0 {
				b.Set(i, j, true)
			}
		}
	}
	out, _, err := HeavyHittersBinary(a, b, HHBinaryOpts{Phi: 0.1, Eps: 0.05, Seed: 136})
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range out {
		truth := float64(c.Get(wp.I, wp.J))
		if relErr(wp.Value, truth) > 0.4 {
			t.Errorf("entry (%d,%d): verified estimate %v vs true %v", wp.I, wp.J, wp.Value, truth)
		}
	}
}

func TestDistributedProductExact(t *testing.T) {
	a := randomInt(140, 48, 48, 0.04, 3, false)
	b := randomInt(141, 48, 48, 0.04, 3, false)
	c := a.Mul(b)
	ca, cb, cost, err := DistributedProduct(a, b, MatMulOpts{Sparsity: c.L0() + 1, Seed: 142})
	if err != nil {
		t.Fatal(err)
	}
	sum := ca.Clone()
	sum.AddMatrix(cb)
	if !sum.Equal(c) {
		t.Fatal("CA + CB != AB")
	}
	if cost.Rounds != 1 {
		t.Fatalf("rounds = %d", cost.Rounds)
	}
}

func TestDistributedProductCommunicationScalesWithSparsity(t *testing.T) {
	a := randomInt(143, 64, 64, 0.05, 2, true)
	b := randomInt(144, 64, 64, 0.05, 2, true)
	_, _, cSmall, err := DistributedProduct(a, b, MatMulOpts{Sparsity: 16, Seed: 145})
	if err != nil {
		t.Fatal(err)
	}
	_, _, cBig, err := DistributedProduct(a, b, MatMulOpts{Sparsity: 1024, Seed: 145})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(cBig.Bits) / float64(cSmall.Bits)
	// √(1024/16) = 8; allow generous tolerance around the square-root law.
	if ratio < 3 || ratio > 20 {
		t.Fatalf("sparsity 16→1024 scaled bits by %.1f×, want ≈ √64 = 8×", ratio)
	}
}

func TestDistributedProductRectangular(t *testing.T) {
	a := randomInt(146, 30, 50, 0.05, 2, true)
	b := randomInt(147, 50, 20, 0.05, 2, true)
	c := a.Mul(b)
	ca, cb, _, err := DistributedProduct(a, b, MatMulOpts{Sparsity: c.L0() + 1, Seed: 148})
	if err != nil {
		t.Fatal(err)
	}
	sum := ca.Clone()
	sum.AddMatrix(cb)
	if !sum.Equal(c) {
		t.Fatal("rectangular CA + CB != AB")
	}
}
