package core

import (
	"testing"

	"repro/internal/bitmat"
)

// Invariant tests: protocol executions must be reproducible from their
// seed, route bits in the directions the paper's round structure
// prescribes, and compose costs correctly.

func TestDistributedProductAutoSparsity(t *testing.T) {
	a := randomInt(400, 48, 48, 0.04, 2, true)
	b := randomInt(401, 48, 48, 0.04, 2, true)
	c := a.Mul(b)
	ca, cb, cost, err := DistributedProduct(a, b, MatMulOpts{Seed: 402}) // Sparsity 0 → auto
	if err != nil {
		t.Fatal(err)
	}
	sum := ca.Clone()
	sum.AddMatrix(cb)
	if !sum.Equal(c) {
		t.Fatal("auto-sparsity recovery failed")
	}
	// Auto mode must include the ℓ0-estimation rounds in the bill.
	_, fixed, err := func() (any, Cost, error) {
		x, y, cc, e := DistributedProduct(a, b, MatMulOpts{Sparsity: c.L0() + 1, Seed: 402})
		_ = x
		_ = y
		return nil, cc, e
	}()
	if err != nil {
		t.Fatal(err)
	}
	if cost.Bits <= fixed.Bits {
		t.Fatalf("auto mode bits %d not above fixed-sparsity bits %d", cost.Bits, fixed.Bits)
	}
	if cost.Rounds <= fixed.Rounds {
		t.Fatalf("auto mode rounds %d must include the estimation rounds", cost.Rounds)
	}
}

func TestEstimateLpMessageDirections(t *testing.T) {
	// Round 1 is Bob→Alice (sketches), round 2 Alice→Bob (sampled rows).
	a := randomInt(403, 64, 64, 0.1, 2, true)
	b := randomInt(404, 64, 64, 0.1, 2, true)
	_, cost, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.4, Seed: 405})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Stats.BitsBobToAlice == 0 {
		t.Fatal("no Bob→Alice sketch traffic")
	}
	if cost.Stats.BitsAliceToBob == 0 {
		t.Fatal("no Alice→Bob sample traffic")
	}
	// Sketches dominate: Bob's side should be the larger.
	if cost.Stats.BitsBobToAlice < cost.Stats.BitsAliceToBob {
		t.Logf("note: sample traffic exceeded sketch traffic (%d vs %d)",
			cost.Stats.BitsAliceToBob, cost.Stats.BitsBobToAlice)
	}
}

func TestOneRoundLpIsOneWay(t *testing.T) {
	a := randomInt(406, 48, 48, 0.1, 2, true)
	b := randomInt(407, 48, 48, 0.1, 2, true)
	_, cost, err := OneRoundLp(a, b, 0, LpOpts{Eps: 0.4, Seed: 408})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Stats.BitsAliceToBob != 0 {
		t.Fatalf("one-round protocol sent %d Alice→Bob bits", cost.Stats.BitsAliceToBob)
	}
}

func TestSampleL0IsOneWayAliceToBob(t *testing.T) {
	a := randomBinary(409, 48, 48, 0.1).ToInt()
	b := randomBinary(410, 48, 48, 0.1).ToInt()
	_, _, cost, err := SampleL0(a, b, L0SampleOpts{Eps: 0.5, Seed: 411})
	if err != nil && err != ErrSampleFailed {
		t.Fatal(err)
	}
	if cost.Stats.BitsBobToAlice != 0 {
		t.Fatalf("ℓ0-sampling sent %d Bob→Alice bits, want 0", cost.Stats.BitsBobToAlice)
	}
}

func TestProtocolsDeterministicAcrossRuns(t *testing.T) {
	aB := randomBinary(412, 64, 64, 0.1)
	bB := randomBinary(413, 64, 64, 0.1)
	aI, bI := aB.ToInt(), bB.ToInt()

	run := func() []any {
		var out []any
		e1, c1, _ := EstimateLp(aI, bI, 0, LpOpts{Eps: 0.4, Seed: 7})
		out = append(out, e1, c1.Bits)
		e2, p2, c2, _ := EstimateLinfBinary(aB, bB, LinfOpts{Eps: 0.5, Seed: 7})
		out = append(out, e2, p2, c2.Bits)
		e3, p3, c3, _ := EstimateLinfKappa(aB, bB, LinfKappaOpts{Kappa: 8, Seed: 7})
		out = append(out, e3, p3, c3.Bits)
		e4, c4, _ := EstimateLinfGeneral(aI, bI, LinfGeneralOpts{Kappa: 4, Seed: 7})
		out = append(out, e4, c4.Bits)
		hh, c5, _ := HeavyHitters(aI, bI, HHOpts{Phi: 0.1, Eps: 0.05, Seed: 7})
		out = append(out, len(hh), c5.Bits)
		hhb, c6, _ := HeavyHittersBinary(aB, bB, HHBinaryOpts{Phi: 0.1, Eps: 0.05, Seed: 7})
		out = append(out, len(hhb), c6.Bits)
		pr, v, c7, err := SampleL0(aI, bI, L0SampleOpts{Eps: 0.5, Seed: 7})
		out = append(out, pr, v, c7.Bits, err == nil)
		return out
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatal("different output shapes")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic output at position %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestAddCost(t *testing.T) {
	a := Cost{Bits: 10, Rounds: 2}
	a.Stats.BitsAliceToBob = 6
	a.Stats.BitsBobToAlice = 4
	a.Stats.Messages = 3
	a.Stats.Rounds = 2
	b := Cost{Bits: 5, Rounds: 1}
	b.Stats.BitsAliceToBob = 5
	b.Stats.Messages = 1
	b.Stats.Rounds = 1
	sum := addCost(a, b)
	if sum.Bits != 15 || sum.Rounds != 3 || sum.Stats.BitsAliceToBob != 11 ||
		sum.Stats.BitsBobToAlice != 4 || sum.Stats.Messages != 4 || sum.Stats.Rounds != 3 {
		t.Fatalf("addCost = %+v", sum)
	}
}

func TestLinfBinaryCostBelowNaiveAtScale(t *testing.T) {
	// The paper's headline n^1.5 vs n² separation, as a regression test
	// at the size where EXPERIMENTS.md shows the crossover.
	n := 384
	a := bitmat.New(n, n)
	b := bitmat.New(n, n)
	r := randomBinary(414, n, n, 0.05)
	s := randomBinary(415, n, n, 0.05)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.Get(i, j))
			b.Set(i, j, s.Get(i, j))
		}
	}
	_, _, cost, err := EstimateLinfBinary(a, b, LinfOpts{Eps: 0.5, Seed: 416})
	if err != nil {
		t.Fatal(err)
	}
	if naive := int64(n) * int64(n); cost.Bits >= naive {
		t.Fatalf("ℓ∞ protocol used %d bits ≥ naive %d at n=%d", cost.Bits, naive, n)
	}
}
