package core

import (
	"math"

	"repro/internal/comm"
	"repro/internal/intmat"
	"repro/internal/rng"
	"repro/internal/sketch"
)

// LinfGeneralOpts configures EstimateLinfGeneral.
type LinfGeneralOpts struct {
	// Kappa is the target approximation factor in [1, n].
	Kappa float64
	// AMSReps and AMSCols shape the per-block AMS sketch (median of
	// AMSReps groups of AMSCols measurements). Defaults 5 and 16.
	AMSReps, AMSCols int
	// Seed is the shared public-coin seed.
	Seed uint64
}

func (o *LinfGeneralOpts) setDefaults(n int) error {
	if o.Kappa < 1 || o.Kappa > float64(n)+1 {
		return ErrBadKappa
	}
	if o.AMSReps <= 0 {
		o.AMSReps = 5
	}
	if o.AMSCols <= 0 {
		o.AMSCols = 16
	}
	return nil
}

// EstimateLinfGeneral is the upper bound of Theorem 4.8(1): a one-round
// κ-approximation of ‖AB‖∞ for arbitrary integer matrices using
// Õ(n²/κ²) bits — and by Theorem 4.8(2) this is optimal, in sharp
// contrast with the Õ(n^1.5/κ) achievable for Boolean matrices.
//
// The sketch (from [33]) partitions each column of C into blocks of κ²
// coordinates and runs AMS on every block: since ‖y‖∞ ∈ [‖y‖2/κ, ‖y‖2]
// for a κ²-dimensional block y, the maximum per-block ℓ2 estimate is a
// κ-approximation of the column's ℓ∞. Alice ships the sketch applied to
// her columns (S·A, Õ(n/κ²)×n words); Bob completes S·A·B = S·C by
// linearity and maximizes over blocks and columns.
//
// The returned estimate lies in [‖C‖∞, κ·‖C‖∞] up to the AMS
// multiplicative error.
func EstimateLinfGeneral(a, b *intmat.Dense, o LinfGeneralOpts) (float64, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, Cost{}, err
	}
	m1 := a.Rows()
	n := a.Cols()
	m2 := b.Cols()
	if err := o.setDefaults(n); err != nil {
		return 0, Cost{}, err
	}
	conn := comm.NewConn()
	shared := rng.New(o.Seed)

	blockSize := int(math.Max(1, math.Round(o.Kappa*o.Kappa)))
	if blockSize > m1 {
		blockSize = m1
	}
	bs := sketch.NewBlockAMS(shared.Derive("linfgeneral"), m1, blockSize, o.AMSReps, o.AMSCols)

	// Round 1 (Alice→Bob): the sketch of every column of A.
	msg := comm.NewMessage()
	col := make([]int64, m1)
	for k := 0; k < n; k++ {
		for i := 0; i < m1; i++ {
			col[i] = a.Get(i, k)
		}
		msg.PutFloat64Slice(bs.Apply(col))
	}
	recv := conn.Send(comm.AliceToBob, msg)

	skA := make([][]float64, n)
	for k := 0; k < n; k++ {
		skA[k] = recv.Float64Slice()
	}

	// Bob: per column j of C, combine and maximize block estimates.
	best := 0.0
	acc := make([]float64, bs.Dim())
	for j := 0; j < m2; j++ {
		for i := range acc {
			acc[i] = 0
		}
		any := false
		for k := 0; k < n; k++ {
			if v := b.Get(k, j); v != 0 {
				sketch.AxpyFloat(acc, float64(v), skA[k])
				any = true
			}
		}
		if !any {
			continue
		}
		if e := bs.EstimateMax(acc); e > best {
			best = e
		}
	}
	return best, costOf(conn), nil
}
