package core

import (
	"fmt"
	"math"

	"repro/internal/bitmat"
	"repro/internal/comm"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// LinfOpts configures EstimateLinfBinary.
type LinfOpts struct {
	// Eps is the approximation slack: the estimate is within a (2+ε)
	// factor of ‖AB‖∞ with constant probability. Required, in (0, 1].
	Eps float64
	// GammaC scales the level-selection threshold γ = GammaC·ln(n)/ε²
	// (the paper's 10⁴·log n/ε², scaled for constant success
	// probability). Default 1.
	GammaC float64
	// Seed is the shared public-coin seed.
	Seed uint64
	// Shards splits Bob's row-parallel phases (row-weight precompute,
	// per-level ‖C^ℓ‖1 dot products) into contiguous ranges executed
	// concurrently. Never changes a transcript byte or an output bit;
	// 0 or 1 runs sequentially.
	Shards int
}

func (o *LinfOpts) setDefaults() error {
	if o.Eps <= 0 || o.Eps > 1 {
		return ErrBadEps
	}
	if o.GammaC <= 0 {
		o.GammaC = 1
	}
	return nil
}

// itemEntry records one surviving 1-entry of Alice's matrix in column
// (item) k: the row index and the deepest subsampling level it survives.
type itemEntry struct {
	row   int32
	level int32
}

// levelColumns assigns every 1-entry of a an independent geometric
// survival level (entry survives level ℓ iff its uniform draw is below
// p_ℓ) and groups entries by item (column). base is the level decay:
// survival probability at level ℓ is base^-ℓ.
func levelColumns(a *bitmat.Matrix, priv *rng.RNG, base float64, maxLevel int) [][]itemEntry {
	cols := make([][]itemEntry, a.Cols())
	logBase := math.Log(base)
	for i := 0; i < a.Rows(); i++ {
		for _, k := range a.RowSupport(i) {
			u := priv.Float64()
			for u == 0 {
				u = priv.Float64()
			}
			// Survives level ℓ iff u ≤ base^-ℓ ⟺ ℓ ≤ ln(1/u)/ln(base).
			lev := int(math.Floor(math.Log(1/u) / logBase))
			if lev > maxLevel {
				lev = maxLevel
			}
			cols[k] = append(cols[k], itemEntry{row: int32(i), level: int32(lev)})
		}
	}
	return cols
}

// survivorsAt returns the rows of column k surviving level ℓ, in
// increasing order (levelColumns emits rows in increasing order).
func survivorsAt(col []itemEntry, ℓ int) []int {
	var out []int
	for _, e := range col {
		if int(e.level) >= ℓ {
			out = append(out, int(e.row))
		}
	}
	return out
}

// The index exchange (steps 7–14 of Algorithm 2): for every active item
// k, the party with the smaller side (Alice's surviving rows containing
// k vs. Bob's columns containing k) ships its index list, after which
// Alice and Bob hold matrices CA and CB with CA + CB = C' (the
// subsampled product). uk must be known to both parties before it runs
// (it is part of the colsum message of round 1). It is split into three
// phases so the same logic serves both the party drivers (Bob runs
// send + finish, Alice runs her turn) and the interleaved composition
// below.

// bobExchangeSend is Bob's opening move: vk for active items, then his
// index lists for the items he covers — one B→A message. It returns vk
// for bobExchangeFinish.
func bobExchangeSend(t comm.Transport, b *bitmat.Matrix, uk []int, active []int) []int {
	bobMsg := comm.NewMessage()
	bobMsg.Label = "v_k counts and Bob's item index lists"
	vk := make([]int, len(uk))
	for _, k := range active {
		vk[k] = b.RowWeight(k)
		bobMsg.PutUvarint(uint64(vk[k]))
	}
	for _, k := range active {
		if uk[k] > 0 && vk[k] > 0 && vk[k] < uk[k] {
			bobMsg.PutIndexList(b.RowSupport(k))
		}
	}
	t.Send(comm.BobToAlice, bobMsg)
	return vk
}

// aliceExchangeTurn is Alice's whole exchange: read Bob's vk and lists,
// build CA, reply with her lists for the items she covers plus her
// local maximum — one A→B message. It returns CA for protocols that
// need the partial matrix.
func aliceExchangeTurn(t comm.Transport, aliceCols [][]itemEntry, level int, uk []int, active []int, m1, m2 int) *intmat.Dense {
	recvB := t.Recv(comm.BobToAlice)
	vkA := make([]int, len(uk))
	for _, k := range active {
		vkA[k] = int(recvB.Uvarint())
	}
	ca := intmat.NewDense(m1, m2)
	for _, k := range active {
		if uk[k] > 0 && vkA[k] > 0 && vkA[k] < uk[k] {
			js := recvB.IndexList()
			for _, i := range survivorsAt(aliceCols[k], level) {
				row := ca.Row(i)
				for _, j := range js {
					row[j]++
				}
			}
		}
	}
	maxCA, argI, argJ := ca.Linf()

	aliceMsg := comm.NewMessage()
	aliceMsg.Label = "Alice's item index lists and ‖CA‖∞"
	for _, k := range active {
		if uk[k] > 0 && vkA[k] > 0 && uk[k] <= vkA[k] {
			aliceMsg.PutIndexList(survivorsAt(aliceCols[k], level))
		}
	}
	aliceMsg.PutVarint(maxCA)
	aliceMsg.PutUvarint(uint64(argI))
	aliceMsg.PutUvarint(uint64(argJ))
	t.Send(comm.AliceToBob, aliceMsg)
	return ca
}

// bobExchangeFinish is Bob's closing move: read Alice's lists, build
// CB, and combine both sides' maxima into the protocol output
// max(‖CA‖∞, ‖CB‖∞) with its witnessing pair.
func bobExchangeFinish(t comm.Transport, b *bitmat.Matrix, vk, uk []int, active []int, m1 int) (maxVal int64, arg Pair, cb *intmat.Dense) {
	recvA := t.Recv(comm.AliceToBob)
	cb = intmat.NewDense(m1, b.Cols())
	for _, k := range active {
		if uk[k] > 0 && vk[k] > 0 && uk[k] <= vk[k] {
			is := recvA.IndexList()
			bRow := b.RowSupport(k)
			for _, i := range is {
				row := cb.Row(i)
				for _, j := range bRow {
					row[j]++
				}
			}
		}
	}
	maxCAFromAlice := recvA.Varint()
	aI := int(recvA.Uvarint())
	aJ := int(recvA.Uvarint())
	maxCB, bI, bJ := cb.Linf()
	if maxCAFromAlice >= maxCB {
		return maxCAFromAlice, Pair{I: aI, J: aJ}, cb
	}
	return maxCB, Pair{I: bI, J: bJ}, cb
}

// indexExchange composes the three phases for interleaved callers that
// hold both matrices (heavy hitters for Boolean inputs). t must be a
// two-sided transport (the in-process Conn): Bob's send is immediately
// receivable by Alice's turn on the same goroutine.
func indexExchange(t comm.Transport, aliceCols [][]itemEntry, level int, uk []int, b *bitmat.Matrix, m1, m2 int, active []int) (maxVal int64, arg Pair, ca, cb *intmat.Dense) {
	vk := bobExchangeSend(t, b, uk, active)
	ca = aliceExchangeTurn(t, aliceCols, level, uk, active, m1, m2)
	maxVal, arg, cb = bobExchangeFinish(t, b, vk, uk, active, m1)
	return maxVal, arg, ca, cb
}

// EstimateLinfBinary is Algorithm 2 (Theorem 4.1): a 3-round protocol
// approximating ‖AB‖∞ for Boolean matrices within a (2+ε) factor using
// Õ(n^1.5/ε) bits.
//
// Alice subsamples her 1-entries at geometric rates p_ℓ = (1+ε)^-ℓ;
// round 1 ships per-level column sums so Bob can locate the first level
// ℓ* at which ‖C^ℓ‖1 ≤ γ·n² (Remark 2 per level). The parties then
// exchange, per item, the smaller of Alice's "rows containing k" /
// Bob's "columns containing k" index lists — Σ_k min(u_k, v_k) ≤
// √(n·‖C^ℓ*‖1) ≤ n^1.5·√γ by Cauchy–Schwarz — which splits C^ℓ* into
// CA + CB. Since max(‖CA‖∞, ‖CB‖∞) ≥ ‖C^ℓ*‖∞/2 and the subsampled
// maximum rescales by 1/p_ℓ* within (1±ε), the output is a (2+ε)-factor
// approximation; the matching Ω(n²) bound for factor 2 (Theorem 4.4)
// makes the 2+ε loss necessary.
//
// It also returns the witnessing pair, which is the maximizer of the
// dominant side's partial matrix.
func EstimateLinfBinary(a, b *bitmat.Matrix, o LinfOpts) (float64, Pair, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, Pair{}, Cost{}, err
	}
	var est float64
	var arg Pair
	cost, err := runPair(
		func(t comm.Transport) error { return AliceLinf(t, a, b.Cols(), o) },
		func(t comm.Transport) (err error) { est, arg, err = BobLinf(t, b, a.Rows(), o); return err },
	)
	if err != nil {
		return 0, Pair{}, cost, err
	}
	return est, arg, cost, nil
}

// linfLevels performs Alice's subsampling for Algorithm 2: every
// 1-entry of a gets a geometric survival level at decay base, and the
// per-level column sums are tabulated for round 1.
func linfLevels(a *bitmat.Matrix, priv *rng.RNG, base float64) (cols [][]itemEntry, colSums [][]int, maxLevel int) {
	weightA := a.Weight()
	if weightA > 1 {
		maxLevel = int(math.Ceil(math.Log(float64(weightA))/math.Log(base))) + 1
	}
	cols = levelColumns(a, priv, base, maxLevel)
	colSums = make([][]int, maxLevel+1)
	for ℓ := 0; ℓ <= maxLevel; ℓ++ {
		colSums[ℓ] = make([]int, a.Cols())
	}
	for k, col := range cols {
		for _, e := range col {
			for ℓ := 0; ℓ <= int(e.level); ℓ++ {
				colSums[ℓ][k]++
			}
		}
	}
	return cols, colSums, maxLevel
}

// allItems returns the full active-item set {0, …, n−1} (Algorithm 2
// runs the exchange over every item; Algorithm 3 only over survivors of
// the universe sampling).
func allItems(n int) []int {
	active := make([]int, n)
	for k := range active {
		active[k] = k
	}
	return active
}

// AliceLinf drives Alice's side of Algorithm 2: level subsampling,
// per-level column sums in round 1, then her half of the index exchange
// at the level Bob selects. m2 is Bob's column count (catalog
// metadata). The estimate is Bob's output.
func AliceLinf(t comm.Transport, a *bitmat.Matrix, m2 int, o LinfOpts) (err error) {
	defer recoverDecodeError(&err)
	if err := o.setDefaults(); err != nil {
		return err
	}
	n := a.Cols()
	alicePriv := rng.New(o.Seed).Derive("alice-private", "linf")
	cols, colSums, maxLevel := linfLevels(a, alicePriv, 1+o.Eps)

	// Round 1 (Alice→Bob): per-level column sums of A^ℓ.
	msg1 := comm.NewMessage()
	msg1.Label = "per-level column sums of A^ℓ"
	msg1.PutUvarint(uint64(maxLevel))
	for ℓ := 0; ℓ <= maxLevel; ℓ++ {
		for k := 0; k < n; k++ {
			msg1.PutUvarint(uint64(colSums[ℓ][k]))
		}
	}
	t.Send(comm.AliceToBob, msg1)

	// Round 2 (Bob→Alice): the selected level, then Alice's exchange turn.
	lStar := int(t.Recv(comm.BobToAlice).Uvarint())
	if lStar > maxLevel {
		return fmt.Errorf("core: selected level %d exceeds maximum %d", lStar, maxLevel)
	}
	aliceExchangeTurn(t, cols, lStar, colSums[lStar], allItems(n), a.Rows(), m2)
	return nil
}

// BobLinf drives Bob's side of Algorithm 2: he locates the first level
// ℓ* at which ‖C^ℓ‖1 falls below the γ·m1·m2 threshold (Remark 2 per
// level), announces it, runs his half of the index exchange, and
// rescales the subsampled maximum by 1/p_ℓ*. m1 is Alice's row count
// (catalog metadata).
func BobLinf(t comm.Transport, b *bitmat.Matrix, m1 int, o LinfOpts) (est float64, arg Pair, err error) {
	st, err := NewBobLinfState(b, o)
	if err != nil {
		return 0, Pair{}, err
	}
	return st.Serve(t, m1)
}

// BobLinfState is the matrix-dependent phase of Bob's side of
// Algorithm 2: B with its per-row weights v_k precomputed (the level
// selection folds them against Alice's column sums every query).
// Immutable after construction; safe for concurrent Serve calls.
type BobLinfState struct {
	b    *bitmat.Matrix
	vk   []int64 // RowWeight per row of B
	opts LinfOpts
}

// NewBobLinfState validates the options and precomputes B's row
// weights over sharded row ranges.
func NewBobLinfState(b *bitmat.Matrix, o LinfOpts) (*BobLinfState, error) {
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	return &BobLinfState{b: b, vk: rowWeightsSharded(b, o.Shards), opts: o}, nil
}

// rowWeightsSharded computes per-row bit weights of b over contiguous
// sharded row ranges (disjoint writes).
func rowWeightsSharded(b *bitmat.Matrix, shards int) []int64 {
	vk := make([]int64, b.Rows())
	runShards(b.Rows(), shards, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			vk[k] = int64(b.RowWeight(k))
		}
	})
	return vk
}

// Bytes reports the memory retained by the precomputation.
func (s *BobLinfState) Bytes() int64 { return int64(8 * len(s.vk)) }

// Serve runs the per-query phase of Bob's side of Algorithm 2 over t.
// m1 is Alice's row count for this query.
func (s *BobLinfState) Serve(t comm.Transport, m1 int) (est float64, arg Pair, err error) {
	defer recoverDecodeError(&err)
	o := s.opts
	b := s.b
	n := b.Rows()
	m2 := b.Cols()

	// Round 1 in: per-level column sums; pick ℓ* via Remark 2 per level.
	recv1 := t.Recv(comm.AliceToBob)
	gotMax := int(recv1.Uvarint())
	bobColSums := make([][]int, gotMax+1)
	for ℓ := 0; ℓ <= gotMax; ℓ++ {
		bobColSums[ℓ] = make([]int, n)
		for k := 0; k < n; k++ {
			bobColSums[ℓ][k] = int(recv1.Uvarint())
		}
	}
	gamma := o.GammaC * lnDim(n) / (o.Eps * o.Eps)
	threshold := gamma * float64(m1) * float64(m2)
	lStar := gotMax
	for ℓ := 0; ℓ <= gotMax; ℓ++ {
		// Remark 2 per level: the ‖C^ℓ‖1 dot product shards with exact
		// int64 partials; the level scan itself stays sequential (it
		// stops at the first level under the threshold).
		colSums := bobColSums[ℓ]
		l1 := sumInt64Shards(n, o.Shards, func(k int) int64 {
			return int64(colSums[k]) * s.vk[k]
		})
		if float64(l1) <= threshold {
			lStar = ℓ
			break
		}
	}

	// Round 2 begins (Bob→Alice): ℓ*, then the exchange.
	msgL := comm.NewMessage()
	msgL.Label = "selected level ℓ*"
	msgL.PutUvarint(uint64(lStar))
	t.Send(comm.BobToAlice, msgL)

	active := allItems(n)
	vkSent := bobExchangeSend(t, b, bobColSums[lStar], active)
	maxVal, arg, _ := bobExchangeFinish(t, b, vkSent, bobColSums[lStar], active, m1)

	pl := math.Pow(1+o.Eps, -float64(lStar))
	return float64(maxVal) / pl, arg, nil
}
