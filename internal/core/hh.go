package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/intmat"
	"repro/internal/rng"
	"repro/internal/sketch"
)

// HHOpts configures HeavyHitters (Algorithm 4 / Corollary 5.2).
type HHOpts struct {
	// Phi and Eps define the ℓp-(ϕ,ε)-heavy-hitter guarantee: the output
	// S satisfies HH_ϕ(AB) ⊆ S ⊆ HH_{ϕ-ε}(AB). Must satisfy
	// 0 < Eps ≤ Phi ≤ 1.
	Phi, Eps float64
	// P is the norm index in (0, 2]. Default 1, the natural-join case the
	// paper presents first; other p follow Corollary 5.2.
	P float64
	// BetaC scales the entry-sampling rate (the paper's 10⁴ log n,
	// scaled). Default 2.
	BetaC float64
	// Reps is the tensor-CountSketch repetition count for the embedded
	// Lemma 2.5 recovery. Default 11.
	Reps int
	// Seed is the shared public-coin seed.
	Seed uint64
	// Shards splits Bob's row-parallel phases (absolute row sums, the
	// scale dot product, and the embedded Algorithm 1 state) into
	// contiguous ranges executed concurrently. Never changes a transcript
	// byte or an output bit; 0 or 1 runs sequentially.
	Shards int
}

func (o *HHOpts) setDefaults() error {
	if o.Eps <= 0 || o.Phi < o.Eps || o.Phi > 1 {
		return ErrBadPhi
	}
	if o.P == 0 {
		o.P = 1
	}
	if o.P < 0 || o.P > 2 {
		return ErrBadP
	}
	if o.BetaC <= 0 {
		o.BetaC = 2
	}
	if o.Reps <= 0 {
		o.Reps = 11
	}
	return nil
}

func addCost(a, b Cost) Cost {
	return Cost{
		Bits:   a.Bits + b.Bits,
		Rounds: a.Rounds + b.Rounds,
		Stats: comm.Stats{
			BitsAliceToBob: a.Stats.BitsAliceToBob + b.Stats.BitsAliceToBob,
			BitsBobToAlice: a.Stats.BitsBobToAlice + b.Stats.BitsBobToAlice,
			Messages:       a.Stats.Messages + b.Stats.Messages,
			Rounds:         a.Stats.Rounds + b.Stats.Rounds,
		},
	}
}

// hhNestedLpOpts is the option set of Algorithm 4's embedded ‖C‖p^p
// estimation (step 1b) — the common choice both parties must agree on.
// Shards rides along: it is execution-local and transcript-free, so the
// parties need not agree on it.
func hhNestedLpOpts(o HHOpts) LpOpts {
	return LpOpts{Eps: math.Min(0.25, o.Eps/(4*o.Phi)), Seed: o.Seed + 1, Shards: o.Shards}
}

// HeavyHitters is Algorithm 4 (Theorem 5.1) extended to p ∈ (0, 2]
// (Corollary 5.2): an O(1)-round protocol computing the
// ℓp-(ϕ,ε)-heavy-hitters of C = A·B for integer matrices with
// Õ(√ϕ/ε·n) bits of communication.
//
// The idea mirrors the ℓ∞ protocols: Alice downsamples the non-zero
// entries of A at rate β chosen so heavy entries of C^β = A^β·B stay
// concentrated (1 ± ε/4ϕ) while ‖C^β‖1 collapses to Õ(ϕ/ε²). The sparse
// C^β is then recovered exactly through the embedded Lemma 2.5 tensor
// sketch (grid side Θ(√(ϕ)/ε), hence the √ϕ/ε·n bits), candidate entries
// above (εβ/8)·ϕ^{... } are exchanged, and entries above
// β·((ϕ−ε/2)‖C‖p^p)^{1/p} are output.
//
// ‖C‖p^p (the heaviness scale) is computed exactly via Remark 2 when
// p = 1 and both matrices are non-negative, and estimated with
// Algorithm 1 otherwise — run inline on the same transport, so its cost
// is included in the returned Cost.
//
// Returned values are the recovered C^β entries rescaled by 1/β, i.e.
// unbiased estimates of C[i][j].
func HeavyHitters(a, b *intmat.Dense, o HHOpts) ([]WeightedPair, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return nil, Cost{}, err
	}
	aNonNeg := requireNonNegative(a) == nil
	bNonNeg := requireNonNegative(b) == nil
	var out []WeightedPair
	cost, err := runPair(
		func(t comm.Transport) error { return AliceHH(t, a, b.Cols(), bNonNeg, o) },
		func(t comm.Transport) (err error) { out, err = BobHH(t, b, a.Rows(), aNonNeg, o); return err },
	)
	if err != nil {
		return nil, cost, err
	}
	return out, cost, nil
}

// AliceHH drives Alice's side of Algorithm 4: absolute column sums out,
// the embedded scale estimation when needed, β-downsampling of A, her
// side of the Lemma 2.5 recovery, and the candidate shipment. m2 is
// Bob's column count and bNonNeg whether Bob's matrix is entrywise
// non-negative — both catalog metadata known before the protocol
// starts. The heavy-hitter set is Bob's output.
func AliceHH(t comm.Transport, a *intmat.Dense, m2 int, bNonNeg bool, o HHOpts) (err error) {
	defer recoverDecodeError(&err)
	if err := o.setDefaults(); err != nil {
		return err
	}
	n := a.Cols()
	m1 := a.Rows()

	// Step 1a (Alice→Bob): column sums of |A|.
	msg1 := comm.NewMessage()
	msg1.Label = "column sums of |A|"
	absColSums := make([]int64, n)
	for i := 0; i < m1; i++ {
		for k, v := range a.Row(i) {
			if v < 0 {
				v = -v
			}
			absColSums[k] += v
		}
	}
	for _, s := range absColSums {
		msg1.PutUvarint(uint64(s))
	}
	t.Send(comm.AliceToBob, msg1)

	// Step 1b: when the scale is not exact, run Alice's side of the
	// embedded Algorithm 1 on the same transport.
	if !(o.P == 1 && bNonNeg && requireNonNegative(a) == nil) {
		if err := AliceLp(t, a, m2, o.P, hhNestedLpOpts(o)); err != nil {
			return err
		}
	}

	// Step 1c (Bob→Alice): the scale.
	recv2 := t.Recv(comm.BobToAlice)
	t1absAlice := recv2.Varint()
	tpAlice := recv2.Float64()
	if tpAlice <= 0 {
		return nil // empty (or estimated-empty) product: no heavy hitters
	}

	// Step 2: sampling rate.
	heavyVal := math.Pow(o.Phi*tpAlice, 1/o.P)
	beta := math.Min(8*o.BetaC*lnDim(n)*(o.Phi/o.Eps)*(o.Phi/o.Eps)/heavyVal, 1)

	// Step 3: Alice samples the non-zero entries of A.
	alicePriv := rng.New(o.Seed).Derive("alice-private", "hh")
	aBeta := intmat.NewDense(m1, n)
	for i := 0; i < m1; i++ {
		for k, v := range a.Row(i) {
			if v != 0 && alicePriv.Bernoulli(beta) {
				aBeta.Set(i, k, v)
			}
		}
	}

	// Step 4: recover C^β via the Lemma 2.5 tensor sketch.
	ts := hhTensorSketch(o, m1, n, m2, beta, t1absAlice)
	recv3 := t.Recv(comm.BobToAlice)
	sk := ts.SketchFromCompressed(aBeta, recv3.VarintSlice())
	recovered := ts.Decode(sk)

	// Step 5 (Alice→Bob): ship entries above the εβ·heavyVal/(8ϕ) floor.
	sendCutoff := (o.Eps / (8 * o.Phi)) * beta * heavyVal
	msg4 := comm.NewMessage()
	msg4.Label = "candidate heavy entries of C^β"
	var shipped []intmat.Entry
	for _, e := range recovered {
		if math.Abs(float64(e.V)) >= sendCutoff {
			shipped = append(shipped, e)
		}
	}
	msg4.PutUvarint(uint64(len(shipped)))
	for _, e := range shipped {
		msg4.PutUvarint(uint64(e.I))
		msg4.PutUvarint(uint64(e.J))
		msg4.PutVarint(e.V)
	}
	t.Send(comm.AliceToBob, msg4)
	return nil
}

// BobHH drives Bob's side of Algorithm 4: he derives the exact
// ‖|A|·|B|‖1 scale from Alice's column sums (estimating ‖C‖p^p inline
// when the exact shortcut does not apply), shares it, compresses B for
// the Lemma 2.5 recovery, and keeps the shipped candidates above the
// output threshold. m1 is Alice's row count and aNonNeg whether her
// matrix is entrywise non-negative — both catalog metadata.
func BobHH(t comm.Transport, b *intmat.Dense, m1 int, aNonNeg bool, o HHOpts) (out []WeightedPair, err error) {
	st, err := NewBobHHState(b, o)
	if err != nil {
		return nil, err
	}
	return st.Serve(t, m1, aNonNeg)
}

// BobHHState is the matrix-dependent phase of Bob's side of
// Algorithm 4: the absolute row sums of B (the ‖|A|·|B|‖1 scale folds
// them against Alice's column sums every query), B's signedness, and —
// built lazily on first use, since it is only needed when the exact
// p = 1 scale shortcut does not apply to a query — the nested
// BobLpState of the embedded Algorithm 1. Safe for concurrent Serve
// calls.
type BobHHState struct {
	b          *intmat.Dense
	absRowSums []int64
	bNonNeg    bool
	opts       HHOpts // defaults applied

	nestedMu    sync.Mutex
	nestedBuilt bool
	nested      *BobLpState
	nestedErr   error
}

// NewBobHHState validates the options and runs the matrix-dependent
// precomputation of Bob's side of Algorithm 4.
func NewBobHHState(b *intmat.Dense, o HHOpts) (*BobHHState, error) {
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	s := &BobHHState{b: b, bNonNeg: requireNonNegativeSharded(b, o.Shards) == nil, opts: o}
	s.absRowSums = make([]int64, b.Rows())
	runShards(b.Rows(), o.Shards, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			var rs int64
			for _, v := range b.Row(k) {
				if v < 0 {
					v = -v
				}
				rs += v
			}
			s.absRowSums[k] = rs
		}
	})
	return s, nil
}

// Bytes reports the memory retained by the precomputation (the nested
// ℓp sketches are counted once built).
func (s *BobHHState) Bytes() int64 {
	n := int64(8 * len(s.absRowSums))
	s.nestedMu.Lock()
	if s.nested != nil {
		n += s.nested.Bytes()
	}
	s.nestedMu.Unlock()
	return n
}

// nestedLp returns the nested Algorithm 1 state, building it on first
// use.
func (s *BobHHState) nestedLp() (*BobLpState, error) {
	s.nestedMu.Lock()
	defer s.nestedMu.Unlock()
	if !s.nestedBuilt {
		s.nested, s.nestedErr = NewBobLpState(s.b, s.opts.P, hhNestedLpOpts(s.opts))
		s.nestedBuilt = true
	}
	return s.nested, s.nestedErr
}

// Serve runs the per-query phase of Bob's side of Algorithm 4 over t.
// m1 is Alice's row count and aNonNeg her matrix's signedness for this
// query.
func (s *BobHHState) Serve(t comm.Transport, m1 int, aNonNeg bool) (out []WeightedPair, err error) {
	defer recoverDecodeError(&err)
	o := s.opts
	b := s.b
	n := b.Rows()
	m2 := b.Cols()

	// Step 1a in: the exact ‖|A|·|B|‖1, which upper-bounds the sampled
	// sparsity for any sign pattern and equals ‖C‖1 for non-negative
	// inputs. The varint stream decodes sequentially; the dot product
	// shards with exact int64 partials.
	recv1 := t.Recv(comm.AliceToBob)
	absColSums := make([]int64, n)
	for k := 0; k < n; k++ {
		absColSums[k] = int64(recv1.Uvarint())
	}
	t1abs := sumInt64Shards(n, o.Shards, func(k int) int64 {
		return absColSums[k] * s.absRowSums[k]
	})

	// Step 1b: the heaviness scale ‖C‖p^p.
	var tp float64
	if o.P == 1 && aNonNeg && s.bNonNeg {
		tp = float64(t1abs)
	} else {
		nested, err := s.nestedLp()
		if err != nil {
			return nil, err
		}
		est, err := nested.Serve(t)
		if err != nil {
			return nil, err
		}
		tp = est
	}

	// Step 1c (Bob→Alice): share the scale so Alice can set β.
	msg2 := comm.NewMessage()
	msg2.Label = "heaviness scale"
	msg2.PutVarint(t1abs)
	msg2.PutFloat64(tp)
	t.Send(comm.BobToAlice, msg2)
	if tp <= 0 {
		return nil, nil // empty (or estimated-empty) product
	}

	// Step 2: the sampling rate, mirrored from Alice's computation.
	heavyVal := math.Pow(o.Phi*tp, 1/o.P)
	beta := math.Min(8*o.BetaC*lnDim(n)*(o.Phi/o.Eps)*(o.Phi/o.Eps)/heavyVal, 1)

	// Step 4: Bob's half of the Lemma 2.5 recovery.
	ts := hhTensorSketch(o, m1, n, m2, beta, t1abs)
	msg3 := comm.NewMessage()
	msg3.Label = "column-compressed B for tensor sketch"
	msg3.PutVarintSlice(ts.ColCompress(b))
	t.Send(comm.BobToAlice, msg3)

	// Step 5 in: keep candidates at or above β·((ϕ−ε/2)·tp)^{1/p}.
	recv4 := t.Recv(comm.AliceToBob)
	keepCutoff := beta * math.Pow((o.Phi-o.Eps/2)*tp, 1/o.P)
	count := int(recv4.Uvarint())
	for s := 0; s < count; s++ {
		i := int(recv4.Uvarint())
		j := int(recv4.Uvarint())
		v := float64(recv4.Varint())
		if math.Abs(v) >= keepCutoff {
			out = append(out, WeightedPair{I: i, J: j, Value: v / beta})
		}
	}
	sortPairs(out)
	return out, nil
}

// hhTensorSketch builds the shared Lemma 2.5 tensor sketch for
// Algorithm 4's step 4: the sparsity bound follows from E‖C^β‖1 ≤
// β·‖|A|·|B|‖1, and both parties derive it from transmitted values.
func hhTensorSketch(o HHOpts, m1, n, m2 int, beta float64, t1abs int64) *sketch.TensorCS {
	sBound := int(math.Ceil(4*beta*float64(t1abs))) + 64
	if cap := m1 * m2; sBound > cap {
		sBound = cap
	}
	shared := rng.New(o.Seed)
	return sketch.NewTensorCS(shared.Derive("hh-matmul"), m1, n, m2, sBound, o.Reps)
}

func sortPairs(ps []WeightedPair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}
