package core

import (
	"math"

	"repro/internal/bitmat"
	"repro/internal/comm"
	"repro/internal/rng"
)

// LinfKappaOpts configures EstimateLinfKappa.
type LinfKappaOpts struct {
	// Kappa is the target approximation factor, in [4, n] per Theorem 4.3.
	Kappa float64
	// AlphaC scales α = AlphaC·ln(n) (the paper's 10⁴·log n, scaled for
	// constant success probability). The universe-sampling rate is
	// q = min(α/κ, 1) and the level threshold is α·n²/κ. Default 4.
	AlphaC float64
	// Seed is the shared public-coin seed.
	Seed uint64
	// DisableUniverseSampling turns off the universe-sampling step — the
	// ablation the paper discusses, which only reaches Õ(n^1.5/√κ).
	DisableUniverseSampling bool
	// Shards splits Bob's row-parallel phases (row-weight precompute,
	// per-level ‖D^ℓ‖1 dot products) into contiguous ranges executed
	// concurrently. Never changes a transcript byte or an output bit;
	// 0 or 1 runs sequentially.
	Shards int
}

func (o *LinfKappaOpts) setDefaults(n int) error {
	if o.Kappa < 1 || o.Kappa > float64(n)+1 {
		return ErrBadKappa
	}
	if o.AlphaC <= 0 {
		o.AlphaC = 4
	}
	return nil
}

// EstimateLinfKappa is Algorithm 3 (Theorem 4.3): a κ-approximation of
// ‖AB‖∞ for Boolean matrices in O(1) rounds and Õ(n^1.5/κ) bits.
//
// It augments Algorithm 2 with a universe-sampling step: Alice keeps each
// item (column of A) with probability q = min(α/κ, 1), shrinking the
// active universe to Õ(n/κ) before the level sampling (now at rates 2^-ℓ,
// threshold α·n²/κ) and the item-wise index exchange. The two-case
// Cauchy–Schwarz argument then gives Õ(n^1.5/κ) total communication —
// without universe sampling the same pipeline only reaches Õ(n^1.5/√κ),
// an ablation the benchmarks measure (EstimateLinfKappaNoUniverse).
//
// If the sampled product D is empty the protocol falls back to reporting
// 1 when C is non-zero and 0 otherwise, which is κ-accurate because E5
// implies all entries of C are below κ/4 in that case. (Bob announces
// the fallback in his level message so a transport-separated Alice stops
// in lockstep — one extra Õ(1)-bit message relative to the paper's
// accounting.)
func EstimateLinfKappa(a, b *bitmat.Matrix, o LinfKappaOpts) (float64, Pair, Cost, error) {
	o.DisableUniverseSampling = false
	return linfKappaPair(a, b, o)
}

// EstimateLinfKappaNoUniverse is the ablation the paper discusses when
// motivating Algorithm 3: the same protocol without the universe-sampling
// step, which only achieves Õ(n^1.5/√κ) communication.
func EstimateLinfKappaNoUniverse(a, b *bitmat.Matrix, o LinfKappaOpts) (float64, Pair, Cost, error) {
	o.DisableUniverseSampling = true
	return linfKappaPair(a, b, o)
}

func linfKappaPair(a, b *bitmat.Matrix, o LinfKappaOpts) (float64, Pair, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, Pair{}, Cost{}, err
	}
	var est float64
	var arg Pair
	cost, err := runPair(
		func(t comm.Transport) error { return AliceLinfKappa(t, a, b.Cols(), o) },
		func(t comm.Transport) (err error) { est, arg, err = BobLinfKappa(t, b, a.Rows(), o); return err },
	)
	if err != nil {
		return 0, Pair{}, cost, err
	}
	return est, arg, cost, nil
}

// AliceLinfKappa drives Alice's side of Algorithm 3: universe sampling
// at rate q = min(α/κ, 1), level sampling of the survivors at rates
// 2^-ℓ, the round-1 message (survivor bitmap, full column sums for the
// fallback, per-level sums over survivors), then her half of the index
// exchange at Bob's level — unless Bob announces the empty-product
// fallback. m2 is Bob's column count (catalog metadata). The estimate
// is Bob's output.
func AliceLinfKappa(t comm.Transport, a *bitmat.Matrix, m2 int, o LinfKappaOpts) (err error) {
	defer recoverDecodeError(&err)
	n := a.Cols()
	if err := o.setDefaults(n); err != nil {
		return err
	}
	alicePriv := rng.New(o.Seed).Derive("alice-private", "linfkappa")

	alpha := o.AlphaC * lnDim(n)
	q := 1.0
	if !o.DisableUniverseSampling {
		q = math.Min(alpha/o.Kappa, 1)
	}

	// Universe sampling: Alice keeps each item with probability q.
	keep := make([]bool, n)
	var active []int
	for k := 0; k < n; k++ {
		if q >= 1 || alicePriv.Bernoulli(q) {
			keep[k] = true
			active = append(active, k)
		}
	}

	// Level sampling of the surviving entries at rates 2^-ℓ.
	var weightKept int
	for _, k := range active {
		weightKept += a.ColWeight(k)
	}
	maxLevel := 0
	if weightKept > 1 {
		maxLevel = int(math.Ceil(math.Log2(float64(weightKept)))) + 1
	}
	colsAll := levelColumns(a, alicePriv, 2, maxLevel)
	cols := make([][]itemEntry, n)
	for _, k := range active {
		cols[k] = colsAll[k]
	}

	// Round 1 (Alice→Bob): survivor bitmap, full column sums of A (for
	// the ‖C‖1 fallback), and per-level column sums over survivors.
	msg1 := comm.NewMessage()
	msg1.Label = "survivor bitmap and per-level column sums"
	msg1.PutBitmap(keep)
	for k := 0; k < n; k++ {
		msg1.PutUvarint(uint64(a.ColWeight(k)))
	}
	msg1.PutUvarint(uint64(maxLevel))
	colSums := make([][]int, maxLevel+1)
	for ℓ := 0; ℓ <= maxLevel; ℓ++ {
		colSums[ℓ] = make([]int, n)
	}
	for _, k := range active {
		for _, e := range cols[k] {
			for ℓ := 0; ℓ <= int(e.level); ℓ++ {
				colSums[ℓ][k]++
			}
		}
	}
	for ℓ := 0; ℓ <= maxLevel; ℓ++ {
		for _, k := range active {
			msg1.PutUvarint(uint64(colSums[ℓ][k]))
		}
	}
	t.Send(comm.AliceToBob, msg1)

	// Round 2 (Bob→Alice): the selected level, or maxLevel+1 as the
	// empty-product fallback signal.
	lStar := int(t.Recv(comm.BobToAlice).Uvarint())
	if lStar > maxLevel {
		return nil // fallback: Bob answers from ‖C‖1 alone
	}
	aliceExchangeTurn(t, cols, lStar, colSums[lStar], active, a.Rows(), m2)
	return nil
}

// BobLinfKappa drives Bob's side of Algorithm 3: he computes ‖D^ℓ‖1 per
// level from Alice's survivor sums (Remark 2 per level), selects the
// first level below the α·m1·m2/κ threshold, runs his half of the index
// exchange, and rescales by 1/(q·2^-ℓ*). If the sampled product is
// empty he announces the fallback level and reports 1 iff C ≠ 0. m1 is
// Alice's row count (catalog metadata).
func BobLinfKappa(t comm.Transport, b *bitmat.Matrix, m1 int, o LinfKappaOpts) (est float64, arg Pair, err error) {
	st, err := NewBobLinfKappaState(b, o)
	if err != nil {
		return 0, Pair{}, err
	}
	return st.Serve(t, m1)
}

// BobLinfKappaState is the matrix-dependent phase of Bob's side of
// Algorithm 3: B with its per-row weights v_k precomputed. Immutable
// after construction; safe for concurrent Serve calls.
type BobLinfKappaState struct {
	b    *bitmat.Matrix
	vk   []int64 // RowWeight per row of B
	opts LinfKappaOpts
}

// NewBobLinfKappaState validates the options and precomputes B's row
// weights over sharded row ranges.
func NewBobLinfKappaState(b *bitmat.Matrix, o LinfKappaOpts) (*BobLinfKappaState, error) {
	if err := o.setDefaults(b.Rows()); err != nil {
		return nil, err
	}
	return &BobLinfKappaState{b: b, vk: rowWeightsSharded(b, o.Shards), opts: o}, nil
}

// Bytes reports the memory retained by the precomputation.
func (s *BobLinfKappaState) Bytes() int64 { return int64(8 * len(s.vk)) }

// Serve runs the per-query phase of Bob's side of Algorithm 3 over t.
// m1 is Alice's row count for this query.
func (s *BobLinfKappaState) Serve(t comm.Transport, m1 int) (est float64, arg Pair, err error) {
	defer recoverDecodeError(&err)
	o := s.opts
	b := s.b
	n := b.Rows()
	m2 := b.Cols()
	alpha := o.AlphaC * lnDim(n)
	q := 1.0
	if !o.DisableUniverseSampling {
		q = math.Min(alpha/o.Kappa, 1)
	}

	// Round 1 in: parse, compute ‖D^ℓ‖1 per level, decide.
	recv1 := t.Recv(comm.AliceToBob)
	keepBob := recv1.Bitmap()
	fullColSums := make([]int64, n)
	for k := 0; k < n; k++ {
		fullColSums[k] = int64(recv1.Uvarint())
	}
	gotMax := int(recv1.Uvarint())
	var activeBob []int
	for k := 0; k < n; k++ {
		if keepBob[k] {
			activeBob = append(activeBob, k)
		}
	}
	bobColSums := make([][]int, gotMax+1)
	for ℓ := 0; ℓ <= gotMax; ℓ++ {
		bobColSums[ℓ] = make([]int, n)
		for _, k := range activeBob {
			bobColSums[ℓ][k] = int(recv1.Uvarint())
		}
	}
	// ‖C‖1 and ‖D‖1 shard with exact int64 partials over item ranges.
	l1C := sumInt64Shards(n, o.Shards, func(k int) int64 {
		return fullColSums[k] * s.vk[k]
	})
	l1D := sumInt64Shards(n, o.Shards, func(k int) int64 {
		if !keepBob[k] {
			return 0
		}
		return int64(bobColSums[0][k]) * s.vk[k]
	})
	if l1D == 0 {
		// ‖D‖1 = 0: announce the fallback and output 1 iff C is non-zero
		// (κ-accurate by E5).
		msgL := comm.NewMessage()
		msgL.Label = "empty-product fallback"
		msgL.PutUvarint(uint64(gotMax) + 1)
		t.Send(comm.BobToAlice, msgL)
		if l1C == 0 {
			return 0, Pair{}, nil
		}
		return 1, Pair{}, nil
	}
	threshold := alpha * float64(m1) * float64(m2) / o.Kappa
	lStar := gotMax
	for ℓ := 0; ℓ <= gotMax; ℓ++ {
		colSums := bobColSums[ℓ]
		l1 := sumInt64Shards(len(activeBob), o.Shards, func(t int) int64 {
			k := activeBob[t]
			return int64(colSums[k]) * s.vk[k]
		})
		if float64(l1) <= threshold {
			lStar = ℓ
			break
		}
	}

	// Round 2 begins (Bob→Alice): ℓ*, then the index exchange.
	msgL := comm.NewMessage()
	msgL.Label = "selected level ℓ*"
	msgL.PutUvarint(uint64(lStar))
	t.Send(comm.BobToAlice, msgL)

	vkSent := bobExchangeSend(t, b, bobColSums[lStar], activeBob)
	maxVal, arg, _ := bobExchangeFinish(t, b, vkSent, bobColSums[lStar], activeBob, m1)
	pl := math.Pow(2, -float64(lStar))
	return float64(maxVal) / (q * pl), arg, nil
}
