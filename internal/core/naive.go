package core

import (
	"repro/internal/bitmat"
	"repro/internal/comm"
	"repro/internal/intmat"
)

// ExactStats are the exact statistics of C = A·B computed by the naive
// baselines (and by tests as ground truth).
type ExactStats struct {
	// L0 is the number of non-zero entries of C.
	L0 int64
	// L1 is the entrywise 1-norm of C.
	L1 int64
	// Linf is the maximum absolute entry of C.
	Linf int64
	// ArgMax locates an entry attaining Linf.
	ArgMax Pair
}

// NaiveBinary is the trivial baseline the paper's algorithms are measured
// against: Alice ships her entire Boolean matrix as bitmaps (m1·n bits)
// and Bob computes C = A·B and all statistics exactly. One round.
func NaiveBinary(a, b *bitmat.Matrix) (ExactStats, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return ExactStats{}, Cost{}, err
	}
	conn := comm.NewConn()
	msg := comm.NewMessage()
	msg.PutUvarint(uint64(a.Rows()))
	for i := 0; i < a.Rows(); i++ {
		msg.PutWordBitmap(a.Row(i), a.Cols())
	}
	recv := conn.Send(comm.AliceToBob, msg)

	rows := int(recv.Uvarint())
	got := bitmat.New(rows, a.Cols())
	for i := 0; i < rows; i++ {
		words, nbits := recv.WordBitmap()
		for j := 0; j < nbits; j++ {
			if words[j/64]&(1<<uint(j%64)) != 0 {
				got.Set(i, j, true)
			}
		}
	}
	c := got.Mul(b)
	return exactStatsOf(c), costOf(conn), nil
}

// NaiveInt ships Alice's integer matrix sparsely and has Bob compute all
// statistics of C = A·B exactly. One round.
func NaiveInt(a, b *intmat.Dense) (ExactStats, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return ExactStats{}, Cost{}, err
	}
	conn := comm.NewConn()
	msg := comm.NewMessage()
	msg.PutSparse(intmat.FromDense(a))
	recv := conn.Send(comm.AliceToBob, msg)
	got := recv.Sparse().ToDense()
	c := got.Mul(b)
	return exactStatsOf(c), costOf(conn), nil
}

func exactStatsOf(c *intmat.Dense) ExactStats {
	linf, i, j := c.Linf()
	return ExactStats{
		L0:     int64(c.L0()),
		L1:     c.L1(),
		Linf:   linf,
		ArgMax: Pair{I: i, J: j},
	}
}
