package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the row-shard parallel execution layer. The paper's
// protocols are embarrassingly row-parallel on Bob's side: his per-row
// sketches, row sums, and per-row contributions to a served query are
// independent and only merge at the end. Every Bob state precompute and
// per-query Serve therefore splits its row scans into contiguous shard
// ranges executed concurrently, with a deterministic merge step that
// keeps transcripts (and outputs) byte-identical to the sequential
// drivers:
//
//   - the parallel sections consume no randomness — shared sketch
//     families are drawn once up front, and every private coin flip
//     happens in the sequential merge step, in the same order as the
//     sequential driver, so both parties' RNG streams are untouched by
//     the shard count;
//   - per-shard outputs land in disjoint slots (a buffer per shard, or
//     disjoint index ranges of one slice) and are merged in shard
//     order, so encoded payloads concatenate to the sequential bytes;
//   - floating-point reductions are re-run over the merged slots in
//     index order, reproducing the sequential driver's summation order
//     exactly; integer reductions are exact and order-free, so they may
//     sum per-shard partials directly.
//
// Shard tasks from all concurrent queries share one process-wide pool
// bounded by GOMAXPROCS, so a heavily loaded server cannot oversubscribe
// the CPUs no matter how many queries shard at once.

// maxShardSlots caps how many distinct shard indices the per-shard busy
// counters track; shard counts beyond it still run, their time folding
// into the last slot.
const maxShardSlots = 64

// minShardRows is the smallest row range worth a goroutine: below it a
// shard's synchronization overhead exceeds its work, so the split is
// coarsened.
const minShardRows = 8

// minShardCheapElems gates the parallelization of cheap reductions —
// loops doing O(1) work per row, like the int64 dot products of the
// level-selection and scale steps. Goroutine spawn plus semaphore
// traffic costs a few microseconds; a multiply-add costs a nanosecond,
// so below this row count the sequential loop is strictly faster and
// the parallel path would slow the serve down.
const minShardCheapElems = 1 << 15

var (
	// shardSem bounds concurrently executing shard tasks process-wide.
	shardSem = make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))

	shardJobs  atomic.Int64 // sharded sections executed in parallel
	shardTasks atomic.Int64 // shard tasks executed (parallel sections only)
	shardBusy  [maxShardSlots]atomic.Int64
)

// ShardInfo is a snapshot of the process-wide row-shard pool counters:
// how many sharded sections ran, how many shard tasks they spawned, and
// the cumulative busy time per shard index (shard 0 first). Sections
// that degenerate to a single range run inline and are not counted.
type ShardInfo struct {
	// Jobs counts sharded sections that ran in parallel.
	Jobs int64
	// Tasks counts shard tasks executed by the pool.
	Tasks int64
	// Busy is the cumulative busy time per shard index.
	Busy []time.Duration
}

// ShardCounters snapshots the row-shard pool counters.
func ShardCounters() ShardInfo {
	info := ShardInfo{Jobs: shardJobs.Load(), Tasks: shardTasks.Load()}
	top := 0
	var busy [maxShardSlots]time.Duration
	for i := range busy {
		busy[i] = time.Duration(shardBusy[i].Load())
		if busy[i] > 0 {
			top = i + 1
		}
	}
	info.Busy = append(info.Busy, busy[:top]...)
	return info
}

// shardRanges splits n rows into at most shards contiguous [lo, hi)
// ranges of near-equal size, never smaller than minShardRows (except
// when n itself is smaller). shards ≤ 1 or tiny n yield one range.
func shardRanges(n, shards int) [][2]int {
	if shards > n/minShardRows {
		shards = n / minShardRows
	}
	if shards <= 1 || n <= 0 {
		return [][2]int{{0, n}}
	}
	ranges := make([][2]int, 0, shards)
	lo := 0
	for s := 0; s < shards; s++ {
		hi := lo + (n-lo)/(shards-s)
		ranges = append(ranges, [2]int{lo, hi})
		lo = hi
	}
	return ranges
}

// runShards executes fn over the shard ranges of n rows: fn(shard, lo,
// hi) once per range, concurrently on the bounded pool when there is
// more than one range, inline otherwise. fn must write only to
// shard-private or disjoint-slot state; the caller performs the
// deterministic merge after runShards returns.
func runShards(n, shards int, fn func(shard, lo, hi int)) {
	ranges := shardRanges(n, shards)
	if len(ranges) == 1 {
		fn(0, ranges[0][0], ranges[0][1])
		return
	}
	shardJobs.Add(1)
	var wg sync.WaitGroup
	for s, r := range ranges {
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			shardSem <- struct{}{}
			defer func() { <-shardSem }()
			start := time.Now() //mp:nondeterministic-ok busy-time telemetry: feeds ShardCounters, never a transcript
			fn(s, lo, hi)
			slot := s
			if slot >= maxShardSlots {
				slot = maxShardSlots - 1
			}
			shardBusy[slot].Add(int64(time.Since(start))) //mp:nondeterministic-ok busy-time telemetry, see above
			shardTasks.Add(1)
		}(s, r[0], r[1])
	}
	wg.Wait()
}

// sumInt64Shards computes Σ_{k=lo}^{hi-1} term(k) with per-shard int64
// partials. Integer addition is exact and associative, so the merged
// total is identical to the sequential left-to-right sum for any shard
// split — the workhorse of the sharded Serve paths' dot products.
// Below minShardCheapElems the sum runs sequentially: term is O(1), so
// small dot products would pay more in pool synchronization than they
// save in parallelism.
func sumInt64Shards(n, shards int, term func(k int) int64) int64 {
	if n < minShardCheapElems {
		shards = 1
	}
	ranges := shardRanges(n, shards)
	if len(ranges) == 1 {
		var total int64
		for k := ranges[0][0]; k < ranges[0][1]; k++ {
			total += term(k)
		}
		return total
	}
	partial := make([]int64, len(ranges))
	runShards(n, shards, func(s, lo, hi int) {
		var sum int64
		for k := lo; k < hi; k++ {
			sum += term(k)
		}
		partial[s] = sum
	})
	var total int64
	for _, p := range partial {
		total += p
	}
	return total
}
