package core

import (
	"math"

	"repro/internal/comm"
	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
	"repro/internal/sketch"
)

// L0SampleOpts configures SampleL0.
type L0SampleOpts struct {
	// Eps controls the uniformity of the sample: each non-zero entry of C
	// is returned with probability (1±ε)/‖C‖0. It drives the per-column
	// ℓ0 sketch size (Θ(1/ε²) words). Required, in (0, 1].
	Eps float64
	// SamplerReps is the number of ℓ0-sampler repetitions per column
	// (failure probability decays exponentially). Default 4.
	SamplerReps int
	// SketchC scales the per-column ℓ0 sketch: buckets = SketchC/ε².
	// Default 8.
	SketchC float64
	// Seed is the shared public-coin seed.
	Seed uint64
	// Shards splits the row-parallel phases (indexing B by column, the
	// per-column sketch combines of a served query) into contiguous
	// ranges executed concurrently. Never changes a transcript byte or an
	// output bit; 0 or 1 runs sequentially.
	Shards int
}

func (o *L0SampleOpts) setDefaults() error {
	if o.Eps <= 0 || o.Eps > 1 {
		return ErrBadEps
	}
	if o.SamplerReps <= 0 {
		o.SamplerReps = 4
	}
	if o.SketchC <= 0 {
		o.SketchC = 8
	}
	return nil
}

// SampleL0 is Theorem 3.2: a one-round protocol that samples a uniformly
// random non-zero entry of C = A·B (each entry with probability
// (1±ε)/‖C‖0) using Õ(n/ε²) bits.
//
// Alice ships, for every item k, an ℓ0 sketch and an ℓ0-sampler sketch of
// column A_{*,k}; since both are linear, Bob assembles per-column-of-C
// sketches sk(C_{*,j}) = Σ_k B[k][j]·sk(A_{*,k}), samples a column j
// proportionally to its estimated ℓ0 norm, and decodes the ℓ0-sampler of
// that column to get the row index. The returned value is the exact
// C[i][j] (a bonus of the exact 1-sparse recovery in the sampler).
func SampleL0(a, b *intmat.Dense, o L0SampleOpts) (pair Pair, value int64, cost Cost, err error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return Pair{}, 0, Cost{}, err
	}
	cost, err = runPair(
		func(t comm.Transport) error { return AliceL0Sample(t, a, o) },
		func(t comm.Transport) (err error) { pair, value, err = BobL0Sample(t, b, a.Rows(), o); return err },
	)
	if err != nil {
		return Pair{}, 0, cost, err
	}
	return pair, value, cost, nil
}

// l0SampleSketches derives the shared per-column sketch pair of
// Theorem 3.2 for column dimension m1 — the common construction both
// party drivers must agree on.
func l0SampleSketches(o L0SampleOpts, m1 int) (*sketch.L0, *sketch.L0Sampler) {
	shared := rng.New(o.Seed)
	buckets := int(math.Ceil(o.SketchC / (o.Eps * o.Eps)))
	if buckets < 8 {
		buckets = 8
	}
	l0 := sketch.NewL0(shared.Derive("l0sample", "norm"), m1, buckets)
	sampler := sketch.NewL0Sampler(shared.Derive("l0sample", "sampler"), m1, o.SamplerReps)
	return l0, sampler
}

// AliceL0Sample drives Alice's side of Theorem 3.2: one message of
// per-column ℓ0 sketches and ℓ0-sampler sketches of A. The sample is
// Bob's output.
func AliceL0Sample(t comm.Transport, a *intmat.Dense, o L0SampleOpts) (err error) {
	defer recoverDecodeError(&err)
	if err := o.setDefaults(); err != nil {
		return err
	}
	m1 := a.Rows()
	n := a.Cols()
	l0, sampler := l0SampleSketches(o, m1)

	// Round 1 (Alice→Bob): sketches of every column of A.
	msg := comm.NewMessage()
	msg.Label = "per-column ℓ0 sketches and samplers of A"
	col := make([]int64, m1)
	for k := 0; k < n; k++ {
		for i := 0; i < m1; i++ {
			col[i] = a.Get(i, k)
		}
		msg.PutUint64Slice(l0.Apply(col))
		msg.PutUint64Slice(sampler.Apply(col))
	}
	t.Send(comm.AliceToBob, msg)
	return nil
}

// BobL0Sample drives Bob's side of Theorem 3.2: he assembles
// per-column-of-C sketches from Alice's message (both sketch families
// are linear), samples a column proportionally to its estimated ℓ0
// norm, and decodes that column's ℓ0-sampler. m1 is Alice's row count —
// catalog metadata fixing the shared sketch dimension; it costs no
// communication.
func BobL0Sample(t comm.Transport, b *intmat.Dense, m1 int, o L0SampleOpts) (pair Pair, value int64, err error) {
	st, err := NewBobL0SampleState(b, o)
	if err != nil {
		return Pair{}, 0, err
	}
	return st.Serve(t, m1)
}

// colEntry is one non-zero of a served matrix column: its row index and
// value.
type colEntry struct {
	k int
	v int64
}

// BobL0SampleState is the matrix-dependent phase of Bob's side of
// Theorem 3.2: a column-sparse form of B, so each served query combines
// Alice's sketches only over B's non-zeros instead of probing every
// (row, column) cell. The shared sketches themselves depend on Alice's
// row count m1 — per-query catalog metadata — so they are derived in
// Serve. Immutable after construction; safe for concurrent Serve calls.
type BobL0SampleState struct {
	rows, cols int
	colNZ      [][]colEntry // per column j, the non-zeros of B_{*,j}
	opts       L0SampleOpts // defaults applied
}

// NewBobL0SampleState validates the options and indexes B by column.
// The row scan is sharded: each shard indexes its own contiguous row
// range, and the per-column lists are concatenated in shard order —
// shard ranges are ascending, so every column's entries stay in
// increasing row order, exactly as the sequential scan emits them.
func NewBobL0SampleState(b *intmat.Dense, o L0SampleOpts) (*BobL0SampleState, error) {
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	s := &BobL0SampleState{rows: b.Rows(), cols: b.Cols(), colNZ: make([][]colEntry, b.Cols()), opts: o}
	parts := make([][][]colEntry, len(shardRanges(b.Rows(), o.Shards)))
	runShards(b.Rows(), o.Shards, func(sh, lo, hi int) {
		local := make([][]colEntry, b.Cols())
		for k := lo; k < hi; k++ {
			for j, v := range b.Row(k) {
				if v != 0 {
					local[j] = append(local[j], colEntry{k: k, v: v})
				}
			}
		}
		parts[sh] = local
	})
	for _, local := range parts {
		for j, es := range local {
			s.colNZ[j] = append(s.colNZ[j], es...)
		}
	}
	return s, nil
}

// Bytes reports the memory retained by the precomputation.
func (s *BobL0SampleState) Bytes() int64 {
	var n int64
	for _, col := range s.colNZ {
		n += int64(len(col)) * 16
	}
	return n
}

// Serve runs the per-query phase of Bob's side of Theorem 3.2 over t.
// m1 is Alice's row count for this query.
func (s *BobL0SampleState) Serve(t comm.Transport, m1 int) (pair Pair, value int64, err error) {
	defer recoverDecodeError(&err)
	o := s.opts
	n := s.rows
	m2 := s.cols
	l0, sampler := l0SampleSketches(o, m1)

	recv := t.Recv(comm.AliceToBob)
	normSk := make([][]field.Elem, n)
	sampSk := make([][]field.Elem, n)
	for k := 0; k < n; k++ {
		normSk[k] = recv.Uint64Slice()
		sampSk[k] = recv.Uint64Slice()
	}

	// Per-column ℓ0 estimates of C. Columns of C are independent, so the
	// sketch combines shard over contiguous column ranges (each shard
	// owns a private accumulator and writes disjoint colEst slots); the
	// total is then re-summed in column order, matching the sequential
	// float summation exactly.
	colEst := make([]float64, m2)
	runShards(m2, s.opts.Shards, func(_, lo, hi int) {
		accNorm := make([]field.Elem, l0.Dim())
		for j := lo; j < hi; j++ {
			if len(s.colNZ[j]) == 0 {
				continue
			}
			for i := range accNorm {
				accNorm[i] = 0
			}
			for _, e := range s.colNZ[j] {
				sketch.AxpyField(accNorm, e.v, normSk[e.k])
			}
			if e := l0.Estimate(accNorm); e > 0 {
				colEst[j] = e
			}
		}
	})
	total := 0.0
	for j := 0; j < m2; j++ {
		total += colEst[j]
	}
	if total == 0 {
		return Pair{}, 0, ErrSampleFailed
	}

	// Sample a column proportionally to its estimated ℓ0 norm, then
	// decode that column's ℓ0-sampler.
	bobPriv := rng.New(o.Seed).Derive("bob-private", "l0sample")
	target := bobPriv.Float64() * total
	j := 0
	acc := 0.0
	for ; j < m2; j++ {
		acc += colEst[j]
		if acc > target {
			break
		}
	}
	if j >= m2 {
		j = m2 - 1
	}
	accSamp := make([]field.Elem, sampler.Dim())
	for _, e := range s.colNZ[j] {
		sketch.AxpyField(accSamp, e.v, sampSk[e.k])
	}
	i, v, ok := sampler.Decode(accSamp)
	if !ok {
		return Pair{}, 0, ErrSampleFailed
	}
	return Pair{I: i, J: j}, v, nil
}
