package core

import (
	"io"
	"math"
	"strconv"

	"repro/internal/comm"
	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// Two-round transport-separable endpoints for Algorithm 1 (Theorem 3.1).
// RunBobLp and RunAliceLp each hold one party's matrix and drive the full
// protocol over an io.ReadWriter (socket, pipe):
//
//	round 1: Bob → Alice   per-row ℓp sketches of B
//	round 2: Alice → Bob   sampled rows of A with weights
//	output:  Bob           the ‖AB‖p^p estimate
//
// Both functions must be called with identical options; they are the
// byte-exact counterparts of EstimateLp (the in-process reference that
// also accounts cost), which the tests verify.

// RunBobLp drives Bob's side of Algorithm 1 over conn and returns the
// protocol output (the estimate lives at Bob, as in the paper).
func RunBobLp(conn io.ReadWriter, b *intmat.Dense, p float64, o LpOpts) (est float64, err error) {
	defer recoverDecodeError(&err)
	if p < 0 || p > 2 {
		return 0, ErrBadP
	}
	if err := o.setDefaults(); err != nil {
		return 0, err
	}
	sketchers := lpSketchFamilies(o, b.Cols(), p)

	// Round 1: sketches out.
	msg1 := comm.NewMessage()
	msg1.PutUvarint(uint64(b.Cols()))
	for _, rs := range sketchers {
		rs.encodeRows(msg1, b)
	}
	if _, err := writeFrame(conn, msg1); err != nil {
		return 0, err
	}

	// Round 2: sampled rows in; exact norms out of them.
	recv, err := readFrame(conn)
	if err != nil {
		return 0, err
	}
	perRep := make([]float64, o.Reps)
	for rep := range perRep {
		count := int(recv.Uvarint())
		var est float64
		for s := 0; s < count; s++ {
			_ = recv.Uvarint()
			w := recv.Float64()
			cols, vals := getSparseRow(recv)
			y := mulRowSparse(cols, vals, b)
			est += w * rowLpPow(y, p)
		}
		perRep[rep] = est
	}
	return median(perRep), nil
}

// RunAliceLp drives Alice's side of Algorithm 1 over conn. Alice learns
// nothing beyond the transcript; the estimate is Bob's output.
func RunAliceLp(conn io.ReadWriter, a *intmat.Dense, p float64, o LpOpts) (err error) {
	defer recoverDecodeError(&err)
	if p < 0 || p > 2 {
		return ErrBadP
	}
	if err := o.setDefaults(); err != nil {
		return err
	}
	recv, err := readFrame(conn)
	if err != nil {
		return err
	}
	m2 := int(recv.Uvarint())
	if a.Cols() <= 0 {
		return ErrDimensionMismatch
	}
	sketchers := lpSketchFamilies(o, m2, p)

	beta := math.Sqrt(o.Eps)
	rho := o.RhoC / o.Eps
	alicePriv := rng.New(o.Seed).Derive("alice-private", "lp")
	rowCols := make([][]int, a.Rows())
	rowVals := make([][]int64, a.Rows())
	for i := range rowCols {
		rowCols[i], rowVals[i] = sparseRow(a, i)
	}

	msg2 := comm.NewMessage()
	for _, rs := range sketchers {
		var fieldSk [][]field.Elem
		var floatSk [][]float64
		if rs.l0 != nil {
			fieldSk = make([][]field.Elem, a.Cols())
			for k := range fieldSk {
				fieldSk[k] = recv.Uint64Slice()
			}
		} else {
			floatSk = make([][]float64, a.Cols())
			for k := range floatSk {
				floatSk[k] = recv.Float64Slice()
			}
		}
		picks := sampleRowsByNorm(rs, rowCols, rowVals, fieldSk, floatSk, beta, rho, alicePriv)
		msg2.PutUvarint(uint64(len(picks)))
		for _, s := range picks {
			msg2.PutUvarint(uint64(s.i))
			msg2.PutFloat64(s.weight)
			putSparseRow(msg2, rowCols[s.i], rowVals[s.i])
		}
	}
	_, err = writeFrame(conn, msg2)
	return err
}

// lpSketchFamilies derives the per-repetition shared sketch families for
// Algorithm 1 with the given options — the common construction both
// endpoints (and the in-process EstimateLp) must agree on.
func lpSketchFamilies(o LpOpts, dim int, p float64) []rowSketcher {
	beta := math.Sqrt(o.Eps)
	sizeWords := int(math.Ceil(o.SketchC / (beta * beta)))
	if sizeWords < 4 {
		sizeWords = 4
	}
	shared := rng.New(o.Seed)
	sketchers := make([]rowSketcher, o.Reps)
	for rep := range sketchers {
		sketchers[rep] = newRowSketcher(shared.Derive("lp", strconv.Itoa(rep)), dim, p, sizeWords)
	}
	return sketchers
}
