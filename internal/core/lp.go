package core

import (
	"math"
	"strconv"

	"repro/internal/comm"
	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
	"repro/internal/sketch"
)

// LpOpts configures EstimateLp and OneRoundLp.
type LpOpts struct {
	// Eps is the target multiplicative accuracy: the estimate is within a
	// (1 ± Eps) factor of ‖AB‖p^p with constant probability per
	// repetition, boosted by the median over Reps. Required, in (0, 1].
	Eps float64

	// Reps is the number of independent repetitions whose median is
	// returned (the paper's "standard median trick"). All repetitions run
	// inside the same two rounds. Default 5.
	Reps int

	// RhoC scales the row-sampling budget: ρ = RhoC/Eps expected sampled
	// rows per repetition. The paper uses 10⁴ (for 1−1/n¹⁰ success);
	// the default 72 targets the constant per-repetition success the
	// median trick assumes (variance ≤ 18·Eps²/RhoC · ‖C‖p^{2p}).
	RhoC float64

	// SketchC scales the per-row sketch: size = SketchC/β² words with
	// β = √Eps (the paper's O(1/β²) with its constant folded in).
	// Default 8.
	SketchC float64

	// Seed is the shared public-coin seed.
	Seed uint64

	// Shards splits the row-parallel phases (Bob's per-row sketching and
	// sampled-row evaluation, Alice's row-norm estimation) into this many
	// contiguous row ranges executed concurrently on the bounded shard
	// pool. It never changes a transcript byte or an output bit — the
	// parallel sections are randomness-free and merge deterministically
	// in shard order — so any value is safe. 0 or 1 runs sequentially.
	Shards int
}

func (o *LpOpts) setDefaults() error {
	if o.Eps <= 0 || o.Eps > 1 {
		return ErrBadEps
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.RhoC <= 0 {
		o.RhoC = 72
	}
	if o.SketchC <= 0 {
		o.SketchC = 8
	}
	return nil
}

// lpSketchFamilies derives the per-repetition shared sketch families for
// Algorithm 1 with the given options — the common construction both
// party drivers (and therefore the in-process EstimateLp) must agree on.
func lpSketchFamilies(o LpOpts, dim int, p float64) []rowSketcher {
	beta := math.Sqrt(o.Eps)
	sizeWords := int(math.Ceil(o.SketchC / (beta * beta)))
	if sizeWords < 4 {
		sizeWords = 4
	}
	shared := rng.New(o.Seed)
	sketchers := make([]rowSketcher, o.Reps)
	for rep := range sketchers {
		sketchers[rep] = newRowSketcher(shared.Derive("lp", strconv.Itoa(rep)), dim, p, sizeWords)
	}
	return sketchers
}

// rowSketcher abstracts the two sketch families Algorithm 1 uses for its
// first-round row-norm estimates: field sketches for p = 0 and float
// sketches for p ∈ (0, 2]. Both are linear, which is what lets Alice
// assemble sketches of rows of C = A·B from Bob's sketches of rows of B.
type rowSketcher struct {
	p  float64
	l0 *sketch.L0
	fl sketch.FloatSketch
}

// newRowSketcher draws the shared sketch for dimension-dim vectors with
// (1+β) accuracy, β² = 1/sizeWords.
func newRowSketcher(r *rng.RNG, dim int, p float64, sizeWords int) rowSketcher {
	switch {
	case p == 0:
		return rowSketcher{p: p, l0: sketch.NewL0(r, dim, sizeWords)}
	case p == 2:
		cols := (sizeWords + 4) / 5
		if cols < 2 {
			cols = 2
		}
		return rowSketcher{p: p, fl: sketch.NewAMS(r, dim, 5, cols)}
	default:
		if sizeWords%2 == 0 {
			sizeWords++ // odd count sharpens the median estimator
		}
		return rowSketcher{p: p, fl: sketch.NewStable(r, dim, p, sizeWords)}
	}
}

// encodeRows sketches every row of b and appends the sketches to msg.
func (rs rowSketcher) encodeRows(msg *comm.Message, b *intmat.Dense) {
	rs.encodeRowRange(msg, b, 0, b.Rows())
}

// encodeRowRange sketches rows [lo, hi) of b and appends the sketches
// to msg. Each row's encoding is self-delimiting, so the shard-parallel
// precompute concatenates per-range buffers in range order to reproduce
// the sequential encodeRows bytes exactly.
func (rs rowSketcher) encodeRowRange(msg *comm.Message, b *intmat.Dense, lo, hi int) {
	for k := lo; k < hi; k++ {
		if rs.l0 != nil {
			msg.PutUint64Slice(rs.l0.Apply(b.Row(k)))
		} else {
			msg.PutFloat64Slice(rs.fl.Apply(b.Row(k)))
		}
	}
}

// decodeRows reads back n row sketches from msg.
func (rs rowSketcher) decodeRows(msg *comm.Message, n int) (fieldSk [][]field.Elem, floatSk [][]float64) {
	if rs.l0 != nil {
		fieldSk = make([][]field.Elem, n)
		for k := range fieldSk {
			fieldSk[k] = msg.Uint64Slice()
		}
		return fieldSk, nil
	}
	floatSk = make([][]float64, n)
	for k := range floatSk {
		floatSk[k] = msg.Float64Slice()
	}
	return nil, floatSk
}

// estimateRow combines the sketches of rows of B indexed by the sparse
// row (cols, vals) of A and returns the ‖·‖p^p estimate for that row of C.
func (rs rowSketcher) estimateRow(cols []int, vals []int64, fieldSk [][]field.Elem, floatSk [][]float64) float64 {
	return rs.estimateRowWith(newRowScratch(rs), cols, vals, fieldSk, floatSk)
}

// rowScratch is the reusable accumulator for estimateRowWith: one row
// of A is estimated per call, thousands per query, so the hot serving
// path hoists the buffer instead of allocating per row.
type rowScratch struct {
	fieldAcc []field.Elem
	floatAcc []float64
}

func newRowScratch(rs rowSketcher) *rowScratch {
	if rs.l0 != nil {
		return &rowScratch{fieldAcc: make([]field.Elem, rs.l0.Dim())}
	}
	return &rowScratch{floatAcc: make([]float64, rs.fl.Dim())}
}

// estimateRowWith is estimateRow against a caller-owned scratch buffer.
func (rs rowSketcher) estimateRowWith(scratch *rowScratch, cols []int, vals []int64, fieldSk [][]field.Elem, floatSk [][]float64) float64 {
	if rs.l0 != nil {
		acc := scratch.fieldAcc
		for i := range acc {
			acc[i] = 0
		}
		for t, k := range cols {
			sketch.AxpyField(acc, vals[t], fieldSk[k])
		}
		return rs.l0.Estimate(acc)
	}
	acc := scratch.floatAcc
	for i := range acc {
		acc[i] = 0
	}
	for t, k := range cols {
		sketch.AxpyFloat(acc, float64(vals[t]), floatSk[k])
	}
	return rs.fl.EstimatePow(acc)
}

// sparseRow extracts the non-zero (cols, vals) of row i of a.
func sparseRow(a *intmat.Dense, i int) (cols []int, vals []int64) {
	row := a.Row(i)
	for j, v := range row {
		if v != 0 {
			cols = append(cols, j)
			vals = append(vals, v)
		}
	}
	return cols, vals
}

// putSparseRow appends a sparse row (delta-coded columns, varint values).
func putSparseRow(msg *comm.Message, cols []int, vals []int64) {
	msg.PutUvarint(uint64(len(cols)))
	prev := -1
	for t, c := range cols {
		msg.PutUvarint(uint64(c - prev))
		prev = c
		msg.PutVarint(vals[t])
	}
}

// getSparseRow reads a row written by putSparseRow.
func getSparseRow(msg *comm.Message) (cols []int, vals []int64) {
	nnz := int(msg.Uvarint())
	cols = make([]int, nnz)
	vals = make([]int64, nnz)
	prev := -1
	for t := 0; t < nnz; t++ {
		prev += int(msg.Uvarint())
		cols[t] = prev
		vals[t] = msg.Varint()
	}
	return cols, vals
}

// EstimateLp is Algorithm 1 (Theorem 3.1): a two-round protocol that
// approximates ‖AB‖p^p, p ∈ [0, 2], within a (1±ε) factor using Õ(n/ε)
// bits of communication.
//
// Round 1 (Bob→Alice): Bob ships a (1+β)-accurate ℓp sketch of every row
// of B, β = √ε — size Õ(1/β²) = Õ(1/ε) per row. Alice combines them into
// sketches of rows of C and estimates every row norm coarsely.
// Round 2 (Alice→Bob): Alice partitions rows into (1+β)-geometric groups
// by estimated norm, samples ~ρ = Θ(1/ε) rows with probability
// proportional to each group's share, and ships the sampled rows of A
// with their inverse-probability weights. Bob computes the sampled rows
// of C exactly and returns the weighted (unbiased, low-variance) sum.
//
// Setting β = ε instead would make round 1 alone a (1±ε) estimate — that
// is exactly OneRoundLp, the Õ(n/ε²) protocol of [16]; the √ε split
// between sketching and sampling is the paper's improvement.
func EstimateLp(a, b *intmat.Dense, p float64, o LpOpts) (float64, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, Cost{}, err
	}
	var est float64
	cost, err := runPair(
		func(t comm.Transport) error { return AliceLp(t, a, b.Cols(), p, o) },
		func(t comm.Transport) (err error) { est, err = BobLp(t, b, p, o); return err },
	)
	if err != nil {
		return 0, cost, err
	}
	return est, cost, nil
}

// BobLp drives Bob's side of Algorithm 1 over any transport: sketches
// out in round 1, sampled rows in and exact norms of them in round 2.
// It returns the protocol output (the estimate lives at Bob, as in the
// paper). The options must match Alice's.
//
// BobLp re-derives the matrix-dependent precomputation on every call;
// a serving system that answers many queries against the same B should
// build a BobLpState once and call Serve per query.
func BobLp(t comm.Transport, b *intmat.Dense, p float64, o LpOpts) (est float64, err error) {
	st, err := NewBobLpState(b, p, o)
	if err != nil {
		return 0, err
	}
	return st.Serve(t)
}

// BobLpState is the matrix-dependent phase of Bob's side of Algorithm 1:
// everything derivable from (B, p, options, seed) before any message
// arrives — dominated by the per-row ℓp sketches of B that make up the
// whole round-1 payload. Building it once and calling Serve per query
// amortizes the sketching cost across queries without changing a single
// transcript byte: Serve replays the precomputed round-1 bytes, so a
// served run is byte-identical to a fresh BobLp with the same inputs.
//
// A state is immutable after construction and safe for concurrent Serve
// calls.
type BobLpState struct {
	b      *intmat.Dense
	p      float64
	opts   LpOpts // defaults applied
	round1 []byte // encoded round-1 payload: per-row ℓp sketches of B
}

// NewBobLpState validates the parameters and runs the matrix-dependent
// precomputation of Bob's side of Algorithm 1.
func NewBobLpState(b *intmat.Dense, p float64, o LpOpts) (*BobLpState, error) {
	if p < 0 || p > 2 {
		return nil, ErrBadP
	}
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	// Per-row sketches are independent, so each repetition's encoding is
	// sharded over contiguous row ranges; concatenating the per-shard
	// buffers in shard order reproduces the sequential payload bytes.
	var round1 []byte
	for _, rs := range lpSketchFamilies(o, b.Cols(), p) {
		bufs := make([][]byte, len(shardRanges(b.Rows(), o.Shards)))
		runShards(b.Rows(), o.Shards, func(s, lo, hi int) {
			msg := comm.NewMessage()
			rs.encodeRowRange(msg, b, lo, hi)
			bufs[s] = msg.Bytes()
		})
		for _, part := range bufs {
			round1 = append(round1, part...)
		}
	}
	return &BobLpState{b: b, p: p, opts: o, round1: round1}, nil
}

// Bytes reports the memory retained by the precomputed sketches (the
// sizing input for cache accounting; the matrix itself is shared with
// its owner and not counted).
func (s *BobLpState) Bytes() int64 { return int64(len(s.round1)) }

// Serve runs the per-query phase of Bob's side of Algorithm 1 over t.
func (s *BobLpState) Serve(t comm.Transport) (est float64, err error) {
	defer recoverDecodeError(&err)

	// Round 1: Bob → Alice, replayed from the precomputation.
	msg1 := comm.FromBytes(s.round1)
	msg1.Label = "per-row ℓp sketches of B"
	t.Send(comm.BobToAlice, msg1)

	// Round 2: sampled rows in; exact norms of the sampled rows of C,
	// weighted sum per repetition. The varint stream decodes
	// sequentially; the per-row products — the expensive part — are then
	// sharded over sample ranges (each sampled row of C is independent)
	// and the weighted contributions re-summed in sample order, which
	// reproduces the sequential driver's float summation order exactly.
	recv2 := t.Recv(comm.AliceToBob)
	counts := make([]int, s.opts.Reps)
	var samples []lpSample
	for rep := range counts {
		counts[rep] = int(recv2.Uvarint())
		for smp := 0; smp < counts[rep]; smp++ {
			_ = recv2.Uvarint() // row index (informational)
			w := recv2.Float64()
			cols, vals := getSparseRow(recv2)
			samples = append(samples, lpSample{w: w, cols: cols, vals: vals})
		}
	}
	contrib := make([]float64, len(samples))
	runShards(len(samples), s.opts.Shards, func(_, lo, hi int) {
		y := make([]int64, s.b.Cols())
		for i := lo; i < hi; i++ {
			contrib[i] = samples[i].w * mulRowLpPow(y, samples[i].cols, samples[i].vals, s.b, s.p)
		}
	})
	perRep := make([]float64, s.opts.Reps)
	idx := 0
	for rep, count := range counts {
		var est float64
		for smp := 0; smp < count; smp++ {
			est += contrib[idx]
			idx++
		}
		perRep[rep] = est
	}
	return median(perRep), nil
}

// lpSample is one decoded round-2 sample: a sparse row of A with its
// inverse-probability weight.
type lpSample struct {
	w    float64
	cols []int
	vals []int64
}

// AliceLp drives Alice's side of Algorithm 1: she decodes Bob's row
// sketches, estimates row norms of C, groups and samples rows of A, and
// ships the sample. m2 is Bob's column count — catalog metadata both
// parties know before the protocol starts; it fixes the shared sketch
// dimension and costs no communication, matching the in-process
// simulation. Alice learns nothing beyond the transcript; the estimate
// is Bob's output.
func AliceLp(t comm.Transport, a *intmat.Dense, m2 int, p float64, o LpOpts) (err error) {
	st, err := NewAliceLpState(m2, p, o)
	if err != nil {
		return err
	}
	return st.Serve(t, a)
}

// AliceLpState is the query-independent phase of Alice's side of
// Algorithm 1: the shared public-coin sketch families, which depend on
// (m2, p, options, seed) but not on Alice's matrix. A serving system
// that drives both parties (the engine plays Alice against its own
// served matrix) reuses one state across queries; the per-query Serve
// is unchanged in behavior, so transcripts are identical to a fresh
// AliceLp. Immutable after construction; safe for concurrent Serve
// calls.
type AliceLpState struct {
	m2        int
	p         float64
	opts      LpOpts // defaults applied
	sketchers []rowSketcher
	bytes     int64
}

// NewAliceLpState validates the parameters and derives the shared
// sketch families for Bob's column count m2.
func NewAliceLpState(m2 int, p float64, o LpOpts) (*AliceLpState, error) {
	if p < 0 || p > 2 {
		return nil, ErrBadP
	}
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	if m2 <= 0 {
		return nil, ErrDimensionMismatch
	}
	beta := math.Sqrt(o.Eps)
	sizeWords := int(math.Ceil(o.SketchC / (beta * beta)))
	if sizeWords < 4 {
		sizeWords = 4
	}
	return &AliceLpState{
		m2:        m2,
		p:         p,
		opts:      o,
		sketchers: lpSketchFamilies(o, m2, p),
		bytes:     int64(o.Reps) * int64(sizeWords) * int64(m2) * 8,
	}, nil
}

// Bytes reports the approximate memory retained by the sketch families.
func (s *AliceLpState) Bytes() int64 { return s.bytes }

// Serve runs the per-query phase of Alice's side of Algorithm 1 over t
// with her matrix a.
func (s *AliceLpState) Serve(t comm.Transport, a *intmat.Dense) (err error) {
	defer recoverDecodeError(&err)
	if a.Cols() <= 0 {
		return ErrDimensionMismatch
	}
	o := s.opts
	beta := math.Sqrt(o.Eps)
	n := a.Cols()
	m1 := a.Rows()

	recv1 := t.Recv(comm.BobToAlice)
	alicePriv := rng.New(o.Seed).Derive("alice-private", "lp")
	rho := o.RhoC / o.Eps
	msg2 := comm.NewMessage()
	rowCols := make([][]int, m1)
	rowVals := make([][]int64, m1)
	runShards(m1, s.opts.Shards, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			rowCols[i], rowVals[i] = sparseRow(a, i)
		}
	})
	for _, rs := range s.sketchers {
		fieldSk, floatSk := rs.decodeRows(recv1, n)
		picks := sampleRowsByNorm(rs, rowCols, rowVals, fieldSk, floatSk, beta, rho, alicePriv, s.opts.Shards)
		msg2.PutUvarint(uint64(len(picks)))
		for _, smp := range picks {
			msg2.PutUvarint(uint64(smp.i))
			msg2.PutFloat64(smp.weight)
			putSparseRow(msg2, rowCols[smp.i], rowVals[smp.i])
		}
	}
	msg2.Label = "sampled rows of A with weights"
	t.Send(comm.AliceToBob, msg2)
	return nil
}

// OneRoundLp is the direct-sketching baseline from [16]: Bob ships
// (1±ε)-accurate ℓp sketches of every row of B (size Õ(1/ε²) per row) and
// Alice sums per-row estimates — one round, Õ(n/ε²) bits. Theorem 3.1's
// two-round protocol beats it by a 1/ε factor; their measured crossover
// is experiment E1.
func OneRoundLp(a, b *intmat.Dense, p float64, o LpOpts) (float64, Cost, error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return 0, Cost{}, err
	}
	if p < 0 || p > 2 {
		return 0, Cost{}, ErrBadP
	}
	if err := o.setDefaults(); err != nil {
		return 0, Cost{}, err
	}
	sizeWords := int(math.Ceil(o.SketchC / (o.Eps * o.Eps)))
	if sizeWords < 4 {
		sizeWords = 4
	}
	n := a.Cols()
	m1 := a.Rows()
	conn := comm.NewConn()
	shared := rng.New(o.Seed)

	sketchers := make([]rowSketcher, o.Reps)
	for rep := range sketchers {
		sketchers[rep] = newRowSketcher(shared.Derive("lp1r", strconv.Itoa(rep)), b.Cols(), p, sizeWords)
	}
	msg := comm.NewMessage()
	msg.Label = "per-row ℓp sketches of B (1-round accuracy)"
	for _, rs := range sketchers {
		rs.encodeRows(msg, b)
	}
	recv := conn.Send(comm.BobToAlice, msg)

	perRep := make([]float64, o.Reps)
	for rep, rs := range sketchers {
		fieldSk, floatSk := rs.decodeRows(recv, n)
		var total float64
		for i := 0; i < m1; i++ {
			cols, vals := sparseRow(a, i)
			if len(cols) == 0 {
				continue
			}
			if e := rs.estimateRow(cols, vals, fieldSk, floatSk); e > 0 {
				total += e
			}
		}
		perRep[rep] = total
	}
	return median(perRep), costOf(conn), nil
}
