package core

import (
	"math"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// randomBinary generates a random Boolean matrix with the given density.
func randomBinary(seed uint64, rows, cols int, density float64) *bitmat.Matrix {
	r := rng.New(seed)
	m := bitmat.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bernoulli(density) {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// randomInt generates a random integer matrix with entries in
// [-maxAbs, maxAbs] (or [1, maxAbs] when nonneg) at the given density.
func randomInt(seed uint64, rows, cols int, density float64, maxAbs int64, nonneg bool) *intmat.Dense {
	r := rng.New(seed)
	m := intmat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !r.Bernoulli(density) {
				continue
			}
			if nonneg {
				m.Set(i, j, 1+r.Int63n(maxAbs))
			} else {
				v := r.Int63n(2*maxAbs+1) - maxAbs
				if v == 0 {
					v = 1
				}
				m.Set(i, j, v)
			}
		}
	}
	return m
}

func relErr(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / truth
}

func TestMedianHelper(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median = %v", got)
	}
	if got := median([]float64{4, 1}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Fatalf("empty median = %v", got)
	}
}

func TestRowLpPow(t *testing.T) {
	y := []int64{0, 3, -4, 0}
	if got := rowLpPow(y, 0); got != 2 {
		t.Fatalf("p=0: %v", got)
	}
	if got := rowLpPow(y, 1); got != 7 {
		t.Fatalf("p=1: %v", got)
	}
	if got := rowLpPow(y, 2); got != 25 {
		t.Fatalf("p=2: %v", got)
	}
}

func TestMulRowSparse(t *testing.T) {
	b := intmat.NewDense(3, 2)
	b.Set(0, 0, 2)
	b.Set(2, 1, -3)
	y := mulRowSparse([]int{0, 2}, []int64{5, 1}, b)
	if y[0] != 10 || y[1] != -3 {
		t.Fatalf("mulRowSparse = %v", y)
	}
}

func TestExactStatsOf(t *testing.T) {
	c := intmat.NewDense(2, 2)
	c.Set(0, 1, -7)
	c.Set(1, 0, 3)
	st := exactStatsOf(c)
	if st.L0 != 2 || st.L1 != 10 || st.Linf != 7 || st.ArgMax != (Pair{I: 0, J: 1}) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNaiveBinaryMatchesDirect(t *testing.T) {
	a := randomBinary(1, 40, 50, 0.2)
	b := randomBinary(2, 50, 30, 0.2)
	st, cost, err := NaiveBinary(a, b)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Mul(b)
	want := exactStatsOf(c)
	if st.L0 != want.L0 || st.L1 != want.L1 || st.Linf != want.Linf {
		t.Fatalf("naive stats %+v, want %+v", st, want)
	}
	if cost.Rounds != 1 {
		t.Fatalf("naive rounds = %d", cost.Rounds)
	}
	// Bitmap shipping: at least rows·cols bits.
	if cost.Bits < int64(40*50) {
		t.Fatalf("naive bits %d below matrix size", cost.Bits)
	}
}

func TestNaiveIntMatchesDirect(t *testing.T) {
	a := randomInt(3, 30, 40, 0.3, 5, false)
	b := randomInt(4, 40, 20, 0.3, 5, false)
	st, cost, err := NaiveInt(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := exactStatsOf(a.Mul(b))
	if st.L0 != want.L0 || st.L1 != want.L1 || st.Linf != want.Linf {
		t.Fatalf("naive stats %+v, want %+v", st, want)
	}
	if cost.Rounds != 1 {
		t.Fatalf("rounds = %d", cost.Rounds)
	}
}

func TestDimensionMismatchErrors(t *testing.T) {
	a := intmat.NewDense(3, 4)
	b := intmat.NewDense(5, 3)
	if _, _, err := EstimateLp(a, b, 1, LpOpts{Eps: 0.5}); err != ErrDimensionMismatch {
		t.Errorf("EstimateLp: %v", err)
	}
	if _, _, err := ExactL1(a, b); err != ErrDimensionMismatch {
		t.Errorf("ExactL1: %v", err)
	}
	if _, _, _, err := SampleL0(a, b, L0SampleOpts{Eps: 0.5}); err != ErrDimensionMismatch {
		t.Errorf("SampleL0: %v", err)
	}
	ab := bitmat.New(3, 4)
	bb := bitmat.New(5, 3)
	if _, _, _, err := EstimateLinfBinary(ab, bb, LinfOpts{Eps: 0.5}); err != ErrDimensionMismatch {
		t.Errorf("EstimateLinfBinary: %v", err)
	}
	if _, _, err := NaiveInt(a, b); err != ErrDimensionMismatch {
		t.Errorf("NaiveInt: %v", err)
	}
}

func TestParameterValidation(t *testing.T) {
	a := intmat.NewDense(4, 4)
	b := intmat.NewDense(4, 4)
	if _, _, err := EstimateLp(a, b, 3, LpOpts{Eps: 0.5}); err != ErrBadP {
		t.Errorf("p=3: %v", err)
	}
	if _, _, err := EstimateLp(a, b, 1, LpOpts{Eps: 0}); err != ErrBadEps {
		t.Errorf("eps=0: %v", err)
	}
	if _, _, err := EstimateLp(a, b, 1, LpOpts{Eps: 2}); err != ErrBadEps {
		t.Errorf("eps=2: %v", err)
	}
	ab := bitmat.New(4, 4)
	bb := bitmat.New(4, 4)
	if _, _, _, err := EstimateLinfKappa(ab, bb, LinfKappaOpts{Kappa: 0.5}); err != ErrBadKappa {
		t.Errorf("kappa: %v", err)
	}
	if _, _, err := HeavyHitters(a, b, HHOpts{Phi: 0.1, Eps: 0.5}); err != ErrBadPhi {
		t.Errorf("phi<eps: %v", err)
	}
}
