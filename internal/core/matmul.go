package core

import (
	"errors"

	"repro/internal/comm"
	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
	"repro/internal/sketch"
)

// ErrRecoveryFailed reports that the Freivalds verification of a
// DistributedProduct recovery failed — the Sparsity bound was too small
// for the actual ‖AB‖0.
var ErrRecoveryFailed = errors.New("core: distributed product recovery failed verification")

// MatMulOpts configures DistributedProduct.
type MatMulOpts struct {
	// Sparsity is an upper bound on ‖AB‖0 that both parties know. Zero
	// means "estimate it for me": the protocol first runs the Õ(n)-bit
	// ℓ0 estimation of Algorithm 1 (exactly how the paper's Lemma 2.5
	// obtains its bound) and uses twice the estimate, merging that cost
	// into the returned Cost.
	Sparsity int
	// Reps is the number of tensor-CountSketch repetitions for the median
	// point queries. Default 11 (collisions concentrate on shared
	// rows/columns of C, so the median needs headroom; see the E12
	// calibration in EXPERIMENTS.md).
	Reps int
	// Verify enables a Freivalds-style check of the recovered product:
	// Bob ships y = B·r for a shared random field vector r (n extra
	// words) and Alice tests Ĉ·r = A·y over GF(2^61−1), which catches
	// any decode error with probability 1 − O(n/2^61). On failure the
	// protocol returns ErrRecoveryFailed instead of a silently wrong
	// matrix — the defense against an undersized Sparsity bound.
	Verify bool
	// Seed is the shared public-coin seed.
	Seed uint64
}

func (o *MatMulOpts) setDefaults() error {
	if o.Sparsity < 0 {
		o.Sparsity = 0
	}
	if o.Reps <= 0 {
		o.Reps = 11
	}
	return nil
}

// DistributedProduct realizes Lemma 2.5 ([16]): Alice and Bob compute
// matrices CA and CB with CA + CB = A·B using Õ(n·√‖AB‖0) bits.
//
// The realization here uses a tensor CountSketch, whose row/column-
// factored hashing commutes with matrix products: Bob ships the
// column-compressed B·Scᵀ (n·Θ(√s) words), Alice completes the sketch
// (Sr·A)·(B·Scᵀ) = Sr·(AB)·Scᵀ locally and decodes all non-zero entries
// by median point queries. In this realization CA carries the entire
// recovered product and CB = 0, which satisfies the lemma's contract;
// downstream protocols (Algorithm 4) only rely on CA + CB = AB.
//
// Decoding is exact with high probability when Sparsity ≥ ‖AB‖0; if the
// bound may be violated, set Verify to turn silent corruption into
// ErrRecoveryFailed.
func DistributedProduct(a, b *intmat.Dense, o MatMulOpts) (ca, cb *intmat.Dense, cost Cost, err error) {
	if err := checkDims(a.Cols(), b.Rows()); err != nil {
		return nil, nil, Cost{}, err
	}
	if err := o.setDefaults(); err != nil {
		return nil, nil, Cost{}, err
	}
	extra := Cost{}
	if o.Sparsity == 0 {
		est, lpCost, err := EstimateLp(a, b, 0, LpOpts{Eps: 0.5, Seed: o.Seed + 1})
		if err != nil {
			return nil, nil, Cost{}, err
		}
		o.Sparsity = 2*int(est) + 16
		extra = lpCost
	}
	conn := comm.NewConn()
	shared := rng.New(o.Seed)

	ts := sketch.NewTensorCS(shared.Derive("matmul"), a.Rows(), a.Cols(), b.Cols(), o.Sparsity, o.Reps)

	// Round 1 (Bob→Alice): the column-compressed factor, plus the
	// Freivalds witness y = B·r when verification is on.
	msg := comm.NewMessage()
	msg.Label = "column-compressed B·Scᵀ (tensor sketch factor)"
	msg.PutVarintSlice(ts.ColCompress(b))
	var r []field.Elem
	if o.Verify {
		r = freivaldsVector(shared.Derive("matmul", "freivalds"), b.Cols())
		y := make([]uint64, b.Rows())
		for k := 0; k < b.Rows(); k++ {
			var acc field.Elem
			for j, v := range b.Row(k) {
				if v != 0 {
					acc = field.Add(acc, field.MulInt(r[j], v))
				}
			}
			y[k] = acc
		}
		msg.PutUint64Slice(y)
	}
	recv := conn.Send(comm.BobToAlice, msg)

	compressed := recv.VarintSlice()
	sk := ts.SketchFromCompressed(a, compressed)
	entries := ts.Decode(sk)
	ca = intmat.NewSparse(a.Rows(), b.Cols(), entries).ToDense()
	cb = intmat.NewDense(a.Rows(), b.Cols())

	if o.Verify {
		// Alice: check Ĉ·r == A·(B·r) row by row over the field.
		y := recv.Uint64Slice()
		for i := 0; i < a.Rows(); i++ {
			var lhs, rhs field.Elem
			for j, v := range ca.Row(i) {
				if v != 0 {
					lhs = field.Add(lhs, field.MulInt(r[j], v))
				}
			}
			for k, v := range a.Row(i) {
				if v != 0 {
					rhs = field.Add(rhs, field.MulInt(field.Reduce(y[k]), v))
				}
			}
			if lhs != rhs {
				return nil, nil, addCost(costOf(conn), extra), ErrRecoveryFailed
			}
		}
	}
	return ca, cb, addCost(costOf(conn), extra), nil
}

// freivaldsVector derives the shared random evaluation vector.
func freivaldsVector(r *rng.RNG, n int) []field.Elem {
	out := make([]field.Elem, n)
	for i := range out {
		out[i] = field.Reduce(r.Uint64())
	}
	return out
}
