// Package core implements the paper's protocols: two-party statistical
// estimation of a matrix product C = A·B where Alice holds A and Bob
// holds B.
//
// Protocols implemented (paper reference in parentheses):
//
//   - EstimateLp — (1+ε)-approximation of ‖AB‖p^p for p ∈ [0,2]
//     (Algorithm 1, Theorem 3.1; 2 rounds, Õ(n/ε) bits),
//   - OneRoundLp — the 1-round Õ(n/ε²) direct-sketching baseline of [16]
//     that Theorem 3.1 improves on,
//   - ExactL1 / SampleL1 — exact ‖AB‖1 and ℓ1-sampling in O(n log n) bits
//     (Remarks 2 and 3),
//   - SampleL0 — ℓ0-sampling of a non-zero entry of AB
//     (Theorem 3.2; 1 round, Õ(n/ε²) bits),
//   - EstimateLinfBinary — (2+ε)-approximation of ‖AB‖∞ for Boolean
//     matrices (Algorithm 2, Theorem 4.1; 3 rounds, Õ(n^1.5/ε) bits),
//   - EstimateLinfKappa — κ-approximation of ‖AB‖∞ for Boolean matrices
//     (Algorithm 3, Theorem 4.3; O(1) rounds, Õ(n^1.5/κ) bits),
//   - EstimateLinfGeneral — κ-approximation of ‖AB‖∞ for integer
//     matrices (Theorem 4.8(1); 1 round, Õ(n²/κ²) bits),
//   - DistributedProduct — recovery of a sparse product AB
//     (Lemma 2.5, from [16]; here via tensor CountSketch, Õ(n·√‖AB‖0)
//     bits),
//   - HeavyHitters — ℓp-(ϕ,ε)-heavy-hitters of AB for integer matrices
//     (Algorithm 4, Theorem 5.1 and Corollary 5.2; Õ(√ϕ/ε·n) bits),
//   - HeavyHittersBinary — ℓp-(ϕ,ε)-heavy-hitters for Boolean matrices
//     (Section 5.2, Theorem 5.3; Õ(n + ϕ/ε²) bits),
//   - Naive baselines that ship Alice's whole matrix.
//
// # Model
//
// Every protocol routes all exchanged bytes through a comm.Conn, which
// records exact bit counts and rounds. Shared randomness (the sketching
// matrices) is derived by both parties from the Seed option — the paper's
// public-coin model — and costs nothing; private randomness (sampling
// decisions) is derived from per-party labels so the other party provably
// never consumes it. Local computation is free.
//
// # Constants
//
// The paper's constants (10⁴ log n, …) target success probability
// 1 − 1/n¹⁰. The defaults here are scaled for constant success
// probability (≥ 0.9, boosted by median repetitions where the paper says
// to) so that the asymptotic communication shapes are visible at
// benchmarkable sizes; every constant is an exported knob on the option
// structs, and the ratio to the paper's choice is documented there.
//
// Rectangular matrices (A ∈ Z^{m1×n}, B ∈ Z^{n×m2}, Section 6 of the
// paper) are supported throughout: no protocol assumes squareness.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/intmat"
)

// Cost is the communication cost of one protocol execution.
type Cost struct {
	Bits   int64
	Rounds int
	Stats  comm.Stats
	// Trace is the per-message log (direction, bits, round, label).
	Trace []comm.MessageInfo
}

// costOf builds a Cost from any transport endpoint — the in-process
// Conn, one half of a Pair, or a NetConn; for all of them every
// protocol message passes through the endpoint, so its Stats are the
// full execution cost.
func costOf(t comm.Transport) Cost {
	s := t.Stats()
	return Cost{Bits: s.TotalBits(), Rounds: s.Rounds, Stats: s, Trace: t.Trace()}
}

func (c Cost) String() string {
	return fmt.Sprintf("%d bits, %d rounds", c.Bits, c.Rounds)
}

// Pair identifies a matrix entry (i, j) of C = A·B.
type Pair struct {
	I, J int
}

// WeightedPair is a matrix entry together with an estimate of its value.
type WeightedPair struct {
	I, J int
	// Value is the protocol's estimate of C[i][j].
	Value float64
}

// Common parameter validation errors.
var (
	ErrDimensionMismatch = errors.New("core: inner dimensions of A and B differ")
	ErrBadP              = errors.New("core: norm index p out of range")
	ErrBadEps            = errors.New("core: accuracy parameter out of range")
	ErrBadKappa          = errors.New("core: approximation factor κ out of range")
	ErrBadPhi            = errors.New("core: heavy-hitter parameters must satisfy 0 < ε ≤ ϕ ≤ 1")
	ErrNeedNonNegative   = errors.New("core: protocol requires non-negative matrices")
	ErrSampleFailed      = errors.New("core: sampling failed (empty product or sketch failure)")
)

func checkDims(aCols, bRows int) error {
	if aCols != bRows {
		return ErrDimensionMismatch
	}
	return nil
}

// lnDim returns max(1, ln n) — the log factor in the paper's parameter
// settings, floored so tiny inputs don't produce degenerate constants.
func lnDim(n int) float64 {
	if n < 3 {
		return 1
	}
	return math.Log(float64(n))
}

// rowLpPow computes ‖y‖p^p for an integer vector with the paper's
// convention that p = 0 counts non-zero entries. The p = 1 and p = 2
// fast paths return bit-identical sums to the math.Pow formulation
// (Pow(x, 1) = x and Pow(x, 2) = x·x exactly) — they are on the
// serving hot path, where Bob evaluates every sampled row of C.
func rowLpPow(y []int64, p float64) float64 {
	var s float64
	switch p {
	case 0:
		for _, v := range y {
			if v != 0 {
				s++
			}
		}
	case 1:
		for _, v := range y {
			if v < 0 {
				v = -v
			}
			s += float64(v)
		}
	case 2:
		for _, v := range y {
			f := float64(v)
			s += f * f
		}
	default:
		for _, v := range y {
			if v != 0 {
				s += math.Pow(math.Abs(float64(v)), p)
			}
		}
	}
	return s
}

// mulRowSparse computes row · B for a sparse integer row given as
// (cols, vals) index/value pairs, returning a dense length-B.Cols() vector.
func mulRowSparse(cols []int, vals []int64, b *intmat.Dense) []int64 {
	out := make([]int64, b.Cols())
	mulRowSparseInto(out, cols, vals, b)
	return out
}

// mulRowSparseInto accumulates row · B into out (caller-zeroed, length
// B.Cols()); hoisting the buffer lets the serving path evaluate
// thousands of sampled rows per query without per-row allocation. The
// inner loop is branchless so it vectorizes.
func mulRowSparseInto(out []int64, cols []int, vals []int64, b *intmat.Dense) {
	for t, k := range cols {
		v := vals[t]
		if v == 0 {
			continue
		}
		rk := b.Row(k)
		if len(rk) > len(out) {
			rk = rk[:len(out)]
		}
		for j, bv := range rk {
			out[j] += v * bv
		}
	}
}

// median returns the median of v, averaging the middle pair when the
// length is even. It copies its input.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}
