package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/intmat"
)

// Cost is the communication cost of one protocol execution.
type Cost struct {
	// Bits is the total payload transmitted, both directions.
	Bits int64
	// Rounds is the number of maximal one-way message blocks.
	Rounds int
	// Stats is the full per-direction accounting.
	Stats comm.Stats
	// Trace is the per-message log (direction, bits, round, label).
	Trace []comm.MessageInfo
}

// costOf builds a Cost from any transport endpoint — the in-process
// Conn, one half of a Pair, or a NetConn; for all of them every
// protocol message passes through the endpoint, so its Stats are the
// full execution cost.
func costOf(t comm.Transport) Cost {
	s := t.Stats()
	return Cost{Bits: s.TotalBits(), Rounds: s.Rounds, Stats: s, Trace: t.Trace()}
}

// String formats the cost for experiment output.
func (c Cost) String() string {
	return fmt.Sprintf("%d bits, %d rounds", c.Bits, c.Rounds)
}

// Pair identifies a matrix entry (i, j) of C = A·B.
type Pair struct {
	// I is the row index.
	I int
	// J is the column index.
	J int
}

// WeightedPair is a matrix entry together with an estimate of its value.
type WeightedPair struct {
	// I is the row index.
	I int
	// J is the column index.
	J int
	// Value is the protocol's estimate of C[i][j].
	Value float64
}

// Common parameter validation errors.
var (
	ErrDimensionMismatch = errors.New("core: inner dimensions of A and B differ")
	ErrBadP              = errors.New("core: norm index p out of range")
	ErrBadEps            = errors.New("core: accuracy parameter out of range")
	ErrBadKappa          = errors.New("core: approximation factor κ out of range")
	ErrBadPhi            = errors.New("core: heavy-hitter parameters must satisfy 0 < ε ≤ ϕ ≤ 1")
	ErrNeedNonNegative   = errors.New("core: protocol requires non-negative matrices")
	ErrSampleFailed      = errors.New("core: sampling failed (empty product or sketch failure)")
)

func checkDims(aCols, bRows int) error {
	if aCols != bRows {
		return ErrDimensionMismatch
	}
	return nil
}

// lnDim returns max(1, ln n) — the log factor in the paper's parameter
// settings, floored so tiny inputs don't produce degenerate constants.
func lnDim(n int) float64 {
	if n < 3 {
		return 1
	}
	return math.Log(float64(n))
}

// rowLpPow computes ‖y‖p^p for an integer vector with the paper's
// convention that p = 0 counts non-zero entries. The p = 1 and p = 2
// fast paths return bit-identical sums to the math.Pow formulation
// (Pow(x, 1) = x and Pow(x, 2) = x·x exactly) — they are on the
// serving hot path, where Bob evaluates every sampled row of C.
func rowLpPow(y []int64, p float64) float64 { return rowLpPowAcc(0, y, p) }

// rowLpPowAcc folds y's ℓp^p contributions into the running
// accumulator s, element by element in order — the form the blocked
// kernels thread through column tiles so tiling never changes the
// float summation order.
//
//mp:hotpath
func rowLpPowAcc(s float64, y []int64, p float64) float64 {
	switch p {
	case 0:
		for _, v := range y {
			if v != 0 {
				s++
			}
		}
	case 1:
		for _, v := range y {
			if v < 0 {
				v = -v
			}
			s += float64(v)
		}
	case 2:
		for _, v := range y {
			f := float64(v)
			s += f * f
		}
	default:
		for _, v := range y {
			if v != 0 {
				s += math.Pow(math.Abs(float64(v)), p)
			}
		}
	}
	return s
}

// mulRowSparse computes row · B for a sparse integer row given as
// (cols, vals) index/value pairs, returning a dense length-B.Cols() vector.
func mulRowSparse(cols []int, vals []int64, b *intmat.Dense) []int64 {
	out := make([]int64, b.Cols())
	mulRowSparseInto(out, cols, vals, b)
	return out
}

// mulRowSparseInto accumulates row · B into out (caller-zeroed, length
// B.Cols()); hoisting the buffer lets the serving path evaluate
// thousands of sampled rows per query without per-row allocation.
// Wide rows are column-tiled (kernels.go) so the output tile and the
// touched B-row tiles stay cache-resident across the whole sparse
// accumulation — exact integer arithmetic makes the tiling invisible
// in the answer.
func mulRowSparseInto(out []int64, cols []int, vals []int64, b *intmat.Dense) {
	if len(out) <= mulBlockCols || len(cols) < 2 {
		mulRowSparseSpanInto(out, 0, len(out), cols, vals, b)
		return
	}
	for lo := 0; lo < len(out); lo += mulBlockCols {
		mulRowSparseSpanInto(out, lo, min(lo+mulBlockCols, len(out)), cols, vals, b)
	}
}

// median returns the median of v, averaging the middle pair when the
// length is even. It copies its input.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}
