package core

import (
	"math"
	"testing"
)

func TestExactL1Correct(t *testing.T) {
	a := randomInt(60, 50, 60, 0.2, 4, true)
	b := randomInt(61, 60, 40, 0.2, 4, true)
	got, cost, err := ExactL1(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := a.Mul(b).L1(); got != want {
		t.Fatalf("ExactL1 = %d, want %d", got, want)
	}
	if cost.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", cost.Rounds)
	}
	// O(n log n) bits: generously, well under one bitmap row per item.
	if cost.Bits > int64(60*64) {
		t.Fatalf("ExactL1 used %d bits, want O(n log n)", cost.Bits)
	}
}

func TestExactL1RejectsSigned(t *testing.T) {
	a := randomInt(62, 10, 10, 0.5, 3, false)
	b := randomInt(63, 10, 10, 0.5, 3, true)
	if _, _, err := ExactL1(a, b); err != ErrNeedNonNegative {
		t.Fatalf("err = %v, want ErrNeedNonNegative", err)
	}
}

func TestSampleL1Distribution(t *testing.T) {
	// 4×4 product with known entries; sampling frequency must be
	// proportional to C[i][j].
	a := randomInt(64, 4, 3, 0.9, 3, true)
	b := randomInt(65, 3, 4, 0.9, 3, true)
	c := a.Mul(b)
	total := float64(c.L1())
	if total == 0 {
		t.Skip("degenerate workload")
	}
	counts := map[Pair]int{}
	const trials = 3000
	for s := 0; s < trials; s++ {
		i, j, witness, _, err := SampleL1(a, b, uint64(9000+s))
		if err != nil {
			t.Fatal(err)
		}
		if c.Get(i, j) == 0 {
			t.Fatalf("sampled zero entry (%d,%d)", i, j)
		}
		// The witness must actually connect i to j.
		if a.Get(i, witness) == 0 || b.Get(witness, j) == 0 {
			t.Fatalf("witness %d does not connect (%d,%d)", witness, i, j)
		}
		counts[Pair{I: i, J: j}]++
	}
	for pr, got := range counts {
		want := float64(c.Get(pr.I, pr.J)) / total * trials
		sigma := math.Sqrt(want)
		if math.Abs(float64(got)-want) > 6*sigma+6 {
			t.Errorf("pair %v sampled %d times, want ~%.0f", pr, got, want)
		}
	}
}

func TestSampleL1EmptyProduct(t *testing.T) {
	a := randomInt(66, 8, 8, 0, 1, true)
	b := randomInt(67, 8, 8, 0.3, 1, true)
	if _, _, _, _, err := SampleL1(a, b, 1); err != ErrSampleFailed {
		t.Fatalf("err = %v, want ErrSampleFailed", err)
	}
}

func TestSampleL0InSupport(t *testing.T) {
	a := randomBinary(68, 64, 64, 0.08).ToInt()
	b := randomBinary(69, 64, 64, 0.08).ToInt()
	c := a.Mul(b)
	if c.L0() == 0 {
		t.Skip("degenerate workload")
	}
	for s := 0; s < 20; s++ {
		pair, v, cost, err := SampleL0(a, b, L0SampleOpts{Eps: 0.5, Seed: uint64(100 + s)})
		if err != nil {
			t.Fatal(err)
		}
		if c.Get(pair.I, pair.J) == 0 {
			t.Fatalf("sampled zero entry %v", pair)
		}
		if v != c.Get(pair.I, pair.J) {
			t.Fatalf("sampled value %d, want %d", v, c.Get(pair.I, pair.J))
		}
		if cost.Rounds != 1 {
			t.Fatalf("rounds = %d, want 1", cost.Rounds)
		}
	}
}

func TestSampleL0NearUniform(t *testing.T) {
	// Small support so frequencies are checkable. C's support is spread
	// across columns; both the column-selection and in-column sampling
	// stages must cooperate.
	a := randomBinary(70, 32, 48, 0.03).ToInt()
	b := randomBinary(71, 48, 32, 0.03).ToInt()
	c := a.Mul(b)
	support := c.L0()
	if support < 5 || support > 60 {
		t.Fatalf("workload support %d unsuitable, pick new seeds", support)
	}
	counts := map[Pair]int{}
	const trials = 1500
	fails := 0
	for s := 0; s < trials; s++ {
		pair, _, _, err := SampleL0(a, b, L0SampleOpts{Eps: 0.5, Seed: uint64(20000 + s)})
		if err != nil {
			fails++
			continue
		}
		counts[pair]++
	}
	if fails > trials/10 {
		t.Fatalf("sampler failed %d/%d times", fails, trials)
	}
	got := 0
	for _, cnt := range counts {
		got += cnt
	}
	want := float64(got) / float64(support)
	for pr, cnt := range counts {
		if math.Abs(float64(cnt)-want) > 6*math.Sqrt(want)+6 {
			t.Errorf("pair %v sampled %d times, want ~%.0f", pr, cnt, want)
		}
	}
	// Coverage: nearly every support entry should appear.
	if len(counts) < support*8/10 {
		t.Errorf("only %d/%d support entries ever sampled", len(counts), support)
	}
}

func TestSampleL0EmptyProduct(t *testing.T) {
	a := randomInt(72, 16, 16, 0, 1, true)
	b := randomInt(73, 16, 16, 0.3, 1, true)
	if _, _, _, err := SampleL0(a, b, L0SampleOpts{Eps: 0.5, Seed: 5}); err != ErrSampleFailed {
		t.Fatalf("err = %v, want ErrSampleFailed", err)
	}
}
