package comm

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
)

// script runs a fixed three-message exchange (B→A, A→B, A→B) through
// any pair of send/recv functions and returns the payload the final
// receiver assembled. It is the reference workload for checking that
// every Transport accounts identically.
type endpoint interface {
	Send(dir Direction, msg *Message) *Message
	Recv(dir Direction) *Message
}

func runScriptedBob(t endpoint) []int64 {
	msg := NewMessage()
	msg.Label = "bob round 1"
	msg.PutVarintSlice([]int64{1, -2, 3})
	t.Send(BobToAlice, msg)
	first := t.Recv(AliceToBob).VarintSlice()
	second := t.Recv(AliceToBob).VarintSlice()
	return append(first, second...)
}

func runScriptedAlice(t endpoint) {
	in := t.Recv(BobToAlice).VarintSlice()
	m1 := NewMessage()
	m1.Label = "alice reply"
	m1.PutVarintSlice(in)
	t.Send(AliceToBob, m1)
	m2 := NewMessage()
	m2.Label = "alice extra"
	m2.PutVarintSlice([]int64{40, 50})
	t.Send(AliceToBob, m2)
}

// referenceStats runs the script interleaved over a Conn, the
// accounting ground truth.
func referenceStats(t *testing.T) Stats {
	t.Helper()
	conn := NewConn()
	msg := NewMessage()
	msg.PutVarintSlice([]int64{1, -2, 3})
	in := conn.Send(BobToAlice, msg).VarintSlice()
	m1 := NewMessage()
	m1.PutVarintSlice(in)
	conn.Send(AliceToBob, m1)
	m2 := NewMessage()
	m2.PutVarintSlice([]int64{40, 50})
	conn.Send(AliceToBob, m2)
	return conn.Stats()
}

func TestPairMatchesConnAccounting(t *testing.T) {
	want := referenceStats(t)
	alice, bob := Pair()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runScriptedAlice(alice)
		alice.Finish()
	}()
	got := runScriptedBob(bob)
	bob.Finish()
	wg.Wait()

	if gotStats := bob.Stats(); gotStats != want {
		t.Fatalf("pair stats %+v != conn stats %+v", gotStats, want)
	}
	if aliceStats := alice.Stats(); aliceStats != want {
		t.Fatalf("alice half sees %+v, want shared %+v", aliceStats, want)
	}
	wantPayload := []int64{1, -2, 3, 40, 50}
	if len(got) != len(wantPayload) {
		t.Fatalf("payload %v", got)
	}
	for i, v := range wantPayload {
		if got[i] != v {
			t.Fatalf("payload %v, want %v", got, wantPayload)
		}
	}
	if tr := bob.Trace(); len(tr) != 3 || tr[0].Label != "bob round 1" || tr[0].Round != 1 || tr[2].Round != 2 {
		t.Fatalf("trace %+v", tr)
	}
}

func TestNetConnMatchesConnAccounting(t *testing.T) {
	want := referenceStats(t)
	ac, bc := net.Pipe()
	alice := NewNetConn(Alice, ac)
	bob := NewNetConn(Bob, bc)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runScriptedAlice(alice)
		ac.Close()
	}()
	runScriptedBob(bob)
	wg.Wait()

	// Each endpoint observes every message, so both see full stats.
	if got := bob.Stats(); got != want {
		t.Fatalf("bob netconn stats %+v != conn stats %+v", got, want)
	}
	if got := alice.Stats(); got != want {
		t.Fatalf("alice netconn stats %+v != conn stats %+v", got, want)
	}
	// Wire bytes include exactly one 4-byte header per message.
	wantWire := want.TotalBits()/8 + 4*int64(want.Messages)
	if bob.WireBytes() != wantWire {
		t.Fatalf("wire bytes %d, want %d", bob.WireBytes(), wantWire)
	}
}

func TestConnRecvReplaysPending(t *testing.T) {
	conn := NewConn()
	msg := NewMessage()
	msg.PutInt(7)
	conn.Send(AliceToBob, msg)
	if got := conn.Recv(AliceToBob).Int(); got != 7 {
		t.Fatalf("recv got %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Recv with nothing pending did not panic")
		}
	}()
	conn.Recv(AliceToBob)
}

func TestPartyScopedMisusePanics(t *testing.T) {
	alice, bob := Pair()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("alice sending B→A", func() { alice.Send(BobToAlice, NewMessage()) })
	mustPanic("bob receiving his own direction", func() { bob.Recv(BobToAlice) })
	nc := NewNetConn(Alice, &bytes.Buffer{})
	mustPanic("netconn wrong direction", func() { nc.Send(BobToAlice, NewMessage()) })
	mustPanic("netconn wrong recv direction", func() { nc.Recv(AliceToBob) })
}

func TestPairPeerTerminationSurfacesAsTransportError(t *testing.T) {
	alice, bob := Pair()
	alice.Finish() // Alice dies without sending round 2
	defer func() {
		r := recover()
		te, ok := r.(*TransportError)
		if !ok {
			t.Fatalf("recover %v, want *TransportError", r)
		}
		if te.Op != "recv" {
			t.Fatalf("op %q", te.Op)
		}
	}()
	bob.Recv(AliceToBob)
}

func TestNetConnPeerCloseSurfacesAsTransportError(t *testing.T) {
	ac, bc := net.Pipe()
	bob := NewNetConn(Bob, bc)
	ac.Close()
	defer func() {
		r := recover()
		if _, ok := r.(*TransportError); !ok {
			t.Fatalf("recover %v, want *TransportError", r)
		}
	}()
	bob.Recv(AliceToBob)
}

func TestFrameRoundTripAndErrors(t *testing.T) {
	var buf bytes.Buffer
	msg := NewMessage()
	msg.PutFloat64Slice([]float64{1.5, -2.25})
	n, err := WriteFrame(&buf, msg)
	if err != nil {
		t.Fatal(err)
	}
	if n != msg.Len()+4 {
		t.Fatalf("frame wrote %d bytes, want %d", n, msg.Len()+4)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v := got.Float64Slice()
	if len(v) != 2 || v[0] != 1.5 || v[1] != -2.25 {
		t.Fatalf("round trip %v", v)
	}

	if _, err := ReadFrame(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header not reported")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Fatal("oversized frame not reported")
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2})); err == nil {
		t.Fatal("truncated payload not reported")
	}
}

func TestTransportErrorUnwrap(t *testing.T) {
	base := errors.New("boom")
	te := &TransportError{Op: "send", Err: base}
	if !errors.Is(te, base) {
		t.Fatal("TransportError does not unwrap")
	}
}
