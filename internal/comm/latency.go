package comm

import (
	"fmt"
	"time"
)

// LatencyModel converts a protocol's (bits, rounds) cost into an
// estimated wall-clock transfer time under a simple pipe model:
// every round pays one round-trip latency, and payload bits stream at
// the link bandwidth. This is why the paper optimizes both measures —
// on a WAN, a 2-round Õ(n/ε) protocol can dominate a 1-round Õ(n/ε²)
// one despite the extra round as soon as the bandwidth term dominates,
// and vice versa on short links.
type LatencyModel struct {
	// RTT is the round-trip latency of the link.
	RTT time.Duration
	// BitsPerSecond is the link bandwidth.
	BitsPerSecond float64
}

// Common reference links for harness output.
var (
	// LAN: 0.5 ms RTT, 10 Gb/s.
	LAN = LatencyModel{RTT: 500 * time.Microsecond, BitsPerSecond: 10e9}
	// WAN: 50 ms RTT, 100 Mb/s.
	WAN = LatencyModel{RTT: 50 * time.Millisecond, BitsPerSecond: 100e6}
)

// Estimate returns the modeled wall-clock time for a protocol run.
func (m LatencyModel) Estimate(s Stats) time.Duration {
	if m.BitsPerSecond <= 0 {
		return 0
	}
	transfer := time.Duration(float64(s.TotalBits()) / m.BitsPerSecond * float64(time.Second))
	return time.Duration(s.Rounds)*m.RTT + transfer
}

// String formats the model parameters for experiment labels.
func (m LatencyModel) String() string {
	return fmt.Sprintf("RTT=%v bw=%.0fMb/s", m.RTT, m.BitsPerSecond/1e6)
}
