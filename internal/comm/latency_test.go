package comm

import (
	"testing"
	"time"
)

func TestLatencyModelEstimate(t *testing.T) {
	m := LatencyModel{RTT: 10 * time.Millisecond, BitsPerSecond: 1e6}
	s := Stats{BitsAliceToBob: 500000, Rounds: 2}
	// 2 rounds × 10ms + 500000 bits / 1e6 bps = 20ms + 500ms.
	got := m.Estimate(s)
	want := 520 * time.Millisecond
	if got != want {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
}

func TestLatencyModelZeroBandwidth(t *testing.T) {
	m := LatencyModel{RTT: time.Second}
	if got := m.Estimate(Stats{Rounds: 5}); got != 0 {
		t.Fatalf("zero-bandwidth estimate = %v", got)
	}
}

func TestLatencyCrossover(t *testing.T) {
	// The round/bandwidth tradeoff the paper's round counting is about:
	// a chatty-but-lean protocol beats a one-shot-but-heavy one on a
	// fast link and loses on a slow one only through the bit term.
	lean := Stats{BitsAliceToBob: 1 << 20, Rounds: 2}  // 1 Mbit, 2 rounds
	heavy := Stats{BitsAliceToBob: 1 << 27, Rounds: 1} // 128 Mbit, 1 round
	if LAN.Estimate(lean) >= LAN.Estimate(heavy) {
		t.Fatal("lean protocol should win on LAN")
	}
	if WAN.Estimate(lean) >= WAN.Estimate(heavy) {
		t.Fatal("lean protocol should still win on WAN at this bit gap")
	}
	// With a tiny bit gap the extra round dominates on WAN.
	lean2 := Stats{BitsAliceToBob: 1 << 20, Rounds: 4}
	heavy2 := Stats{BitsAliceToBob: 1 << 21, Rounds: 1}
	if WAN.Estimate(lean2) <= WAN.Estimate(heavy2) {
		t.Fatal("extra rounds should cost on WAN when bits are comparable")
	}
}

func TestLatencyString(t *testing.T) {
	if WAN.String() == "" || LAN.String() == "" {
		t.Fatal("empty model strings")
	}
}
