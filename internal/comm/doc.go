// Package comm is the two-party protocol runtime.
//
// The paper's model has Alice and Bob exchanging messages; the complexity
// measures are the total number of transmitted bits and the number of
// rounds (maximal blocks of messages flowing in one direction). This
// package provides an in-process simulation of that model with exact
// accounting: every protocol message is serialized into a Message, handed
// to Conn.Send, and the connection records its payload size and advances
// the round counter whenever the direction of communication flips.
//
// Local computation is free, exactly as in the communication-complexity
// model. Shared randomness is free too (public-coin model): both parties
// derive sketching matrices from a common seed outside this package.
//
// The encoding vocabulary (unsigned/signed varints, fixed 64-bit floats,
// bitmaps, delta-coded index lists, sparse matrices) mirrors the message
// types the paper's protocols need; each helper documents its exact cost.
package comm
