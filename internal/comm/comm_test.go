package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/intmat"
)

func TestRoundCounting(t *testing.T) {
	c := NewConn()
	// Two consecutive Alice messages are one round; a flip starts a new one.
	c.Send(AliceToBob, NewMessage())
	c.Send(AliceToBob, NewMessage())
	if got := c.Stats().Rounds; got != 1 {
		t.Fatalf("rounds = %d, want 1", got)
	}
	c.Send(BobToAlice, NewMessage())
	if got := c.Stats().Rounds; got != 2 {
		t.Fatalf("rounds = %d, want 2", got)
	}
	c.Send(BobToAlice, NewMessage())
	c.Send(AliceToBob, NewMessage())
	if got := c.Stats().Rounds; got != 3 {
		t.Fatalf("rounds = %d, want 3", got)
	}
	if got := c.Stats().Messages; got != 5 {
		t.Fatalf("messages = %d, want 5", got)
	}
}

func TestBitAccounting(t *testing.T) {
	c := NewConn()
	m := NewMessage()
	m.PutFloat64(3.14) // 8 bytes
	c.Send(AliceToBob, m)
	if got := c.Stats().BitsAliceToBob; got != 64 {
		t.Fatalf("A→B bits = %d, want 64", got)
	}
	m2 := NewMessage()
	m2.PutUint64(7) // 8 bytes
	c.Send(BobToAlice, m2)
	if got := c.Stats().BitsBobToAlice; got != 64 {
		t.Fatalf("B→A bits = %d, want 64", got)
	}
	if got := c.Stats().TotalBits(); got != 128 {
		t.Fatalf("total = %d, want 128", got)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	m := NewMessage()
	values := []int64{0, 1, -1, 300, -300, 1 << 40, -(1 << 40)}
	for _, v := range values {
		m.PutVarint(v)
	}
	m.PutUvarint(12345)
	m.pos = 0
	for _, v := range values {
		if got := m.Varint(); got != v {
			t.Fatalf("Varint = %d, want %d", got, v)
		}
	}
	if got := m.Uvarint(); got != 12345 {
		t.Fatalf("Uvarint = %d", got)
	}
	if m.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", m.Remaining())
	}
}

func TestFloatSliceRoundTrip(t *testing.T) {
	m := NewMessage()
	in := []float64{1.5, -2.25, 0, 1e300}
	m.PutFloat64Slice(in)
	m.pos = 0
	out := m.Float64Slice()
	if len(out) != len(in) {
		t.Fatal("length mismatch")
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("slice[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 130} {
		in := make([]bool, n)
		for i := range in {
			in[i] = i%3 == 0
		}
		m := NewMessage()
		m.PutBitmap(in)
		wantBytes := (n+7)/8 + 1 // payload + 1-byte length for small n
		if n >= 128 {
			wantBytes++ // two-byte varint length
		}
		if m.Len() != wantBytes {
			t.Errorf("n=%d: bitmap encoded to %d bytes, want %d", n, m.Len(), wantBytes)
		}
		m.pos = 0
		out := m.Bitmap()
		if len(out) != n {
			t.Fatalf("n=%d: decoded length %d", n, len(out))
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("n=%d: bit %d mismatch", n, i)
			}
		}
	}
}

func TestWordBitmapRoundTrip(t *testing.T) {
	words := []uint64{0xdeadbeefcafebabe, 0x0123456789abcdef, 0x1}
	nbits := 130
	m := NewMessage()
	m.PutWordBitmap(words, nbits)
	m.pos = 0
	got, n := m.WordBitmap()
	if n != nbits {
		t.Fatalf("nbits = %d, want %d", n, nbits)
	}
	for i := 0; i < nbits; i++ {
		want := words[i/64]&(1<<uint(i%64)) != 0
		have := got[i/64]&(1<<uint(i%64)) != 0
		if want != have {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestIndexListRoundTrip(t *testing.T) {
	in := []int{0, 3, 4, 100, 1000}
	m := NewMessage()
	m.PutIndexList(in)
	m.pos = 0
	out := m.IndexList()
	if len(out) != len(in) {
		t.Fatal("length mismatch")
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("index %d: %d != %d", i, out[i], in[i])
		}
	}
}

func TestIndexListRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted index list")
		}
	}()
	NewMessage().PutIndexList([]int{3, 3})
}

func TestSparseRoundTrip(t *testing.T) {
	s := intmat.NewSparse(5, 7, []intmat.Entry{
		{I: 0, J: 1, V: 5}, {I: 0, J: 6, V: -2}, {I: 2, J: 0, V: 100}, {I: 4, J: 3, V: -77},
	})
	m := NewMessage()
	m.PutSparse(s)
	m.pos = 0
	got := m.Sparse()
	if !got.ToDense().Equal(s.ToDense()) {
		t.Fatal("sparse round trip mismatch")
	}
}

func TestFloatMatrixRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewMessage()
	m.PutFloatMatrix(2, 3, data)
	m.pos = 0
	r, c, got := m.FloatMatrix()
	if r != 2 || c != 3 {
		t.Fatalf("dims %dx%d", r, c)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("data mismatch")
		}
	}
}

func TestFloatMatrixShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMessage().PutFloatMatrix(2, 2, []float64{1})
}

func TestTruncatedReadsPanic(t *testing.T) {
	m := NewMessage()
	m.PutUvarint(4)
	m.pos = 0
	m.Uvarint()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncated read")
		}
	}()
	m.Float64()
}

func TestQuickVarintSlice(t *testing.T) {
	f := func(v []int64) bool {
		m := NewMessage()
		m.PutVarintSlice(v)
		m.pos = 0
		got := m.VarintSlice()
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return m.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUint64Slice(t *testing.T) {
	f := func(v []uint64) bool {
		m := NewMessage()
		m.PutUint64Slice(v)
		m.pos = 0
		got := m.Uint64Slice()
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsString(t *testing.T) {
	c := NewConn()
	m := NewMessage()
	m.PutUvarint(1)
	c.Send(AliceToBob, m)
	if s := c.Stats().String(); s == "" {
		t.Fatal("empty stats string")
	}
	if AliceToBob.String() != "Alice→Bob" || BobToAlice.String() != "Bob→Alice" {
		t.Fatal("direction strings wrong")
	}
}
