package comm

import (
	"testing"
)

// Fuzz targets for the wire encodings: writers followed by readers must
// round-trip, and readers on arbitrary bytes must either decode or
// panic — never read out of bounds or loop.

func FuzzVarintRoundTrip(f *testing.F) {
	f.Add(int64(0), uint64(0))
	f.Add(int64(-1), uint64(1))
	f.Add(int64(1<<62), uint64(1<<63))
	f.Fuzz(func(t *testing.T, sv int64, uv uint64) {
		m := NewMessage()
		m.PutVarint(sv)
		m.PutUvarint(uv)
		m.pos = 0
		if got := m.Varint(); got != sv {
			t.Fatalf("varint %d != %d", got, sv)
		}
		if got := m.Uvarint(); got != uv {
			t.Fatalf("uvarint %d != %d", got, uv)
		}
		if m.Remaining() != 0 {
			t.Fatal("bytes left over")
		}
	})
}

func FuzzBitmapRoundTrip(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0xaa}, uint16(20))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint16) {
		n := int(nRaw) % (len(raw)*8 + 1)
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = raw[i/8]&(1<<uint(i%8)) != 0
		}
		m := NewMessage()
		m.PutBitmap(bits)
		m.pos = 0
		got := m.Bitmap()
		if len(got) != n {
			t.Fatalf("decoded %d bits, want %d", len(got), n)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("bit %d mismatch", i)
			}
		}
	})
}

func FuzzReaderOnArbitraryBytes(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Any of the readers may panic on malformed input (that is the
		// contract — malformed messages are protocol bugs), but they
		// must not hang or read out of bounds. The recover below makes
		// panics acceptable; the fuzzer still catches slice overruns as
		// runtime errors distinct from our explicit panics because both
		// surface identically — what we are really testing is
		// termination and memory safety under the race/fuzz harness.
		decoders := []func(*Message){
			func(m *Message) { m.Uvarint() },
			func(m *Message) { m.Varint() },
			func(m *Message) { m.Float64() },
			func(m *Message) { m.Bitmap() },
			func(m *Message) { m.IndexList() },
			func(m *Message) { m.Float64Slice() },
			func(m *Message) { m.Uint64Slice() },
		}
		for _, dec := range decoders {
			m := &Message{buf: raw}
			func() {
				defer func() { recover() }()
				dec(m)
			}()
		}
	})
}
