package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Party identifies one of the protocol's two participants.
type Party int

// The two parties of every protocol in this repository.
const (
	Alice Party = iota
	Bob
)

// String names the party for traces and error messages.
func (p Party) String() string {
	if p == Alice {
		return "Alice"
	}
	return "Bob"
}

// Sender returns the party transmitting in direction d.
func (d Direction) Sender() Party {
	if d == AliceToBob {
		return Alice
	}
	return Bob
}

// Receiver returns the party receiving in direction d.
func (d Direction) Receiver() Party {
	if d == AliceToBob {
		return Bob
	}
	return Alice
}

// Transport is the seam between protocol logic and message delivery. A
// protocol routes every exchanged byte through Send and Recv, and the
// transport records the paper's two complexity measures — payload bits
// per direction and rounds (maximal one-way blocks) — identically no
// matter how messages actually move:
//
//   - *Conn is the in-process simulation: both parties run interleaved
//     in one function, Send returns the payload to the receiver's code
//     directly, and Recv replays the pending message.
//   - *PairConn (from Pair) connects two party drivers running in the
//     same process: each driver holds one half and only its own data.
//   - *NetConn frames messages over any io.ReadWriter — a TCP socket, a
//     pipe — with a 4-byte length prefix. Accounting counts payload
//     bits only (framing is excluded), so a protocol's Cost is the same
//     over a socket as in the in-process simulation.
//
// Send and Recv panic on transport failure (wrapped in *TransportError)
// and on malformed use; party drivers convert those panics to errors at
// their boundary, mirroring how Message readers handle malformed
// payloads.
type Transport interface {
	// Send transmits msg in direction dir and returns it with the read
	// cursor rewound. On a two-sided transport (Conn, and PairConn
	// in-process delivery) the returned message is the receiver's view;
	// on a party-scoped transport only the sending party may call Send.
	Send(dir Direction, msg *Message) *Message
	// Recv returns the next message travelling in direction dir. Only
	// the receiving party of dir may call Recv on party-scoped
	// transports.
	Recv(dir Direction) *Message
	// Stats returns the accumulated cost visible at this endpoint. For
	// all transports in this package every protocol message passes
	// through the endpoint, so Stats is the full execution cost.
	Stats() Stats
	// Trace returns the per-message log of the execution so far.
	Trace() []MessageInfo
}

// Compile-time interface checks.
var (
	_ Transport = (*Conn)(nil)
	_ Transport = (*PairConn)(nil)
	_ Transport = (*NetConn)(nil)
)

// TransportError wraps an I/O or peer failure surfaced by a Transport.
// Transports panic with it; party drivers recover it into an error.
type TransportError struct {
	// Op is the failed operation: "send" or "recv".
	Op string
	// Err is the underlying I/O or peer failure.
	Err error
}

// Error formats the failure with its operation.
func (e *TransportError) Error() string {
	return fmt.Sprintf("comm: transport %s: %v", e.Op, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// tally is the accounting state shared by all transports: bits per
// direction, message count, round flips, and the per-message trace.
type tally struct {
	stats   Stats
	lastDir Direction
	started bool
	trace   []MessageInfo
}

// record accounts one message and returns the round it belongs to.
func (t *tally) record(dir Direction, bits int64, label string) int {
	if dir == AliceToBob {
		t.stats.BitsAliceToBob += bits
	} else {
		t.stats.BitsBobToAlice += bits
	}
	t.stats.Messages++
	if !t.started || t.lastDir != dir {
		t.stats.Rounds++
		t.lastDir = dir
		t.started = true
	}
	t.trace = append(t.trace, MessageInfo{
		Direction: dir,
		Bits:      bits,
		Round:     t.stats.Rounds,
		Label:     label,
	})
	return t.stats.Rounds
}

// MaxFrame is the largest frame WriteFrame emits and ReadFrame accepts:
// a corrupt or hostile length prefix cannot demand unbounded memory.
const MaxFrame = 1 << 30

// WriteFrame writes msg's payload with a 4-byte big-endian length
// prefix and returns the number of bytes written including framing.
func WriteFrame(w io.Writer, msg *Message) (int, error) {
	payload := msg.Bytes()
	if len(payload) > MaxFrame {
		return 0, fmt.Errorf("comm: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(payload)
	return n + 4, err
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("comm: reading frame header: %w", err)
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > MaxFrame {
		return nil, fmt.Errorf("comm: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("comm: reading frame payload: %w", err)
	}
	return FromBytes(payload), nil
}

// NetConn is one party's endpoint of a two-party connection over a real
// byte stream (net.Conn, net.Pipe, …). Messages are framed with a
// 4-byte length prefix; accounting counts payload bits only, so Stats
// match the in-process simulation exactly for the same protocol run.
//
// A NetConn belongs to a single protocol execution driven by one
// goroutine; it is not safe for concurrent use.
type NetConn struct {
	party Party
	rw    io.ReadWriter
	tally
	wireBytes int64
}

// NewNetConn returns party's endpoint over rw. The peer must hold a
// NetConn for the opposite party over the other end of the stream.
func NewNetConn(party Party, rw io.ReadWriter) *NetConn {
	return &NetConn{party: party, rw: rw}
}

// Party returns which side of the protocol this endpoint drives.
func (c *NetConn) Party() Party { return c.party }

// Send frames msg onto the wire. Only the sending party of dir may call
// it; transport failures panic with *TransportError.
func (c *NetConn) Send(dir Direction, msg *Message) *Message {
	if dir.Sender() != c.party {
		panic(fmt.Sprintf("comm: %v cannot send in direction %v", c.party, dir))
	}
	n, err := WriteFrame(c.rw, msg)
	if err != nil {
		panic(&TransportError{Op: "send", Err: err})
	}
	c.record(dir, int64(len(msg.Bytes()))*8, msg.Label)
	c.wireBytes += int64(n)
	msg.pos = 0
	return msg
}

// Recv reads the next frame off the wire. Only the receiving party of
// dir may call it; transport failures panic with *TransportError.
func (c *NetConn) Recv(dir Direction) *Message {
	if dir.Receiver() != c.party {
		panic(fmt.Sprintf("comm: %v cannot receive in direction %v", c.party, dir))
	}
	msg, err := ReadFrame(c.rw)
	if err != nil {
		panic(&TransportError{Op: "recv", Err: err})
	}
	c.record(dir, int64(len(msg.Bytes()))*8, "")
	c.wireBytes += int64(len(msg.Bytes())) + 4
	return msg
}

// Stats returns the cost observed at this endpoint. Every protocol
// message passes through the endpoint (sent or received), so this is
// the full execution cost.
func (c *NetConn) Stats() Stats { return c.stats }

// Trace returns the per-message log. Labels are endpoint metadata, not
// payload, so received messages carry empty labels.
func (c *NetConn) Trace() []MessageInfo { return c.trace }

// WireBytes returns the total bytes moved over the stream including the
// 4-byte frame headers — the operational (as opposed to model) cost.
func (c *NetConn) WireBytes() int64 { return c.wireBytes }

// pairState is the shared half of an in-process transport pair: one
// queue per direction plus accounting identical to Conn's.
type pairState struct {
	mu   sync.Mutex
	cond *sync.Cond
	tally
	queues [2][]*Message
	done   [2]bool
}

// PairConn is one party's endpoint of an in-process transport pair
// created by Pair. The two endpoints share their accounting, so Stats
// on either returns the full execution cost.
type PairConn struct {
	st    *pairState
	party Party
}

// Pair returns connected in-process endpoints for Alice and Bob. Party
// drivers run one per goroutine; delivery is a per-direction FIFO with
// the exact bit/round accounting of the in-process Conn, so a protocol
// split across a Pair costs precisely what its interleaved simulation
// reports.
func Pair() (alice, bob *PairConn) {
	st := &pairState{}
	st.cond = sync.NewCond(&st.mu)
	return &PairConn{st: st, party: Alice}, &PairConn{st: st, party: Bob}
}

// Party returns which side of the protocol this endpoint drives.
func (p *PairConn) Party() Party { return p.party }

// Send enqueues msg for the peer. Only the sending party of dir may
// call it.
func (p *PairConn) Send(dir Direction, msg *Message) *Message {
	if dir.Sender() != p.party {
		panic(fmt.Sprintf("comm: %v cannot send in direction %v", p.party, dir))
	}
	st := p.st
	st.mu.Lock()
	st.record(dir, int64(len(msg.Bytes()))*8, msg.Label)
	msg.pos = 0
	st.queues[dir] = append(st.queues[dir], msg)
	st.cond.Broadcast()
	st.mu.Unlock()
	return msg
}

// Recv dequeues the next message in direction dir, blocking until the
// peer sends one. If the peer finishes (Finish) with nothing queued,
// Recv panics with *TransportError, mirroring a closed connection.
func (p *PairConn) Recv(dir Direction) *Message {
	if dir.Receiver() != p.party {
		panic(fmt.Sprintf("comm: %v cannot receive in direction %v", p.party, dir))
	}
	st := p.st
	st.mu.Lock()
	defer st.mu.Unlock()
	peer := dir.Sender()
	for len(st.queues[dir]) == 0 && !st.done[peer] {
		st.cond.Wait()
	}
	if len(st.queues[dir]) == 0 {
		panic(&TransportError{Op: "recv", Err: fmt.Errorf("peer %v terminated", peer)})
	}
	msg := st.queues[dir][0]
	st.queues[dir] = st.queues[dir][1:]
	return msg
}

// Finish marks this party's driver as terminated, waking a peer blocked
// in Recv (which then fails instead of deadlocking). Messages already
// queued remain receivable.
func (p *PairConn) Finish() {
	st := p.st
	st.mu.Lock()
	st.done[p.party] = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Stats returns the shared accumulated cost of the execution.
func (p *PairConn) Stats() Stats {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	return p.st.stats
}

// Trace returns a copy of the shared per-message log.
func (p *PairConn) Trace() []MessageInfo {
	p.st.mu.Lock()
	defer p.st.mu.Unlock()
	return append([]MessageInfo(nil), p.st.trace...)
}
