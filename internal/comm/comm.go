package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/intmat"
)

// Direction identifies who is sending a message.
type Direction int

// The two message directions.
const (
	AliceToBob Direction = iota
	BobToAlice
)

// String names the direction for traces and error messages.
func (d Direction) String() string {
	if d == AliceToBob {
		return "Alice→Bob"
	}
	return "Bob→Alice"
}

// Stats aggregates the cost of a protocol execution.
type Stats struct {
	BitsAliceToBob int64 // payload bits sent by Alice
	BitsBobToAlice int64 // payload bits sent by Bob
	Messages       int   // number of Send calls
	Rounds         int   // number of direction alternations (maximal one-way blocks)
}

// TotalBits returns the total communication in bits.
func (s Stats) TotalBits() int64 { return s.BitsAliceToBob + s.BitsBobToAlice }

// String formats the cost summary in one line.
func (s Stats) String() string {
	return fmt.Sprintf("bits=%d (A→B %d, B→A %d), rounds=%d, messages=%d",
		s.TotalBits(), s.BitsAliceToBob, s.BitsBobToAlice, s.Rounds, s.Messages)
}

// MessageInfo describes one transmitted message for tracing.
type MessageInfo struct {
	// Direction is who sent the message.
	Direction Direction
	// Bits is the message's payload size.
	Bits int64
	// Round is the round the message belonged to.
	Round int
	// Label is the sender's annotation of what the message carries.
	Label string
}

// Conn is a two-party connection that accounts communication. The zero
// value is ready to use. Conn implements Transport: it is the in-process
// simulation, where both parties run interleaved in one function and
// Send hands the payload straight to the receiving code.
type Conn struct {
	stats   Stats
	lastDir Direction
	started bool
	trace   []MessageInfo
	pending [2]*Message
}

// NewConn returns a fresh connection with zeroed counters.
func NewConn() *Conn { return &Conn{} }

// Trace returns the per-message log of the execution so far: direction,
// size, round and the label the protocol attached (via Message.Label).
func (c *Conn) Trace() []MessageInfo { return c.trace }

// Send accounts for the transmission of msg in the given direction and
// returns a reader positioned at the start of the payload. In this
// in-process simulation the receiver reads the same buffer; Send is the
// single point where cost is recorded, so protocols must route every
// exchanged byte through it.
func (c *Conn) Send(dir Direction, msg *Message) *Message {
	bits := int64(len(msg.buf)) * 8
	if dir == AliceToBob {
		c.stats.BitsAliceToBob += bits
	} else {
		c.stats.BitsBobToAlice += bits
	}
	c.stats.Messages++
	if !c.started || c.lastDir != dir {
		c.stats.Rounds++
		c.lastDir = dir
		c.started = true
	}
	c.trace = append(c.trace, MessageInfo{
		Direction: dir,
		Bits:      bits,
		Round:     c.stats.Rounds,
		Label:     msg.Label,
	})
	msg.pos = 0
	c.pending[dir] = msg
	return msg
}

// Recv returns the message most recently Sent in direction dir, with
// the read cursor rewound — the receiving party's view in the
// in-process simulation. It panics if nothing is pending: interleaved
// protocol code receiving before the matching Send is an implementation
// bug, never a runtime condition.
func (c *Conn) Recv(dir Direction) *Message {
	msg := c.pending[dir]
	if msg == nil {
		panic("comm: Recv with no pending message in direction " + dir.String())
	}
	c.pending[dir] = nil
	msg.pos = 0
	return msg
}

// Stats returns the accumulated cost.
func (c *Conn) Stats() Stats { return c.stats }

// Message is an append-only byte buffer with typed write helpers and a
// read cursor with matching typed read helpers. Protocols build a Message,
// Send it, and the peer reads it back field by field. Reads past the end
// or of the wrong framing panic: a malformed message is always a protocol
// implementation bug, never a runtime condition.
type Message struct {
	// Label optionally names the message's role ("row sketches",
	// "sampled rows", …) for the connection trace. It is metadata, not
	// payload, and costs no bits.
	Label string

	buf []byte
	pos int
}

// NewMessage returns an empty message.
func NewMessage() *Message { return &Message{} }

// checkLen panics unless n elements of at least elemBytes each can still
// be read. It runs before any length-prefixed allocation so a corrupt
// prefix cannot demand unbounded memory.
func (m *Message) checkLen(n, elemBytes int) {
	if n < 0 || elemBytes <= 0 || n > (len(m.buf)-m.pos)/elemBytes {
		panic("comm: length prefix exceeds payload")
	}
}

// Len returns the current payload size in bytes.
func (m *Message) Len() int { return len(m.buf) }

// PutUvarint appends an unsigned varint.
func (m *Message) PutUvarint(v uint64) {
	m.buf = binary.AppendUvarint(m.buf, v)
}

// Uvarint reads an unsigned varint.
func (m *Message) Uvarint() uint64 {
	v, n := binary.Uvarint(m.buf[m.pos:])
	if n <= 0 {
		panic("comm: malformed uvarint")
	}
	m.pos += n
	return v
}

// PutVarint appends a signed varint (zig-zag).
func (m *Message) PutVarint(v int64) {
	m.buf = binary.AppendVarint(m.buf, v)
}

// Varint reads a signed varint.
func (m *Message) Varint() int64 {
	v, n := binary.Varint(m.buf[m.pos:])
	if n <= 0 {
		panic("comm: malformed varint")
	}
	m.pos += n
	return v
}

// PutInt appends a signed integer as a varint; convenience for ints.
func (m *Message) PutInt(v int) { m.PutVarint(int64(v)) }

// Int reads an integer written by PutInt.
func (m *Message) Int() int { return int(m.Varint()) }

// PutFloat64 appends a float64 as 8 bytes.
func (m *Message) PutFloat64(v float64) {
	m.buf = binary.LittleEndian.AppendUint64(m.buf, math.Float64bits(v))
}

// Float64 reads a float64.
func (m *Message) Float64() float64 {
	if m.pos+8 > len(m.buf) {
		panic("comm: truncated float64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(m.buf[m.pos:]))
	m.pos += 8
	return v
}

// PutFloat64Slice appends a length-prefixed vector of float64s
// (8 bytes per entry — the "word" of the paper's word model).
func (m *Message) PutFloat64Slice(v []float64) {
	m.PutUvarint(uint64(len(v)))
	for _, x := range v {
		m.PutFloat64(x)
	}
}

// Float64Slice reads a vector written by PutFloat64Slice.
func (m *Message) Float64Slice() []float64 {
	n := int(m.Uvarint())
	m.checkLen(n, 8)
	out := make([]float64, n)
	for i := range out {
		out[i] = m.Float64()
	}
	return out
}

// PutUint64 appends a fixed 8-byte unsigned integer (used for field
// elements, where values are uniform over ~2^61 and varints would not
// compress anyway).
func (m *Message) PutUint64(v uint64) {
	m.buf = binary.LittleEndian.AppendUint64(m.buf, v)
}

// Uint64 reads a fixed 8-byte unsigned integer.
func (m *Message) Uint64() uint64 {
	if m.pos+8 > len(m.buf) {
		panic("comm: truncated uint64")
	}
	v := binary.LittleEndian.Uint64(m.buf[m.pos:])
	m.pos += 8
	return v
}

// PutUint64Slice appends a length-prefixed slice of fixed 8-byte values.
func (m *Message) PutUint64Slice(v []uint64) {
	m.PutUvarint(uint64(len(v)))
	for _, x := range v {
		m.PutUint64(x)
	}
}

// Uint64Slice reads a slice written by PutUint64Slice.
func (m *Message) Uint64Slice() []uint64 {
	n := int(m.Uvarint())
	m.checkLen(n, 8)
	out := make([]uint64, n)
	for i := range out {
		out[i] = m.Uint64()
	}
	return out
}

// PutVarintSlice appends a length-prefixed slice of signed varints.
func (m *Message) PutVarintSlice(v []int64) {
	m.PutUvarint(uint64(len(v)))
	for _, x := range v {
		m.PutVarint(x)
	}
}

// VarintSlice reads a slice written by PutVarintSlice.
func (m *Message) VarintSlice() []int64 {
	n := int(m.Uvarint())
	m.checkLen(n, 1)
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Varint()
	}
	return out
}

// PutBitmap appends an n-bit bitmap packed into ⌈n/8⌉ bytes. This is the
// cheapest encoding of a dense Boolean row (n bits, as the paper counts).
func (m *Message) PutBitmap(bits []bool) {
	m.PutUvarint(uint64(len(bits)))
	b := byte(0)
	for i, v := range bits {
		if v {
			b |= 1 << uint(i%8)
		}
		if i%8 == 7 {
			m.buf = append(m.buf, b)
			b = 0
		}
	}
	if len(bits)%8 != 0 {
		m.buf = append(m.buf, b)
	}
}

// Bitmap reads a bitmap written by PutBitmap.
func (m *Message) Bitmap() []bool {
	n := int(m.Uvarint())
	nb := (n + 7) / 8
	if m.pos+nb > len(m.buf) {
		panic("comm: truncated bitmap")
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = m.buf[m.pos+i/8]&(1<<uint(i%8)) != 0
	}
	m.pos += nb
	return out
}

// PutWordBitmap appends an n-bit bitmap given as packed uint64 words,
// avoiding a []bool round trip for bit-matrix rows.
func (m *Message) PutWordBitmap(words []uint64, nbits int) {
	m.PutUvarint(uint64(nbits))
	nb := (nbits + 7) / 8
	for i := 0; i < nb; i++ {
		m.buf = append(m.buf, byte(words[i/8]>>uint(8*(i%8))))
	}
}

// WordBitmap reads a bitmap into packed uint64 words.
func (m *Message) WordBitmap() (words []uint64, nbits int) {
	nbits = int(m.Uvarint())
	nb := (nbits + 7) / 8
	if m.pos+nb > len(m.buf) {
		panic("comm: truncated bitmap")
	}
	words = make([]uint64, (nbits+63)/64)
	for i := 0; i < nb; i++ {
		words[i/8] |= uint64(m.buf[m.pos+i]) << uint(8*(i%8))
	}
	m.pos += nb
	return words, nbits
}

// PutIndexList appends a strictly increasing list of indices using delta
// varint coding — the natural encoding of "the set of rows containing item
// j" exchanged in Algorithms 2 and 3.
func (m *Message) PutIndexList(idx []int) {
	m.PutUvarint(uint64(len(idx)))
	prev := -1
	for _, v := range idx {
		if v <= prev {
			panic("comm: PutIndexList requires strictly increasing indices")
		}
		m.PutUvarint(uint64(v - prev))
		prev = v
	}
}

// IndexList reads a list written by PutIndexList.
func (m *Message) IndexList() []int {
	n := int(m.Uvarint())
	m.checkLen(n, 1)
	out := make([]int, n)
	prev := -1
	for i := range out {
		prev += int(m.Uvarint())
		out[i] = prev
	}
	return out
}

// PutSparse appends a sparse integer matrix: dimensions, nnz, then
// row-major (delta-row, col, value) triples with varint coding.
func (m *Message) PutSparse(s *intmat.Sparse) {
	entries := s.Entries()
	m.PutUvarint(uint64(s.Rows()))
	m.PutUvarint(uint64(s.Cols()))
	m.PutUvarint(uint64(len(entries)))
	prevRow := 0
	for _, e := range entries {
		m.PutUvarint(uint64(e.I - prevRow))
		prevRow = e.I
		m.PutUvarint(uint64(e.J))
		m.PutVarint(e.V)
	}
}

// Sparse reads a matrix written by PutSparse.
func (m *Message) Sparse() *intmat.Sparse {
	rows := int(m.Uvarint())
	cols := int(m.Uvarint())
	nnz := int(m.Uvarint())
	m.checkLen(nnz, 3) // at least one byte each for row delta, col, value
	entries := make([]intmat.Entry, nnz)
	row := 0
	for i := range entries {
		row += int(m.Uvarint())
		j := int(m.Uvarint())
		v := m.Varint()
		entries[i] = intmat.Entry{I: row, J: j, V: v}
	}
	return intmat.NewSparse(rows, cols, entries)
}

// PutFloatMatrix appends an r×c float64 matrix given as a flat row-major
// slice (8·r·c bytes plus dimension prefix). Used for sketch transmissions
// such as S·Bᵀ.
func (m *Message) PutFloatMatrix(rows, cols int, data []float64) {
	if len(data) != rows*cols {
		panic("comm: PutFloatMatrix shape mismatch")
	}
	m.PutUvarint(uint64(rows))
	m.PutUvarint(uint64(cols))
	for _, x := range data {
		m.PutFloat64(x)
	}
}

// FloatMatrix reads a matrix written by PutFloatMatrix.
func (m *Message) FloatMatrix() (rows, cols int, data []float64) {
	rows = int(m.Uvarint())
	cols = int(m.Uvarint())
	if rows < 0 || cols < 0 || (cols != 0 && rows > (1<<31)/cols) {
		panic("comm: matrix dimensions exceed payload")
	}
	m.checkLen(rows*cols, 8)
	data = make([]float64, rows*cols)
	for i := range data {
		data[i] = m.Float64()
	}
	return rows, cols, data
}

// Remaining reports how many unread bytes are left; protocols use it in
// tests to assert messages are fully consumed.
func (m *Message) Remaining() int { return len(m.buf) - m.pos }

// Bytes returns the serialized payload of the message. Together with
// FromBytes it lets callers move messages across real transports
// (sockets, pipes) instead of the in-process connection.
func (m *Message) Bytes() []byte { return m.buf }

// FromBytes wraps a received payload as a readable message.
func FromBytes(payload []byte) *Message { return &Message{buf: payload} }
