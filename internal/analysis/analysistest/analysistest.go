// Package analysistest runs a go/analysis analyzer over GOPATH-style
// fixture packages and checks its diagnostics against // want
// expectations, mirroring the golang.org/x/tools/go/analysis/analysistest
// API surface the repository's analyzer tests need.
//
// It exists because the module vendors the Go toolchain's own copy of
// golang.org/x/tools (third_party/golang.org/x/tools), which ships the
// analysis framework and unitchecker driver but not the analysistest
// package. The harness loads fixtures from dir/src/<pkg>/*.go, resolves
// fixture-local imports (a fixture may stub net/http under
// dir/src/net/http) before falling back to compiling real standard
// library packages from source, and matches each diagnostic against the
// // want "regexp" comments on its line:
//
//	json.NewDecoder(r.Body) // want `raw json\.NewDecoder`
//
// Multiple expectations on one line each match one diagnostic. A
// diagnostic with no matching expectation, or an expectation no
// diagnostic matched, fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory, the root that Run's fixture packages resolve under.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package dir/src/<pkg>, runs a (and its
// Requires closure) over it, and reports any mismatch between the
// diagnostics and the fixtures' // want expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(dir)
	for _, pkg := range pkgs {
		lp, err := ld.load(pkg)
		if err != nil {
			t.Errorf("loading fixture package %s: %v", pkg, err)
			continue
		}
		diags, err := runAnalyzer(a, ld.fset, lp, map[*analysis.Analyzer]any{})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkg, err)
			continue
		}
		checkWants(t, ld.fset, lp.files, diags)
	}
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves fixture packages by import path with a
// fixture-local-first, standard-library-source fallback import chain.
type loader struct {
	dir   string
	fset  *token.FileSet
	cache map[string]*loadedPkg
	std   types.Importer
}

func newLoader(dir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		dir:   dir,
		fset:  fset,
		cache: make(map[string]*loadedPkg),
		std:   importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the fixture-first chain.
func (ld *loader) Import(path string) (*types.Package, error) {
	if lp, err := ld.load(path); err == nil {
		return lp.pkg, nil
	} else if _, statErr := os.Stat(filepath.Join(ld.dir, "src", path)); statErr == nil {
		return nil, err // the fixture exists but is broken: surface that
	}
	return ld.std.Import(path)
}

// load parses and type-checks the fixture package at dir/src/path.
func (ld *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.cache[path]; ok {
		return lp, nil
	}
	pkgDir := filepath.Join(ld.dir, "src", path)
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", pkgDir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(pkgDir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.cache[path] = lp
	return lp, nil
}

// runAnalyzer executes a's Requires closure, then a itself, collecting
// a's diagnostics.
func runAnalyzer(a *analysis.Analyzer, fset *token.FileSet, lp *loadedPkg, results map[*analysis.Analyzer]any) ([]analysis.Diagnostic, error) {
	for _, req := range a.Requires {
		if _, done := results[req]; done {
			continue
		}
		if _, err := runAnalyzer(req, fset, lp, results); err != nil {
			return nil, fmt.Errorf("prerequisite %s: %v", req.Name, err)
		}
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:          a,
		Fset:              fset,
		Files:             lp.files,
		Pkg:               lp.pkg,
		TypesInfo:         lp.info,
		TypesSizes:        types.SizesFor("gc", runtime.GOARCH),
		Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
		ResultOf:          results,
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return nil, err
	}
	results[a] = res
	return diags, nil
}

// expectation is one // want regexp on a fixture line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants matches diags against the fixtures' // want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWantPatterns(m[1])
				if err != nil {
					t.Errorf("%s:%d: bad want syntax: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

// parseWantPatterns splits a want payload into its quoted regexps:
// sequences of "double-quoted" (Go unquoting) or `backquoted` strings.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			u, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			raw, s = u, s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", s)
			}
			raw, s = s[1:end+1], s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = strings.TrimSpace(s)
	}
	return out, nil
}
