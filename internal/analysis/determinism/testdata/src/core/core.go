// Package core exercises the mpdeterminism analyzer inside one of its
// scoped protocol packages.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// Wall-clock reads are flagged in protocol code.
func wallClock() time.Duration {
	start := time.Now()      // want `wall-clock read time\.Now`
	return time.Since(start) // want `wall-clock read time\.Since`
}

// A waived wall-clock read is an audited exception.
func wallClockWaived() {
	_ = time.Now() //mp:nondeterministic-ok fixture: audited telemetry that never reaches a transcript
}

// The global math/rand stream is flagged; an explicitly seeded
// generator is the sanctioned source.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand generator \(rand\.Intn\)`
}

func seededRand() int {
	r := rand.New(rand.NewSource(1)) // explicit constructor: allowed
	return r.Intn(10)                // method on a local generator: allowed
}

// A slice built across map iterations inherits the map's random order.
func keysUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m { // want `map iteration order reaches a slice built across iterations`
		ks = append(ks, k)
	}
	return ks
}

// Sorting the collected slice canonicalizes the order: not flagged.
func keysSorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// A channel send per iteration publishes the random order.
func chanSend(m map[string]int, ch chan string) {
	for k := range m { // want `map iteration order reaches a channel send`
		ch <- k
	}
}

// Floating-point rounding depends on summation order.
func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order reaches a floating-point accumulation`
		sum += v
	}
	return sum
}

// Integer accumulation is exact and associative: not flagged.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// A positional write through a loop counter depends on visit order.
func positional(m map[int]string, out []string) {
	i := 0
	for _, v := range m { // want `map iteration order reaches a positional slice write`
		out[i] = v
		i++
	}
}

// A slot determined by the map key is order-independent.
func keyIndexed(m map[int]string, out []string) {
	for k, v := range m {
		out[k] = v
	}
}

// The waiver on the line above the range statement covers the loop.
func waivedRange(m map[string]int, ch chan int) {
	//mp:nondeterministic-ok fixture: the consumer is audited order-insensitive
	for _, v := range m {
		ch <- v
	}
}
