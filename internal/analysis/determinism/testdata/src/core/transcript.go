package core

// Transcript is the fixture stand-in for the protocol transcript: an
// append-only byte log whose exact contents the repository's parity
// tests pin byte-for-byte (sequential vs sharded, in-process vs TCP).
type Transcript struct{ buf []byte }

// AppendEntry emits one entry into the transcript.
func (t *Transcript) AppendEntry(key string, v int64) {
	t.buf = append(t.buf, key...)
}

// emitCounts reproduces the bug class the analyzer exists for: ranging
// over a map and emitting one transcript entry per key makes the
// transcript bytes depend on Go's randomized map iteration order — two
// identical runs of the same protocol produce different transcripts,
// and byte-identical parity breaks.
func emitCounts(t *Transcript, counts map[string]int64) {
	for k, v := range counts { // want `map iteration order reaches an emitting call \(AppendEntry\)`
		t.AppendEntry(k, v)
	}
}
