// Package time is a minimal fixture stub of the standard library's
// time package: just enough surface for the determinism fixtures to
// type-check without compiling the real package from source.
package time

// Time is a stub instant.
type Time struct{}

// Duration is a stub duration.
type Duration int64

func Now() Time             { return Time{} }
func Since(t Time) Duration { return 0 }
func Until(t Time) Duration { return 0 }

func (t Time) Sub(u Time) Duration { return 0 }
