// Package notproto is outside the protocol packages (core, sketch,
// comm): the analyzer's scope check must leave it alone even though it
// reads the wall clock and ranges over maps into slices.
package notproto

import "time"

func clock() time.Time { return time.Now() } // out of scope: no finding

func keys(m map[string]int) []string {
	var ks []string
	for k := range m { // out of scope: no finding
		ks = append(ks, k)
	}
	return ks
}
