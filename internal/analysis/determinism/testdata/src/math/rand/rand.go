// Package rand is a minimal fixture stub of math/rand: the global
// generator functions the analyzer flags plus the explicit-constructor
// path it allows.
package rand

// Source is a stub seeded entropy source.
type Source struct{}

// Rand is a stub explicit generator.
type Rand struct{}

func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Shuffle(n int, swap func(i, j int)) {}
func NewSource(seed int64) *Source       { return &Source{} }
func New(src *Source) *Rand              { return &Rand{} }

func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }
