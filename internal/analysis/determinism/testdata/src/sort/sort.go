// Package sort is a minimal fixture stub of the standard library's
// sort package, enough for the sorted-afterwards suppression fixtures.
package sort

func Ints(x []int)                                {}
func Strings(x []string)                          {}
func Slice(x any, less func(i, j int) bool)       {}
func SliceStable(x any, less func(i, j int) bool) {}
