// Package determinism defines the mpdeterminism analyzer: protocol
// packages must not introduce run-to-run nondeterminism that could
// reach a transcript.
//
// The paper's estimators are pinned by byte-identical transcript parity
// tests (sequential vs sharded execution, in-process vs TCP transport),
// so the protocol packages — core, sketch, comm — must be deterministic
// functions of (inputs, seed). Three classes of accidental
// nondeterminism are flagged:
//
//   - iteration over a map whose element order can leak into an
//     order-sensitive sink (a slice built across iterations, a channel
//     send, an emit/encode call, or a floating-point accumulation whose
//     rounding depends on summation order);
//   - wall-clock reads (time.Now, time.Since, time.Until);
//   - the global math/rand generators, whose stream is shared
//     process-wide and therefore perturbed by unrelated callers. All
//     randomness must flow from explicit seeded sources (internal/rng).
//
// A map range whose collected slice is afterwards passed to a sort.* or
// slices.Sort* call in the same function is not flagged: sorting
// restores a canonical order. Audited exceptions carry the
// //mp:nondeterministic-ok waiver on or directly above the flagged
// line.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directives"
	"repro/internal/analysis/mputil"
)

// Analyzer is the mpdeterminism go/analysis pass. It inspects only the
// protocol packages (core, sketch, comm) and skips test files.
var Analyzer = &analysis.Analyzer{
	Name: "mpdeterminism",
	Doc: "flag map-iteration order, wall-clock reads, and global math/rand use " +
		"in the protocol packages (core, sketch, comm), where any nondeterminism " +
		"can break byte-identical transcript reproducibility",
	Run: run,
}

// timeFuncs are the wall-clock reads flagged in protocol code.
var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand functions that build an explicit,
// locally seeded generator; they are allowed — only the package-level
// global-generator functions are flagged.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !mputil.PackageNamed(pass, "core", "sketch", "comm") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if mputil.IsTestFile(pass, f) {
			continue
		}
		dirs := directives.ParseFile(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, dirs, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, dirs, n.Body)
				}
			case *ast.FuncLit:
				// Function literals at package level (var initializers)
				// are not inside any FuncDecl; cover them too. Nested
				// literals are re-visited, which is harmless: findings
				// are deduplicated by position.
				if enclosingFuncDecl(pass, n) == nil {
					checkMapRanges(pass, dirs, n.Body)
				}
			}
			return true
		})
	}
	return nil, nil
}

// enclosingFuncDecl reports whether lit is lexically inside some
// function declaration of its file.
func enclosingFuncDecl(pass *analysis.Pass, lit *ast.FuncLit) *ast.FuncDecl {
	for _, f := range pass.Files {
		if f.Pos() <= lit.Pos() && lit.Pos() < f.End() {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= lit.Pos() && lit.Pos() < fd.End() {
					return fd
				}
			}
		}
	}
	return nil
}

// checkCall flags wall-clock reads and global math/rand use.
func checkCall(pass *analysis.Pass, dirs *directives.Map, call *ast.CallExpr) {
	fn := mputil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. on a local *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if timeFuncs[fn.Name()] && !dirs.Waived(call.Pos(), directives.NondeterministicOK) {
			pass.Reportf(call.Pos(), "wall-clock read time.%s in protocol code: transcripts must be "+
				"deterministic functions of (inputs, seed); derive timing outside the protocol "+
				"packages or annotate //mp:nondeterministic-ok with the audit reason", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] && !dirs.Waived(call.Pos(), directives.NondeterministicOK) {
			pass.Reportf(call.Pos(), "global math/rand generator (%s.%s) in protocol code: the shared "+
				"stream is perturbed by unrelated callers; draw from an explicitly seeded source "+
				"(internal/rng) or annotate //mp:nondeterministic-ok", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRanges flags map-range loops in body whose iteration order
// can reach an order-sensitive sink.
func checkMapRanges(pass *analysis.Pass, dirs *directives.Map, body *ast.BlockStmt) {
	// sortedObjs collects objects passed to a sort call anywhere in the
	// function: a slice built from a map range and then sorted has a
	// canonical order, so its builder loop is not flagged.
	sortedObjs := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := mputil.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id := mputil.RootIdent(arg); id != nil {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					sortedObjs[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if dirs.Waived(rng.Pos(), directives.NondeterministicOK) {
			return true
		}
		if reason := orderSink(pass, rng, sortedObjs); reason != "" {
			pass.Reportf(rng.Pos(), "map iteration order reaches %s: collect and sort the keys first "+
				"(or sort the result before it is used), or annotate //mp:nondeterministic-ok with "+
				"the audit reason", reason)
		}
		return true
	})
}

// orderSink scans a map-range body for a construct whose result depends
// on iteration order, returning a human-readable description of the
// first sink found (empty when the loop is order-insensitive).
func orderSink(pass *analysis.Pass, rng *ast.RangeStmt, sortedObjs map[types.Object]bool) string {
	info := pass.TypesInfo
	var found string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = "a channel send"
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" && mputil.IsBuiltinIdent(info, id) {
				// Builtin append growing a slice across iterations. If
				// the destination is sorted later in the function the
				// order is canonicalized and the loop is fine.
				if len(n.Args) > 0 {
					if dst := mputil.RootIdent(n.Args[0]); dst != nil {
						if obj := info.Uses[dst]; obj != nil && sortedObjs[obj] {
							return true
						}
					}
				}
				found = "a slice built across iterations (append)"
				return false
			}
			if fn := mputil.CalleeFunc(info, n); fn != nil && emitName(fn.Name()) {
				found = "an emitting call (" + fn.Name() + ")"
			}
		case *ast.AssignStmt:
			// Order-sensitive accumulations and positional writes.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN || n.Tok == token.QUO_ASSIGN {
				for _, lhs := range n.Lhs {
					if t := info.TypeOf(lhs); t != nil && mputil.IsFloat(t) {
						found = "a floating-point accumulation (rounding depends on summation order)"
						return false
					}
				}
			}
			if n.Tok == token.ASSIGN {
				for _, lhs := range n.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						if t := info.TypeOf(ix.X); t != nil {
							if _, isSlice := t.Underlying().(*types.Slice); isSlice && !indexIsRangeVar(info, ix.Index, rng) {
								found = "a positional slice write (index not derived from the map key)"
								return false
							}
						}
					}
				}
			}
		}
		return true
	})
	return found
}

// emitName reports whether a called function's name marks transcript or
// output emission.
func emitName(name string) bool {
	for _, p := range []string{"Write", "Encode", "Emit", "Send", "Push", "Append"} {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// indexIsRangeVar reports whether idx is exactly the range statement's
// key variable: s[k] = v inside `for k, v := range m` writes to a slot
// determined by the key, which is order-independent.
func indexIsRangeVar(info *types.Info, idx ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := ast.Unparen(idx).(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	kobj := info.Defs[key]
	return obj != nil && obj == kobj
}
