package determinism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "core", "notproto")
}

// TestMapOrderChangesTranscript demonstrates at runtime the failure
// mode the analyzer guards against: building a transcript by ranging
// over a map yields different byte sequences across passes over the
// same map, so a transcript emitted that way cannot be byte-identical
// run to run. With 16 keys and 100 passes, the probability of Go's
// randomized iteration producing one identical order every time is
// (1/16!)^99 — zero for all practical purposes.
func TestMapOrderChangesTranscript(t *testing.T) {
	m := make(map[string]int, 16)
	for i := 0; i < 16; i++ {
		m[string(rune('a'+i))] = i
	}
	transcript := func() string {
		var b []byte
		for k := range m {
			b = append(b, k...)
		}
		return string(b)
	}
	first := transcript()
	for i := 0; i < 100; i++ {
		if transcript() != first {
			return // orders diverged: the map-built transcript is not reproducible
		}
	}
	t.Fatalf("100 map-range passes produced the identical transcript %q; randomized iteration should have diverged", first)
}
