// Package sync is a minimal fixture stub of the standard library's
// sync package: the mutex types whose critical sections the analyzer
// derives.
package sync

// Mutex is a stub exclusive lock.
type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

// RWMutex is a stub reader/writer lock.
type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
