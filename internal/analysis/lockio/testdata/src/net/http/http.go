// Package http is a minimal fixture stub of net/http: the Client
// round-trip methods and package-level helpers the analyzer flags.
package http

// Client is a stub HTTP client.
type Client struct{}

// Request is a stub request.
type Request struct{}

// Response is a stub response.
type Response struct{}

func (c *Client) Do(req *Request) (*Response, error) { return nil, nil }
func (c *Client) Get(url string) (*Response, error)  { return nil, nil }

func Get(url string) (*Response, error)                         { return nil, nil }
func Post(url, contentType string, body any) (*Response, error) { return nil, nil }
