// Package gateway exercises the mplockio analyzer: data locks held
// across blocking I/O are flagged, waivers on the operation or on the
// Lock() of a deliberately coarse serialization lock are honored.
package gateway

import (
	"comm"
	"net/http"
	"svc"
	"sync"
	"time"
)

type state struct {
	mu    sync.Mutex
	topo  sync.RWMutex
	httpc *http.Client
	tr    *comm.Transport
	api   *svc.Client
	ch    chan int
	n     int
}

// fanout runs fn once per leg and waits for completion — closures
// passed to it execute while the caller's locks are held.
func fanout(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// A channel send inside the critical section blocks the lock; after
// the Unlock it is fine.
func (s *state) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while s\.mu is locked`
	s.mu.Unlock()
	s.ch <- v
}

// A deferred Unlock extends the region to the end of the function.
func (s *state) sleepUnderDeferredLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(1) // want `time\.Sleep while s\.mu is locked`
}

// HTTP round-trips through the client and the package helpers.
func (s *state) httpUnderLock(req *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.httpc.Do(req) // want `HTTP round-trip \(http\.Client\.Do\) while s\.mu is locked`
	http.Get("x")   // want `HTTP round-trip \(http\.Get\) while s\.mu is locked`
}

// A comm.Transport exchange under a read lock.
func (s *state) exchangeUnderLock(b []byte) {
	s.topo.RLock()
	defer s.topo.RUnlock()
	s.tr.Send(b) // want `transport exchange \(Transport\.Send\) while s\.topo is locked`
}

// A module-local typed-client call.
func (s *state) typedClientUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.api.Fetch("m") // want `typed-client HTTP call \(svc\.Client\.Fetch\) while s\.mu is locked`
}

// A closure handed to a fan-out helper runs while the lock is held.
func (s *state) fanoutUnderLock(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fanout(2, func(i int) {
		s.tr.Send(b) // want `transport exchange \(Transport\.Send\) while s\.mu is locked`
	})
}

// The waiver on the Lock() line marks a deliberately coarse
// serialization lock and waives the whole region.
func (s *state) coarseSerialization(b []byte) {
	s.mu.Lock() //mp:lockio-ok fixture: deliberately coarse serialization lock
	defer s.mu.Unlock()
	s.tr.Send(b)
	s.ch <- 1
}

// A single audited operation can be waived on its own line.
func (s *state) waivedOp(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v //mp:lockio-ok fixture: audited non-blocking (buffered, capacity checked upstream)
}

// Snapshot-then-send is the sanctioned shape: no finding.
func (s *state) cleanCopyThenSend(v int) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	s.ch <- n + v
}
