// Package time is a minimal fixture stub of the standard library's
// time package: just Sleep, the blocking call the analyzer flags.
package time

// Duration is a stub duration.
type Duration int64

func Sleep(d Duration) {}
