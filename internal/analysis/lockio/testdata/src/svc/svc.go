// Package svc is a fixture stand-in for a module-local typed HTTP
// client (the repro/service.Client shape): methods on a type named
// Client in a module-local package are treated as round-trips.
package svc

// Client is a typed API client whose methods perform HTTP round-trips.
type Client struct{}

func (c *Client) Fetch(name string) error { return nil }
