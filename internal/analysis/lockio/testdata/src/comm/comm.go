// Package comm is the fixture stand-in for the protocol transport
// package; the analyzer matches it by path suffix.
package comm

// Transport is a stub bidirectional message transport.
type Transport struct{}

func (t *Transport) Send(b []byte) error   { return nil }
func (t *Transport) Recv() ([]byte, error) { return nil, nil }
