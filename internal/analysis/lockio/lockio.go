// Package lockio defines the mplockio analyzer: no sync.Mutex or
// sync.RWMutex may be held across blocking I/O.
//
// The gateway serializes replicated row updates against the prober's
// heal passes with updMu, and the class of bug that discipline was
// hand-audited for — a data lock held across a transport exchange, an
// HTTP round-trip, or a channel send that can block on a user context —
// deadlocks or convoys the whole tier under exactly the failure
// conditions the gateway exists to absorb. The analyzer finds Lock()
// calls on sync mutexes, derives the held region (to the matching
// Unlock in the same statement sequence, or to the end of the function
// for the defer-Unlock idiom), and flags the blocking operations
// inside it:
//
//   - comm.Transport exchanges (Send/Recv on a comm type);
//   - net/http round-trips (http.Client methods, package-level http
//     helpers, RoundTrip) and calls through the repository's typed
//     HTTP clients (methods on a Client type from this module);
//   - channel sends and time.Sleep.
//
// Function literals inside the region are scanned too: closures passed
// to fan-out helpers run while the lock is held even when they execute
// on other goroutines, because the caller blocks on their completion.
// A deliberately coarse serialization lock (updMu) carries the
// //mp:lockio-ok waiver on its Lock() line, which waives the whole
// region; a single audited operation can be waived on its own line.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directives"
	"repro/internal/analysis/mputil"
)

// Analyzer is the mplockio go/analysis pass. It runs in every package
// and skips test files.
var Analyzer = &analysis.Analyzer{
	Name: "mplockio",
	Doc: "flag sync.Mutex/RWMutex critical sections that span blocking I/O " +
		"(comm.Transport exchanges, HTTP round-trips, typed-client calls, channel " +
		"sends, sleeps): locks guarding state must not convoy on the network",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if mputil.IsTestFile(pass, f) {
			continue
		}
		dirs := directives.ParseFile(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, dirs, n.Body)
				}
			case *ast.FuncLit:
				// Covered when nested inside a checked body; top-level
				// literals (var initializers) need their own walk.
				if !insideFuncDecl(f, n) {
					checkFunc(pass, dirs, n.Body)
				}
			}
			return true
		})
	}
	return nil, nil
}

func insideFuncDecl(f *ast.File, lit *ast.FuncLit) bool {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= lit.Pos() && lit.Pos() < fd.End() {
			return true
		}
	}
	return false
}

// lockRegion is one held critical section: the receiver expression's
// printed form, the Lock call position, and the region's end.
type lockRegion struct {
	recv    string
	lockPos token.Pos
	end     token.Pos
}

// checkFunc derives the lock-held regions of one function body and
// flags blocking operations inside them. Nested function literals are
// part of the enclosing body's position range and are scanned with it.
func checkFunc(pass *analysis.Pass, dirs *directives.Map, body *ast.BlockStmt) {
	var regions []lockRegion
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv := syncMutexCall(pass.TypesInfo, call)
		if name != "Lock" && name != "RLock" {
			return true
		}
		regions = append(regions, lockRegion{
			recv:    recv,
			lockPos: call.Pos(),
			end:     regionEnd(pass, body, call, recv),
		})
		return true
	})
	if len(regions) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		pos, desc := blockingOp(pass.TypesInfo, n)
		if desc == "" {
			return true
		}
		for _, r := range regions {
			if pos <= r.lockPos || pos >= r.end {
				continue
			}
			if dirs.Waived(pos, directives.LockIOOK) || dirs.Waived(r.lockPos, directives.LockIOOK) {
				continue
			}
			pass.Reportf(pos, "%s while %s is locked (held since line %d): release the lock before "+
				"blocking I/O, or annotate //mp:lockio-ok on this line or on the Lock() of a "+
				"deliberately coarse serialization lock", desc, r.recv,
				pass.Fset.Position(r.lockPos).Line)
		}
		return true
	})
}

// syncMutexCall reports the method name and printed receiver when call
// is a method call on a sync.Mutex or sync.RWMutex value (directly or
// through an embedded field).
func syncMutexCall(info *types.Info, call *ast.CallExpr) (name, recv string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	named := mputil.RecvNamed(fn)
	if named == nil {
		return "", ""
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", ""
	}
	return fn.Name(), types.ExprString(sel.X)
}

// regionEnd finds where the critical section opened by lockCall ends:
// at the first subsequent Unlock/RUnlock call on the same printed
// receiver (a deferred one extends the region to the end of body).
func regionEnd(pass *analysis.Pass, body *ast.BlockStmt, lockCall *ast.CallExpr, recv string) token.Pos {
	end := body.End()
	ast.Inspect(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch n := n.(type) {
		case *ast.DeferStmt:
			call, deferred = n.Call, true
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		if call.Pos() > lockCall.Pos() {
			name, r := syncMutexCall(pass.TypesInfo, call)
			if (name == "Unlock" || name == "RUnlock") && r == recv && !deferred && call.Pos() < end {
				end = call.Pos()
			}
		}
		// A deferred unlock extends the region to the function's end;
		// do not descend into the defer, or its call would be revisited
		// as a plain (non-deferred) CallExpr and collapse the region.
		return !deferred
	})
	return end
}

// transportMethods are the comm.Transport exchange calls.
var transportMethods = map[string]bool{"Send": true, "Recv": true}

// httpClientMethods are the round-trip entry points on *http.Client
// (and the equally named package-level helpers).
var httpClientMethods = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

// blockingOp classifies n as a blocking operation, returning its
// position and a description (empty when n does not block).
func blockingOp(info *types.Info, n ast.Node) (token.Pos, string) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return n.Pos(), "channel send"
	case *ast.CallExpr:
		fn := mputil.CalleeFunc(info, n)
		if fn == nil || fn.Pkg() == nil {
			return token.NoPos, ""
		}
		path := fn.Pkg().Path()
		recv := mputil.RecvNamed(fn)
		switch {
		case recv == nil && path == "time" && fn.Name() == "Sleep":
			return n.Pos(), "time.Sleep"
		case recv == nil && path == "net/http" && httpClientMethods[fn.Name()]:
			return n.Pos(), "HTTP round-trip (http." + fn.Name() + ")"
		case recv != nil && path == "net/http" && recv.Obj().Name() == "Client" && httpClientMethods[fn.Name()]:
			return n.Pos(), "HTTP round-trip (http.Client." + fn.Name() + ")"
		case fn.Name() == "RoundTrip":
			return n.Pos(), "HTTP round-trip (RoundTrip)"
		case recv != nil && transportMethods[fn.Name()] && commPackage(path):
			return n.Pos(), "transport exchange (" + recv.Obj().Name() + "." + fn.Name() + ")"
		case recv != nil && recv.Obj().Name() == "Client" && moduleLocal(path):
			return n.Pos(), "typed-client HTTP call (" + path + ".Client." + fn.Name() + ")"
		}
	}
	return token.NoPos, ""
}

// commPackage matches the protocol transport package (and fixture
// packages named comm).
func commPackage(path string) bool { return mputil.PkgPathIs(path, "internal/comm") || path == "comm" }

// moduleLocal matches this module's packages (and analysistest fixture
// packages, whose synthetic paths are bare single-segment names).
func moduleLocal(path string) bool {
	return strings.HasPrefix(path, "repro/") ||
		(!strings.Contains(path, "/") && !strings.Contains(path, "."))
}
