package lockio_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockio"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockio.Analyzer, "gateway")
}
