// Package wirediscipline defines the mpwire analyzer: HTTP handlers in
// the service and gateway tiers must speak through the sanctioned wire
// helpers.
//
// DecodeRequest/DecodeJSON enforce the body-size limit with the real
// ResponseWriter (over-limit bodies map to 413, and net/http needs the
// writer to flag the connection for close), reject unknown fields,
// negotiate the binary wire format off Content-Type (unsupported types
// map to 415), and fold decode failures into the tier's error
// vocabulary; WriteReply/WriteJSON/WriteError keep content negotiation,
// the {"error": {"code", "message"}} envelope, and the error→status
// mapping uniform across every endpoint of both tiers. A handler that
// reaches for json.NewDecoder(r.Body), json.NewEncoder(w), http.Error,
// or a raw io.ReadAll of the request body re-opens every one of those
// seams, so the analyzer flags them. The codec helpers themselves are
// the only sanctioned raw uses and carry the //mp:rawwire-ok waiver.
package wirediscipline

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directives"
	"repro/internal/analysis/mputil"
)

// Analyzer is the mpwire go/analysis pass. It inspects the service and
// gateway packages and skips test files.
var Analyzer = &analysis.Analyzer{
	Name: "mpwire",
	Doc: "require service/gateway handlers to use DecodeRequest/WriteReply/WriteError " +
		"(or their JSON-only forms) instead of raw json.NewEncoder/json.NewDecoder/io.ReadAll " +
		"on HTTP bodies or http.Error, keeping the 413/415 body semantics, content " +
		"negotiation, and error-envelope mapping uniform",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !mputil.PackageNamed(pass, "service", "gateway") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if mputil.IsTestFile(pass, f) {
			continue
		}
		dirs := directives.ParseFile(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, dirs, call)
			return true
		})
	}
	return nil, nil
}

func checkCall(pass *analysis.Pass, dirs *directives.Map, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch {
	case mputil.IsPkgFunc(info, call, "net/http", "Error"):
		if !dirs.Waived(call.Pos(), directives.RawWireOK) {
			pass.Reportf(call.Pos(), "http.Error bypasses the uniform {\"error\": …} body and "+
				"error→status mapping: use WriteError (or annotate //mp:rawwire-ok inside the "+
				"sanctioned helpers)")
		}
	case mputil.IsPkgFunc(info, call, "encoding/json", "NewEncoder"):
		if touchesResponseWriter(info, call.Args) && !dirs.Waived(call.Pos(), directives.RawWireOK) {
			pass.Reportf(call.Pos(), "raw json.NewEncoder on the ResponseWriter bypasses WriteJSON's "+
				"uniform content type and status handling: use WriteJSON (or annotate "+
				"//mp:rawwire-ok inside the sanctioned helpers)")
		}
	case mputil.IsPkgFunc(info, call, "encoding/json", "NewDecoder"):
		if touchesRequestBody(info, call.Args) && !dirs.Waived(call.Pos(), directives.RawWireOK) {
			pass.Reportf(call.Pos(), "raw json.NewDecoder on the request body bypasses DecodeJSON's "+
				"body-size limit (413), unknown-field rejection, and error mapping: use DecodeJSON "+
				"(or annotate //mp:rawwire-ok inside the sanctioned helpers)")
		}
	case mputil.IsPkgFunc(info, call, "io", "ReadAll"):
		if touchesRequestBody(info, call.Args) && !dirs.Waived(call.Pos(), directives.RawWireOK) {
			pass.Reportf(call.Pos(), "raw io.ReadAll on the request body bypasses DecodeRequest's "+
				"body-size limit (413), content negotiation (415), and pooled decode buffers: use "+
				"DecodeRequest (or annotate //mp:rawwire-ok inside the sanctioned codec helpers)")
		}
	}
}

// touchesResponseWriter reports whether any argument subtree contains a
// value of type net/http.ResponseWriter.
func touchesResponseWriter(info *types.Info, args []ast.Expr) bool {
	return anyExpr(args, func(e ast.Expr) bool {
		t := info.TypeOf(e)
		named, ok := t.(*types.Named)
		return ok && mputil.NamedFrom(named, "net/http", "ResponseWriter")
	})
}

// touchesRequestBody reports whether any argument subtree reads the
// Body of a *net/http.Request.
func touchesRequestBody(info *types.Info, args []ast.Expr) bool {
	return anyExpr(args, func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" {
			return false
		}
		t := info.TypeOf(sel.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && mputil.NamedFrom(named, "net/http", "Request")
	})
}

// anyExpr walks every expression subtree in args looking for a match.
func anyExpr(args []ast.Expr, match func(ast.Expr) bool) bool {
	found := false
	for _, a := range args {
		ast.Inspect(a, func(n ast.Node) bool {
			if found {
				return false
			}
			if e, ok := n.(ast.Expr); ok && match(e) {
				found = true
			}
			return !found
		})
	}
	return found
}
