// Package io is a minimal fixture stub of io: the whole-body slurp the
// analyzer flags when aimed at a request body.
package io

// ReadAll reads the stub reader to exhaustion.
func ReadAll(r any) ([]byte, error) { return nil, nil }
