// Package service exercises the mpwire analyzer inside one of its two
// scoped packages: raw wire primitives aimed at HTTP bodies are
// flagged, the sanctioned helpers carry the waiver.
package service

import (
	"encoding/json"
	"io"
	"net/http"
)

type reply struct{ N int }

// A handler reaching past the sanctioned helpers re-opens the 413
// body-limit, unknown-field, and error-mapping seams.
func handleRaw(w http.ResponseWriter, r *http.Request) {
	var req reply
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil { // want `raw json\.NewDecoder on the request body`
		http.Error(w, "bad request", 400) // want `http\.Error bypasses the uniform`
		return
	}
	json.NewEncoder(w).Encode(reply{N: req.N}) // want `raw json\.NewEncoder on the ResponseWriter`
}

// An encoder aimed at something other than the ResponseWriter is fine.
type writerBuffer struct{}

func marshalToBuffer(v any) error {
	var sink writerBuffer
	return json.NewEncoder(&sink).Encode(v)
}

// A Body field on a non-Request type is fine.
type payload struct{ Body any }

func decodeOther(p *payload) {
	json.NewDecoder(p.Body)
}

// A raw whole-body slurp skips the size limit and content negotiation.
func handleSlurp(w http.ResponseWriter, r *http.Request) {
	buf, _ := io.ReadAll(r.Body) // want `raw io\.ReadAll on the request body`
	_ = buf
}

// ReadAll of anything that is not a request body is fine.
func slurpOther(p *payload) {
	io.ReadAll(p.Body)
}

// The sanctioned helpers themselves are the only waived raw uses.
func decodeJSON(r *http.Request, v any) error {
	return json.NewDecoder(r.Body).Decode(v) //mp:rawwire-ok fixture: this IS the sanctioned decode helper
}

func decodeBinaryBody(r *http.Request, v any) error {
	_, err := io.ReadAll(r.Body) //mp:rawwire-ok fixture: this IS the sanctioned binary decode helper
	return err
}

func writeJSON(w http.ResponseWriter, v any) error {
	return json.NewEncoder(w).Encode(v) //mp:rawwire-ok fixture: this IS the sanctioned encode helper
}
