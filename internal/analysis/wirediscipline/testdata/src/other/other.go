// Package other is outside the wire-discipline scope (neither service
// nor gateway): raw wire primitives are fine here.
package other

import (
	"encoding/json"
	"io"
	"net/http"
)

func raw(w http.ResponseWriter, r *http.Request) {
	json.NewDecoder(r.Body) // out of scope: no finding
	json.NewEncoder(w)      // out of scope: no finding
	http.Error(w, "x", 500) // out of scope: no finding
	io.ReadAll(r.Body)      // out of scope: no finding
}
