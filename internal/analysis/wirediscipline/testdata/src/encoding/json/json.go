// Package json is a minimal fixture stub of encoding/json: the
// streaming constructors the analyzer flags when aimed at HTTP bodies.
package json

// Encoder is the stub streaming encoder.
type Encoder struct{}

// Decoder is the stub streaming decoder.
type Decoder struct{}

func NewEncoder(w any) *Encoder { return &Encoder{} }
func NewDecoder(r any) *Decoder { return &Decoder{} }

func (e *Encoder) Encode(v any) error { return nil }
func (d *Decoder) Decode(v any) error { return nil }

func Marshal(v any) ([]byte, error) { return nil, nil }
