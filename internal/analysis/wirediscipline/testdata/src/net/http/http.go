// Package http is a minimal fixture stub of net/http: the
// ResponseWriter and Request shapes the analyzer types against, plus
// http.Error.
package http

// ResponseWriter is the stub response interface.
type ResponseWriter interface {
	Write(b []byte) (int, error)
	WriteHeader(statusCode int)
}

// Request is the stub request carrying a Body.
type Request struct {
	Body any
}

// Error writes a plain-text error response.
func Error(w ResponseWriter, error string, code int) {}
