package wirediscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wirediscipline"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wirediscipline.Analyzer, "service", "other")
}
