// Package hotpath defines the mphotpath analyzer: functions annotated
// //mp:hotpath must satisfy the metrics layer's cost contract.
//
// DESIGN.md promises that observability costs under 1% of the cheapest
// request: per served query the hot path performs two histogram
// observations and acquires no locks and allocates nothing. The
// annotation marks the functions that promise — the metrics observe
// paths, the sketch-cache lookup, the per-backend result fold — and the
// analyzer mechanically rejects the constructs that would erode it:
//
//   - composite literals, make/new/append, closures, and string
//     concatenation (heap allocations);
//   - any call into package fmt (allocates and reflects);
//   - conversions of concrete values into interfaces, explicit or at a
//     call boundary (the value escapes to the heap unless the runtime
//     happens to cache it — waive the audited cases with //mp:alloc-ok);
//   - method calls on package sync types other than sync.Pool's
//     Get/Put, and sync/atomic excepted (mutex acquisition beyond the
//     allowed set — waive audited O(1) critical sections with
//     //mp:lock-ok).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directives"
	"repro/internal/analysis/mputil"
)

// Analyzer is the mphotpath go/analysis pass. It runs in every package
// but only inspects functions annotated //mp:hotpath.
var Analyzer = &analysis.Analyzer{
	Name: "mphotpath",
	Doc: "enforce the zero-alloc/zero-lock cost contract inside functions annotated " +
		"//mp:hotpath: no composite literals, make/new/append, closures, string " +
		"concatenation, fmt calls, interface conversions, or sync acquisitions " +
		"beyond sync/atomic and sync.Pool",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if mputil.IsTestFile(pass, f) {
			continue
		}
		dirs := directives.ParseFile(pass.Fset, f)
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !dirs.IsHotpath(fn) {
				continue
			}
			checkFunc(pass, dirs, fn)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, dirs *directives.Map, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	report := func(pos token.Pos, waiver, format string, args ...any) {
		if dirs.Waived(pos, waiver) {
			return
		}
		args = append(args, fn.Name.Name, waiver)
		pass.Reportf(pos, format+" in //mp:hotpath function %s (annotate //%s with the audit reason if deliberate)", args...)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			report(n.Pos(), directives.AllocOK, "composite literal allocates")
		case *ast.FuncLit:
			report(n.Pos(), directives.AllocOK, "closure allocates")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), directives.AllocOK, "string concatenation allocates")
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				for _, lhs := range n.Lhs {
					if t := info.TypeOf(lhs); t != nil {
						if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
							report(n.Pos(), directives.AllocOK, "string concatenation allocates")
						}
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, report, n)
		}
		return true
	})
}

// allowedSyncMethods are the package sync methods the hot path may
// call: sync.Pool hands out the stripe indices that make lock-free
// observation possible in internal/metrics.
var allowedSyncMethods = map[string]bool{"Get": true, "Put": true}

// mutexMethods are the blocking acquisitions flagged on any sync type
// outside the allowed set. Releases (Unlock) are not listed: flagging
// the Lock already marks the critical section once.
var mutexMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
	"Wait": true, "Do": true,
}

func checkCall(pass *analysis.Pass, report func(token.Pos, string, string, ...any), call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && mputil.IsBuiltinIdent(info, id) {
		switch id.Name {
		case "make", "new", "append":
			report(call.Pos(), directives.AllocOK, "builtin "+id.Name+" allocates")
			return
		}
	}
	// Explicit conversion to an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if mputil.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !mputil.IsInterface(at) {
				report(call.Pos(), directives.AllocOK, "conversion to interface escapes its operand")
			}
		}
		return
	}
	fn := mputil.CalleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			report(call.Pos(), directives.AllocOK, "fmt call allocates")
			return
		case "sync":
			recv := mputil.RecvNamed(fn)
			if recv != nil && recv.Obj().Name() == "Pool" && allowedSyncMethods[fn.Name()] {
				break // sync.Pool Get/Put: the sanctioned stripe-index path
			}
			if recv != nil && mutexMethods[fn.Name()] {
				report(call.Pos(), directives.LockOK, "sync."+recv.Obj().Name()+"."+fn.Name()+" acquisition beyond the allowed set")
				return
			}
		}
	}
	// Implicit interface conversions at the call boundary: a concrete
	// argument passed to an interface parameter escapes.
	sigType := info.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !mputil.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || mputil.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		report(arg.Pos(), directives.AllocOK, "concrete value passed as interface escapes")
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
