// Package hot exercises the mphotpath analyzer: only functions
// annotated //mp:hotpath are inspected, and every construct that
// erodes the zero-alloc/zero-lock contract is flagged inside them.
package hot

import (
	"fmt"
	"sync"
)

type counters struct {
	mu   sync.Mutex
	pool sync.Pool
	n    int64
	name string
}

// sink has an interface parameter: concrete arguments box.
func sink(v any) {}

// observe is a clean hot-path function: pure arithmetic, no findings.
//
//mp:hotpath
func (c *counters) observe(v int64) {
	c.n += v
}

// bad collects one instance of every allocation-class violation.
//
//mp:hotpath
func (c *counters) bad(v int64) string {
	s := struct{ v int64 }{v} // want `composite literal allocates`
	_ = s
	buf := make([]byte, 8) // want `builtin make allocates`
	_ = buf
	f := func() {} // want `closure allocates`
	f()
	c.mu.Lock() // want `sync\.Mutex\.Lock acquisition beyond the allowed set`
	c.mu.Unlock()
	msg := fmt.Sprintf("n=%d", c.n) // want `fmt call allocates`
	return c.name + msg             // want `string concatenation allocates`
}

// box converts a concrete value to an interface explicitly.
//
//mp:hotpath
func (c *counters) box(v int64) any {
	return any(v) // want `conversion to interface escapes its operand`
}

// pass boxes implicitly at a call boundary.
//
//mp:hotpath
func (c *counters) pass(v int64) {
	sink(v) // want `concrete value passed as interface escapes`
}

// stripe uses the sanctioned sync.Pool path; re-Putting the interface
// value from Get is fine, Putting a fresh concrete value boxes it.
//
//mp:hotpath
func (c *counters) stripe() int {
	if v := c.pool.Get(); v != nil {
		c.pool.Put(v)
		return 0
	}
	c.pool.Put(7) // want `concrete value passed as interface escapes`
	return 1
}

// waived carries the audited exceptions inline.
//
//mp:hotpath
func (c *counters) waived() {
	c.mu.Lock() //mp:lock-ok fixture: audited O(1) critical section
	c.n++
	c.mu.Unlock()
	b := make([]byte, 0, 8) //mp:alloc-ok fixture: audited not to escape
	_ = b
}

// The func-keyword-line annotation form is honored too.
func (c *counters) inlineAnnotated() { c.mu.Lock() } //mp:hotpath // want `sync\.Mutex\.Lock acquisition`

// snapshot is not annotated: allocation is fine off the hot path.
func (c *counters) snapshot() []int64 {
	return []int64{c.n}
}
