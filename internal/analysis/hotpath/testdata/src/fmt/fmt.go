// Package fmt is a minimal fixture stub of the standard library's fmt
// package; any call into it is flagged on the hot path.
package fmt

func Sprintf(format string, a ...any) string { return format }
func Errorf(format string, a ...any) error   { return nil }
