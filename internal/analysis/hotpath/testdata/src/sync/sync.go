// Package sync is a minimal fixture stub of the standard library's
// sync package: the mutex types the analyzer flags and the Pool type
// whose Get/Put it allows.
package sync

// Mutex is a stub exclusive lock.
type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

// RWMutex is a stub reader/writer lock.
type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

// Pool is a stub free-list; Get/Put are the allowed hot-path calls.
type Pool struct{}

func (p *Pool) Get() any  { return nil }
func (p *Pool) Put(x any) {}

// Once is a stub one-shot gate.
type Once struct{}

func (o *Once) Do(f func()) {}
