package directives_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/analysis/directives"
)

const src = `package p

//mp:hotpath
func a() {
	x := 1 //mp:lock-ok trailing waiver with a reason
	//mp:alloc-ok waiver alone on the line above
	y := 2
	_ = x
	_ = y
}

func b() {} //mp:hotpath

func c() {}
`

func parse(t *testing.T) (*token.FileSet, *ast.File, *directives.Map) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, directives.ParseFile(fset, f)
}

func funcs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}

func TestIsHotpath(t *testing.T) {
	_, f, m := parse(t)
	fns := funcs(f)
	if !m.IsHotpath(fns[0]) {
		t.Errorf("a: doc-comment //mp:hotpath not recognized")
	}
	if !m.IsHotpath(fns[1]) {
		t.Errorf("b: func-keyword-line //mp:hotpath not recognized")
	}
	if m.IsHotpath(fns[2]) {
		t.Errorf("c: unannotated function reported as hotpath")
	}
}

func TestWaived(t *testing.T) {
	_, f, m := parse(t)
	stmts := funcs(f)[0].Body.List
	xAssign, yAssign, xUse := stmts[0], stmts[1], stmts[2]

	if !m.Waived(xAssign.Pos(), directives.LockOK) {
		t.Errorf("trailing waiver on the same line not honored")
	}
	if !m.Waived(yAssign.Pos(), directives.AllocOK) {
		t.Errorf("waiver on the line directly above not honored")
	}
	if m.Waived(xUse.Pos(), directives.AllocOK) {
		t.Errorf("waiver leaked two lines down")
	}
	if m.Waived(xAssign.Pos(), directives.AllocOK) {
		t.Errorf("waiver of a different token honored")
	}
}
