// Package directives parses the //mp: comment directives that the
// repository's invariant analyzers (cmd/mpvet) understand: the
// //mp:hotpath annotation marking a function as subject to the
// zero-alloc/zero-lock cost contract, and the per-finding waiver
// comments that record an audited, deliberate exception to one of the
// enforced invariants.
//
// A waiver applies to a source line when the directive comment sits on
// that line (trailing) or alone on the line directly above it. Waivers
// should carry a justification after the directive token, e.g.:
//
//	start := time.Now() //mp:nondeterministic-ok busy-time telemetry never enters a transcript
//
// so the audit trail lives next to the exception it grants.
package directives

import (
	"go/ast"
	"go/token"
	"strings"
)

// The directive tokens. Each analyzer documents which waiver it honors.
const (
	// Hotpath marks a function's doc comment: the function is on the
	// measured hot path and must satisfy the mphotpath analyzer's
	// zero-alloc/zero-lock contract.
	Hotpath = "mp:hotpath"
	// NondeterministicOK waives an mpdeterminism finding: the flagged
	// nondeterminism is audited to never reach a transcript or output.
	NondeterministicOK = "mp:nondeterministic-ok"
	// FloatOrderOK waives an mpfloatorder finding: the flagged float
	// accumulation is audited to be order-insensitive.
	FloatOrderOK = "mp:floatorder-ok"
	// AllocOK waives an mphotpath allocation finding: the flagged
	// construct is audited not to allocate in practice.
	AllocOK = "mp:alloc-ok"
	// LockOK waives an mphotpath lock finding: the flagged acquisition
	// is part of the function's audited allowed set.
	LockOK = "mp:lock-ok"
	// LockIOOK waives an mplockio finding: holding the lock across the
	// flagged blocking operation is the audited design (serialization
	// locks like the gateway's updMu).
	LockIOOK = "mp:lockio-ok"
	// RawWireOK waives an mpwire finding: the flagged raw encoder or
	// error writer IS one of the sanctioned wire helpers.
	RawWireOK = "mp:rawwire-ok"
)

// Map indexes every //mp: directive comment of one file by the line it
// sits on.
type Map struct {
	fset  *token.FileSet
	lines map[int][]string // line -> directive tokens on that line
}

// ParseFile collects the //mp: directives of one parsed file. The file
// must have been parsed with comments retained.
func ParseFile(fset *token.FileSet, f *ast.File) *Map {
	m := &Map{fset: fset, lines: make(map[int][]string)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "mp:") {
				continue
			}
			tok := text
			if i := strings.IndexAny(tok, " \t"); i >= 0 {
				tok = tok[:i]
			}
			line := fset.Position(c.Pos()).Line
			m.lines[line] = append(m.lines[line], tok)
		}
	}
	return m
}

// Waived reports whether directive tok waives a finding at pos: the
// directive appears on the finding's line or on the line directly
// above it.
func (m *Map) Waived(pos token.Pos, tok string) bool {
	line := m.fset.Position(pos).Line
	return m.hasOn(line, tok) || m.hasOn(line-1, tok)
}

func (m *Map) hasOn(line int, tok string) bool {
	for _, t := range m.lines[line] {
		if t == tok {
			return true
		}
	}
	return false
}

// IsHotpath reports whether fn is annotated //mp:hotpath, either in
// its doc comment or on the line holding the func keyword.
func (m *Map) IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == Hotpath || strings.HasPrefix(text, Hotpath+" ") {
				return true
			}
		}
	}
	return m.hasOn(m.fset.Position(fn.Pos()).Line, Hotpath)
}
