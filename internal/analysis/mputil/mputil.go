// Package mputil holds the small type- and AST-query helpers shared by
// the repository's invariant analyzers (cmd/mpvet).
package mputil

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// IsTestFile reports whether f was parsed from a _test.go file. The
// analyzers skip test files: tests legitimately use wall clocks, global
// randomness, and raw encoders without affecting any shipped contract.
func IsTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.File(f.Pos()).Name(), "_test.go")
}

// PackageNamed reports whether the package under analysis has one of
// the given names. The analyzers scope themselves by package name (not
// import path) so their analysistest fixtures — which live under
// synthetic paths — exercise exactly the shipped matching logic.
func PackageNamed(pass *analysis.Pass, names ...string) bool {
	for _, n := range names {
		if pass.Pkg.Name() == n || strings.TrimSuffix(pass.Pkg.Name(), "_test") == n {
			return true
		}
	}
	return false
}

// CalleeFunc resolves the called function or method object of call, or
// nil for builtins, type conversions, and indirect calls through
// function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether call invokes the package-level function
// path.name (no receiver).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	f := CalleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == path && f.Name() == name &&
		f.Type().(*types.Signature).Recv() == nil
}

// RecvNamed returns the named type of a method's receiver (pointers
// stripped), or nil if f is not a method.
func RecvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}

// NamedFrom reports whether named is the type pkgPath.typeName, where
// pkgPath matches exactly or by "/"-suffix (so the analyzers recognize
// both the real repro/internal/comm and a fixture package named comm).
func NamedFrom(named *types.Named, pkgPath, typeName string) bool {
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return named.Obj().Name() == typeName &&
		(p == pkgPath || strings.HasSuffix(p, "/"+pkgPath) || p == lastSegment(pkgPath))
}

// PkgPathIs reports whether got matches want exactly, by "/"-suffix, or
// by final path segment — the matching rule the analyzers use so that
// fixtures under synthetic import paths behave like the real packages.
func PkgPathIs(got, want string) bool {
	return got == want || strings.HasSuffix(got, "/"+want) || got == lastSegment(want)
}

func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsBuiltinIdent reports whether id resolves to a language builtin
// (append, make, new, …). The type checker records builtins in Uses as
// *types.Builtin — not nil — so a bare nil check misses them.
func IsBuiltinIdent(info *types.Info, id *ast.Ident) bool {
	if obj := info.Uses[id]; obj != nil {
		_, ok := obj.(*types.Builtin)
		return ok
	}
	return info.Defs[id] == nil
}

// IsFloat reports whether t's core type is a floating-point scalar.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsInterface reports whether t is an interface type.
func IsInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// RootIdent walks to the base identifier of a selector/index chain:
// a.b[i].c yields a. It returns nil when the base is not an identifier
// (a call result, for example).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
