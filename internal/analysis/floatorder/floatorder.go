// Package floatorder defines the mpfloatorder analyzer: shard-pool
// closures must not accumulate floating-point values across shards.
//
// The row-shard execution layer (internal/core/shard.go) keeps
// transcripts byte-identical to sequential execution by having every
// shard write to disjoint slots and re-running floating-point
// reductions over the merged slots in index order. A float accumulation
// onto a variable captured from outside a shard closure breaks that
// contract twice over: the summation order depends on shard
// scheduling (different rounding run to run) and the write races.
// Integer accumulation is exact and associative, so it is not flagged.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/directives"
	"repro/internal/analysis/mputil"
)

// Analyzer is the mpfloatorder go/analysis pass. It inspects the core
// package (where the shard pool lives) and skips test files.
var Analyzer = &analysis.Analyzer{
	Name: "mpfloatorder",
	Doc: "flag floating-point accumulation onto captured variables inside shard-pool " +
		"closures (runShards), where summation order depends on shard scheduling and " +
		"breaks byte-identical transcript parity with sequential execution",
	Run: run,
}

// shardPoolFuncs are the functions whose closure argument runs
// concurrently per shard.
var shardPoolFuncs = map[string]bool{"runShards": true}

func run(pass *analysis.Pass) (any, error) {
	if !mputil.PackageNamed(pass, "core") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if mputil.IsTestFile(pass, f) {
			continue
		}
		dirs := directives.ParseFile(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if !shardPoolFuncs[name] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkShardClosure(pass, dirs, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkShardClosure flags float accumulation onto variables captured
// from outside the closure. Writes to closure-local variables and to
// disjoint slots of a captured slice (partial[s] = sum) are the
// sanctioned patterns and are not flagged.
func checkShardClosure(pass *analysis.Pass, dirs *directives.Map, lit *ast.FuncLit) {
	info := pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				flagCapturedFloat(pass, dirs, lit, lhs, as.Pos())
			}
		case token.ASSIGN:
			// x = x + y on a captured float is the same accumulation
			// spelled long-hand.
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if bin, ok := ast.Unparen(as.Rhs[i]).(*ast.BinaryExpr); ok && selfReferential(info, id, bin) {
						flagCapturedFloat(pass, dirs, lit, lhs, as.Pos())
					}
				}
			}
		}
		return true
	})
}

// flagCapturedFloat reports lhs when it is a float-typed variable (or a
// field/element chain rooted at one) declared outside the closure.
func flagCapturedFloat(pass *analysis.Pass, dirs *directives.Map, lit *ast.FuncLit, lhs ast.Expr, pos token.Pos) {
	info := pass.TypesInfo
	t := info.TypeOf(lhs)
	if t == nil || !mputil.IsFloat(t) {
		return
	}
	// Disjoint-slot writes are indexed by the shard number; an indexed
	// store never accumulates across iterations of other shards.
	if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		return
	}
	root := mputil.RootIdent(lhs)
	if root == nil {
		return
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil {
		return
	}
	if lit.Pos() <= obj.Pos() && obj.Pos() < lit.End() {
		return // closure-local accumulator: merged deterministically by the caller
	}
	if dirs.Waived(pos, directives.FloatOrderOK) {
		return
	}
	pass.Reportf(pos, "floating-point accumulation onto captured %q inside a shard closure: "+
		"summation order depends on shard scheduling (and the write races); accumulate into a "+
		"per-shard slot and merge in index order after runShards, or annotate //mp:floatorder-ok",
		root.Name)
}

// selfReferential reports whether bin's operand tree mentions id —
// x = x + y, x = y + x, x = (x + y) + z all qualify.
func selfReferential(info *types.Info, id *ast.Ident, bin *ast.BinaryExpr) bool {
	target := info.Uses[id]
	if target == nil {
		target = info.Defs[id]
	}
	if target == nil {
		return false
	}
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if found {
			return false
		}
		if use, ok := n.(*ast.Ident); ok && info.Uses[use] == target {
			found = true
		}
		return !found
	})
	return found
}
