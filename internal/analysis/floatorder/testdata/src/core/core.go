// Package core exercises the mpfloatorder analyzer against its fixture
// stand-in for the shard pool.
package core

// runShards is the fixture stand-in for the shard pool's fan-out entry
// point: fn runs concurrently once per shard.
func runShards(shards int, fn func(shard int)) {
	for s := 0; s < shards; s++ {
		fn(s)
	}
}

// pool mirrors the method-call spelling (p.runShards) of the real
// shard-pool API.
type pool struct{}

func (p *pool) runShards(shards int, fn func(shard int)) {
	for s := 0; s < shards; s++ {
		fn(s)
	}
}

// Compound assignment onto a captured float accumulates in shard
// scheduling order.
func sumRows(rows [][]float64, shards int) float64 {
	var total float64
	runShards(shards, func(s int) {
		for _, v := range rows[s] {
			total += v // want `floating-point accumulation onto captured "total"`
		}
	})
	return total
}

// The same accumulation spelled long-hand is caught too.
func sumLongHand(rows []float64, shards int) float64 {
	var total float64
	runShards(shards, func(s int) {
		for _, v := range rows {
			total = total + v // want `floating-point accumulation onto captured "total"`
		}
	})
	return total
}

// Method-call spelling of the shard pool.
func viaPool(p *pool, rows []float64, shards int) float64 {
	var total float64
	p.runShards(shards, func(s int) {
		total += rows[s] // want `floating-point accumulation onto captured "total"`
	})
	return total
}

// Disjoint per-shard slots merged in index order afterwards: the
// sanctioned pattern, not flagged.
func sumPerShard(rows [][]float64, shards int) float64 {
	partial := make([]float64, shards)
	runShards(shards, func(s int) {
		for _, v := range rows[s] {
			partial[s] += v
		}
	})
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// A closure-local accumulator stored to a disjoint slot: not flagged.
func sumLocal(rows [][]float64, shards int, out []float64) {
	runShards(shards, func(s int) {
		sum := 0.0
		for _, v := range rows[s] {
			sum += v
		}
		out[s] = sum
	})
}

// Integer accumulation is exact and associative: not flagged (the
// write race is the race detector's department).
func countEntries(rows [][]float64, shards int) int {
	var n int
	runShards(shards, func(s int) {
		n += len(rows[s])
	})
	return n
}

// The waiver records an audited exception.
func sumWaived(rows []float64, shards int) float64 {
	var total float64
	runShards(shards, func(s int) {
		for _, v := range rows {
			total += v //mp:floatorder-ok fixture: audited order-insensitive
		}
	})
	return total
}
