package floatorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatorder"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatorder.Analyzer, "core")
}
