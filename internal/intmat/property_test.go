package intmat

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// quickDense builds a small bounded matrix from a seed.
func quickDense(seed uint64, rows, cols int) *Dense {
	r := rng.New(seed)
	d := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bernoulli(0.4) {
				d.Set(i, j, r.Int63n(9)-4)
			}
		}
	}
	return d
}

func TestQuickSparseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		d := quickDense(seed, 9, 13)
		return FromDense(d).ToDense().Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDistributesOverAddition(t *testing.T) {
	// (A + A') · B = A·B + A'·B.
	f := func(s1, s2, s3 uint64) bool {
		a1 := quickDense(s1, 7, 8)
		a2 := quickDense(s2, 7, 8)
		b := quickDense(s3, 8, 6)
		sum := a1.Clone()
		sum.AddMatrix(a2)
		lhs := sum.Mul(b)
		rhs := a1.Mul(b)
		rhs.AddMatrix(a2.Mul(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMulAssociative(t *testing.T) {
	f := func(s1, s2, s3 uint64) bool {
		a := quickDense(s1, 5, 6)
		b := quickDense(s2, 6, 7)
		c := quickDense(s3, 7, 4)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickNormsConsistent(t *testing.T) {
	// L1 ≥ Linf; L0 ≤ rows·cols; Lp(1) == L1.
	f := func(seed uint64) bool {
		d := quickDense(seed, 8, 8)
		linf, _, _ := d.Linf()
		if d.L1() < linf {
			return false
		}
		if d.L0() > 64 {
			return false
		}
		return d.Lp(1) == float64(d.L1())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSparseMulAgreesWithDense(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a := quickDense(s1, 6, 9)
		b := quickDense(s2, 9, 5)
		return FromDense(a).Mul(FromDense(b)).Equal(a.Mul(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
