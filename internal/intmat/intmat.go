// Package intmat implements integer matrices, both dense and sparse (CSR),
// together with the ℓp statistics the paper estimates.
//
// The paper's protocols target C = A·B with polynomially-bounded integer
// entries; int64 comfortably covers every workload in the benchmark
// harness (entries of A·B for n ≤ 4096 binary inputs are at most 4096, and
// general-matrix workloads keep |entry| ≤ 2^20).
package intmat

import (
	"fmt"
	"math"
	"sort"
)

// Dense is a dense row-major integer matrix.
type Dense struct {
	rows, cols int
	data       []int64
}

// NewDense returns an all-zero rows × cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("intmat: negative dimension")
	}
	return &Dense{rows: rows, cols: cols, data: make([]int64, rows*cols)}
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.cols }

// Set assigns entry (i, j).
func (d *Dense) Set(i, j int, v int64) {
	d.check(i, j)
	d.data[i*d.cols+j] = v
}

// Add accumulates into entry (i, j).
func (d *Dense) Add(i, j int, v int64) {
	d.check(i, j)
	d.data[i*d.cols+j] += v
}

// Get returns entry (i, j).
func (d *Dense) Get(i, j int) int64 {
	d.check(i, j)
	return d.data[i*d.cols+j]
}

func (d *Dense) check(i, j int) {
	if i < 0 || i >= d.rows || j < 0 || j >= d.cols {
		panic(fmt.Sprintf("intmat: index (%d,%d) out of %dx%d", i, j, d.rows, d.cols))
	}
}

// Row returns row i; the slice aliases the matrix.
func (d *Dense) Row(i int) []int64 {
	if i < 0 || i >= d.rows {
		panic("intmat: row out of range")
	}
	return d.data[i*d.cols : (i+1)*d.cols]
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.rows, d.cols)
	copy(c.data, d.data)
	return c
}

// AddMatrix accumulates o into d entrywise (d += o).
func (d *Dense) AddMatrix(o *Dense) {
	if d.rows != o.rows || d.cols != o.cols {
		panic("intmat: AddMatrix dimension mismatch")
	}
	for i := range d.data {
		d.data[i] += o.data[i]
	}
}

// Equal reports whether both matrices have the same shape and entries.
func (d *Dense) Equal(o *Dense) bool {
	if d.rows != o.rows || d.cols != o.cols {
		return false
	}
	for i := range d.data {
		if d.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the integer product d·o.
func (d *Dense) Mul(o *Dense) *Dense {
	if d.cols != o.rows {
		panic("intmat: Mul dimension mismatch")
	}
	out := NewDense(d.rows, o.cols)
	for i := 0; i < d.rows; i++ {
		ri := d.Row(i)
		oi := out.Row(i)
		for k, a := range ri {
			if a == 0 {
				continue
			}
			rk := o.Row(k)
			for j, b := range rk {
				if b != 0 {
					oi[j] += a * b
				}
			}
		}
	}
	return out
}

// L0 returns the number of non-zero entries.
func (d *Dense) L0() int {
	c := 0
	for _, v := range d.data {
		if v != 0 {
			c++
		}
	}
	return c
}

// L1 returns the entrywise 1-norm Σ|Cij|.
func (d *Dense) L1() int64 {
	var s int64
	for _, v := range d.data {
		if v < 0 {
			s -= v
		} else {
			s += v
		}
	}
	return s
}

// Linf returns max |Cij| together with one entry position achieving it.
func (d *Dense) Linf() (max int64, argI, argJ int) {
	for i := 0; i < d.rows; i++ {
		for j := 0; j < d.cols; j++ {
			v := d.data[i*d.cols+j]
			if v < 0 {
				v = -v
			}
			if v > max {
				max, argI, argJ = v, i, j
			}
		}
	}
	return max, argI, argJ
}

// Lp returns the p-th power of the entrywise ℓp norm, Σ|Cij|^p, with the
// paper's convention that p = 0 counts non-zero entries (0^0 = 0).
func (d *Dense) Lp(p float64) float64 {
	if p == 0 {
		return float64(d.L0())
	}
	var s float64
	for _, v := range d.data {
		if v == 0 {
			continue
		}
		s += math.Pow(math.Abs(float64(v)), p)
	}
	return s
}

// RowLp returns Σ_j |Cij|^p for row i (p = 0 counts non-zeros).
func (d *Dense) RowLp(i int, p float64) float64 {
	row := d.Row(i)
	if p == 0 {
		c := 0.0
		for _, v := range row {
			if v != 0 {
				c++
			}
		}
		return c
	}
	var s float64
	for _, v := range row {
		if v != 0 {
			s += math.Pow(math.Abs(float64(v)), p)
		}
	}
	return s
}

// ColLp returns Σ_i |Cij|^p for column j.
func (d *Dense) ColLp(j int, p float64) float64 {
	if p == 0 {
		c := 0.0
		for i := 0; i < d.rows; i++ {
			if d.Get(i, j) != 0 {
				c++
			}
		}
		return c
	}
	var s float64
	for i := 0; i < d.rows; i++ {
		if v := d.Get(i, j); v != 0 {
			s += math.Pow(math.Abs(float64(v)), p)
		}
	}
	return s
}

// Entry is one non-zero matrix entry.
type Entry struct {
	I, J int
	V    int64
}

// NonZeros returns all non-zero entries in row-major order.
func (d *Dense) NonZeros() []Entry {
	var out []Entry
	for i := 0; i < d.rows; i++ {
		base := i * d.cols
		for j := 0; j < d.cols; j++ {
			if v := d.data[base+j]; v != 0 {
				out = append(out, Entry{I: i, J: j, V: v})
			}
		}
	}
	return out
}

// Sparse is a CSR-format sparse integer matrix. It is the interchange
// format for protocol messages that carry sampled or partial matrices.
type Sparse struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	vals       []int64
}

// NewSparse builds a CSR matrix from entries. Duplicate (i, j) pairs are
// summed. Entries that sum to zero are dropped.
func NewSparse(rows, cols int, entries []Entry) *Sparse {
	for _, e := range entries {
		if e.I < 0 || e.I >= rows || e.J < 0 || e.J >= cols {
			panic(fmt.Sprintf("intmat: sparse entry (%d,%d) out of %dx%d", e.I, e.J, rows, cols))
		}
	}
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].I != sorted[b].I {
			return sorted[a].I < sorted[b].I
		}
		return sorted[a].J < sorted[b].J
	})
	s := &Sparse{rows: rows, cols: cols, rowPtr: make([]int32, rows+1)}
	for k := 0; k < len(sorted); {
		i, j := sorted[k].I, sorted[k].J
		var v int64
		for k < len(sorted) && sorted[k].I == i && sorted[k].J == j {
			v += sorted[k].V
			k++
		}
		if v != 0 {
			s.colIdx = append(s.colIdx, int32(j))
			s.vals = append(s.vals, v)
			s.rowPtr[i+1] = int32(len(s.vals))
		}
	}
	// Fill gaps: rowPtr must be non-decreasing.
	for i := 1; i <= rows; i++ {
		if s.rowPtr[i] < s.rowPtr[i-1] {
			s.rowPtr[i] = s.rowPtr[i-1]
		}
	}
	return s
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored non-zero entries.
func (s *Sparse) NNZ() int { return len(s.vals) }

// RowEntries calls fn for every stored entry of row i.
func (s *Sparse) RowEntries(i int, fn func(j int, v int64)) {
	for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
		fn(int(s.colIdx[k]), s.vals[k])
	}
}

// Entries returns all stored entries in row-major order.
func (s *Sparse) Entries() []Entry {
	out := make([]Entry, 0, s.NNZ())
	for i := 0; i < s.rows; i++ {
		s.RowEntries(i, func(j int, v int64) {
			out = append(out, Entry{I: i, J: j, V: v})
		})
	}
	return out
}

// ToDense converts to a dense matrix.
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		s.RowEntries(i, func(j int, v int64) {
			d.Set(i, j, v)
		})
	}
	return d
}

// FromDense converts a dense matrix to CSR.
func FromDense(d *Dense) *Sparse {
	return NewSparse(d.Rows(), d.Cols(), d.NonZeros())
}

// Mul returns the integer product s·o as a dense matrix.
func (s *Sparse) Mul(o *Sparse) *Dense {
	if s.cols != o.rows {
		panic("intmat: sparse Mul dimension mismatch")
	}
	out := NewDense(s.rows, o.cols)
	for i := 0; i < s.rows; i++ {
		oi := out.Row(i)
		s.RowEntries(i, func(k int, a int64) {
			o.RowEntries(k, func(j int, b int64) {
				oi[j] += a * b
			})
		})
	}
	return out
}

// MulDense returns s·d for a dense right factor.
func (s *Sparse) MulDense(d *Dense) *Dense {
	if s.cols != d.Rows() {
		panic("intmat: MulDense dimension mismatch")
	}
	out := NewDense(s.rows, d.Cols())
	for i := 0; i < s.rows; i++ {
		oi := out.Row(i)
		s.RowEntries(i, func(k int, a int64) {
			rk := d.Row(k)
			for j, b := range rk {
				if b != 0 {
					oi[j] += a * b
				}
			}
		})
	}
	return out
}

// L1 returns Σ|entries|.
func (s *Sparse) L1() int64 {
	var sum int64
	for _, v := range s.vals {
		if v < 0 {
			sum -= v
		} else {
			sum += v
		}
	}
	return sum
}
