package intmat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomDense(r *rng.RNG, rows, cols int, density float64, maxAbs int64) *Dense {
	d := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bernoulli(density) {
				d.Set(i, j, r.Int63n(2*maxAbs+1)-maxAbs)
			}
		}
	}
	return d
}

func TestDenseBasics(t *testing.T) {
	d := NewDense(3, 4)
	d.Set(1, 2, -7)
	d.Add(1, 2, 3)
	if got := d.Get(1, 2); got != -4 {
		t.Fatalf("Get = %d, want -4", got)
	}
	if d.Rows() != 3 || d.Cols() != 4 {
		t.Fatal("dims wrong")
	}
}

func TestDenseOutOfRangePanics(t *testing.T) {
	d := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Get(2, 0)
}

func TestNorms(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 0, 3)
	d.Set(0, 2, -4)
	d.Set(1, 1, 5)
	if got := d.L0(); got != 3 {
		t.Errorf("L0 = %d, want 3", got)
	}
	if got := d.L1(); got != 12 {
		t.Errorf("L1 = %d, want 12", got)
	}
	max, i, j := d.Linf()
	if max != 5 || i != 1 || j != 1 {
		t.Errorf("Linf = %d at (%d,%d), want 5 at (1,1)", max, i, j)
	}
	if got := d.Lp(2); math.Abs(got-50) > 1e-9 {
		t.Errorf("Lp(2) = %v, want 50", got)
	}
	if got := d.Lp(0); got != 3 {
		t.Errorf("Lp(0) = %v, want 3", got)
	}
	if got := d.Lp(1); math.Abs(got-12) > 1e-9 {
		t.Errorf("Lp(1) = %v, want 12", got)
	}
}

func TestRowColLp(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 2)
	d.Set(0, 1, -2)
	d.Set(1, 0, 3)
	if got := d.RowLp(0, 2); math.Abs(got-8) > 1e-9 {
		t.Errorf("RowLp(0,2) = %v, want 8", got)
	}
	if got := d.RowLp(0, 0); got != 2 {
		t.Errorf("RowLp(0,0) = %v, want 2", got)
	}
	if got := d.ColLp(0, 1); math.Abs(got-5) > 1e-9 {
		t.Errorf("ColLp(0,1) = %v, want 5", got)
	}
	if got := d.ColLp(1, 0); got != 1 {
		t.Errorf("ColLp(1,0) = %v, want 1", got)
	}
}

func TestLpDecomposesOverRows(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := randomDense(r, 8, 11, 0.5, 9)
		for _, p := range []float64{0, 0.5, 1, 1.5, 2} {
			var rows float64
			for i := 0; i < 8; i++ {
				rows += d.RowLp(i, p)
			}
			if math.Abs(rows-d.Lp(p)) > 1e-6*(1+math.Abs(rows)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDenseMul(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	// a = [1 2 0; 0 -1 3], b = [1 0; 2 1; 0 -2]
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 1, -1)
	a.Set(1, 2, 3)
	b.Set(0, 0, 1)
	b.Set(1, 0, 2)
	b.Set(1, 1, 1)
	b.Set(2, 1, -2)
	c := a.Mul(b)
	want := [][]int64{{5, 2}, {-2, -7}}
	for i := range want {
		for j := range want[i] {
			if c.Get(i, j) != want[i][j] {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, c.Get(i, j), want[i][j])
			}
		}
	}
}

func TestSparseRoundTrip(t *testing.T) {
	r := rng.New(20)
	d := randomDense(r, 13, 17, 0.3, 50)
	s := FromDense(d)
	if !s.ToDense().Equal(d) {
		t.Fatal("sparse round trip lost entries")
	}
	if s.NNZ() != d.L0() {
		t.Fatalf("NNZ = %d, want %d", s.NNZ(), d.L0())
	}
}

func TestSparseDuplicatesSummed(t *testing.T) {
	s := NewSparse(2, 2, []Entry{{0, 0, 3}, {0, 0, 4}, {1, 1, 5}, {1, 1, -5}})
	if got := s.NNZ(); got != 1 {
		t.Fatalf("NNZ = %d, want 1 (dups summed, zeros dropped)", got)
	}
	d := s.ToDense()
	if d.Get(0, 0) != 7 {
		t.Fatalf("summed entry = %d, want 7", d.Get(0, 0))
	}
}

func TestSparseMulMatchesDense(t *testing.T) {
	r := rng.New(21)
	da := randomDense(r, 10, 12, 0.3, 9)
	db := randomDense(r, 12, 8, 0.3, 9)
	want := da.Mul(db)
	got := FromDense(da).Mul(FromDense(db))
	if !got.Equal(want) {
		t.Fatal("sparse Mul differs from dense Mul")
	}
	got2 := FromDense(da).MulDense(db)
	if !got2.Equal(want) {
		t.Fatal("MulDense differs from dense Mul")
	}
}

func TestSparseEntryOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSparse(2, 2, []Entry{{2, 0, 1}})
}

func TestAddMatrix(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 2)
	a.Set(0, 0, 1)
	b.Set(0, 0, 2)
	b.Set(1, 1, 3)
	a.AddMatrix(b)
	if a.Get(0, 0) != 3 || a.Get(1, 1) != 3 {
		t.Fatal("AddMatrix wrong")
	}
}

func TestNonZerosOrder(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(1, 0, 4)
	d.Set(0, 2, 9)
	nz := d.NonZeros()
	if len(nz) != 2 || nz[0] != (Entry{0, 2, 9}) || nz[1] != (Entry{1, 0, 4}) {
		t.Fatalf("NonZeros = %v", nz)
	}
}

func TestSparseL1(t *testing.T) {
	s := NewSparse(2, 2, []Entry{{0, 0, -3}, {1, 1, 4}})
	if got := s.L1(); got != 7 {
		t.Fatalf("L1 = %d, want 7", got)
	}
}
