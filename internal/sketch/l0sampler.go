package sketch

import (
	"repro/internal/field"
	"repro/internal/rng"
)

// samplerCells is the number of 1-sparse cells per subsampling level.
// With the decode rule below, a level with ≤ samplerCells/3 survivors is
// collision-free with good probability.
const samplerCells = 8

// L0Sampler is a linear ℓ0-sampler (Lemma 2.6): from a sketch of an
// integer vector x it returns a (near-)uniformly random coordinate of the
// support of x. The construction is the standard one: geometric
// subsampling levels; per level, surviving coordinates are hashed into a
// small number of exact 1-sparse recovery cells; decoding walks levels
// from sparsest to densest and returns, at the first cleanly decodable
// level, the recovered coordinate with the smallest priority hash.
// Independent repetitions drive the failure probability down.
//
// The sketch is linear over the field, so parties can combine transmitted
// sampler states with integer coefficients exactly like the ℓ0 sketch.
type L0Sampler struct {
	n      int
	levels int
	reps   int
	os     []*OneSparse    // one per rep
	level  []*rng.PolyHash // per rep: coordinate → level
	cell   []*rng.PolyHash // per rep per level: coordinate → cell
	prio   *rng.PolyHash   // coordinate → selection priority (shared)
}

// NewL0Sampler constructs a sampler for dimension-n vectors with the
// given number of independent repetitions.
func NewL0Sampler(r *rng.RNG, n, reps int) *L0Sampler {
	if reps < 1 {
		panic("sketch: L0Sampler needs reps >= 1")
	}
	levels := 1
	for 1<<(levels-1) < n {
		levels++
	}
	s := &L0Sampler{n: n, levels: levels, reps: reps, prio: rng.NewPolyHash(r, 2)}
	for rep := 0; rep < reps; rep++ {
		s.os = append(s.os, NewOneSparse(r, n))
		s.level = append(s.level, rng.NewPolyHash(r, 2))
		for ℓ := 0; ℓ < levels; ℓ++ {
			s.cell = append(s.cell, rng.NewPolyHash(r, 2))
		}
	}
	return s
}

// Dim returns the sketch length in field elements
// (reps × levels × cells × 3 words per 1-sparse state).
func (s *L0Sampler) Dim() int { return s.reps * s.levels * samplerCells * 3 }

func (s *L0Sampler) stateOffset(rep, level, cell int) int {
	return ((rep*s.levels+level)*samplerCells + cell) * 3
}

// Apply sketches the integer vector x.
func (s *L0Sampler) Apply(x []int64) []field.Elem {
	if len(x) != s.n {
		panic("sketch: L0Sampler dimension mismatch")
	}
	y := make([]field.Elem, s.Dim())
	for j, v := range x {
		if v == 0 {
			continue
		}
		s.AddCoord(y, j, v)
	}
	return y
}

// AddCoord adds value v at coordinate j into a sketch.
func (s *L0Sampler) AddCoord(y []field.Elem, j int, v int64) {
	for rep := 0; rep < s.reps; rep++ {
		lev := s.level[rep].Level(uint64(j), s.levels-1)
		for ℓ := 0; ℓ <= lev; ℓ++ {
			cell := s.cell[rep*s.levels+ℓ].Bucket(uint64(j), samplerCells)
			off := s.stateOffset(rep, ℓ, cell)
			st := OneSparseState{Sum: y[off], IxSum: y[off+1], Finger: y[off+2]}
			s.os[rep].Add(&st, j, v)
			y[off], y[off+1], y[off+2] = st.Sum, st.IxSum, st.Finger
		}
	}
	return
}

// Decode attempts to sample a support coordinate from a sketch of x. It
// returns the coordinate, its value, and ok=false if every repetition
// failed (probability exponentially small in reps) or the vector is zero.
func (s *L0Sampler) Decode(y []field.Elem) (index int, value int64, ok bool) {
	if len(y) != s.Dim() {
		panic("sketch: L0Sampler sketch length mismatch")
	}
	for rep := 0; rep < s.reps; rep++ {
		// Walk from the sparsest level down; use the first level that
		// decodes cleanly with at least one survivor.
		for ℓ := s.levels - 1; ℓ >= 0; ℓ-- {
			type rec struct {
				j int
				v int64
			}
			var recovered []rec
			clean := true
			for c := 0; c < samplerCells; c++ {
				off := s.stateOffset(rep, ℓ, c)
				st := OneSparseState{Sum: y[off], IxSum: y[off+1], Finger: y[off+2]}
				kind, j, v := s.os[rep].Decode(st)
				switch kind {
				case 1:
					recovered = append(recovered, rec{j, v})
				case 2:
					clean = false
				}
			}
			if !clean {
				// This level has a collision; denser levels below will
				// only be worse for this repetition.
				break
			}
			if len(recovered) == 0 {
				continue
			}
			best := recovered[0]
			bestPrio := s.prio.Eval(uint64(best.j))
			for _, r := range recovered[1:] {
				if p := s.prio.Eval(uint64(r.j)); p < bestPrio {
					best, bestPrio = r, p
				}
			}
			return best.j, best.v, true
		}
	}
	return 0, 0, false
}
