package sketch

import (
	"sort"

	"repro/internal/intmat"
	"repro/internal/rng"
)

// TensorCS is a CountSketch over matrix entries whose hash factors across
// the row and column coordinate: entry (i, j) lands in grid cell
// (h(i), g(j)) with sign s(i)·t(j). The factored structure is what makes
// the sketch computable from a *product*: for C = A·B,
//
//	T = RowCompress(A) · ColCompress(B),
//
// where RowCompress(A) is br×n and ColCompress(B) is n×bc, so Bob can ship
// ColCompress(B) — n·bc words — and Alice completes the sketch locally.
// This realizes Lemma 2.5 (distributed matrix multiplication in
// Õ(n·√‖AB‖0) bits): with ‖C‖0 ≤ s and grid side Θ(√s), shipping costs
// n·Θ(√s) words, and median point queries over reps repetitions decode
// every non-zero entry of the integer matrix C exactly with high
// probability.
type TensorCS struct {
	rows, cols int // dimensions of the sketched matrix C
	inner      int // shared dimension of A (rows×inner) and B (inner×cols)
	reps       int
	br, bc     int
	rowHash    []*rng.PolyHash
	colHash    []*rng.PolyHash
	rowSign    []*rng.PolyHash
	colSign    []*rng.PolyHash
}

// NewTensorCS constructs a tensor CountSketch for products C = A·B with
// A ∈ Z^{rows×inner} and B ∈ Z^{inner×cols}, targeting sparsity s
// (buckets per axis ≈ 4√s) with reps independent repetitions.
func NewTensorCS(r *rng.RNG, rows, inner, cols, s, reps int) *TensorCS {
	if s < 1 {
		s = 1
	}
	if reps < 1 {
		panic("sketch: TensorCS needs reps >= 1")
	}
	// side ≈ 8√s keeps the per-repetition point-query collision
	// probability below s/side² = 1/64, so a median over ≥5 repetitions
	// answers all rows·cols queries correctly with high probability.
	side := 4
	for side*side < 64*s {
		side++
	}
	t := &TensorCS{rows: rows, cols: cols, inner: inner, reps: reps, br: side, bc: side}
	for i := 0; i < reps; i++ {
		t.rowHash = append(t.rowHash, rng.NewPolyHash(r, 2))
		t.colHash = append(t.colHash, rng.NewPolyHash(r, 2))
		t.rowSign = append(t.rowSign, rng.NewPolyHash(r, 4))
		t.colSign = append(t.colSign, rng.NewPolyHash(r, 4))
	}
	return t
}

// GridSide returns the per-axis bucket count.
func (t *TensorCS) GridSide() int { return t.br }

// Reps returns the number of repetitions.
func (t *TensorCS) Reps() int { return t.reps }

// CompressedSize returns the int64 word count of ColCompress output —
// the quantity a protocol transmits.
func (t *TensorCS) CompressedSize() int { return t.reps * t.inner * t.bc }

// ColCompress computes, for each repetition, the n×bc matrix
// (B·Scᵀ)[k][v] = Σ_j t(j)·B[k][j]·[g(j)=v], flattened rep-major.
func (t *TensorCS) ColCompress(b *intmat.Dense) []int64 {
	if b.Rows() != t.inner || b.Cols() != t.cols {
		panic("sketch: TensorCS ColCompress shape mismatch")
	}
	out := make([]int64, t.CompressedSize())
	for rep := 0; rep < t.reps; rep++ {
		// Precompute per-column bucket and sign.
		colB := make([]int, t.cols)
		colS := make([]int64, t.cols)
		for j := 0; j < t.cols; j++ {
			colB[j] = t.colHash[rep].Bucket(uint64(j), t.bc)
			colS[j] = int64(t.colSign[rep].Sign(uint64(j)))
		}
		base := rep * t.inner * t.bc
		for k := 0; k < t.inner; k++ {
			row := b.Row(k)
			off := base + k*t.bc
			for j, v := range row {
				if v != 0 {
					out[off+colB[j]] += colS[j] * v
				}
			}
		}
	}
	return out
}

// SketchFromCompressed completes the sketch T = RowCompress(A)·compressed
// on Alice's side: T_rep[u][v] = Σ_i s(i)·[h(i)=u]·Σ_k A[i][k]·RB[k][v].
// The result is flattened rep-major, br×bc per repetition.
func (t *TensorCS) SketchFromCompressed(a *intmat.Dense, compressed []int64) []int64 {
	if a.Rows() != t.rows || a.Cols() != t.inner {
		panic("sketch: TensorCS SketchFromCompressed shape mismatch")
	}
	if len(compressed) != t.CompressedSize() {
		panic("sketch: TensorCS compressed length mismatch")
	}
	out := make([]int64, t.reps*t.br*t.bc)
	for rep := 0; rep < t.reps; rep++ {
		cbase := rep * t.inner * t.bc
		tbase := rep * t.br * t.bc
		for i := 0; i < t.rows; i++ {
			u := t.rowHash[rep].Bucket(uint64(i), t.br)
			si := int64(t.rowSign[rep].Sign(uint64(i)))
			row := a.Row(i)
			dst := out[tbase+u*t.bc : tbase+(u+1)*t.bc]
			for k, av := range row {
				if av == 0 {
					continue
				}
				w := si * av
				src := compressed[cbase+k*t.bc : cbase+(k+1)*t.bc]
				for v, cv := range src {
					if cv != 0 {
						dst[v] += w * cv
					}
				}
			}
		}
	}
	return out
}

// SketchDirect sketches a fully known matrix C — the reference path used
// by tests to validate the distributed assembly.
func (t *TensorCS) SketchDirect(c *intmat.Dense) []int64 {
	if c.Rows() != t.rows || c.Cols() != t.cols {
		panic("sketch: TensorCS SketchDirect shape mismatch")
	}
	out := make([]int64, t.reps*t.br*t.bc)
	for rep := 0; rep < t.reps; rep++ {
		tbase := rep * t.br * t.bc
		for i := 0; i < t.rows; i++ {
			u := t.rowHash[rep].Bucket(uint64(i), t.br)
			si := int64(t.rowSign[rep].Sign(uint64(i)))
			row := c.Row(i)
			for j, v := range row {
				if v == 0 {
					continue
				}
				cell := tbase + u*t.bc + t.colHash[rep].Bucket(uint64(j), t.bc)
				out[cell] += si * int64(t.colSign[rep].Sign(uint64(j))) * v
			}
		}
	}
	return out
}

// PointQuery estimates C[i][j] from a sketch as the median over
// repetitions of the signed cell value.
func (t *TensorCS) PointQuery(sk []int64, i, j int) int64 {
	vals := make([]int64, t.reps)
	for rep := 0; rep < t.reps; rep++ {
		cell := rep*t.br*t.bc + t.rowHash[rep].Bucket(uint64(i), t.br)*t.bc +
			t.colHash[rep].Bucket(uint64(j), t.bc)
		v := sk[cell]
		if t.rowSign[rep].Sign(uint64(i))*t.colSign[rep].Sign(uint64(j)) < 0 {
			v = -v
		}
		vals[rep] = v
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return vals[t.reps/2]
}

// Decode point-queries every cell of the rows×cols matrix and returns the
// non-zero entries. With grid side ≥ 4√‖C‖0 and ≥ 5 repetitions the
// decoded set equals the support of C with high probability.
func (t *TensorCS) Decode(sk []int64) []intmat.Entry {
	var out []intmat.Entry
	for i := 0; i < t.rows; i++ {
		for j := 0; j < t.cols; j++ {
			if v := t.PointQuery(sk, i, j); v != 0 {
				out = append(out, intmat.Entry{I: i, J: j, V: v})
			}
		}
	}
	return out
}
