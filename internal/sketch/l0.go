package sketch

import (
	"math"

	"repro/internal/field"
	"repro/internal/rng"
)

// L0 is a linear sketch for the number of distinct (non-zero) coordinates
// of an integer vector, the p = 0 case of Lemma 2.1.
//
// Construction: coordinates are subsampled into nested geometric levels
// (level ℓ keeps each coordinate with probability 2^-ℓ via a shared
// pairwise-independent hash); within a level, surviving coordinates are
// hashed into K buckets, and each bucket stores the field sum Σ c_j·x_j
// with per-coordinate random field coefficients c_j. A bucket is empty iff
// no surviving non-zero coordinate maps to it, up to a cancellation
// probability ≤ K·L/p ≈ 2^-50.
//
// Estimation inverts the balls-into-bins occupancy at the first
// unsaturated level: with t surviving balls, the expected fraction of
// empty buckets is (1-1/K)^t, so t̂ = ln(empty/K)/ln(1-1/K) and the
// overall estimate is t̂·2^ℓ. K = Θ(1/ε²) yields a (1±ε) estimate with
// constant probability.
//
// The sketch is linear over GF(2^61−1): sketches of x and y add entrywise
// to a sketch of x+y as long as inputs are integer vectors, which is how
// the protocols assemble sketches of rows of A·B.
type L0 struct {
	n       int
	levels  int
	buckets int
	level   *rng.PolyHash   // coordinate → geometric level
	bucket  []*rng.PolyHash // per level: coordinate → bucket
	coef    []*rng.PolyHash // per level: coordinate → field coefficient
}

// NewL0 constructs an ℓ0 sketch for dimension-n vectors with K buckets
// per level. K controls accuracy: relative error ≈ 1.3/√K.
func NewL0(r *rng.RNG, n, buckets int) *L0 {
	if buckets < 2 {
		panic("sketch: L0 needs at least 2 buckets")
	}
	levels := 1
	for 1<<(levels-1) < n {
		levels++
	}
	s := &L0{
		n:       n,
		levels:  levels,
		buckets: buckets,
		level:   rng.NewPolyHash(r, 2),
	}
	s.bucket = make([]*rng.PolyHash, levels)
	s.coef = make([]*rng.PolyHash, levels)
	for ℓ := range s.bucket {
		s.bucket[ℓ] = rng.NewPolyHash(r, 2)
		s.coef[ℓ] = rng.NewPolyHash(r, 2)
	}
	return s
}

// Dim returns the sketch length in field elements.
func (s *L0) Dim() int { return s.levels * s.buckets }

// Levels returns the number of subsampling levels.
func (s *L0) Levels() int { return s.levels }

// Apply sketches the integer vector x.
func (s *L0) Apply(x []int64) []field.Elem {
	if len(x) != s.n {
		panic("sketch: L0 dimension mismatch")
	}
	y := make([]field.Elem, s.Dim())
	for j, v := range x {
		if v == 0 {
			continue
		}
		s.AddCoord(y, j, v)
	}
	return y
}

// AddCoord adds value v at coordinate j into an existing sketch — the
// O(levels) incremental update that makes the sketch usable on dynamic
// (turnstile) inputs.
func (s *L0) AddCoord(y []field.Elem, j int, v int64) {
	lev := s.level.Level(uint64(j), s.levels-1)
	fv := field.ReduceInt(v)
	for ℓ := 0; ℓ <= lev; ℓ++ {
		c := s.coef[ℓ].Eval(uint64(j))
		if c == 0 {
			c = 1
		}
		b := s.bucket[ℓ].Bucket(uint64(j), s.buckets)
		y[ℓ*s.buckets+b] = field.Add(y[ℓ*s.buckets+b], field.Mul(c, fv))
	}
}

// Estimate returns an estimate of ‖x‖0 from a sketch of x.
func (s *L0) Estimate(y []field.Elem) float64 {
	if len(y) != s.Dim() {
		panic("sketch: L0 sketch length mismatch")
	}
	K := float64(s.buckets)
	// Use the densest level whose occupancy is still invertible: the
	// balls-into-bins inversion has minimal relative error around load
	// factor ~1.6 (occupancy ≈ 0.8K), and denser levels also carry less
	// subsampling noise, so we take the first level at or below the 0.8K
	// saturation threshold.
	threshold := int(0.8 * K)
	for ℓ := 0; ℓ < s.levels; ℓ++ {
		occupied := 0
		for b := 0; b < s.buckets; b++ {
			if y[ℓ*s.buckets+b] != 0 {
				occupied++
			}
		}
		if occupied == 0 {
			// Nothing survived at this level. At level 0 that means the
			// vector is zero; at higher levels it means the support is
			// tiny and an earlier saturated level cannot exist under
			// nested subsampling, so keep scanning.
			if ℓ == 0 {
				return 0
			}
			continue
		}
		if occupied <= threshold || ℓ == s.levels-1 {
			if occupied >= s.buckets {
				occupied = s.buckets - 1 // saturated last level: clamp
			}
			empty := K - float64(occupied)
			t := math.Log(empty/K) / math.Log(1-1/K)
			return t * float64(uint64(1)<<uint(ℓ))
		}
	}
	return 0
}

// AxpyField accumulates y += a·x over the field, the combination
// primitive protocols use on transmitted field sketches.
func AxpyField(y []field.Elem, a int64, x []field.Elem) {
	fa := field.ReduceInt(a)
	if fa == 0 {
		return
	}
	for i, v := range x {
		y[i] = field.Add(y[i], field.Mul(fa, v))
	}
}
