package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// The protocols rely on exactly one algebraic property of every sketch:
// linearity over integer coefficient combinations. These property tests
// drive each sketch with random vectors and coefficients via
// testing/quick.

// boundedVec reshapes arbitrary quick-generated data into a bounded
// integer vector of length n.
func boundedVec(raw []int64, n int, maxAbs int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		if i < len(raw) {
			out[i] = raw[i]%(maxAbs+1) - maxAbs/2
		}
	}
	return out
}

func TestQuickAMSLinearity(t *testing.T) {
	const n = 48
	s := NewAMS(rng.New(500), n, 3, 8)
	f := func(rawX, rawY []int64, a8, b8 int8) bool {
		x := boundedVec(rawX, n, 20)
		y := boundedVec(rawY, n, 20)
		a, b := int64(a8), int64(b8)
		z := make([]int64, n)
		for i := range z {
			z[i] = a*x[i] + b*y[i]
		}
		combined := make([]float64, s.Dim())
		AxpyFloat(combined, float64(a), s.Apply(x))
		AxpyFloat(combined, float64(b), s.Apply(y))
		direct := s.Apply(z)
		for i := range direct {
			if math.Abs(combined[i]-direct[i]) > 1e-6*(1+math.Abs(direct[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickL0SketchLinearity(t *testing.T) {
	const n = 48
	s := NewL0(rng.New(501), n, 8)
	f := func(rawX, rawY []int64, a8, b8 int8) bool {
		x := boundedVec(rawX, n, 20)
		y := boundedVec(rawY, n, 20)
		a, b := int64(a8), int64(b8)
		z := make([]int64, n)
		for i := range z {
			z[i] = a*x[i] + b*y[i]
		}
		combined := make([]field.Elem, s.Dim())
		AxpyField(combined, a, s.Apply(x))
		AxpyField(combined, b, s.Apply(y))
		direct := s.Apply(z)
		for i := range direct {
			if combined[i] != direct[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSamplerLinearity(t *testing.T) {
	const n = 32
	s := NewL0Sampler(rng.New(502), n, 2)
	f := func(rawX, rawY []int64, a8, b8 int8) bool {
		x := boundedVec(rawX, n, 10)
		y := boundedVec(rawY, n, 10)
		a, b := int64(a8), int64(b8)
		z := make([]int64, n)
		for i := range z {
			z[i] = a*x[i] + b*y[i]
		}
		combined := make([]field.Elem, s.Dim())
		AxpyField(combined, a, s.Apply(x))
		AxpyField(combined, b, s.Apply(y))
		direct := s.Apply(z)
		for i := range direct {
			if combined[i] != direct[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickCountSketchLinearity(t *testing.T) {
	const n = 40
	cs := NewCountSketch(rng.New(503), n, 3, 16)
	f := func(rawX, rawY []int64, a8, b8 int8) bool {
		x := boundedVec(rawX, n, 50)
		y := boundedVec(rawY, n, 50)
		a, b := int64(a8), int64(b8)
		z := make([]int64, n)
		for i := range z {
			z[i] = a*x[i] + b*y[i]
		}
		sx, sy, sz := cs.Apply(x), cs.Apply(y), cs.Apply(z)
		for i := range sz {
			if a*sx[i]+b*sy[i] != sz[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickOneSparseDecodeInvariant(t *testing.T) {
	// Property: for any single (index, value) with value ≠ 0, decode
	// returns exactly that pair.
	os := NewOneSparse(rng.New(504), 1000)
	f := func(ix uint16, val int32) bool {
		j := int(ix) % 1000
		v := int64(val)
		if v == 0 {
			v = 1
		}
		var st OneSparseState
		os.Add(&st, j, v)
		kind, gj, gv := os.Decode(st)
		return kind == 1 && gj == j && gv == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTensorCSDistributivity(t *testing.T) {
	// Property: the distributed assembly (compress B, complete with A)
	// equals the direct sketch of A·B for random small matrices.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 12 + int(seed%5)
		a := randIntMat(r, n, n, 0.3)
		b := randIntMat(r, n, n, 0.3)
		c := a.Mul(b)
		ts := NewTensorCS(rng.New(seed+1), n, n, n, 8, 3)
		direct := ts.SketchDirect(c)
		dist := ts.SketchFromCompressed(a, ts.ColCompress(b))
		for i := range direct {
			if direct[i] != dist[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randIntMat builds a random integer matrix for the distributivity
// property.
func randIntMat(r *rng.RNG, rows, cols int, density float64) *intmat.Dense {
	m := intmat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bernoulli(density) {
				m.Set(i, j, r.Int63n(9)-4)
			}
		}
	}
	return m
}
