package sketch

import (
	"sort"

	"repro/internal/rng"
)

// CountSketch is the classic Charikar–Chen–Farach-Colton frequency sketch
// over int64 values: reps independent (bucket hash, sign hash) rows;
// point queries return the median of signed bucket values. It is used by
// the heavy-hitter baseline and by tests as a reference decoder.
type CountSketch struct {
	n       int
	reps    int
	buckets int
	bucket  []*rng.PolyHash
	sign    []*rng.PolyHash
}

// NewCountSketch constructs a CountSketch for dimension-n integer vectors.
func NewCountSketch(r *rng.RNG, n, reps, buckets int) *CountSketch {
	if reps < 1 || buckets < 1 {
		panic("sketch: CountSketch needs reps, buckets >= 1")
	}
	cs := &CountSketch{n: n, reps: reps, buckets: buckets}
	for i := 0; i < reps; i++ {
		cs.bucket = append(cs.bucket, rng.NewPolyHash(r, 2))
		cs.sign = append(cs.sign, rng.NewPolyHash(r, 4))
	}
	return cs
}

// Dim returns the sketch length in int64 words.
func (cs *CountSketch) Dim() int { return cs.reps * cs.buckets }

// Apply sketches the integer vector x.
func (cs *CountSketch) Apply(x []int64) []int64 {
	if len(x) != cs.n {
		panic("sketch: CountSketch dimension mismatch")
	}
	y := make([]int64, cs.Dim())
	for j, v := range x {
		if v == 0 {
			continue
		}
		cs.AddCoord(y, j, v)
	}
	return y
}

// AddCoord adds value v at coordinate j into a sketch.
func (cs *CountSketch) AddCoord(y []int64, j int, v int64) {
	for r := 0; r < cs.reps; r++ {
		b := cs.bucket[r].Bucket(uint64(j), cs.buckets)
		if cs.sign[r].Sign(uint64(j)) > 0 {
			y[r*cs.buckets+b] += v
		} else {
			y[r*cs.buckets+b] -= v
		}
	}
}

// PointQuery estimates x_j from a sketch of x.
func (cs *CountSketch) PointQuery(y []int64, j int) int64 {
	if len(y) != cs.Dim() {
		panic("sketch: CountSketch sketch length mismatch")
	}
	vals := make([]int64, cs.reps)
	for r := 0; r < cs.reps; r++ {
		b := cs.bucket[r].Bucket(uint64(j), cs.buckets)
		v := y[r*cs.buckets+b]
		if cs.sign[r].Sign(uint64(j)) < 0 {
			v = -v
		}
		vals[r] = v
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return vals[cs.reps/2]
}
