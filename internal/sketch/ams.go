package sketch

import (
	"repro/internal/rng"
)

// AMS is the Alon–Matias–Szegedy ℓ2 sketch: reps independent groups of
// cols four-wise-independent sign measurements. EstimatePow returns the
// median over groups of the mean of squared measurements, an unbiased
// (1±ε) estimator of ‖x‖2² with cols = O(1/ε²) and reps = O(log 1/δ).
type AMS struct {
	n     int
	reps  int
	cols  int
	signs []*rng.PolyHash // one 4-wise hash per measurement row
}

// NewAMS constructs an AMS sketch for dimension-n vectors with the given
// accuracy shape: cols measurement rows per group, reps groups.
func NewAMS(r *rng.RNG, n, reps, cols int) *AMS {
	if reps < 1 || cols < 1 {
		panic("sketch: AMS needs reps, cols >= 1")
	}
	s := &AMS{n: n, reps: reps, cols: cols}
	s.signs = make([]*rng.PolyHash, reps*cols)
	for i := range s.signs {
		s.signs[i] = rng.NewPolyHash(r, 4)
	}
	return s
}

// Dim returns the sketch length.
func (s *AMS) Dim() int { return s.reps * s.cols }

// P returns 2.
func (s *AMS) P() float64 { return 2 }

// Apply sketches the integer vector x.
func (s *AMS) Apply(x []int64) []float64 {
	if len(x) != s.n {
		panic("sketch: AMS dimension mismatch")
	}
	y := make([]float64, s.Dim())
	for j, v := range x {
		if v != 0 {
			s.AddCoord(y, j, v)
		}
	}
	return y
}

// AddCoord adds value v at coordinate j into an existing sketch
// (turnstile update).
func (s *AMS) AddCoord(y []float64, j int, v int64) {
	fv := float64(v)
	for row := range s.signs {
		if s.signs[row].Sign(uint64(j)) > 0 {
			y[row] += fv
		} else {
			y[row] -= fv
		}
	}
}

// EstimatePow estimates ‖x‖2² from a sketch.
func (s *AMS) EstimatePow(y []float64) float64 {
	if len(y) != s.Dim() {
		panic("sketch: AMS sketch length mismatch")
	}
	groups := make([]float64, s.reps)
	for g := 0; g < s.reps; g++ {
		var sum float64
		for c := 0; c < s.cols; c++ {
			v := y[g*s.cols+c]
			sum += v * v
		}
		groups[g] = sum / float64(s.cols)
	}
	return median(groups)
}
