// Package sketch implements the linear sketches the paper's protocols are
// built from (its Lemmas 2.1, 2.5 and 2.6):
//
//   - AMS sign sketches for the ℓ2 norm (Alon–Matias–Szegedy),
//   - Indyk p-stable sketches for ℓp norms, 0 < p < 2,
//   - an occupancy-based linear ℓ0 (distinct elements) sketch over
//     GF(2^61−1),
//   - exact 1-sparse recovery and the ℓ0-sampler built on it,
//   - CountSketch and the tensor CountSketch used to realize the
//     distributed matrix product of Lemma 2.5,
//   - the block-partitioned AMS sketch behind the general-matrix ℓ∞
//     protocol of Theorem 4.8(1).
//
// Every sketch here is *linear* in the input vector (over R or over the
// field), which is the property the protocols exploit: Bob sketches his
// rows of B, ships the sketches, and Alice assembles sketches of rows of
// C = A·B as integer linear combinations without ever seeing B.
//
// All randomness is drawn from rng.RNG streams derived from a shared seed,
// so the two parties construct identical sketching matrices for free
// (public-coin model).
//
// # Concurrency
//
// A constructed sketch is immutable: Apply, AddCoord, Estimate,
// EstimatePow, Decode and the compression helpers only read the drawn
// hash functions and matrices and write caller-owned buffers. The
// row-shard parallel serve path in internal/core depends on this — one
// shared sketch family is applied to disjoint row ranges from many
// goroutines at once — so any new sketch added here must keep its
// post-construction methods free of internal mutation.
package sketch
