package sketch

import (
	"testing"

	"repro/internal/intmat"
	"repro/internal/rng"
)

// Micro-benchmarks for the sketch kernels: these dominate the local
// compute time of the protocols (communication is the model's cost, but
// the harness has to run in real time).

func benchVector(n int) []int64 {
	r := rng.New(42)
	x := make([]int64, n)
	for i := range x {
		if r.Bernoulli(0.2) {
			x[i] = r.Int63n(9) - 4
		}
	}
	return x
}

func BenchmarkAMSApply(b *testing.B) {
	s := NewAMS(rng.New(1), 1024, 5, 32)
	x := benchVector(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(x)
	}
}

func BenchmarkStableApply(b *testing.B) {
	s := NewStable(rng.New(2), 1024, 1, 101)
	x := benchVector(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(x)
	}
}

func BenchmarkL0Apply(b *testing.B) {
	s := NewL0(rng.New(3), 1024, 64)
	x := benchVector(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(x)
	}
}

func BenchmarkL0Estimate(b *testing.B) {
	s := NewL0(rng.New(4), 1024, 64)
	sk := s.Apply(benchVector(1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate(sk)
	}
}

func BenchmarkAxpyField(b *testing.B) {
	s := NewL0(rng.New(5), 1024, 64)
	sk := s.Apply(benchVector(1024))
	acc := make([]uint64, len(sk))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AxpyField(acc, 3, sk)
	}
}

func BenchmarkTensorCSDecode(b *testing.B) {
	n := 64
	r := rng.New(6)
	c := intmat.NewDense(n, n)
	for i := 0; i < 200; i++ {
		c.Set(r.Intn(n), r.Intn(n), 1+r.Int63n(5))
	}
	ts := NewTensorCS(rng.New(7), n, n, n, c.L0(), 7)
	sk := ts.SketchDirect(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Decode(sk)
	}
}

func BenchmarkL0SamplerDecode(b *testing.B) {
	s := NewL0Sampler(rng.New(8), 1024, 4)
	sk := s.Apply(benchVector(1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Decode(sk)
	}
}
