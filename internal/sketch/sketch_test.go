package sketch

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// median must not mutate its input.
	in := []float64{3, 1, 2}
	median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("median mutated its input")
	}
}

func TestAxpyFloat(t *testing.T) {
	y := []float64{1, 2}
	AxpyFloat(y, 3, []float64{10, -1})
	if y[0] != 31 || y[1] != -1 {
		t.Fatalf("AxpyFloat = %v", y)
	}
}

func l2pow(x []int64) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return s
}

func lppow(x []int64, p float64) float64 {
	var s float64
	for _, v := range x {
		if v != 0 {
			s += math.Pow(math.Abs(float64(v)), p)
		}
	}
	return s
}

func TestAMSAccuracy(t *testing.T) {
	r := rng.New(100)
	n := 500
	x := make([]int64, n)
	for i := range x {
		x[i] = r.Int63n(21) - 10
	}
	truth := l2pow(x)
	s := NewAMS(r.Derive("ams"), n, 9, 64)
	est := s.EstimatePow(s.Apply(x))
	if rel := math.Abs(est-truth) / truth; rel > 0.25 {
		t.Fatalf("AMS estimate %v vs truth %v (rel err %.3f)", est, truth, rel)
	}
}

func TestAMSLinearity(t *testing.T) {
	r := rng.New(101)
	n := 100
	s := NewAMS(r, n, 3, 8)
	x := make([]int64, n)
	y := make([]int64, n)
	z := make([]int64, n)
	rr := rng.New(55)
	for i := range x {
		x[i] = rr.Int63n(9) - 4
		y[i] = rr.Int63n(9) - 4
		z[i] = x[i] + 3*y[i]
	}
	sx, sy, sz := s.Apply(x), s.Apply(y), s.Apply(z)
	combined := make([]float64, len(sx))
	copy(combined, sx)
	AxpyFloat(combined, 3, sy)
	for i := range sz {
		if math.Abs(combined[i]-sz[i]) > 1e-9 {
			t.Fatalf("AMS not linear at %d: %v vs %v", i, combined[i], sz[i])
		}
	}
}

func TestAMSZeroVector(t *testing.T) {
	r := rng.New(102)
	s := NewAMS(r, 10, 3, 4)
	if est := s.EstimatePow(s.Apply(make([]int64, 10))); est != 0 {
		t.Fatalf("AMS estimate of zero vector = %v", est)
	}
}

func TestAMSSharedSeedAgreement(t *testing.T) {
	// Alice and Bob build the sketch from the same derived stream and
	// must agree exactly.
	x := []int64{1, -2, 3, 0, 5}
	a := NewAMS(rng.New(7).Derive("s"), 5, 2, 4)
	b := NewAMS(rng.New(7).Derive("s"), 5, 2, 4)
	sa, sb := a.Apply(x), b.Apply(x)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("shared-seed AMS sketches differ")
		}
	}
}

func TestStableAccuracy(t *testing.T) {
	r := rng.New(103)
	n := 400
	x := make([]int64, n)
	for i := range x {
		x[i] = r.Int63n(15) - 7
	}
	for _, p := range []float64{0.5, 1, 1.5} {
		truth := lppow(x, p)
		s := NewStable(r.Derive("stable", "p"), n, p, 401)
		est := s.EstimatePow(s.Apply(x))
		if rel := math.Abs(est-truth) / truth; rel > 0.35 {
			t.Errorf("p=%v: estimate %v vs truth %v (rel err %.3f)", p, est, truth, rel)
		}
	}
}

func TestStableLinearity(t *testing.T) {
	r := rng.New(104)
	n := 50
	s := NewStable(r, n, 1, 21)
	x := make([]int64, n)
	y := make([]int64, n)
	rr := rng.New(56)
	for i := range x {
		x[i] = rr.Int63n(9) - 4
		y[i] = rr.Int63n(9) - 4
	}
	z := make([]int64, n)
	for i := range z {
		z[i] = 2*x[i] - y[i]
	}
	sx, sy, sz := s.Apply(x), s.Apply(y), s.Apply(z)
	combined := make([]float64, len(sx))
	AxpyFloat(combined, 2, sx)
	AxpyFloat(combined, -1, sy)
	for i := range sz {
		if math.Abs(combined[i]-sz[i]) > 1e-6 {
			t.Fatalf("Stable not linear at %d", i)
		}
	}
}

func TestStableRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 2, -1, 2.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStable(p=%v) did not panic", p)
				}
			}()
			NewStable(rng.New(1), 10, p, 5)
		}()
	}
}

func TestStableMedianCalibrationCauchy(t *testing.T) {
	// The Cauchy |X| median is exactly 1.
	if m := stableMedian(1); math.Abs(m-1) > 0.01 {
		t.Fatalf("calibrated Cauchy median %v, want ~1", m)
	}
	// Cache must return the identical value.
	if m1, m2 := stableMedian(1.5), stableMedian(1.5); m1 != m2 {
		t.Fatal("stableMedian cache not stable")
	}
}
