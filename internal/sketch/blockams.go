package sketch

import (
	"math"

	"repro/internal/rng"
)

// BlockAMS is the ℓ∞ sketch behind Theorem 4.8(1): the coordinate range
// [n] is partitioned into blocks of size blockSize = κ², and each block
// carries a small AMS ℓ2 sketch. Since for a block vector y of dimension
// κ² we have ‖y‖∞ ∈ [‖y‖2/κ, ‖y‖2], the maximum per-block ℓ2 estimate is
// a κ-approximation (up to the AMS constant) of ‖x‖∞ with sketch size
// Õ(n/κ²) — exactly the tradeoff the theorem claims, and matched by the
// Ω̃(n²/κ²) lower bound when applied column-wise to a matrix product.
type BlockAMS struct {
	n         int
	blockSize int
	blocks    []*AMS
	offsets   []int // flattened sketch offset per block
	dim       int
}

// NewBlockAMS constructs the sketch for dimension-n vectors with the
// given block size (callers pass κ²) and per-block AMS shape.
func NewBlockAMS(r *rng.RNG, n, blockSize, reps, cols int) *BlockAMS {
	if blockSize < 1 {
		panic("sketch: BlockAMS needs blockSize >= 1")
	}
	b := &BlockAMS{n: n, blockSize: blockSize}
	for start := 0; start < n; start += blockSize {
		size := blockSize
		if start+size > n {
			size = n - start
		}
		a := NewAMS(r, size, reps, cols)
		b.offsets = append(b.offsets, b.dim)
		b.blocks = append(b.blocks, a)
		b.dim += a.Dim()
	}
	if n == 0 {
		b.dim = 0
	}
	return b
}

// Dim returns the total sketch length in float64 words.
func (b *BlockAMS) Dim() int { return b.dim }

// NumBlocks returns the number of blocks.
func (b *BlockAMS) NumBlocks() int { return len(b.blocks) }

// Apply sketches the integer vector x.
func (b *BlockAMS) Apply(x []int64) []float64 {
	if len(x) != b.n {
		panic("sketch: BlockAMS dimension mismatch")
	}
	y := make([]float64, b.dim)
	for bi, a := range b.blocks {
		start := bi * b.blockSize
		seg := x[start:min(start+b.blockSize, b.n)]
		copy(y[b.offsets[bi]:], a.Apply(seg))
	}
	return y
}

// EstimateMax returns the maximum per-block ℓ2 estimate, which lies in
// [‖x‖∞, κ·‖x‖∞] up to the AMS multiplicative error for blockSize = κ².
func (b *BlockAMS) EstimateMax(y []float64) float64 {
	if len(y) != b.dim {
		panic("sketch: BlockAMS sketch length mismatch")
	}
	best := 0.0
	for bi, a := range b.blocks {
		sq := a.EstimatePow(y[b.offsets[bi] : b.offsets[bi]+a.Dim()])
		if v := math.Sqrt(sq); v > best {
			best = v
		}
	}
	return best
}
