package sketch

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/rng"
)

func sparseVector(r *rng.RNG, n, support int, maxAbs int64) []int64 {
	x := make([]int64, n)
	placed := 0
	for placed < support {
		j := r.Intn(n)
		if x[j] != 0 {
			continue
		}
		v := r.Int63n(2*maxAbs+1) - maxAbs
		if v == 0 {
			v = 1
		}
		x[j] = v
		placed++
	}
	return x
}

func TestL0ZeroVector(t *testing.T) {
	s := NewL0(rng.New(200), 64, 16)
	if est := s.Estimate(s.Apply(make([]int64, 64))); est != 0 {
		t.Fatalf("estimate of zero vector = %v", est)
	}
}

func TestL0SmallSupportNearExact(t *testing.T) {
	r := rng.New(201)
	n := 1024
	s := NewL0(r, n, 64)
	for _, support := range []int{1, 2, 5, 10} {
		x := sparseVector(r.Derive("x"), n, support, 100)
		est := s.Estimate(s.Apply(x))
		if math.Abs(est-float64(support)) > 2+0.3*float64(support) {
			t.Errorf("support=%d: estimate %v", support, est)
		}
	}
}

func TestL0Accuracy(t *testing.T) {
	r := rng.New(202)
	n := 2048
	buckets := 128
	// Average the relative error over several supports and fresh sketches.
	var worst float64
	for trial := 0; trial < 5; trial++ {
		s := NewL0(r.Derive("sk", string(rune('a'+trial))), n, buckets)
		support := 200 + 150*trial
		x := sparseVector(r.Derive("vec", string(rune('a'+trial))), n, support, 50)
		est := s.Estimate(s.Apply(x))
		rel := math.Abs(est-float64(support)) / float64(support)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.35 {
		t.Fatalf("worst relative error %.3f over trials", worst)
	}
}

func TestL0Linearity(t *testing.T) {
	r := rng.New(203)
	n := 128
	s := NewL0(r, n, 16)
	x := sparseVector(rng.New(1), n, 20, 9)
	y := sparseVector(rng.New(2), n, 20, 9)
	z := make([]int64, n)
	for i := range z {
		z[i] = 3*x[i] - 2*y[i]
	}
	sx, sy, sz := s.Apply(x), s.Apply(y), s.Apply(z)
	combined := make([]field.Elem, len(sx))
	AxpyField(combined, 3, sx)
	AxpyField(combined, -2, sy)
	for i := range sz {
		if combined[i] != sz[i] {
			t.Fatalf("L0 sketch not linear at %d", i)
		}
	}
}

func TestL0SharedSeedAgreement(t *testing.T) {
	x := sparseVector(rng.New(3), 64, 10, 5)
	a := NewL0(rng.New(42).Derive("l0"), 64, 16)
	b := NewL0(rng.New(42).Derive("l0"), 64, 16)
	sa, sb := a.Apply(x), b.Apply(x)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("shared-seed L0 sketches differ")
		}
	}
}

func TestL0FullSupport(t *testing.T) {
	// Dense vector: every coordinate non-zero.
	r := rng.New(204)
	n := 512
	s := NewL0(r, n, 128)
	x := make([]int64, n)
	for i := range x {
		x[i] = 1
	}
	est := s.Estimate(s.Apply(x))
	if rel := math.Abs(est-float64(n)) / float64(n); rel > 0.35 {
		t.Fatalf("dense estimate %v vs %d", est, n)
	}
}

func TestAxpyFieldZeroCoefficient(t *testing.T) {
	y := []field.Elem{5, 6}
	AxpyField(y, 0, []field.Elem{100, 100})
	if y[0] != 5 || y[1] != 6 {
		t.Fatal("AxpyField with zero coefficient changed the accumulator")
	}
}

func TestAxpyFieldNegative(t *testing.T) {
	s := NewL0(rng.New(205), 32, 8)
	x := sparseVector(rng.New(6), 32, 5, 9)
	sx := s.Apply(x)
	acc := make([]field.Elem, len(sx))
	AxpyField(acc, 1, sx)
	AxpyField(acc, -1, sx)
	for i, v := range acc {
		if v != 0 {
			t.Fatalf("x - x sketch non-zero at %d", i)
		}
	}
}
