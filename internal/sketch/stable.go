package sketch

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/rng"
)

// Stable is Indyk's p-stable sketch for ℓp norms with 0 < p < 2. The
// sketching matrix S has i.i.d. standard symmetric p-stable entries
// (Chambers–Mallows–Stuck generator); each measurement (Sx)_i is then
// distributed as ‖x‖p · X for a standard p-stable X, so
// median(|Sx|) / median(|X|) estimates ‖x‖p.
//
// The normalizer median(|X|) has no closed form for general p; it is
// calibrated empirically once per p from a large fixed-seed sample and
// cached process-wide. The calibration error (< 0.3% at 400001 samples)
// is far below the sketch's own O(1/√rows) estimation error.
type Stable struct {
	n     int
	rows  int
	p     float64
	scale float64     // median of |standard p-stable|
	mat   [][]float64 // rows × n sketching matrix
}

var (
	stableMedianMu    sync.Mutex
	stableMedianCache = map[float64]float64{}
)

// stableMedian returns the median of |X| for standard p-stable X,
// calibrated empirically with a fixed seed and cached.
func stableMedian(p float64) float64 {
	stableMedianMu.Lock()
	defer stableMedianMu.Unlock()
	if m, ok := stableMedianCache[p]; ok {
		return m
	}
	const samples = 400001
	r := rng.New(0x57ab1e0ca1) // fixed calibration stream, independent of sketches
	v := make([]float64, samples)
	for i := range v {
		v[i] = math.Abs(r.Stable(p))
	}
	m := median(v)
	stableMedianCache[p] = m
	return m
}

// NewStable constructs a p-stable sketch with the given number of
// measurement rows for dimension-n vectors. rows = O(1/ε²) yields a
// (1±ε) estimate with constant probability.
func NewStable(r *rng.RNG, n int, p float64, rows int) *Stable {
	if p <= 0 || p >= 2 {
		panic(fmt.Sprintf("sketch: Stable requires 0 < p < 2, got %v", p))
	}
	if rows < 1 {
		panic("sketch: Stable needs rows >= 1")
	}
	s := &Stable{n: n, rows: rows, p: p, scale: stableMedian(p)}
	s.mat = make([][]float64, rows)
	for i := range s.mat {
		row := make([]float64, n)
		for j := range row {
			row[j] = r.Stable(p)
		}
		s.mat[i] = row
	}
	return s
}

// Dim returns the sketch length.
func (s *Stable) Dim() int { return s.rows }

// P returns the norm index.
func (s *Stable) P() float64 { return s.p }

// Apply sketches the integer vector x.
func (s *Stable) Apply(x []int64) []float64 {
	if len(x) != s.n {
		panic("sketch: Stable dimension mismatch")
	}
	y := make([]float64, s.rows)
	for j, v := range x {
		if v != 0 {
			s.AddCoord(y, j, v)
		}
	}
	return y
}

// AddCoord adds value v at coordinate j into an existing sketch
// (turnstile update).
func (s *Stable) AddCoord(y []float64, j int, v int64) {
	fv := float64(v)
	for i := range y {
		y[i] += s.mat[i][j] * fv
	}
}

// EstimatePow estimates ‖x‖p^p from a sketch of x.
func (s *Stable) EstimatePow(y []float64) float64 {
	if len(y) != s.rows {
		panic("sketch: Stable sketch length mismatch")
	}
	abs := make([]float64, len(y))
	for i, v := range y {
		abs[i] = math.Abs(v)
	}
	norm := medianInPlace(abs) / s.scale
	return math.Pow(norm, s.p)
}
