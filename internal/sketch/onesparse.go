package sketch

import (
	"repro/internal/field"
	"repro/internal/rng"
)

// OneSparse is an exact 1-sparse recovery structure over GF(2^61−1): three
// field words (value sum, index-weighted sum, polynomial fingerprint) from
// which a vector with exactly one non-zero coordinate can be decoded, and
// vectors with zero or ≥2 non-zero coordinates are detected as such with
// probability 1 − O(n/p).
//
// It is the leaf structure of the ℓ0-sampler (Lemma 2.6). Indices are
// shifted by one internally so coordinate 0 is distinguishable from "empty".
type OneSparse struct {
	n int
	r field.Elem // fingerprint evaluation point, shared between parties
}

// OneSparseState is the 3-word linear state of a OneSparse structure.
type OneSparseState struct {
	Sum    field.Elem // Σ x_j
	IxSum  field.Elem // Σ (j+1)·x_j
	Finger field.Elem // Σ x_j·r^(j+1)
}

// NewOneSparse constructs the structure for dimension-n vectors.
func NewOneSparse(r *rng.RNG, n int) *OneSparse {
	pt := field.Reduce(r.Uint64())
	if pt < 2 {
		pt = 2
	}
	return &OneSparse{n: n, r: pt}
}

// Add accumulates value v at coordinate j into the state.
func (o *OneSparse) Add(st *OneSparseState, j int, v int64) {
	if j < 0 || j >= o.n {
		panic("sketch: OneSparse coordinate out of range")
	}
	fv := field.ReduceInt(v)
	st.Sum = field.Add(st.Sum, fv)
	st.IxSum = field.Add(st.IxSum, field.Mul(field.Reduce(uint64(j+1)), fv))
	st.Finger = field.Add(st.Finger, field.Mul(fv, field.Pow(o.r, uint64(j+1))))
}

// Combine accumulates a·src into dst — the linearity used when parties
// combine transmitted states.
func (o *OneSparse) Combine(dst *OneSparseState, a int64, src OneSparseState) {
	fa := field.ReduceInt(a)
	if fa == 0 {
		return
	}
	dst.Sum = field.Add(dst.Sum, field.Mul(fa, src.Sum))
	dst.IxSum = field.Add(dst.IxSum, field.Mul(fa, src.IxSum))
	dst.Finger = field.Add(dst.Finger, field.Mul(fa, src.Finger))
}

// Decode inspects the state. It returns:
//
//	kind == 0: the underlying vector is zero;
//	kind == 1: exactly one non-zero coordinate, returned as (index, value);
//	kind == 2: more than one non-zero coordinate (or an undetected
//	           cancellation, probability O(n/2^61)).
func (o *OneSparse) Decode(st OneSparseState) (kind, index int, value int64) {
	if st.Sum == 0 && st.IxSum == 0 && st.Finger == 0 {
		return 0, 0, 0
	}
	if st.Sum == 0 {
		return 2, 0, 0
	}
	// Candidate index from the ratio; must be an integer in [1, n].
	ix := field.Mul(st.IxSum, field.Inv(st.Sum))
	if ix == 0 || ix > uint64(o.n) {
		return 2, 0, 0
	}
	// Fingerprint check: a 1-sparse vector with value s at coordinate
	// ix-1 has fingerprint s·r^ix.
	if st.Finger != field.Mul(st.Sum, field.Pow(o.r, ix)) {
		return 2, 0, 0
	}
	return 1, int(ix - 1), field.ToInt(st.Sum)
}
