package sketch

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/rng"
)

func TestOneSparseStates(t *testing.T) {
	r := rng.New(300)
	os := NewOneSparse(r, 100)

	// Zero vector.
	var st OneSparseState
	if kind, _, _ := os.Decode(st); kind != 0 {
		t.Fatalf("zero state decoded as kind %d", kind)
	}

	// Exactly one coordinate.
	os.Add(&st, 37, -5)
	kind, ix, v := os.Decode(st)
	if kind != 1 || ix != 37 || v != -5 {
		t.Fatalf("decode = (%d,%d,%d), want (1,37,-5)", kind, ix, v)
	}

	// Coordinate 0 must be distinguishable from empty.
	var st0 OneSparseState
	os.Add(&st0, 0, 7)
	kind, ix, v = os.Decode(st0)
	if kind != 1 || ix != 0 || v != 7 {
		t.Fatalf("decode = (%d,%d,%d), want (1,0,7)", kind, ix, v)
	}

	// Two coordinates must be detected.
	os.Add(&st, 11, 3)
	if kind, _, _ := os.Decode(st); kind != 2 {
		t.Fatalf("2-sparse state decoded as kind %d", kind)
	}

	// Cancellation back to 1-sparse.
	os.Add(&st, 11, -3)
	kind, ix, v = os.Decode(st)
	if kind != 1 || ix != 37 || v != -5 {
		t.Fatalf("after cancel decode = (%d,%d,%d)", kind, ix, v)
	}
}

func TestOneSparseManyCollisionsDetected(t *testing.T) {
	r := rng.New(301)
	os := NewOneSparse(r, 1000)
	for trial := 0; trial < 200; trial++ {
		var st OneSparseState
		rr := rng.New(uint64(trial) + 1)
		k := 2 + rr.Intn(5)
		for i := 0; i < k; i++ {
			os.Add(&st, rr.Intn(1000), rr.Int63n(9)+1)
		}
		kind, _, _ := os.Decode(st)
		if kind == 1 {
			// Could legitimately be 1-sparse if coordinates repeated and
			// merged; verify by recomputing. Simpler: only fail when a
			// clearly multi-coordinate state decodes as 1-sparse — the
			// fingerprint makes this probability ~2^-40, so any
			// occurrence is a bug. Rebuild the true vector to check.
			vec := make(map[int]int64)
			rr2 := rng.New(uint64(trial) + 1)
			k2 := 2 + rr2.Intn(5)
			for i := 0; i < k2; i++ {
				j := rr2.Intn(1000)
				vec[j] += rr2.Int63n(9) + 1
			}
			nonzero := 0
			for _, v := range vec {
				if v != 0 {
					nonzero++
				}
			}
			if nonzero != 1 {
				t.Fatalf("trial %d: %d-sparse state decoded as 1-sparse", trial, nonzero)
			}
		}
	}
}

func TestOneSparseCombine(t *testing.T) {
	r := rng.New(302)
	os := NewOneSparse(r, 50)
	var a, b OneSparseState
	os.Add(&a, 10, 4)
	os.Add(&b, 10, 1)
	// a - 4*b should be the zero vector.
	var combined OneSparseState
	os.Combine(&combined, 1, a)
	os.Combine(&combined, -4, b)
	if kind, _, _ := os.Decode(combined); kind != 0 {
		t.Fatalf("a-4b decoded as kind %d, want 0", kind)
	}
}

func TestL0SamplerBasic(t *testing.T) {
	r := rng.New(303)
	n := 256
	s := NewL0Sampler(r, n, 4)
	x := sparseVector(rng.New(9), n, 12, 20)
	idx, val, ok := s.Decode(s.Apply(x))
	if !ok {
		t.Fatal("sampler failed on 12-sparse vector")
	}
	if x[idx] == 0 {
		t.Fatalf("sampled coordinate %d not in support", idx)
	}
	if val != x[idx] {
		t.Fatalf("sampled value %d, want %d", val, x[idx])
	}
}

func TestL0SamplerZeroVector(t *testing.T) {
	s := NewL0Sampler(rng.New(304), 64, 3)
	if _, _, ok := s.Decode(s.Apply(make([]int64, 64))); ok {
		t.Fatal("sampler returned a coordinate for the zero vector")
	}
}

func TestL0SamplerSuccessRate(t *testing.T) {
	// Across many fresh samplers the failure rate should be small.
	n := 512
	fails := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		s := NewL0Sampler(rng.New(uint64(1000+i)), n, 4)
		x := sparseVector(rng.New(uint64(2000+i)), n, 30, 10)
		if _, _, ok := s.Decode(s.Apply(x)); !ok {
			fails++
		}
	}
	if fails > 5 {
		t.Fatalf("sampler failed %d/%d times", fails, trials)
	}
}

func TestL0SamplerNearUniform(t *testing.T) {
	// Distribution over the support across independent samplers should be
	// close to uniform: max deviation from the uniform frequency within
	// 5 standard deviations.
	n := 128
	support := 8
	x := sparseVector(rng.New(77), n, support, 5)
	counts := make(map[int]int)
	const trials = 1200
	for i := 0; i < trials; i++ {
		s := NewL0Sampler(rng.New(uint64(5000+i)), n, 4)
		if idx, _, ok := s.Decode(s.Apply(x)); ok {
			counts[idx]++
		}
	}
	total := 0
	for idx, c := range counts {
		if x[idx] == 0 {
			t.Fatalf("sampled non-support coordinate %d", idx)
		}
		total += c
	}
	want := float64(total) / float64(support)
	sigma := math.Sqrt(want)
	for idx, c := range counts {
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Errorf("coordinate %d sampled %d times, want ~%.0f", idx, c, want)
		}
	}
	if len(counts) != support {
		t.Errorf("only %d/%d support coordinates ever sampled", len(counts), support)
	}
}

func TestL0SamplerLinearCombine(t *testing.T) {
	// The sampler sketch must be linear: sketch(3x) = 3·sketch(x).
	r := rng.New(305)
	n := 64
	s := NewL0Sampler(r, n, 2)
	x := sparseVector(rng.New(8), n, 6, 4)
	x3 := make([]int64, n)
	for i := range x {
		x3[i] = 3 * x[i]
	}
	sx := s.Apply(x)
	combined := make([]field.Elem, len(sx))
	AxpyField(combined, 3, sx)
	direct := s.Apply(x3)
	for i := range direct {
		if combined[i] != direct[i] {
			t.Fatalf("sampler sketch not linear at word %d", i)
		}
	}
}

func TestL0SamplerDimMatchesLayout(t *testing.T) {
	for _, reps := range []int{1, 3} {
		s := NewL0Sampler(rng.New(306), 100, reps)
		if got := len(s.Apply(make([]int64, 100))); got != s.Dim() {
			t.Errorf("reps=%d: Apply length %d != Dim %d", reps, got, s.Dim())
		}
	}
}

func BenchmarkL0SamplerApply(b *testing.B) {
	s := NewL0Sampler(rng.New(1), 1024, 4)
	x := sparseVector(rng.New(2), 1024, 100, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Apply(x)
	}
}

func ExampleL0Sampler() {
	s := NewL0Sampler(rng.New(1), 8, 4)
	x := []int64{0, 0, 42, 0, 0, 0, 0, 0}
	idx, val, ok := s.Decode(s.Apply(x))
	fmt.Println(idx, val, ok)
	// Output: 2 42 true
}
