package sketch

// median returns the median of v (averaging the middle pair for even
// lengths). It copies the input.
func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	return medianInPlace(s)
}

// medianInPlace returns the median of v, reordering v. Median estimators
// sit on the serving hot path (one per sketched row of C per query), so
// this selects the order statistics in O(n) instead of sorting — the
// returned value is identical either way.
func medianInPlace(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := len(v) / 2
	upper := selectKth(v, m)
	if len(v)%2 == 1 {
		return upper
	}
	// selectKth leaves the m smallest values in v[:m]; their maximum is
	// the lower middle element.
	lower := v[0]
	for _, x := range v[1:m] {
		if x > lower {
			lower = x
		}
	}
	return (lower + upper) / 2
}

// selectKth partitions v so that v[k] holds its kth-smallest element,
// everything before it is ≤ v[k], and everything after is ≥ v[k]
// (Hoare-partition quickselect with median-of-three pivots).
func selectKth(v []float64, k int) float64 {
	lo, hi := 0, len(v)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if v[mid] < v[lo] {
			v[mid], v[lo] = v[lo], v[mid]
		}
		if v[hi] < v[lo] {
			v[hi], v[lo] = v[lo], v[hi]
		}
		if v[hi] < v[mid] {
			v[hi], v[mid] = v[mid], v[hi]
		}
		pivot := v[mid]
		i, j := lo, hi
		for i <= j {
			for v[i] < pivot {
				i++
			}
			for v[j] > pivot {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return v[k]
		}
	}
	return v[lo]
}

// FloatSketch is a linear sketch over the reals: Apply maps an integer
// vector to its sketch, and EstimatePow maps a sketch back to an estimate
// of ‖x‖p^p (with the paper's convention ‖x‖0^0 = ‖x‖0). Sketches of
// x and y add: Apply(x+y) = Apply(x) + Apply(y) entrywise, so callers can
// assemble sketches of linear combinations themselves.
type FloatSketch interface {
	// Dim is the sketch length in float64 words.
	Dim() int
	// Apply sketches an integer vector of the configured dimension.
	Apply(x []int64) []float64
	// EstimatePow estimates ‖x‖p^p from a sketch of x.
	EstimatePow(y []float64) float64
	// P returns the norm index the sketch estimates.
	P() float64
}

// axpyFloat accumulates y += a·x for float sketches.
func axpyFloat(y []float64, a float64, x []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// AxpyFloat exposes the sketch combination primitive: y += a·x.
// Protocols use it to build sketches of rows of C from sketches of rows
// of B with integer coefficients from A.
func AxpyFloat(y []float64, a float64, x []float64) { axpyFloat(y, a, x) }
