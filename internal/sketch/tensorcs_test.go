package sketch

import (
	"testing"

	"repro/internal/intmat"
	"repro/internal/rng"
)

func randomSparseProduct(seed uint64, n, density int) (*intmat.Dense, *intmat.Dense, *intmat.Dense) {
	r := rng.New(seed)
	a := intmat.NewDense(n, n)
	b := intmat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < density; k++ {
			a.Set(i, r.Intn(n), r.Int63n(5)+1)
			b.Set(r.Intn(n), i, r.Int63n(5)+1)
		}
	}
	return a, b, a.Mul(b)
}

func TestTensorCSDistributedEqualsDirect(t *testing.T) {
	a, b, c := randomSparseProduct(400, 40, 2)
	ts := NewTensorCS(rng.New(401), 40, 40, 40, c.L0(), 5)
	direct := ts.SketchDirect(c)
	distributed := ts.SketchFromCompressed(a, ts.ColCompress(b))
	if len(direct) != len(distributed) {
		t.Fatal("sketch length mismatch")
	}
	for i := range direct {
		if direct[i] != distributed[i] {
			t.Fatalf("sketch mismatch at %d: %d vs %d", i, direct[i], distributed[i])
		}
	}
}

func TestTensorCSExactRecovery(t *testing.T) {
	a, b, c := randomSparseProduct(402, 48, 2)
	ts := NewTensorCS(rng.New(403), 48, 48, 48, c.L0(), 7)
	sk := ts.SketchFromCompressed(a, ts.ColCompress(b))
	got := intmat.NewSparse(48, 48, ts.Decode(sk)).ToDense()
	if !got.Equal(c) {
		diff := 0
		for i := 0; i < 48; i++ {
			for j := 0; j < 48; j++ {
				if got.Get(i, j) != c.Get(i, j) {
					diff++
				}
			}
		}
		t.Fatalf("decode differs from C in %d cells (‖C‖0=%d)", diff, c.L0())
	}
}

func TestTensorCSPointQueryOnKnownEntries(t *testing.T) {
	a, b, c := randomSparseProduct(404, 32, 3)
	ts := NewTensorCS(rng.New(405), 32, 32, 32, c.L0(), 7)
	sk := ts.SketchFromCompressed(a, ts.ColCompress(b))
	wrong := 0
	for _, e := range c.NonZeros() {
		if got := ts.PointQuery(sk, e.I, e.J); got != e.V {
			wrong++
		}
	}
	if wrong > 0 {
		t.Fatalf("%d/%d point queries wrong", wrong, c.L0())
	}
}

func TestTensorCSNegativeEntries(t *testing.T) {
	a := intmat.NewDense(10, 10)
	b := intmat.NewDense(10, 10)
	a.Set(0, 0, -3)
	a.Set(5, 2, 7)
	b.Set(0, 1, 4)
	b.Set(2, 9, -2)
	c := a.Mul(b)
	ts := NewTensorCS(rng.New(406), 10, 10, 10, 4, 7)
	sk := ts.SketchFromCompressed(a, ts.ColCompress(b))
	got := intmat.NewSparse(10, 10, ts.Decode(sk)).ToDense()
	if !got.Equal(c) {
		t.Fatal("negative-entry recovery failed")
	}
}

func TestTensorCSZeroMatrix(t *testing.T) {
	a := intmat.NewDense(8, 8)
	b := intmat.NewDense(8, 8)
	ts := NewTensorCS(rng.New(407), 8, 8, 8, 1, 5)
	sk := ts.SketchFromCompressed(a, ts.ColCompress(b))
	if entries := ts.Decode(sk); len(entries) != 0 {
		t.Fatalf("decoded %d entries from zero product", len(entries))
	}
}

func TestTensorCSRectangular(t *testing.T) {
	// A is 20×30, B is 30×12 — the Section 6 rectangular case.
	r := rng.New(408)
	a := intmat.NewDense(20, 30)
	b := intmat.NewDense(30, 12)
	for i := 0; i < 20; i++ {
		a.Set(i, r.Intn(30), 1+r.Int63n(3))
	}
	for j := 0; j < 12; j++ {
		b.Set(r.Intn(30), j, 1+r.Int63n(3))
	}
	c := a.Mul(b)
	ts := NewTensorCS(rng.New(409), 20, 30, 12, c.L0()+1, 7)
	sk := ts.SketchFromCompressed(a, ts.ColCompress(b))
	got := intmat.NewSparse(20, 12, ts.Decode(sk)).ToDense()
	if !got.Equal(c) {
		t.Fatal("rectangular recovery failed")
	}
}

func TestTensorCSGridSizing(t *testing.T) {
	ts := NewTensorCS(rng.New(410), 100, 100, 100, 25, 5)
	if side := ts.GridSide(); side*side < 16*25 {
		t.Fatalf("grid side %d too small for s=25", side)
	}
	if ts.Reps() != 5 {
		t.Fatal("reps wrong")
	}
	if got, want := ts.CompressedSize(), 5*100*ts.GridSide(); got != want {
		t.Fatalf("CompressedSize = %d, want %d", got, want)
	}
}

func TestCountSketchPointQuery(t *testing.T) {
	r := rng.New(411)
	n := 300
	x := make([]int64, n)
	// A few heavy coordinates on light noise.
	x[7] = 1000
	x[100] = -800
	for i := 0; i < 50; i++ {
		x[r.Intn(n)] += r.Int63n(11) - 5
	}
	cs := NewCountSketch(r, n, 7, 64)
	sk := cs.Apply(x)
	if got := cs.PointQuery(sk, 7); got < 900 || got > 1100 {
		t.Fatalf("PointQuery(7) = %d, want ~1000", got)
	}
	if got := cs.PointQuery(sk, 100); got > -700 || got < -900 {
		t.Fatalf("PointQuery(100) = %d, want ~-800", got)
	}
}

func TestCountSketchLinearity(t *testing.T) {
	cs := NewCountSketch(rng.New(412), 50, 3, 16)
	x := sparseVector(rng.New(11), 50, 10, 9)
	skx := cs.Apply(x)
	x2 := make([]int64, 50)
	for i := range x {
		x2[i] = 2 * x[i]
	}
	skx2 := cs.Apply(x2)
	for i := range skx {
		if 2*skx[i] != skx2[i] {
			t.Fatal("CountSketch not linear")
		}
	}
}

func TestBlockAMSMaxEstimate(t *testing.T) {
	r := rng.New(413)
	n := 256
	kappa := 4
	x := make([]int64, n)
	for i := range x {
		x[i] = r.Int63n(5)
	}
	x[130] = 100 // dominant entry
	b := NewBlockAMS(r, n, kappa*kappa, 5, 24)
	est := b.EstimateMax(b.Apply(x))
	// Estimate must lie in [‖x‖∞, κ·‖x‖∞] up to AMS error.
	if est < 80 || est > float64(kappa)*130 {
		t.Fatalf("BlockAMS estimate %v for ‖x‖∞=100, κ=%d", est, kappa)
	}
}

func TestBlockAMSUnevenLastBlock(t *testing.T) {
	// n not divisible by blockSize must still work.
	b := NewBlockAMS(rng.New(414), 100, 16, 3, 8)
	if b.NumBlocks() != 7 {
		t.Fatalf("NumBlocks = %d, want 7", b.NumBlocks())
	}
	x := make([]int64, 100)
	x[99] = 50
	est := b.EstimateMax(b.Apply(x))
	if est < 25 || est > 100 {
		t.Fatalf("estimate %v for single spike 50", est)
	}
}

func TestBlockAMSLinearity(t *testing.T) {
	b := NewBlockAMS(rng.New(415), 64, 16, 2, 8)
	x := sparseVector(rng.New(12), 64, 10, 9)
	sx := b.Apply(x)
	x2 := make([]int64, 64)
	for i := range x {
		x2[i] = -3 * x[i]
	}
	s2 := b.Apply(x2)
	for i := range sx {
		if -3*sx[i] != s2[i] {
			t.Fatal("BlockAMS not linear")
		}
	}
}
