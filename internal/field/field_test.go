package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceIdentities(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{P - 1, P - 1},
		{P, 0},
		{P + 1, 1},
		{2*P - 1, P - 1},
		{^uint64(0), Reduce(^uint64(0))},
	}
	for _, c := range cases {
		if got := Reduce(c.in); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.in, got, c.want)
		}
		if got := Reduce(c.in); got >= P {
			t.Errorf("Reduce(%d) = %d, out of range", c.in, got)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Reduce(rng.Uint64())
		b := Reduce(rng.Uint64())
		if got := Sub(Add(a, b), b); got != a {
			t.Fatalf("(%d+%d)-%d = %d, want %d", a, b, b, got, a)
		}
		if got := Add(a, Neg(a)); got != 0 {
			t.Fatalf("a + (-a) = %d, want 0", got)
		}
	}
}

func TestMulAgainstBigReduction(t *testing.T) {
	// Cross-check Mul against 128-bit reference arithmetic via Pow.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a := Reduce(rng.Uint64())
		// a * a * a should equal Pow(a, 3).
		if got, want := Mul(Mul(a, a), a), Pow(a, 3); got != want {
			t.Fatalf("a^3 mismatch for a=%d: %d vs %d", a, got, want)
		}
	}
}

func TestMulSmallValues(t *testing.T) {
	if got := Mul(3, 5); got != 15 {
		t.Errorf("Mul(3,5) = %d, want 15", got)
	}
	if got := Mul(P-1, P-1); got != 1 {
		// (-1) * (-1) = 1 mod P.
		t.Errorf("Mul(P-1, P-1) = %d, want 1", got)
	}
	if got := Mul(P-1, 2); got != P-2 {
		// (-1) * 2 = -2 mod P.
		t.Errorf("Mul(P-1, 2) = %d, want %d", got, P-2)
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := Reduce(rng.Uint64())
		if a == 0 {
			continue
		}
		if got := Mul(a, Inv(a)); got != 1 {
			t.Fatalf("a * a^{-1} = %d for a=%d, want 1", got, a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestPow(t *testing.T) {
	if got := Pow(2, 61); got != 1 {
		// 2^61 = 2^61 - 1 + 1 ≡ 1 mod P.
		t.Errorf("Pow(2,61) = %d, want 1", got)
	}
	if got := Pow(7, 0); got != 1 {
		t.Errorf("Pow(7,0) = %d, want 1", got)
	}
	if got := Pow(0, 5); got != 0 {
		t.Errorf("Pow(0,5) = %d, want 0", got)
	}
}

func TestReduceIntAndToInt(t *testing.T) {
	values := []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40)}
	for _, v := range values {
		if got := ToInt(ReduceInt(v)); got != v {
			t.Errorf("ToInt(ReduceInt(%d)) = %d", v, got)
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	// Property: associativity and distributivity on reduced elements.
	assoc := func(x, y, z uint64) bool {
		a, b, c := Reduce(x), Reduce(y), Reduce(z)
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) &&
			Add(Add(a, b), c) == Add(a, Add(b, c)) &&
			Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLinearCombinationMatchesIntegerSum(t *testing.T) {
	// Small linear combinations of integers must agree with exact integer
	// arithmetic after lifting — the property every linear sketch relies on.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		var accField Elem
		var accInt int64
		for i := 0; i < 20; i++ {
			v := rng.Int63n(1000) - 500
			accField = AddInt(accField, v)
			accInt += v
		}
		if got := ToInt(accField); got != accInt {
			t.Fatalf("field sum %d != integer sum %d", got, accInt)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	x := Reduce(0x9e3779b97f4a7c15)
	y := Reduce(0xbf58476d1ce4e5b9)
	for i := 0; i < b.N; i++ {
		x = Mul(x, y)
	}
	_ = x
}
