// Package field implements arithmetic in the prime field GF(p) with
// p = 2^61 - 1 (a Mersenne prime).
//
// All exact linear sketches in this repository (the occupancy-based ℓ0
// estimator, the 1-sparse recovery structures, the ℓ0-sampler and the
// polynomial fingerprints) operate over this field so that bucket sums of
// integer matrix entries never overflow and so that random linear
// combinations of distinct non-zero inputs vanish only with probability
// O(1/p).
//
// Elements are represented as uint64 values in [0, p). The Mersenne
// structure makes reduction after multiplication a pair of shifts and adds,
// which keeps the sketches fast enough to run inside benchmarks that sweep
// matrix sizes.
package field

import "math/bits"

// P is the field modulus 2^61 - 1.
const P uint64 = (1 << 61) - 1

// Elem is a field element in [0, P).
type Elem = uint64

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(x uint64) Elem {
	x = (x >> 61) + (x & P)
	if x >= P {
		x -= P
	}
	return x
}

// ReduceInt maps a signed integer into [0, P), mapping negative values to
// their additive inverses mod P.
func ReduceInt(v int64) Elem {
	if v >= 0 {
		return Reduce(uint64(v))
	}
	return Neg(Reduce(uint64(-v)))
}

// Add returns a + b mod P. Inputs must already be reduced.
func Add(a, b Elem) Elem {
	s := a + b
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a - b mod P. Inputs must already be reduced.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns -a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a * b mod P using the Mersenne reduction.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod 2^61-1),
	// folding 2^61 ≡ 1. Split lo into its low 61 bits and high 3 bits.
	res := (hi << 3) | (lo >> 61)
	res = Reduce(res + (lo & P))
	return Reduce(res)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := Reduce(a)
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a mod P. It panics if a == 0,
// because a zero divisor always indicates a logic error in a sketch decode.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("field: inverse of zero")
	}
	// By Fermat's little theorem a^(P-2) = a^{-1}.
	return Pow(a, P-2)
}

// AddInt adds a signed integer multiple into an accumulator: acc + v mod P.
func AddInt(acc Elem, v int64) Elem {
	return Add(acc, ReduceInt(v))
}

// MulInt returns a * v mod P for a signed integer v.
func MulInt(a Elem, v int64) Elem {
	return Mul(a, ReduceInt(v))
}

// ToInt interprets a field element as a signed integer in
// (-P/2, P/2], the canonical lift used when a sketch decodes an integer
// quantity that may be negative.
func ToInt(a Elem) int64 {
	if a > P/2 {
		return -int64(P - a)
	}
	return int64(a)
}
