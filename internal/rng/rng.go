// Package rng provides the deterministic randomness substrate shared by all
// protocols: a splittable pseudo-random generator, k-wise independent hash
// families over GF(2^61 - 1), sign hashes, and p-stable variate generation.
//
// Protocols in this repository run in the public-coin two-party model of
// the paper: Alice and Bob derive identical sketching matrices from a seed
// both hold, so the randomness itself costs no communication. Determinism
// matters twice over — both parties must derive the *same* hash functions,
// and tests/benchmarks must be reproducible — so every stream is a pure
// function of (seed, label path).
package rng

import (
	"hash/fnv"
	"math"

	"repro/internal/field"
)

// splitmix64 advances the seed-expansion state and returns the next value.
// It is the standard SplitMix64 finalizer, used to turn arbitrary seeds
// into well-distributed xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a deterministic pseudo-random generator (xoshiro256**). The zero
// value is not usable; construct with New or Derive.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Derive returns a new generator whose stream is a pure function of the
// parent seed and the label path. Both parties call Derive with identical
// labels to agree on shared sketching matrices without communication.
func (r *RNG) Derive(labels ...string) *RNG {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	// Mix the parent's (unconsumed) state so distinct parents give
	// distinct children. Reading s directly keeps Derive side-effect free.
	mix := r.s[0] ^ (r.s[1] << 1) ^ (r.s[2] >> 1) ^ r.s[3]
	return New(mix ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n).
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return r.Float64() < p
}

// Sign returns +1 or -1 with equal probability.
func (r *RNG) Sign() int {
	if r.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// NormFloat64 returns a standard normal variate (Box–Muller; the spare
// value is discarded to keep the stream position predictable).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an Exp(1) variate.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Stable returns a standard symmetric p-stable variate for p in (0, 2],
// generated with the Chambers–Mallows–Stuck transform. Stable(1) is
// standard Cauchy; Stable(2) is Normal(0, sqrt(2)) up to the stable
// scaling convention — the sketch layer only ever uses medians of absolute
// values, which it calibrates empirically, so the convention washes out.
func (r *RNG) Stable(p float64) float64 {
	if p <= 0 || p > 2 {
		panic("rng: Stable index out of range (0,2]")
	}
	theta := (r.Float64() - 0.5) * math.Pi // U(-π/2, π/2)
	w := r.ExpFloat64()
	if p == 1 {
		return math.Tan(theta)
	}
	t := math.Sin(p*theta) / math.Pow(math.Cos(theta), 1/p)
	s := math.Pow(math.Cos((1-p)*theta)/w, (1-p)/p)
	return t * s
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomly permutes n elements using the given swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// PolyHash is a k-wise independent hash family over GF(2^61 - 1),
// implemented as a degree-(k-1) polynomial with random coefficients.
// Evaluations at distinct points are k-wise independent and uniform over
// the field.
type PolyHash struct {
	coeffs []field.Elem
}

// NewPolyHash draws a fresh k-wise independent hash function. k must be at
// least 1; k = 2 gives the pairwise-independent family used by level
// sampling, k = 4 the four-wise family AMS requires.
func NewPolyHash(r *RNG, k int) *PolyHash {
	if k < 1 {
		panic("rng: PolyHash needs k >= 1")
	}
	coeffs := make([]field.Elem, k)
	for i := range coeffs {
		coeffs[i] = field.Reduce(r.Uint64())
	}
	// A zero leading coefficient only reduces the effective degree; that
	// is fine for independence (the family is over all polynomials of
	// degree < k).
	return &PolyHash{coeffs: coeffs}
}

// Eval returns the hash of x as a uniform field element.
func (h *PolyHash) Eval(x uint64) field.Elem {
	xe := field.Reduce(x)
	acc := field.Elem(0)
	// Horner evaluation.
	for i := len(h.coeffs) - 1; i >= 0; i-- {
		acc = field.Add(field.Mul(acc, xe), h.coeffs[i])
	}
	return acc
}

// Bucket maps x to a bucket in [0, m). The field is ~2^61 so the modulo
// bias is below 2^-40 for any m used here.
func (h *PolyHash) Bucket(x uint64, m int) int {
	return int(h.Eval(x) % uint64(m))
}

// Sign maps x to ±1 with four-wise independence when constructed with
// k >= 4 (AMS requires exactly that).
func (h *PolyHash) Sign(x uint64) int {
	if h.Eval(x)&1 == 0 {
		return 1
	}
	return -1
}

// Level maps x to a geometric level: level ℓ with probability 2^-(ℓ+1),
// capped at max. Both parties use it for coordinated subsampling in the
// ℓ0 sketch and ℓ0-sampler.
func (h *PolyHash) Level(x uint64, max int) int {
	v := h.Eval(x)
	// Count leading-zero structure of the low bits: level = number of
	// trailing zero bits, capped.
	l := 0
	for l < max && v&1 == 0 {
		v >>= 1
		l++
	}
	return l
}
