package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide %d/64 times", same)
	}
}

func TestDeriveIsPureAndLabelled(t *testing.T) {
	parent := New(7)
	c1 := parent.Derive("alice", "sketch")
	c2 := parent.Derive("alice", "sketch")
	c3 := parent.Derive("bob", "sketch")
	v1, v2, v3 := c1.Uint64(), c2.Uint64(), c3.Uint64()
	if v1 != v2 {
		t.Error("Derive with identical labels diverged")
	}
	if v1 == v3 {
		t.Error("Derive with different labels coincided")
	}
	// Derive must not consume parent state.
	p2 := New(7)
	if parent.Uint64() != p2.Uint64() {
		t.Error("Derive consumed parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(4)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/10) > 500 {
			t.Errorf("bucket %d count %d deviates from %d", b, c, n/10)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate %v", p)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(6)
	var sum, sumSq float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestStableCauchyMedian(t *testing.T) {
	// |Cauchy| has median 1 (tan(π/4)).
	r := New(7)
	const n = 50001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Abs(r.Stable(1))
	}
	med := quickMedian(vals)
	if math.Abs(med-1) > 0.05 {
		t.Errorf("|Cauchy| median %v, want ~1", med)
	}
}

func TestStableHalfIndexFinite(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		x := r.Stable(0.5)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("Stable(0.5) produced %v", x)
		}
	}
}

func TestStablePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Stable(3) did not panic")
		}
	}()
	New(1).Stable(3)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestPolyHashDeterministicAcrossParties(t *testing.T) {
	// Alice and Bob derive with identical labels and must get the same
	// hash function — the public-coin invariant every protocol relies on.
	alice := NewPolyHash(New(11).Derive("proto", "h1"), 4)
	bob := NewPolyHash(New(11).Derive("proto", "h1"), 4)
	for x := uint64(0); x < 1000; x++ {
		if alice.Eval(x) != bob.Eval(x) {
			t.Fatalf("hash diverged at %d", x)
		}
	}
}

func TestPolyHashBucketUniform(t *testing.T) {
	h := NewPolyHash(New(12), 2)
	const m = 16
	counts := make([]int, m)
	const n = 160000
	for x := uint64(0); x < n; x++ {
		counts[h.Bucket(x, m)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/m) > 600 {
			t.Errorf("bucket %d count %d, want ~%d", b, c, n/m)
		}
	}
}

func TestPolyHashSignBalanced(t *testing.T) {
	h := NewPolyHash(New(13), 4)
	sum := 0
	const n = 100000
	for x := uint64(0); x < n; x++ {
		sum += h.Sign(x)
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Errorf("sign sum %d too far from 0", sum)
	}
}

func TestPolyHashPairwiseIndependence(t *testing.T) {
	// Empirical check: over random functions from the family, the joint
	// distribution of (h(1) mod 2, h(2) mod 2) is close to uniform on
	// {0,1}^2.
	counts := [2][2]int{}
	const trials = 40000
	base := New(14)
	for i := 0; i < trials; i++ {
		h := NewPolyHash(base, 2)
		a := int(h.Eval(1) & 1)
		b := int(h.Eval(2) & 1)
		counts[a][b]++
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if math.Abs(float64(counts[a][b])-trials/4) > 500 {
				t.Errorf("joint count (%d,%d) = %d, want ~%d", a, b, counts[a][b], trials/4)
			}
		}
	}
}

func TestLevelGeometric(t *testing.T) {
	h := NewPolyHash(New(15), 2)
	const n = 1 << 17
	counts := make([]int, 8)
	for x := uint64(0); x < n; x++ {
		l := h.Level(x, 7)
		counts[l]++
	}
	// Level ℓ < max has probability 2^-(ℓ+1).
	for l := 0; l < 4; l++ {
		want := float64(n) / float64(int(1)<<(l+1))
		if math.Abs(float64(counts[l])-want) > 5*math.Sqrt(want) {
			t.Errorf("level %d count %d, want ~%v", l, counts[l], want)
		}
	}
}

func quickMedian(v []float64) float64 {
	// Simple selection for tests; input length is odd.
	s := append([]float64(nil), v...)
	k := len(s) / 2
	lo, hi := 0, len(s)-1
	for {
		if lo >= hi {
			return s[k]
		}
		pivot := s[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return s[k]
		}
	}
}
