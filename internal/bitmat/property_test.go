package bitmat

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func quickMatrix(seed uint64, rows, cols int) *Matrix {
	r := rng.New(seed)
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bernoulli(0.35) {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func TestQuickTransposeProduct(t *testing.T) {
	// (A·B)ᵀ entries equal Bᵀ·Aᵀ entries.
	f := func(s1, s2 uint64) bool {
		a := quickMatrix(s1, 7, 9)
		b := quickMatrix(s2, 9, 6)
		c := a.Mul(b)
		ct := b.Transpose().Mul(a.Transpose())
		for i := 0; i < c.Rows(); i++ {
			for j := 0; j < c.Cols(); j++ {
				if c.Get(i, j) != ct.Get(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickProductEntryIsIntersection(t *testing.T) {
	// (A·B)[i][j] = |RowSupport_A(i) ∩ ColSupport-as-row_B(j)| — the
	// join interpretation underlying the whole paper.
	f := func(s1, s2 uint64) bool {
		a := quickMatrix(s1, 6, 10)
		b := quickMatrix(s2, 10, 6)
		c := a.Mul(b)
		bt := b.Transpose()
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if int(c.Get(i, j)) != a.IntersectRows(i, bt, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickSupportsConsistent(t *testing.T) {
	// RowSupport/ColSupport agree with Get, and weights with support
	// sizes.
	f := func(seed uint64) bool {
		m := quickMatrix(seed, 8, 70)
		for i := 0; i < 8; i++ {
			sup := m.RowSupport(i)
			if len(sup) != m.RowWeight(i) {
				return false
			}
			for _, j := range sup {
				if !m.Get(i, j) {
					return false
				}
			}
		}
		for j := 0; j < 70; j += 7 {
			if len(m.ColSupport(j)) != m.ColWeight(j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickToIntPreservesProduct(t *testing.T) {
	// Converting to integer matrices and multiplying there matches the
	// popcount product.
	f := func(s1, s2 uint64) bool {
		a := quickMatrix(s1, 5, 8)
		b := quickMatrix(s2, 8, 5)
		return a.ToInt().Mul(b.ToInt()).Equal(a.Mul(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
