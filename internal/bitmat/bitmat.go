// Package bitmat implements dense bit-packed Boolean matrices.
//
// In the paper's database interpretation, row i of Alice's matrix A is the
// indicator vector of a set Ai ⊆ [n] and column j of Bob's matrix B is the
// indicator vector of a set Bj; the integer product (A·B)[i][j] = |Ai ∩ Bj|
// is then the intersection size. The bit-packed layout makes these
// intersection counts a handful of POPCNT instructions per word, which is
// what lets the benchmark harness sweep matrix sizes while computing exact
// ground truth.
//
// Matrices are rows × cols; each row is stored as ⌈cols/64⌉ uint64 words.
package bitmat

import (
	"fmt"
	"math/bits"

	"repro/internal/intmat"
)

// Matrix is a dense bit-packed Boolean matrix.
type Matrix struct {
	rows, cols int
	wordsPer   int
	words      []uint64
}

// New returns an all-zero rows × cols Boolean matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitmat: negative dimension")
	}
	wp := (cols + 63) / 64
	return &Matrix{rows: rows, cols: cols, wordsPer: wp, words: make([]uint64, rows*wp)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Set sets entry (i, j) to v.
func (m *Matrix) Set(i, j int, v bool) {
	m.check(i, j)
	w := &m.words[i*m.wordsPer+j/64]
	mask := uint64(1) << uint(j%64)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// Get returns entry (i, j).
func (m *Matrix) Get(i, j int) bool {
	m.check(i, j)
	return m.words[i*m.wordsPer+j/64]&(1<<uint(j%64)) != 0
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns the packed words of row i. The returned slice aliases the
// matrix; callers must not modify it.
func (m *Matrix) Row(i int) []uint64 {
	if i < 0 || i >= m.rows {
		panic("bitmat: row out of range")
	}
	return m.words[i*m.wordsPer : (i+1)*m.wordsPer]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.words, m.words)
	return c
}

// RowWeight returns the popcount of row i (the set size |Ai|).
func (m *Matrix) RowWeight(i int) int {
	w := 0
	for _, word := range m.Row(i) {
		w += bits.OnesCount64(word)
	}
	return w
}

// ColWeight returns the popcount of column j.
func (m *Matrix) ColWeight(j int) int {
	w := 0
	mask := uint64(1) << uint(j%64)
	off := j / 64
	for i := 0; i < m.rows; i++ {
		if m.words[i*m.wordsPer+off]&mask != 0 {
			w++
		}
	}
	return w
}

// Weight returns the total number of 1-entries (‖A‖1 for a binary matrix).
func (m *Matrix) Weight() int {
	w := 0
	for _, word := range m.words {
		w += bits.OnesCount64(word)
	}
	return w
}

// RowSupport returns the column indices of the 1-entries in row i.
func (m *Matrix) RowSupport(i int) []int {
	var out []int
	row := m.Row(i)
	for wi, word := range row {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, wi*64+b)
			word &= word - 1
		}
	}
	return out
}

// ColSupport returns the row indices i with entry (i, j) set.
func (m *Matrix) ColSupport(j int) []int {
	var out []int
	mask := uint64(1) << uint(j%64)
	off := j / 64
	for i := 0; i < m.rows; i++ {
		if m.words[i*m.wordsPer+off]&mask != 0 {
			out = append(out, i)
		}
	}
	return out
}

// IntersectRows returns the popcount of the AND of row i of m and row k of
// other. Both matrices must have the same number of columns.
func (m *Matrix) IntersectRows(i int, other *Matrix, k int) int {
	if m.cols != other.cols {
		panic("bitmat: column mismatch")
	}
	a, b := m.Row(i), other.Row(k)
	c := 0
	for w := range a {
		c += bits.OnesCount64(a[w] & b[w])
	}
	return c
}

// Transpose returns the transpose matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for wi, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				t.Set(wi*64+b, i, true)
				word &= word - 1
			}
		}
	}
	return t
}

// Mul computes the integer matrix product A·B over Z, where A is the
// receiver (rows×k) and B is k×cols. It is the exact ground truth the
// protocols are measured against. The implementation walks B's transpose
// so each product entry is a word-parallel popcount.
func (m *Matrix) Mul(b *Matrix) *intmat.Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("bitmat: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	bt := b.Transpose()
	out := intmat.NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		ri := m.Row(i)
		for j := 0; j < b.cols; j++ {
			rj := bt.Row(j)
			c := 0
			for w := range ri {
				c += bits.OnesCount64(ri[w] & rj[w])
			}
			if c != 0 {
				out.Set(i, j, int64(c))
			}
		}
	}
	return out
}

// MulVecInt multiplies the matrix by an integer vector: y = A·x, with x of
// length Cols(). Used by sketch-side computations of the form S·Bᵀ·Aᵀ.
func (m *Matrix) MulVecInt(x []int64) []int64 {
	if len(x) != m.cols {
		panic("bitmat: MulVecInt length mismatch")
	}
	y := make([]int64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s int64
		for wi, word := range row {
			base := wi * 64
			for word != 0 {
				b := bits.TrailingZeros64(word)
				s += x[base+b]
				word &= word - 1
			}
		}
		y[i] = s
	}
	return y
}

// ToInt converts to a dense integer matrix with 0/1 entries.
func (m *Matrix) ToInt() *intmat.Dense {
	d := intmat.NewDense(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for _, j := range m.RowSupport(i) {
			d.Set(i, j, 1)
		}
	}
	return d
}

// Equal reports whether two matrices have identical dimensions and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.rows*m.cols > 64*64 {
		return fmt.Sprintf("bitmat.Matrix(%dx%d, weight=%d)", m.rows, m.cols, m.Weight())
	}
	out := make([]byte, 0, m.rows*(m.cols+1))
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				out = append(out, '1')
			} else {
				out = append(out, '0')
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}
