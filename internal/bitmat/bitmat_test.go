package bitmat

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func random(t *testing.T, r *rng.RNG, rows, cols int, density float64) *Matrix {
	t.Helper()
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bernoulli(density) {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func TestSetGet(t *testing.T) {
	m := New(5, 130) // spans three words per row
	m.Set(0, 0, true)
	m.Set(4, 129, true)
	m.Set(2, 64, true)
	if !m.Get(0, 0) || !m.Get(4, 129) || !m.Get(2, 64) {
		t.Fatal("set bits not readable")
	}
	if m.Get(0, 1) || m.Get(3, 129) {
		t.Fatal("unset bits read as set")
	}
	m.Set(2, 64, false)
	if m.Get(2, 64) {
		t.Fatal("clear did not clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(3, 3)
	for _, fn := range []func(){
		func() { m.Get(3, 0) },
		func() { m.Get(0, 3) },
		func() { m.Set(-1, 0, true) },
		func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestWeights(t *testing.T) {
	m := New(4, 70)
	m.Set(0, 0, true)
	m.Set(0, 69, true)
	m.Set(1, 69, true)
	m.Set(3, 5, true)
	if got := m.Weight(); got != 4 {
		t.Errorf("Weight = %d, want 4", got)
	}
	if got := m.RowWeight(0); got != 2 {
		t.Errorf("RowWeight(0) = %d, want 2", got)
	}
	if got := m.ColWeight(69); got != 2 {
		t.Errorf("ColWeight(69) = %d, want 2", got)
	}
	if got := m.ColWeight(1); got != 0 {
		t.Errorf("ColWeight(1) = %d, want 0", got)
	}
}

func TestSupports(t *testing.T) {
	m := New(3, 100)
	m.Set(1, 3, true)
	m.Set(1, 64, true)
	m.Set(1, 99, true)
	m.Set(0, 64, true)
	sup := m.RowSupport(1)
	want := []int{3, 64, 99}
	if len(sup) != len(want) {
		t.Fatalf("RowSupport = %v, want %v", sup, want)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("RowSupport = %v, want %v", sup, want)
		}
	}
	col := m.ColSupport(64)
	if len(col) != 2 || col[0] != 0 || col[1] != 1 {
		t.Fatalf("ColSupport(64) = %v, want [0 1]", col)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(10)
	m := random(t, r, 33, 70, 0.3)
	tt := m.Transpose().Transpose()
	if !m.Equal(tt) {
		t.Fatal("transpose twice != identity")
	}
	tr := m.Transpose()
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.Get(i, j) != tr.Get(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulMatchesNaive(t *testing.T) {
	r := rng.New(11)
	a := random(t, r, 17, 40, 0.25)
	b := random(t, r, 40, 23, 0.25)
	c := a.Mul(b)
	for i := 0; i < 17; i++ {
		for j := 0; j < 23; j++ {
			want := int64(0)
			for k := 0; k < 40; k++ {
				if a.Get(i, k) && b.Get(k, j) {
					want++
				}
			}
			if got := c.Get(i, j); got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 4).Mul(New(5, 3))
}

func TestIntersectRows(t *testing.T) {
	a := New(2, 100)
	b := New(2, 100)
	for _, j := range []int{1, 50, 64, 99} {
		a.Set(0, j, true)
	}
	for _, j := range []int{50, 64, 70} {
		b.Set(1, j, true)
	}
	if got := a.IntersectRows(0, b, 1); got != 2 {
		t.Errorf("IntersectRows = %d, want 2", got)
	}
}

func TestMulVecInt(t *testing.T) {
	m := New(3, 5)
	m.Set(0, 1, true)
	m.Set(0, 3, true)
	m.Set(2, 0, true)
	x := []int64{10, 20, 30, 40, 50}
	y := m.MulVecInt(x)
	if y[0] != 60 || y[1] != 0 || y[2] != 10 {
		t.Fatalf("MulVecInt = %v, want [60 0 10]", y)
	}
}

func TestToIntRoundTrip(t *testing.T) {
	r := rng.New(12)
	m := random(t, r, 9, 9, 0.5)
	d := m.ToInt()
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			want := int64(0)
			if m.Get(i, j) {
				want = 1
			}
			if d.Get(i, j) != want {
				t.Fatalf("ToInt mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, true)
	c := m.Clone()
	c.Set(1, 1, true)
	if m.Get(1, 1) {
		t.Fatal("clone shares storage with original")
	}
	if !c.Get(0, 0) {
		t.Fatal("clone lost original bits")
	}
}

func TestWeightDecomposition(t *testing.T) {
	// Property: total weight equals the sum of row weights and the sum of
	// column weights.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := New(12, 37)
		for i := 0; i < 12; i++ {
			for j := 0; j < 37; j++ {
				if r.Bernoulli(0.4) {
					m.Set(i, j, true)
				}
			}
		}
		rowSum, colSum := 0, 0
		for i := 0; i < 12; i++ {
			rowSum += m.RowWeight(i)
		}
		for j := 0; j < 37; j++ {
			colSum += m.ColWeight(j)
		}
		return rowSum == m.Weight() && colSum == m.Weight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestL1ProductIdentity(t *testing.T) {
	// Remark 2's identity: ‖AB‖1 = Σ_k ColWeight_A(k) · RowWeight_B(k)
	// for Boolean matrices.
	r := rng.New(13)
	a := random(t, r, 20, 30, 0.2)
	b := random(t, r, 30, 25, 0.2)
	c := a.Mul(b)
	var viaCounts int64
	for k := 0; k < 30; k++ {
		viaCounts += int64(a.ColWeight(k)) * int64(b.RowWeight(k))
	}
	if got := c.L1(); got != viaCounts {
		t.Fatalf("‖AB‖1 = %d, column/row identity gives %d", got, viaCounts)
	}
}

func BenchmarkMul256(b *testing.B) {
	r := rng.New(1)
	m1 := New(256, 256)
	m2 := New(256, 256)
	for i := 0; i < 256; i++ {
		for j := 0; j < 256; j++ {
			if r.Bernoulli(0.1) {
				m1.Set(i, j, true)
			}
			if r.Bernoulli(0.1) {
				m2.Set(i, j, true)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m1.Mul(m2)
	}
}
