package workload

import (
	"math"
	"testing"
)

func TestBinaryDensity(t *testing.T) {
	m := Binary(1, 100, 100, 0.2)
	got := float64(m.Weight()) / 10000
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("density %v, want ~0.2", got)
	}
}

func TestIntegerSignedAndUnsigned(t *testing.T) {
	pos := Integer(2, 50, 50, 0.3, 5, false)
	for i := 0; i < 50; i++ {
		for _, v := range pos.Row(i) {
			if v < 0 || v > 5 {
				t.Fatalf("unsigned entry %d out of range", v)
			}
		}
	}
	sig := Integer(3, 50, 50, 0.5, 5, true)
	neg := 0
	for i := 0; i < 50; i++ {
		for _, v := range sig.Row(i) {
			if v < -5 || v > 5 {
				t.Fatalf("signed entry %d out of range", v)
			}
			if v < 0 {
				neg++
			}
		}
	}
	if neg == 0 {
		t.Fatal("signed matrix has no negative entries")
	}
}

func TestZipfSkew(t *testing.T) {
	m := Zipf(4, 64, 256, 128, 1.0)
	// Sizes must span a wide range: some large, many small.
	largest, smallest := 0, 1<<30
	for i := 0; i < 64; i++ {
		w := m.RowWeight(i)
		if w > largest {
			largest = w
		}
		if w < smallest {
			smallest = w
		}
	}
	if largest < 50 {
		t.Fatalf("largest set %d, want ≥ 50", largest)
	}
	if smallest > 5 {
		t.Fatalf("smallest set %d, want ≤ 5", smallest)
	}
}

func TestPlantedPairDominates(t *testing.T) {
	a, b, hotRow, hotCol := PlantedPair(5, 96, 48, 0.03)
	c := a.Mul(b)
	max, i, j := c.Linf()
	if i != hotRow || j != hotCol {
		t.Fatalf("max at (%d,%d), planted at (%d,%d)", i, j, hotRow, hotCol)
	}
	if max < 40 {
		t.Fatalf("planted overlap only %d", max)
	}
}

func TestPlantedHeavyProducesHeavyEntry(t *testing.T) {
	a, b := PlantedHeavy(6, 96, 1, 60, 0.01)
	c := a.Mul(b)
	max, _, _ := c.Linf()
	if float64(max) < 0.08*float64(c.L1()) {
		t.Fatalf("heaviest entry %d is only %.3f of ‖C‖1",
			max, float64(max)/float64(c.L1()))
	}
}

func TestSkillsScenarioShape(t *testing.T) {
	sc := NewSkillsScenario(7, 200, 100, 64)
	if sc.Applicants.Rows() != 200 || sc.Applicants.Cols() != 64 {
		t.Fatal("applicants shape wrong")
	}
	if sc.Jobs.Rows() != 64 || sc.Jobs.Cols() != 100 {
		t.Fatal("jobs shape wrong")
	}
	// The star pair must be among the top matches.
	c := sc.Applicants.Mul(sc.Jobs)
	star := c.Get(0, 0)
	max, _, _ := c.Linf()
	if star < max/2 {
		t.Fatalf("star pair %d far below max %d", star, max)
	}
}
