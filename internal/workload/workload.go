// Package workload generates the matrix-product workloads the benchmark
// harness and examples run on: uniform sparse matrices, Zipf-distributed
// set sizes (the skew typical of database joins), planted max-overlap
// pairs, planted heavy hitters, and the applicant/job skills scenario
// from Section 1.1 of the paper.
package workload

import (
	"math"

	"repro/internal/bitmat"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// Binary generates a rows×cols Boolean matrix with i.i.d. density.
func Binary(seed uint64, rows, cols int, density float64) *bitmat.Matrix {
	r := rng.New(seed)
	m := bitmat.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Bernoulli(density) {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// Integer generates a rows×cols integer matrix with i.i.d. density and
// entries uniform in [1, maxAbs] (or [-maxAbs, maxAbs]\{0} when signed).
func Integer(seed uint64, rows, cols int, density float64, maxAbs int64, signed bool) *intmat.Dense {
	r := rng.New(seed)
	m := intmat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !r.Bernoulli(density) {
				continue
			}
			if signed {
				v := r.Int63n(2*maxAbs+1) - maxAbs
				if v == 0 {
					v = 1
				}
				m.Set(i, j, v)
			} else {
				m.Set(i, j, 1+r.Int63n(maxAbs))
			}
		}
	}
	return m
}

// Zipf generates a Boolean matrix whose row (set) sizes follow a Zipf
// law with exponent s: row i has size ≈ maxSize/(i+1)^s, with set
// elements drawn uniformly — the skewed-join workload that motivates
// sampling-based size estimation in query optimizers.
func Zipf(seed uint64, rows, cols int, maxSize int, s float64) *bitmat.Matrix {
	r := rng.New(seed)
	m := bitmat.New(rows, cols)
	order := r.Perm(rows) // decouple size rank from row index
	for rank, i := range order {
		size := int(float64(maxSize) / math.Pow(float64(rank+1), s))
		if size < 1 {
			size = 1
		}
		if size > cols {
			size = cols
		}
		for _, j := range r.Perm(cols)[:size] {
			m.Set(i, j, true)
		}
	}
	return m
}

// PlantedPair builds n×n Boolean matrices over background density bg
// whose product has a planted dominant entry of value ≈ overlap at
// (hotRow, hotCol).
func PlantedPair(seed uint64, n, overlap int, bg float64) (a, b *bitmat.Matrix, hotRow, hotCol int) {
	r := rng.New(seed)
	a = bitmat.New(n, n)
	b = bitmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Bernoulli(bg) {
				a.Set(i, j, true)
			}
			if r.Bernoulli(bg) {
				b.Set(i, j, true)
			}
		}
	}
	hotRow, hotCol = n/3, 2*n/3
	perm := r.Perm(n)
	if overlap > n {
		overlap = n
	}
	for t := 0; t < overlap; t++ {
		k := perm[t]
		a.Set(hotRow, k, true)
		b.Set(k, hotCol, true)
	}
	return a, b, hotRow, hotCol
}

// PlantedHeavy builds non-negative integer matrices whose product has
// `heavies` entries of weight ≈ weight each over light background noise —
// the heavy-hitter benchmark workload.
func PlantedHeavy(seed uint64, n, heavies, weight int, bg float64) (a, b *intmat.Dense) {
	r := rng.New(seed)
	a = intmat.NewDense(n, n)
	b = intmat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Bernoulli(bg) {
				a.Set(i, j, 1)
			}
			if r.Bernoulli(bg) {
				b.Set(i, j, 1)
			}
		}
	}
	for h := 0; h < heavies; h++ {
		i := r.Intn(n)
		j := r.Intn(n)
		for t := 0; t < weight; t++ {
			k := r.Intn(n)
			a.Set(i, k, 1)
			b.Set(k, j, 1)
		}
	}
	return a, b
}

// SkillsScenario is the job-matching application from Section 1.1:
// applicants hold skill sets (rows of A), jobs require skill sets
// (columns of B), and (A·B)[i][j] = |skills of i ∩ requirements of j|.
type SkillsScenario struct {
	Applicants *bitmat.Matrix // applicants × skills
	Jobs       *bitmat.Matrix // skills × jobs
	Skills     int
}

// NewSkillsScenario generates a scenario with Zipf-distributed skill
// popularity: a few common skills (held by many applicants, required by
// many jobs) and a long tail, plus one "star" applicant-job pair with a
// large planted overlap.
func NewSkillsScenario(seed uint64, applicants, jobs, skills int) SkillsScenario {
	r := rng.New(seed)
	a := bitmat.New(applicants, skills)
	b := bitmat.New(skills, jobs)
	for s := 0; s < skills; s++ {
		pop := 0.4 / math.Pow(float64(s+1), 0.7) // popularity of skill s
		for i := 0; i < applicants; i++ {
			if r.Bernoulli(pop) {
				a.Set(i, s, true)
			}
		}
		for j := 0; j < jobs; j++ {
			if r.Bernoulli(pop * 0.6) {
				b.Set(s, j, true)
			}
		}
	}
	// Star pair: applicant 0 matches job 0 on a block of rare skills.
	for s := skills / 2; s < skills/2+skills/8; s++ {
		a.Set(0, s, true)
		b.Set(s, 0, true)
	}
	return SkillsScenario{Applicants: a, Jobs: b, Skills: skills}
}
