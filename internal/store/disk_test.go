package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func openTestDisk(t *testing.T, dir string, mode FsyncMode) *Disk {
	t.Helper()
	d, err := OpenDisk(DiskConfig{Dir: dir, Fsync: mode})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func rec(epoch, seq uint64, payload string) Record {
	r := Record{Epoch: epoch, Seq: seq}
	if payload != "" {
		r.Payload = []byte(payload)
	}
	return r
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncAlways)

	if names, err := d.Names(); err != nil || len(names) != 0 {
		t.Fatalf("Names of empty store = %v, %v", names, err)
	}
	if snap, recs, err := d.Load("absent"); err != nil || snap != nil || len(recs) != 0 {
		t.Fatalf("Load of absent = %v, %v, %v; want nil, none, nil", snap, recs, err)
	}

	want := Snapshot{Epoch: 3, Seq: 0, Payload: []byte("matrix-bytes")}
	if err := d.SaveSnapshot("m", want); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	wantRecs := []Record{rec(3, 1, "upd-1"), rec(3, 2, "upd-2"), rec(3, 3, "")}
	for _, r := range wantRecs {
		if err := d.AppendWAL("m", r); err != nil {
			t.Fatalf("AppendWAL(%d): %v", r.Seq, err)
		}
	}

	check := func(d *Disk, label string) {
		t.Helper()
		snap, recs, err := d.Load("m")
		if err != nil {
			t.Fatalf("%s: Load: %v", label, err)
		}
		if snap == nil || snap.Epoch != want.Epoch || snap.Seq != want.Seq || !bytes.Equal(snap.Payload, want.Payload) {
			t.Fatalf("%s: snapshot = %+v, want %+v", label, snap, want)
		}
		if !reflect.DeepEqual(recs, wantRecs) {
			t.Fatalf("%s: records = %+v, want %+v", label, recs, wantRecs)
		}
	}
	check(d, "same handle")

	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	check(openTestDisk(t, dir, FsyncAlways), "after reopen")
}

func TestDiskNames(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncNever)
	names := []string{"zeta", "a/b c!", "Ω-matrix", "plain"}
	for _, n := range names {
		if err := d.SaveSnapshot(n, Snapshot{Epoch: 1, Payload: []byte(n)}); err != nil {
			t.Fatalf("SaveSnapshot(%q): %v", n, err)
		}
	}
	got, err := d.Names()
	if err != nil {
		t.Fatalf("Names: %v", err)
	}
	want := []string{"a/b c!", "plain", "zeta", "Ω-matrix"} // bytewise order
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %q, want %q", got, want)
	}
	for _, n := range names {
		snap, _, err := d.Load(n)
		if err != nil || snap == nil || string(snap.Payload) != n {
			t.Fatalf("Load(%q) = %v, %v", n, snap, err)
		}
	}
}

func TestDirKeyDistinct(t *testing.T) {
	a, b := dirKey("a/b"), dirKey("a_b")
	if a == b {
		t.Fatalf("dirKey collision: %q", a)
	}
	long := dirKey(string(bytes.Repeat([]byte("x"), 200)))
	if len(long) > 60 {
		t.Fatalf("dirKey of long name is %d chars: %q", len(long), long)
	}
}

func TestDiskTruncateWAL(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncAlways)
	all := []Record{rec(1, 1, "old-epoch"), rec(2, 1, "covered"), rec(2, 2, "kept"), rec(3, 1, "newer-epoch")}
	for _, r := range all {
		if err := d.AppendWAL("m", r); err != nil {
			t.Fatalf("AppendWAL: %v", err)
		}
	}
	if err := d.TruncateWAL("m", 2, 1); err != nil {
		t.Fatalf("TruncateWAL: %v", err)
	}
	_, recs, err := d.Load("m")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	want := []Record{rec(2, 2, "kept"), rec(3, 1, "newer-epoch")}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("records after truncation = %+v, want %+v", recs, want)
	}
	trunc := d.Stats().WALTruncations
	// Covered: a truncation that drops nothing is a no-op rewrite-wise.
	if err := d.TruncateWAL("m", 2, 1); err != nil {
		t.Fatalf("no-op TruncateWAL: %v", err)
	}
	if got := d.Stats().WALTruncations; got != trunc {
		t.Fatalf("no-op truncation rewrote the log (%d -> %d)", trunc, got)
	}
	if err := d.TruncateWAL("never-existed", 9, 9); err != nil {
		t.Fatalf("TruncateWAL of absent matrix: %v", err)
	}
	// Appends after a truncation land behind the kept records.
	if err := d.AppendWAL("m", rec(3, 2, "post")); err != nil {
		t.Fatalf("AppendWAL after truncate: %v", err)
	}
	d.Close()
	_, recs, err = openTestDisk(t, dir, FsyncAlways).Load("m")
	if err != nil {
		t.Fatalf("Load after reopen: %v", err)
	}
	if !reflect.DeepEqual(recs, append(want, rec(3, 2, "post"))) {
		t.Fatalf("records after reopen = %+v", recs)
	}
}

func TestDiskDelete(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncAlways)
	if err := d.SaveSnapshot("m", Snapshot{Epoch: 1, Payload: []byte("x")}); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := d.AppendWAL("m", rec(1, 1, "u")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := d.Delete("m"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := d.Delete("m"); err != nil {
		t.Fatalf("second Delete: %v", err)
	}
	if err := d.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of absent: %v", err)
	}
	names, err := d.Names()
	if err != nil || len(names) != 0 {
		t.Fatalf("Names after delete = %v, %v", names, err)
	}
	snap, recs, err := d.Load("m")
	if err != nil || snap != nil || len(recs) != 0 {
		t.Fatalf("Load after delete = %v, %v, %v", snap, recs, err)
	}
	if d.Stats().Deletes != 1 {
		t.Fatalf("Deletes = %d, want 1", d.Stats().Deletes)
	}
	// The matrix is re-creatable after a delete.
	if err := d.AppendWAL("m", rec(2, 1, "fresh")); err != nil {
		t.Fatalf("AppendWAL after delete: %v", err)
	}
	_, recs, err = d.Load("m")
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "fresh" {
		t.Fatalf("Load after re-create = %v, %v", recs, err)
	}
}

// walFile returns the path of m's WAL inside dir.
func walFile(dir, name string) string {
	return filepath.Join(dir, dirKey(name), "wal")
}

func TestDiskTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncAlways)
	for i := uint64(1); i <= 3; i++ {
		if err := d.AppendWAL("m", rec(1, i, "payload")); err != nil {
			t.Fatalf("AppendWAL: %v", err)
		}
	}
	d.Close()

	// A crash mid-append leaves a torn frame at the tail.
	f, err := os.OpenFile(walFile(dir, "m"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write([]byte{0x07, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	d2 := openTestDisk(t, dir, FsyncAlways)
	_, recs, err := d2.Load("m")
	if err != nil {
		t.Fatalf("Load over torn tail: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	st := d2.Stats()
	if st.TornRecords != 1 || st.TornBytes != 6 {
		t.Fatalf("torn stats = %d records / %d bytes, want 1 / 6", st.TornRecords, st.TornBytes)
	}
	// The tail is physically gone and the log keeps working.
	if err := d2.AppendWAL("m", rec(1, 4, "after-repair")); err != nil {
		t.Fatalf("AppendWAL after repair: %v", err)
	}
	d2.Close()
	_, recs, err = openTestDisk(t, dir, FsyncAlways).Load("m")
	if err != nil || len(recs) != 4 {
		t.Fatalf("after repair: %d records, %v; want 4", len(recs), err)
	}
}

func TestDiskWholeWALGarbage(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncAlways)
	if err := d.AppendWAL("m", rec(1, 1, "x")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	d.Close()
	if err := os.WriteFile(walFile(dir, "m"), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatalf("clobber: %v", err)
	}
	d2 := openTestDisk(t, dir, FsyncAlways)
	_, recs, err := d2.Load("m")
	if err != nil || len(recs) != 0 {
		t.Fatalf("Load of garbage wal = %v, %v; want empty, nil", recs, err)
	}
	// The file was rewritten empty; appends re-establish the magic.
	if err := d2.AppendWAL("m", rec(2, 1, "fresh")); err != nil {
		t.Fatalf("AppendWAL after garbage: %v", err)
	}
	d2.Close()
	_, recs, err = openTestDisk(t, dir, FsyncAlways).Load("m")
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "fresh" {
		t.Fatalf("after garbage rewrite: %+v, %v", recs, err)
	}
}

func TestDiskCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncAlways)
	if err := d.SaveSnapshot("m", Snapshot{Epoch: 1, Payload: []byte("payload")}); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	d.Close()
	path := filepath.Join(dir, dirKey("m"), "snap")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snap: %v", err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("write snap: %v", err)
	}
	d2 := openTestDisk(t, dir, FsyncAlways)
	if _, _, err := d2.Load("m"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of bit-flipped snapshot = %v, want ErrCorrupt", err)
	}
	if d2.Stats().Errors == 0 {
		t.Fatal("corrupt snapshot did not count as an error")
	}
}

func TestDiskFsyncBatch(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(DiskConfig{Dir: dir, Fsync: FsyncBatch, BatchWindow: time.Hour})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	if err := d.AppendWAL("m", rec(1, 1, "x")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	before := d.Stats().Fsyncs
	if err := d.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := d.Stats().Fsyncs; got != before+1 {
		t.Fatalf("Sync flushed %d fsyncs, want 1", got-before)
	}
	// A clean log needs no second flush.
	if err := d.Sync(); err != nil {
		t.Fatalf("second Sync: %v", err)
	}
	if got := d.Stats().Fsyncs; got != before+1 {
		t.Fatalf("idle Sync issued fsyncs (%d -> %d)", before+1, got)
	}
}

func TestDiskClosed(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), FsyncNever)
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := d.Names(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Names after Close = %v", err)
	}
	if _, _, err := d.Load("m"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Load after Close = %v", err)
	}
	if err := d.SaveSnapshot("m", Snapshot{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SaveSnapshot after Close = %v", err)
	}
	if err := d.AppendWAL("m", Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("AppendWAL after Close = %v", err)
	}
	if err := d.TruncateWAL("m", 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("TruncateWAL after Close = %v", err)
	}
	if err := d.Delete("m"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close = %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after Close = %v", err)
	}
}

func TestOpenDiskValidation(t *testing.T) {
	if _, err := OpenDisk(DiskConfig{}); err == nil {
		t.Fatal("OpenDisk without Dir succeeded")
	}
}

func TestParseFsyncMode(t *testing.T) {
	cases := []struct {
		in   string
		want FsyncMode
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"batch", FsyncBatch, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		got, err := ParseFsyncMode(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseFsyncMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, m := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncNever} {
		if _, err := OpenDisk(DiskConfig{Dir: t.TempDir(), Fsync: m}); err != nil {
			t.Errorf("OpenDisk(%v): %v", m, err)
		}
	}
}

// TestDiskBatchBackgroundFlush pins the FsyncBatch flush loop: a dirty
// WAL handle is synced by the background ticker without any explicit
// Sync call, and a handle still dirty at Close is synced on the way
// out, so acknowledged appends survive a clean shutdown.
func TestDiskBatchBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(DiskConfig{Dir: dir, Fsync: FsyncBatch, BatchWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	if err := d.AppendWAL("m", rec(1, 1, "a")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flush never synced the dirty WAL")
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.AppendWAL("m", rec(1, 2, "b")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2 := openTestDisk(t, dir, FsyncNever)
	_, recs, err := d2.Load("m")
	if err != nil || len(recs) != 2 {
		t.Fatalf("after batched close: %d records, %v; want 2", len(recs), err)
	}
}

// TestDiskNamesSkipsStrayEntries: stray files and directories without a
// valid name file (the durable shape of a crash mid-create/mid-delete)
// are invisible to recovery.
func TestDiskNamesSkipsStrayEntries(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, FsyncNever)
	if err := d.SaveSnapshot("m", Snapshot{Epoch: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray-file"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "no-name-dir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "bad-magic-dir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad-magic-dir", "name"), []byte("XXXXjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := d.Names()
	if err != nil || !reflect.DeepEqual(names, []string{"m"}) {
		t.Fatalf("Names = %v, %v; want [m]", names, err)
	}
}
