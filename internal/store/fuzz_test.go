package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzSeeds are the interesting shapes both targets start from: valid
// files, truncations at every boundary, bit flips, and hostile length
// fields. TestGenerateFuzzCorpus writes the same set to testdata so CI
// fuzzing starts from a checked-in corpus.
func fuzzSeeds() (wal [][]byte, snap [][]byte) {
	var w []byte
	w = append(w, walMagic...)
	w = appendRecord(w, Record{Epoch: 1, Seq: 1, Payload: []byte("row-update-1")})
	w = appendRecord(w, Record{Epoch: 1, Seq: 2, Payload: nil})
	w = appendRecord(w, Record{Epoch: 7, Seq: 3, Payload: bytes.Repeat([]byte{0xab}, 64)})

	flip := append([]byte(nil), w...)
	flip[len(flip)/2] ^= 0x01

	hostile := append([]byte(nil), walMagic...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0x7f) // 2 GiB declared payload
	hostile = append(hostile, bytes.Repeat([]byte{0}, 20)...)

	wal = [][]byte{
		nil,
		[]byte(walMagic),
		w,
		w[:len(w)-3],
		w[:29],
		flip,
		hostile,
		[]byte("MPW9 future version"),
		[]byte("garbage with no magic at all"),
	}

	s := encodeSnapshotFile(Snapshot{Epoch: 3, Seq: 9, Payload: []byte("dense-matrix-frame")})
	sflip := append([]byte(nil), s...)
	sflip[10] ^= 0x80
	empty := encodeSnapshotFile(Snapshot{})
	shostile := append([]byte(nil), s[:20]...)
	shostile = append(shostile, 0xff, 0xff, 0xff, 0xff) // huge payloadLen
	shostile = append(shostile, s[24:]...)

	snap = [][]byte{
		nil,
		s,
		s[:len(s)-1],
		s[:snapHeaderLen],
		sflip,
		empty,
		shostile,
		[]byte("MPS9 future version padded out to minimum length"),
		append(append([]byte(nil), s...), 0x00), // trailing byte
	}
	return wal, snap
}

// FuzzWALReplay asserts parseWAL never panics, that its valid prefix
// is exactly canonical (re-encoding the parsed records reproduces the
// prefix byte for byte), and that re-parsing the prefix is clean — so
// hostile, truncated, or bit-flipped logs can only shrink to a valid
// prefix, never decode into wrong records.
func FuzzWALReplay(f *testing.F) {
	wal, _ := fuzzSeeds()
	for _, s := range wal {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, validLen, torn := parseWAL(b)
		if validLen < 0 || validLen > len(b) {
			t.Fatalf("validLen %d out of range for %d bytes", validLen, len(b))
		}
		if validLen < 4 {
			if len(recs) != 0 || validLen != 0 {
				t.Fatalf("no magic but recs=%d validLen=%d", len(recs), validLen)
			}
		} else {
			out := append([]byte(nil), walMagic...)
			for _, r := range recs {
				out = appendRecord(out, r)
			}
			if !bytes.Equal(out, b[:validLen]) {
				t.Fatalf("valid prefix is not canonical: %x vs %x", out, b[:validLen])
			}
		}
		if validLen < len(b) && torn == 0 {
			t.Fatalf("dropped %d bytes without counting a torn record", len(b)-validLen)
		}
		recs2, validLen2, torn2 := parseWAL(b[:validLen])
		if validLen2 != validLen || torn2 != 0 || !reflect.DeepEqual(recs2, recs) {
			t.Fatalf("re-parse of valid prefix diverged: %d/%d torn=%d", validLen2, validLen, torn2)
		}
	})
}

// FuzzSnapshotDecode asserts decodeSnapshotFile never panics, rejects
// everything non-canonical with ErrCorrupt, and round-trips what it
// accepts.
func FuzzSnapshotDecode(f *testing.F) {
	_, snap := fuzzSeeds()
	for _, s := range snap {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := decodeSnapshotFile(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		if !bytes.Equal(encodeSnapshotFile(s), b) {
			t.Fatalf("accepted snapshot does not round-trip")
		}
	})
}

// TestGenerateFuzzCorpus rewrites the checked-in seed corpora under
// testdata/fuzz when UPDATE_FUZZ_CORPUS=1; by default it verifies the
// files exist so the CI fuzz job never starts cold.
func TestGenerateFuzzCorpus(t *testing.T) {
	wal, snap := fuzzSeeds()
	targets := map[string][][]byte{
		"FuzzWALReplay":      wal,
		"FuzzSnapshotDecode": snap,
	}
	for target, seeds := range targets {
		dir := filepath.Join("testdata", "fuzz", target)
		if os.Getenv("UPDATE_FUZZ_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatalf("mkdir %s: %v", dir, err)
			}
			for i, s := range seeds {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
				name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
				if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
					t.Fatalf("write %s: %v", name, err)
				}
			}
			continue
		}
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) < len(seeds) {
			t.Fatalf("corpus %s is missing or short (%d entries, want %d); regenerate with UPDATE_FUZZ_CORPUS=1", dir, len(ents), len(seeds))
		}
	}
}
