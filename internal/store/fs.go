package store

import (
	"io"
	"os"
)

// FS is the filesystem seam Disk operates through. The production
// implementation is OSFS; the storetest package substitutes a
// fault-injecting one, which is what lets the crash tests kill the
// store at an exact operation boundary (the Nth write, sync, or
// rename) and then reopen the directory as a restart would.
type FS interface {
	// MkdirAll creates path and its parents.
	MkdirAll(path string) error
	// ReadDir lists the entry names of a directory.
	ReadDir(path string) ([]string, error)
	// ReadFile reads a whole file.
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes one file.
	Remove(path string) error
	// RemoveAll deletes a tree.
	RemoveAll(path string) error
	// Truncate cuts a file to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs a directory, making renames and removals in it
	// durable.
	SyncDir(path string) error
}

// File is the writable-handle half of the seam.
type File interface {
	io.Writer
	// Sync fsyncs the file.
	Sync() error
	// Close closes the handle.
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// RemoveAll implements FS.
func (OSFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
