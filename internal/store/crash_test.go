package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/store"
	"repro/internal/store/storetest"
)

// diskState is what the sweep compares: the durable (snapshot, WAL)
// state of one matrix as a restart would see it.
type diskState struct {
	snap *store.Snapshot
	recs []store.Record
}

func (s diskState) equal(o diskState) bool {
	if (s.snap == nil) != (o.snap == nil) {
		return false
	}
	if s.snap != nil && (s.snap.Epoch != o.snap.Epoch || s.snap.Seq != o.snap.Seq || !bytes.Equal(s.snap.Payload, o.snap.Payload)) {
		return false
	}
	if len(s.recs) != len(o.recs) {
		return false
	}
	for i := range s.recs {
		if !reflect.DeepEqual(s.recs[i], o.recs[i]) {
			return false
		}
	}
	return true
}

// step is one Store call of the sweep workload, with its effect on the
// expected state.
type step struct {
	name  string
	run   func(s store.Store) error
	apply func(diskState) diskState
}

func snapOf(epoch, seq uint64, payload string) *store.Snapshot {
	return &store.Snapshot{Epoch: epoch, Seq: seq, Payload: []byte(payload)}
}

// crashSweepSteps exercises every mutating Store path on one matrix:
// first snapshot, appends, compaction (snapshot + truncation),
// replacement (new epoch), and deletion.
func crashSweepSteps() []step {
	app := func(r store.Record) step {
		return step{
			name: fmt.Sprintf("append-e%d-s%d", r.Epoch, r.Seq),
			run:  func(s store.Store) error { return s.AppendWAL("m", r) },
			apply: func(d diskState) diskState {
				d.recs = append(append([]store.Record(nil), d.recs...), r)
				return d
			},
		}
	}
	snp := func(sn *store.Snapshot, label string) step {
		return step{
			name: label,
			run:  func(s store.Store) error { return s.SaveSnapshot("m", *sn) },
			apply: func(d diskState) diskState {
				d.snap = sn
				return d
			},
		}
	}
	trunc := func(epoch, seq uint64) step {
		return step{
			name: fmt.Sprintf("truncate-e%d-s%d", epoch, seq),
			run:  func(s store.Store) error { return s.TruncateWAL("m", epoch, seq) },
			apply: func(d diskState) diskState {
				var kept []store.Record
				for _, r := range d.recs {
					if r.Epoch > epoch || (r.Epoch == epoch && r.Seq > seq) {
						kept = append(kept, r)
					}
				}
				d.recs = kept
				return d
			},
		}
	}
	return []step{
		snp(snapOf(1, 0, "snapA"), "first-snapshot"),
		app(store.Record{Epoch: 1, Seq: 1, Payload: []byte("u1")}),
		app(store.Record{Epoch: 1, Seq: 2, Payload: []byte("u2")}),
		snp(snapOf(1, 2, "snapB"), "compaction-snapshot"),
		trunc(1, 2),
		app(store.Record{Epoch: 1, Seq: 3, Payload: []byte("u3")}),
		snp(snapOf(2, 0, "snapC"), "replacement-snapshot"),
		trunc(2, 0),
		{
			name:  "delete",
			run:   func(s store.Store) error { return s.Delete("m") },
			apply: func(diskState) diskState { return diskState{} },
		},
	}
}

// runWorkload executes the steps against a Disk over ffs, stopping at
// the first error (the injected crash). It returns the expected state
// after the last acked step and after the step in flight when the
// fault fired.
func runWorkload(t *testing.T, dir string, ffs *storetest.FaultFS) (acked, pending diskState) {
	t.Helper()
	d, err := store.OpenDisk(store.DiskConfig{Dir: dir, Fsync: store.FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	acked = diskState{}
	for _, st := range crashSweepSteps() {
		next := st.apply(acked)
		if err := st.run(d); err != nil {
			if !errors.Is(err, storetest.ErrInjected) && !errors.Is(err, storetest.ErrCrashed) {
				t.Fatalf("step %s failed with a non-injected error: %v", st.name, err)
			}
			return acked, next
		}
		acked = next
	}
	return acked, acked
}

// TestCrashSweep is the store-level crash-recovery guarantee: for
// every mutating filesystem operation of the workload, and every fault
// shape, killing the process at that exact operation and restarting
// recovers either the state after the last acknowledged Store call or
// the state after the call that was in flight — never a torn mixture,
// never a corruption error.
func TestCrashSweep(t *testing.T) {
	probe := storetest.Wrap(store.OSFS{}, storetest.Fault{})
	runWorkload(t, t.TempDir(), probe)
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("workload issued only %d mutating ops; sweep would be trivial", total)
	}

	for _, kind := range []storetest.FaultKind{storetest.Fail, storetest.Torn, storetest.ShortSync} {
		for at := 1; at <= total; at++ {
			t.Run(fmt.Sprintf("%s-op%02d", kind, at), func(t *testing.T) {
				dir := t.TempDir()
				ffs := storetest.Wrap(store.OSFS{}, storetest.Fault{At: at, Kind: kind})
				acked, pending := runWorkload(t, dir, ffs)
				if !ffs.Crashed() {
					t.Fatalf("fault at op %d never fired (%d ops)", at, ffs.Ops())
				}

				// Restart: a fresh Disk over the same directory, clean FS.
				d, err := store.OpenDisk(store.DiskConfig{Dir: dir, Fsync: store.FsyncAlways})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer d.Close()
				snap, recs, err := d.Load("m")
				if err != nil {
					t.Fatalf("Load after crash: %v", err)
				}
				got := diskState{snap: snap, recs: recs}
				if !got.equal(acked) && !got.equal(pending) {
					t.Fatalf("recovered state matches neither acked nor pending:\n got: %s\nacked: %s\npending: %s",
						fmtState(got), fmtState(acked), fmtState(pending))
				}

				// The recovered directory must stay fully usable.
				if err := d.AppendWAL("m", store.Record{Epoch: 9, Seq: 1, Payload: []byte("post-crash")}); err != nil {
					t.Fatalf("AppendWAL after recovery: %v", err)
				}
			})
		}
	}
}

func fmtState(s diskState) string {
	b := "<nil>"
	if s.snap != nil {
		b = fmt.Sprintf("{e%d s%d %q}", s.snap.Epoch, s.snap.Seq, s.snap.Payload)
	}
	return fmt.Sprintf("snap=%s recs=%d", b, len(s.recs))
}
