// Package store is the durable-persistence seam of the serving tiers:
// a pluggable Store interface over per-matrix snapshots plus a
// write-ahead log of row updates, with a local-disk implementation
// (Disk). The service tier snapshots served matrices through it,
// appends a WAL record per row update, and recovers on boot by
// replaying the WAL over the latest snapshot; the gateway uses the
// same seam to spill retained wire copies under a memory budget.
//
// Payloads are opaque bytes: the owning tier encodes them (the service
// reuses its binary wire codec), and the store adds its own framing —
// magic, format version, CRC — so hostile or torn files are detected
// here, below any payload decoding.
//
// Versioning: snapshots and WAL records carry an (Epoch, Seq) pair
// assigned by the owner. The service uses the matrix's upload
// generation as the epoch and its row-update sub-version as the
// sequence, which is what makes recovery unambiguous across full
// replacements: a WAL record is applied only when its epoch matches
// the recovered snapshot's, so records from a replaced matrix's
// previous life can linger in the log (e.g. after a crash between a
// snapshot install and its log truncation) without ever replaying
// into the wrong matrix.
package store

import (
	"errors"
)

// Store errors.
var (
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt marks a snapshot file whose framing or checksum does
	// not validate. (A corrupt WAL *tail* is not an error: the valid
	// prefix is recovered and the tail truncated — a torn final write is
	// the expected crash shape.)
	ErrCorrupt = errors.New("store: corrupt file")
)

// Snapshot is one matrix's durable full-state frame.
type Snapshot struct {
	// Epoch is the owner-assigned replacement generation the snapshot
	// belongs to (the service uses the upload generation).
	Epoch uint64
	// Seq is the owner-assigned sequence the snapshot captures (the
	// service uses the row-update sub-version).
	Seq uint64
	// Payload is the owner-encoded matrix state.
	Payload []byte
}

// Record is one WAL entry: an owner-encoded mutation scoped to an
// (Epoch, Seq) version.
type Record struct {
	// Epoch must match the live snapshot's epoch for the record to
	// apply on replay.
	Epoch uint64
	// Seq is the sequence the mutation advances its matrix to.
	Seq uint64
	// Payload is the owner-encoded mutation.
	Payload []byte
}

// Stats snapshots a store's operation counters.
type Stats struct {
	// Snapshots counts snapshot files installed.
	Snapshots int64 `json:"snapshots"`
	// SnapshotBytes is the summed payload size of installed snapshots.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// WALAppends counts WAL records appended.
	WALAppends int64 `json:"wal_appends"`
	// WALBytes is the summed payload size of appended WAL records.
	WALBytes int64 `json:"wal_bytes"`
	// WALTruncations counts WAL compaction rewrites.
	WALTruncations int64 `json:"wal_truncations"`
	// Deletes counts matrix tombstones (Delete calls that removed
	// state).
	Deletes int64 `json:"deletes"`
	// Loads counts Load calls.
	Loads int64 `json:"loads"`
	// Fsyncs counts fsync calls issued (file and directory).
	Fsyncs int64 `json:"fsyncs"`
	// TornRecords counts WAL records dropped because their frame was
	// short or failed its checksum — the expected shape of a crash
	// mid-append.
	TornRecords int64 `json:"torn_records"`
	// TornBytes is the byte length of the invalid WAL tails truncated.
	TornBytes int64 `json:"torn_bytes"`
	// Errors counts failed store operations.
	Errors int64 `json:"errors"`
}

// Store is the durable persistence seam. Implementations must be safe
// for concurrent use; the zero-value semantics of a missing matrix are
// a nil Snapshot and no records, not an error.
type Store interface {
	// Names lists the matrices with durable state, sorted.
	Names() ([]string, error)
	// Load returns the latest snapshot (nil when none was ever saved)
	// and the valid WAL records, in append order. An invalid WAL tail
	// is truncated and counted, never returned; a corrupt snapshot is
	// ErrCorrupt.
	Load(name string) (*Snapshot, []Record, error)
	// SaveSnapshot atomically installs a new snapshot for name,
	// replacing any previous one.
	SaveSnapshot(name string, snap Snapshot) error
	// AppendWAL appends one record to name's log.
	AppendWAL(name string, rec Record) error
	// TruncateWAL drops the records a snapshot at (epoch, seq) covers:
	// every record with an older epoch, or the same epoch and a
	// sequence ≤ seq.
	TruncateWAL(name string, epoch, seq uint64) error
	// Delete tombstones name's durable state. Deleting an absent name
	// is not an error.
	Delete(name string) error
	// Sync forces any batched writes to durable storage.
	Sync() error
	// Stats snapshots the operation counters.
	Stats() Stats
	// Close flushes and releases the store.
	Close() error
}
