package storetest

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

func TestFaultFSCountsAndCrashes(t *testing.T) {
	dir := t.TempDir()
	f := Wrap(store.OSFS{}, Fault{At: 2, Kind: Fail})
	w, err := f.Create(filepath.Join(dir, "a")) // op 1
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) { // op 2: fires
		t.Fatalf("faulted write = %v, want ErrInjected", err)
	}
	if !f.Crashed() {
		t.Fatal("not crashed after fault")
	}
	if _, err := w.Write([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}
	if err := f.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash SyncDir = %v, want ErrCrashed", err)
	}
	if _, err := f.ReadFile(filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile = %v, want ErrCrashed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("post-crash Close should be free: %v", err)
	}
	if f.Ops() != 2 {
		t.Fatalf("Ops = %d, want 2", f.Ops())
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	f := Wrap(store.OSFS{}, Fault{At: 2, Kind: Torn})
	w, err := f.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := w.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) || n != 5 {
		t.Fatalf("torn write = %d, %v; want 5, ErrInjected", n, err)
	}
	w.Close()
	b, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(b) != "01234" {
		t.Fatalf("on-disk bytes = %q, %v; want first half", b, err)
	}
}

func TestFaultFSShortSync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	// Ops: 1 create, 2 write, 3 sync, 4 write, 5 sync (fires).
	f := Wrap(store.OSFS{}, Fault{At: 5, Kind: ShortSync})
	w, err := f.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("durable")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if _, err := w.Write([]byte("+dirty")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted sync = %v, want ErrInjected", err)
	}
	w.Close()
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "durable" {
		t.Fatalf("on-disk bytes = %q, %v; want the synced prefix only", b, err)
	}
}

func TestFaultFSTracksAcrossRenameAndReopen(t *testing.T) {
	dir := t.TempDir()
	tmp, final := filepath.Join(dir, "f.tmp"), filepath.Join(dir, "f")
	f := Wrap(store.OSFS{}, Fault{})
	w, err := f.Create(tmp)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("abc")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	w.Close()
	if err := f.Rename(tmp, final); err != nil {
		t.Fatalf("rename: %v", err)
	}

	// Reopen via append: the pre-existing synced length carries over, so
	// a ShortSync later reverts to it, not to zero.
	f2 := Wrap(store.OSFS{}, Fault{At: 2, Kind: ShortSync})
	w2, err := f2.OpenAppend(final)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	if _, err := w2.Write([]byte("+more")); err != nil { // op 1
		t.Fatalf("append: %v", err)
	}
	if err := w2.Sync(); !errors.Is(err, ErrInjected) { // op 2: fires
		t.Fatalf("faulted sync = %v", err)
	}
	w2.Close()
	b, err := os.ReadFile(final)
	if err != nil || string(b) != "abc" {
		t.Fatalf("on-disk bytes = %q, %v; want pre-append content", b, err)
	}
}

func TestFaultKindString(t *testing.T) {
	if Fail.String() != "fail" || Torn.String() != "torn" || ShortSync.String() != "shortsync" {
		t.Fatal("FaultKind names changed")
	}
	if FaultKind(9).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}
