// Package storetest provides the crash-injection layer of the store
// tests: a fault-point filesystem that kills a Disk at an exact
// mutating operation — the Nth write, fsync, rename, or removal — in
// one of three shapes (clean failure, torn write, failed fsync with
// dirty pages dropped). A test runs a workload once to count the
// mutating ops, then sweeps every fault point: inject, crash, reopen
// the directory as a restarted process would, and assert the recovered
// state is byte-identical to a never-crashed server's.
package storetest

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/store"
)

// ErrInjected is the error surfaced by the faulted operation itself.
var ErrInjected = errors.New("storetest: injected fault")

// ErrCrashed is returned by every operation after the fault point: the
// process is dead, nothing more reaches the disk.
var ErrCrashed = errors.New("storetest: crashed")

// FaultKind selects the shape of the injected fault.
type FaultKind int

const (
	// Fail makes the faulted operation error without any effect.
	Fail FaultKind = iota
	// Torn makes the faulted operation — when it is a file write —
	// persist only the first half of its buffer before erroring: the
	// on-disk shape of a crash mid-append. On any other operation it
	// degrades to Fail, so a sweep can use one kind across all points.
	Torn
	// ShortSync makes the faulted operation — when it is a file fsync —
	// return an error after reverting the file to its last successfully
	// synced length: the on-disk shape of an fsync EIO whose dirty
	// pages the kernel then drops. On any other operation it degrades
	// to Fail.
	ShortSync
)

// String names the kind for test labels.
func (k FaultKind) String() string {
	switch k {
	case Fail:
		return "fail"
	case Torn:
		return "torn"
	case ShortSync:
		return "shortsync"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one injection point: the At'th mutating operation (1-based)
// fails with the given Kind, and every operation after it fails with
// ErrCrashed. A zero At never fires, which makes the same FaultFS
// usable as a pure op counter.
type Fault struct {
	At   int
	Kind FaultKind
}

// FaultFS wraps an inner store.FS and injects one Fault. Mutating
// operations — file writes, fsyncs, Create, Rename, Remove, RemoveAll,
// Truncate, SyncDir — are counted; reads and directory creation are
// passed through (but refuse after the crash, like everything else).
type FaultFS struct {
	inner store.FS

	mu      sync.Mutex
	fault   Fault
	ops     int
	crashed bool
	size    map[string]int64 // current length of files written through us
	synced  map[string]int64 // length at the last successful fsync
}

// Wrap builds a FaultFS over inner with the given fault.
func Wrap(inner store.FS, fault Fault) *FaultFS {
	return &FaultFS{
		inner:  inner,
		fault:  fault,
		size:   make(map[string]int64),
		synced: make(map[string]int64),
	}
}

// Ops reports the mutating operations counted so far; run the workload
// with a zero Fault to learn the sweep range.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the fault fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// begin registers one mutating operation under f.mu. fire is true when
// this operation is the configured fault point (and the crash state is
// now set); err is non-nil when the process already crashed.
func (f *FaultFS) begin() (fire bool, err error) {
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if f.fault.At > 0 && f.ops == f.fault.At {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

func (f *FaultFS) injected(op, path string) error {
	return fmt.Errorf("%w: %s op %d (%s) on %s", ErrInjected, f.fault.Kind, f.fault.At, op, path)
}

// MkdirAll implements store.FS (uncounted).
func (f *FaultFS) MkdirAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path)
}

// ReadDir implements store.FS (uncounted).
func (f *FaultFS) ReadDir(path string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(path)
}

// ReadFile implements store.FS (uncounted).
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(path)
}

// Create implements store.FS.
func (f *FaultFS) Create(path string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fire, err := f.begin()
	if err != nil {
		return nil, err
	}
	if fire {
		return nil, f.injected("create", path)
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	f.size[path] = 0
	f.synced[path] = 0
	return &faultFile{fs: f, path: path, inner: file}, nil
}

// OpenAppend implements store.FS (uncounted: opening mutates nothing
// the tests care about, the first write does).
func (f *FaultFS) OpenAppend(path string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	if _, ok := f.size[path]; !ok {
		b, err := f.inner.ReadFile(path)
		if err == nil {
			// Pre-existing content was durable before we started watching.
			f.size[path] = int64(len(b))
			f.synced[path] = int64(len(b))
		} else {
			f.size[path] = 0
			f.synced[path] = 0
		}
	}
	file, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, inner: file}, nil
}

// Rename implements store.FS.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fire, err := f.begin()
	if err != nil {
		return err
	}
	if fire {
		return f.injected("rename", oldPath)
	}
	if err := f.inner.Rename(oldPath, newPath); err != nil {
		return err
	}
	if n, ok := f.size[oldPath]; ok {
		f.size[newPath] = n
		f.synced[newPath] = f.synced[oldPath]
		delete(f.size, oldPath)
		delete(f.synced, oldPath)
	}
	return nil
}

// Remove implements store.FS.
func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fire, err := f.begin()
	if err != nil {
		return err
	}
	if fire {
		return f.injected("remove", path)
	}
	if err := f.inner.Remove(path); err != nil {
		return err
	}
	delete(f.size, path)
	delete(f.synced, path)
	return nil
}

// RemoveAll implements store.FS.
func (f *FaultFS) RemoveAll(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fire, err := f.begin()
	if err != nil {
		return err
	}
	if fire {
		return f.injected("removeall", path)
	}
	if err := f.inner.RemoveAll(path); err != nil {
		return err
	}
	for p := range f.size {
		if p == path || strings.HasPrefix(p, path+"/") {
			delete(f.size, p)
			delete(f.synced, p)
		}
	}
	return nil
}

// Truncate implements store.FS.
func (f *FaultFS) Truncate(path string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fire, err := f.begin()
	if err != nil {
		return err
	}
	if fire {
		return f.injected("truncate", path)
	}
	if err := f.inner.Truncate(path, size); err != nil {
		return err
	}
	f.size[path] = size
	if f.synced[path] > size {
		f.synced[path] = size
	}
	return nil
}

// SyncDir implements store.FS.
func (f *FaultFS) SyncDir(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fire, err := f.begin()
	if err != nil {
		return err
	}
	if fire {
		return f.injected("syncdir", path)
	}
	return f.inner.SyncDir(path)
}

// faultFile is the File half of the seam.
type faultFile struct {
	fs    *FaultFS
	path  string
	inner store.File
}

// Write implements store.File.
func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	fire, err := w.fs.begin()
	if err != nil {
		return 0, err
	}
	if fire {
		if w.fs.fault.Kind == Torn && len(p) > 1 {
			n, _ := w.inner.Write(p[:len(p)/2])
			w.fs.size[w.path] += int64(n)
			return n, w.fs.injected("torn write", w.path)
		}
		return 0, w.fs.injected("write", w.path)
	}
	n, err := w.inner.Write(p)
	w.fs.size[w.path] += int64(n)
	return n, err
}

// Sync implements store.File.
func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	fire, err := w.fs.begin()
	if err != nil {
		return err
	}
	if fire {
		if w.fs.fault.Kind == ShortSync {
			// fsync failed and the kernel dropped the dirty pages: the
			// file reverts to its last successfully synced length.
			if terr := w.fs.inner.Truncate(w.path, w.fs.synced[w.path]); terr == nil {
				w.fs.size[w.path] = w.fs.synced[w.path]
			}
			return w.fs.injected("short sync", w.path)
		}
		return w.fs.injected("sync", w.path)
	}
	if err := w.inner.Sync(); err != nil {
		return err
	}
	w.fs.synced[w.path] = w.fs.size[w.path]
	return nil
}

// Close implements store.File. Closing is free even after the crash —
// the dying process's descriptors close either way.
func (w *faultFile) Close() error {
	return w.inner.Close()
}
