package store

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FsyncMode selects the durability policy of a Disk.
type FsyncMode int

const (
	// FsyncAlways fsyncs every WAL append and snapshot install before
	// acknowledging it — full durability, one fsync per operation.
	FsyncAlways FsyncMode = iota
	// FsyncBatch acknowledges WAL appends after the OS write and fsyncs
	// dirty logs in the background every BatchWindow: a crash can lose
	// at most the last window of acknowledged appends, in exchange for
	// amortizing fsyncs across a burst of updates. Snapshot installs
	// are still synced inline — the rename protocol needs the file
	// durable before the rename, and snapshots are rare.
	FsyncBatch
	// FsyncNever issues no fsyncs. Durability is whatever the OS
	// provides; for tests and throwaway data.
	FsyncNever
)

// ParseFsyncMode maps the -fsync flag values to a mode.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync mode %q (want always, batch, or never)", s)
}

// DiskConfig parameterizes OpenDisk. Zero values select the defaults.
type DiskConfig struct {
	// Dir is the data directory. Required.
	Dir string
	// Fsync is the durability policy. Default FsyncAlways.
	Fsync FsyncMode
	// BatchWindow is the background fsync period under FsyncBatch.
	// Default 5ms.
	BatchWindow time.Duration
	// FS substitutes the filesystem seam; nil selects the real one.
	// Tests inject faults here (see storetest).
	FS FS
}

// Disk is the local-disk Store: one directory per matrix holding a
// name file (the exact registry name, so directory names can be
// filesystem-safe hashes), the latest snapshot, and the WAL.
//
// Crash safety leans on two protocols. Snapshot installs write to a
// temp file, fsync it, and rename over the old snapshot (then fsync
// the directory), so the snapshot file is always either the old or the
// new one, never torn. WAL appends are a single write of a
// CRC-framed record; a crash mid-write leaves a torn tail that the
// next open detects, truncates, and counts — the valid prefix is
// exactly the acknowledged records (under FsyncAlways). Deletes
// remove the name file first and fsync the directory before removing
// the tree, so a crash mid-delete leaves a directory that recovery
// ignores rather than a half-deleted matrix.
type Disk struct {
	dir    string
	mode   FsyncMode
	window time.Duration
	fs     FS

	mu     sync.Mutex
	closed bool
	wals   map[string]*walHandle // open append handles by matrix name
	stats  Stats

	flushWG sync.WaitGroup
	stop    chan struct{}
}

// walHandle is one matrix's open WAL append handle.
type walHandle struct {
	f     File
	path  string
	dirty bool // written since the last fsync (FsyncBatch)
}

// OpenDisk opens (creating if needed) a local-disk store rooted at
// cfg.Dir.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: DiskConfig.Dir is required")
	}
	if cfg.FS == nil {
		cfg.FS = OSFS{}
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 5 * time.Millisecond
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	d := &Disk{
		dir:    cfg.Dir,
		mode:   cfg.Fsync,
		window: cfg.BatchWindow,
		fs:     cfg.FS,
		wals:   make(map[string]*walHandle),
		stop:   make(chan struct{}),
	}
	if d.mode == FsyncBatch {
		d.flushWG.Add(1)
		go d.flushLoop()
	}
	return d, nil
}

// flushLoop is the FsyncBatch background syncer.
func (d *Disk) flushLoop() {
	defer d.flushWG.Done()
	tick := time.NewTicker(d.window)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
			d.mu.Lock()
			d.syncDirtyLocked()
			d.mu.Unlock()
		}
	}
}

// syncDirtyLocked fsyncs every dirty WAL handle. Callers hold d.mu.
func (d *Disk) syncDirtyLocked() {
	for _, h := range d.wals {
		if !h.dirty {
			continue
		}
		if err := h.f.Sync(); err != nil {
			d.stats.Errors++
			continue
		}
		d.stats.Fsyncs++
		h.dirty = false
	}
}

// dirKey maps a registry name to a filesystem-safe directory name: a
// readable slug prefix plus a 64-bit hash suffix for uniqueness.
func dirKey(name string) string {
	var slug strings.Builder
	for _, r := range name {
		if slug.Len() >= 40 {
			break
		}
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			slug.WriteRune(r)
		default:
			slug.WriteByte('_')
		}
	}
	h := sha256.Sum256([]byte(name))
	return fmt.Sprintf("%s-%x", slug.String(), h[:8])
}

func (d *Disk) matrixDir(name string) string { return filepath.Join(d.dir, dirKey(name)) }
func (d *Disk) namePath(name string) string  { return filepath.Join(d.matrixDir(name), "name") }
func (d *Disk) snapPath(name string) string  { return filepath.Join(d.matrixDir(name), "snap") }
func (d *Disk) walPath(name string) string   { return filepath.Join(d.matrixDir(name), "wal") }
func notExist(err error) bool                { return errors.Is(err, fs.ErrNotExist) }
func (d *Disk) fail(err error) error         { d.stats.Errors++; return err }

// nameFileMagic versions the name file ("MPN1" + raw name bytes).
const nameFileMagic = "MPN1"

// Names implements Store. Directories without a valid name file are
// skipped: that is the durable shape of a crash mid-delete (the name
// file goes first) or mid-create (the name file lands before any
// state), so recovery must treat them as absent.
func (d *Disk) Names() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	ents, err := d.fs.ReadDir(d.dir)
	if err != nil {
		if notExist(err) {
			return nil, nil
		}
		return nil, d.fail(fmt.Errorf("store: list data dir: %w", err))
	}
	var names []string
	for _, e := range ents {
		b, err := d.fs.ReadFile(filepath.Join(d.dir, e, "name"))
		if err != nil || len(b) <= len(nameFileMagic) || string(b[:len(nameFileMagic)]) != nameFileMagic {
			continue
		}
		names = append(names, string(b[len(nameFileMagic):]))
	}
	sort.Strings(names)
	return names, nil
}

// ensureDirLocked creates a matrix's directory and name file if they
// do not exist yet. The name file is synced unconditionally (it is
// written once per matrix lifetime): without it the directory is
// invisible to recovery, so the matrix's durability starts here.
func (d *Disk) ensureDirLocked(name string) error {
	dir := d.matrixDir(name)
	if _, err := d.fs.ReadFile(d.namePath(name)); err == nil {
		return nil
	}
	if err := d.fs.MkdirAll(dir); err != nil {
		return err
	}
	f, err := d.fs.Create(d.namePath(name))
	if err != nil {
		return err
	}
	if _, err := f.Write(append([]byte(nameFileMagic), name...)); err != nil {
		f.Close()
		return err
	}
	if err := d.syncFile(f, true); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return d.syncDirOf(dir)
}

// syncFile fsyncs f under the policy; force overrides FsyncBatch (used
// by the rename protocols, whose ordering batching must not relax).
func (d *Disk) syncFile(f File, force bool) error {
	if d.mode == FsyncNever || (d.mode == FsyncBatch && !force) {
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	d.stats.Fsyncs++
	return nil
}

// syncDirOf fsyncs a directory under the policy.
func (d *Disk) syncDirOf(dir string) error {
	if d.mode == FsyncNever {
		return nil
	}
	if err := d.fs.SyncDir(dir); err != nil {
		return err
	}
	d.stats.Fsyncs++
	return nil
}

// Load implements Store.
func (d *Disk) Load(name string) (*Snapshot, []Record, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, nil, ErrClosed
	}
	d.stats.Loads++
	var snap *Snapshot
	if b, err := d.fs.ReadFile(d.snapPath(name)); err == nil {
		s, derr := decodeSnapshotFile(b)
		if derr != nil {
			return nil, nil, d.fail(fmt.Errorf("snapshot of %q: %w", name, derr))
		}
		snap = &s
	} else if !notExist(err) {
		return nil, nil, d.fail(fmt.Errorf("store: read snapshot of %q: %w", name, err))
	}
	recs, err := d.openWALLocked(name, false)
	if err != nil {
		return nil, nil, d.fail(err)
	}
	return snap, recs, nil
}

// openWALLocked reads and validates name's WAL, truncating any torn
// tail, and (when forAppend) leaves an open append handle cached.
// Returns the valid records. Callers hold d.mu.
func (d *Disk) openWALLocked(name string, forAppend bool) ([]Record, error) {
	path := d.walPath(name)
	if h := d.wals[name]; h != nil {
		// An open handle means the file was validated when it was opened
		// and only whole records were appended since; re-read without
		// re-truncating.
		b, err := d.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: read wal of %q: %w", name, err)
		}
		recs, _, _ := parseWAL(b)
		return recs, nil
	}
	b, err := d.fs.ReadFile(path)
	if err != nil && !notExist(err) {
		return nil, fmt.Errorf("store: read wal of %q: %w", name, err)
	}
	var recs []Record
	cur := len(b) // file length after torn-tail repair
	if err == nil {
		var validLen int
		var torn int64
		recs, validLen, torn = parseWAL(b)
		if torn > 0 || validLen < len(b) {
			d.stats.TornRecords += torn
			d.stats.TornBytes += int64(len(b) - validLen)
			if validLen < 4 {
				validLen = 0 // no magic either: rewrite as an empty file
			}
			if err := d.fs.Truncate(path, int64(validLen)); err != nil {
				return nil, fmt.Errorf("store: truncate torn wal of %q: %w", name, err)
			}
			cur = validLen
		}
	} else {
		cur = 0
	}
	if !forAppend {
		return recs, nil
	}
	f, err := d.fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("store: open wal of %q: %w", name, err)
	}
	if cur < 4 {
		// Fresh (or rewritten-empty) log: write the magic first.
		if _, werr := f.Write([]byte(walMagic)); werr != nil {
			f.Close()
			return nil, fmt.Errorf("store: init wal of %q: %w", name, werr)
		}
	}
	d.wals[name] = &walHandle{f: f, path: path}
	return recs, nil
}

// SaveSnapshot implements Store.
func (d *Disk) SaveSnapshot(name string, snap Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.saveSnapshotLocked(name, snap); err != nil {
		return d.fail(fmt.Errorf("store: snapshot %q: %w", name, err))
	}
	d.stats.Snapshots++
	d.stats.SnapshotBytes += int64(len(snap.Payload))
	return nil
}

func (d *Disk) saveSnapshotLocked(name string, snap Snapshot) error {
	if err := d.ensureDirLocked(name); err != nil {
		return err
	}
	tmp := d.snapPath(name) + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSnapshotFile(snap)); err != nil {
		f.Close()
		return err
	}
	if err := d.syncFile(f, true); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(tmp, d.snapPath(name)); err != nil {
		return err
	}
	return d.syncDirOf(d.matrixDir(name))
}

// AppendWAL implements Store.
func (d *Disk) AppendWAL(name string, rec Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.ensureDirLocked(name); err != nil {
		return d.fail(fmt.Errorf("store: wal dir of %q: %w", name, err))
	}
	h := d.wals[name]
	if h == nil {
		if _, err := d.openWALLocked(name, true); err != nil {
			return d.fail(err)
		}
		h = d.wals[name]
	}
	if _, err := h.f.Write(appendRecord(nil, rec)); err != nil {
		// The write may have landed partially: drop the handle so the
		// next append revalidates (and truncates) the tail.
		h.f.Close()
		delete(d.wals, name)
		return d.fail(fmt.Errorf("store: append wal of %q: %w", name, err))
	}
	switch d.mode {
	case FsyncAlways:
		if err := h.f.Sync(); err != nil {
			h.f.Close()
			delete(d.wals, name)
			return d.fail(fmt.Errorf("store: sync wal of %q: %w", name, err))
		}
		d.stats.Fsyncs++
	case FsyncBatch:
		h.dirty = true
	}
	d.stats.WALAppends++
	d.stats.WALBytes += int64(len(rec.Payload))
	return nil
}

// TruncateWAL implements Store.
func (d *Disk) TruncateWAL(name string, epoch, seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	path := d.walPath(name)
	b, err := d.fs.ReadFile(path)
	if err != nil {
		if notExist(err) {
			return nil
		}
		return d.fail(fmt.Errorf("store: read wal of %q: %w", name, err))
	}
	recs, validLen, _ := parseWAL(b)
	kept := recs[:0]
	for _, r := range recs {
		if r.Epoch > epoch || (r.Epoch == epoch && r.Seq > seq) {
			kept = append(kept, r)
		}
	}
	if len(kept) == len(recs) && validLen == len(b) {
		return nil // nothing to drop, nothing torn
	}
	if h := d.wals[name]; h != nil {
		h.f.Close()
		delete(d.wals, name)
	}
	out := append([]byte(nil), walMagic...)
	for _, r := range kept {
		out = appendRecord(out, r)
	}
	if err := d.rewriteLocked(path, out); err != nil {
		return d.fail(fmt.Errorf("store: truncate wal of %q: %w", name, err))
	}
	d.stats.WALTruncations++
	return nil
}

// rewriteLocked atomically replaces path's contents via the temp-file
// rename protocol.
func (d *Disk) rewriteLocked(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := d.syncFile(f, true); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(tmp, path); err != nil {
		return err
	}
	return d.syncDirOf(filepath.Dir(path))
}

// Delete implements Store. The name file is removed (and the removal
// made durable) before the rest of the tree: a crash mid-delete then
// leaves a directory recovery skips, never a resurrected matrix.
func (d *Disk) Delete(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if h := d.wals[name]; h != nil {
		h.f.Close()
		delete(d.wals, name)
	}
	if err := d.fs.Remove(d.namePath(name)); err != nil {
		if notExist(err) {
			return nil // no durable state to tombstone
		}
		return d.fail(fmt.Errorf("store: delete %q: %w", name, err))
	}
	if err := d.syncDirOf(d.matrixDir(name)); err != nil {
		return d.fail(fmt.Errorf("store: delete %q: %w", name, err))
	}
	if err := d.fs.RemoveAll(d.matrixDir(name)); err != nil {
		return d.fail(fmt.Errorf("store: delete %q: %w", name, err))
	}
	d.stats.Deletes++
	return nil
}

// Sync implements Store: it forces any batched WAL writes down.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	for _, h := range d.wals {
		if !h.dirty {
			continue
		}
		if err := h.f.Sync(); err != nil {
			return d.fail(fmt.Errorf("store: sync: %w", err))
		}
		d.stats.Fsyncs++
		h.dirty = false
	}
	return nil
}

// Stats implements Store.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.stop)
	var first error
	for name, h := range d.wals {
		if h.dirty {
			if err := h.f.Sync(); err != nil && first == nil {
				first = err
			} else if err == nil {
				d.stats.Fsyncs++
			}
		}
		if err := h.f.Close(); err != nil && first == nil {
			first = err
		}
		delete(d.wals, name)
	}
	d.mu.Unlock()
	d.flushWG.Wait()
	return first
}
