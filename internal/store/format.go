package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk framing. Both file kinds open with a 4-byte magic whose last
// byte is the format version, so a future layout change bumps the
// magic and old files are rejected (or migrated) explicitly rather
// than misparsed.
//
// Snapshot file:
//
//	"MPS1" | epoch u64 LE | seq u64 LE | payloadLen u32 LE | payload | crc u32 LE
//
// WAL file: "MPW1" followed by zero or more records:
//
//	payloadLen u32 LE | epoch u64 LE | seq u64 LE | payload | crc u32 LE
//
// Each CRC (IEEE) covers everything after the file magic (snapshot)
// or the whole record before it (WAL), headers included, so a bit
// flip in a length or version field is as detectable as one in the
// payload. WAL parsing accepts the longest valid prefix: the first
// short or checksum-failing record ends the log — that is the torn
// tail of a crash mid-append, and Disk truncates it away on open.
const (
	snapMagic = "MPS1"
	walMagic  = "MPW1"

	// maxFramePayload bounds a single frame's declared payload so a
	// hostile length field cannot drive a giant allocation. 1 GiB is far
	// above any real matrix frame (the service caps matrices well below
	// it) while still fitting in memory.
	maxFramePayload = 1 << 30

	snapHeaderLen = 4 + 8 + 8 + 4 // magic, epoch, seq, payloadLen
	recHeaderLen  = 4 + 8 + 8     // payloadLen, epoch, seq
	crcLen        = 4
)

// encodeSnapshotFile renders a whole snapshot file.
func encodeSnapshotFile(s Snapshot) []byte {
	b := make([]byte, 0, snapHeaderLen+len(s.Payload)+crcLen)
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint64(b, s.Epoch)
	b = binary.LittleEndian.AppendUint64(b, s.Seq)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Payload)))
	b = append(b, s.Payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[4:]))
}

// decodeSnapshotFile parses a snapshot file, rejecting any framing or
// checksum violation with ErrCorrupt.
func decodeSnapshotFile(b []byte) (Snapshot, error) {
	if len(b) < snapHeaderLen+crcLen {
		return Snapshot{}, fmt.Errorf("%w: snapshot file of %d bytes", ErrCorrupt, len(b))
	}
	if string(b[:4]) != snapMagic {
		return Snapshot{}, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, b[:4])
	}
	plen := binary.LittleEndian.Uint32(b[20:24])
	if uint64(plen) > maxFramePayload {
		return Snapshot{}, fmt.Errorf("%w: snapshot payload length %d", ErrCorrupt, plen)
	}
	want := snapHeaderLen + int(plen) + crcLen
	if len(b) != want {
		return Snapshot{}, fmt.Errorf("%w: snapshot file is %d bytes, frame says %d", ErrCorrupt, len(b), want)
	}
	body := b[4 : snapHeaderLen+int(plen)]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(b[want-crcLen:]) {
		return Snapshot{}, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	s := Snapshot{
		Epoch:   binary.LittleEndian.Uint64(b[4:12]),
		Seq:     binary.LittleEndian.Uint64(b[12:20]),
		Payload: append([]byte(nil), b[snapHeaderLen:snapHeaderLen+int(plen)]...),
	}
	return s, nil
}

// appendRecord appends one framed WAL record to dst.
func appendRecord(dst []byte, r Record) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Payload)))
	dst = binary.LittleEndian.AppendUint64(dst, r.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = append(dst, r.Payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// parseWAL reads the longest valid prefix of a WAL file: the records
// it returns all validated, validLen is the byte length of that prefix
// (what the file should be truncated to), and tornRecords counts the
// frames dropped behind it. A file without the magic has a valid
// prefix of zero — the whole file is torn.
func parseWAL(b []byte) (recs []Record, validLen int, tornRecords int64) {
	if len(b) < 4 || string(b[:4]) != walMagic {
		if len(b) > 0 {
			tornRecords++
		}
		return nil, 0, tornRecords
	}
	off := 4
	for off < len(b) {
		rest := len(b) - off
		if rest < recHeaderLen+crcLen {
			tornRecords++
			break
		}
		plen := binary.LittleEndian.Uint32(b[off : off+4])
		if uint64(plen) > maxFramePayload || rest < recHeaderLen+int(plen)+crcLen {
			tornRecords++
			break
		}
		end := off + recHeaderLen + int(plen)
		if crc32.ChecksumIEEE(b[off:end]) != binary.LittleEndian.Uint32(b[end:end+crcLen]) {
			tornRecords++
			break
		}
		recs = append(recs, Record{
			Epoch:   binary.LittleEndian.Uint64(b[off+4 : off+12]),
			Seq:     binary.LittleEndian.Uint64(b[off+12 : off+20]),
			Payload: append([]byte(nil), b[off+recHeaderLen:end]...),
		})
		off = end + crcLen
		validLen = off
	}
	if validLen == 0 {
		validLen = 4 // keep the magic; only records behind it were torn
	}
	return recs, validLen, tornRecords
}
