// Package loadcurve models throughput-vs-offered-load sweeps with the
// Universal Scalability Law and locates the capacity knee.
//
// The USL (Gunther) models delivered throughput at offered load N as
//
//	X(N) = γ·N / (1 + σ·(N−1) + κ·N·(N−1))
//
// with γ the unloaded throughput per unit load, σ ∈ [0,1] the
// contention (serialization) fraction, and κ ≥ 0 the crosstalk
// (coherency) penalty. With κ > 0 the curve peaks at N* = √((1−σ)/κ)
// and retrogrades beyond it — N* is the predicted capacity knee.
//
// Fitting is deterministic: a coarse grid over (σ, κ) with the
// closed-form least-squares γ at each grid point (γ enters the model
// linearly, so for fixed σ and κ the optimal γ is Σ X·f / Σ f² with
// f(N) the load factor), followed by rounds of grid refinement around
// the incumbent. No randomness, no learning-rate tuning, and the
// result is reproducible bit for bit — this feeds a CI gate
// (scripts/benchguard), where a flaky fit means a flaky build.
package loadcurve

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// SchemaVersion identifies the BENCH_loadcurve.json layout; bump on
// incompatible changes so baseline comparisons fail loudly instead of
// misreading.
const SchemaVersion = 1

// Point is one step of a load sweep: what was asked for, what actually
// arrived, and what came back.
type Point struct {
	// TargetRPS is the arrival rate the generator aimed for.
	TargetRPS float64 `json:"target_rps"`
	// OfferedRPS is the arrival rate actually achieved (scheduled
	// arrivals that dispatched, per measured second). Under generator
	// saturation it falls below TargetRPS.
	OfferedRPS float64 `json:"offered_rps"`
	// ThroughputRPS is the rate of successful completions.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ErrorRate is failed completions (timeouts included) over total.
	ErrorRate float64 `json:"error_rate"`
	// Rejected counts 429 sheds during the measure phase.
	Rejected int64 `json:"rejected"`
	// Timeouts counts requests that exceeded the per-request deadline.
	Timeouts int64 `json:"timeouts"`
	// LateDispatches counts scheduled arrivals that dispatched late
	// (generator overrun) — nonzero means OfferedRPS is trustworthy
	// only because latency is measured from the scheduled arrival.
	LateDispatches int64 `json:"late_dispatches"`
	// LatencyP50/P90/P99 are measured from each request's scheduled
	// arrival time (coordinated-omission-corrected).
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

// Fit is a fitted USL model over a sweep.
type Fit struct {
	// Gamma is γ: unloaded throughput per unit of normalized load.
	Gamma float64 `json:"gamma"`
	// Sigma is σ: the contention (serialization) fraction.
	Sigma float64 `json:"sigma"`
	// Kappa is κ: the crosstalk (coherency) penalty.
	Kappa float64 `json:"kappa"`
	// LoadUnitRPS is the offered-RPS value of one normalized load unit
	// (the sweep's smallest offered rate); multiply normalized loads by
	// it to return to RPS.
	LoadUnitRPS float64 `json:"load_unit_rps"`
	// HasKnee reports whether the fitted κ is large enough to place a
	// peak inside reachable load (κ of exactly 0 never peaks).
	HasKnee bool `json:"has_knee"`
	// KneeLoad is N* = √((1−σ)/κ) in normalized load units (0 when
	// HasKnee is false).
	KneeLoad float64 `json:"knee_load"`
	// KneeRPS is the knee in offered-RPS units: KneeLoad·LoadUnitRPS.
	KneeRPS float64 `json:"knee_rps"`
	// PeakThroughputRPS is the model's delivered throughput at the knee
	// (at the maximum observed load when HasKnee is false).
	PeakThroughputRPS float64 `json:"peak_throughput_rps"`
	// R2 is the coefficient of determination of the fit.
	R2 float64 `json:"r2"`
}

// Report is the BENCH_loadcurve.json document one sweep emits.
type Report struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Target is the swept endpoint ("service" or "gateway" base URL).
	Target string `json:"target"`
	// Arrivals is the arrival process ("uniform" or "poisson").
	Arrivals string `json:"arrivals"`
	// Kind is the request mix description the sweep drove.
	Kind string `json:"kind,omitempty"`
	// WarmupSeconds and MeasureSeconds echo the per-step phase lengths.
	WarmupSeconds  float64 `json:"warmup_seconds"`
	MeasureSeconds float64 `json:"measure_seconds"`
	// Points are the sweep steps in ascending target order.
	Points []Point `json:"points"`
	// Fit is the USL model over the points; nil when the sweep was too
	// short to fit.
	Fit *Fit `json:"fit,omitempty"`
	// FitError records why Fit is nil (empty otherwise).
	FitError string `json:"fit_error,omitempty"`
}

// uslX evaluates the model at normalized load n.
func uslX(gamma, sigma, kappa, n float64) float64 {
	return gamma * n / (1 + sigma*(n-1) + kappa*n*(n-1))
}

// gammaFor returns the least-squares γ for fixed (σ, κ): the model is
// linear in γ, so γ* = Σ X·f / Σ f² with f the load factor, plus the
// residual sum of squares at that γ.
func gammaFor(loads, xs []float64, sigma, kappa float64) (gamma, sse float64) {
	var num, den float64
	for i, n := range loads {
		f := n / (1 + sigma*(n-1) + kappa*n*(n-1))
		num += xs[i] * f
		den += f * f
	}
	if den == 0 {
		return 0, math.Inf(1)
	}
	gamma = num / den
	for i, n := range loads {
		d := xs[i] - uslX(gamma, sigma, kappa, n)
		sse += d * d
	}
	return gamma, sse
}

// kneeNegligible is the κ below which the fitted peak sits so far past
// the observed range that reporting a knee would be extrapolation
// noise: the peak must fall within 10× the largest observed load.
func kneeNegligible(sigma, kappa, maxLoad float64) bool {
	if kappa <= 0 {
		return true
	}
	return math.Sqrt((1-sigma)/kappa) > 10*maxLoad
}

// FitUSL fits the USL to matched offered-load and throughput slices
// (both in RPS; at least three distinct positive loads). Loads are
// normalized by the smallest before fitting — LoadUnitRPS records the
// scale — so σ and κ are comparable across sweeps of different ranges.
func FitUSL(offeredRPS, throughputRPS []float64) (*Fit, error) {
	if len(offeredRPS) != len(throughputRPS) {
		return nil, fmt.Errorf("loadcurve: %d loads vs %d throughputs", len(offeredRPS), len(throughputRPS))
	}
	if len(offeredRPS) < 3 {
		return nil, errors.New("loadcurve: need at least 3 sweep points to fit")
	}
	unit := math.Inf(1)
	for _, l := range offeredRPS {
		if l <= 0 {
			return nil, fmt.Errorf("loadcurve: non-positive offered load %g", l)
		}
		if l < unit {
			unit = l
		}
	}
	loads := make([]float64, len(offeredRPS))
	maxLoad := 0.0
	distinct := make(map[float64]bool, len(offeredRPS))
	for i, l := range offeredRPS {
		loads[i] = l / unit
		distinct[loads[i]] = true
		if loads[i] > maxLoad {
			maxLoad = loads[i]
		}
	}
	if len(distinct) < 3 {
		return nil, errors.New("loadcurve: need at least 3 distinct offered loads to fit")
	}

	// Coarse grid. σ spans its whole meaningful range; κ spans zero plus
	// a log grid from far-below-visible to curve-dominating.
	sigmas := gridLinear(0, 0.95, 40)
	kappas := append([]float64{0}, gridLog(1e-7, 1, 50)...)
	bestSigma, bestKappa := 0.0, 0.0
	bestGamma, bestSSE := 0.0, math.Inf(1)
	for _, s := range sigmas {
		for _, k := range kappas {
			if g, sse := gammaFor(loads, throughputRPS, s, k); sse < bestSSE {
				bestSigma, bestKappa, bestGamma, bestSSE = s, k, g, sse
			}
		}
	}
	// Refine: shrink a local grid around the incumbent. Five rounds of
	// 5× shrinkage takes the σ step from ~0.024 to ~10⁻⁵.
	sStep := 0.95 / 39
	kFactor := 2.0
	for round := 0; round < 5; round++ {
		sLo, sHi := math.Max(0, bestSigma-sStep), math.Min(1, bestSigma+sStep)
		var kCands []float64
		if bestKappa == 0 {
			kCands = append([]float64{0}, gridLog(1e-9, 1e-6, 8)...)
		} else {
			kCands = gridLog(bestKappa/kFactor, bestKappa*kFactor, 12)
		}
		for _, s := range gridLinear(sLo, sHi, 12) {
			for _, k := range kCands {
				if g, sse := gammaFor(loads, throughputRPS, s, k); sse < bestSSE {
					bestSigma, bestKappa, bestGamma, bestSSE = s, k, g, sse
				}
			}
		}
		sStep /= 5
		kFactor = math.Pow(kFactor, 0.6)
	}

	var mean, sstot float64
	for _, x := range throughputRPS {
		mean += x
	}
	mean /= float64(len(throughputRPS))
	for _, x := range throughputRPS {
		sstot += (x - mean) * (x - mean)
	}
	fit := &Fit{
		Gamma:       bestGamma,
		Sigma:       bestSigma,
		Kappa:       bestKappa,
		LoadUnitRPS: unit,
		R2:          1,
	}
	if sstot > 0 {
		fit.R2 = 1 - bestSSE/sstot
	}
	if !kneeNegligible(bestSigma, bestKappa, maxLoad) {
		fit.HasKnee = true
		fit.KneeLoad = math.Sqrt((1 - bestSigma) / bestKappa)
		fit.KneeRPS = fit.KneeLoad * unit
		fit.PeakThroughputRPS = uslX(bestGamma, bestSigma, bestKappa, fit.KneeLoad)
	} else {
		fit.PeakThroughputRPS = uslX(bestGamma, bestSigma, bestKappa, maxLoad)
	}
	return fit, nil
}

// FitPoints fits the USL over a sweep's points, skipping points whose
// offered rate collapsed to zero.
func FitPoints(points []Point) (*Fit, error) {
	var loads, xs []float64
	for _, p := range points {
		if p.OfferedRPS > 0 {
			loads = append(loads, p.OfferedRPS)
			xs = append(xs, p.ThroughputRPS)
		}
	}
	return FitUSL(loads, xs)
}

// gridLinear returns n evenly spaced values over [lo, hi].
func gridLinear(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// gridLog returns n log-spaced values over [lo, hi], lo > 0.
func gridLog(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo}
	}
	llo, lhi := math.Log(lo), math.Log(hi)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(n-1))
	}
	return out
}
