package loadcurve

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// synth evaluates the USL at the given loads (in RPS, normalized by
// the smallest internally, matching FitUSL's convention).
func synth(gamma, sigma, kappa float64, loads []float64) []float64 {
	unit := loads[0]
	for _, l := range loads {
		if l < unit {
			unit = l
		}
	}
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = uslX(gamma, sigma, kappa, l/unit)
	}
	return out
}

// TestFitRecoversKnownModel generates a clean USL curve and asserts the
// fit recovers the parameters and the analytic knee.
func TestFitRecoversKnownModel(t *testing.T) {
	const gamma, sigma, kappa = 120, 0.08, 0.002
	loads := []float64{10, 20, 40, 80, 160, 320, 640, 1280}
	xs := synth(gamma, sigma, kappa, loads)
	fit, err := FitUSL(loads, xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Sigma-sigma) > 0.02 {
		t.Errorf("sigma = %v, want ~%v", fit.Sigma, sigma)
	}
	if fit.Kappa < kappa/2 || fit.Kappa > kappa*2 {
		t.Errorf("kappa = %v, want ~%v", fit.Kappa, kappa)
	}
	if math.Abs(fit.Gamma-gamma)/gamma > 0.05 {
		t.Errorf("gamma = %v, want ~%v", fit.Gamma, gamma)
	}
	if !fit.HasKnee {
		t.Fatal("no knee found on a retrograde curve")
	}
	wantKnee := math.Sqrt((1 - sigma) / kappa) // ≈ 21.4 load units
	if math.Abs(fit.KneeLoad-wantKnee)/wantKnee > 0.15 {
		t.Errorf("knee load = %v, want ~%v", fit.KneeLoad, wantKnee)
	}
	if want := wantKnee * 10; math.Abs(fit.KneeRPS-want)/want > 0.15 {
		t.Errorf("knee rps = %v, want ~%v", fit.KneeRPS, want)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v on noiseless data", fit.R2)
	}
}

// TestFitNoisy asserts the fit tolerates measurement noise without
// losing the knee. The perturbation is deterministic.
func TestFitNoisy(t *testing.T) {
	const gamma, sigma, kappa = 200, 0.05, 0.001
	loads := []float64{5, 10, 20, 40, 80, 160, 320, 640}
	xs := synth(gamma, sigma, kappa, loads)
	for i := range xs {
		if i%2 == 0 {
			xs[i] *= 1.03
		} else {
			xs[i] *= 0.97
		}
	}
	fit, err := FitUSL(loads, xs)
	if err != nil {
		t.Fatal(err)
	}
	if !fit.HasKnee {
		t.Fatal("no knee found on noisy retrograde curve")
	}
	wantKnee := math.Sqrt((1-sigma)/kappa) * 5 // in RPS
	if math.Abs(fit.KneeRPS-wantKnee)/wantKnee > 0.35 {
		t.Errorf("knee rps = %v, want ~%v", fit.KneeRPS, wantKnee)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

// TestFitLinearScaling pins the no-knee path: perfectly linear scaling
// must not invent a capacity ceiling.
func TestFitLinearScaling(t *testing.T) {
	loads := []float64{10, 20, 40, 80}
	xs := make([]float64, len(loads))
	for i, l := range loads {
		xs[i] = 3 * l
	}
	fit, err := FitUSL(loads, xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.HasKnee {
		t.Errorf("linear scaling fitted a knee at %v rps (sigma=%v kappa=%v)", fit.KneeRPS, fit.Sigma, fit.Kappa)
	}
	if fit.PeakThroughputRPS < 200 {
		t.Errorf("peak throughput = %v, want ~240 at max load", fit.PeakThroughputRPS)
	}
}

// TestFitSaturation covers the common real shape: throughput rises then
// flattens hard (contention-dominated, no retrograde). A knee may or
// may not be reported, but σ must be substantial and the model must
// track the plateau.
func TestFitSaturation(t *testing.T) {
	loads := []float64{1, 2, 4, 8, 16, 32}
	xs := []float64{100, 180, 290, 390, 440, 460}
	fit, err := FitUSL(loads, xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Sigma < 0.02 {
		t.Errorf("sigma = %v on a contention-dominated curve", fit.Sigma)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

// TestFitErrors pins the validation contract.
func TestFitErrors(t *testing.T) {
	if _, err := FitUSL([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("two points fitted")
	}
	if _, err := FitUSL([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("mismatched slices fitted")
	}
	if _, err := FitUSL([]float64{0, 1, 2}, []float64{0, 1, 2}); err == nil {
		t.Error("zero load fitted")
	}
	if _, err := FitUSL([]float64{5, 5, 5}, []float64{1, 1, 1}); err == nil {
		t.Error("three identical loads fitted")
	}
}

// TestFitDeterministic asserts bit-for-bit reproducibility — the CI
// gate depends on it.
func TestFitDeterministic(t *testing.T) {
	loads := []float64{10, 30, 90, 270, 810}
	xs := []float64{95, 260, 540, 700, 560}
	a, err := FitUSL(loads, xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitUSL(loads, xs)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("fit not deterministic: %+v vs %+v", a, b)
	}
}

// TestFitPointsSkipsDeadSteps asserts FitPoints drops zero-offered
// steps instead of failing the whole fit.
func TestFitPointsSkipsDeadSteps(t *testing.T) {
	pts := []Point{
		{OfferedRPS: 0, ThroughputRPS: 0},
		{OfferedRPS: 10, ThroughputRPS: 30},
		{OfferedRPS: 20, ThroughputRPS: 55},
		{OfferedRPS: 40, ThroughputRPS: 90},
	}
	if _, err := FitPoints(pts); err != nil {
		t.Fatal(err)
	}
}

// TestReportRoundTrip pins the BENCH_loadcurve.json schema: a report
// survives a JSON round trip and carries the schema version.
func TestReportRoundTrip(t *testing.T) {
	fit, err := FitUSL([]float64{10, 20, 40, 80}, []float64{90, 160, 250, 280})
	if err != nil {
		t.Fatal(err)
	}
	rep := Report{
		Schema:         SchemaVersion,
		Target:         "http://127.0.0.1:8080",
		Arrivals:       "poisson",
		Kind:           "lp",
		WarmupSeconds:  2,
		MeasureSeconds: 10,
		Points: []Point{{
			TargetRPS: 10, OfferedRPS: 9.8, ThroughputRPS: 9.7,
			ErrorRate: 0.01, Timeouts: 1, LateDispatches: 2,
			LatencyP50: 3 * time.Millisecond, LatencyP99: 20 * time.Millisecond,
		}},
		Fit: fit,
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.Fit == nil || *back.Fit != *fit {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if back.Points[0].LatencyP50 != 3*time.Millisecond {
		t.Errorf("latency field lost: %+v", back.Points[0])
	}
}
