// Package lowerbound implements the hard-instance constructions behind
// the paper's communication lower bounds (Section 4.2 and Theorem 4.8(2)).
//
// Lower bounds cannot be "run", but their reductions can: each
// construction here embeds a canonical hard communication problem
// (set-disjointness, the AND/DISJ/SUM distributions, Gap-ℓ∞) into a
// matrix-product instance, and the embedding is only valid if the
// resulting product exhibits the gap the reduction relies on. The
// experiments in the benchmark harness generate these instances and
// verify the gaps, which both validates the constructions and provides
// adversarial workloads for the upper-bound protocols.
package lowerbound

import (
	"repro/internal/bitmat"
	"repro/internal/intmat"
	"repro/internal/rng"
)

// DISJInstance is a two-party set-disjointness instance: Alice holds x,
// Bob holds y, and DISJ(x,y) = 1 iff some coordinate has x_i = y_i = 1.
type DISJInstance struct {
	X, Y []bool
}

// NewDISJ draws a random instance of length t. If intersect is true the
// instance is conditioned to have exactly one intersecting coordinate
// (the canonical hard regime); otherwise it has none.
func NewDISJ(r *rng.RNG, t int, intersect bool) DISJInstance {
	x := make([]bool, t)
	y := make([]bool, t)
	// Sparse random sets with no accidental intersections.
	for i := 0; i < t; i++ {
		switch r.Intn(4) {
		case 0:
			x[i] = true
		case 1:
			y[i] = true
		}
	}
	if intersect {
		i := r.Intn(t)
		x[i] = true
		y[i] = true
	}
	return DISJInstance{X: x, Y: y}
}

// Disjoint reports whether the instance is disjoint.
func (d DISJInstance) Disjoint() bool {
	for i := range d.X {
		if d.X[i] && d.Y[i] {
			return false
		}
	}
	return true
}

// EmbedDISJ is the reduction of Theorem 4.4: a DISJ instance on
// t = (n/2)² coordinates becomes Boolean matrices
//
//	A = [A′ I; 0 0],  B = [I 0; B′ 0]
//
// with A′ and B′ the (n/2)×(n/2) matrices whose entries are the
// coordinates of x and y. Then A·B = [A′+B′ 0; 0 0], so
// ‖AB‖∞ = ‖A′+B′‖∞ = 2 iff the instance intersects and ≤ 1 otherwise —
// a gap no 2-approximation can close without Ω(n²) bits.
// n must be even and t = (n/2)².
func EmbedDISJ(d DISJInstance, n int) (*bitmat.Matrix, *bitmat.Matrix) {
	half := n / 2
	if 2*half != n || len(d.X) != half*half || len(d.Y) != half*half {
		panic("lowerbound: EmbedDISJ needs even n and instances of length (n/2)²")
	}
	a := bitmat.New(n, n)
	b := bitmat.New(n, n)
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			if d.X[i*half+j] {
				a.Set(i, j, true) // A′ block
			}
			if d.Y[i*half+j] {
				b.Set(half+i, j, true) // B′ block, lower-left of B
			}
		}
		a.Set(i, half+i, true) // I block of A (upper-right)
		b.Set(i, i, true)      // I block of B (upper-left)
	}
	return a, b
}

// GapLinfInstance is the Gap-ℓ∞ problem: Alice holds x, Bob holds y in
// [0,κ]^t with the promise that either |x_i − y_i| ≤ 1 everywhere or
// |x_i − y_i| ≥ κ somewhere. Gap(x,y) = 1 in the second case.
type GapLinfInstance struct {
	X, Y  []int64
	Kappa int64
}

// NewGapLinf draws an instance of length t. If far is true one
// coordinate is planted at distance κ; otherwise all coordinates are
// within 1.
func NewGapLinf(r *rng.RNG, t int, kappa int64, far bool) GapLinfInstance {
	x := make([]int64, t)
	y := make([]int64, t)
	for i := 0; i < t; i++ {
		v := r.Int63n(kappa + 1)
		x[i] = v
		d := r.Int63n(3) - 1 // y within distance 1
		y[i] = v + d
		if y[i] < 0 {
			y[i] = 0
		}
		if y[i] > kappa {
			y[i] = kappa
		}
	}
	if far {
		i := r.Intn(t)
		x[i] = kappa
		y[i] = 0
	}
	return GapLinfInstance{X: x, Y: y, Kappa: kappa}
}

// Far reports whether some coordinate has |x_i − y_i| ≥ κ.
func (g GapLinfInstance) Far() bool {
	for i := range g.X {
		d := g.X[i] - g.Y[i]
		if d < 0 {
			d = -d
		}
		if d >= g.Kappa {
			return true
		}
	}
	return false
}

// EmbedGapLinf is the reduction of Theorem 4.8(2): the same identity-
// block trick as EmbedDISJ turns the coordinate-wise difference x − y
// into the product entries, so ‖AB‖∞ ≥ κ iff the instance is far and
// ≤ 1 otherwise (here B′ carries −y). n must be even with instances of
// length (n/2)².
func EmbedGapLinf(g GapLinfInstance, n int) (*intmat.Dense, *intmat.Dense) {
	half := n / 2
	if 2*half != n || len(g.X) != half*half || len(g.Y) != half*half {
		panic("lowerbound: EmbedGapLinf needs even n and instances of length (n/2)²")
	}
	a := intmat.NewDense(n, n)
	b := intmat.NewDense(n, n)
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			a.Set(i, j, g.X[i*half+j])
			b.Set(half+i, j, -g.Y[i*half+j])
		}
		a.Set(i, half+i, 1)
		b.Set(i, i, 1)
	}
	return a, b
}
