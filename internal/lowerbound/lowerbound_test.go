package lowerbound

import (
	"testing"

	"repro/internal/rng"
)

func TestDISJInstanceConstruction(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		d := NewDISJ(r, 64, false)
		if !d.Disjoint() {
			t.Fatal("non-intersecting instance intersects")
		}
		d = NewDISJ(r, 64, true)
		if d.Disjoint() {
			t.Fatal("intersecting instance is disjoint")
		}
	}
}

func TestEmbedDISJGap(t *testing.T) {
	// The Theorem 4.4 reduction: ‖AB‖∞ = 2 iff the instance intersects.
	r := rng.New(2)
	n := 16 // instances of length 64
	for trial := 0; trial < 20; trial++ {
		intersect := trial%2 == 0
		d := NewDISJ(r, (n/2)*(n/2), intersect)
		a, b := EmbedDISJ(d, n)
		max, _, _ := a.Mul(b).Linf()
		if intersect && max != 2 {
			t.Fatalf("intersecting: ‖AB‖∞ = %d, want 2", max)
		}
		if !intersect && max > 1 {
			t.Fatalf("disjoint: ‖AB‖∞ = %d, want ≤ 1", max)
		}
	}
}

func TestEmbedDISJRejectsBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EmbedDISJ(DISJInstance{X: make([]bool, 10), Y: make([]bool, 10)}, 16)
}

func TestGapLinfInstance(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		g := NewGapLinf(r, 64, 10, false)
		if g.Far() {
			t.Fatal("near instance is far")
		}
		g = NewGapLinf(r, 64, 10, true)
		if !g.Far() {
			t.Fatal("far instance is near")
		}
	}
}

func TestEmbedGapLinfGap(t *testing.T) {
	// The Theorem 4.8(2) reduction: ‖AB‖∞ ≥ κ iff the instance is far.
	r := rng.New(4)
	n := 16
	kappa := int64(8)
	for trial := 0; trial < 20; trial++ {
		far := trial%2 == 0
		g := NewGapLinf(r, (n/2)*(n/2), kappa, far)
		a, b := EmbedGapLinf(g, n)
		max, _, _ := a.Mul(b).Linf()
		if far && max < kappa {
			t.Fatalf("far: ‖AB‖∞ = %d, want ≥ %d", max, kappa)
		}
		if !far && max > 1 {
			t.Fatalf("near: ‖AB‖∞ = %d, want ≤ 1", max)
		}
	}
}

func TestSUMDistribution(t *testing.T) {
	r := rng.New(5)
	planted, unplanted := 0, 0
	for trial := 0; trial < 60; trial++ {
		inst := NewSUM(r, SUMParams{N: 128, Kappa: 2, BetaC: 2})
		sum := inst.Sum()
		if inst.Planted {
			planted++
			if sum < 1 {
				t.Fatal("planted instance has SUM = 0")
			}
		} else {
			unplanted++
			// ν draws never put mass on both sides of a coordinate, so
			// only the redrawn pair could intersect — and it did not.
			if sum != 0 {
				t.Fatalf("unplanted instance has SUM = %d", sum)
			}
		}
	}
	if planted < 15 || unplanted < 15 {
		t.Fatalf("µ coin badly skewed: %d planted, %d unplanted", planted, unplanted)
	}
}

func TestSUMEmbedIdentity(t *testing.T) {
	// The input reduction's load-bearing identity:
	// (AB)[i][j] = (n/k)·⟨U_i, V_j⟩, and a planted instance spikes the
	// diagonal entry (D, D) to at least n/k. (The full κ-gap between the
	// spike and the 2β²n background needs the paper's regime
	// n ≥ 200κ·ln n — thousands of rows — so the asymptotic gap itself is
	// an analytic consequence of this identity plus Chernoff, which is
	// what the harness's E11 experiment reports.)
	r := rng.New(6)
	params := SUMParams{N: 96, Kappa: 2, BetaC: 2}
	for trial := 0; trial < 8; trial++ {
		inst := NewSUM(r, params)
		a, b := inst.Embed()
		c := a.Mul(b)
		blocks := a.Cols() / inst.K
		// Spot-check the identity on a grid of entries.
		for i := 0; i < len(inst.U); i += 17 {
			for j := 0; j < len(inst.V); j += 13 {
				inner := int64(0)
				for t := 0; t < inst.K; t++ {
					if inst.U[i][t] && inst.V[j][t] {
						inner++
					}
				}
				if got := c.Get(i, j); got != int64(blocks)*inner {
					t.Fatalf("(AB)[%d][%d] = %d, want %d·%d", i, j, got, blocks, inner)
				}
			}
		}
		if inst.Planted {
			if got := c.Get(inst.D, inst.D); got < int64(blocks) {
				t.Fatalf("planted diagonal entry %d < n/k = %d", got, blocks)
			}
		}
	}
}

func TestSUMParamDefaults(t *testing.T) {
	inst := NewSUM(rng.New(7), SUMParams{N: 64, Kappa: 4})
	if inst.K < 1 || inst.K > 64 {
		t.Fatalf("k = %d out of range", inst.K)
	}
	if len(inst.U) != 64 || len(inst.V) != 64 {
		t.Fatal("wrong instance size")
	}
}
