package lowerbound

import (
	"math"

	"repro/internal/bitmat"
	"repro/internal/rng"
)

// SUMInstance is the composed hard distribution of Theorem 4.5/4.6: Alice
// holds U = (U_1, …, U_n) and Bob V = (V_1, …, V_n), each U_i, V_i ∈
// {0,1}^k, drawn from the distribution ϕ — every pair from the sparse
// disjoint distribution ν_k, except a random position D redrawn from µ_k,
// which plants an intersection with probability 1/2. SUM(U, V) =
// Σ_i DISJ(U_i, V_i) is then 0 or 1 with equal probability, and
// distinguishing the two cases costs Ω(βkn) bits (Theorem 4.6).
type SUMInstance struct {
	U, V [][]bool
	K    int
	// Planted reports whether the µ_1 coin planted the intersection
	// (SUM = 1); D and M locate it.
	Planted bool
	D, M    int
}

// SUMParams control the distribution's parameters. The paper sets
// β = √(50·ln n/n) and k = 1/(4κβ²); at benchmarkable n that makes
// k < 1, so BetaC is exposed (paper value 50) to let experiments reach
// the k ≥ 1 regime while preserving the construction's structure.
type SUMParams struct {
	N     int
	Kappa float64
	BetaC float64 // default 50 (the paper's constant)
}

// NewSUM draws an instance from the distribution ϕ.
func NewSUM(r *rng.RNG, p SUMParams) SUMInstance {
	if p.BetaC <= 0 {
		p.BetaC = 50
	}
	n := p.N
	beta := math.Sqrt(p.BetaC * math.Log(float64(n)) / float64(n))
	if beta > 1 {
		beta = 1
	}
	k := int(1 / (4 * p.Kappa * beta * beta))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	inst := SUMInstance{K: k}
	inst.U = make([][]bool, n)
	inst.V = make([][]bool, n)
	for i := 0; i < n; i++ {
		u := make([]bool, k)
		v := make([]bool, k)
		for t := 0; t < k; t++ {
			// ν_1: W uniform; the β-mass goes to exactly one side.
			if r.Bernoulli(beta) {
				if r.Intn(2) == 0 {
					u[t] = true
				} else {
					v[t] = true
				}
			}
		}
		inst.U[i] = u
		inst.V[i] = v
	}
	// Redraw (U_D, V_D) at coordinate M from µ_1.
	inst.D = r.Intn(n)
	inst.M = r.Intn(k)
	inst.Planted = r.Intn(2) == 1
	inst.U[inst.D][inst.M] = inst.Planted
	inst.V[inst.D][inst.M] = inst.Planted
	return inst
}

// Sum computes SUM(U, V) = Σ_i DISJ(U_i, V_i) exactly.
func (s SUMInstance) Sum() int {
	total := 0
	for i := range s.U {
		for t := range s.U[i] {
			if s.U[i][t] && s.V[i][t] {
				total++
				break
			}
		}
	}
	return total
}

// Embed performs the input reduction of Theorem 4.5: A consists of n/k
// horizontal copies of the n×k matrix whose i-th row is U_i, and B of
// n/k vertical copies of the k×n matrix whose j-th column is V_j. Then
// (AB)[i][j] = (n/k)·⟨U_i, V_j⟩, so a planted intersection forces
// ‖AB‖∞ ≥ n/k while the unplanted case concentrates below 2β²n — a gap
// of more than κ by the parameter choice.
func (s SUMInstance) Embed() (*bitmat.Matrix, *bitmat.Matrix) {
	n := len(s.U)
	blocks := n / s.K
	if blocks < 1 {
		blocks = 1
	}
	width := blocks * s.K
	a := bitmat.New(n, width)
	b := bitmat.New(width, n)
	for z := 0; z < blocks; z++ {
		off := z * s.K
		for i := 0; i < n; i++ {
			for t := 0; t < s.K; t++ {
				if s.U[i][t] {
					a.Set(i, off+t, true)
				}
				if s.V[i][t] {
					b.Set(off+t, i, true)
				}
			}
		}
	}
	return a, b
}
