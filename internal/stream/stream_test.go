package stream

import (
	"math"
	"testing"

	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
	"repro/internal/sketch"
)

func TestDynamicMatchesBatch(t *testing.T) {
	// Stream random updates (including deletions); the maintained row
	// sketches must equal batch sketches of the materialized matrix.
	n, m2 := 32, 40
	d := NewDynamicJoin(5, n, m2, 0.5)
	shadow := intmat.NewDense(n, m2)
	r := rng.New(6)
	for u := 0; u < 2000; u++ {
		k, j := r.Intn(n), r.Intn(m2)
		delta := r.Int63n(7) - 3
		d.Update(k, j, delta)
		shadow.Add(k, j, delta)
	}
	batch := sketch.NewL0(rng.New(5).Derive("dynjoin"), m2, 32)
	for k := 0; k < n; k++ {
		want := batch.Apply(shadow.Row(k))
		got := d.RowSketch(k)
		if len(want) != len(got) {
			t.Fatal("sketch sizes differ")
		}
		for x := range want {
			if want[x] != field.Elem(got[x]) {
				t.Fatalf("row %d sketch differs at word %d", k, x)
			}
		}
	}
}

func TestDynamicDeletionsCancelExactly(t *testing.T) {
	// Insert then delete everything: the state must return to all-zero.
	n, m2 := 16, 16
	d := NewDynamicJoin(7, n, m2, 0.5)
	type upd struct {
		k, j  int
		delta int64
	}
	var history []upd
	r := rng.New(8)
	for u := 0; u < 300; u++ {
		h := upd{k: r.Intn(n), j: r.Intn(m2), delta: 1 + r.Int63n(5)}
		history = append(history, h)
		d.Update(h.k, h.j, h.delta)
	}
	for _, h := range history {
		d.Update(h.k, h.j, -h.delta)
	}
	for k := 0; k < n; k++ {
		for x, w := range d.RowSketch(k) {
			if w != 0 {
				t.Fatalf("row %d word %d non-zero after full cancellation", k, x)
			}
		}
	}
}

func TestDynamicEstimateAccuracy(t *testing.T) {
	n, m2 := 96, 96
	d := NewDynamicJoin(9, n, m2, 0.4)
	shadow := intmat.NewDense(n, m2)
	r := rng.New(10)
	for u := 0; u < 900; u++ {
		k, j := r.Intn(n), r.Intn(m2)
		d.Update(k, j, 1)
		shadow.Add(k, j, 1)
	}
	a := intmat.NewDense(96, n)
	for i := 0; i < 96; i++ {
		for k := 0; k < n; k++ {
			if r.Bernoulli(0.08) {
				a.Set(i, k, 1)
			}
		}
	}
	truth := float64(a.Mul(shadow).L0())
	est, stats, err := d.EstimateJoinSize(a)
	if err != nil {
		t.Fatal(err)
	}
	if truth == 0 {
		t.Skip("degenerate")
	}
	if rel := math.Abs(est-truth) / truth; rel > 0.45 {
		t.Fatalf("dynamic estimate %v vs truth %v (rel %.3f)", est, truth, rel)
	}
	if stats.Rounds != 1 {
		t.Fatalf("rounds = %d", stats.Rounds)
	}
	if stats.BitsAliceToBob != 0 {
		t.Fatal("query sent Alice→Bob traffic")
	}
}

func TestDynamicEstimateTracksChanges(t *testing.T) {
	// The estimate must move with the data: grow B and watch the join
	// size estimate grow.
	n, m2 := 64, 64
	d := NewDynamicJoin(11, n, m2, 0.4)
	r := rng.New(12)
	a := intmat.NewDense(64, n)
	for i := 0; i < 64; i++ {
		for k := 0; k < n; k++ {
			if r.Bernoulli(0.1) {
				a.Set(i, k, 1)
			}
		}
	}
	shadow := intmat.NewDense(n, m2)
	for phase := 0; phase < 3; phase++ {
		for u := 0; u < 80; u++ {
			k, j := r.Intn(n), r.Intn(m2)
			d.Update(k, j, 1)
			shadow.Add(k, j, 1)
		}
		est, _, err := d.EstimateJoinSize(a)
		if err != nil {
			t.Fatal(err)
		}
		truth := float64(a.Mul(shadow).L0())
		if truth == 0 {
			continue
		}
		if rel := math.Abs(est-truth) / truth; rel > 0.5 {
			t.Fatalf("phase %d: estimate %v vs truth %v (rel %.3f)", phase, est, truth, rel)
		}
	}
}

func TestDynamicErrors(t *testing.T) {
	d := NewDynamicJoin(13, 8, 8, 0.5)
	if _, _, err := d.EstimateJoinSize(intmat.NewDense(4, 9)); err == nil {
		t.Fatal("dimension mismatch not reported")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range update did not panic")
		}
	}()
	d.Update(8, 0, 1)
}

func TestDynamicBadEpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad eps did not panic")
		}
	}()
	NewDynamicJoin(1, 4, 4, 0)
}
