// Package stream adapts the protocols' linear sketches to dynamic
// (turnstile) inputs: Bob's matrix B evolves under single-entry updates
// (k, j, Δ), and because every sketch in this repository is linear, his
// per-row sketch state absorbs each update in O(sketch entries touched)
// time without ever storing B. A join-size query then replays round 1
// of the one-round estimation protocol from the maintained state.
//
// This is the setting the paper inherits from the data-stream
// literature ([8, 14, 20, 21, 30] there): linear sketches are exactly
// the summaries that survive insertions and deletions.
package stream

import (
	"math"

	"repro/internal/comm"
	"repro/internal/field"
	"repro/internal/intmat"
	"repro/internal/rng"
	"repro/internal/sketch"
)

// DynamicJoin maintains Bob's side of the one-round composition-size
// (‖AB‖0) protocol over an evolving matrix B ∈ Z^{n×m2}: Update feeds
// entry deltas into the per-row ℓ0 sketches, and EstimateJoinSize runs
// the one-round protocol from the current state against a (current)
// matrix held by Alice.
//
// The state is the sketches alone — B itself is never stored — so
// memory is Õ(n/ε²) regardless of how many updates stream through.
type DynamicJoin struct {
	n, m2 int
	eps   float64
	sk    *sketch.L0
	rows  [][]field.Elem // Bob's per-row-of-B sketch state
}

// NewDynamicJoin creates the maintained state for B ∈ Z^{n×m2},
// starting from the zero matrix. eps controls the per-row sketch
// accuracy exactly as in core.OneRoundLp; seed is the shared
// public-coin seed (Alice derives the same sketch for estimation).
func NewDynamicJoin(seed uint64, n, m2 int, eps float64) *DynamicJoin {
	if eps <= 0 || eps > 1 {
		panic("stream: eps out of range")
	}
	buckets := int(math.Ceil(8 / (eps * eps)))
	if buckets < 4 {
		buckets = 4
	}
	sk := sketch.NewL0(rng.New(seed).Derive("dynjoin"), m2, buckets)
	d := &DynamicJoin{n: n, m2: m2, eps: eps, sk: sk}
	d.rows = make([][]field.Elem, n)
	for k := range d.rows {
		d.rows[k] = make([]field.Elem, sk.Dim())
	}
	return d
}

// Update applies B[k][j] += delta to the maintained sketches.
func (d *DynamicJoin) Update(k, j int, delta int64) {
	if k < 0 || k >= d.n || j < 0 || j >= d.m2 {
		panic("stream: update out of range")
	}
	if delta == 0 {
		return
	}
	d.sk.AddCoord(d.rows[k], j, delta)
}

// RowSketch exposes the maintained sketch of row k (aliased; callers
// must not modify it). Tests use it to check batch equivalence.
func (d *DynamicJoin) RowSketch(k int) []field.Elem { return d.rows[k] }

// EstimateJoinSize runs round 1 of the one-round ‖AB‖0 protocol from
// the maintained state: Bob ships the current row sketches, Alice
// combines them along her rows of A and sums the per-row estimates.
// The result matches core.OneRoundLp on the materialized B up to the
// protocols' differing repetition defaults (this maintained variant is
// single-shot: the state is one sketch family).
func (d *DynamicJoin) EstimateJoinSize(a *intmat.Dense) (float64, comm.Stats, error) {
	if a.Cols() != d.n {
		return 0, comm.Stats{}, errDimension
	}
	conn := comm.NewConn()
	msg := comm.NewMessage()
	for k := 0; k < d.n; k++ {
		msg.PutUint64Slice(d.rows[k])
	}
	recv := conn.Send(comm.BobToAlice, msg)

	received := make([][]field.Elem, d.n)
	for k := range received {
		received[k] = recv.Uint64Slice()
	}
	total := 0.0
	acc := make([]field.Elem, d.sk.Dim())
	for i := 0; i < a.Rows(); i++ {
		for x := range acc {
			acc[x] = 0
		}
		any := false
		for k, v := range a.Row(i) {
			if v != 0 {
				sketch.AxpyField(acc, v, received[k])
				any = true
			}
		}
		if !any {
			continue
		}
		if e := d.sk.Estimate(acc); e > 0 {
			total += e
		}
	}
	return total, conn.Stats(), nil
}

var errDimension = dimensionError{}

type dimensionError struct{}

func (dimensionError) Error() string {
	return "stream: A's inner dimension does not match the maintained state"
}
