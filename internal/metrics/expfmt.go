package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text
// exposition format this package renders.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry's exposition at GET, with the version
// 0.0.4 text content type.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		bw := bufio.NewWriter(w)
		r.WriteText(bw) //nolint:errcheck // a broken client connection is not actionable
		bw.Flush()
	})
}

// WriteText renders every registered family in the Prometheus text
// format: families in registration order, series within a family
// sorted by label values, so the output is deterministic for a given
// registry state.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	if f.collect != nil {
		return f.writeSamples(w)
	}
	for _, c := range f.sortedChildren() {
		var err error
		switch m := c.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, m.lv, "", ""), formatValue(m.Value()))
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, m.lv, "", ""), formatValue(m.Value()))
		case *Histogram:
			err = writeHistogram(w, f, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeSamples renders a func-backed family, sorting the collected
// samples by label values for determinism.
func (f *family) writeSamples(w io.Writer) error {
	samples := f.collect()
	sort.Slice(samples, func(i, j int) bool {
		return childKey(samples[i].Labels) < childKey(samples[j].Labels)
	})
	for _, s := range samples {
		if len(s.Labels) != len(f.labels) {
			return fmt.Errorf("metrics: %q collector returned %d label values, want %d", f.name, len(s.Labels), len(f.labels))
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.Labels, "", ""), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count.
func writeHistogram(w io.Writer, f *family, h *Histogram) error {
	cum, count, sum := h.snapshot()
	for i, ub := range h.buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, h.lv, "le", formatValue(ub)), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(f.labels, h.lv, "le", "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, h.lv, "", ""), formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, h.lv, "", ""), count)
	return err
}

// labelString renders {k="v",...}, appending the extra pair (the
// histogram "le") when extraName is non-empty; no labels renders as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// lintLine matches one well-formed text-format line: a HELP/TYPE
// comment or a sample with an optional label set and a numeric value.
var lintLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9].*|[+-]Inf|NaN))$`)

// LintText validates an exposition body line by line against the text
// format's grammar and returns the offending lines (nil when clean).
// The service and gateway /metrics end-to-end tests use it to assert
// the whole scrape parses.
func LintText(text string) []string {
	var bad []string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !lintLine.MatchString(line) {
			bad = append(bad, line)
		}
	}
	return bad
}

// formatValue renders a sample value: integral values print without an
// exponent (counters read naturally), everything else in the shortest
// round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
