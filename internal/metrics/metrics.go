// Package metrics is a dependency-free metrics layer exposing counter,
// gauge, and histogram families in the Prometheus text exposition
// format (text/plain; version=0.0.4). It exists because the module has
// zero external dependencies and keeps that property while giving the
// service and gateway tiers a scrapeable /metrics endpoint.
//
// The design splits the cost of a metric into a cold resolution step
// and a hot observation step:
//
//   - Resolution (NewCounterVec + With) takes the family lock once and
//     returns a handle bound to one label set. Call sites resolve their
//     handles at construction time.
//   - Observation (Inc, Add, Observe) on a resolved handle is lock-free:
//     no map lookup, no mutex — only atomic adds on cache-line-padded
//     cells. Counters and histogram shards are striped across a small
//     set of cells handed out per P through a sync.Pool, so concurrent
//     writers on different Ps land on different cache lines.
//
// Families whose values already exist elsewhere (an engine's stats
// counters) register as func-backed families (CounterFunc, GaugeFunc):
// the collector callback is invoked only at export time, so mirroring
// an existing counter into /metrics costs nothing on the serving path
// and the two surfaces can never disagree.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric and label names must match the Prometheus data model.
var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// familyKind is the TYPE line of a family.
type familyKind string

const (
	kindCounter   familyKind = "counter"
	kindGauge     familyKind = "gauge"
	kindHistogram familyKind = "histogram"
)

// Sample is one exported time series of a func-backed family: its
// label values (matching the family's label names) and current value.
type Sample struct {
	// Labels are the label values, positionally matching the family's
	// declared label names.
	Labels []string
	// Value is the sample's current value.
	Value float64
}

// Registry holds metric families and renders them in the Prometheus
// text format. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family: a fixed label-name schema plus
// either materialized children (atomic handles) or a collect callback.
type family struct {
	name   string
	help   string
	kind   familyKind
	labels []string
	// buckets are the histogram upper bounds (histogram families only).
	buckets []float64

	mu       sync.Mutex
	children map[string]child // key: label values joined with 0xff
	// collect, when non-nil, makes this a func-backed family sampled at
	// export time instead of holding children.
	collect func() []Sample
}

// child is one materialized (label-resolved) metric of a family.
type child interface {
	labelValues() []string
}

// register validates and installs a family, panicking on programmer
// errors (invalid or duplicate names): metric registration happens at
// construction time, where failing loudly beats serving a broken
// exposition.
func (r *Registry) register(f *family) *family {
	if !nameRe.MatchString(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q in %q", l, f.name))
		}
		if f.kind == kindHistogram && l == "le" {
			panic(fmt.Sprintf("metrics: histogram %q reserves the %q label", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", f.name))
	}
	f.children = make(map[string]child)
	r.byName[f.name] = f
	r.fams = append(r.fams, f)
	return f
}

// childKey joins label values into the family's children map key.
func childKey(values []string) string { return strings.Join(values, "\xff") }

// resolve fetches or creates the child for one label-value set.
func (f *family) resolve(values []string, build func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := build()
	f.children[key] = c
	return c
}

// sortedChildren snapshots the children ordered by label values, for a
// deterministic exposition.
func (f *family) sortedChildren() []child {
	f.mu.Lock()
	defer f.mu.Unlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]child, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.children[k])
	}
	return out
}

// ---------------------------------------------------------------------
// Striped atomic cells — the hot-path storage.

// stripeCells bounds the cells a striped value fans out across. Small:
// the point is to split a contended cache line across Ps, not to scale
// with goroutine count.
const stripeCells = 8

// cell is one cache-line-padded atomic float64 (stored as bits).
type cell struct {
	bits atomic.Uint64
	_    [56]byte // pad to a 64-byte line so neighbor cells never share one
}

// addFloat atomically adds v to a float64-bits cell.
//
//mp:hotpath
func addFloat(c *atomic.Uint64, v float64) {
	for {
		old := c.Load()
		if c.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// striper hands out cell indices through a sync.Pool. Get is satisfied
// from the calling P's private slot nearly always, so goroutines on
// different Ps observe into different cells without sharing any state
// on the hot path; the index is put straight back so the P keeps it.
// Pool evictions only lose the index (new ones are dealt round-robin),
// never any counted value — the cells themselves are persistent.
type striper struct {
	pool sync.Pool
	next atomic.Uint32
}

//mp:hotpath
func (s *striper) idx() int {
	if v := s.pool.Get(); v != nil {
		i := v.(int)
		s.pool.Put(v)
		return i
	}
	i := int(s.next.Add(1)-1) % stripeCells
	s.pool.Put(i) //mp:alloc-ok first use per P only; small-int boxing hits the runtime's static cache, pinned by the zero-alloc test
	return i
}

// ---------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing value resolved to one label
// set. Inc and Add are lock-free and safe for concurrent use.
type Counter struct {
	vals [stripeCells]cell
	st   striper
	lv   []string
}

func (c *Counter) labelValues() []string { return c.lv }

// Inc adds 1.
//
//mp:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative (counters are monotone);
// negative deltas are dropped.
//
//mp:hotpath
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.vals[c.st.idx()].bits, v)
}

// Value sums the counter's cells.
func (c *Counter) Value() float64 {
	var sum float64
	for i := range c.vals {
		sum += math.Float64frombits(c.vals[i].bits.Load())
	}
	return sum
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(&family{name: name, help: help, kind: kindCounter, labels: labelNames})}
}

// NewCounter registers a label-less counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.NewCounterVec(name, help).With()
}

// With resolves the counter for one label-value set. Resolution takes
// the family lock; call sites should resolve once and keep the handle.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.resolve(labelValues, func() child { return &Counter{lv: labelValues} }).(*Counter)
}

// ---------------------------------------------------------------------
// Gauge

// Gauge is a value that can go up and down, resolved to one label set.
// All methods are lock-free and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
	lv   []string
}

func (g *Gauge) labelValues() []string { return g.lv }

// Set replaces the gauge's value.
//
//mp:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
//
//mp:hotpath
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1.
//
//mp:hotpath
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
//
//mp:hotpath
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(&family{name: name, help: help, kind: kindGauge, labels: labelNames})}
}

// NewGauge registers a label-less gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.NewGaugeVec(name, help).With()
}

// With resolves the gauge for one label-value set.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.resolve(labelValues, func() child { return &Gauge{lv: labelValues} }).(*Gauge)
}

// ---------------------------------------------------------------------
// Histogram

// histShard is one stripe of a histogram: per-bucket counts plus the
// running sum. Padding keeps shards on distinct cache lines.
type histShard struct {
	counts []atomic.Uint64 // len(buckets)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	_      [48]byte
}

// Histogram observes float64 values into fixed buckets, resolved to
// one label set. Observe is lock-free: one atomic add on the bucket
// count and a CAS-add on the shard sum, striped across shards.
type Histogram struct {
	buckets []float64 // upper bounds, sorted ascending (+Inf implicit)
	shards  []histShard
	st      striper
	lv      []string
}

func (h *Histogram) labelValues() []string { return h.lv }

// Observe records one value.
//
//mp:hotpath
func (h *Histogram) Observe(v float64) {
	sh := &h.shards[h.st.idx()]
	// First bucket whose upper bound is ≥ v — the Prometheus "le"
	// contract. Beyond every bound lands in +Inf.
	i := sort.SearchFloat64s(h.buckets, v)
	sh.counts[i].Add(1)
	addFloat(&sh.sum, v)
}

// snapshot merges the shards into cumulative bucket counts, the total
// count, and the sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.buckets)+1)
	for s := range h.shards {
		for i := range h.shards[s].counts {
			cum[i] += h.shards[s].counts[i].Load()
		}
		sum += math.Float64frombits(h.shards[s].sum.Load())
	}
	var running uint64
	for i := range cum {
		running += cum[i]
		cum[i] = running
	}
	return cum, running, sum
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	_, n, _ := h.snapshot()
	return n
}

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 {
	_, _, s := h.snapshot()
	return s
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a histogram family. buckets are the upper
// bounds in ascending order; the +Inf bucket is implicit. An empty
// slice uses DefBuckets.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	bs := make([]float64, len(buckets))
	copy(bs, buckets)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly ascending", name))
		}
	}
	return &HistogramVec{f: r.register(&family{
		name: name, help: help, kind: kindHistogram, labels: labelNames, buckets: bs,
	})}
}

// NewHistogram registers a label-less histogram.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.NewHistogramVec(name, help, buckets).With()
}

// With resolves the histogram for one label-value set.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.resolve(labelValues, func() child {
		h := &Histogram{buckets: v.f.buckets, shards: make([]histShard, stripeCells), lv: labelValues}
		for i := range h.shards {
			h.shards[i].counts = make([]atomic.Uint64, len(v.f.buckets)+1)
		}
		return h
	}).(*Histogram)
}

// DefBuckets is the default latency bucket layout (seconds): 100µs to
// ~13s in powers of 2 — wide enough to cover both sub-millisecond
// cached serves and multi-second saturation queueing.
func DefBuckets() []float64 { return ExpBuckets(100e-6, 2, 18) }

// ExpBuckets returns count exponentially spaced upper bounds starting
// at start and growing by factor.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, count ≥ 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ---------------------------------------------------------------------
// Func-backed families

// CounterFunc registers a counter family whose samples are produced by
// collect at export time. Use it to mirror counters that already exist
// (an engine's stats) into the exposition with zero hot-path cost; the
// values collect reports must be monotone.
func (r *Registry) CounterFunc(name, help string, labelNames []string, collect func() []Sample) {
	r.register(&family{name: name, help: help, kind: kindCounter, labels: labelNames, collect: collect})
}

// GaugeFunc registers a gauge family whose samples are produced by
// collect at export time (occupancy, sizes, configuration values).
func (r *Registry) GaugeFunc(name, help string, labelNames []string, collect func() []Sample) {
	r.register(&family{name: name, help: help, kind: kindGauge, labels: labelNames, collect: collect})
}
