package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text rendered for one family of
// each kind: HELP/TYPE lines, label rendering, histogram cumulative
// buckets with _sum and _count, and deterministic series order.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounterVec("app_requests_total", "Requests served.", "kind", "outcome")
	reqs.With("lp", "ok").Add(41)
	reqs.With("lp", "ok").Inc()
	reqs.With("exact", "error").Inc()
	g := r.NewGauge("app_workers_busy", "Busy worker slots.")
	g.Set(3)
	h := r.NewHistogram("app_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.7)
	h.Observe(99)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{kind="exact",outcome="error"} 1
app_requests_total{kind="lp",outcome="ok"} 42
# HELP app_workers_busy Busy worker slots.
# TYPE app_workers_busy gauge
app_workers_busy 3
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 2
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="10"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 99.8
app_latency_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFuncFamilies pins func-backed families: sampled at export time,
// sorted by label values.
func TestFuncFamilies(t *testing.T) {
	r := NewRegistry()
	n := 0
	r.CounterFunc("app_evictions_total", "Evictions.", nil, func() []Sample {
		n += 7
		return []Sample{{Value: float64(n)}}
	})
	r.GaugeFunc("app_backend_healthy", "Backend health.", []string{"backend"}, func() []Sample {
		return []Sample{
			{Labels: []string{"b"}, Value: 0},
			{Labels: []string{"a"}, Value: 1},
		}
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_evictions_total Evictions.
# TYPE app_evictions_total counter
app_evictions_total 7
# HELP app_backend_healthy Backend health.
# TYPE app_backend_healthy gauge
app_backend_healthy{backend="a"} 1
app_backend_healthy{backend="b"} 0
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// A second export re-samples the collector.
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "app_evictions_total 14") {
		t.Errorf("func counter not re-sampled:\n%s", b.String())
	}
}

// TestLabelEscaping pins backslash/quote/newline escaping in label
// values and HELP text.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("esc_total", "line one\nwith \\ slash", "path")
	c.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP esc_total line one\nwith \\ slash
# TYPE esc_total counter
esc_total{path="a\"b\\c\nd"} 1
`
	if got := b.String(); got != want {
		t.Errorf("escaping mismatch:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// TestWithReturnsSameHandle pins the pre-resolution contract: the same
// label values resolve to the same handle, so call sites may resolve
// once and increments from any copy aggregate.
func TestWithReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("x_total", "", "k")
	a, b := v.With("q"), v.With("q")
	if a != b {
		t.Fatal("With returned distinct handles for identical label values")
	}
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("aggregated value = %v, want 2", got)
	}
}

// TestHistogramBucketBoundaries pins the "le" contract: a value equal
// to an upper bound lands in that bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("hb", "", []float64{1, 2})
	h.Observe(1) // exactly on the first bound → le="1"
	h.Observe(2) // exactly on the second → le="2"
	h.Observe(3) // beyond → +Inf only
	cum, count, sum := h.snapshot()
	if cum[0] != 1 || cum[1] != 2 || count != 3 {
		t.Fatalf("cumulative = %v count = %d, want [1 2] 3", cum, count)
	}
	if sum != 6 {
		t.Fatalf("sum = %v, want 6", sum)
	}
}

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram from many goroutines (with concurrent exports mixed in)
// and asserts the exact totals: the striped cells must lose nothing.
// Run under -race this is also the layer's data-race test.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("cc_total", "", "k").With("a")
	g := r.NewGauge("cg", "")
	h := r.NewHistogram("ch_seconds", "", []float64{0.5})
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2)) // alternates the two buckets
				if i%500 == 0 {
					r.WriteText(io.Discard) //nolint:errcheck
				}
			}
		}(w)
	}
	wg.Wait()
	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %v, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	cum, count, sum := h.snapshot()
	if count != total || cum[0] != total/2 || sum != total/2 {
		t.Errorf("histogram count=%d cum=%v sum=%v, want %d [%d] %d", count, cum, sum, total, total/2, total/2)
	}
}

// TestHandlerContentType pins the scrape content type and that the
// body parses as series lines.
func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("one_total", "One.").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, TextContentType)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "one_total 1") {
		t.Errorf("body missing series:\n%s", body)
	}
}

// TestLintText exercises the exposition linter both ways: a valid
// export lints clean, and mangled lines are reported.
func TestLintText(t *testing.T) {
	r := NewRegistry()
	r.NewCounterVec("lint_total", "Lint.", "k").With("v").Inc()
	r.NewHistogram("lint_seconds", "", []float64{0.1}).Observe(0.2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if bad := LintText(b.String()); len(bad) != 0 {
		t.Errorf("valid exposition flagged: %q", bad)
	}
	if bad := LintText("0bad_name 1\nok_total{} \n"); len(bad) != 2 {
		t.Errorf("mangled exposition not flagged: %q", bad)
	}
}

// TestRegisterPanics pins the loud-failure contract for programmer
// errors: bad names, duplicate names, bad buckets, arity mismatches.
func TestRegisterPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ok_total", "")
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"bad metric name", func() { r.NewCounter("0bad", "") }},
		{"bad label name", func() { r.NewCounterVec("p1_total", "", "0bad") }},
		{"duplicate name", func() { r.NewCounter("ok_total", "") }},
		{"duplicate across kinds", func() { r.NewGauge("ok_total", "") }},
		{"reserved le", func() { r.NewHistogramVec("p2", "", nil, "le") }},
		{"bad buckets", func() { r.NewHistogram("p3", "", []float64{2, 1}) }},
		{"arity mismatch", func() { r.NewCounterVec("p4_total", "", "k").With("x", "y") }},
		{"bad exp buckets", func() { ExpBuckets(0, 2, 3) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().NewCounterVec("bench_total", "", "k").With("v")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().NewHistogram("bench_seconds", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-5)
			i++
		}
	})
}
