package matprod

import (
	"math"
	"testing"
)

func testSets(n int, seed uint64) (*BoolMatrix, *BoolMatrix) {
	// Deterministic pseudo-random sets without importing internal/rng in
	// the public-facing test: linear congruential steps are plenty here.
	state := seed | 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	a := NewBoolMatrix(n, n)
	b := NewBoolMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if next()%10 == 0 {
				a.Set(i, j, true)
			}
			if next()%10 == 0 {
				b.Set(j, i, true)
			}
		}
	}
	return a, b
}

func TestPublicCompositionSize(t *testing.T) {
	a, b := testSets(96, 11)
	truth := float64(a.ToInt().Mul(b.ToInt()).L0())
	est, cost, err := CompositionSize(a, b, LpOptions{Eps: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth)/truth > 0.35 {
		t.Fatalf("composition size %v vs truth %v", est, truth)
	}
	if cost.Rounds != 2 {
		t.Fatalf("rounds = %d", cost.Rounds)
	}
}

func TestPublicNaturalJoinSize(t *testing.T) {
	a, b := testSets(64, 12)
	got, _, err := NaturalJoinSize(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := a.ToInt().Mul(b.ToInt()).L1(); got != want {
		t.Fatalf("join size %d, want %d", got, want)
	}
}

func TestPublicMaxOverlapPair(t *testing.T) {
	a, b := testSets(64, 13)
	// Plant a dominant pair.
	for k := 0; k < 40; k++ {
		a.Set(10, k, true)
		b.Set(k, 20, true)
	}
	truth, _ := a.Mul(b).Linf()
	est, pair, _, err := MaxOverlapPair(a, b, LinfOptions{Eps: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est < float64(truth)/3 {
		t.Fatalf("max overlap estimate %v vs truth %d", est, truth)
	}
	if got := a.Mul(b).Get(pair.I, pair.J); float64(got) < est/1.01 {
		t.Fatalf("witness pair value %d below estimate %v", got, est)
	}
}

func TestPublicRandomJoiningPair(t *testing.T) {
	a, b := testSets(48, 14)
	c := a.Mul(b)
	pair, v, _, err := RandomJoiningPair(a, b, L0SampleOptions{Eps: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Get(pair.I, pair.J) == 0 || v != c.Get(pair.I, pair.J) {
		t.Fatalf("sampled (%v, %d) inconsistent with product", pair, v)
	}
}

func TestPublicRandomJoinTuple(t *testing.T) {
	a, b := testSets(48, 15)
	i, k, j, _, err := RandomJoinTuple(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Get(i, k) || !b.Get(k, j) {
		t.Fatalf("tuple (%d,%d,%d) is not in the join", i, k, j)
	}
}

func TestPublicHeavyHittersBinary(t *testing.T) {
	a, b := testSets(96, 16)
	for k := 0; k < 60; k++ {
		a.Set(5, k, true)
		b.Set(k, 7, true)
	}
	c := a.Mul(b)
	phi := 0.1
	norm := float64(c.L1())
	out, _, err := OverlapsAboveThreshold(a, b, HHBinaryOptions{Phi: phi, Eps: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, wp := range out {
		if wp.I == 5 && wp.J == 7 {
			found = true
		}
	}
	if heavy := float64(c.Get(5, 7)); heavy >= phi*norm && !found {
		t.Fatalf("planted heavy pair (share %.3f) not found; got %v", heavy/norm, out)
	}
}

func TestPublicDistributedProduct(t *testing.T) {
	a := NewIntMatrix(32, 32)
	b := NewIntMatrix(32, 32)
	a.Set(3, 4, 5)
	a.Set(9, 2, -1)
	b.Set(4, 8, 2)
	b.Set(2, 30, 7)
	want := a.Mul(b)
	ca, cb, _, err := DistributedProduct(a, b, MatMulOptions{Sparsity: 8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !ca.Add(cb).Equal(want) {
		t.Fatal("CA + CB != AB")
	}
}

func TestPublicNaive(t *testing.T) {
	a, b := testSets(40, 17)
	st, cost, err := NaiveExact(a, b)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Mul(b)
	if st.L0 != int64(c.L0()) || st.L1 != c.L1() {
		t.Fatal("naive stats mismatch")
	}
	if cost.Bits < int64(40*40) {
		t.Fatal("naive bits below matrix size")
	}
}

func TestBoolMatrixFromSets(t *testing.T) {
	m := BoolMatrixFromSets([][]int{{0, 2}, {1}}, 4)
	if !m.Get(0, 0) || !m.Get(0, 2) || !m.Get(1, 1) || m.Get(0, 1) {
		t.Fatal("FromSets entries wrong")
	}
	if m.Rows() != 2 || m.Cols() != 4 {
		t.Fatal("FromSets shape wrong")
	}
	if m.Weight() != 3 {
		t.Fatal("FromSets weight wrong")
	}
}

func TestMatrixAccessors(t *testing.T) {
	a := NewIntMatrix(3, 3)
	a.Set(1, 2, -9)
	if a.Get(1, 2) != -9 || a.L0() != 1 || a.L1() != 9 {
		t.Fatal("IntMatrix accessors wrong")
	}
	v, p := a.Linf()
	if v != 9 || p != (Pair{I: 1, J: 2}) {
		t.Fatal("Linf wrong")
	}
	if a.Lp(2) != 81 {
		t.Fatal("Lp wrong")
	}
	bm := NewBoolMatrix(2, 3)
	bm.Set(0, 1, true)
	tr := bm.Transpose()
	if !tr.Get(1, 0) || tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("Transpose wrong")
	}
	if bm.ToInt().Get(0, 1) != 1 {
		t.Fatal("ToInt wrong")
	}
}

func TestPublicEstimateLinfGeneral(t *testing.T) {
	a := NewIntMatrix(48, 48)
	b := NewIntMatrix(48, 48)
	a.Set(0, 0, 50)
	b.Set(0, 0, 60) // C[0][0] = 3000
	est, _, err := EstimateLinfGeneral(a, b, LinfGeneralOptions{Kappa: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if est < 1500 || est > 18000 {
		t.Fatalf("general ℓ∞ estimate %v for truth 3000, κ=3", est)
	}
}
