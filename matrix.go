package matprod

import (
	"repro/internal/bitmat"
	"repro/internal/intmat"
)

// BoolMatrix is a dense bit-packed Boolean matrix — Alice's input when
// rows are interpreted as sets A_i ⊆ [n], Bob's when columns are sets
// B_j ⊆ [n].
type BoolMatrix struct {
	m *bitmat.Matrix
}

// NewBoolMatrix returns an all-zero rows×cols Boolean matrix.
func NewBoolMatrix(rows, cols int) *BoolMatrix {
	return &BoolMatrix{m: bitmat.New(rows, cols)}
}

// BoolMatrixFromSets builds the matrix whose i-th row is the indicator
// vector of sets[i] over the universe [cols] — the set-family view from
// the paper's join applications.
func BoolMatrixFromSets(sets [][]int, cols int) *BoolMatrix {
	m := bitmat.New(len(sets), cols)
	for i, set := range sets {
		for _, j := range set {
			m.Set(i, j, true)
		}
	}
	return &BoolMatrix{m: m}
}

// Set assigns entry (i, j).
func (b *BoolMatrix) Set(i, j int, v bool) { b.m.Set(i, j, v) }

// Get returns entry (i, j).
func (b *BoolMatrix) Get(i, j int) bool { return b.m.Get(i, j) }

// Rows returns the number of rows.
func (b *BoolMatrix) Rows() int { return b.m.Rows() }

// Cols returns the number of columns.
func (b *BoolMatrix) Cols() int { return b.m.Cols() }

// Weight returns the number of 1-entries.
func (b *BoolMatrix) Weight() int { return b.m.Weight() }

// Transpose returns the transpose — handy for building Bob's matrix from
// column sets expressed as rows.
func (b *BoolMatrix) Transpose() *BoolMatrix { return &BoolMatrix{m: b.m.Transpose()} }

// ToInt converts to an IntMatrix with 0/1 entries, as required by the
// protocols stated for integer inputs.
func (b *BoolMatrix) ToInt() *IntMatrix { return &IntMatrix{m: b.m.ToInt()} }

// Mul computes the exact integer product — local ground truth, not a
// protocol (it requires both matrices on one machine).
func (b *BoolMatrix) Mul(o *BoolMatrix) *IntMatrix { return &IntMatrix{m: b.m.Mul(o.m)} }

// IntMatrix is a dense integer matrix with polynomially bounded entries.
type IntMatrix struct {
	m *intmat.Dense
}

// NewIntMatrix returns an all-zero rows×cols integer matrix.
func NewIntMatrix(rows, cols int) *IntMatrix {
	return &IntMatrix{m: intmat.NewDense(rows, cols)}
}

// Set assigns entry (i, j).
func (a *IntMatrix) Set(i, j int, v int64) { a.m.Set(i, j, v) }

// Get returns entry (i, j).
func (a *IntMatrix) Get(i, j int) int64 { return a.m.Get(i, j) }

// Rows returns the number of rows.
func (a *IntMatrix) Rows() int { return a.m.Rows() }

// Cols returns the number of columns.
func (a *IntMatrix) Cols() int { return a.m.Cols() }

// L0 returns the number of non-zero entries.
func (a *IntMatrix) L0() int { return a.m.L0() }

// L1 returns Σ|entries|.
func (a *IntMatrix) L1() int64 { return a.m.L1() }

// Linf returns the maximum absolute entry and its position.
func (a *IntMatrix) Linf() (int64, Pair) {
	v, i, j := a.m.Linf()
	return v, Pair{I: i, J: j}
}

// Lp returns Σ|entries|^p (p = 0 counts non-zeros).
func (a *IntMatrix) Lp(p float64) float64 { return a.m.Lp(p) }

// Mul computes the exact integer product — local ground truth, not a
// protocol.
func (a *IntMatrix) Mul(o *IntMatrix) *IntMatrix { return &IntMatrix{m: a.m.Mul(o.m)} }

// Add returns the entrywise sum with o (used to combine the CA, CB
// outputs of DistributedProduct).
func (a *IntMatrix) Add(o *IntMatrix) *IntMatrix {
	sum := a.m.Clone()
	sum.AddMatrix(o.m)
	return &IntMatrix{m: sum}
}

// Equal reports entrywise equality.
func (a *IntMatrix) Equal(o *IntMatrix) bool { return a.m.Equal(o.m) }
