package gateway

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestRankBackendsDeterministic(t *testing.T) {
	ids := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	base := rankBackends(ids, "matrix-7")
	for trial := 0; trial < 20; trial++ {
		perm := make([]string, len(ids))
		copy(perm, ids)
		r := rand.New(rand.NewSource(int64(trial)))
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := rankBackends(perm, "matrix-7")
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("ranking depends on insertion order: %v vs %v", got, base)
			}
		}
	}
}

func TestPlaceOnReplicas(t *testing.T) {
	ids := []string{"a", "b", "c"}
	got := placeOn(rankBackends(ids, "m"), 2)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("want 2 distinct replicas, got %v", got)
	}
	// Degrades to the available backends when fewer than R exist.
	if got := placeOn(rankBackends(ids[:1], "m"), 2); len(got) != 1 || got[0] != "a" {
		t.Fatalf("want degraded placement [a], got %v", got)
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	ids := []string{"a", "b", "c"}
	count := map[string]int{}
	for i := 0; i < 300; i++ {
		for _, id := range placeOn(rankBackends(ids, fmt.Sprintf("name-%d", i)), 2) {
			count[id]++
		}
	}
	// 600 replica slots over 3 backends: each should carry a
	// non-degenerate share (exact balance is not promised).
	for _, id := range ids {
		if count[id] < 100 {
			t.Fatalf("backend %s got only %d of 600 replica slots: %v", id, count[id], count)
		}
	}
}

func TestPlacementMinimalDisruption(t *testing.T) {
	old := []string{"a", "b", "c"}
	grown := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("name-%d", i)
		before := placeOn(rankBackends(old, name), 2)
		after := placeOn(rankBackends(grown, name), 2)
		// Rendezvous property: adding d either leaves a matrix's
		// placement untouched or moves exactly the slots d claims —
		// every replica in the new set is either d or was already a
		// replica.
		was := map[string]bool{}
		for _, id := range before {
			was[id] = true
		}
		for _, id := range after {
			if id != "d" && !was[id] {
				t.Fatalf("%s: replica %s appeared without d claiming it: %v -> %v", name, id, before, after)
			}
		}
	}
}
