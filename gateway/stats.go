package gateway

import (
	"time"

	"repro/service"
)

// PlacementInfo describes one placed matrix: the catalog info the
// backends agreed on plus the replicas currently holding it. The JSON
// shape is a strict superset of service.MatrixInfo, so service clients
// decoding a gateway upload reply keep working.
type PlacementInfo struct {
	service.MatrixInfo
	// Replicas are the backend addresses holding a copy.
	Replicas []string `json:"replicas"`
}

// BackendStatus snapshots one pooled backend for Stats and the admin
// listing.
type BackendStatus struct {
	// Addr is the backend's base URL — its pool key and admin handle.
	Addr string `json:"addr"`
	// Healthy reports whether the last probe (or request) succeeded.
	Healthy bool `json:"healthy"`
	// Draining reports whether the backend is excluded from routing
	// and new placements, pending removal.
	Draining bool `json:"draining"`
	// Inflight is the number of requests currently outstanding.
	Inflight int64 `json:"inflight"`
	// Requests counts requests sent to the backend, failed included.
	Requests int64 `json:"requests"`
	// Errors counts the failed requests among Requests.
	Errors int64 `json:"errors"`
	// Failovers counts requests that failed over away from this
	// backend to another replica.
	Failovers int64 `json:"failovers"`
	// Matrices is the number of matrices currently placed on the
	// backend.
	Matrices int `json:"matrices"`
	// ConsecFails is the current consecutive probe-failure streak
	// (drives the prober's exponential backoff).
	ConsecFails int `json:"consec_fails"`
	// LastError is the most recent probe or transport failure, empty
	// while healthy.
	LastError string `json:"last_error,omitempty"`
	// LatencyP50 is the median request latency over the recent window.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	// LatencyP90 is the 90th-percentile latency over the window.
	LatencyP90 time.Duration `json:"latency_p90_ns"`
	// LatencyP99 is the 99th-percentile latency over the window.
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

// Stats is a snapshot of the gateway's aggregate counters and the
// per-backend breakdown.
type Stats struct {
	// Replication is the configured replication factor R.
	Replication int `json:"replication"`
	// Matrices is the number of placed matrices.
	Matrices int `json:"matrices"`
	// Estimates counts estimate queries routed (batch fallback
	// re-routes included).
	Estimates int64 `json:"estimates"`
	// Batches counts batch calls scattered.
	Batches int64 `json:"batches"`
	// Placements counts matrices placed (initial puts and chunked
	// commits; rebalance moves are counted in Rebalanced).
	Placements int64 `json:"placements"`
	// Failovers counts queries answered by a replica other than the
	// first one tried.
	Failovers int64 `json:"failovers"`
	// Retries counts per-query routing attempts beyond the first,
	// successful or not.
	Retries int64 `json:"retries"`
	// Repairs counts replica copies re-seeded from the gateway's
	// retained wire forms (estimate-path 404 repairs and probe-time
	// resyncs).
	Repairs int64 `json:"repairs"`
	// Rebalanced counts matrices moved by admin add/drain/remove
	// rebalances.
	Rebalanced int64 `json:"rebalanced"`
	// Updates counts replicated row-update requests (PATCH
	// /matrices/{name}/rows), failed ones included.
	Updates int64 `json:"updates"`
	// UpdateReverts counts updates that failed on some replica and were
	// rolled back all-or-nothing on the legs that had applied them.
	UpdateReverts int64 `json:"update_reverts"`
	// LostReplicas counts replica copies LRU-evicted by their own
	// backend (its -max-matrices is below its share of placements) and
	// pruned from the placement table. A growing value means the
	// backends' registry capacity is underprovisioned.
	LostReplicas int64 `json:"lost_replicas"`
	// Resyncs counts returning backends reconciled with the placement
	// table by the probe loop. A backend that recovered its matrices
	// from its own -data-dir advances this without advancing Repairs or
	// ReseedBytes.
	Resyncs int64 `json:"resyncs"`
	// ReseedBytes is the total wire bytes re-uploaded to returning
	// backends by probe resyncs (zero when backends recover from disk).
	ReseedBytes int64 `json:"reseed_bytes"`
	// Spills counts retained wire copies written to the spill store and
	// dropped from memory by the wire-cache budget.
	Spills int64 `json:"spills"`
	// SpillLoads counts spilled wire copies loaded back from the store
	// for a repair, resync, rebalance, or row update.
	SpillLoads int64 `json:"spill_loads"`
	// SpillErrors counts failed spill-store operations (all
	// best-effort: the copy stays resident or the repair is skipped).
	SpillErrors int64 `json:"spill_errors"`
	// SpilledMatrices is the number of placements whose wire copy
	// currently lives in the spill store instead of memory.
	SpilledMatrices int `json:"spilled_matrices"`
	// WireBytes is the resident retained-wire byte total governed by
	// Config.WireCacheBudget.
	WireBytes int64 `json:"wire_bytes"`
	// AsyncReplication reports whether updates commit on a write quorum
	// (Config.AsyncReplication) instead of every replica.
	AsyncReplication bool `json:"async_replication"`
	// WriteQuorum is the configured async-mode ack quorum W.
	WriteQuorum int `json:"write_quorum"`
	// UpdateLogEntries is the total retained update-log length summed
	// over all placed matrices (each log is bounded by
	// Config.UpdateLogMax).
	UpdateLogEntries int `json:"update_log_entries"`
	// AsyncApplied counts log entries replayed to lagging replicas (by
	// the apply loop and in-line catch-ups).
	AsyncApplied int64 `json:"async_applied"`
	// AsyncReseeds counts full-wire reseeds of replicas whose lag could
	// not be covered by a log replay (trimmed window, epoch change,
	// lost copy).
	AsyncReseeds int64 `json:"async_reseeds"`
	// Sessions is the live consistency-session count.
	Sessions int `json:"sessions"`
	// SLA breaks read outcomes down per consistency level (levels with
	// no traffic are omitted).
	SLA map[string]SLAStats `json:"sla,omitempty"`
	// Backends is the per-backend breakdown, sorted by address.
	Backends []BackendStatus `json:"backends"`
	// Uptime is how long the gateway has been serving.
	Uptime time.Duration `json:"uptime_ns"`
}

// RebalanceReport summarizes one admin operation's data moves.
type RebalanceReport struct {
	// Action is the admin operation: "add", "drain", or "remove".
	Action string `json:"action"`
	// Backend is the address the operation targeted.
	Backend string `json:"backend"`
	// Moved counts matrices whose replica set changed.
	Moved int `json:"moved"`
	// Failed counts matrices whose moves did not fully land (their
	// old placement is kept where possible; the next rebalance or
	// probe-resync retries).
	Failed int `json:"failed"`
}

// Stats snapshots the gateway.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	matrices := len(g.matrices)
	var spilled int
	var wireBytes int64
	for _, pm := range g.matrices {
		if pm.spilled {
			spilled++
		} else {
			wireBytes += pm.wireBytes
		}
	}
	upd := make([]*matrixUpd, 0, len(g.upd))
	for _, st := range g.upd {
		upd = append(upd, st)
	}
	g.mu.Unlock()
	var logEntries int
	for _, st := range upd {
		st.mu.Lock()
		logEntries += len(st.log)
		st.mu.Unlock()
	}
	return Stats{
		Replication:      g.cfg.Replication,
		Matrices:         matrices,
		Estimates:        g.estimates.Load(),
		Batches:          g.batches.Load(),
		Placements:       g.placements.Load(),
		Failovers:        g.failovers.Load(),
		Retries:          g.retries.Load(),
		Repairs:          g.repairs.Load(),
		Rebalanced:       g.rebalanced.Load(),
		Updates:          g.updates.Load(),
		UpdateReverts:    g.updateReverts.Load(),
		LostReplicas:     g.lostReplicas.Load(),
		Resyncs:          g.resyncs.Load(),
		ReseedBytes:      g.reseedBytes.Load(),
		Spills:           g.spills.Load(),
		SpillLoads:       g.spillLoads.Load(),
		SpillErrors:      g.spillErrors.Load(),
		SpilledMatrices:  spilled,
		WireBytes:        wireBytes,
		AsyncReplication: g.cfg.AsyncReplication,
		WriteQuorum:      g.cfg.WriteQuorum,
		UpdateLogEntries: logEntries,
		AsyncApplied:     g.asyncApplied.Load(),
		AsyncReseeds:     g.asyncReseeds.Load(),
		Sessions:         g.sessions.len(),
		SLA:              g.sla.snapshot(),
		Backends:         g.Backends(),
		Uptime:           time.Since(g.start),
	}
}
