package gateway

// Edge-path tests for the async replication machinery: the per-matrix
// update-log state helpers, SLA routing's in-line catch-up and
// degrade-to-freshest branches, quorum commits against lagging, lost,
// and unreachable replicas, log-trim reseeds, and the
// replacement-race converger. These paths are hard to reach from the
// happy-path integration tests because the background apply loop
// normally keeps every replica at the log head, so most tests here
// park the loop on a long probe interval and tamper with the applied
// vectors directly.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/service"
)

// newAsyncGatewayCfg builds an async gateway whose probe interval the
// test controls: time.Hour keeps the background drain ticker out of a
// test that inspects or tampers with applied vectors (the wake-on-
// commit drain still runs), while a short interval exercises the
// ticker path. logMax bounds the per-matrix update log when > 0.
func newAsyncGatewayCfg(t *testing.T, w int, probe time.Duration, logMax int, addrs ...string) *Gateway {
	t.Helper()
	g := New(Config{
		Backends:         addrs,
		Replication:      len(addrs),
		ProbeInterval:    probe,
		ProbeTimeout:     500 * time.Millisecond,
		ProbeBackoffMax:  100 * time.Millisecond,
		AsyncReplication: true,
		WriteQuorum:      w,
		UpdateLogMax:     logMax,
	})
	t.Cleanup(g.Close)
	return g
}

// headVersion reads a matrix's current update-log head.
func headVersion(st *matrixUpd) version {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.head
}

func TestMatrixUpdStateUnit(t *testing.T) {
	st := &matrixUpd{}
	st.resetLocked(version{epoch: 3, seq: 0}, []string{"a", "b"})
	if got := st.applied["a"]; got != (version{epoch: 3, seq: 0}) {
		t.Fatalf("reset applied[a] = %v", got)
	}
	st.log = []logEntry{{seq: 1}, {seq: 2}}
	st.head = version{epoch: 3, seq: 2}

	// pendingLocked: at head, within the window, wrong epoch, and
	// behind the trimmed window.
	if pending, ok := st.pendingLocked(version{epoch: 3, seq: 2}); !ok || len(pending) != 0 {
		t.Fatalf("pending at head = %v, %v", pending, ok)
	}
	if pending, ok := st.pendingLocked(version{epoch: 3, seq: 1}); !ok || len(pending) != 1 || pending[0].seq != 2 {
		t.Fatalf("pending one behind = %v, %v", pending, ok)
	}
	if _, ok := st.pendingLocked(version{epoch: 2, seq: 2}); ok {
		t.Fatal("pending across epochs claims replayable")
	}
	st.logStart = 1
	st.log = st.log[1:]
	if _, ok := st.pendingLocked(version{epoch: 3, seq: 0}); ok {
		t.Fatal("pending behind the trimmed window claims replayable")
	}

	// advanceAppliedLocked never regresses; setAppliedLocked on a
	// zero-value struct creates the map.
	st.setAppliedLocked("a", version{epoch: 3, seq: 2})
	st.advanceAppliedLocked("a", version{epoch: 3, seq: 1})
	if got := st.applied["a"]; got != (version{epoch: 3, seq: 2}) {
		t.Fatalf("advance regressed applied[a] to %v", got)
	}
	fresh := &matrixUpd{}
	fresh.setAppliedLocked("x", version{epoch: 1, seq: 1})
	if got := fresh.applied["x"]; got != (version{epoch: 1, seq: 1}) {
		t.Fatalf("setApplied on fresh state = %v", got)
	}

	// Send reservations are exclusive until released.
	if !st.reserveLocked("a") || st.reserveLocked("a") {
		t.Fatal("send reservation not exclusive")
	}
	st.release("a")
	if !st.reserveLocked("a") {
		t.Fatal("released reservation not reclaimable")
	}

	// The dedupe ring ignores the zero key, drops duplicates, and
	// evicts FIFO past the window.
	ring := &matrixUpd{}
	ring.rememberLocked(0, service.UpdateReply{}, version{})
	if len(ring.recentKeys) != 0 {
		t.Fatal("zero key remembered")
	}
	ring.rememberLocked(1, service.UpdateReply{RowsApplied: 1}, version{epoch: 1, seq: 1})
	ring.rememberLocked(1, service.UpdateReply{RowsApplied: 9}, version{epoch: 1, seq: 9})
	if len(ring.recentKeys) != 1 || ring.recent[1].rep.RowsApplied != 1 {
		t.Fatalf("duplicate key overwrote the remembered reply: %+v", ring.recent[1])
	}
	for k := uint64(2); k <= clientDedupeWindow+2; k++ {
		ring.rememberLocked(k, service.UpdateReply{}, version{epoch: 1, seq: k})
	}
	if len(ring.recent) != clientDedupeWindow || len(ring.recentKeys) != clientDedupeWindow {
		t.Fatalf("ring size = %d/%d, want %d", len(ring.recent), len(ring.recentKeys), clientDedupeWindow)
	}
	if _, ok := ring.recent[1]; ok {
		t.Fatal("oldest key survived eviction")
	}
}

// TestSLARouteCatchupAndDegrade drives slaRoute through its three
// non-hit outcomes: an in-line catch-up when no replica satisfies the
// level but the log can be replayed, a degrade-to-freshest miss when
// replay is impossible, and the everyone-suspect miss.
func TestSLARouteCatchupAndDegrade(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newAsyncGatewayCfg(t, 1, time.Hour, 0, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{1, 5}}), ""); err != nil {
		t.Fatal(err)
	}
	want := sum - 1 + 5
	st := g.updState("m")
	head := headVersion(st)
	waitFor(t, "replicas drained to head", func() bool {
		for _, id := range info.Replicas {
			if !g.appliedVersion("m", id).AtLeast(head) {
				return false
			}
		}
		return true
	})

	// Catch-up: both vectors claim seq 0, the log holds seq 1. The
	// strong read replays it in line (the backend dedupes on the log
	// seq, so the replay is a no-op there) and serves the fresh state.
	stale := version{epoch: head.epoch, seq: 0}
	st.mu.Lock()
	for _, id := range info.Replicas {
		st.applied[id] = stale
	}
	st.mu.Unlock()
	res, _, err := g.estimateSLA(ctx, exactReq("m", n), SLA{Level: ConsStrong}, "")
	if err != nil || res.Estimate != want {
		t.Fatalf("strong read through catch-up = %v, %v (want %v)", res, err, want)
	}
	if got := g.Stats().SLA["strong"].Catchups; got != 1 {
		t.Fatalf("strong catchups = %d, want 1", got)
	}

	// Degrade: vectors on a dead epoch cannot be replayed or caught
	// up, so the read is served by the freshest replica as a miss.
	st.mu.Lock()
	for _, id := range info.Replicas {
		st.applied[id] = version{epoch: head.epoch - 1, seq: head.seq}
	}
	st.mu.Unlock()
	res, _, err = g.estimateSLA(ctx, exactReq("m", n), SLA{Level: ConsStrong}, "")
	if err != nil || res.Estimate != want {
		t.Fatalf("degraded strong read = %v, %v (want %v)", res, err, want)
	}
	if got := g.Stats().SLA["strong"].Misses; got != 1 {
		t.Fatalf("strong misses = %d, want 1", got)
	}

	// Everyone suspect: with no eligible replica the full suspect
	// order is returned as a miss (the backends are in fact alive, so
	// the read still succeeds).
	_, reps, err := g.replicaSnapshot("m")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range reps {
		b.noteFailover(fmt.Errorf("dial tcp: connection refused"), true)
	}
	res, _, err = g.estimateSLA(ctx, exactReq("m", n), SLA{Level: ConsStrong}, "")
	if err != nil || res.Estimate != want {
		t.Fatalf("all-suspect strong read = %v, %v (want %v)", res, err, want)
	}
	if got := g.Stats().SLA["strong"].Misses; got != 2 {
		t.Fatalf("strong misses = %d, want 2", got)
	}

	// updState's lazy branch: a table entry without installed update
	// state gets one stamped at the retained version; unplaced names
	// resolve to nil.
	g.mu.Lock()
	delete(g.upd, "m")
	g.mu.Unlock()
	if st := g.updState("m"); st == nil {
		t.Fatal("updState did not lazily install state for a placed matrix")
	} else if got := headVersion(st); got.seq == 0 {
		t.Fatalf("lazy state head = %v, want the retained post-update version", got)
	}
	if g.updState("ghost") != nil {
		t.Fatal("updState invented state for an unplaced matrix")
	}
}

// TestLogTrimForcesReseed caps the update log at two entries, pushes a
// replica's applied vector behind the trimmed window, and checks the
// apply loop falls back to a full-wire reseed.
func TestLogTrimForcesReseed(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newAsyncGatewayCfg(t, 1, 20*time.Millisecond, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(2); k <= 5; k++ {
		if _, _, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, k}}), ""); err != nil {
			t.Fatalf("update %d: %v", k, err)
		}
	}
	want := sum - 1 + 5
	st := g.updState("m")
	head := headVersion(st)
	waitFor(t, "replicas drained to head", func() bool {
		for _, id := range info.Replicas {
			if !g.appliedVersion("m", id).AtLeast(head) {
				return false
			}
		}
		return true
	})
	if got := g.Stats().UpdateLogEntries; got > 2 {
		t.Fatalf("update log holds %d entries, want <= UpdateLogMax 2", got)
	}

	victim := info.Replicas[1]
	st.mu.Lock()
	st.applied[victim] = version{epoch: head.epoch, seq: 1}
	st.mu.Unlock()
	g.wakeApply()
	waitFor(t, "trimmed-window replica reseeded", func() bool {
		return g.Stats().AsyncReseeds >= 1 && g.appliedVersion("m", victim).AtLeast(head)
	})
	got, err := backendSum(ctx, victim, "m", n)
	if err != nil || got != want {
		t.Fatalf("reseeded replica sum = %v, %v (want %v)", got, err, want)
	}
}

// TestQuorumShortfallRevertsAckedLegs fails a write-quorum-2 update
// with one replica down and checks the acked leg is converged back to
// the pre-update wire.
func TestQuorumShortfallRevertsAckedLegs(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	byAddr := map[string]*testBackend{b1.addr: b1, b2.addr: b2}
	g := newAsyncGatewayCfg(t, 2, 20*time.Millisecond, 0, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	// A full-quorum update with everyone up: the multi-ack loop.
	if _, _, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, 9}}), ""); err != nil {
		t.Fatal(err)
	}
	committed := sum - 1 + 9

	byAddr[info.Replicas[1]].stop()
	_, _, err = g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, 11}}), "")
	if err == nil {
		t.Fatal("quorum-2 update with a dead replica committed")
	}
	if !strings.Contains(err.Error(), "write-quorum") {
		t.Fatalf("shortfall error = %v, want a write-quorum message", err)
	}
	if got := g.Stats().UpdateReverts; got != 1 {
		t.Fatalf("update reverts = %d, want 1", got)
	}
	survivor := info.Replicas[0]
	got, err := backendSum(ctx, survivor, "m", n)
	if err != nil || got != committed {
		t.Fatalf("survivor sum after revert = %v, %v (want the pre-failure %v)", got, err, committed)
	}
}

// TestQuorumCommitRepairsLostCopy deletes the quorum head's copy out
// from under the gateway: the update leg's 404 is repaired in line
// with the patched wire and still counts as an ack.
func TestQuorumCommitRepairsLostCopy(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newAsyncGatewayCfg(t, 1, time.Hour, 0, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	head0 := info.Replicas[0]
	if err := service.NewClient(head0).DeleteMatrix(ctx, "m"); err != nil {
		t.Fatal(err)
	}

	rep, ver, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, 7}}), "")
	if err != nil || rep.RowsApplied != 1 {
		t.Fatalf("update against a lost copy = %+v, %v", rep, err)
	}
	if g.Stats().Repairs < 1 {
		t.Fatal("404 leg did not count as a repair")
	}
	want := sum - 1 + 7
	got, err := backendSum(ctx, head0, "m", n)
	if err != nil || got != want {
		t.Fatalf("repaired replica sum = %v, %v (want %v)", got, err, want)
	}
	// The commit wake drains the other replica without the ticker.
	waitFor(t, "lagging replica drained", func() bool {
		got, err := backendSum(ctx, info.Replicas[1], "m", n)
		return err == nil && got == want
	})
	if !g.appliedVersion("m", head0).AtLeast(ver) {
		t.Fatalf("repaired replica vector = %v, want >= %v", g.appliedVersion("m", head0), ver)
	}
}

// TestQuorumCommitCatchesUpLaggingCandidate makes the placement-order
// quorum candidate lag and checks the commit replays its pending log
// in line before applying the new patch on top.
func TestQuorumCommitCatchesUpLaggingCandidate(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newAsyncGatewayCfg(t, 1, time.Hour, 0, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, 4}}), ""); err != nil {
		t.Fatal(err)
	}
	st := g.updState("m")
	head := headVersion(st)
	waitFor(t, "replicas drained to head", func() bool {
		for _, id := range info.Replicas {
			if !g.appliedVersion("m", id).AtLeast(head) {
				return false
			}
		}
		return true
	})

	lead := info.Replicas[0]
	st.mu.Lock()
	st.applied[lead] = version{epoch: head.epoch, seq: 0}
	st.mu.Unlock()
	applied0 := g.Stats().AsyncApplied

	_, ver, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, 6}}), "")
	if err != nil {
		t.Fatalf("update through a lagging candidate: %v", err)
	}
	if g.Stats().AsyncApplied <= applied0 {
		t.Fatal("in-line catch-up replayed nothing")
	}
	if got := g.appliedVersion("m", lead); !got.AtLeast(ver) {
		t.Fatalf("lagging candidate vector = %v, want >= %v", got, ver)
	}
	want := sum - 1 + 6
	got, err := backendSum(ctx, lead, "m", n)
	if err != nil || got != want {
		t.Fatalf("caught-up replica sum = %v, %v (want %v)", got, err, want)
	}
}

// TestEstimateBatchSLADetourAndSessions covers the batch scatter's SLA
// branches: a constrained query no scattered replica satisfies detours
// through the single-query path, an unplaced matrix fails in its item,
// and a session-bearing scatter folds the served versions into the
// session's read floor.
func TestEstimateBatchSLADetourAndSessions(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newAsyncGatewayCfg(t, 1, time.Hour, 0, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.updateRowsSLA(ctx, "m", replaceRowReq(0, [][2]int64{{2, 8}}), ""); err != nil {
		t.Fatal(err)
	}
	want := sum - 1 + 8
	st := g.updState("m")
	head := headVersion(st)
	waitFor(t, "replicas drained to head", func() bool {
		for _, id := range info.Replicas {
			if !g.appliedVersion("m", id).AtLeast(head) {
				return false
			}
		}
		return true
	})

	st.mu.Lock()
	for _, id := range info.Replicas {
		st.applied[id] = version{epoch: head.epoch, seq: 0}
	}
	st.mu.Unlock()
	items, err := g.estimateBatchSLA(ctx, []service.Request{
		exactReq("m", n),
		exactReq("ghost", n),
	}, SLA{Level: ConsStrong}, "")
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Error != "" || items[0].Result == nil || items[0].Result.Estimate != want {
		t.Fatalf("detoured strong item = %+v, want estimate %v", items[0], want)
	}
	if items[1].Error == "" {
		t.Fatal("unplaced matrix did not fail in its item")
	}

	// Scatter with a session: the served versions become the session's
	// monotonic floor.
	st.mu.Lock()
	for _, id := range info.Replicas {
		st.applied[id] = head
	}
	st.mu.Unlock()
	items, err = g.estimateBatchSLA(ctx, []service.Request{exactReq("m", n)}, SLA{Level: ConsMonotonic}, "batch-sess")
	if err != nil || items[0].Error != "" || items[0].Result.Estimate != want {
		t.Fatalf("session scatter = %+v, %v (want %v)", items, err, want)
	}
	if got := g.sessions.floor("batch-sess", "m", ConsMonotonic); !got.AtLeast(head) {
		t.Fatalf("session floor after scatter = %v, want >= %v", got, head)
	}
}

// TestConvergeReplacementAndEpochConflict checks the replacement-race
// converger re-uploads the retained wire over a divergent replica copy
// and that an update racing a wholesale replacement is rejected with a
// conflict instead of patching the replacement's content.
func TestConvergeReplacementAndEpochConflict(t *testing.T) {
	n := 8
	b1, b2 := startBackend(t), startBackend(t)
	g := newTestGateway(t, 2, b1.addr, b2.addr)
	ctx := context.Background()

	wire, sum := testMatrix(n)
	info, err := g.PutMatrix(ctx, "m", wire)
	if err != nil {
		t.Fatal(err)
	}
	// Diverge one replica behind the gateway's back, then converge.
	divergent := info.Replicas[1]
	if _, err := service.NewClient(divergent).UploadMatrixFull(ctx, "m", identWire(n)); err != nil {
		t.Fatal(err)
	}
	if got, err := backendSum(ctx, divergent, "m", n); err != nil || got != float64(n) {
		t.Fatalf("divergent copy sum = %v, %v (want %v)", got, err, n)
	}
	g.convergeReplacement("m")
	if got, err := backendSum(ctx, divergent, "m", n); err != nil || got != sum {
		t.Fatalf("converged copy sum = %v, %v (want %v)", got, err, sum)
	}
	g.convergeReplacement("ghost") // unplaced: a no-op

	// A commit whose log state belongs to a newer epoch than the table
	// snapshot means a replacement owns the name: conflict, no patch.
	st := g.updState("m")
	st.mu.Lock()
	st.head.epoch++
	st.mu.Unlock()
	if _, err := g.UpdateRows(ctx, "m", replaceRowReq(0, [][2]int64{{1, 2}})); !errors.Is(err, service.ErrConflict) {
		t.Fatalf("update racing a replacement = %v, want ErrConflict", err)
	}
}

// TestSessionQueryParamWinsOverHeader pins the ?session= precedence of
// the HTTP surface: the query parameter beats the MP-Session header
// and echoes back.
func TestSessionQueryParamWinsOverHeader(t *testing.T) {
	n := 8
	b1 := startBackend(t)
	g := newTestGateway(t, 1, b1.addr)
	ctx := context.Background()

	wire, _ := testMatrix(n)
	if _, err := g.PutMatrix(ctx, "m", wire); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(g))
	defer srv.Close()

	body, err := json.Marshal(exactReq("m", n))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/estimate?consistency=monotonic&session=qtok", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("MP-Session", "htok")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("MP-Session"); got != "qtok" {
		t.Fatalf("MP-Session echo = %q, want the query token", got)
	}
}
