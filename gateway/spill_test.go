package gateway

import (
	"context"
	"testing"
	"time"

	"repro/internal/store"
	"repro/service"
)

// newSpillGateway builds a gateway over a real disk spill store with
// the given wire-cache budget.
func newSpillGateway(t *testing.T, budget int64, addrs ...string) (*Gateway, *store.Disk) {
	t.Helper()
	d, err := store.OpenDisk(store.DiskConfig{Dir: t.TempDir(), Fsync: store.FsyncNever})
	if err != nil {
		t.Fatalf("open spill store: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	g := New(Config{
		Backends:        addrs,
		Replication:     1,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		ProbeBackoffMax: 100 * time.Millisecond,
		Store:           d,
		WireCacheBudget: budget,
	})
	t.Cleanup(g.Close)
	return g, d
}

// wireWithEntries is an n×n wire matrix with exactly k unit entries in
// row-major order, so wireSize (32 + 24k) and the exact estimate (k
// against an identity Alice) are both known in closed form.
func wireWithEntries(n, k int) service.Matrix {
	m := service.Matrix{Rows: n, Cols: n}
	for i := 0; i < k; i++ {
		m.Entries = append(m.Entries, [3]int64{int64(i / n), int64(i % n), 1})
	}
	return m
}

func storeHas(t *testing.T, d *store.Disk, name string) bool {
	t.Helper()
	names, err := d.Names()
	if err != nil {
		t.Fatalf("store names: %v", err)
	}
	for _, got := range names {
		if got == name {
			return true
		}
	}
	return false
}

// TestSpillBudgetEvictsLargestAndReloads walks the whole spill life
// cycle against a live backend: the budget pushes the largest retained
// wire copy to the store, an update of the spilled matrix reloads it,
// patches it, and re-spills the patched bytes, and a delete removes
// the spill file.
func TestSpillBudgetEvictsLargestAndReloads(t *testing.T) {
	const n = 4
	b := startBackend(t)
	g, d := newSpillGateway(t, 300, b.addr)
	ctx := context.Background()

	// wireSize: big = 32+240 = 272, mid = 152, small = 80.
	big, mid, small := wireWithEntries(n, 10), wireWithEntries(n, 5), wireWithEntries(n, 2)
	if _, err := g.PutMatrix(ctx, "big", big); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Spills != 0 || st.WireBytes != 272 {
		t.Fatalf("big alone fits the budget, got spills=%d wire_bytes=%d", st.Spills, st.WireBytes)
	}
	// mid pushes the resident total to 424 > 300: the largest copy
	// (big) spills, leaving 152 resident.
	if _, err := g.PutMatrix(ctx, "mid", mid); err != nil {
		t.Fatal(err)
	}
	if _, err := g.PutMatrix(ctx, "small", small); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Spills != 1 || st.SpilledMatrices != 1 {
		t.Fatalf("want exactly big spilled, got spills=%d spilled_matrices=%d", st.Spills, st.SpilledMatrices)
	}
	if st.WireBytes != 152+80 {
		t.Fatalf("resident wire bytes = %d, want %d", st.WireBytes, 152+80)
	}
	if st.WireBytes > 300 {
		t.Fatalf("resident wire bytes %d exceed the %d budget", st.WireBytes, 300)
	}
	if !storeHas(t, d, "big") {
		t.Fatal("spilled copy of big not in the store")
	}

	// Estimates never need the wire copy — the backend still holds big.
	if res, err := g.Estimate(ctx, exactReq("big", n)); err != nil || res.Estimate != 10 {
		t.Fatalf("estimate of spilled big: %v/%v, want 10", res, err)
	}

	// Updating the spilled matrix must reload its wire from the store,
	// patch it, and retain the patched form. Row 0 holds big's first
	// four unit entries; replacing it with one value-5 entry leaves
	// 7 entries summing to 11.
	if _, err := g.UpdateRows(ctx, "big", replaceRowReq(0, [][2]int64{{0, 5}})); err != nil {
		t.Fatalf("update of spilled big: %v", err)
	}
	st = g.Stats()
	if st.SpillLoads != 1 {
		t.Fatalf("update did not load the spilled wire: spill_loads=%d", st.SpillLoads)
	}
	if res, err := g.Estimate(ctx, exactReq("big", n)); err != nil || res.Estimate != 11 {
		t.Fatalf("estimate after patching spilled big: %v/%v, want 11", res, err)
	}
	// The patched copy (32+168 = 200 bytes) re-enters memory and blows
	// the budget again (200+152+80), so big re-spills — and the store
	// must now hold the *patched* wire, not the original upload.
	st = g.Stats()
	if st.Spills != 2 || st.SpilledMatrices != 1 {
		t.Fatalf("patched big should have re-spilled, got spills=%d spilled_matrices=%d", st.Spills, st.SpilledMatrices)
	}
	snap, _, err := d.Load("big")
	if err != nil || snap == nil {
		t.Fatalf("load re-spilled big: %v (snap=%v)", err, snap)
	}
	m, _, err := service.DecodeMatrixSnapshot(snap.Payload)
	if err != nil {
		t.Fatalf("decode re-spilled big: %v", err)
	}
	if len(m.Entries) != 7 || wireSum(m) != 11 {
		t.Fatalf("re-spilled wire is stale: %d entries summing to %v, want 7 summing to 11", len(m.Entries), wireSum(m))
	}

	// Deleting a spilled matrix removes its spill file.
	if err := g.DeleteMatrix(ctx, "big"); err != nil {
		t.Fatalf("delete big: %v", err)
	}
	if storeHas(t, d, "big") {
		t.Fatal("delete left big's spill file behind")
	}
	st = g.Stats()
	if st.SpilledMatrices != 0 || st.SpillErrors != 0 {
		t.Fatalf("after delete: spilled_matrices=%d spill_errors=%d, want 0/0", st.SpilledMatrices, st.SpillErrors)
	}
}

// TestSpillReseedOnRepair kills and restarts a *non-durable* backend
// whose only matrix was spilled: the probe resync must reload the wire
// from the spill store to re-seed the empty backend.
func TestSpillReseedOnRepair(t *testing.T) {
	const n = 4
	b := startBackend(t)
	g, _ := newSpillGateway(t, 100, b.addr)
	ctx := context.Background()

	big := wireWithEntries(n, 10) // 272 bytes > 100: spills immediately
	if _, err := g.PutMatrix(ctx, "big", big); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Spills != 1 || st.SpilledMatrices != 1 || st.WireBytes != 0 {
		t.Fatalf("big should spill on put: spills=%d spilled=%d wire_bytes=%d", st.Spills, st.SpilledMatrices, st.WireBytes)
	}

	b.stop()
	time.Sleep(50 * time.Millisecond)
	b.restart()
	waitFor(t, "backend re-admitted", func() bool {
		st, ok := backendStatus(g, b.addr)
		return ok && st.Healthy
	})
	waitFor(t, "resync re-seeds big from the spill store", func() bool { return b.holds("big") })

	st = g.Stats()
	if st.SpillLoads == 0 {
		t.Error("re-seed did not load the spilled wire from the store")
	}
	if st.Repairs == 0 || st.ReseedBytes == 0 {
		t.Errorf("re-seed not accounted: repairs=%d reseed_bytes=%d", st.Repairs, st.ReseedBytes)
	}
	if res, err := g.Estimate(ctx, exactReq("big", n)); err != nil || res.Estimate != 10 {
		t.Fatalf("estimate after spill-backed re-seed: %v/%v, want 10", res, err)
	}
}

// TestSpillStoreWipedOnStart: the spill store is a cache of the
// in-memory placement table, which does not survive a gateway restart —
// New clears whatever a previous process left in it.
func TestSpillStoreWipedOnStart(t *testing.T) {
	b := startBackend(t)
	d, err := store.OpenDisk(store.DiskConfig{Dir: t.TempDir(), Fsync: store.FsyncNever})
	if err != nil {
		t.Fatalf("open spill store: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	if err := d.SaveSnapshot("stale", store.Snapshot{Epoch: 1, Payload: []byte("leftover")}); err != nil {
		t.Fatalf("seed stale snapshot: %v", err)
	}
	g := New(Config{
		Backends:        []string{b.addr},
		Replication:     1,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		ProbeBackoffMax: 100 * time.Millisecond,
		Store:           d,
		WireCacheBudget: 1 << 20,
	})
	t.Cleanup(g.Close)
	names, err := d.Names()
	if err != nil {
		t.Fatalf("store names: %v", err)
	}
	if len(names) != 0 {
		t.Fatalf("New left stale spill files behind: %v", names)
	}
}

// TestSpillLoadFailureSurfaces: a spilled wire copy that cannot be
// loaded back fails the operation that needed it (here a row update)
// and counts a spill error — serving (which never needs the wire) is
// unaffected.
func TestSpillLoadFailureSurfaces(t *testing.T) {
	const n = 4
	b := startBackend(t)
	g, d := newSpillGateway(t, 100, b.addr)
	ctx := context.Background()

	if _, err := g.PutMatrix(ctx, "big", wireWithEntries(n, 10)); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.SpilledMatrices != 1 {
		t.Fatalf("big should spill on put, got %+v", st)
	}
	// Destroy the spill file behind the gateway's back.
	if err := d.Delete("big"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.UpdateRows(ctx, "big", replaceRowReq(0, [][2]int64{{0, 5}})); err == nil {
		t.Fatal("update of an unloadable spilled matrix succeeded")
	}
	if st := g.Stats(); st.SpillErrors == 0 {
		t.Error("lost spill file not counted as a spill error")
	}
	if res, err := g.Estimate(ctx, exactReq("big", n)); err != nil || res.Estimate != 10 {
		t.Fatalf("estimate after spill loss: %v/%v, want 10 (backend copy is intact)", res, err)
	}
}

// TestSpillStoreErrorsAreCounted: every spill-store failure path is
// best-effort — the startup wipe, the budget spill (the copy stays
// resident), and the delete cleanup all count errors and carry on.
func TestSpillStoreErrorsAreCounted(t *testing.T) {
	const n = 4
	b := startBackend(t)
	d, err := store.OpenDisk(store.DiskConfig{Dir: t.TempDir(), Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	d.Close() // every store call from here on fails with ErrClosed
	g := New(Config{
		Backends:        []string{b.addr},
		Replication:     1,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		ProbeBackoffMax: 100 * time.Millisecond,
		Store:           d,
		WireCacheBudget: 100,
	})
	t.Cleanup(g.Close)
	ctx := context.Background()

	if _, err := g.PutMatrix(ctx, "big", wireWithEntries(n, 10)); err != nil {
		t.Fatalf("put must survive a failing spill store: %v", err)
	}
	st := g.Stats()
	if st.SpilledMatrices != 0 || st.WireBytes != 272 {
		t.Fatalf("failed spill must leave the copy resident, got %+v", st)
	}
	if err := g.DeleteMatrix(ctx, "big"); err != nil {
		t.Fatalf("delete must survive a failing spill store: %v", err)
	}
	// Wipe-at-New + failed spill + delete cleanup: three counted errors.
	if st := g.Stats(); st.SpillErrors < 3 {
		t.Errorf("spill errors = %d, want >= 3 (wipe, spill, delete)", st.SpillErrors)
	}
	if res, err := g.Estimate(ctx, exactReq("big", n)); err == nil {
		t.Fatalf("estimate of deleted matrix succeeded: %v", res)
	}
}
